// Confidence-guided review: VEGA annotates every generated function and
// statement with a confidence score so developers start with the code
// most likely to need them (paper §4.2, "Manual Effort Required for
// VEGA"). This example generates the RI5CY backend, sorts functions by
// confidence, and checks how well confidence predicts pass@1 correctness.
//
//	go run ./examples/confidence-review
package main

import (
	"fmt"
	"log"
	"sort"

	"vega/internal/core"
	"vega/internal/corpus"
	"vega/internal/eval"
)

func main() {
	c, err := corpus.Build()
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Train.Epochs = 10
	p, err := core.New(c, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("training CodeBE...")
	if _, err := p.Train(); err != nil {
		log.Fatal(err)
	}

	backend := p.GenerateBackend("RI5CY")
	be := eval.EvaluateBackend(backend, c.Backends["RI5CY"], nil)

	accurate := map[string]bool{}
	for _, r := range be.Results {
		accurate[r.Name] = r.Accurate
	}

	type row struct {
		name   string
		module string
		conf   float64
		minSt  float64
		ok     bool
	}
	var rows []row
	for _, f := range backend.Functions {
		minSt := 1.0
		for _, s := range f.Statements {
			if !s.Absent && s.Score < minSt {
				minSt = s.Score
			}
		}
		rows = append(rows, row{
			name: f.Name, module: f.Module,
			conf: f.Confidence(), minSt: minSt, ok: accurate[f.Name],
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].conf < rows[j].conf })

	fmt.Println("\nreview queue (lowest confidence first):")
	fmt.Println("  conf  min-stmt  pass@1  function")
	for _, r := range rows {
		mark := "FAIL"
		if r.ok {
			mark = "ok  "
		}
		fmt.Printf("  %.2f    %.2f     %s   %-3s %s\n", r.conf, r.minSt, mark, r.module, r.name)
	}

	// How informative is the confidence signal? Compare accuracy above and
	// below the paper's 0.5 threshold using the minimum statement score.
	var loOK, loAll, hiOK, hiAll int
	for _, r := range rows {
		if r.minSt < 0.5 {
			loAll++
			if r.ok {
				loOK++
			}
		} else {
			hiAll++
			if r.ok {
				hiOK++
			}
		}
	}
	fmt.Printf("\nfunctions with a sub-threshold statement: %d/%d accurate\n", loOK, loAll)
	fmt.Printf("functions fully above threshold:          %d/%d accurate\n", hiOK, hiAll)
	fmt.Println("\nreviewers work top-down through this queue; the paper's developers")
	fmt.Println("corrected a full RISC-V backend in ~43-48 hours this way (Table 4).")
}
