// Quickstart: run the whole VEGA pipeline at a small training budget and
// generate one interface function — getRelocType, the paper's running
// example — for the held-out RISC-V target, printing every statement with
// its confidence score.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"vega/internal/core"
	"vega/internal/corpus"
)

func main() {
	// 1. Build the backend corpus: 17 training backends plus 3 held-out
	//    evaluation targets, every target's description files rendered
	//    with LLVM naming conventions.
	c, err := corpus.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corpus: %d backends, %d interface functions\n",
		len(c.Backends), len(corpus.AllFuncs()))

	// 2. Stage 1 — templatize every function group and mine features.
	cfg := core.DefaultConfig()
	cfg.Train.Epochs = 4 // quickstart budget; see EXPERIMENTS.md for full runs
	cfg.MaxSamples = 1200
	cfg.PretrainEpochs = 1
	p, err := core.New(c, cfg)
	if err != nil {
		log.Fatal(err)
	}
	st := p.Stats()
	fmt.Printf("stage 1: %d templates, %d properties, %d training functions\n",
		st.Groups, st.Properties, st.TrainFunctions)

	// 3. Stage 2 — fine-tune CodeBE.
	fmt.Println("stage 2: fine-tuning CodeBE (a few minutes on one core)...")
	res, err := p.Train()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stage 2: %d samples, verification exact match %.1f%%\n",
		res.Samples, 100*res.VerifyExactMatch)

	// 4. Stage 3 — generate RISC-V's getRelocType from its description
	//    files alone, with per-statement confidence scores.
	g := p.GroupByName("getRelocType")
	fn := p.GenerateFunction(g, "RISCV")
	fmt.Printf("\nVEGA-generated %s for RISC-V (function confidence %.2f):\n\n",
		fn.Name, fn.Confidence())
	fmt.Println(fn.RenderAnnotated())
	fmt.Println("statements below 0.50 are dropped before the function is used;")
	fmt.Println("run ./examples/generate-riscv for the full backend and pass@1 scores.")
}
