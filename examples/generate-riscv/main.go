// Generate a complete RISC-V backend from its target description files
// and score it with the pass@1 regression harness, module by module —
// the headline experiment of the paper at example scale.
//
//	go run ./examples/generate-riscv
package main

import (
	"fmt"
	"log"
	"time"

	"vega/internal/core"
	"vega/internal/corpus"
	"vega/internal/eval"
	"vega/internal/template"
)

func main() {
	start := time.Now()
	c, err := corpus.Build()
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Train.Epochs = 14
	cfg.Train.Verbose = func(e int, l float64) {
		fmt.Printf("  epoch %2d  loss %.4f\n", e, l)
	}
	p, err := core.New(c, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := p.Train(); err != nil {
		log.Fatal(err)
	}

	backend := p.GenerateBackend("RISCV")
	fmt.Printf("\n%s in %s\n", core.Describe(backend), time.Since(start).Round(time.Second))
	for _, m := range corpus.Modules {
		if sec, ok := backend.Seconds[string(m)]; ok {
			fmt.Printf("  %-3s generated in %.1fs\n", m, sec)
		}
	}

	templates := map[string]*template.FunctionTemplate{}
	for _, g := range p.Groups {
		templates[g.Func.Name] = g.FT
	}
	be := eval.EvaluateBackend(backend, c.Backends["RISCV"], templates)
	tot := be.Totals()
	fmt.Printf("\npass@1 against the reference backend:\n")
	fmt.Printf("  functions:  %d/%d accurate (%.1f%%)\n",
		tot.Accurate, tot.Funcs, 100*tot.FunctionAccuracy())
	fmt.Printf("  statements: %d/%d accurate (%.1f%%), %d need manual effort\n",
		tot.AccurateStatements, tot.RefStatements, 100*tot.StatementAccuracy(), tot.ManualEffort)
	for _, m := range be.ByModule() {
		fmt.Printf("  %-3s  %d/%d functions, %.0f%% statements\n",
			m.Module, m.Accurate, m.Funcs, 100*m.StatementAccuracy())
	}
	errV, errCS, errDef := be.ErrorShare()
	fmt.Printf("  error types: Err-V %.0f%%  Err-CS %.0f%%  Err-Def %.0f%%\n",
		100*errV, 100*errCS, 100*errDef)
	fmt.Printf("  estimated correction effort: %.1f hours (developer A's rate)\n",
		eval.DeveloperA.TotalHours(be.ByModule()))
}
