// Retarget the mini compiler with a corrected VEGA backend (the paper's
// robustness methodology, §4.3): generate a backend, replace its
// inaccurate functions with the base compiler's, extract codegen tables
// by interrogating the corrected functions in the interpreter, and show
// that the resulting compiler matches the base compiler cycle for cycle
// on the PULP-like suite — including RI5CY's hardware-loop and SIMD wins.
//
//	go run ./examples/retarget-compiler
package main

import (
	"fmt"
	"log"

	"vega/internal/bench"
	"vega/internal/compiler"
	"vega/internal/core"
	"vega/internal/corpus"
	"vega/internal/cpp"
	"vega/internal/eval"
	"vega/internal/sim"
)

func main() {
	c, err := corpus.Build()
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Train.Epochs = 8
	p, err := core.New(c, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("training CodeBE...")
	if _, err := p.Train(); err != nil {
		log.Fatal(err)
	}

	const target = "RI5CY"
	ref := c.Backends[target]
	gen := p.GenerateBackend(target)
	be := eval.EvaluateBackend(gen, ref, nil)

	// Correct the backend: keep accurate generated functions, substitute
	// the base compiler's implementation for the inaccurate ones.
	corrected := map[string]*cpp.Node{}
	kept := 0
	for _, r := range be.Results {
		fn := ref.Funcs[r.Name]
		if r.Accurate && r.Emitted {
			if gf := gen.Function(r.Name); gf != nil {
				if parsed, err := gf.Parse(); err == nil {
					cpp.Normalize(parsed)
					fn = parsed
					kept++
				}
			}
		}
		if fn != nil {
			corrected[r.Name] = fn
		}
	}
	fmt.Printf("corrected backend: %d/%d functions straight from VEGA\n", kept, len(corrected))

	// Extract codegen tables by running the corrected backend's functions.
	spec := corpus.FindTarget(target)
	u := eval.NewUniverse(ref)
	vegaTables, err := compiler.TablesFromBackend(spec, corrected, u.Env(0))
	if err != nil {
		log.Fatal(err)
	}
	baseTables, err := compiler.TablesFromBackend(spec, ref.Funcs, eval.NewUniverse(ref).Env(0))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-14s  %12s  %12s  %8s %8s\n", "benchmark", "base cycles", "vega cycles", "base x", "vega x")
	suite := bench.PULPLike()[:8]
	for _, w := range suite {
		b0 := run(w, baseTables, 0)
		b3 := run(w, baseTables, 3)
		v3 := run(w, vegaTables, 3)
		if b3.Return != v3.Return || b0.Return != b3.Return {
			log.Fatalf("%s: functional mismatch", w.Name)
		}
		fmt.Printf("%-14s  %12d  %12d  %7.2fx %7.2fx\n",
			w.Name, b3.Cycles, v3.Cycles,
			float64(b0.Cycles)/float64(b3.Cycles),
			float64(b0.Cycles)/float64(v3.Cycles))
	}
	fmt.Println("\nthe corrected VEGA compiler tracks the base compiler exactly —")
	fmt.Println("the paper's Fig. 10 result, regenerated in full by `vega-bench -exp fig10`.")
}

func run(w bench.Workload, tb *compiler.Tables, opt int) sim.Result {
	obj, err := compiler.Compile(w.Program, tb, opt)
	if err != nil {
		log.Fatal(err)
	}
	vm, err := sim.New(obj, tb, sim.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	res, err := vm.Run(w.Entry, w.Args...)
	if err != nil {
		log.Fatal(err)
	}
	return res
}
