module vega

go 1.24
