package gumtree

import "vega/internal/cpp"

// IndexPair links positions of two sequences.
type IndexPair struct {
	A, B int
}

// TokenLCS returns the index pairs of a longest common subsequence of two
// token sequences.
func TokenLCS(a, b []string) []IndexPair {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return nil
	}
	dp := make([][]int16, n+1)
	for i := range dp {
		dp[i] = make([]int16, m+1)
	}
	for i := n - 1; i >= 0; i-- {
		for j := m - 1; j >= 0; j-- {
			if a[i] == b[j] {
				dp[i][j] = dp[i+1][j+1] + 1
			} else if dp[i+1][j] >= dp[i][j+1] {
				dp[i][j] = dp[i+1][j]
			} else {
				dp[i][j] = dp[i][j+1]
			}
		}
	}
	var out []IndexPair
	i, j := 0, 0
	for i < n && j < m {
		switch {
		case a[i] == b[j]:
			out = append(out, IndexPair{A: i, B: j})
			i++
			j++
		case dp[i+1][j] >= dp[i][j+1]:
			i++
		default:
			j++
		}
	}
	return out
}

// Similarity is the dice coefficient of two token sequences based on LCS
// length: 2·|LCS| / (|a|+|b|). Returns 1 for two empty sequences.
func Similarity(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	lcs := len(TokenLCS(a, b))
	return 2 * float64(lcs) / float64(len(a)+len(b))
}

// AlignPair pairs statement indexes of two sequences; -1 marks a gap
// (statement present on one side only).
type AlignPair struct {
	A, B int
}

// AlignOptions tunes statement alignment.
type AlignOptions struct {
	// MinSim is the minimum token similarity for two statements to align
	// as a match rather than as an insertion/deletion pair.
	MinSim float64
}

// DefaultAlignOptions mirror the thresholds used throughout VEGA.
func DefaultAlignOptions() AlignOptions { return AlignOptions{MinSim: 0.4} }

// AlignStatements aligns two statement sequences by token similarity using
// Needleman–Wunsch-style dynamic programming: matches score their
// similarity, gaps score zero, and only pairs above MinSim may match.
// The result covers every index of both sequences exactly once.
func AlignStatements(a, b []cpp.Statement, opt AlignOptions) []AlignPair {
	ta := make([][]string, len(a))
	for i, s := range a {
		ta[i] = statementTokens(s)
	}
	tb := make([][]string, len(b))
	for i, s := range b {
		tb[i] = statementTokens(s)
	}
	return alignTokenized(ta, tb, opt)
}

// AlignTokenized aligns pre-tokenized statement lines.
func AlignTokenized(a, b [][]string, opt AlignOptions) []AlignPair {
	return alignTokenized(a, b, opt)
}

func alignTokenized(ta, tb [][]string, opt AlignOptions) []AlignPair {
	return AlignFunc(len(ta), len(tb), func(i, j int) float64 {
		return Similarity(ta[i], tb[j])
	}, opt.MinSim)
}

// AlignFunc aligns two abstract sequences of lengths n and m under an
// arbitrary pairwise similarity function; pairs below minSim never match.
// Every index of both sequences appears exactly once, in order.
func AlignFunc(n, m int, sim func(i, j int) float64, minSim float64) []AlignPair {
	score := make([][]float64, n+1)
	for i := range score {
		score[i] = make([]float64, m+1)
	}
	simv := make([][]float64, n)
	for i := range simv {
		simv[i] = make([]float64, m)
		for j := range simv[i] {
			simv[i][j] = sim(i, j)
		}
	}
	for i := n - 1; i >= 0; i-- {
		for j := m - 1; j >= 0; j-- {
			best := score[i+1][j] // gap in b
			if s := score[i][j+1]; s > best {
				best = s // gap in a
			}
			if s := simv[i][j]; s >= minSim {
				if v := s + score[i+1][j+1]; v > best {
					best = v
				}
			}
			score[i][j] = best
		}
	}
	var out []AlignPair
	i, j := 0, 0
	for i < n && j < m {
		s := simv[i][j]
		switch {
		case s >= minSim && score[i][j] == s+score[i+1][j+1]:
			out = append(out, AlignPair{A: i, B: j})
			i++
			j++
		case score[i][j] == score[i+1][j]:
			out = append(out, AlignPair{A: i, B: -1})
			i++
		default:
			out = append(out, AlignPair{A: -1, B: j})
			j++
		}
	}
	for ; i < n; i++ {
		out = append(out, AlignPair{A: i, B: -1})
	}
	for ; j < m; j++ {
		out = append(out, AlignPair{A: -1, B: j})
	}
	return out
}

// statementTokens lexes a statement's text; unlexable text degrades to a
// single opaque token so alignment still proceeds.
func statementTokens(s cpp.Statement) []string {
	toks, err := cpp.Lex(s.Text)
	if err != nil {
		return []string{s.Text}
	}
	return cpp.TokenTexts(toks)
}

// StatementTokens exposes statement tokenization for other packages.
func StatementTokens(s cpp.Statement) []string { return statementTokens(s) }
