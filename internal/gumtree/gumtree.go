// Package gumtree implements the fine-grained AST differencing VEGA uses
// to align statements across target-specific implementations of the same
// interface function, following Falleri et al.'s GumTree algorithm: a
// greedy top-down phase matching isomorphic subtrees, then a bottom-up
// phase matching containers whose descendants largely agree.
//
// It also provides the token-sequence primitives (longest common
// subsequence, dice similarity, sequence alignment) that templatization
// builds on.
package gumtree

import (
	"sort"

	"vega/internal/cpp"
)

// Mapping links a node of the source tree to a node of the destination.
type Mapping struct {
	Src *cpp.Node
	Dst *cpp.Node
}

// Matcher holds the tuning parameters of the GumTree algorithm.
type Matcher struct {
	// MinHeight is the minimum subtree height considered in the top-down
	// phase (GumTree's default is 2).
	MinHeight int
	// SimThreshold is the minimum dice coefficient for bottom-up container
	// matching (GumTree's default is 0.5).
	SimThreshold float64
}

// NewMatcher returns a matcher with the paper-default parameters.
func NewMatcher() *Matcher {
	return &Matcher{MinHeight: 2, SimThreshold: 0.5}
}

// Match computes a node mapping between two ASTs.
func (m *Matcher) Match(src, dst *cpp.Node) []Mapping {
	state := &matchState{
		srcToDst: make(map[*cpp.Node]*cpp.Node),
		dstToSrc: make(map[*cpp.Node]*cpp.Node),
		parents:  make(map[*cpp.Node]*cpp.Node),
	}
	recordParents(src, nil, state.parents)
	recordParents(dst, nil, state.parents)
	m.topDown(src, dst, state)
	m.bottomUp(src, dst, state)
	// GumTree convention: the roots always map to each other; recovery
	// then matches their descendants pairwise where labels agree, which
	// rescues heavily value-divergent but structurally parallel trees.
	if !state.mapped(src, dst) {
		state.add(src, dst)
	}
	recoverChildren(src, dst, state)

	mappings := make([]Mapping, 0, len(state.srcToDst))
	collectInOrder(src, state, &mappings)
	return mappings
}

// Match is a convenience using default parameters.
func Match(src, dst *cpp.Node) []Mapping { return NewMatcher().Match(src, dst) }

type matchState struct {
	srcToDst map[*cpp.Node]*cpp.Node
	dstToSrc map[*cpp.Node]*cpp.Node
	parents  map[*cpp.Node]*cpp.Node
}

func (s *matchState) mapped(src, dst *cpp.Node) bool {
	_, a := s.srcToDst[src]
	_, b := s.dstToSrc[dst]
	return a || b
}

func (s *matchState) add(src, dst *cpp.Node) {
	s.srcToDst[src] = dst
	s.dstToSrc[dst] = src
}

func recordParents(n, parent *cpp.Node, parents map[*cpp.Node]*cpp.Node) {
	if n == nil {
		return
	}
	parents[n] = parent
	for _, c := range n.Children {
		recordParents(c, n, parents)
	}
}

func collectInOrder(src *cpp.Node, s *matchState, out *[]Mapping) {
	src.Walk(func(n *cpp.Node) bool {
		if d, ok := s.srcToDst[n]; ok {
			*out = append(*out, Mapping{Src: n, Dst: d})
		}
		return true
	})
}

// --- top-down phase ---

// topDown greedily matches isomorphic subtrees from tallest to shortest.
func (m *Matcher) topDown(src, dst *cpp.Node, s *matchState) {
	srcByHash := subtreeIndex(src, m.MinHeight)
	dstByHash := subtreeIndex(dst, m.MinHeight)

	// Heights present in both, tallest first.
	heightSet := map[int]bool{}
	for h := range srcByHash {
		if _, ok := dstByHash[h]; ok {
			heightSet[h] = true
		}
	}
	heights := make([]int, 0, len(heightSet))
	for h := range heightSet {
		heights = append(heights, h)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(heights)))

	for _, h := range heights {
		for hash, srcNodes := range srcByHash[h] {
			dstNodes := dstByHash[h][hash]
			if len(dstNodes) == 0 {
				continue
			}
			// Unique-unique pairs match directly; ambiguous ones match
			// greedily in order, which is GumTree's practical fallback.
			k := 0
			for _, sn := range srcNodes {
				if _, ok := s.srcToDst[sn]; ok {
					continue
				}
				for k < len(dstNodes) {
					dn := dstNodes[k]
					k++
					if _, ok := s.dstToSrc[dn]; ok {
						continue
					}
					matchSubtrees(sn, dn, s)
					break
				}
			}
		}
	}
}

// subtreeIndex buckets subtrees by height then structural hash.
func subtreeIndex(root *cpp.Node, minHeight int) map[int]map[uint64][]*cpp.Node {
	idx := make(map[int]map[uint64][]*cpp.Node)
	root.Walk(func(n *cpp.Node) bool {
		h := n.Height()
		if h < minHeight {
			return true
		}
		byHash, ok := idx[h]
		if !ok {
			byHash = make(map[uint64][]*cpp.Node)
			idx[h] = byHash
		}
		hash := n.Hash()
		byHash[hash] = append(byHash[hash], n)
		return true
	})
	return idx
}

// matchSubtrees records mappings for every node pair of two isomorphic
// subtrees.
func matchSubtrees(a, b *cpp.Node, s *matchState) {
	if s.mapped(a, b) {
		return
	}
	s.add(a, b)
	for i := range a.Children {
		matchSubtrees(a.Children[i], b.Children[i], s)
	}
}

// --- bottom-up phase ---

func (m *Matcher) bottomUp(src, dst *cpp.Node, s *matchState) {
	// Post-order over src: containers whose children contain matches are
	// candidates.
	for _, n := range src.PostOrder(nil) {
		if _, ok := s.srcToDst[n]; ok || n.IsLeaf() {
			continue
		}
		cand := m.candidate(n, s)
		if cand == nil {
			continue
		}
		if dice(n, cand, s) >= m.SimThreshold {
			s.add(n, cand)
			// Opportunistic recovery: match unmatched children with equal
			// labels pairwise in order.
			recoverChildren(n, cand, s)
		}
	}
}

// candidate finds the dst node whose matched descendants overlap n's the
// most, among dst nodes with the same label.
func (m *Matcher) candidate(n *cpp.Node, s *matchState) *cpp.Node {
	counts := make(map[*cpp.Node]int)
	n.Walk(func(d *cpp.Node) bool {
		if dd, ok := s.srcToDst[d]; ok {
			// climb dst ancestors with same label as n
			for p := s.parents[dd]; p != nil; p = s.parents[p] {
				if p.Label() == n.Label() {
					if _, taken := s.dstToSrc[p]; !taken {
						counts[p]++
					}
				}
			}
		}
		return true
	})
	var best *cpp.Node
	bestCount := 0
	for c, k := range counts {
		if k > bestCount {
			best, bestCount = c, k
		}
	}
	return best
}

// dice computes the dice coefficient over matched descendants.
func dice(a, b *cpp.Node, s *matchState) float64 {
	common := 0
	a.Walk(func(d *cpp.Node) bool {
		if dd, ok := s.srcToDst[d]; ok && isDescendant(dd, b, s.parents) {
			common++
		}
		return true
	})
	da, db := a.Size()-1, b.Size()-1
	if da+db == 0 {
		return 0
	}
	return 2 * float64(common) / float64(da+db)
}

func isDescendant(n, ancestor *cpp.Node, parents map[*cpp.Node]*cpp.Node) bool {
	for p := parents[n]; p != nil; p = parents[p] {
		if p == ancestor {
			return true
		}
	}
	return false
}

func recoverChildren(a, b *cpp.Node, s *matchState) {
	j := 0
	for _, ca := range a.Children {
		if _, ok := s.srcToDst[ca]; ok {
			continue
		}
		for j < len(b.Children) {
			cb := b.Children[j]
			j++
			if _, taken := s.dstToSrc[cb]; taken {
				continue
			}
			if ca.Label() == cb.Label() {
				s.add(ca, cb)
				recoverChildren(ca, cb, s)
			}
			break
		}
	}
}
