package gumtree

import (
	"testing"
	"testing/quick"

	"vega/internal/cpp"
)

func parseFn(t *testing.T, src string) *cpp.Node {
	t.Helper()
	fn, err := cpp.ParseFunction(src)
	if err != nil {
		t.Fatal(err)
	}
	return fn
}

const armReloc = `unsigned ARMELFObjectWriter::getRelocType(unsigned Kind, bool IsPCRel) {
  unsigned K = Fixup.getTargetKind();
  if (IsPCRel) {
    switch (K) {
    case ARM::fixup_arm_movt_hi16:
      return ELF::R_ARM_MOVT_PREL;
    default:
      return ELF::R_ARM_NONE;
    }
  }
  return ELF::R_ARM_ABS32;
}`

const mipsReloc = `unsigned MipsELFObjectWriter::getRelocType(unsigned Kind, bool IsPCRel) {
  unsigned K = Fixup.getTargetKind();
  if (IsPCRel) {
    switch (K) {
    case Mips::fixup_MIPS_HI16:
      return ELF::R_MIPS_HI16;
    default:
      return ELF::R_MIPS_NONE;
    }
  }
  return ELF::R_MIPS_32;
}`

func TestMatchIdenticalTrees(t *testing.T) {
	a := parseFn(t, armReloc)
	b := parseFn(t, armReloc)
	mappings := Match(a, b)
	if len(mappings) != a.Size() {
		t.Errorf("identical trees: %d mappings, want %d", len(mappings), a.Size())
	}
	for _, m := range mappings {
		if m.Src.Label() != m.Dst.Label() {
			t.Errorf("mismatched labels: %q vs %q", m.Src.Label(), m.Dst.Label())
		}
	}
}

func TestMatchSimilarFunctions(t *testing.T) {
	a := parseFn(t, armReloc)
	b := parseFn(t, mipsReloc)
	mappings := Match(a, b)
	// The two functions share most of their structure; the mapping should
	// cover a majority of nodes.
	if len(mappings) < a.Size()/2 {
		t.Errorf("only %d of %d nodes matched", len(mappings), a.Size())
	}
	// The declaration statements (identical) must be matched to each other.
	declA := a.Children[2].Children[0]
	found := false
	for _, m := range mappings {
		if m.Src == declA {
			found = true
			if m.Dst.Kind != cpp.KindDecl {
				t.Errorf("decl matched to %v", m.Dst.Kind)
			}
		}
	}
	if !found {
		t.Error("declaration statement unmatched")
	}
}

func TestMatchMappingIsInjective(t *testing.T) {
	a := parseFn(t, armReloc)
	b := parseFn(t, mipsReloc)
	mappings := Match(a, b)
	srcSeen := map[*cpp.Node]bool{}
	dstSeen := map[*cpp.Node]bool{}
	for _, m := range mappings {
		if srcSeen[m.Src] {
			t.Error("src node mapped twice")
		}
		if dstSeen[m.Dst] {
			t.Error("dst node mapped twice")
		}
		srcSeen[m.Src] = true
		dstSeen[m.Dst] = true
	}
}

func TestTokenLCS(t *testing.T) {
	a := []string{"case", "ARM", "::", "fixup_arm_movt_hi16", ":"}
	b := []string{"case", "Mips", "::", "fixup_MIPS_HI16", ":"}
	lcs := TokenLCS(a, b)
	if len(lcs) != 3 { // case, ::, :
		t.Errorf("LCS = %v, want 3 pairs", lcs)
	}
	if lcs[0] != (IndexPair{0, 0}) {
		t.Errorf("first pair = %v", lcs[0])
	}
}

func TestTokenLCSEmpty(t *testing.T) {
	if got := TokenLCS(nil, []string{"a"}); got != nil {
		t.Errorf("LCS with empty = %v", got)
	}
}

func TestSimilarity(t *testing.T) {
	if s := Similarity([]string{"a", "b"}, []string{"a", "b"}); s != 1 {
		t.Errorf("identical similarity = %f", s)
	}
	if s := Similarity([]string{"a"}, []string{"b"}); s != 0 {
		t.Errorf("disjoint similarity = %f", s)
	}
	if s := Similarity(nil, nil); s != 1 {
		t.Errorf("empty similarity = %f", s)
	}
	s := Similarity([]string{"return", "x", ";"}, []string{"return", "y", ";"})
	if s <= 0.5 || s >= 1 {
		t.Errorf("partial similarity = %f", s)
	}
}

// Property: LCS indexes are strictly increasing in both coordinates and
// every paired element is equal.
func TestTokenLCSProperty(t *testing.T) {
	alphabet := []string{"a", "b", "c", "d"}
	f := func(xs, ys []uint8) bool {
		a := make([]string, len(xs))
		for i, x := range xs {
			a[i] = alphabet[int(x)%len(alphabet)]
		}
		b := make([]string, len(ys))
		for i, y := range ys {
			b[i] = alphabet[int(y)%len(alphabet)]
		}
		lcs := TokenLCS(a, b)
		prevA, prevB := -1, -1
		for _, p := range lcs {
			if p.A <= prevA || p.B <= prevB {
				return false
			}
			if a[p.A] != b[p.B] {
				return false
			}
			prevA, prevB = p.A, p.B
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAlignStatements(t *testing.T) {
	fa := parseFn(t, armReloc)
	fb := parseFn(t, mipsReloc)
	sa := cpp.SplitFunction(fa)
	sb := cpp.SplitFunction(fb)
	pairs := AlignStatements(sa, sb, DefaultAlignOptions())
	// Same shape: everything should align 1:1, no gaps.
	for _, p := range pairs {
		if p.A == -1 || p.B == -1 {
			t.Errorf("unexpected gap at %v", p)
		}
	}
	if len(pairs) != len(sa) {
		t.Errorf("pairs = %d, want %d", len(pairs), len(sa))
	}
}

func TestAlignStatementsWithGap(t *testing.T) {
	fa := parseFn(t, `unsigned f(unsigned K) {
  unsigned Kind = Fixup.getTargetKind();
  MCSymbolRefExpr::VariantKind Modifier = Target.getAccessVariant();
  return Kind;
}`)
	fb := parseFn(t, `unsigned f(unsigned K) {
  unsigned Kind = Fixup.getTargetKind();
  return Kind;
}`)
	sa := cpp.SplitFunction(fa)
	sb := cpp.SplitFunction(fb)
	pairs := AlignStatements(sa, sb, DefaultAlignOptions())
	var gaps int
	for _, p := range pairs {
		if p.B == -1 {
			gaps++
			if sa[p.A].Text[:2] != "MC" {
				t.Errorf("wrong statement gapped: %q", sa[p.A].Text)
			}
		}
	}
	if gaps != 1 {
		t.Errorf("gaps = %d, want 1", gaps)
	}
}

// Property: alignment covers all indexes of both sequences exactly once,
// in order.
func TestAlignCoverageProperty(t *testing.T) {
	lines := [][]string{
		{"return", "0", ";"},
		{"x", "=", "y", ";"},
		{"if", "(", "a", ")", "{"},
		{"}"},
		{"switch", "(", "k", ")", "{"},
	}
	f := func(xs, ys []uint8) bool {
		a := make([][]string, len(xs))
		for i, x := range xs {
			a[i] = lines[int(x)%len(lines)]
		}
		b := make([][]string, len(ys))
		for i, y := range ys {
			b[i] = lines[int(y)%len(lines)]
		}
		pairs := AlignTokenized(a, b, DefaultAlignOptions())
		nextA, nextB := 0, 0
		for _, p := range pairs {
			if p.A != -1 {
				if p.A != nextA {
					return false
				}
				nextA++
			}
			if p.B != -1 {
				if p.B != nextB {
					return false
				}
				nextB++
			}
		}
		return nextA == len(a) && nextB == len(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAlignPrefersSimilarPairs(t *testing.T) {
	a := [][]string{{"case", "A", "::", "x", ":"}, {"return", "1", ";"}}
	b := [][]string{{"case", "B", "::", "y", ":"}, {"return", "2", ";"}}
	pairs := AlignTokenized(a, b, DefaultAlignOptions())
	if len(pairs) != 2 || pairs[0] != (AlignPair{0, 0}) || pairs[1] != (AlignPair{1, 1}) {
		t.Errorf("pairs = %v", pairs)
	}
}
