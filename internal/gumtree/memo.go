package gumtree

import "strings"

// SimCache memoizes token-sequence similarity. Templatization's
// best-of-targets inner loop asks for Similarity of the same (row
// statement, implementation statement) token lists over and over as the
// template accumulates targets; interning each distinct token list to a
// small integer id and caching the LCS-based similarity per id pair
// turns those repeats into map hits. Results are exactly the values
// Similarity would return — identical token lists share one id, so no
// hash collision can change a score.
//
// A SimCache is not safe for concurrent use; give each alignment its
// own.
type SimCache struct {
	ids   map[string]int // joined token key -> id
	lists [][]string     // id -> token list
	cache map[uint64]float64
}

// NewSimCache returns an empty cache.
func NewSimCache() *SimCache {
	return &SimCache{ids: make(map[string]int), cache: make(map[uint64]float64)}
}

// Intern returns the id of a token list, assigning one on first sight.
// Identical lists (element-wise) always share an id.
func (c *SimCache) Intern(toks []string) int {
	key := strings.Join(toks, "\x00")
	if id, ok := c.ids[key]; ok {
		return id
	}
	id := len(c.lists)
	c.ids[key] = id
	c.lists = append(c.lists, toks)
	return id
}

// Sim returns Similarity of the two interned lists, computing each
// distinct unordered pair at most once.
func (c *SimCache) Sim(a, b int) float64 {
	if a == b {
		return 1
	}
	if a > b {
		a, b = b, a
	}
	key := uint64(a)<<32 | uint64(b)
	if v, ok := c.cache[key]; ok {
		return v
	}
	v := Similarity(c.lists[a], c.lists[b])
	c.cache[key] = v
	return v
}
