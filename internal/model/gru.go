package model

import "math/rand"

// GRUCell is a gated recurrent unit.
type GRUCell struct {
	WZ, UZ, WR, UR, WH, UH *Tensor
	BZ, BR, BH             *Tensor
}

// NewGRUCell allocates a GRU cell with input and hidden width d.
func NewGRUCell(d int, rng *rand.Rand) *GRUCell {
	bias := func() *Tensor {
		b := NewTensor(1, d)
		b.requiresGrad = true
		b.Grad = make([]float32, d)
		return b
	}
	return &GRUCell{
		WZ: NewParam(d, d, rng), UZ: NewParam(d, d, rng),
		WR: NewParam(d, d, rng), UR: NewParam(d, d, rng),
		WH: NewParam(d, d, rng), UH: NewParam(d, d, rng),
		BZ: bias(), BR: bias(), BH: bias(),
	}
}

// Step advances the cell: x and h are 1×d; returns the new hidden state.
func (c *GRUCell) Step(tp *Tape, x, h *Tensor) *Tensor {
	z := tp.Sigmoid(tp.Add(tp.Add(tp.MatMul(x, c.WZ), tp.MatMul(h, c.UZ)), c.BZ))
	r := tp.Sigmoid(tp.Add(tp.Add(tp.MatMul(x, c.WR), tp.MatMul(h, c.UR)), c.BR))
	hh := tp.Tanh(tp.Add(tp.Add(tp.MatMul(x, c.WH), tp.MatMul(tp.Mul(r, h), c.UH)), c.BH))
	// h' = (1-z)·h + z·hh = h + z·(hh - h)
	diff := tp.Add(hh, tp.Scale(h, -1))
	return tp.Add(h, tp.Mul(z, diff))
}

// Params returns the trainable tensors.
func (c *GRUCell) Params() []*Tensor {
	return []*Tensor{c.WZ, c.UZ, c.WR, c.UR, c.WH, c.UH, c.BZ, c.BR, c.BH}
}

// GRUSeq2Seq is the RNN-based VEGA baseline from the paper's model
// ablation: a GRU encoder compressing the feature vector into one hidden
// state and a GRU decoder emitting pieces from it, without attention.
type GRUSeq2Seq struct {
	Cfg    Config
	Embed  *Tensor
	Enc    *GRUCell
	Dec    *GRUCell
	Out    *Linear
	params []*Tensor
}

// NewGRUSeq2Seq allocates the baseline.
func NewGRUSeq2Seq(cfg Config) *GRUSeq2Seq {
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &GRUSeq2Seq{
		Cfg:   cfg,
		Embed: NewParam(cfg.Vocab, cfg.Dim, rng),
		Enc:   NewGRUCell(cfg.Dim, rng),
		Dec:   NewGRUCell(cfg.Dim, rng),
		Out:   NewLinear(cfg.Dim, cfg.Vocab, rng),
	}
	m.params = []*Tensor{m.Embed}
	m.params = append(m.params, m.Enc.Params()...)
	m.params = append(m.params, m.Dec.Params()...)
	m.params = append(m.params, m.Out.Params()...)
	return m
}

// Params returns all trainable tensors.
func (m *GRUSeq2Seq) Params() []*Tensor { return m.params }

func (m *GRUSeq2Seq) encode(tp *Tape, input []int) *Tensor {
	if len(input) > m.Cfg.MaxSeq {
		input = input[:m.Cfg.MaxSeq]
	}
	h := NewTensor(1, m.Cfg.Dim)
	for _, id := range input {
		x := tp.Rows(m.Embed, []int{id})
		h = m.Enc.Step(tp, x, h)
	}
	return h
}

// Loss computes teacher-forced cross entropy.
func (m *GRUSeq2Seq) Loss(tp *Tape, input, output []int) *Tensor {
	h := m.encode(tp, input)
	prefix := append([]int{BOS}, output...)
	if len(prefix) > m.Cfg.MaxSeq {
		prefix = prefix[:m.Cfg.MaxSeq]
	}
	var logits *Tensor
	for _, id := range prefix {
		x := tp.Rows(m.Embed, []int{id})
		h = m.Dec.Step(tp, x, h)
		l := m.Out.Apply(tp, h)
		if logits == nil {
			logits = l
		} else {
			logits = tp.Concat(logits, l)
		}
	}
	targets := append(append([]int{}, output...), EOS)
	targets = targets[:logits.R]
	return tp.CrossEntropy(logits, targets)
}

// Generate decodes greedily.
func (m *GRUSeq2Seq) Generate(input []int, maxLen int) []int {
	tp := NewTape()
	h := m.encode(tp, input)
	var out []int
	cur := BOS
	for len(out) < maxLen {
		x := tp.Rows(m.Embed, []int{cur})
		h = m.Dec.Step(tp, x, h)
		logits := m.Out.Apply(tp, h)
		next := argmax(logits.Row(0))
		if next == EOS {
			break
		}
		out = append(out, next)
		cur = next
	}
	return out
}

var _ Seq2Seq = (*GRUSeq2Seq)(nil)
