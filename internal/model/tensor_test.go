package model

import (
	"math"
	"math/rand"
	"testing"
)

// numGrad computes a numerical gradient of f with respect to p[i].
func numGrad(f func() float64, p *Tensor, i int) float64 {
	const eps = 1e-3
	orig := p.Data[i]
	p.Data[i] = orig + eps
	hi := f()
	p.Data[i] = orig - eps
	lo := f()
	p.Data[i] = orig
	return (hi - lo) / (2 * eps)
}

// checkGrads verifies analytic vs numerical gradients for a scalar-valued
// computation over the given parameters.
func checkGrads(t *testing.T, build func(tp *Tape) *Tensor, params []*Tensor, tol float64) {
	t.Helper()
	tp := NewTape()
	loss := build(tp)
	tp.Backward(loss)
	tp.MergeGrads()
	f := func() float64 {
		return float64(build(NewTape()).Data[0])
	}
	for pi, p := range params {
		for _, i := range []int{0, len(p.Data) / 2, len(p.Data) - 1} {
			want := numGrad(f, p, i)
			got := float64(p.Grad[i])
			if math.Abs(got-want) > tol*(1+math.Abs(want)) {
				t.Errorf("param %d elem %d: analytic %g vs numeric %g", pi, i, got, want)
			}
		}
		p.ZeroGrad()
	}
}

func TestMatMulGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := NewParam(3, 4, rng)
	b := NewParam(4, 2, rng)
	checkGrads(t, func(tp *Tape) *Tensor {
		out := tp.MatMul(a, b)
		return tp.CrossEntropy(out, []int{0, 1, 0})
	}, []*Tensor{a, b}, 1e-2)
}

func TestAddBroadcastGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := NewParam(3, 4, rng)
	b := NewParam(1, 4, rng)
	checkGrads(t, func(tp *Tape) *Tensor {
		return tp.CrossEntropy(tp.Add(a, b), []int{1, 2, 3})
	}, []*Tensor{a, b}, 1e-2)
}

func TestSoftmaxCrossEntropyGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := NewParam(2, 5, rng)
	checkGrads(t, func(tp *Tape) *Tensor {
		return tp.CrossEntropy(tp.Scale(a, 2), []int{4, 0})
	}, []*Tensor{a}, 1e-2)
}

func TestLayerNormGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := NewParam(2, 6, rng)
	n := NewNorm(6)
	params := append([]*Tensor{a}, n.Params()...)
	checkGrads(t, func(tp *Tape) *Tensor {
		return tp.CrossEntropy(n.Apply(tp, a), []int{0, 5})
	}, params, 2e-2)
}

func TestNonlinearityGrads(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := NewParam(2, 4, rng)
	for name, f := range map[string]func(tp *Tape, x *Tensor) *Tensor{
		"gelu":    func(tp *Tape, x *Tensor) *Tensor { return tp.GELU(x) },
		"relu":    func(tp *Tape, x *Tensor) *Tensor { return tp.ReLU(x) },
		"sigmoid": func(tp *Tape, x *Tensor) *Tensor { return tp.Sigmoid(x) },
		"tanh":    func(tp *Tape, x *Tensor) *Tensor { return tp.Tanh(x) },
	} {
		fn := f
		t.Run(name, func(t *testing.T) {
			checkGrads(t, func(tp *Tape) *Tensor {
				return tp.CrossEntropy(fn(tp, a), []int{0, 3})
			}, []*Tensor{a}, 2e-2)
		})
	}
}

func TestAttentionGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	x := NewParam(3, 8, rng)
	mha := NewMHA(8, 2, rng)
	params := append([]*Tensor{x}, mha.Params()...)
	checkGrads(t, func(tp *Tape) *Tensor {
		out := mha.Apply(tp, x, x, true)
		return tp.CrossEntropy(out, []int{0, 1, 2})
	}, params, 3e-2)
}

func TestGRUCellGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	x := NewParam(1, 6, rng)
	cell := NewGRUCell(6, rng)
	params := append([]*Tensor{x}, cell.Params()...)
	checkGrads(t, func(tp *Tape) *Tensor {
		h := NewTensor(1, 6)
		h1 := cell.Step(tp, x, h)
		h2 := cell.Step(tp, x, h1)
		return tp.CrossEntropy(h2, []int{3})
	}, params, 3e-2)
}

func TestRowsGather(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	emb := NewParam(5, 3, rng)
	tp := NewTape()
	out := tp.Rows(emb, []int{1, 1, 4})
	if out.R != 3 || out.C != 3 {
		t.Fatalf("shape %dx%d", out.R, out.C)
	}
	for j := 0; j < 3; j++ {
		if out.At(0, j) != emb.At(1, j) || out.At(1, j) != emb.At(1, j) || out.At(2, j) != emb.At(4, j) {
			t.Fatal("gather copied wrong rows")
		}
	}
	loss := tp.CrossEntropy(out, []int{0, 1, 2})
	tp.Backward(loss)
	tp.MergeGrads()
	// Row 1 was used twice: its grad should be the sum of two rows' grads.
	var row0 float32
	for j := 0; j < 3; j++ {
		row0 += emb.Grad[1*3+j]
	}
	if row0 == 0 {
		t.Error("row 1 received no gradient")
	}
	var row2 float32
	for j := 0; j < 3; j++ {
		row2 += emb.Grad[2*3+j]
	}
	if row2 != 0 {
		t.Error("unused row received gradient")
	}
}

func TestConcatOps(t *testing.T) {
	tp := NewTape()
	a := FromSlice(1, 2, []float32{1, 2})
	b := FromSlice(2, 2, []float32{3, 4, 5, 6})
	v := tp.Concat(a, b)
	if v.R != 3 || v.At(2, 1) != 6 {
		t.Errorf("Concat wrong: %+v", v)
	}
	h := tp.HConcat(b, b)
	if h.R != 2 || h.C != 4 || h.At(1, 3) != 6 {
		t.Errorf("HConcat wrong: %+v", h)
	}
	s := tp.SliceRows(b, 1, 2)
	if s.R != 1 || s.At(0, 0) != 5 {
		t.Errorf("SliceRows wrong: %+v", s)
	}
	c := tp.SliceCols(b, 1, 2)
	if c.R != 2 || c.C != 1 || c.At(1, 0) != 6 {
		t.Errorf("SliceCols wrong: %+v", c)
	}
	tr := tp.Transpose(b)
	if tr.R != 2 || tr.At(0, 1) != 5 {
		t.Errorf("Transpose wrong: %+v", tr)
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	tp := NewTape()
	a := FromSlice(2, 3, []float32{1, 2, 3, -1, 0, 1})
	s := tp.Softmax(a, nil)
	for i := 0; i < 2; i++ {
		var sum float32
		for j := 0; j < 3; j++ {
			sum += s.At(i, j)
		}
		if math.Abs(float64(sum)-1) > 1e-5 {
			t.Errorf("row %d sums to %f", i, sum)
		}
	}
}

func TestCausalMask(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	x := NewParam(4, 8, rng)
	mha := NewMHA(8, 2, rng)
	tp := NewTape()
	out1 := mha.Apply(tp, x, x, true)
	// Changing a later row must not affect earlier outputs under a causal
	// mask.
	x.Data[3*8+0] += 10
	tp2 := NewTape()
	out2 := mha.Apply(tp2, x, x, true)
	for j := 0; j < 8; j++ {
		if math.Abs(float64(out1.At(0, j)-out2.At(0, j))) > 1e-5 {
			t.Fatalf("causal leak at col %d: %f vs %f", j, out1.At(0, j), out2.At(0, j))
		}
	}
}

func TestAdamReducesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	w := NewParam(4, 3, rng)
	adam := NewAdam([]*Tensor{w}, 1e-2)
	x := FromSlice(2, 4, []float32{1, 0, 0, 1, 0, 1, 1, 0})
	targets := []int{0, 2}
	var first, last float64
	for it := 0; it < 200; it++ {
		tp := NewTape()
		loss := tp.CrossEntropy(tp.MatMul(x, w), targets)
		tp.Backward(loss)
		tp.MergeGrads()
		adam.Step()
		if it == 0 {
			first = float64(loss.Data[0])
		}
		last = float64(loss.Data[0])
	}
	if last >= first/10 {
		t.Errorf("Adam failed to optimize: first %f, last %f", first, last)
	}
}

func TestMergeGradsAccumulates(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	w := NewParam(2, 2, rng)
	run := func() {
		tp := NewTape()
		loss := tp.CrossEntropy(w, []int{0, 1})
		tp.Backward(loss)
		tp.MergeGrads()
	}
	run()
	g0 := append([]float32{}, w.Grad...)
	run()
	for i := range g0 {
		if math.Abs(float64(w.Grad[i]-2*g0[i])) > 1e-5 {
			t.Fatalf("grad %d did not accumulate: %f vs %f", i, w.Grad[i], 2*g0[i])
		}
	}
}
