// Package model implements the neural machinery behind CodeBE, VEGA's
// code-generation model, entirely from scratch: a float32 matrix type with
// tape-based reverse-mode autodiff, the transformer encoder-decoder that
// plays the role of the fine-tuned UniXcoder, a GRU seq2seq and an
// encoder-only "vanilla BERT"-style baseline for the paper's model
// ablation, a subword tokenizer, and the Adam optimizer.
package model

import (
	"fmt"
	"math"
	"math/rand"
)

// Tensor is a dense row-major float32 matrix participating in automatic
// differentiation. Vectors are 1×C or R×1 matrices.
type Tensor struct {
	R, C int
	Data []float32
	Grad []float32

	requiresGrad bool
	back         func()
	parents      []*Tensor
	owner        *Tape // tape that created this tensor; nil for leaves
}

// NewTensor allocates a zero matrix.
func NewTensor(r, c int) *Tensor {
	return &Tensor{R: r, C: c, Data: make([]float32, r*c)}
}

// NewParam allocates a trainable matrix initialized with scaled Gaussian
// noise (std = 1/sqrt(c)).
func NewParam(r, c int, rng *rand.Rand) *Tensor {
	t := NewTensor(r, c)
	std := 1 / math.Sqrt(float64(c))
	for i := range t.Data {
		t.Data[i] = float32(rng.NormFloat64() * std)
	}
	t.requiresGrad = true
	t.Grad = make([]float32, r*c)
	return t
}

// FromSlice wraps data (copied) into an r×c tensor.
func FromSlice(r, c int, data []float32) *Tensor {
	if len(data) != r*c {
		panic(fmt.Sprintf("model: FromSlice %dx%d with %d values", r, c, len(data)))
	}
	t := NewTensor(r, c)
	copy(t.Data, data)
	return t
}

// At returns the element at row i, column j.
func (t *Tensor) At(i, j int) float32 { return t.Data[i*t.C+j] }

// Set assigns the element at row i, column j.
func (t *Tensor) Set(i, j int, v float32) { t.Data[i*t.C+j] = v }

// Row returns a view of row i's data.
func (t *Tensor) Row(i int) []float32 { return t.Data[i*t.C : (i+1)*t.C] }

// ZeroGrad clears the gradient buffer.
func (t *Tensor) ZeroGrad() {
	for i := range t.Grad {
		t.Grad[i] = 0
	}
}

// Tape records the computation graph for one forward pass so Backward can
// replay it in reverse. Tapes are single-goroutine, but several tapes can
// run concurrently over the same parameters: gradients for leaf parameters
// accumulate into tape-local shadow buffers, merged into the parameters
// with MergeGrads (under the caller's lock).
type Tape struct {
	nodes  []*Tensor
	shadow map[*Tensor][]float32
}

// NewTape returns an empty tape.
func NewTape() *Tape { return &Tape{shadow: make(map[*Tensor][]float32)} }

func (tp *Tape) record(t *Tensor, back func(), parents ...*Tensor) *Tensor {
	t.back = back
	t.parents = parents
	t.owner = tp
	for _, p := range parents {
		if p.requiresGrad {
			t.requiresGrad = true
		}
	}
	if t.requiresGrad && t.Grad == nil {
		t.Grad = make([]float32, len(t.Data))
	}
	tp.nodes = append(tp.nodes, t)
	return t
}

// g returns the gradient buffer to accumulate into for t: the tensor's own
// buffer when the tape created it, a tape-local shadow for shared leaves.
func (tp *Tape) g(t *Tensor) []float32 {
	if t.owner == tp {
		return t.Grad
	}
	if buf, ok := tp.shadow[t]; ok {
		return buf
	}
	buf := make([]float32, len(t.Data))
	tp.shadow[t] = buf
	return buf
}

// Backward back-propagates from loss (a 1×1 tensor) through the tape.
// Leaf-parameter gradients land in shadow buffers; call MergeGrads to
// flush them into the parameters.
func (tp *Tape) Backward(loss *Tensor) {
	if len(loss.Data) != 1 {
		panic("model: Backward expects a scalar loss")
	}
	if loss.Grad == nil {
		loss.Grad = make([]float32, 1)
	}
	loss.Grad[0] = 1
	for i := len(tp.nodes) - 1; i >= 0; i-- {
		n := tp.nodes[i]
		if n.back != nil && n.requiresGrad {
			n.back()
		}
	}
}

// MergeGrads adds the tape's shadow gradients into their parameters.
// Callers running tapes concurrently must serialize MergeGrads.
func (tp *Tape) MergeGrads() {
	for p, buf := range tp.shadow {
		for i := range buf {
			p.Grad[i] += buf[i]
		}
	}
}

// --- primitive ops ---

// MatMul multiplies a (r×k) by b (k×c).
func (tp *Tape) MatMul(a, b *Tensor) *Tensor {
	if a.C != b.R {
		panic(fmt.Sprintf("model: MatMul %dx%d · %dx%d", a.R, a.C, b.R, b.C))
	}
	out := NewTensor(a.R, b.C)
	matmul(out.Data, a.Data, b.Data, a.R, a.C, b.C)
	return tp.record(out, func() {
		// dA = dOut · Bᵀ ; dB = Aᵀ · dOut
		if a.requiresGrad {
			matmulNT(tp.g(a), out.Grad, b.Data, a.R, b.C, a.C)
		}
		if b.requiresGrad {
			matmulTN(tp.g(b), a.Data, out.Grad, a.C, a.R, b.C)
		}
	}, a, b)
}

// matmul computes out += a·b with a r×k, b k×c (out assumed zeroed).
func matmul(out, a, b []float32, r, k, c int) {
	for i := 0; i < r; i++ {
		arow := a[i*k : (i+1)*k]
		orow := out[i*c : (i+1)*c]
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			axpy(orow, b[p*c:(p+1)*c], av)
		}
	}
}

// matmulNT computes dst += a·bᵀ with a r×k, b c×k, dst r×c.
func matmulNT(dst, a, b []float32, r, k, c int) {
	for i := 0; i < r; i++ {
		arow := a[i*k : (i+1)*k]
		drow := dst[i*c : (i+1)*c]
		for j := 0; j < c; j++ {
			brow := b[j*k : (j+1)*k]
			var s float32
			for p := range arow {
				s += arow[p] * brow[p]
			}
			drow[j] += s
		}
	}
}

// matmulTN computes dst += aᵀ·b with a r2×r, b r2×c, dst r×c.
func matmulTN(dst, a, b []float32, r, r2, c int) {
	for p := 0; p < r2; p++ {
		arow := a[p*r : (p+1)*r]
		brow := b[p*c : (p+1)*c]
		for i := 0; i < r; i++ {
			av := arow[i]
			if av == 0 {
				continue
			}
			axpy(dst[i*c:(i+1)*c], brow, av)
		}
	}
}

// Add returns a + b (same shape), or a + row-broadcast b (b is 1×C).
func (tp *Tape) Add(a, b *Tensor) *Tensor {
	out := NewTensor(a.R, a.C)
	switch {
	case b.R == a.R && b.C == a.C:
		for i := range out.Data {
			out.Data[i] = a.Data[i] + b.Data[i]
		}
		return tp.record(out, func() {
			if a.requiresGrad {
				axpy(tp.g(a), out.Grad, 1)
			}
			if b.requiresGrad {
				axpy(tp.g(b), out.Grad, 1)
			}
		}, a, b)
	case b.R == 1 && b.C == a.C:
		for i := 0; i < a.R; i++ {
			arow, orow := a.Row(i), out.Row(i)
			for j := range orow {
				orow[j] = arow[j] + b.Data[j]
			}
		}
		return tp.record(out, func() {
			if a.requiresGrad {
				axpy(tp.g(a), out.Grad, 1)
			}
			if b.requiresGrad {
				bg := tp.g(b)
				for i := 0; i < a.R; i++ {
					orow := out.Grad[i*a.C : (i+1)*a.C]
					for j := range orow {
						bg[j] += orow[j]
					}
				}
			}
		}, a, b)
	default:
		panic(fmt.Sprintf("model: Add shape mismatch %dx%d + %dx%d", a.R, a.C, b.R, b.C))
	}
}

// axpy computes dst[i] += alpha·src[i]. The 4-way unroll only widens
// the loop body — each element still receives exactly one += per call,
// so the accumulation order (and therefore the float32 result) is
// unchanged while the independent lanes overlap in the pipeline.
func axpy(dst, src []float32, alpha float32) {
	src = src[:len(dst)]
	i := 0
	for ; i+4 <= len(dst); i += 4 {
		dst[i] += alpha * src[i]
		dst[i+1] += alpha * src[i+1]
		dst[i+2] += alpha * src[i+2]
		dst[i+3] += alpha * src[i+3]
	}
	for ; i < len(dst); i++ {
		dst[i] += alpha * src[i]
	}
}

// Scale returns a·s.
func (tp *Tape) Scale(a *Tensor, s float32) *Tensor {
	out := NewTensor(a.R, a.C)
	for i := range out.Data {
		out.Data[i] = a.Data[i] * s
	}
	return tp.record(out, func() {
		if a.requiresGrad {
			axpy(tp.g(a), out.Grad, s)
		}
	}, a)
}

// Mul returns the elementwise product.
func (tp *Tape) Mul(a, b *Tensor) *Tensor {
	if a.R != b.R || a.C != b.C {
		panic("model: Mul shape mismatch")
	}
	out := NewTensor(a.R, a.C)
	for i := range out.Data {
		out.Data[i] = a.Data[i] * b.Data[i]
	}
	return tp.record(out, func() {
		if a.requiresGrad {
			ag := tp.g(a)
			for i := range ag {
				ag[i] += out.Grad[i] * b.Data[i]
			}
		}
		if b.requiresGrad {
			bg := tp.g(b)
			for i := range bg {
				bg[i] += out.Grad[i] * a.Data[i]
			}
		}
	}, a, b)
}

// ReLU applies max(0, x).
func (tp *Tape) ReLU(a *Tensor) *Tensor {
	out := NewTensor(a.R, a.C)
	for i, v := range a.Data {
		if v > 0 {
			out.Data[i] = v
		}
	}
	return tp.record(out, func() {
		if a.requiresGrad {
			ag := tp.g(a)
			for i := range ag {
				if a.Data[i] > 0 {
					ag[i] += out.Grad[i]
				}
			}
		}
	}, a)
}

// GELU applies the tanh-approximated Gaussian error linear unit.
func (tp *Tape) GELU(a *Tensor) *Tensor {
	out := NewTensor(a.R, a.C)
	const c0 = 0.7978845608028654 // sqrt(2/pi)
	for i, v := range a.Data {
		x := float64(v)
		out.Data[i] = float32(0.5 * x * (1 + math.Tanh(c0*(x+0.044715*x*x*x))))
	}
	return tp.record(out, func() {
		if !a.requiresGrad {
			return
		}
		ag := tp.g(a)
		for i := range ag {
			x := float64(a.Data[i])
			t := math.Tanh(c0 * (x + 0.044715*x*x*x))
			d := 0.5*(1+t) + 0.5*x*(1-t*t)*c0*(1+3*0.044715*x*x)
			ag[i] += out.Grad[i] * float32(d)
		}
	}, a)
}

// Sigmoid applies 1/(1+e^-x).
func (tp *Tape) Sigmoid(a *Tensor) *Tensor {
	out := NewTensor(a.R, a.C)
	for i, v := range a.Data {
		out.Data[i] = float32(1 / (1 + math.Exp(-float64(v))))
	}
	return tp.record(out, func() {
		if a.requiresGrad {
			ag := tp.g(a)
			for i := range ag {
				y := out.Data[i]
				ag[i] += out.Grad[i] * y * (1 - y)
			}
		}
	}, a)
}

// Tanh applies the hyperbolic tangent.
func (tp *Tape) Tanh(a *Tensor) *Tensor {
	out := NewTensor(a.R, a.C)
	for i, v := range a.Data {
		out.Data[i] = float32(math.Tanh(float64(v)))
	}
	return tp.record(out, func() {
		if a.requiresGrad {
			ag := tp.g(a)
			for i := range ag {
				y := out.Data[i]
				ag[i] += out.Grad[i] * (1 - y*y)
			}
		}
	}, a)
}

// Softmax applies a row-wise softmax with optional additive mask (same
// shape, typically 0 / -inf values) applied before normalization.
func (tp *Tape) Softmax(a *Tensor, mask []float32) *Tensor {
	out := NewTensor(a.R, a.C)
	for i := 0; i < a.R; i++ {
		arow, orow := a.Row(i), out.Row(i)
		maxv := float32(math.Inf(-1))
		for j, v := range arow {
			if mask != nil {
				v += mask[i*a.C+j]
			}
			if v > maxv {
				maxv = v
			}
		}
		var sum float32
		for j, v := range arow {
			if mask != nil {
				v += mask[i*a.C+j]
			}
			e := float32(math.Exp(float64(v - maxv)))
			orow[j] = e
			sum += e
		}
		if sum > 0 {
			inv := 1 / sum
			for j := range orow {
				orow[j] *= inv
			}
		}
	}
	return tp.record(out, func() {
		if !a.requiresGrad {
			return
		}
		for i := 0; i < a.R; i++ {
			orow := out.Row(i)
			grow := out.Grad[i*a.C : (i+1)*a.C]
			var dot float32
			for j := range orow {
				dot += orow[j] * grow[j]
			}
			agrow := tp.g(a)[i*a.C : (i+1)*a.C]
			for j := range orow {
				agrow[j] += orow[j] * (grow[j] - dot)
			}
		}
	}, a)
}

// LayerNorm normalizes each row to zero mean / unit variance and applies
// learned gain and bias (both 1×C).
func (tp *Tape) LayerNorm(a, gain, bias *Tensor) *Tensor {
	const eps = 1e-5
	out := NewTensor(a.R, a.C)
	means := make([]float32, a.R)
	invstd := make([]float32, a.R)
	for i := 0; i < a.R; i++ {
		arow := a.Row(i)
		var mean float32
		for _, v := range arow {
			mean += v
		}
		mean /= float32(a.C)
		var vr float32
		for _, v := range arow {
			d := v - mean
			vr += d * d
		}
		vr /= float32(a.C)
		is := float32(1 / math.Sqrt(float64(vr)+eps))
		means[i], invstd[i] = mean, is
		orow := out.Row(i)
		for j, v := range arow {
			orow[j] = (v-mean)*is*gain.Data[j] + bias.Data[j]
		}
	}
	return tp.record(out, func() {
		for i := 0; i < a.R; i++ {
			arow := a.Row(i)
			grow := out.Grad[i*a.C : (i+1)*a.C]
			mean, is := means[i], invstd[i]
			// xhat = (x-mean)*is
			n := float32(a.C)
			var sumG, sumGX float32
			for j := range grow {
				xhat := (arow[j] - mean) * is
				g := grow[j] * gain.Data[j]
				sumG += g
				sumGX += g * xhat
				if gain.requiresGrad {
					tp.g(gain)[j] += grow[j] * xhat
				}
				if bias.requiresGrad {
					tp.g(bias)[j] += grow[j]
				}
			}
			if a.requiresGrad {
				ag := tp.g(a)[i*a.C : (i+1)*a.C]
				for j := range grow {
					xhat := (arow[j] - mean) * is
					g := grow[j] * gain.Data[j]
					ag[j] += is * (g - sumG/n - xhat*sumGX/n)
				}
			}
		}
	}, a, gain, bias)
}

// Rows gathers the given rows of a into a new len(idx)×C tensor
// (embedding lookup).
func (tp *Tape) Rows(a *Tensor, idx []int) *Tensor {
	out := NewTensor(len(idx), a.C)
	for i, r := range idx {
		copy(out.Row(i), a.Row(r))
	}
	return tp.record(out, func() {
		if !a.requiresGrad {
			return
		}
		ag := tp.g(a)
		for i, r := range idx {
			grow := out.Grad[i*a.C : (i+1)*a.C]
			arow := ag[r*a.C : (r+1)*a.C]
			for j := range grow {
				arow[j] += grow[j]
			}
		}
	}, a)
}

// Concat stacks a over b vertically (same column count).
func (tp *Tape) Concat(a, b *Tensor) *Tensor {
	if a.C != b.C {
		panic("model: Concat column mismatch")
	}
	out := NewTensor(a.R+b.R, a.C)
	copy(out.Data[:len(a.Data)], a.Data)
	copy(out.Data[len(a.Data):], b.Data)
	return tp.record(out, func() {
		if a.requiresGrad {
			axpy(tp.g(a), out.Grad[:len(a.Data)], 1)
		}
		if b.requiresGrad {
			axpy(tp.g(b), out.Grad[len(a.Data):], 1)
		}
	}, a, b)
}

// HConcat stacks a and b horizontally (same row count).
func (tp *Tape) HConcat(a, b *Tensor) *Tensor {
	if a.R != b.R {
		panic("model: HConcat row mismatch")
	}
	out := NewTensor(a.R, a.C+b.C)
	for i := 0; i < a.R; i++ {
		copy(out.Row(i)[:a.C], a.Row(i))
		copy(out.Row(i)[a.C:], b.Row(i))
	}
	return tp.record(out, func() {
		for i := 0; i < a.R; i++ {
			grow := out.Grad[i*out.C : (i+1)*out.C]
			if a.requiresGrad {
				ag := tp.g(a)[i*a.C : (i+1)*a.C]
				for j := range ag {
					ag[j] += grow[j]
				}
			}
			if b.requiresGrad {
				bg := tp.g(b)[i*b.C : (i+1)*b.C]
				for j := range bg {
					bg[j] += grow[a.C+j]
				}
			}
		}
	}, a, b)
}

// SliceRows returns rows [lo, hi) as a view-copy.
func (tp *Tape) SliceRows(a *Tensor, lo, hi int) *Tensor {
	out := NewTensor(hi-lo, a.C)
	copy(out.Data, a.Data[lo*a.C:hi*a.C])
	return tp.record(out, func() {
		if a.requiresGrad {
			axpy(tp.g(a)[lo*a.C:hi*a.C], out.Grad, 1)
		}
	}, a)
}

// SliceCols returns columns [lo, hi) as a copy.
func (tp *Tape) SliceCols(a *Tensor, lo, hi int) *Tensor {
	out := NewTensor(a.R, hi-lo)
	for i := 0; i < a.R; i++ {
		copy(out.Row(i), a.Row(i)[lo:hi])
	}
	return tp.record(out, func() {
		if !a.requiresGrad {
			return
		}
		ag := tp.g(a)
		for i := 0; i < a.R; i++ {
			grow := out.Grad[i*out.C : (i+1)*out.C]
			arow := ag[i*a.C+lo : i*a.C+hi]
			for j := range grow {
				arow[j] += grow[j]
			}
		}
	}, a)
}

// Transpose returns aᵀ.
func (tp *Tape) Transpose(a *Tensor) *Tensor {
	out := NewTensor(a.C, a.R)
	for i := 0; i < a.R; i++ {
		for j := 0; j < a.C; j++ {
			out.Data[j*a.R+i] = a.Data[i*a.C+j]
		}
	}
	return tp.record(out, func() {
		if a.requiresGrad {
			ag := tp.g(a)
			for i := 0; i < a.R; i++ {
				for j := 0; j < a.C; j++ {
					ag[i*a.C+j] += out.Grad[j*a.R+i]
				}
			}
		}
	}, a)
}

// CrossEntropy computes the mean negative log-likelihood of targets under
// row-wise softmax of logits, returning a scalar. Target -1 skips a row.
func (tp *Tape) CrossEntropy(logits *Tensor, targets []int) *Tensor {
	if len(targets) != logits.R {
		panic("model: CrossEntropy target length mismatch")
	}
	probs := make([]float32, len(logits.Data))
	out := NewTensor(1, 1)
	count := 0
	var loss float64
	for i := 0; i < logits.R; i++ {
		row := logits.Row(i)
		maxv := float32(math.Inf(-1))
		for _, v := range row {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for _, v := range row {
			sum += math.Exp(float64(v - maxv))
		}
		logZ := math.Log(sum) + float64(maxv)
		for j, v := range row {
			probs[i*logits.C+j] = float32(math.Exp(float64(v) - logZ))
		}
		if t := targets[i]; t >= 0 {
			loss += logZ - float64(row[t])
			count++
		}
	}
	if count > 0 {
		out.Data[0] = float32(loss / float64(count))
	}
	return tp.record(out, func() {
		if !logits.requiresGrad || count == 0 {
			return
		}
		scale := out.Grad[0] / float32(count)
		lg := tp.g(logits)
		for i := 0; i < logits.R; i++ {
			t := targets[i]
			if t < 0 {
				continue
			}
			grow := lg[i*logits.C : (i+1)*logits.C]
			prow := probs[i*logits.C : (i+1)*logits.C]
			for j := range grow {
				g := prow[j]
				if j == t {
					g -= 1
				}
				grow[j] += scale * g
			}
		}
	}, logits)
}
