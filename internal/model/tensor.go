// Package model implements the neural machinery behind CodeBE, VEGA's
// code-generation model, entirely from scratch: a float32 matrix type with
// tape-based reverse-mode autodiff, the transformer encoder-decoder that
// plays the role of the fine-tuned UniXcoder, a GRU seq2seq and an
// encoder-only "vanilla BERT"-style baseline for the paper's model
// ablation, a subword tokenizer, and the Adam optimizer. The numeric
// kernels under every op live in internal/tensor; this package owns the
// autodiff bookkeeping on top of them.
package model

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"vega/internal/tensor"
)

// Tensor is a dense row-major float32 matrix participating in automatic
// differentiation. Vectors are 1×C or R×1 matrices.
type Tensor struct {
	R, C int
	Data []float32
	Grad []float32

	requiresGrad bool
	back         func()
	parents      []*Tensor
	owner        *Tape // tape that created this tensor; nil for leaves
}

// NewTensor allocates a zero matrix on the heap (parameters and other
// long-lived tensors; tape intermediates come from the tape's arena).
func NewTensor(r, c int) *Tensor {
	return &Tensor{R: r, C: c, Data: make([]float32, r*c)}
}

// NewParam allocates a trainable matrix initialized with scaled Gaussian
// noise (std = 1/sqrt(c)).
func NewParam(r, c int, rng *rand.Rand) *Tensor {
	t := NewTensor(r, c)
	std := 1 / math.Sqrt(float64(c))
	for i := range t.Data {
		t.Data[i] = float32(rng.NormFloat64() * std)
	}
	t.requiresGrad = true
	t.Grad = make([]float32, r*c)
	return t
}

// FromSlice wraps data (copied) into an r×c tensor.
func FromSlice(r, c int, data []float32) *Tensor {
	if len(data) != r*c {
		panic(fmt.Sprintf("model: FromSlice %dx%d with %d values", r, c, len(data)))
	}
	t := NewTensor(r, c)
	copy(t.Data, data)
	return t
}

// At returns the element at row i, column j.
func (t *Tensor) At(i, j int) float32 { return t.Data[i*t.C+j] }

// Set assigns the element at row i, column j.
func (t *Tensor) Set(i, j int, v float32) { t.Data[i*t.C+j] = v }

// Row returns a view of row i's data.
func (t *Tensor) Row(i int) []float32 { return t.Data[i*t.C : (i+1)*t.C] }

// ZeroGrad clears the gradient buffer.
func (t *Tensor) ZeroGrad() {
	for i := range t.Grad {
		t.Grad[i] = 0
	}
}

// Tape records the computation graph for one forward pass so Backward can
// replay it in reverse. Tapes are single-goroutine, but several tapes can
// run concurrently over the same parameters: gradients for leaf parameters
// accumulate into tape-local shadow buffers, merged into the parameters
// with MergeGrads.
//
// Every tensor a tape op creates — node struct, data, gradient, shadow
// buffer — lives in the tape's grow-only arena. Reset rewinds the arena
// so the next forward pass reuses the same memory; getTape/putTape keep
// reset tapes in a sync.Pool so a training epoch allocates almost
// nothing after its first batch. A tensor created by a tape (and any
// slice derived from it) is valid only until that tape's Reset.
type Tape struct {
	nodes  []*Tensor
	shadow map[*Tensor][]float32
	order  []*Tensor // shadow keys in first-touch order, for deterministic merges
	arena  tensor.Arena
	slabs  [][]Tensor
	si, sj int // bump position into slabs
}

// NewTape returns an empty tape.
func NewTape() *Tape { return &Tape{shadow: make(map[*Tensor][]float32)} }

// Reset rewinds the tape for reuse: nodes, shadow gradients, and the
// arena all clear in O(1) amortized time while the backing memory is
// retained. Every tensor the tape created becomes invalid.
func (tp *Tape) Reset() {
	tp.nodes = tp.nodes[:0]
	clear(tp.shadow)
	tp.order = tp.order[:0]
	tp.arena.Reset()
	tp.si, tp.sj = 0, 0
}

// tapePool recycles reset tapes across batches and epochs. A pooled
// tape's arena keeps its high-water-mark footprint, so steady-state
// training reuses the same few chunks instead of churning the GC.
var tapePool = sync.Pool{New: func() any { return NewTape() }}

func getTape() *Tape { return tapePool.Get().(*Tape) }

func putTape(tp *Tape) {
	tp.Reset()
	tapePool.Put(tp)
}

// tapeSlabLen sizes the Tensor-struct slabs the tape bump-allocates
// node headers from.
const tapeSlabLen = 256

// slot returns the next recycled Tensor struct.
func (tp *Tape) slot() *Tensor {
	if tp.si == len(tp.slabs) {
		tp.slabs = append(tp.slabs, make([]Tensor, tapeSlabLen))
	}
	t := &tp.slabs[tp.si][tp.sj]
	tp.sj++
	if tp.sj == tapeSlabLen {
		tp.si++
		tp.sj = 0
	}
	return t
}

// newTensor allocates an r×c tensor with zeroed data in the tape's arena.
func (tp *Tape) newTensor(r, c int) *Tensor {
	t := tp.slot()
	*t = Tensor{R: r, C: c, Data: tp.arena.Alloc(r * c)}
	return t
}

// newTensorNoZero is newTensor for ops that overwrite every element.
func (tp *Tape) newTensorNoZero(r, c int) *Tensor {
	t := tp.slot()
	*t = Tensor{R: r, C: c, Data: tp.arena.AllocNoZero(r * c)}
	return t
}

func (tp *Tape) record(t *Tensor, back func(), parents ...*Tensor) *Tensor {
	t.back = back
	t.parents = parents
	t.owner = tp
	for _, p := range parents {
		if p.requiresGrad {
			t.requiresGrad = true
		}
	}
	if t.requiresGrad && t.Grad == nil {
		t.Grad = tp.arena.Alloc(len(t.Data))
	}
	tp.nodes = append(tp.nodes, t)
	return t
}

// g returns the gradient buffer to accumulate into for t: the tensor's own
// buffer when the tape created it, a tape-local shadow for shared leaves.
func (tp *Tape) g(t *Tensor) []float32 {
	if t.owner == tp {
		return t.Grad
	}
	if buf, ok := tp.shadow[t]; ok {
		return buf
	}
	buf := tp.arena.Alloc(len(t.Data))
	tp.shadow[t] = buf
	tp.order = append(tp.order, t)
	return buf
}

// Backward back-propagates from loss (a 1×1 tensor) through the tape.
// Leaf-parameter gradients land in shadow buffers; call MergeGrads to
// flush them into the parameters.
func (tp *Tape) Backward(loss *Tensor) {
	if len(loss.Data) != 1 {
		panic("model: Backward expects a scalar loss")
	}
	if loss.Grad == nil {
		loss.Grad = make([]float32, 1)
	}
	loss.Grad[0] = 1
	for i := len(tp.nodes) - 1; i >= 0; i-- {
		n := tp.nodes[i]
		if n.back != nil && n.requiresGrad {
			n.back()
		}
	}
}

// MergeGrads adds the tape's shadow gradients into their parameters, in
// the order the parameters were first touched during the backward pass.
// That order is a pure function of the recorded graph, so — together
// with FitContext merging tapes in batch-index order — merged gradients
// are bit-identical run to run regardless of worker scheduling. Callers
// running tapes concurrently must serialize MergeGrads.
func (tp *Tape) MergeGrads() {
	for _, p := range tp.order {
		buf := tp.shadow[p]
		pg := p.Grad
		for i := range buf {
			pg[i] += buf[i]
		}
	}
}

// --- primitive ops ---

// MatMul multiplies a (r×k) by b (k×c).
func (tp *Tape) MatMul(a, b *Tensor) *Tensor {
	if a.C != b.R {
		panic(fmt.Sprintf("model: MatMul %dx%d · %dx%d", a.R, a.C, b.R, b.C))
	}
	out := tp.newTensor(a.R, b.C)
	matmul(out.Data, a.Data, b.Data, a.R, a.C, b.C)
	return tp.record(out, func() {
		// dA = dOut · Bᵀ ; dB = Aᵀ · dOut
		if a.requiresGrad {
			tensor.MatMulNT(tp.g(a), out.Grad, b.Data, a.R, b.C, a.C)
		}
		if b.requiresGrad {
			tensor.MatMulTN(tp.g(b), a.Data, out.Grad, a.C, a.R, b.C)
		}
	}, a, b)
}

// MatMulNT multiplies a (r×k) by bᵀ (b is c×k) without materializing the
// transpose. The batched trainer uses it for the tied output projection
// (states · Embedᵀ), where transposing the embedding per batch would
// dominate the tape.
func (tp *Tape) MatMulNT(a, b *Tensor) *Tensor {
	if a.C != b.C {
		panic(fmt.Sprintf("model: MatMulNT %dx%d · (%dx%d)ᵀ", a.R, a.C, b.R, b.C))
	}
	out := tp.newTensor(a.R, b.R)
	tensor.MatMulNT(out.Data, a.Data, b.Data, a.R, a.C, b.R)
	return tp.record(out, func() {
		// dA = dOut · B ; dB = dOutᵀ · A
		if a.requiresGrad {
			tensor.MatMul(tp.g(a), out.Grad, b.Data, a.R, b.R, a.C)
		}
		if b.requiresGrad {
			tensor.MatMulTN(tp.g(b), out.Grad, a.Data, b.R, a.R, a.C)
		}
	}, a, b)
}

// matmul and axpy delegate to the kernel layer; kvcache.go calls them
// under these names to stay in visible lockstep with the tape ops.
func matmul(out, a, b []float32, r, k, c int) { tensor.MatMul(out, a, b, r, k, c) }

func axpy(dst, src []float32, alpha float32) { tensor.Axpy(dst, src, alpha) }

// Add returns a + b (same shape), or a + row-broadcast b (b is 1×C).
func (tp *Tape) Add(a, b *Tensor) *Tensor {
	switch {
	case b.R == a.R && b.C == a.C:
		out := tp.newTensorNoZero(a.R, a.C)
		for i := range out.Data {
			out.Data[i] = a.Data[i] + b.Data[i]
		}
		return tp.record(out, func() {
			if a.requiresGrad {
				axpy(tp.g(a), out.Grad, 1)
			}
			if b.requiresGrad {
				axpy(tp.g(b), out.Grad, 1)
			}
		}, a, b)
	case b.R == 1 && b.C == a.C:
		out := tp.newTensorNoZero(a.R, a.C)
		for i := 0; i < a.R; i++ {
			arow, orow := a.Row(i), out.Row(i)
			for j := range orow {
				orow[j] = arow[j] + b.Data[j]
			}
		}
		return tp.record(out, func() {
			if a.requiresGrad {
				axpy(tp.g(a), out.Grad, 1)
			}
			if b.requiresGrad {
				bg := tp.g(b)
				for i := 0; i < a.R; i++ {
					orow := out.Grad[i*a.C : (i+1)*a.C]
					for j := range orow {
						bg[j] += orow[j]
					}
				}
			}
		}, a, b)
	default:
		panic(fmt.Sprintf("model: Add shape mismatch %dx%d + %dx%d", a.R, a.C, b.R, b.C))
	}
}

// Scale returns a·s.
func (tp *Tape) Scale(a *Tensor, s float32) *Tensor {
	out := tp.newTensorNoZero(a.R, a.C)
	for i := range out.Data {
		out.Data[i] = a.Data[i] * s
	}
	return tp.record(out, func() {
		if a.requiresGrad {
			axpy(tp.g(a), out.Grad, s)
		}
	}, a)
}

// Mul returns the elementwise product.
func (tp *Tape) Mul(a, b *Tensor) *Tensor {
	if a.R != b.R || a.C != b.C {
		panic("model: Mul shape mismatch")
	}
	out := tp.newTensorNoZero(a.R, a.C)
	for i := range out.Data {
		out.Data[i] = a.Data[i] * b.Data[i]
	}
	return tp.record(out, func() {
		if a.requiresGrad {
			ag := tp.g(a)
			for i := range ag {
				ag[i] += out.Grad[i] * b.Data[i]
			}
		}
		if b.requiresGrad {
			bg := tp.g(b)
			for i := range bg {
				bg[i] += out.Grad[i] * a.Data[i]
			}
		}
	}, a, b)
}

// ReLU applies max(0, x).
func (tp *Tape) ReLU(a *Tensor) *Tensor {
	out := tp.newTensor(a.R, a.C)
	for i, v := range a.Data {
		if v > 0 {
			out.Data[i] = v
		}
	}
	return tp.record(out, func() {
		if a.requiresGrad {
			ag := tp.g(a)
			for i := range ag {
				if a.Data[i] > 0 {
					ag[i] += out.Grad[i]
				}
			}
		}
	}, a)
}

// GELU applies the tanh-approximated Gaussian error linear unit.
func (tp *Tape) GELU(a *Tensor) *Tensor {
	out := tp.newTensorNoZero(a.R, a.C)
	const c0 = 0.7978845608028654 // sqrt(2/pi)
	for i, v := range a.Data {
		x := float64(v)
		out.Data[i] = float32(0.5 * x * (1 + math.Tanh(c0*(x+0.044715*x*x*x))))
	}
	return tp.record(out, func() {
		if !a.requiresGrad {
			return
		}
		ag := tp.g(a)
		for i := range ag {
			x := float64(a.Data[i])
			t := math.Tanh(c0 * (x + 0.044715*x*x*x))
			d := 0.5*(1+t) + 0.5*x*(1-t*t)*c0*(1+3*0.044715*x*x)
			ag[i] += out.Grad[i] * float32(d)
		}
	}, a)
}

// Sigmoid applies 1/(1+e^-x).
func (tp *Tape) Sigmoid(a *Tensor) *Tensor {
	out := tp.newTensorNoZero(a.R, a.C)
	for i, v := range a.Data {
		out.Data[i] = float32(1 / (1 + math.Exp(-float64(v))))
	}
	return tp.record(out, func() {
		if a.requiresGrad {
			ag := tp.g(a)
			for i := range ag {
				y := out.Data[i]
				ag[i] += out.Grad[i] * y * (1 - y)
			}
		}
	}, a)
}

// Tanh applies the hyperbolic tangent.
func (tp *Tape) Tanh(a *Tensor) *Tensor {
	out := tp.newTensorNoZero(a.R, a.C)
	for i, v := range a.Data {
		out.Data[i] = float32(math.Tanh(float64(v)))
	}
	return tp.record(out, func() {
		if a.requiresGrad {
			ag := tp.g(a)
			for i := range ag {
				y := out.Data[i]
				ag[i] += out.Grad[i] * (1 - y*y)
			}
		}
	}, a)
}

// Softmax applies a row-wise softmax with optional additive mask (same
// shape, typically 0 / -inf values) applied before normalization.
func (tp *Tape) Softmax(a *Tensor, mask []float32) *Tensor {
	out := tp.newTensorNoZero(a.R, a.C)
	for i := 0; i < a.R; i++ {
		arow, orow := a.Row(i), out.Row(i)
		maxv := float32(math.Inf(-1))
		for j, v := range arow {
			if mask != nil {
				v += mask[i*a.C+j]
			}
			if v > maxv {
				maxv = v
			}
		}
		var sum float32
		for j, v := range arow {
			if mask != nil {
				v += mask[i*a.C+j]
			}
			e := float32(math.Exp(float64(v - maxv)))
			orow[j] = e
			sum += e
		}
		if sum > 0 {
			inv := 1 / sum
			for j := range orow {
				orow[j] *= inv
			}
		}
	}
	return tp.record(out, func() {
		if !a.requiresGrad {
			return
		}
		for i := 0; i < a.R; i++ {
			orow := out.Row(i)
			grow := out.Grad[i*a.C : (i+1)*a.C]
			var dot float32
			for j := range orow {
				dot += orow[j] * grow[j]
			}
			agrow := tp.g(a)[i*a.C : (i+1)*a.C]
			for j := range orow {
				agrow[j] += orow[j] * (grow[j] - dot)
			}
		}
	}, a)
}

// LayerNorm normalizes each row to zero mean / unit variance and applies
// learned gain and bias (both 1×C).
func (tp *Tape) LayerNorm(a, gain, bias *Tensor) *Tensor {
	const eps = 1e-5
	out := tp.newTensorNoZero(a.R, a.C)
	means := tp.arena.AllocNoZero(a.R)
	invstd := tp.arena.AllocNoZero(a.R)
	for i := 0; i < a.R; i++ {
		arow := a.Row(i)
		var mean float32
		for _, v := range arow {
			mean += v
		}
		mean /= float32(a.C)
		var vr float32
		for _, v := range arow {
			d := v - mean
			vr += d * d
		}
		vr /= float32(a.C)
		is := float32(1 / math.Sqrt(float64(vr)+eps))
		means[i], invstd[i] = mean, is
		orow := out.Row(i)
		for j, v := range arow {
			orow[j] = (v-mean)*is*gain.Data[j] + bias.Data[j]
		}
	}
	return tp.record(out, func() {
		for i := 0; i < a.R; i++ {
			arow := a.Row(i)
			grow := out.Grad[i*a.C : (i+1)*a.C]
			mean, is := means[i], invstd[i]
			// xhat = (x-mean)*is
			n := float32(a.C)
			var sumG, sumGX float32
			for j := range grow {
				xhat := (arow[j] - mean) * is
				g := grow[j] * gain.Data[j]
				sumG += g
				sumGX += g * xhat
				if gain.requiresGrad {
					tp.g(gain)[j] += grow[j] * xhat
				}
				if bias.requiresGrad {
					tp.g(bias)[j] += grow[j]
				}
			}
			if a.requiresGrad {
				ag := tp.g(a)[i*a.C : (i+1)*a.C]
				for j := range grow {
					xhat := (arow[j] - mean) * is
					g := grow[j] * gain.Data[j]
					ag[j] += is * (g - sumG/n - xhat*sumGX/n)
				}
			}
		}
	}, a, gain, bias)
}

// Rows gathers the given rows of a into a new len(idx)×C tensor
// (embedding lookup).
func (tp *Tape) Rows(a *Tensor, idx []int) *Tensor {
	out := tp.newTensorNoZero(len(idx), a.C)
	for i, r := range idx {
		copy(out.Row(i), a.Row(r))
	}
	return tp.record(out, func() {
		if !a.requiresGrad {
			return
		}
		ag := tp.g(a)
		for i, r := range idx {
			grow := out.Grad[i*a.C : (i+1)*a.C]
			arow := ag[r*a.C : (r+1)*a.C]
			for j := range grow {
				arow[j] += grow[j]
			}
		}
	}, a)
}

// Concat stacks a over b vertically (same column count).
func (tp *Tape) Concat(a, b *Tensor) *Tensor {
	if a.C != b.C {
		panic("model: Concat column mismatch")
	}
	out := tp.newTensorNoZero(a.R+b.R, a.C)
	copy(out.Data[:len(a.Data)], a.Data)
	copy(out.Data[len(a.Data):], b.Data)
	return tp.record(out, func() {
		if a.requiresGrad {
			axpy(tp.g(a), out.Grad[:len(a.Data)], 1)
		}
		if b.requiresGrad {
			axpy(tp.g(b), out.Grad[len(a.Data):], 1)
		}
	}, a, b)
}

// ConcatRows stacks parts vertically (same column count) — the n-ary
// Concat the batched trainer uses to re-pack per-sample attention
// outputs into the ragged minibatch layout.
func (tp *Tape) ConcatRows(parts []*Tensor) *Tensor {
	if len(parts) == 0 {
		panic("model: ConcatRows of nothing")
	}
	c := parts[0].C
	rows := 0
	for _, p := range parts {
		if p.C != c {
			panic(fmt.Sprintf("model: ConcatRows column mismatch %d vs %d", p.C, c))
		}
		rows += p.R
	}
	ps := append([]*Tensor(nil), parts...)
	out := tp.newTensorNoZero(rows, c)
	off := 0
	for _, p := range ps {
		copy(out.Data[off:], p.Data)
		off += len(p.Data)
	}
	return tp.record(out, func() {
		off := 0
		for _, p := range ps {
			if p.requiresGrad {
				axpy(tp.g(p), out.Grad[off:off+len(p.Data)], 1)
			}
			off += len(p.Data)
		}
	}, ps...)
}

// HConcat stacks a and b horizontally (same row count).
func (tp *Tape) HConcat(a, b *Tensor) *Tensor {
	if a.R != b.R {
		panic("model: HConcat row mismatch")
	}
	out := tp.newTensorNoZero(a.R, a.C+b.C)
	for i := 0; i < a.R; i++ {
		copy(out.Row(i)[:a.C], a.Row(i))
		copy(out.Row(i)[a.C:], b.Row(i))
	}
	return tp.record(out, func() {
		for i := 0; i < a.R; i++ {
			grow := out.Grad[i*out.C : (i+1)*out.C]
			if a.requiresGrad {
				ag := tp.g(a)[i*a.C : (i+1)*a.C]
				for j := range ag {
					ag[j] += grow[j]
				}
			}
			if b.requiresGrad {
				bg := tp.g(b)[i*b.C : (i+1)*b.C]
				for j := range bg {
					bg[j] += grow[a.C+j]
				}
			}
		}
	}, a, b)
}

// SliceRows returns rows [lo, hi) as a view-copy.
func (tp *Tape) SliceRows(a *Tensor, lo, hi int) *Tensor {
	out := tp.newTensorNoZero(hi-lo, a.C)
	copy(out.Data, a.Data[lo*a.C:hi*a.C])
	return tp.record(out, func() {
		if a.requiresGrad {
			axpy(tp.g(a)[lo*a.C:hi*a.C], out.Grad, 1)
		}
	}, a)
}

// SliceCols returns columns [lo, hi) as a copy.
func (tp *Tape) SliceCols(a *Tensor, lo, hi int) *Tensor {
	out := tp.newTensorNoZero(a.R, hi-lo)
	for i := 0; i < a.R; i++ {
		copy(out.Row(i), a.Row(i)[lo:hi])
	}
	return tp.record(out, func() {
		if !a.requiresGrad {
			return
		}
		ag := tp.g(a)
		for i := 0; i < a.R; i++ {
			grow := out.Grad[i*out.C : (i+1)*out.C]
			arow := ag[i*a.C+lo : i*a.C+hi]
			for j := range grow {
				arow[j] += grow[j]
			}
		}
	}, a)
}

// Transpose returns aᵀ.
func (tp *Tape) Transpose(a *Tensor) *Tensor {
	out := tp.newTensorNoZero(a.C, a.R)
	for i := 0; i < a.R; i++ {
		for j := 0; j < a.C; j++ {
			out.Data[j*a.R+i] = a.Data[i*a.C+j]
		}
	}
	return tp.record(out, func() {
		if a.requiresGrad {
			ag := tp.g(a)
			for i := 0; i < a.R; i++ {
				for j := 0; j < a.C; j++ {
					ag[i*a.C+j] += out.Grad[j*a.R+i]
				}
			}
		}
	}, a)
}

// CrossEntropy computes the mean negative log-likelihood of targets under
// row-wise softmax of logits, returning a scalar. Target -1 skips a row.
func (tp *Tape) CrossEntropy(logits *Tensor, targets []int) *Tensor {
	if len(targets) != logits.R {
		panic("model: CrossEntropy target length mismatch")
	}
	probs := tp.arena.AllocNoZero(len(logits.Data))
	out := tp.newTensor(1, 1)
	count := 0
	var loss float64
	for i := 0; i < logits.R; i++ {
		row := logits.Row(i)
		maxv := float32(math.Inf(-1))
		for _, v := range row {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for _, v := range row {
			sum += math.Exp(float64(v - maxv))
		}
		logZ := math.Log(sum) + float64(maxv)
		for j, v := range row {
			probs[i*logits.C+j] = float32(math.Exp(float64(v) - logZ))
		}
		if t := targets[i]; t >= 0 {
			loss += logZ - float64(row[t])
			count++
		}
	}
	if count > 0 {
		out.Data[0] = float32(loss / float64(count))
	}
	return tp.record(out, func() {
		if !logits.requiresGrad || count == 0 {
			return
		}
		scale := out.Grad[0] / float32(count)
		lg := tp.g(logits)
		for i := 0; i < logits.R; i++ {
			t := targets[i]
			if t < 0 {
				continue
			}
			grow := lg[i*logits.C : (i+1)*logits.C]
			prow := probs[i*logits.C : (i+1)*logits.C]
			for j := range grow {
				g := prow[j]
				if j == t {
					g -= 1
				}
				grow[j] += scale * g
			}
		}
	}, logits)
}

// CrossEntropyWeighted computes Σᵢ weights[i]·nllᵢ over the rows with
// targets[i] >= 0, using the fused softmax+cross-entropy kernel (one exp
// per logit). It also returns every row's negative log-likelihood so the
// batched trainer can report per-sample losses. Rows with target -1 are
// padding: no loss, no gradient.
func (tp *Tape) CrossEntropyWeighted(logits *Tensor, targets []int, weights []float32) (*Tensor, []float64) {
	if len(targets) != logits.R || len(weights) != logits.R {
		panic("model: CrossEntropyWeighted length mismatch")
	}
	probs := tp.arena.AllocNoZero(len(logits.Data))
	rowNLL := make([]float64, logits.R)
	tensor.SoftmaxXent(probs, logits.Data, targets, logits.R, logits.C, rowNLL)
	var loss float64
	for i, t := range targets {
		if t >= 0 {
			loss += float64(weights[i]) * rowNLL[i]
		}
	}
	out := tp.newTensorNoZero(1, 1)
	out.Data[0] = float32(loss)
	return tp.record(out, func() {
		if !logits.requiresGrad {
			return
		}
		tensor.XentBackward(tp.g(logits), probs, targets, logits.R, logits.C, out.Grad[0], weights)
	}, logits), rowNLL
}
