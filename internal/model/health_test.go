package model

import (
	"strings"
	"testing"
)

// panicSeq2Seq simulates a shape-corrupt checkpoint: Generate crashes.
type panicSeq2Seq struct{ *Transformer }

func (panicSeq2Seq) Generate([]int, int) []int { panic("corrupt weights") }

// oobSeq2Seq emits ids outside the vocabulary.
type oobSeq2Seq struct{ *Transformer }

func (oobSeq2Seq) Generate([]int, int) []int { return []int{0, 999999} }

func TestCheckDecode(t *testing.T) {
	cfg := Config{Vocab: 50, Dim: 16, Heads: 2, EncLayers: 1, DecLayers: 1, FFMult: 2, MaxSeq: 32, Seed: 1}
	m := NewTransformer(cfg)

	if err := CheckDecode(m, cfg.Vocab, 8); err != nil {
		t.Errorf("healthy model rejected: %v", err)
	}
	if err := CheckDecode(nil, cfg.Vocab, 8); err == nil {
		t.Error("nil model passed")
	}
	if err := CheckDecode(panicSeq2Seq{m}, cfg.Vocab, 8); err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Errorf("panicking decode: err=%v, want recovered panic error", err)
	}
	if err := CheckDecode(oobSeq2Seq{m}, cfg.Vocab, 8); err == nil || !strings.Contains(err.Error(), "outside vocabulary") {
		t.Errorf("out-of-vocab decode: err=%v, want vocabulary error", err)
	}
}
