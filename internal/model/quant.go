package model

import (
	"sync"

	"vega/internal/tensor"
)

// Quantized inference view. quantView lazily builds an int8 copy of every
// inference-path weight matrix — each Linear's transpose quantized per
// output row (so the per-row scales line up with output columns and the
// tensor.QMatMulNT scale-once contract), plus the tied embedding, whose
// Vocab×Dim rows are already the NT operand the logits projection needs.
// The view is built once per weight snapshot (sync.Once, the embT
// pattern) and dropped at the same single-threaded training boundary
// that invalidates embT; it is never consulted by the tape, so training
// is always full-precision.
//
// Accuracy: quantized linears are approximations, so a quantized decode
// can disagree with the float32 one. Step tracks the top-2 logit margin;
// when any step's margin falls under QuantMargin the decoder is marked
// Ambiguous and the caller (internal/core) re-decodes that row with the
// float32 path, keeping exact-match accuracy by construction. The
// differential tests in quant_test.go pin the tolerance.

// QuantMargin is the top-2 logit margin (in logit units) under which a
// quantized argmax is considered at risk of differing from float32; the
// decoder reports Ambiguous and callers fall back to full precision.
const QuantMargin = 0.5

// qLin is a Linear ready for quantized inference: Wᵀ quantized per
// output row, bias kept float32.
type qLin struct {
	wt *tensor.QMat
	b  []float32
}

type qMHA struct {
	wq, wk, wv, wo qLin
}

type qEncoderLayer struct {
	attn        qMHA
	ffIn, ffOut qLin
}

type qDecoderLayer struct {
	self, cross qMHA
	ffIn, ffOut qLin
}

// qView is the full quantized weight set for inference.
type qView struct {
	embed *tensor.QMat // Vocab×Dim rows: the logits NT operand
	enc   []qEncoderLayer
	dec   []qDecoderLayer
}

func quantLin(l *Linear) qLin {
	in, out := l.W.R, l.W.C
	wt := make([]float32, out*in)
	for p := 0; p < in; p++ {
		row := l.W.Data[p*out : (p+1)*out]
		for j, v := range row {
			wt[j*in+p] = v
		}
	}
	return qLin{wt: tensor.QuantizeRows(wt, out, in), b: l.B.Data}
}

func quantMHA(m *MHA) qMHA {
	return qMHA{wq: quantLin(m.WQ), wk: quantLin(m.WK), wv: quantLin(m.WV), wo: quantLin(m.WO)}
}

// quantView returns the cached quantized weight view, building it on
// first use. Safe for concurrent use by generation workers.
func (t *Transformer) quantView() *qView {
	t.qv.once.Do(func() {
		v := &qView{embed: tensor.QuantizeRows(t.Embed.Data, t.Cfg.Vocab, t.Cfg.Dim)}
		for _, l := range t.Enc {
			v.enc = append(v.enc, qEncoderLayer{
				attn: quantMHA(l.Attn), ffIn: quantLin(l.FF.In), ffOut: quantLin(l.FF.Out),
			})
		}
		for _, l := range t.Dec {
			v.dec = append(v.dec, qDecoderLayer{
				self: quantMHA(l.Self), cross: quantMHA(l.Cross),
				ffIn: quantLin(l.FF.In), ffOut: quantLin(l.FF.Out),
			})
		}
		t.qv.view = v
	})
	return t.qv.view
}

// invalidateQuant drops the quantized weight view. Called from the same
// single-threaded training boundary as invalidateEmbT; must not race
// with inference.
func (t *Transformer) invalidateQuant() {
	t.qv.once = sync.Once{}
	t.qv.view = nil
}

// qLinearRowFwdInto computes x·W + b for one row through the int8
// kernels: the activation row is quantized on the fly (qbuf is caller
// scratch of at least len(x) elements), the weight side is pre-quantized.
func qLinearRowFwdInto(out, x []float32, qbuf []int8, ql *qLin) {
	qa := qbuf[:len(x)]
	var sa float32
	tensor.QuantizeRowInto(qa, x, &sa)
	qMulRowPre(out, qa, sa, ql)
}

// qMulRowPre is qLinearRowFwdInto after activation quantization — one
// already-quantized row against ql. Callers that feed several linears
// from the same activation row (the decoder's q/k/v projections)
// quantize once and call this per weight.
func qMulRowPre(out []float32, qa []int8, sa float32, ql *qLin) {
	for j := range out {
		out[j] = ql.b[j]
	}
	tensor.QMulRowInto(out, qa, sa, ql.wt)
}

// qaPool recycles the activation-side QMat scratch the batched quantized
// linears quantize into; pooling it keeps the per-layer activation
// quantization allocation-free in steady state.
var qaPool sync.Pool

// qLinearRowsFwdInto is qLinearRowFwdInto over n packed rows, through
// the batched QMatMulNT kernel, into caller-provided out (len n·outC,
// overwritten).
func qLinearRowsFwdInto(out, x []float32, n int, ql *qLin) {
	qa := getQa()
	tensor.QuantizeRowsInto(qa, x, n, ql.wt.C)
	qLinearRowsFwdPre(out, qa, ql)
	qaPool.Put(qa)
}

// getQa returns a pooled activation QMat scratch; return it with
// qaPool.Put when the quantized rows are dead.
func getQa() *tensor.QMat {
	qa, _ := qaPool.Get().(*tensor.QMat)
	if qa == nil {
		qa = &tensor.QMat{}
	}
	return qa
}

// qLinearRowsFwdPre is the batched linear after activation
// quantization: out (len qa.R·outC, overwritten) = qa·wtᵀ + b. Callers
// that feed several linears from the same activation rows (the encoder's
// q/k/v) quantize once and call this per weight.
func qLinearRowsFwdPre(out []float32, qa *tensor.QMat, ql *qLin) {
	c := ql.wt.R
	for i := range out {
		out[i] = 0
	}
	tensor.QMatMulNT(out, qa, ql.wt)
	for i := 0; i < qa.R; i++ {
		row := out[i*c : (i+1)*c]
		for j := range row {
			row[j] += ql.b[j]
		}
	}
}

// qLinearRowsFwd is qLinearRowsFwdInto with a freshly allocated result —
// for callers that retain the output (e.g. the decoder's per-sequence
// cross projections).
func qLinearRowsFwd(x []float32, n int, ql *qLin) []float32 {
	out := make([]float32, n*ql.wt.R)
	qLinearRowsFwdInto(out, x, n, ql)
	return out
}
