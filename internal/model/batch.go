package model

// LossBatch computes teacher-forced cross entropy for a minibatch in one
// taped forward pass. Samples are packed back to back into a ragged
// layout — sample s's rows live at [offs[s], offs[s+1]) with no padding
// anywhere — so every linear/norm/FFN op runs as a single many-row
// matmul doing exactly the per-sample flops, while attention — the only
// op that mixes rows — slices each sample's own row range (see
// MHA.applyBatch). The returned scalar is Σ over samples of the
// per-sample mean NLL (so its gradient per sample equals the per-sample
// Loss gradient), and the float64 slice holds each sample's mean NLL.
//
// Because every kernel is row-local and deterministic, each sample's
// forward values are bit-identical to Loss on its own tape; gradients
// match up to cross-sample summation order (the differential tests in
// batch_test.go pin both properties down).
func (t *Transformer) LossBatch(tp *Tape, samples []Sample) (*Tensor, []float64) {
	b := len(samples)
	if b == 0 {
		panic("model: LossBatch of empty batch")
	}

	encs := make([][]int, b)
	prefixes := make([][]int, b)
	encOffs := make([]int, b+1)
	decOffs := make([]int, b+1)
	for s, smp := range samples {
		encs[s] = t.clampSeq(smp.Input)
		prefix := append([]int{BOS}, smp.Output...)
		prefixes[s] = t.clampSeq(prefix)
		encOffs[s+1] = encOffs[s] + len(encs[s])
		decOffs[s+1] = decOffs[s] + len(prefixes[s])
	}

	encIDs := make([]int, encOffs[b])
	encPos := make([]int, encOffs[b])
	decIDs := make([]int, decOffs[b])
	decPos := make([]int, decOffs[b])
	for s := 0; s < b; s++ {
		for i, id := range encs[s] {
			encIDs[encOffs[s]+i] = id
			encPos[encOffs[s]+i] = i
		}
		for i, id := range prefixes[s] {
			decIDs[decOffs[s]+i] = id
			decPos[decOffs[s]+i] = i
		}
	}

	x := tp.Add(tp.Rows(t.Embed, encIDs), tp.Rows(t.PosEnc, encPos))
	for _, l := range t.Enc {
		x = l.applyBatch(tp, x, encOffs)
	}
	mem := t.NormE.Apply(tp, x)

	y := tp.Add(tp.Rows(t.Embed, decIDs), tp.Rows(t.PosEnc, decPos))
	for _, l := range t.Dec {
		y = l.applyBatch(tp, y, mem, decOffs, encOffs)
	}
	states := t.NormD.Apply(tp, y)

	// Tied output projection, one kernel call for the whole batch.
	logits := tp.MatMulNT(states, t.Embed)

	// Every row is a real target row; weighting each of sample s's rows
	// by 1/len_s makes the batch scalar the sum of per-sample means.
	targets := make([]int, decOffs[b])
	weights := make([]float32, decOffs[b])
	for s, smp := range samples {
		n := decOffs[s+1] - decOffs[s]
		w := float32(1 / float64(n))
		tgt := append(append([]int{}, smp.Output...), EOS)
		for i := 0; i < n; i++ {
			targets[decOffs[s]+i] = tgt[i]
			weights[decOffs[s]+i] = w
		}
	}

	loss, rowNLL := tp.CrossEntropyWeighted(logits, targets, weights)
	per := make([]float64, b)
	for s := 0; s < b; s++ {
		var sum float64
		for i := decOffs[s]; i < decOffs[s+1]; i++ {
			sum += rowNLL[i]
		}
		per[s] = sum / float64(decOffs[s+1]-decOffs[s])
	}
	return loss, per
}
