package model

import (
	"math/rand"
	"testing"

	"vega/internal/tensor"
)

// Tests for the head-contiguous KV-cache layout: grow-on-demand at the
// MaxSeq boundary, cloneKV headroom under beam-style branching mid-
// growth, and kernel-worker bit-identity. Run under -race by the
// Makefile's attn-race target.

// refStepLogits is the tape-path ground truth for one decode step: the
// full decoder stack over the whole prefix, last row's logits.
func refStepLogits(m *Transformer, in, prefix []int) []float32 {
	tp := NewTape()
	mem := m.Encode(tp, in)
	tp2 := NewTape()
	states := tp2.decodeOnce(m, prefix, mem)
	logits := m.Logits(tp2, tp2.SliceRows(states, states.R-1, states.R))
	return logits.Row(0)
}

func equalLogits(t *testing.T, label string, got, want []float32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d logits, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: logits[%d] = %v, want %v (bit-exact)", label, i, got[i], want[i])
		}
	}
}

// decodeTokens builds a valid decoder-side token sequence of length n
// starting at BOS.
func decodeTokens(vocab, n int, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	lo := numSpecial + NumConfidenceBuckets
	toks := []int{BOS}
	for len(toks) < n {
		toks = append(toks, lo+rng.Intn(vocab-lo))
	}
	return toks
}

// TestKVGrowAtMaxSeqBoundary drives the incremental decoder to exactly
// MaxSeq fed positions — through every growKV doubling — checking each
// step's logits against the uncached tape path and, at the boundary,
// that every layer's per-head blocks hold exactly MaxSeq dh-wide rows.
func TestKVGrowAtMaxSeqBoundary(t *testing.T) {
	const vocab = 40
	for _, cfg := range kvConfigs(vocab) {
		m := NewTransformer(cfg)
		in := kvInputs(vocab, cfg.Seed+4)[1]
		toks := decodeTokens(vocab, cfg.MaxSeq, cfg.Seed+5)

		d := m.NewIncrementalDecoder(in)
		for i, tok := range toks {
			got := d.Step(tok)
			// The tape reference is O(L²); spot-check early, mid-growth,
			// and the final boundary step.
			if i < 3 || i == cfg.MaxSeq/2 || i == cfg.MaxSeq-1 {
				want := refStepLogits(m, in, toks[:i+1])
				equalLogits(t, "boundary step", got, want)
			}
		}
		d.Release()
		if d.Pos() != cfg.MaxSeq {
			t.Fatalf("cfg %+v: fed %d positions, want %d", cfg, d.Pos(), cfg.MaxSeq)
		}
		for li, l := range m.Dec {
			dh := l.Self.D / l.Self.Heads
			lc := &d.layers[li]
			if len(lc.selfK) != l.Self.Heads || len(lc.selfV) != l.Self.Heads {
				t.Fatalf("cfg %+v layer %d: %d/%d head blocks, want %d",
					cfg, li, len(lc.selfK), len(lc.selfV), l.Self.Heads)
			}
			for h := 0; h < l.Self.Heads; h++ {
				if len(lc.selfK[h]) != cfg.MaxSeq*dh {
					t.Fatalf("cfg %+v layer %d head %d: selfK len %d, want %d (MaxSeq·dh)",
						cfg, li, h, len(lc.selfK[h]), cfg.MaxSeq*dh)
				}
				if len(lc.selfV[h]) != cfg.MaxSeq*dh {
					t.Fatalf("cfg %+v layer %d head %d: selfV len %d, want %d (MaxSeq·dh)",
						cfg, li, h, len(lc.selfV[h]), cfg.MaxSeq*dh)
				}
			}
		}
	}
}

// TestCloneKVHeadroomMidGrowth branches decoders exactly at the growKV
// capacity boundaries (a head block's first backing array holds two
// rows, the next six, then fourteen): the clone's one-row headroom and
// the parent's subsequent doubling must not alias, and every divergent
// branch must match a fresh decoder fed the same tokens bit for bit —
// including a clone of a clone.
func TestCloneKVHeadroomMidGrowth(t *testing.T) {
	const vocab = 40
	cfg := Config{Vocab: vocab, Dim: 24, Heads: 3, EncLayers: 1, DecLayers: 2, FFMult: 2, MaxSeq: 24, Seed: 17}
	m := NewTransformer(cfg)
	in := kvInputs(vocab, cfg.Seed)[2]
	toks := decodeTokens(vocab, cfg.MaxSeq, cfg.Seed+1)
	lo := numSpecial + NumConfidenceBuckets
	alt := func(i int) int { return lo + (i*7)%(vocab-lo) } // divergent branch tokens

	fresh := func(tokens []int) []float32 {
		d := m.NewIncrementalDecoder(in)
		defer d.Release()
		var row []float32
		for _, tok := range tokens {
			row = d.Step(tok)
		}
		return row
	}

	// Branch points: pos 2 (first backing array exactly full — the
	// clone's first Step lands in its headroom, the parent's triggers a
	// doubling), pos 3 (parent just grew), pos 7 (second doubling).
	for _, branchAt := range []int{2, 3, 7} {
		parent := m.NewIncrementalDecoder(in)
		for _, tok := range toks[:branchAt] {
			parent.Step(tok)
		}
		clone := parent.Clone()

		// Diverge: the clone takes alternative tokens, the parent
		// continues on the original sequence; interleave the steps so a
		// shared backing array would be caught by content (and by -race
		// when run under the attn-race target).
		var cloneRow, parentRow []float32
		cloneToks := append(append([]int{}, toks[:branchAt]...), 0, 0, 0)
		for i := 0; i < 3; i++ {
			cloneToks[branchAt+i] = alt(branchAt + i)
			cloneRow = clone.Step(cloneToks[branchAt+i])
			parentRow = parent.Step(toks[branchAt+i])
		}
		equalLogits(t, "clone branch", cloneRow, fresh(cloneToks))
		equalLogits(t, "parent after clone", parentRow, fresh(toks[:branchAt+3]))

		// Clone-of-clone: branch again off the already-branched decoder.
		grand := clone.Clone()
		grandToks := append(append([]int{}, cloneToks...), alt(99))
		gr := grand.Step(alt(99))
		equalLogits(t, "clone-of-clone", gr, fresh(grandToks))
		// The middle clone must be undisturbed by its child's Step.
		cloneToks = append(cloneToks, toks[branchAt+3])
		cr := clone.Step(toks[branchAt+3])
		equalLogits(t, "clone after grandchild", cr, fresh(cloneToks))

		parent.Release()
		clone.Release()
		grand.Release()
	}
}

// TestCloneQuantizedSelfConsistent is the clone/growth check on the
// int8 path, where the reference is a fresh quantized decoder over the
// same memory (there is no uncached quantized path).
func TestCloneQuantizedSelfConsistent(t *testing.T) {
	const vocab = 40
	cfg := Config{Vocab: vocab, Dim: 32, Heads: 4, EncLayers: 1, DecLayers: 2, FFMult: 2, MaxSeq: 16, Seed: 23}
	m := NewTransformer(cfg)
	in := kvInputs(vocab, cfg.Seed)[1]
	mem := m.forwardEncode(in)
	toks := decodeTokens(vocab, 8, cfg.Seed+2)

	fresh := func(tokens []int) []float32 {
		d := m.NewIncrementalDecoderFromMemory(mem, true)
		defer d.Release()
		var row []float32
		for _, tok := range tokens {
			row = d.Step(tok)
		}
		return row
	}

	parent := m.NewIncrementalDecoderFromMemory(mem, true)
	for _, tok := range toks[:2] {
		parent.Step(tok)
	}
	clone := parent.Clone()
	lo := numSpecial + NumConfidenceBuckets
	cloneRow := clone.Step(lo + 3)
	parentRow := parent.Step(toks[2])
	equalLogits(t, "quantized clone", cloneRow, fresh(append(append([]int{}, toks[:2]...), lo+3)))
	equalLogits(t, "quantized parent", parentRow, fresh(toks[:3]))
	parent.Release()
	clone.Release()
}

// TestDecodeKernelWorkerBitIdentity pins decode outputs across kernel
// worker counts 1/3/8 on both precision paths: the tensor layer's
// parallel dispatch must not change a single logit bit.
func TestDecodeKernelWorkerBitIdentity(t *testing.T) {
	defer tensor.SetWorkers(0)
	const vocab = 40
	cfg := kvConfigs(vocab)[1]
	m := NewTransformer(cfg)
	in := kvInputs(vocab, cfg.Seed+6)[2]
	toks := decodeTokens(vocab, 10, cfg.Seed+7)

	decode := func(quantized bool) [][]float32 {
		mem := m.EncodeBatch([][]int{in}, quantized)[0]
		d := m.NewIncrementalDecoderFromMemory(mem, quantized)
		defer d.Release()
		var rows [][]float32
		for _, tok := range toks {
			rows = append(rows, append([]float32(nil), d.Step(tok)...))
		}
		return rows
	}

	for _, quantized := range []bool{false, true} {
		tensor.SetWorkers(1)
		want := decode(quantized)
		for _, w := range []int{3, 8} {
			tensor.SetWorkers(w)
			got := decode(quantized)
			for i := range want {
				equalLogits(t, "worker bit-identity", got[i], want[i])
			}
		}
	}
}
