package model

import (
	"context"
	"math"
	"testing"

	"vega/internal/obs"
)

// raggedSamples builds a deliberately awkward minibatch: output lengths
// from 1 to past MaxSeq (exercising the clamp), input lengths all
// different, so every padding row in LossBatch is actually exercised.
func raggedSamples(vocab int) []Sample {
	lo := numSpecial + NumConfidenceBuckets
	tok := func(i int) int { return lo + i%(vocab-lo) }
	seq := func(n, phase int) []int {
		out := make([]int, n)
		for i := range out {
			out[i] = tok(i*3 + phase)
		}
		return out
	}
	return []Sample{
		{Input: seq(5, 1), Output: seq(1, 2)},
		{Input: seq(12, 3), Output: seq(7, 4)},
		{Input: seq(2, 5), Output: seq(3, 6)},
		{Input: seq(9, 7), Output: seq(40, 8)}, // longer than tinyConfig's MaxSeq 32
		{Input: seq(7, 9), Output: seq(11, 10)},
	}
}

// TestLossBatchMatchesPerSample is the batched trainer's differential
// anchor: each sample's loss from the padded minibatch forward must
// match its standalone per-sample Loss, and the merged minibatch
// gradient must match the sum of per-sample gradients.
func TestLossBatchMatchesPerSample(t *testing.T) {
	const vocab = 40
	m := NewTransformer(tinyConfig(vocab))
	samples := raggedSamples(vocab)

	tp := NewTape()
	loss, per := m.LossBatch(tp, samples)
	tp.Backward(loss)
	tp.MergeGrads()
	batchGrads := make([][]float32, len(m.Params()))
	for i, p := range m.Params() {
		batchGrads[i] = append([]float32{}, p.Grad...)
		p.ZeroGrad()
	}

	var sum float64
	for s, smp := range samples {
		stp := NewTape()
		l := m.Loss(stp, smp.Input, smp.Output)
		lv := float64(l.Data[0])
		sum += lv
		if diff := math.Abs(per[s] - lv); diff > 1e-5 {
			t.Errorf("sample %d: batched loss %v vs per-sample %v (diff %g)", s, per[s], lv, diff)
		}
		stp.Backward(l)
		stp.MergeGrads()
	}
	if diff := math.Abs(float64(loss.Data[0]) - sum); diff > 1e-4 {
		t.Errorf("batched total %v vs per-sample sum %v (diff %g)", loss.Data[0], sum, diff)
	}

	for i, p := range m.Params() {
		for j, want := range p.Grad {
			got := batchGrads[i][j]
			diff := math.Abs(float64(got - want))
			if diff > 1e-4+1e-3*math.Abs(float64(want)) {
				t.Fatalf("param %d grad[%d]: batched %v vs per-sample %v", i, j, got, want)
			}
		}
	}
}

// TestLossBatchSingleIsLoss pins the degenerate batch: a 1-sample
// LossBatch forward computes exactly what Loss computes (bit-identical
// values, since every kernel is row-local and deterministic).
func TestLossBatchSingleIsLoss(t *testing.T) {
	const vocab = 40
	m := NewTransformer(tinyConfig(vocab))
	smp := copyTask(vocab, 1, 5, 11)[0]

	tp := NewTape()
	loss, per := m.LossBatch(tp, []Sample{smp})
	stp := NewTape()
	want := m.Loss(stp, smp.Input, smp.Output)

	if got := float32(per[0]); got != want.Data[0] {
		t.Errorf("single-sample batched loss %v != per-sample %v", got, want.Data[0])
	}
	_ = loss
}

// fitWeights trains a fresh model and returns the flattened weights.
func fitWeights(t *testing.T, mk func() Seq2Seq, workers int) [][]float32 {
	t.Helper()
	m := mk()
	samples := copyTask(40, 24, 4, 5)
	_, err := FitContext(context.Background(), m, samples,
		TrainOptions{Epochs: 2, Batch: 8, LR: 2e-3, Seed: 3, Workers: workers})
	if err != nil {
		t.Fatalf("fit (workers=%d): %v", workers, err)
	}
	out := make([][]float32, len(m.Params()))
	for i, p := range m.Params() {
		out[i] = append([]float32{}, p.Data...)
	}
	return out
}

func assertSameWeights(t *testing.T, a, b [][]float32, what string) {
	t.Helper()
	for i := range a {
		for j := range a[i] {
			if math.Float32bits(a[i][j]) != math.Float32bits(b[i][j]) {
				t.Fatalf("%s: param %d weight %d differs: %v vs %v", what, i, j, a[i][j], b[i][j])
			}
		}
	}
}

// TestFitWorkersDeterministic is the determinism regression: identical
// seeds must give bit-identical weights for any Workers value and
// across repeated runs — both for the transformer (batched path) and
// for the GRU baseline (per-sample path with concurrent workers, where
// the old completion-order merge used to be schedule-dependent).
func TestFitWorkersDeterministic(t *testing.T) {
	tr := func() Seq2Seq { return NewTransformer(tinyConfig(40)) }
	gru := func() Seq2Seq {
		cfg := tinyConfig(40)
		return NewGRUSeq2Seq(cfg)
	}

	trW1 := fitWeights(t, tr, 1)
	trW8 := fitWeights(t, tr, 8)
	trW8b := fitWeights(t, tr, 8)
	assertSameWeights(t, trW1, trW8, "transformer workers 1 vs 8")
	assertSameWeights(t, trW8, trW8b, "transformer workers 8 repeated")

	gruW1 := fitWeights(t, gru, 1)
	gruW3 := fitWeights(t, gru, 3)
	gruW8 := fitWeights(t, gru, 8)
	gruW8b := fitWeights(t, gru, 8)
	assertSameWeights(t, gruW1, gruW3, "gru workers 1 vs 3")
	assertSameWeights(t, gruW1, gruW8, "gru workers 1 vs 8")
	assertSameWeights(t, gruW8, gruW8b, "gru workers 8 repeated")
}

// TestFitCountsSamplePanics: a panicking sample must be visible in the
// fit.sample_panics counter, not silently swallowed.
func TestFitCountsSamplePanics(t *testing.T) {
	sink := &obs.MemSink{}
	o := obs.New(sink)
	ctx := obs.With(context.Background(), o)

	m := &panicOnceModel{Transformer: NewTransformer(tinyConfig(24))}
	stats, err := FitContext(ctx, m, copyTask(24, 12, 2, 9),
		TrainOptions{Epochs: 2, Batch: 4, LR: 1e-3, Seed: 4, Workers: 1})
	if err != nil {
		t.Fatalf("fit: %v", err)
	}
	if stats.SkippedSamples != 1 {
		t.Errorf("SkippedSamples = %d, want 1", stats.SkippedSamples)
	}
	o.Flush()
	mt, ok := sink.Metric("fit.sample_panics")
	if !ok {
		t.Fatal("fit.sample_panics metric not emitted")
	}
	if mt.Value != 1 {
		t.Errorf("fit.sample_panics = %v, want 1", mt.Value)
	}
}
