package model

import (
	"sync"

	"vega/internal/tensor"
)

// Batched inference encoding. EncodeBatch reuses LossBatch's ragged
// packing — samples laid back to back with an offset table, no padding,
// no masks — for the tape-free forward encoder: every row-local op
// (embedding lookup, layer norm, linear projection, GELU, residual add)
// runs batched across all samples in one kernel call wide enough to
// cross the tensor layer's parallel-dispatch gate, while attention — the
// only op that mixes rows — runs per sample over its own row range.
// Because each op is row-local, the per-sample results are bit-identical
// to forwardEncode on the float32 path (kvcache_test.go enforces this)
// and deterministic for any worker count on both paths.

// bufPool recycles the batched encoder's float32 temporaries (x, h and
// the per-layer projection outputs). Only scratch that dies inside
// EncodeBatch goes through it — the returned memories are always freshly
// allocated, since callers retain them.
var bufPool sync.Pool

// getBuf returns a zeroed float32 buffer of length n, reusing pooled
// backing storage when it is large enough.
func getBuf(n int) []float32 {
	p, _ := bufPool.Get().(*[]float32)
	if p == nil || cap(*p) < n {
		if p != nil {
			bufPool.Put(p)
		}
		return make([]float32, n)
	}
	s := (*p)[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

func putBuf(s []float32) {
	s = s[:0]
	bufPool.Put(&s)
}

// EncodeBatch encodes several inputs at once and returns one memory per
// input (each a rows×Dim flat slice into a shared backing array; treat
// them as read-only). quantized routes the linear projections through
// the int8 weight view.
func (t *Transformer) EncodeBatch(inputs [][]int, quantized bool) [][]float32 {
	n := len(inputs)
	if n == 0 {
		return nil
	}
	dim := t.Cfg.Dim
	var qv *qView
	if quantized {
		qv = t.quantView()
	}
	offs := make([]int, n+1)
	clamped := make([][]int, n)
	maxRows := 0
	for i, in := range inputs {
		clamped[i] = t.clampSeq(in)
		offs[i+1] = offs[i] + len(clamped[i])
		if len(clamped[i]) > maxRows {
			maxRows = len(clamped[i])
		}
	}
	rows := offs[n]
	ffw := dim
	for _, l := range t.Enc {
		if c := l.FF.In.W.C; c > ffw {
			ffw = c
		}
	}
	x := getBuf(rows * dim)
	for s, in := range clamped {
		base := offs[s]
		for i, tok := range in {
			er := t.Embed.Row(tok)
			pr := t.PosEnc.Row(i)
			row := x[(base+i)*dim : (base+i+1)*dim]
			for j := range row {
				row[j] = er[j] + pr[j]
			}
		}
	}
	h := getBuf(rows * dim)
	qp := getBuf(rows * dim)
	kp := getBuf(rows * dim)
	vp := getBuf(rows * dim)
	attn := getBuf(rows * dim)
	so := getBuf(rows * dim)
	f := getBuf(rows * ffw)
	scores := getBuf(maxRows)
	// Head-contiguous repack buffers for one sample's K/V (see
	// attendRowsPre): each sample's full-width projection rows are packed
	// into per-head dense blocks before attending.
	khb := getBuf(maxRows * dim)
	vhb := getBuf(maxRows * dim)
	smax, gelu := softmaxRow, geluRow
	if qv != nil {
		smax, gelu = qSoftmaxRow, qGeluRow
	}
	var qm *tensor.QMat
	if qv != nil {
		qm = getQa()
	}
	// qlin batch-quantizes src once, then runs it through each (dst,
	// weight) pair — the encoder quantizes h a single time for all three
	// attention projections.
	qlin := func(src []float32, c int, dsts [][]float32, qls []*qLin) {
		tensor.QuantizeRowsInto(qm, src, rows, c)
		for i, dst := range dsts {
			qLinearRowsFwdPre(dst, qm, qls[i])
		}
	}
	heads := 0
	for _, l := range t.Enc {
		if l.Attn.Heads > heads {
			heads = l.Attn.Heads
		}
	}
	kviews := make([][]float32, heads)
	vviews := make([][]float32, heads)
	for li, l := range t.Enc {
		var qe *qEncoderLayer
		if qv != nil {
			qe = &qv.enc[li]
		}
		layerNormRows(h, x, rows, l.N1.Gain.Data, l.N1.Bias.Data)
		if qe != nil {
			qlin(h, dim, [][]float32{qp, kp, vp},
				[]*qLin{&qe.attn.wq, &qe.attn.wk, &qe.attn.wv})
		} else {
			linearRowsFwdInto(qp, h, rows, l.Attn.WQ)
			linearRowsFwdInto(kp, h, rows, l.Attn.WK)
			linearRowsFwdInto(vp, h, rows, l.Attn.WV)
		}
		for i := range attn {
			attn[i] = 0
		}
		dh := l.Attn.D / l.Attn.Heads
		kv := kviews[:l.Attn.Heads]
		vv := vviews[:l.Attn.Heads]
		for s := 0; s < n; s++ {
			lo, hi := offs[s], offs[s+1]
			m := hi - lo
			packHeads(kv, khb, kp[lo*dim:hi*dim], m, l.Attn.Heads, dh)
			packHeads(vv, vhb, vp[lo*dim:hi*dim], m, l.Attn.Heads, dh)
			attendRowsPre(attn[lo*dim:hi*dim], qp[lo*dim:hi*dim],
				kv, vv, scores, m, m, l.Attn, smax)
		}
		if qe != nil {
			qlin(attn, dim, [][]float32{so}, []*qLin{&qe.attn.wo})
		} else {
			linearRowsFwdInto(so, attn, rows, l.Attn.WO)
		}
		for j := range x {
			x[j] += so[j]
		}
		layerNormRows(h, x, rows, l.N2.Gain.Data, l.N2.Bias.Data)
		fl := f[:rows*l.FF.In.W.C]
		// so is dead after the attention residual; reuse it for the
		// feed-forward output.
		if qe != nil {
			qlin(h, dim, [][]float32{fl}, []*qLin{&qe.ffIn})
			gelu(fl)
			qlin(fl, l.FF.In.W.C, [][]float32{so}, []*qLin{&qe.ffOut})
		} else {
			linearRowsFwdInto(fl, h, rows, l.FF.In)
			gelu(fl)
			linearRowsFwdInto(so, fl, rows, l.FF.Out)
		}
		for j := range x {
			x[j] += so[j]
		}
	}
	if qm != nil {
		qaPool.Put(qm)
	}
	out := make([]float32, rows*dim)
	layerNormRows(out, x, rows, t.NormE.Gain.Data, t.NormE.Bias.Data)
	for _, b := range [][]float32{x, h, qp, kp, vp, attn, so, f, scores, khb, vhb} {
		putBuf(b)
	}
	mems := make([][]float32, n)
	for s := 0; s < n; s++ {
		mems[s] = out[offs[s]*dim : offs[s+1]*dim]
	}
	return mems
}

// GenerateScoredFromDecoder is GenerateScored against an
// already-prepared (fresh, zero-position) decoder — the entry point for
// callers that batch-encode inputs and decode each one from its memory
// slice. The decoder's quantized/float32 mode is whatever it was built
// with; d.Ambiguous() afterwards reports whether a quantized decode is
// at risk of disagreeing with float32. The decoder's scratch is released
// on return (the decoder stays usable; see Release).
func (t *Transformer) GenerateScoredFromDecoder(d *IncrementalDecoder, maxLen int) ([]int, float64) {
	var out []int
	var logp float64
	if maxLen < 1 || t.Cfg.MaxSeq < 2 {
		return out, 0
	}
	defer d.Release()
	last := BOS
	for len(out) < maxLen && len(out)+1 < t.Cfg.MaxSeq {
		row := d.Step(last)
		next := argmax(row)
		if d.quant != nil {
			logp += qLogProb(row, next)
		} else {
			logp += logProb(row, next)
		}
		if next == EOS {
			break
		}
		out = append(out, next)
		last = next
	}
	return out, logp / float64(len(out)+1)
}

// GenerateFromDecoder is GenerateScoredFromDecoder without the score:
// per-step scoring costs a full-vocabulary exponential sum, and the
// greedy fast path discards it, so skipping the bookkeeping is pure
// profit. The decoder's scratch is released on return.
func (t *Transformer) GenerateFromDecoder(d *IncrementalDecoder, maxLen int) []int {
	var out []int
	if maxLen < 1 || t.Cfg.MaxSeq < 2 {
		return out
	}
	defer d.Release()
	last := BOS
	for len(out) < maxLen && len(out)+1 < t.Cfg.MaxSeq {
		next := argmax(d.Step(last))
		if next == EOS {
			break
		}
		out = append(out, next)
		last = next
	}
	return out
}
