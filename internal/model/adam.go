package model

import (
	"math"

	"vega/internal/tensor"
)

// Adam is the Adam optimizer with optional gradient clipping.
type Adam struct {
	LR     float64
	Beta1  float64
	Beta2  float64
	Eps    float64
	Clip   float64 // global-norm clip; 0 disables
	params []*Tensor
	m, v   [][]float32
	step   int
}

// NewAdam returns an optimizer over params with the given learning rate
// and the usual defaults (β₁ 0.9, β₂ 0.999, ε 1e-8, clip 1.0).
func NewAdam(params []*Tensor, lr float64) *Adam {
	a := &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, Clip: 1.0, params: params}
	a.m = make([][]float32, len(params))
	a.v = make([][]float32, len(params))
	for i, p := range params {
		a.m[i] = make([]float32, len(p.Data))
		a.v[i] = make([]float32, len(p.Data))
	}
	return a
}

// Step applies one update from the accumulated gradients, then zeroes
// them.
func (a *Adam) Step() {
	a.step++
	if a.Clip > 0 {
		var norm float64
		for _, p := range a.params {
			norm += tensor.SumSquares(p.Grad)
		}
		norm = math.Sqrt(norm)
		if norm > a.Clip {
			scale := float32(a.Clip / norm)
			for _, p := range a.params {
				tensor.ScaleInPlace(p.Grad, scale)
			}
		}
	}
	bc1 := 1 - math.Pow(a.Beta1, float64(a.step))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.step))
	lr := a.LR * math.Sqrt(bc2) / bc1
	b1, b2 := float32(a.Beta1), float32(a.Beta2)
	for i, p := range a.params {
		tensor.AdamUpdate(p.Data, p.Grad, a.m[i], a.v[i], lr, b1, b2, a.Eps)
		p.ZeroGrad()
	}
}

// ZeroGrad clears all parameter gradients without stepping.
func (a *Adam) ZeroGrad() {
	for _, p := range a.params {
		p.ZeroGrad()
	}
}

// adamState is a deep copy of the optimizer's moments and step counter,
// captured by snapshot for epoch-level rollback in FitContext.
type adamState struct {
	m, v [][]float32
	step int
}

func (a *Adam) snapshot() adamState {
	st := adamState{step: a.step, m: make([][]float32, len(a.m)), v: make([][]float32, len(a.v))}
	for i := range a.m {
		st.m[i] = append([]float32{}, a.m[i]...)
		st.v[i] = append([]float32{}, a.v[i]...)
	}
	return st
}

func (a *Adam) restore(st adamState) {
	a.step = st.step
	for i := range st.m {
		copy(a.m[i], st.m[i])
		copy(a.v[i], st.v[i])
	}
}
