package model

import (
	"context"
	"errors"
	"math"
	"testing"

	"vega/internal/faultinject"
)

func TestFitContextCancelBetweenEpochs(t *testing.T) {
	const vocab = 24
	samples := copyTask(vocab, 16, 2, 7)
	m := NewTransformer(tinyConfig(vocab))
	ctx, cancel := context.WithCancel(context.Background())
	opt := TrainOptions{Epochs: 50, Batch: 4, LR: 1e-3, Seed: 3, Workers: 1}
	opt.Verbose = func(epoch int, loss float64) {
		if epoch == 1 {
			cancel()
		}
	}
	stats, err := FitContext(ctx, m, samples, opt)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !stats.Canceled {
		t.Error("stats.Canceled not set")
	}
	if n := len(stats.EpochLosses); n != 2 {
		t.Errorf("completed epochs = %d, want 2 (partial losses must survive)", n)
	}
}

func TestFitContextAlreadyCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m := NewTransformer(tinyConfig(24))
	stats, err := FitContext(ctx, m, copyTask(24, 4, 2, 1), TrainOptions{Epochs: 3, Batch: 4, LR: 1e-3, Seed: 1, Workers: 1})
	if !errors.Is(err, context.Canceled) || !stats.Canceled {
		t.Fatalf("stats=%+v err=%v", stats, err)
	}
	if len(stats.EpochLosses) != 0 {
		t.Errorf("epochs ran under a dead context: %v", stats.EpochLosses)
	}
}

func TestFitRecoversFromInjectedNaN(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()
	const vocab = 24
	samples := copyTask(vocab, 24, 2, 5)
	m := NewTransformer(tinyConfig(vocab))
	faultinject.Arm(faultinject.TrainNaN, "1")
	stats, err := FitContext(context.Background(), m, samples,
		TrainOptions{Epochs: 4, Batch: 8, LR: 3e-3, Seed: 2, Workers: 1})
	if err != nil {
		t.Fatalf("training did not recover: %v", err)
	}
	if stats.RetriedEpochs < 1 {
		t.Fatalf("RetriedEpochs = %d, want >= 1", stats.RetriedEpochs)
	}
	if len(stats.EpochLosses) != 4 {
		t.Fatalf("epochs completed = %d, want 4", len(stats.EpochLosses))
	}
	for i, l := range stats.EpochLosses {
		if math.IsNaN(l) || math.IsInf(l, 0) {
			t.Fatalf("epoch %d loss %v leaked into the results", i, l)
		}
	}
	if !paramsFinite(m.Params()) {
		t.Fatal("weights non-finite after recovery")
	}
	if last, first := stats.EpochLosses[3], stats.EpochLosses[0]; last >= first {
		t.Errorf("loss did not fall across recovery: %v", stats.EpochLosses)
	}
}

func TestFitRetrySkipsNotDoubleCounted(t *testing.T) {
	// A poisoned epoch skips every sample, rolls back, and re-runs
	// cleanly. The rolled-back attempt's skips were discarded with its
	// gradients, so they must not surface in SkippedSamples — before the
	// fix this reported the whole epoch's sample count.
	faultinject.Reset()
	defer faultinject.Reset()
	const vocab = 24
	samples := copyTask(vocab, 24, 2, 5)
	m := NewTransformer(tinyConfig(vocab))
	faultinject.Arm(faultinject.TrainNaN, "1")
	stats, err := FitContext(context.Background(), m, samples,
		TrainOptions{Epochs: 3, Batch: 8, LR: 3e-3, Seed: 2, Workers: 1})
	if err != nil {
		t.Fatalf("training did not recover: %v", err)
	}
	if stats.RetriedEpochs < 1 {
		t.Fatalf("RetriedEpochs = %d, want >= 1 (injection did not fire)", stats.RetriedEpochs)
	}
	if stats.SkippedSamples != 0 {
		t.Errorf("SkippedSamples = %d, want 0: rolled-back attempts' skips were counted",
			stats.SkippedSamples)
	}
}

func TestFitGivesUpAfterRetryBudget(t *testing.T) {
	// A model whose loss is always NaN can never produce a good epoch;
	// Fit must stop with ErrTrainingDiverged instead of looping.
	m := &nanModel{Transformer: NewTransformer(tinyConfig(24))}
	stats, err := FitContext(context.Background(), m, copyTask(24, 8, 2, 1),
		TrainOptions{Epochs: 3, Batch: 4, LR: 1e-3, Seed: 1, Workers: 1, MaxEpochRetries: 1})
	if !errors.Is(err, ErrTrainingDiverged) {
		t.Fatalf("err = %v, want ErrTrainingDiverged", err)
	}
	if stats.RetriedEpochs != 1 {
		t.Errorf("RetriedEpochs = %d, want 1", stats.RetriedEpochs)
	}
	if stats.SkippedSamples == 0 {
		t.Error("non-finite samples were not counted as skipped")
	}
}

func TestFitIsolatesPanickingSample(t *testing.T) {
	base := NewTransformer(tinyConfig(24))
	m := &panicOnceModel{Transformer: base}
	stats, err := FitContext(context.Background(), m, copyTask(24, 12, 2, 9),
		TrainOptions{Epochs: 2, Batch: 4, LR: 1e-3, Seed: 4, Workers: 1})
	if err != nil {
		t.Fatalf("a single panicking sample killed training: %v", err)
	}
	if stats.SkippedSamples != 1 {
		t.Errorf("SkippedSamples = %d, want 1", stats.SkippedSamples)
	}
	if len(stats.EpochLosses) != 2 {
		t.Errorf("epochs = %d, want 2", len(stats.EpochLosses))
	}
}

func TestFitInjectedTrainCancel(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()
	faultinject.Arm(faultinject.TrainCancel, "1")
	m := NewTransformer(tinyConfig(24))
	stats, err := FitContext(context.Background(), m, copyTask(24, 8, 2, 1),
		TrainOptions{Epochs: 5, Batch: 4, LR: 1e-3, Seed: 1, Workers: 1})
	if !errors.Is(err, context.Canceled) || !stats.Canceled {
		t.Fatalf("stats=%+v err=%v", stats, err)
	}
	if len(stats.EpochLosses) != 1 {
		t.Errorf("epochs before injected cancel = %d, want 1", len(stats.EpochLosses))
	}
}

// nanModel wraps a transformer but reports NaN loss for every sample.
type nanModel struct{ *Transformer }

func (m *nanModel) Loss(tp *Tape, input, output []int) *Tensor {
	loss := m.Transformer.Loss(tp, input, output)
	loss.Data[0] = float32(math.NaN())
	return loss
}

// panicOnceModel panics on the first Loss call only.
type panicOnceModel struct {
	*Transformer
	fired bool
}

func (m *panicOnceModel) Loss(tp *Tape, input, output []int) *Tensor {
	if !m.fired {
		m.fired = true
		panic("injected sample crash")
	}
	return m.Transformer.Loss(tp, input, output)
}
