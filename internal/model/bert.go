package model

import "math/rand"

// BERTStyle is the "vanilla BERT" baseline from the paper's model
// ablation: an encoder-only transformer that predicts the output sequence
// non-autoregressively — each of the first MaxOut encoder positions emits
// one output piece. Without a decoder it cannot condition later pieces on
// earlier ones, which is exactly why the encoder-decoder CodeBE beats it.
type BERTStyle struct {
	Cfg    Config
	MaxOut int
	Embed  *Tensor
	PosEnc *Tensor
	Enc    []*EncoderLayer
	NormE  *Norm
	Head   *Linear
	params []*Tensor
}

// NewBERTStyle allocates the baseline; maxOut caps the predicted length.
func NewBERTStyle(cfg Config, maxOut int) *BERTStyle {
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &BERTStyle{Cfg: cfg, MaxOut: maxOut}
	m.Embed = NewParam(cfg.Vocab, cfg.Dim, rng)
	m.PosEnc = NewParam(cfg.MaxSeq, cfg.Dim, rng)
	for i := 0; i < cfg.EncLayers; i++ {
		m.Enc = append(m.Enc, NewEncoderLayer(cfg.Dim, cfg.Heads, cfg.FFMult, rng))
	}
	m.NormE = NewNorm(cfg.Dim)
	m.Head = NewLinear(cfg.Dim, cfg.Vocab, rng)
	m.params = []*Tensor{m.Embed, m.PosEnc}
	for _, l := range m.Enc {
		m.params = append(m.params, l.Params()...)
	}
	m.params = append(m.params, m.NormE.Params()...)
	m.params = append(m.params, m.Head.Params()...)
	return m
}

// Params returns all trainable tensors.
func (m *BERTStyle) Params() []*Tensor { return m.params }

func (m *BERTStyle) states(tp *Tape, input []int) *Tensor {
	// Reserve MaxOut mask positions at the front; the input follows.
	ids := make([]int, 0, m.MaxOut+len(input))
	for i := 0; i < m.MaxOut; i++ {
		ids = append(ids, PAD)
	}
	ids = append(ids, input...)
	if len(ids) > m.Cfg.MaxSeq {
		ids = ids[:m.Cfg.MaxSeq]
	}
	x := tp.Rows(m.Embed, ids)
	pos := make([]int, len(ids))
	for i := range pos {
		pos[i] = i
	}
	x = tp.Add(x, tp.Rows(m.PosEnc, pos))
	for _, l := range m.Enc {
		x = l.Apply(tp, x)
	}
	return m.NormE.Apply(tp, x)
}

// Loss trains each front position to predict one output piece (EOS-padded).
func (m *BERTStyle) Loss(tp *Tape, input, output []int) *Tensor {
	st := m.states(tp, input)
	front := tp.SliceRows(st, 0, m.MaxOut)
	logits := m.Head.Apply(tp, front)
	targets := make([]int, m.MaxOut)
	for i := range targets {
		if i < len(output) {
			targets[i] = output[i]
		} else {
			targets[i] = EOS
		}
	}
	return tp.CrossEntropy(logits, targets)
}

// Generate predicts all positions at once and truncates at the first EOS.
func (m *BERTStyle) Generate(input []int, maxLen int) []int {
	tp := NewTape()
	st := m.states(tp, input)
	front := tp.SliceRows(st, 0, m.MaxOut)
	logits := m.Head.Apply(tp, front)
	var out []int
	for i := 0; i < m.MaxOut && i < maxLen; i++ {
		next := argmax(logits.Row(i))
		if next == EOS {
			break
		}
		out = append(out, next)
	}
	return out
}

var _ Seq2Seq = (*BERTStyle)(nil)
