package model

import (
	"math/rand"
	"testing"
)

// copyTask builds a tiny dataset: the model must copy the span between
// two SEP markers, which is the core skill backend generation needs
// (copying target-specific values out of the feature vector).
func copyTask(vocabSize, n, spanLen int, seed int64) []Sample {
	rng := rand.New(rand.NewSource(seed))
	lo := numSpecial + NumConfidenceBuckets
	var samples []Sample
	for i := 0; i < n; i++ {
		span := make([]int, spanLen)
		for j := range span {
			span[j] = lo + rng.Intn(vocabSize-lo)
		}
		input := append([]int{CLS}, span...)
		input = append(input, SEP)
		samples = append(samples, Sample{Input: input, Output: span})
	}
	return samples
}

func tinyConfig(vocab int) Config {
	return Config{Vocab: vocab, Dim: 32, Heads: 2, EncLayers: 1, DecLayers: 1, FFMult: 2, MaxSeq: 32, Seed: 1}
}

func TestTransformerLearnsCopyTask(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	const vocab = 40
	samples := copyTask(vocab, 120, 4, 3)
	m := NewTransformer(tinyConfig(vocab))
	opt := TrainOptions{Epochs: 40, Batch: 16, LR: 3e-3, Seed: 1, MinLoss: 0.01}
	losses := Fit(m, samples, opt)
	if losses[len(losses)-1] >= losses[0] {
		t.Fatalf("loss did not fall: %v -> %v", losses[0], losses[len(losses)-1])
	}
	em := ExactMatch(m, samples[:40], 8)
	if em < 0.8 {
		t.Errorf("copy-task exact match = %.2f, want >= 0.8", em)
	}
}

func TestTransformerGenerateStops(t *testing.T) {
	m := NewTransformer(tinyConfig(30))
	out := m.Generate([]int{CLS, 20, SEP}, 5)
	if len(out) > 5 {
		t.Errorf("generation exceeded maxLen: %d", len(out))
	}
}

func TestGenerateScoredProbability(t *testing.T) {
	m := NewTransformer(tinyConfig(30))
	_, lp := m.GenerateScored([]int{CLS, 20, SEP}, 5)
	if lp > 0 {
		t.Errorf("mean log prob must be <= 0, got %f", lp)
	}
}

func TestTransformerLossFinite(t *testing.T) {
	m := NewTransformer(tinyConfig(30))
	tp := NewTape()
	loss := m.Loss(tp, []int{CLS, 21, 22, SEP}, []int{21, 22})
	if loss.Data[0] <= 0 || loss.Data[0] != loss.Data[0] {
		t.Errorf("initial loss = %f", loss.Data[0])
	}
	tp.Backward(loss)
	tp.MergeGrads()
	var any bool
	for _, g := range m.Embed.Grad {
		if g != 0 {
			any = true
			break
		}
	}
	if !any {
		t.Error("no gradient reached the embeddings")
	}
}

func TestGRULearnsTinyTask(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	const vocab = 24
	samples := copyTask(vocab, 60, 2, 5)
	m := NewGRUSeq2Seq(Config{Vocab: vocab, Dim: 32, MaxSeq: 16, Seed: 2})
	losses := Fit(m, samples, TrainOptions{Epochs: 30, Batch: 8, LR: 5e-3, Seed: 2})
	if losses[len(losses)-1] >= losses[0]*0.8 {
		t.Errorf("GRU loss did not fall: %v -> %v", losses[0], losses[len(losses)-1])
	}
}

func TestBERTStyleShapes(t *testing.T) {
	m := NewBERTStyle(tinyConfig(30), 6)
	tp := NewTape()
	loss := m.Loss(tp, []int{CLS, 20, SEP}, []int{20, 21})
	if loss.Data[0] <= 0 {
		t.Errorf("loss = %f", loss.Data[0])
	}
	out := m.Generate([]int{CLS, 20, SEP}, 10)
	if len(out) > 6 {
		t.Errorf("BERT-style emitted %d > MaxOut pieces", len(out))
	}
}

func TestFitDeterministicWithSeed(t *testing.T) {
	const vocab = 24
	samples := copyTask(vocab, 12, 2, 7)
	run := func() []float64 {
		m := NewTransformer(tinyConfig(vocab))
		return Fit(m, samples, TrainOptions{Epochs: 2, Batch: 4, LR: 1e-3, Seed: 3, Workers: 1})
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic training: %v vs %v", a, b)
		}
	}
}

func TestExactMatchEmpty(t *testing.T) {
	m := NewTransformer(tinyConfig(24))
	if ExactMatch(m, nil, 4) != 0 {
		t.Error("empty sample set must score 0")
	}
}

func TestNumParams(t *testing.T) {
	m := NewTransformer(tinyConfig(24))
	if m.NumParams() < 1000 {
		t.Errorf("NumParams = %d, suspiciously small", m.NumParams())
	}
}

func TestBeamGenerateOrdering(t *testing.T) {
	m := NewTransformer(tinyConfig(30))
	beams := m.BeamGenerate([]int{CLS, 20, SEP}, 6, 3)
	if len(beams) == 0 || len(beams) > 3 {
		t.Fatalf("beams = %d", len(beams))
	}
	for i := 1; i < len(beams); i++ {
		if beams[i-1].Score() < beams[i].Score() {
			t.Errorf("beams not sorted: %f < %f", beams[i-1].Score(), beams[i].Score())
		}
	}
	for _, b := range beams {
		if len(b.IDs) > 6 {
			t.Errorf("beam exceeds maxLen: %d", len(b.IDs))
		}
	}
}

func TestBeamWidthOneMatchesGreedy(t *testing.T) {
	m := NewTransformer(tinyConfig(30))
	in := []int{CLS, 21, 22, SEP}
	greedy := m.Generate(in, 6)
	beams := m.BeamGenerate(in, 6, 1)
	if len(beams) != 1 || !equalInts(beams[0].IDs, greedy) {
		t.Errorf("beam-1 %v vs greedy %v", beams, greedy)
	}
}

func TestPerplexityFiniteAndPositive(t *testing.T) {
	m := NewTransformer(tinyConfig(24))
	samples := copyTask(24, 6, 2, 11)
	ppl := Perplexity(m, samples)
	if ppl <= 1 || ppl != ppl {
		t.Errorf("perplexity = %f", ppl)
	}
	if Perplexity(m, nil) != 0 {
		t.Error("empty perplexity must be 0")
	}
}
