package model

import (
	"math"
	"math/rand"
)

// Linear is a fully connected layer y = xW + b.
type Linear struct {
	W *Tensor
	B *Tensor
}

// NewLinear allocates a Linear layer with in×out weights.
func NewLinear(in, out int, rng *rand.Rand) *Linear {
	b := NewTensor(1, out)
	b.requiresGrad = true
	b.Grad = make([]float32, out)
	return &Linear{W: NewParam(in, out, rng), B: b}
}

// Apply computes xW + b.
func (l *Linear) Apply(tp *Tape, x *Tensor) *Tensor {
	return tp.Add(tp.MatMul(x, l.W), l.B)
}

// Params returns the layer's trainable tensors.
func (l *Linear) Params() []*Tensor { return []*Tensor{l.W, l.B} }

// Norm is a LayerNorm with learned gain and bias.
type Norm struct {
	Gain *Tensor
	Bias *Tensor
}

// NewNorm allocates a layer norm for width d.
func NewNorm(d int) *Norm {
	g := NewTensor(1, d)
	for i := range g.Data {
		g.Data[i] = 1
	}
	g.requiresGrad = true
	g.Grad = make([]float32, d)
	b := NewTensor(1, d)
	b.requiresGrad = true
	b.Grad = make([]float32, d)
	return &Norm{Gain: g, Bias: b}
}

// Apply normalizes x.
func (n *Norm) Apply(tp *Tape, x *Tensor) *Tensor {
	return tp.LayerNorm(x, n.Gain, n.Bias)
}

// Params returns the trainable tensors.
func (n *Norm) Params() []*Tensor { return []*Tensor{n.Gain, n.Bias} }

// MHA is multi-head attention with d model width and h heads.
type MHA struct {
	D, Heads       int
	WQ, WK, WV, WO *Linear
}

// NewMHA allocates a multi-head attention block.
func NewMHA(d, heads int, rng *rand.Rand) *MHA {
	return &MHA{
		D: d, Heads: heads,
		WQ: NewLinear(d, d, rng), WK: NewLinear(d, d, rng),
		WV: NewLinear(d, d, rng), WO: NewLinear(d, d, rng),
	}
}

// Apply runs attention of query rows x over memory rows mem (self
// attention when mem == x). causal masks future positions (requires
// len(x) == len(mem)).
func (m *MHA) Apply(tp *Tape, x, mem *Tensor, causal bool) *Tensor {
	q := m.WQ.Apply(tp, x)
	k := m.WK.Apply(tp, mem)
	v := m.WV.Apply(tp, mem)
	return m.WO.Apply(tp, m.attend(tp, q, k, v, causal))
}

// attend is the core of Apply after the Q/K/V projections: per-head
// scaled dot-product attention over already-projected rows, heads
// concatenated but not yet output-projected. The batched trainer calls
// it per sample on row slices of batch-projected Q/K/V; because every
// projection is row-local, those slices are bit-identical to what the
// per-sample path computes, and so is everything downstream.
func (m *MHA) attend(tp *Tape, q, k, v *Tensor, causal bool) *Tensor {
	dh := m.D / m.Heads
	scale := float32(1 / math.Sqrt(float64(dh)))

	var mask []float32
	if causal {
		mask = tp.arena.Alloc(q.R * k.R)
		for i := 0; i < q.R; i++ {
			for j := i + 1; j < k.R; j++ {
				mask[i*k.R+j] = float32(math.Inf(-1))
			}
		}
	}

	var heads *Tensor
	for h := 0; h < m.Heads; h++ {
		qh := tp.SliceCols(q, h*dh, (h+1)*dh)
		kh := tp.SliceCols(k, h*dh, (h+1)*dh)
		vh := tp.SliceCols(v, h*dh, (h+1)*dh)
		scores := tp.Scale(tp.MatMul(qh, tp.Transpose(kh)), scale)
		attn := tp.Softmax(scores, mask)
		oh := tp.MatMul(attn, vh)
		if heads == nil {
			heads = oh
		} else {
			heads = tp.HConcat(heads, oh)
		}
	}
	return heads
}

// applyBatch is Apply over a ragged minibatch: x packs the samples'
// query rows back to back (sample s occupies rows [qOffs[s], qOffs[s+1]))
// and mem packs their memory rows likewise. Projections run batched (one
// matmul over all rows); attention — the only op that mixes rows — runs
// per sample over its own row range, so samples never need masks and
// never see each other. ConcatRows re-packs the per-sample results into
// the same ragged layout. No row is padding: the batch does exactly the
// per-sample flops, in fewer, larger kernel calls.
func (m *MHA) applyBatch(tp *Tape, x, mem *Tensor, qOffs, kOffs []int, causal bool) *Tensor {
	q := m.WQ.Apply(tp, x)
	k := m.WK.Apply(tp, mem)
	v := m.WV.Apply(tp, mem)
	parts := make([]*Tensor, len(qOffs)-1)
	for s := range parts {
		qs := tp.SliceRows(q, qOffs[s], qOffs[s+1])
		ks := tp.SliceRows(k, kOffs[s], kOffs[s+1])
		vs := tp.SliceRows(v, kOffs[s], kOffs[s+1])
		parts[s] = m.attend(tp, qs, ks, vs, causal)
	}
	return m.WO.Apply(tp, tp.ConcatRows(parts))
}

// Params returns the trainable tensors.
func (m *MHA) Params() []*Tensor {
	var out []*Tensor
	out = append(out, m.WQ.Params()...)
	out = append(out, m.WK.Params()...)
	out = append(out, m.WV.Params()...)
	out = append(out, m.WO.Params()...)
	return out
}

// FFN is the position-wise feed-forward block.
type FFN struct {
	In, Out *Linear
}

// NewFFN allocates a d → mult·d → d feed-forward block.
func NewFFN(d, mult int, rng *rand.Rand) *FFN {
	return &FFN{In: NewLinear(d, d*mult, rng), Out: NewLinear(d*mult, d, rng)}
}

// Apply runs the block with a GELU nonlinearity.
func (f *FFN) Apply(tp *Tape, x *Tensor) *Tensor {
	return f.Out.Apply(tp, tp.GELU(f.In.Apply(tp, x)))
}

// Params returns the trainable tensors.
func (f *FFN) Params() []*Tensor {
	return append(f.In.Params(), f.Out.Params()...)
}

// EncoderLayer is a pre-norm transformer encoder layer.
type EncoderLayer struct {
	N1, N2 *Norm
	Attn   *MHA
	FF     *FFN
}

// NewEncoderLayer allocates an encoder layer.
func NewEncoderLayer(d, heads, ffMult int, rng *rand.Rand) *EncoderLayer {
	return &EncoderLayer{
		N1: NewNorm(d), N2: NewNorm(d),
		Attn: NewMHA(d, heads, rng), FF: NewFFN(d, ffMult, rng),
	}
}

// Apply runs the layer.
func (l *EncoderLayer) Apply(tp *Tape, x *Tensor) *Tensor {
	h := l.N1.Apply(tp, x)
	x = tp.Add(x, l.Attn.Apply(tp, h, h, false))
	x = tp.Add(x, l.FF.Apply(tp, l.N2.Apply(tp, x)))
	return x
}

// applyBatch runs the layer over a ragged minibatch (sample s at rows
// [offs[s], offs[s+1])). Norms, FFN, and residual adds are row-local so
// they run batched unchanged; only attention goes through the
// per-sample slicing in MHA.applyBatch.
func (l *EncoderLayer) applyBatch(tp *Tape, x *Tensor, offs []int) *Tensor {
	h := l.N1.Apply(tp, x)
	x = tp.Add(x, l.Attn.applyBatch(tp, h, h, offs, offs, false))
	x = tp.Add(x, l.FF.Apply(tp, l.N2.Apply(tp, x)))
	return x
}

// Params returns the trainable tensors.
func (l *EncoderLayer) Params() []*Tensor {
	var out []*Tensor
	out = append(out, l.N1.Params()...)
	out = append(out, l.N2.Params()...)
	out = append(out, l.Attn.Params()...)
	out = append(out, l.FF.Params()...)
	return out
}

// DecoderLayer is a pre-norm transformer decoder layer with cross
// attention.
type DecoderLayer struct {
	N1, N2, N3 *Norm
	Self       *MHA
	Cross      *MHA
	FF         *FFN
}

// NewDecoderLayer allocates a decoder layer.
func NewDecoderLayer(d, heads, ffMult int, rng *rand.Rand) *DecoderLayer {
	return &DecoderLayer{
		N1: NewNorm(d), N2: NewNorm(d), N3: NewNorm(d),
		Self: NewMHA(d, heads, rng), Cross: NewMHA(d, heads, rng),
		FF: NewFFN(d, ffMult, rng),
	}
}

// Apply runs the layer over decoder states x attending to encoder memory.
func (l *DecoderLayer) Apply(tp *Tape, x, mem *Tensor) *Tensor {
	h := l.N1.Apply(tp, x)
	x = tp.Add(x, l.Self.Apply(tp, h, h, true))
	x = tp.Add(x, l.Cross.Apply(tp, l.N2.Apply(tp, x), mem, false))
	x = tp.Add(x, l.FF.Apply(tp, l.N3.Apply(tp, x)))
	return x
}

// applyBatch runs the layer over ragged decoder states x (sample s at
// rows [qOffs[s], qOffs[s+1])) attending to ragged encoder memory mem
// (rows [kOffs[s], kOffs[s+1])).
func (l *DecoderLayer) applyBatch(tp *Tape, x, mem *Tensor, qOffs, kOffs []int) *Tensor {
	h := l.N1.Apply(tp, x)
	x = tp.Add(x, l.Self.applyBatch(tp, h, h, qOffs, qOffs, true))
	x = tp.Add(x, l.Cross.applyBatch(tp, l.N2.Apply(tp, x), mem, qOffs, kOffs, false))
	x = tp.Add(x, l.FF.Apply(tp, l.N3.Apply(tp, x)))
	return x
}

// Params returns the trainable tensors.
func (l *DecoderLayer) Params() []*Tensor {
	var out []*Tensor
	out = append(out, l.N1.Params()...)
	out = append(out, l.N2.Params()...)
	out = append(out, l.N3.Params()...)
	out = append(out, l.Self.Params()...)
	out = append(out, l.Cross.Params()...)
	out = append(out, l.FF.Params()...)
	return out
}
