package model

import (
	"reflect"
	"testing"
	"testing/quick"
)

func trainSeqs() [][]string {
	return [][]string{
		{"unsigned", "Kind", "=", "Fixup", ".", "getTargetKind", "(", ")", ";"},
		{"case", "ARM", "::", "fixup_arm_movt_hi16", ":"},
		{"case", "Mips", "::", "fixup_MIPS_HI16", ":"},
		{"return", "ELF", "::", "R_ARM_MOVT_PREL", ";"},
		{"return", "ELF", "::", "R_MIPS_HI16", ";"},
		{"switch", "(", "Kind", ")", "{"},
	}
}

func TestVocabRoundTrip(t *testing.T) {
	v := BuildVocab(trainSeqs(), 1, nil)
	for _, seq := range trainSeqs() {
		ids := v.Encode(seq)
		got := v.Decode(ids)
		if !reflect.DeepEqual(got, seq) {
			t.Errorf("round trip: %v -> %v", seq, got)
		}
	}
}

func TestVocabUnseenTokenRoundTrip(t *testing.T) {
	v := BuildVocab(trainSeqs(), 1, nil)
	// Never-seen identifier must still round-trip via shared units and
	// character fallback.
	for _, tok := range []string{"fixup_riscv_pcrel_hi20", "R_RISCV_PCREL_HI20", "RISCV", "q7!z"} {
		ids := v.Encode([]string{tok})
		got := v.Decode(ids)
		if len(got) != 1 || got[0] != tok {
			t.Errorf("unseen token %q decoded as %v", tok, got)
		}
	}
}

func TestVocabForceChar(t *testing.T) {
	v := BuildVocab(trainSeqs(), 1, []string{"ARM", "Mips"})
	ids := v.Encode([]string{"ARM"})
	if len(ids) != 3 { // A, ##R, ##M
		t.Errorf("forceChar ARM encoded as %d pieces, want 3", len(ids))
	}
	if got := v.Decode(ids); got[0] != "ARM" {
		t.Errorf("forceChar round trip = %v", got)
	}
	// The whole piece must not be in the vocabulary.
	if v.Has("ARM") && v.ID("ARM") >= numSpecial+NumConfidenceBuckets {
		// Single chars A..Z are always present; the unit "ARM" itself must
		// not have been added by counting.
		t.Error("forced-char unit leaked into vocab")
	}
}

func TestConfidenceTokens(t *testing.T) {
	v := BuildVocab(nil, 1, nil)
	for _, score := range []float64{0, 0.5, 1} {
		id := v.ConfidenceToken(score)
		got, ok := v.ConfidenceValue(id)
		if !ok {
			t.Fatalf("ConfidenceValue(%d) not a bucket", id)
		}
		if diff := got - score; diff > 0.06 || diff < -0.06 {
			t.Errorf("confidence %f -> token -> %f", score, got)
		}
	}
	if _, ok := v.ConfidenceValue(PAD); ok {
		t.Error("PAD must not be a confidence bucket")
	}
	if v.ConfidenceToken(2.0) != v.ConfidenceToken(1.0) {
		t.Error("scores above 1 must clamp")
	}
	if v.ConfidenceToken(-1) != v.ConfidenceToken(0) {
		t.Error("scores below 0 must clamp")
	}
}

func TestSplitUnits(t *testing.T) {
	cases := map[string][]string{
		"fixup_arm_movt_hi16": {"fixup", "_", "arm", "_", "movt", "_", "hi", "16"},
		"getTargetKind":       {"get", "Target", "Kind"},
		"R_ARM_MOVT_PREL":     {"R", "_", "ARM", "_", "MOVT", "_", "PREL"},
		"IsPCRel":             {"Is", "PC", "Rel"},
		"::":                  {":", ":"},
		"x":                   {"x"},
		"42":                  {"42"},
		`"RISCV"`:             {`"`, "RISCV", `"`},
	}
	for tok, want := range cases {
		if got := splitUnits(tok); !reflect.DeepEqual(got, want) {
			t.Errorf("splitUnits(%q) = %v, want %v", tok, got, want)
		}
	}
}

// Property: Encode/Decode round-trips arbitrary printable-ASCII token
// sequences.
func TestVocabRoundTripProperty(t *testing.T) {
	v := BuildVocab(trainSeqs(), 2, nil)
	f := func(raw []uint8) bool {
		var tok []rune
		for _, b := range raw {
			tok = append(tok, rune(33+int(b)%94))
		}
		if len(tok) == 0 {
			return true
		}
		s := string(tok)
		got := v.Decode(v.Encode([]string{s}))
		return len(got) == 1 && got[0] == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestVocabSpecialsStable(t *testing.T) {
	v := BuildVocab(trainSeqs(), 1, nil)
	if v.PieceText(PAD) != "[PAD]" || v.PieceText(SEP) != "[SEP]" || v.PieceText(ABSENT) != "[ABSENT]" {
		t.Error("special token ids shifted")
	}
	if v.ID("[SEP]") != SEP {
		t.Error("SEP lookup broken")
	}
}
