package model

import (
	"math/rand"
	"testing"
)

// kvConfigs are the shapes the differential tests sweep: multiple
// layers, head counts, and FF widths so every cached code path (self/
// cross attention, clones, boundary clamps) is exercised.
func kvConfigs(vocab int) []Config {
	return []Config{
		{Vocab: vocab, Dim: 32, Heads: 2, EncLayers: 1, DecLayers: 1, FFMult: 2, MaxSeq: 32, Seed: 1},
		{Vocab: vocab, Dim: 48, Heads: 4, EncLayers: 2, DecLayers: 2, FFMult: 2, MaxSeq: 48, Seed: 7},
		{Vocab: vocab, Dim: 24, Heads: 3, EncLayers: 1, DecLayers: 3, FFMult: 4, MaxSeq: 24, Seed: 13},
	}
}

func kvInputs(vocab int, seed int64) [][]int {
	rng := rand.New(rand.NewSource(seed))
	lo := numSpecial + NumConfidenceBuckets
	var ins [][]int
	for n := 1; n <= 12; n += 4 {
		in := []int{CLS}
		for j := 0; j < n; j++ {
			in = append(in, lo+rng.Intn(vocab-lo))
		}
		ins = append(ins, append(in, SEP))
	}
	return ins
}

func TestForwardEncodeMatchesEncode(t *testing.T) {
	const vocab = 40
	for _, cfg := range kvConfigs(vocab) {
		m := NewTransformer(cfg)
		for _, in := range kvInputs(vocab, cfg.Seed) {
			want := m.Encode(NewTape(), in)
			got := m.forwardEncode(in)
			if len(got) != len(want.Data) {
				t.Fatalf("cfg %+v: forwardEncode %d values, Encode %d", cfg, len(got), len(want.Data))
			}
			for i := range got {
				if got[i] != want.Data[i] {
					t.Fatalf("cfg %+v input %v: memory[%d] = %v, want %v (bit-exact)",
						cfg, in, i, got[i], want.Data[i])
				}
			}
		}
	}
}

func TestGenerateCachedMatchesUncached(t *testing.T) {
	const vocab = 40
	for _, cfg := range kvConfigs(vocab) {
		m := NewTransformer(cfg)
		for _, in := range kvInputs(vocab, cfg.Seed+1) {
			want := m.GenerateUncached(in, 20)
			got := m.Generate(in, 20)
			if !equalInts(got, want) {
				t.Fatalf("cfg %+v input %v: cached %v, uncached %v", cfg, in, got, want)
			}
		}
	}
}

func TestGenerateScoredCachedMatchesUncached(t *testing.T) {
	const vocab = 40
	for _, cfg := range kvConfigs(vocab) {
		m := NewTransformer(cfg)
		for _, in := range kvInputs(vocab, cfg.Seed+2) {
			wantIDs, wantLP := m.GenerateScoredUncached(in, 20)
			gotIDs, gotLP := m.GenerateScored(in, 20)
			if !equalInts(gotIDs, wantIDs) || gotLP != wantLP {
				t.Fatalf("cfg %+v input %v: cached (%v, %v), uncached (%v, %v)",
					cfg, in, gotIDs, gotLP, wantIDs, wantLP)
			}
		}
	}
}

func TestBeamGenerateCachedMatchesUncached(t *testing.T) {
	const vocab = 40
	for _, cfg := range kvConfigs(vocab) {
		m := NewTransformer(cfg)
		for _, width := range []int{1, 2, 4} {
			for _, in := range kvInputs(vocab, cfg.Seed+3) {
				want := m.BeamGenerateUncached(in, 16, width)
				got := m.BeamGenerate(in, 16, width)
				if len(got) != len(want) {
					t.Fatalf("cfg %+v width %d: %d beams cached, %d uncached", cfg, width, len(got), len(want))
				}
				for i := range got {
					if !equalInts(got[i].IDs, want[i].IDs) || got[i].LogP != want[i].LogP ||
						got[i].done != want[i].done || got[i].emitted != want[i].emitted {
						t.Fatalf("cfg %+v width %d beam %d: cached %+v, uncached %+v",
							cfg, width, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestBeamGenerateRespectsMaxSeq is the regression test for the missing
// MaxSeq clamp: an untrained model rarely emits EOS, so with a small
// MaxSeq a long beam decode used to grow past the positional table.
// Both paths must stop every hypothesis at prefix length MaxSeq.
func TestBeamGenerateRespectsMaxSeq(t *testing.T) {
	cfg := Config{Vocab: 30, Dim: 16, Heads: 2, EncLayers: 1, DecLayers: 1, FFMult: 2, MaxSeq: 8, Seed: 5}
	m := NewTransformer(cfg)
	in := []int{CLS, 20, 21, SEP}
	for _, gen := range []func([]int, int, int) []Beam{m.BeamGenerate, m.BeamGenerateUncached} {
		beams := gen(in, 20, 3)
		if len(beams) == 0 {
			t.Fatal("no beams returned")
		}
		for _, b := range beams {
			if 1+len(b.IDs) > cfg.MaxSeq {
				t.Errorf("beam prefix length %d exceeds MaxSeq %d", 1+len(b.IDs), cfg.MaxSeq)
			}
		}
	}
}

// TestBeamScoreNormalizesEmittedCount is the regression test for the
// pruning bias: a finished beam (EOS stripped from IDs) must normalize
// over the same emitted-token count as a live beam at the same step.
func TestBeamScoreNormalizesEmittedCount(t *testing.T) {
	finished := Beam{IDs: []int{5, 6}, LogP: -3, done: true, emitted: 3}
	live := Beam{IDs: []int{5, 6, 7}, LogP: -3, emitted: 3}
	if finished.Score() != live.Score() {
		t.Errorf("finished %f vs live %f: same LogP over same emitted count must score equal",
			finished.Score(), live.Score())
	}
	// Pre-fix behaviour: finished would divide by len(IDs)=2 and outrank
	// the live beam despite identical probability mass.
	if got, want := finished.Score(), -1.0; got != want {
		t.Errorf("finished.Score() = %f, want %f (LogP/emitted)", got, want)
	}
	// Beams that never set emitted (zero value) fall back to len(IDs).
	legacy := Beam{IDs: []int{5, 6}, LogP: -3}
	if legacy.Score() != -1.5 {
		t.Errorf("legacy score = %f, want -1.5", legacy.Score())
	}
	if (Beam{}).Score() != 0 {
		t.Errorf("empty beam score = %f, want 0", (Beam{}).Score())
	}
}

// TestIncrementalDecoderClone checks that a cloned decoder diverges
// independently: stepping the clone must not disturb the parent, and
// both must match fresh decoders fed the same sequences.
func TestIncrementalDecoderClone(t *testing.T) {
	cfg := Config{Vocab: 30, Dim: 24, Heads: 2, EncLayers: 1, DecLayers: 2, FFMult: 2, MaxSeq: 16, Seed: 9}
	m := NewTransformer(cfg)
	in := []int{CLS, 20, 21, SEP}

	parent := m.NewIncrementalDecoder(in)
	parent.Step(BOS)
	parent.Step(10)
	clone := parent.Clone()

	cloneRow := clone.Step(11)
	parentRow := parent.Step(12)

	fresh := func(tokens []int) []float32 {
		d := m.NewIncrementalDecoder(in)
		var row []float32
		for _, tok := range tokens {
			row = d.Step(tok)
		}
		return row
	}
	wantClone := fresh([]int{BOS, 10, 11})
	wantParent := fresh([]int{BOS, 10, 12})
	for i := range cloneRow {
		if cloneRow[i] != wantClone[i] {
			t.Fatalf("clone logits[%d] = %v, want %v", i, cloneRow[i], wantClone[i])
		}
	}
	for i := range parentRow {
		if parentRow[i] != wantParent[i] {
			t.Fatalf("parent logits[%d] = %v, want %v", i, parentRow[i], wantParent[i])
		}
	}
	if parent.Pos() != 3 || clone.Pos() != 3 {
		t.Errorf("positions: parent %d, clone %d, want 3", parent.Pos(), clone.Pos())
	}
}
