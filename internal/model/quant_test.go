package model

import (
	"math"
	"testing"

	"vega/internal/tensor"
)

// TestEncodeBatchMatchesForwardEncode pins the float32 batched encoder
// to the per-sample path bit-exactly: every op in EncodeBatch is
// row-local except attention, which runs per sample, so packing must
// not change a single float.
func TestEncodeBatchMatchesForwardEncode(t *testing.T) {
	const vocab = 40
	for _, cfg := range kvConfigs(vocab) {
		m := NewTransformer(cfg)
		ins := kvInputs(vocab, cfg.Seed+3)
		mems := m.EncodeBatch(ins, false)
		if len(mems) != len(ins) {
			t.Fatalf("cfg %+v: %d memories for %d inputs", cfg, len(mems), len(ins))
		}
		for s, in := range ins {
			want := m.forwardEncode(in)
			if len(mems[s]) != len(want) {
				t.Fatalf("cfg %+v sample %d: %d values, want %d", cfg, s, len(mems[s]), len(want))
			}
			for i := range want {
				if math.Float32bits(mems[s][i]) != math.Float32bits(want[i]) {
					t.Fatalf("cfg %+v sample %d: memory[%d] = %v, want %v (bit-exact)",
						cfg, s, i, mems[s][i], want[i])
				}
			}
		}
	}
}

// TestDecoderFromMemoryMatchesGenerate pins the decode-from-batched-
// memory path (float32) to the plain cached generator bit-exactly.
func TestDecoderFromMemoryMatchesGenerate(t *testing.T) {
	const vocab = 40
	for _, cfg := range kvConfigs(vocab) {
		m := NewTransformer(cfg)
		ins := kvInputs(vocab, cfg.Seed+4)
		mems := m.EncodeBatch(ins, false)
		for s, in := range ins {
			wantIDs, wantLP := m.GenerateScored(in, 20)
			d := m.NewIncrementalDecoderFromMemory(mems[s], false)
			gotIDs, gotLP := m.GenerateScoredFromDecoder(d, 20)
			if !equalInts(gotIDs, wantIDs) || gotLP != wantLP {
				t.Fatalf("cfg %+v input %v: from-memory (%v, %v), direct (%v, %v)",
					cfg, in, gotIDs, gotLP, wantIDs, wantLP)
			}
			if d.Ambiguous() {
				t.Fatalf("cfg %+v input %v: float32 decoder reported Ambiguous", cfg, in)
			}
		}
	}
}

// quantLogitTol is the stated tolerance for the int8 inference path:
// after a full quantized encode + one quantized decoder step, every
// logit must be within this distance of its float32 counterpart. The
// per-linear error is bounded by half a quantization step per operand
// (see tensor.QMatMulNT's differential test); stacking norm layers
// between linears re-centers activations, and empirically the
// end-to-end logit drift on unit-scale weights stays well under this.
const quantLogitTol = 0.25

// TestQuantizedStepLogitsTolerance runs the same fresh decoder step on
// the quantized and float32 paths (both over their own encodes) and
// bounds the logit divergence.
func TestQuantizedStepLogitsTolerance(t *testing.T) {
	const vocab = 40
	for _, cfg := range kvConfigs(vocab) {
		m := NewTransformer(cfg)
		for _, in := range kvInputs(vocab, cfg.Seed+5) {
			fd := m.NewIncrementalDecoder(in)
			fRow := append([]float32(nil), fd.Step(BOS)...)
			qmem := m.EncodeBatch([][]int{in}, true)[0]
			qd := m.NewIncrementalDecoderFromMemory(qmem, true)
			qRow := qd.Step(BOS)
			for j := range fRow {
				if d := math.Abs(float64(qRow[j] - fRow[j])); d > quantLogitTol {
					t.Fatalf("cfg %+v input %v: logit[%d] quantized %v vs float32 %v (|Δ|=%g > %g)",
						cfg, in, j, qRow[j], fRow[j], d, quantLogitTol)
				}
			}
		}
	}
}

// TestQuantizedDecodeAgreesOrAmbiguous is the accuracy-preservation
// contract: whenever a quantized greedy decode emits a different
// sequence than float32, the decoder must have flagged itself Ambiguous
// so the caller re-decodes at full precision.
func TestQuantizedDecodeAgreesOrAmbiguous(t *testing.T) {
	const vocab = 40
	for _, cfg := range kvConfigs(vocab) {
		m := NewTransformer(cfg)
		for _, in := range kvInputs(vocab, cfg.Seed+6) {
			want := m.Generate(in, 20)
			qmem := m.EncodeBatch([][]int{in}, true)[0]
			qd := m.NewIncrementalDecoderFromMemory(qmem, true)
			got, _ := m.GenerateScoredFromDecoder(qd, 20)
			if !equalInts(got, want) && !qd.Ambiguous() {
				t.Fatalf("cfg %+v input %v: quantized %v != float32 %v but not Ambiguous",
					cfg, in, got, want)
			}
		}
	}
}

// TestEncodeBatchQuantizedWorkerBitIdentity crosses the kernel layer's
// parallel-dispatch gate with a wide batch and requires the quantized
// batched encode to serialize byte-identically for every worker count
// (the int32 accumulation makes this hold by construction; this guards
// the dispatch plumbing).
func TestEncodeBatchQuantizedWorkerBitIdentity(t *testing.T) {
	defer tensor.SetWorkers(0)
	const vocab = 60
	cfg := Config{Vocab: vocab, Dim: 48, Heads: 4, EncLayers: 2, DecLayers: 1,
		FFMult: 4, MaxSeq: 64, Seed: 3}
	m := NewTransformer(cfg)
	var ins [][]int
	for i := 0; i < 24; i++ {
		ins = append(ins, kvInputs(vocab, int64(i))...)
	}
	var ref [][]float32
	for _, w := range []int{1, 3, 8} {
		tensor.SetWorkers(w)
		mems := m.EncodeBatch(ins, true)
		if ref == nil {
			ref = mems
			continue
		}
		for s := range mems {
			for i := range mems[s] {
				if math.Float32bits(mems[s][i]) != math.Float32bits(ref[s][i]) {
					t.Fatalf("workers=%d sample %d: memory[%d] differs", w, s, i)
				}
			}
		}
	}
}

// TestInvalidateQuantRebuilds ensures the quantized view tracks weight
// snapshots: mutating a weight and invalidating must change the view,
// mirroring the embT lifecycle.
func TestInvalidateQuantRebuilds(t *testing.T) {
	cfg := kvConfigs(40)[0]
	m := NewTransformer(cfg)
	v1 := m.quantView()
	if m.quantView() != v1 {
		t.Fatalf("quantView not cached")
	}
	m.Embed.Data[0] += 100
	m.invalidateQuant()
	v2 := m.quantView()
	if v2 == v1 {
		t.Fatalf("invalidateQuant did not drop the cached view")
	}
	if v1.embed.Data[0] == v2.embed.Data[0] && v1.embed.Scale[0] == v2.embed.Scale[0] {
		t.Fatalf("rebuilt view did not pick up the weight change")
	}
}
