package model

import (
	"sort"
	"strings"
)

// Special token ids, fixed at the head of every vocabulary.
const (
	PAD = iota
	UNK
	BOS
	EOS
	SEP
	CLS
	E2D
	ABSENT
	numSpecial
)

var specialNames = []string{"[PAD]", "[UNK]", "[BOS]", "[EOS]", "[SEP]", "[CLS]", "[E2D]", "[ABSENT]"}

// NumConfidenceBuckets is the number of discrete confidence tokens
// ([CS00] … [CS10]) the decoder can emit before a statement.
const NumConfidenceBuckets = 11

// Vocab is a WordPiece-style subword vocabulary: frequent units are whole
// pieces; everything else decomposes into single characters, so any
// identifier from an unseen target's description files remains encodable.
// Continuation pieces carry a "##" prefix so decoded pieces reassemble
// into exact source tokens.
type Vocab struct {
	idx       map[string]int
	toks      []string
	forceChar map[string]bool
}

// ConfidenceToken returns the id of the bucket token for a score in [0,1].
func (v *Vocab) ConfidenceToken(score float64) int {
	b := int(score*float64(NumConfidenceBuckets-1) + 0.5)
	if b < 0 {
		b = 0
	}
	if b >= NumConfidenceBuckets {
		b = NumConfidenceBuckets - 1
	}
	return numSpecial + b
}

// ConfidenceValue inverts ConfidenceToken; ok is false for non-bucket ids.
func (v *Vocab) ConfidenceValue(id int) (float64, bool) {
	if id < numSpecial || id >= numSpecial+NumConfidenceBuckets {
		return 0, false
	}
	return float64(id-numSpecial) / float64(NumConfidenceBuckets-1), true
}

// Size returns the vocabulary size.
func (v *Vocab) Size() int { return len(v.toks) }

// PieceText returns the surface text of a piece id.
func (v *Vocab) PieceText(id int) string {
	if id < 0 || id >= len(v.toks) {
		return "[?]"
	}
	return v.toks[id]
}

// VocabFromPieces reconstructs a vocabulary from a serialized piece list
// and forceChar set (checkpoint loading). The piece order defines the ids.
func VocabFromPieces(pieces, forceChar []string) *Vocab {
	v := &Vocab{idx: make(map[string]int, len(pieces)), forceChar: make(map[string]bool)}
	for _, f := range forceChar {
		v.forceChar[f] = true
	}
	for _, p := range pieces {
		v.add(p)
	}
	return v
}

// Pieces returns the vocabulary's piece list in id order (serialization).
func (v *Vocab) Pieces() []string { return append([]string{}, v.toks...) }

// ForceCharList returns the forced-character units (serialization).
func (v *Vocab) ForceCharList() []string {
	out := make([]string, 0, len(v.forceChar))
	for k := range v.forceChar {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// BuildVocab constructs a vocabulary from token sequences. Units occurring
// at least minCount times become whole pieces; units listed in forceChar
// (e.g. target namespaces) always decompose to characters so the model
// learns character-level copying for names it will never have seen.
func BuildVocab(sequences [][]string, minCount int, forceChar []string) *Vocab {
	return BuildVocabExtra(sequences, minCount, forceChar, nil)
}

// BuildVocabExtra additionally registers marker tokens (conventionally
// "[NAME]") as atomic pieces; EncodeToken emits them whole.
func BuildVocabExtra(sequences [][]string, minCount int, forceChar, extra []string) *Vocab {
	v := &Vocab{idx: make(map[string]int), forceChar: make(map[string]bool)}
	for _, f := range forceChar {
		v.forceChar[f] = true
	}
	for _, s := range specialNames {
		v.add(s)
	}
	for b := 0; b < NumConfidenceBuckets; b++ {
		v.add(confName(b))
	}
	for _, m := range extra {
		v.add(m)
	}
	// Single characters (plain and continuation) are the universal
	// fallback and must always exist.
	for c := 33; c < 127; c++ {
		v.add(string(rune(c)))
		v.add("##" + string(rune(c)))
	}
	v.add(" ")
	v.add("## ")

	counts := map[string]int{}
	for _, seq := range sequences {
		for _, tok := range seq {
			for i, unit := range splitUnits(tok) {
				if v.forceChar[unit] || v.forceChar[tok] {
					continue
				}
				key := unit
				if i > 0 {
					key = "##" + unit
				}
				counts[key]++
				// Also count the opposite position so pieces work at
				// either end of a token.
				if i > 0 {
					counts[unit]++
				} else {
					counts["##"+unit]++
				}
			}
		}
	}
	keys := make([]string, 0, len(counts))
	for k, n := range counts {
		if n >= minCount {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		v.add(k)
	}
	return v
}

func confName(b int) string {
	return "[CS" + string(rune('0'+b/10)) + string(rune('0'+b%10)) + "]"
}

func (v *Vocab) add(tok string) int {
	if id, ok := v.idx[tok]; ok {
		return id
	}
	id := len(v.toks)
	v.idx[tok] = id
	v.toks = append(v.toks, tok)
	return id
}

// ID returns a piece's id, or UNK.
func (v *Vocab) ID(piece string) int {
	if id, ok := v.idx[piece]; ok {
		return id
	}
	return UNK
}

// Has reports whether the piece exists.
func (v *Vocab) Has(piece string) bool {
	_, ok := v.idx[piece]
	return ok
}

// EncodeToken encodes one source token into piece ids.
func (v *Vocab) EncodeToken(tok string) []int {
	// Bracketed marker tokens are atomic.
	if len(tok) > 1 && tok[0] == '[' && tok[len(tok)-1] == ']' {
		if id, ok := v.idx[tok]; ok {
			return []int{id}
		}
	}
	var out []int
	units := splitUnits(tok)
	for i, unit := range units {
		prefix := ""
		if i > 0 {
			prefix = "##"
		}
		if !v.forceChar[unit] && !v.forceChar[tok] {
			if id, ok := v.idx[prefix+unit]; ok {
				out = append(out, id)
				continue
			}
		}
		// Character fallback.
		for j, r := range unit {
			p := string(r)
			if i > 0 || j > 0 {
				p = "##" + p
			}
			out = append(out, v.ID(p))
		}
	}
	if len(out) == 0 {
		out = append(out, UNK)
	}
	return out
}

// EncodeContinuation encodes text as a continuation of an existing token:
// every piece, including the first, carries the "##" prefix.
func (v *Vocab) EncodeContinuation(text string) []int {
	var out []int
	for _, unit := range splitUnits(text) {
		if !v.forceChar[unit] {
			if id, ok := v.idx["##"+unit]; ok {
				out = append(out, id)
				continue
			}
		}
		for _, r := range unit {
			out = append(out, v.ID("##"+string(r)))
		}
	}
	return out
}

// Encode encodes a token sequence into piece ids.
func (v *Vocab) Encode(toks []string) []int {
	var out []int
	for _, t := range toks {
		out = append(out, v.EncodeToken(t)...)
	}
	return out
}

// Decode reassembles piece ids into source tokens. Special tokens are
// skipped; confidence tokens terminate nothing and are skipped too.
func (v *Vocab) Decode(ids []int) []string {
	var out []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, cur.String())
			cur.Reset()
		}
	}
	for _, id := range ids {
		if id < numSpecial+NumConfidenceBuckets {
			flush()
			continue
		}
		p := v.PieceText(id)
		if strings.HasPrefix(p, "##") {
			cur.WriteString(p[2:])
			continue
		}
		flush()
		cur.WriteString(p)
	}
	flush()
	return out
}

// Units exposes subword decomposition for candidate-similarity scoring.
func Units(tok string) []string { return splitUnits(tok) }

// splitUnits decomposes a source token into subword units: snake_case
// segments, CamelCase runs, digit runs, and individual symbol characters.
// Separators ("_", quotes, spaces) are their own units so decomposition is
// lossless.
func splitUnits(tok string) []string {
	var units []string
	var cur strings.Builder
	var curClass int // 0 none, 1 lower, 2 upper, 3 digit
	flush := func() {
		if cur.Len() > 0 {
			units = append(units, cur.String())
			cur.Reset()
		}
		curClass = 0
	}
	rs := []rune(tok)
	for i, r := range rs {
		switch {
		case r >= 'a' && r <= 'z':
			if curClass != 1 && curClass != 2 {
				flush()
			} else if curClass == 2 && cur.Len() > 1 {
				// "PCRel": split before the upper that begins this lower run.
				s := cur.String()
				last := s[len(s)-1:]
				cur.Reset()
				cur.WriteString(s[:len(s)-1])
				flush()
				cur.WriteString(last)
			}
			cur.WriteRune(r)
			curClass = 1
		case r >= 'A' && r <= 'Z':
			if curClass != 2 {
				flush()
			}
			cur.WriteRune(r)
			curClass = 2
			_ = i
		case r >= '0' && r <= '9':
			if curClass != 3 {
				flush()
			}
			cur.WriteRune(r)
			curClass = 3
		default:
			flush()
			units = append(units, string(r))
		}
	}
	flush()
	return units
}
