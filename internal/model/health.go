package model

import "fmt"

// CheckDecode smoke-tests a model before it is put in a serving path: it
// runs one bounded greedy decode from a minimal input and verifies the
// output is well formed. A freshly loaded checkpoint whose weights are
// corrupt in a shape-preserving way (the kind the checksum cannot catch
// once the file parses) typically fails here — by panicking inside the
// decoder or by emitting ids outside the vocabulary — so a snapshot swap
// can reject it before cutover instead of serving garbage.
//
// vocab is the vocabulary size decoded ids must stay under; maxLen bounds
// the decode. The call is a panic boundary: any crash inside Generate is
// returned as an error, never propagated.
func CheckDecode(m Seq2Seq, vocab, maxLen int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("model: health check: decode panicked: %v", r)
		}
	}()
	if m == nil {
		return fmt.Errorf("model: health check: nil model")
	}
	if maxLen < 1 {
		maxLen = 1
	}
	out := m.Generate([]int{CLS}, maxLen)
	if len(out) > maxLen {
		return fmt.Errorf("model: health check: decode emitted %d pieces, cap %d", len(out), maxLen)
	}
	for i, id := range out {
		if id < 0 || id >= vocab {
			return fmt.Errorf("model: health check: output[%d] = %d outside vocabulary [0,%d)", i, id, vocab)
		}
	}
	return nil
}
