package model

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math"
	"math/rand"
	"runtime"
	"strconv"
	"sync"
	"time"

	"vega/internal/faultinject"
	"vega/internal/obs"
)

// ErrTrainingDiverged is returned by FitContext when an epoch keeps
// producing non-finite or diverging losses after the retry budget is
// spent.
var ErrTrainingDiverged = errors.New("model: training diverged")

// TrainOptions tune Fit.
type TrainOptions struct {
	Epochs  int
	Batch   int
	LR      float64
	Seed    int64
	Workers int // parallel samples per batch; 0 = NumCPU
	Verbose func(epoch int, loss float64)
	MinLoss float64 // early stop when mean epoch loss dips below
	// LRDecay linearly anneals the learning rate to LR*LRDecay by the
	// final epoch (0 disables; 0.1 ends at a tenth of the initial rate).
	LRDecay float64
	// MaxEpochRetries bounds how many times a bad epoch (NaN/Inf loss,
	// non-finite weights, or divergence) is re-run from the last good
	// weights with a decayed LR before Fit gives up. 0 means the
	// default of 2; negative disables retries.
	MaxEpochRetries int
	// RetryLRDecay scales the learning rate on each epoch retry
	// (0 means the default of 0.5; must be in (0,1)).
	RetryLRDecay float64
	// DivergeFactor flags an epoch as diverging when its mean loss
	// exceeds DivergeFactor times the best epoch mean so far. 0
	// disables the check; NaN/Inf is always caught.
	DivergeFactor float64
}

// DefaultTrainOptions are sized for the benchmark harness.
func DefaultTrainOptions() TrainOptions {
	return TrainOptions{Epochs: 30, Batch: 16, LR: 3e-3, Seed: 1, MinLoss: 0.02}
}

// FitStats reports a training run's outcomes, including the resilience
// events that rescued it.
type FitStats struct {
	// EpochLosses holds the mean loss of every completed epoch.
	EpochLosses []float64
	// RetriedEpochs counts epoch re-runs after NaN/Inf or divergence.
	RetriedEpochs int
	// SkippedSamples counts samples whose forward pass produced a
	// non-finite loss or panicked; their gradients were dropped. Only
	// epochs whose steps were kept contribute — a rolled-back retry
	// attempt's skips are discarded with its gradients, so the same
	// sample is never counted once per retry.
	SkippedSamples int
	// Canceled is set when the context was canceled before all epochs
	// completed; EpochLosses then holds the finished epochs only.
	Canceled bool
}

// Fit trains a model on samples and returns the per-epoch losses; it is
// FitContext without cancellation, retaining the pre-context signature
// used throughout the tests and examples.
func Fit(m Seq2Seq, samples []Sample, opt TrainOptions) []float64 {
	stats, _ := FitContext(context.Background(), m, samples, opt)
	return stats.EpochLosses
}

// FitContext trains a model on samples with data-parallel gradient
// accumulation: workers run forward/backward on disjoint samples of a
// batch and their gradients accumulate under a lock before each Adam
// step.
//
// The run is fault tolerant. A sample whose forward pass panics or
// yields a non-finite loss is skipped (its gradients never merge). An
// epoch whose mean loss or weights end up non-finite — or, with
// DivergeFactor set, diverge from the best epoch so far — is rolled
// back to the last good weights and optimizer state and re-run with a
// decayed learning rate, up to MaxEpochRetries times, before
// ErrTrainingDiverged is returned. Cancellation is honored between
// batches; the stats returned alongside ctx.Err() cover the epochs that
// completed.
//
// When an observer is threaded through ctx (obs.With), the run emits a
// fit/epoch span per completed epoch plus per-epoch loss/LR gauges and
// retry/skip counters; without one every instrument is a nil no-op.
func FitContext(ctx context.Context, m Seq2Seq, samples []Sample, opt TrainOptions) (FitStats, error) {
	if opt.Workers <= 0 {
		opt.Workers = runtime.NumCPU()
	}
	maxRetries := opt.MaxEpochRetries
	if maxRetries == 0 {
		maxRetries = 2
	} else if maxRetries < 0 {
		maxRetries = 0
	}
	retryDecay := opt.RetryLRDecay
	if retryDecay <= 0 || retryDecay >= 1 {
		retryDecay = 0.5
	}
	params := m.Params()
	// The batched fast path needs the concrete transformer: wrapper models
	// (including the fault-injection test doubles that embed *Transformer
	// but override Loss) train per sample so their Loss override is honored.
	tr, _ := m.(*Transformer)
	if tr != nil {
		// Training mutates the weights in place; the incremental decoder's
		// transposed-embedding cache and the int8 quantized view must be
		// rebuilt afterwards.
		defer tr.invalidateEmbT()
		defer tr.invalidateQuant()
	}
	adam := NewAdam(params, opt.LR)
	rng := rand.New(rand.NewSource(opt.Seed))
	var stats FitStats

	// Instruments are fetched once per Fit so the epoch loop never takes
	// the registry lock; all of them are inert nil no-ops without an
	// observer in ctx.
	o := obs.From(ctx)
	epochC := o.Counter("fit.epochs")
	lossG := o.Gauge("fit.loss")
	lrG := o.Gauge("fit.lr")
	retriedC := o.Counter("fit.retried_epochs")
	skippedC := o.Counter("fit.skipped_samples")
	panicsC := o.Counter("fit.sample_panics")
	epochH := o.Histogram("fit.epoch_seconds")

	// A panic in tensor math (shape mismatch on a pathological sample) is
	// isolated and counted; the first one per run is logged with its value
	// so the failure mode is diagnosable instead of silently swallowed.
	var panicOnce sync.Once
	logPanic := func(r any) {
		panicOnce.Do(func() {
			log.Printf("model: training sample panicked (first of possibly many this run): %v", r)
		})
	}

	order := make([]int, len(samples))
	for i := range order {
		order[i] = i
	}

	// runBatch tries the true-minibatch path: one pooled tape, one padded
	// LossBatch forward/backward for the whole batch. It reports false —
	// without having touched any gradient — when the model is not the
	// concrete transformer, the batched loss has a non-finite sample, or
	// the forward pass panics; the caller then falls back to the
	// per-sample path so healthy samples still contribute. Both the
	// trigger (finiteness, panics) and the paths themselves are
	// deterministic, so training stays bit-reproducible either way.
	runBatch := func(batch []int) (ls []float64, ok bool) {
		if tr == nil {
			return nil, false
		}
		tp := getTape()
		defer putTape(tp)
		defer func() {
			if r := recover(); r != nil {
				logPanic(r)
				ls, ok = nil, false
			}
		}()
		bs := make([]Sample, len(batch))
		for i, si := range batch {
			bs[i] = samples[si]
		}
		loss, per := tr.LossBatch(tp, bs)
		for _, lv := range per {
			if math.IsNaN(lv) || math.IsInf(lv, 0) {
				return nil, false
			}
		}
		if lv := float64(loss.Data[0]); math.IsNaN(lv) || math.IsInf(lv, 0) {
			return nil, false
		}
		tp.Backward(loss)
		tp.MergeGrads()
		return per, true
	}

	// runPerSample is the reference path: each sample runs its own pooled
	// tape (workers of them in flight), and after all forward/backward
	// passes finish the tapes merge on this goroutine in batch-index
	// order — with MergeGrads itself walking parameters in first-touch
	// order, the accumulated gradient is bit-identical for any Workers
	// value and any goroutine schedule.
	runPerSample := func(batch []int) []float64 {
		losses := make([]float64, len(batch))
		tapes := make([]*Tape, len(batch))
		var wg sync.WaitGroup
		sem := make(chan struct{}, opt.Workers)
		for bi, si := range batch {
			wg.Add(1)
			sem <- struct{}{}
			go func(bi, si int) {
				defer wg.Done()
				defer func() { <-sem }()
				losses[bi] = math.NaN() // overwritten on success
				defer func() {
					// A panic in tensor math (shape mismatch on a
					// pathological sample) is isolated to this sample.
					if r := recover(); r != nil {
						panicsC.Inc()
						logPanic(r)
					}
				}()
				tp := getTape()
				defer func() {
					if tapes[bi] == nil {
						putTape(tp) // skipped sample: recycle, merge nothing
					}
				}()
				loss := m.Loss(tp, samples[si].Input, samples[si].Output)
				lv := float64(loss.Data[0])
				if math.IsNaN(lv) || math.IsInf(lv, 0) {
					return // keep the poison out of the gradients
				}
				tp.Backward(loss)
				tapes[bi] = tp
				losses[bi] = lv
			}(bi, si)
		}
		wg.Wait()
		for _, tp := range tapes {
			if tp != nil {
				tp.MergeGrads()
				putTape(tp)
			}
		}
		return losses
	}

	// runEpoch performs one full pass; it returns the mean loss over the
	// samples that contributed gradients plus the number of samples it
	// skipped, or ctx's error when canceled mid-epoch. The skip count is
	// returned rather than accumulated into stats directly so a rolled-
	// back epoch's skips are discarded along with its gradients — only
	// epochs whose effects are kept may count toward SkippedSamples.
	runEpoch := func() (float64, int, error) {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var total float64
		var count, skipped int
		for start := 0; start < len(order); start += opt.Batch {
			if err := ctx.Err(); err != nil {
				return math.NaN(), skipped, err
			}
			end := start + opt.Batch
			if end > len(order) {
				end = len(order)
			}
			batch := order[start:end]
			losses, batched := runBatch(batch)
			if !batched {
				losses = runPerSample(batch)
			}
			applied := 0
			for _, l := range losses {
				if math.IsNaN(l) {
					skipped++
					continue
				}
				total += l
				count++
				applied++
			}
			if applied == 0 {
				adam.ZeroGrad()
				continue
			}
			// Average gradients over the contributing samples.
			inv := float32(1 / float64(applied))
			for _, p := range params {
				for i := range p.Grad {
					p.Grad[i] *= inv
				}
			}
			adam.Step()
		}
		if count == 0 {
			return math.NaN(), skipped, nil
		}
		return total / float64(count), skipped, nil
	}

	retryScale := 1.0
	best := math.Inf(1)
	for epoch := 0; epoch < opt.Epochs; epoch++ {
		if err := ctx.Err(); err != nil {
			stats.Canceled = true
			return stats, err
		}
		if faultinject.Should(faultinject.TrainCancel, strconv.Itoa(epoch)) {
			stats.Canceled = true
			return stats, fmt.Errorf("model: faultinject train-cancel at epoch %d: %w",
				epoch, context.Canceled)
		}
		// Last-good state for rollback: weights and optimizer moments.
		snap := cloneParamData(params)
		adamSnap := adam.snapshot()
		attempt := 0
		var mean float64
		epochStart := time.Now()
		_, epochSpan := obs.Start(ctx, "fit/epoch", obs.Int("epoch", epoch))
		for {
			if opt.LRDecay > 0 && opt.Epochs > 1 {
				frac := float64(epoch) / float64(opt.Epochs-1)
				adam.LR = opt.LR * (1 - (1-opt.LRDecay)*frac) * retryScale
			} else {
				adam.LR = opt.LR * retryScale
			}
			lrG.Set(adam.LR)
			if faultinject.Should(faultinject.TrainNaN, strconv.Itoa(epoch)) {
				params[0].Data[0] = float32(math.NaN())
			}
			var skipped int
			var err error
			mean, skipped, err = runEpoch()
			if err != nil {
				// Canceled mid-epoch: the completed steps are valid (and
				// stay applied), so its skips count, but the unfinished
				// epoch's mean is not reported.
				stats.SkippedSamples += skipped
				skippedC.Add(float64(skipped))
				stats.Canceled = true
				epochSpan.End()
				return stats, err
			}
			bad := math.IsNaN(mean) || math.IsInf(mean, 0) || !paramsFinite(params)
			if !bad && opt.DivergeFactor > 0 && !math.IsInf(best, 1) && mean > opt.DivergeFactor*best {
				bad = true
			}
			if !bad {
				stats.SkippedSamples += skipped
				skippedC.Add(float64(skipped))
				break
			}
			if attempt >= maxRetries {
				// The retry budget is spent: the run fails with this
				// attempt's outcome, so its skips are part of the story
				// the caller sees alongside ErrTrainingDiverged.
				stats.SkippedSamples += skipped
				skippedC.Add(float64(skipped))
				restoreParamData(params, snap)
				adam.restore(adamSnap)
				epochSpan.End()
				return stats, fmt.Errorf("%w: epoch %d mean loss %v after %d retries",
					ErrTrainingDiverged, epoch, mean, attempt)
			}
			// Rolled back: the attempt's gradients are discarded, and so
			// are its skips — they would double-count the same samples
			// when the epoch re-runs.
			attempt++
			stats.RetriedEpochs++
			retriedC.Inc()
			restoreParamData(params, snap)
			adam.restore(adamSnap)
			retryScale *= retryDecay
		}
		epochSpan.SetAttr(obs.Float("loss", mean))
		epochSpan.End()
		epochC.Inc()
		lossG.Set(mean)
		epochH.Observe(time.Since(epochStart).Seconds())
		if mean < best {
			best = mean
		}
		stats.EpochLosses = append(stats.EpochLosses, mean)
		if opt.Verbose != nil {
			opt.Verbose(epoch, mean)
		}
		if opt.MinLoss > 0 && mean < opt.MinLoss {
			break
		}
	}
	return stats, nil
}

func cloneParamData(params []*Tensor) [][]float32 {
	out := make([][]float32, len(params))
	for i, p := range params {
		out[i] = append([]float32{}, p.Data...)
	}
	return out
}

func restoreParamData(params []*Tensor, snap [][]float32) {
	for i, p := range params {
		copy(p.Data, snap[i])
		p.ZeroGrad()
	}
}

func paramsFinite(params []*Tensor) bool {
	for _, p := range params {
		for _, v := range p.Data {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				return false
			}
		}
	}
	return true
}
