package model

import (
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
)

// Config sizes a sequence-to-sequence model.
type Config struct {
	Vocab     int
	Dim       int
	Heads     int
	EncLayers int
	DecLayers int
	FFMult    int
	MaxSeq    int
	Seed      int64
}

// DefaultConfig is the CPU-scale stand-in for UniXcoder used by the
// benchmark harness.
func DefaultConfig(vocab int) Config {
	return Config{
		Vocab: vocab, Dim: 64, Heads: 4,
		EncLayers: 2, DecLayers: 2, FFMult: 4,
		MaxSeq: 192, Seed: 1,
	}
}

// Transformer is the encoder-decoder behind CodeBE.
type Transformer struct {
	Cfg    Config
	Embed  *Tensor // token embeddings (tied with the output projection)
	PosEnc *Tensor // learned positional embeddings
	Enc    []*EncoderLayer
	Dec    []*DecoderLayer
	NormE  *Norm
	NormD  *Norm

	params []*Tensor

	// embT lazily caches Embed transposed to Dim×Vocab so the incremental
	// decoder's logits read the embedding row-contiguously instead of
	// column-striding through it once per step. Training mutates Embed in
	// place, so FitContext invalidates the cache when it returns.
	embT struct {
		once sync.Once
		data []float32
	}

	// qv lazily caches the int8 quantized weight view (see quant.go).
	// Same lifecycle as embT: built once per weight snapshot, dropped at
	// the training boundary, inference-only.
	qv struct {
		once sync.Once
		view *qView
	}

	// scrPool recycles incremental-decoder scratch buffers (*decScratch)
	// across the hundreds of short decodes a backend generation performs;
	// all decoders over one transformer share buffer shapes.
	scrPool sync.Pool
}

// embedT returns the cached Dim×Vocab transpose of Embed, building it on
// first use. Safe for concurrent use by generation workers.
func (t *Transformer) embedT() []float32 {
	t.embT.once.Do(func() {
		d, v := t.Cfg.Dim, t.Cfg.Vocab
		tr := make([]float32, d*v)
		for j := 0; j < v; j++ {
			row := t.Embed.Data[j*d : (j+1)*d]
			for p, val := range row {
				tr[p*v+j] = val
			}
		}
		t.embT.data = tr
	})
	return t.embT.data
}

// invalidateEmbT drops the transposed-embedding cache. Called from the
// training loop's single-threaded boundary; must not race with Step.
func (t *Transformer) invalidateEmbT() {
	t.embT.once = sync.Once{}
	t.embT.data = nil
}

// NewTransformer allocates a model.
func NewTransformer(cfg Config) *Transformer {
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := &Transformer{Cfg: cfg}
	t.Embed = NewParam(cfg.Vocab, cfg.Dim, rng)
	t.PosEnc = NewParam(cfg.MaxSeq, cfg.Dim, rng)
	for i := 0; i < cfg.EncLayers; i++ {
		t.Enc = append(t.Enc, NewEncoderLayer(cfg.Dim, cfg.Heads, cfg.FFMult, rng))
	}
	for i := 0; i < cfg.DecLayers; i++ {
		t.Dec = append(t.Dec, NewDecoderLayer(cfg.Dim, cfg.Heads, cfg.FFMult, rng))
	}
	t.NormE = NewNorm(cfg.Dim)
	t.NormD = NewNorm(cfg.Dim)

	t.params = []*Tensor{t.Embed, t.PosEnc}
	for _, l := range t.Enc {
		t.params = append(t.params, l.Params()...)
	}
	for _, l := range t.Dec {
		t.params = append(t.params, l.Params()...)
	}
	t.params = append(t.params, t.NormE.Params()...)
	t.params = append(t.params, t.NormD.Params()...)
	return t
}

// Params returns all trainable tensors.
func (t *Transformer) Params() []*Tensor { return t.params }

// NumParams counts scalar parameters.
func (t *Transformer) NumParams() int {
	n := 0
	for _, p := range t.params {
		n += len(p.Data)
	}
	return n
}

func (t *Transformer) clampSeq(ids []int) []int {
	if len(ids) > t.Cfg.MaxSeq {
		return ids[:t.Cfg.MaxSeq]
	}
	return ids
}

// Encode runs the encoder over input piece ids and returns the memory.
func (t *Transformer) Encode(tp *Tape, input []int) *Tensor {
	input = t.clampSeq(input)
	x := tp.Rows(t.Embed, input)
	pos := make([]int, len(input))
	for i := range pos {
		pos[i] = i
	}
	x = tp.Add(x, tp.Rows(t.PosEnc, pos))
	for _, l := range t.Enc {
		x = l.Apply(tp, x)
	}
	return t.NormE.Apply(tp, x)
}

// decodeStates runs the decoder over prefix ids attending to memory.
func (t *Transformer) decodeStates(tp *Tape, prefix []int, mem *Tensor) *Tensor {
	prefix = t.clampSeq(prefix)
	x := tp.Rows(t.Embed, prefix)
	pos := make([]int, len(prefix))
	for i := range pos {
		pos[i] = i
	}
	x = tp.Add(x, tp.Rows(t.PosEnc, pos))
	for _, l := range t.Dec {
		x = l.Apply(tp, x, mem)
	}
	return t.NormD.Apply(tp, x)
}

// Logits projects decoder states onto the vocabulary with the tied
// embedding matrix.
func (t *Transformer) Logits(tp *Tape, states *Tensor) *Tensor {
	return tp.MatMul(states, tp.Transpose(t.Embed))
}

// Loss computes teacher-forced cross entropy for one (input, output) pair.
// The output must not include BOS/EOS; they are added here.
func (t *Transformer) Loss(tp *Tape, input, output []int) *Tensor {
	mem := t.Encode(tp, input)
	prefix := append([]int{BOS}, output...)
	prefix = t.clampSeq(prefix)
	states := t.decodeStates(tp, prefix, mem)
	logits := t.Logits(tp, states)
	targets := append(append([]int{}, output...), EOS)
	targets = targets[:logits.R]
	return tp.CrossEntropy(logits, targets)
}

// Generate decodes greedily from input, up to maxLen output pieces. It
// uses the KV-cached incremental decoder; outputs are bit-identical to
// GenerateUncached (enforced by TestGenerateCachedMatchesUncached).
func (t *Transformer) Generate(input []int, maxLen int) []int {
	var out []int
	if maxLen < 1 || t.Cfg.MaxSeq < 2 {
		return out
	}
	d := t.NewIncrementalDecoder(input)
	defer d.Release()
	last := BOS
	for len(out) < maxLen && len(out)+1 < t.Cfg.MaxSeq {
		next := argmax(d.Step(last))
		if next == EOS {
			break
		}
		out = append(out, next)
		last = next
	}
	return out
}

// GenerateUncached is the reference greedy decode: it re-runs the full
// decoder stack over the whole prefix at every step. Kept as the ground
// truth the cached path is differentially tested against.
func (t *Transformer) GenerateUncached(input []int, maxLen int) []int {
	tp := NewTape()
	mem := t.Encode(tp, input)
	prefix := []int{BOS}
	var out []int
	for len(out) < maxLen && len(prefix) < t.Cfg.MaxSeq {
		tp2 := NewTape()
		states := tp2.decodeOnce(t, prefix, mem)
		logits := t.Logits(tp2, tp2.SliceRows(states, states.R-1, states.R))
		next := argmax(logits.Row(0))
		if next == EOS {
			break
		}
		out = append(out, next)
		prefix = append(prefix, next)
	}
	return out
}

// decodeOnce is a helper so generation reuses the already-computed memory
// without re-recording encoder ops.
func (tp *Tape) decodeOnce(t *Transformer, prefix []int, mem *Tensor) *Tensor {
	return t.decodeStates(tp, prefix, mem)
}

// GenerateScored decodes greedily and also returns the mean log
// probability of the emitted pieces (a sequence-level model confidence).
// Uses the KV-cached decoder; bit-identical to GenerateScoredUncached.
func (t *Transformer) GenerateScored(input []int, maxLen int) ([]int, float64) {
	var out []int
	var logp float64
	if maxLen < 1 || t.Cfg.MaxSeq < 2 {
		return out, 0
	}
	d := t.NewIncrementalDecoder(input)
	defer d.Release()
	last := BOS
	for len(out) < maxLen && len(out)+1 < t.Cfg.MaxSeq {
		row := d.Step(last)
		next := argmax(row)
		logp += logProb(row, next)
		if next == EOS {
			break
		}
		out = append(out, next)
		last = next
	}
	n := len(out) + 1
	return out, logp / float64(n)
}

// GenerateScoredUncached is the reference scored greedy decode (see
// GenerateUncached).
func (t *Transformer) GenerateScoredUncached(input []int, maxLen int) ([]int, float64) {
	tp := NewTape()
	mem := t.Encode(tp, input)
	prefix := []int{BOS}
	var out []int
	var logp float64
	for len(out) < maxLen && len(prefix) < t.Cfg.MaxSeq {
		tp2 := NewTape()
		states := t.decodeStates(tp2, prefix, mem)
		logits := t.Logits(tp2, tp2.SliceRows(states, states.R-1, states.R))
		row := logits.Row(0)
		next := argmax(row)
		logp += logProb(row, next)
		if next == EOS {
			break
		}
		out = append(out, next)
		prefix = append(prefix, next)
	}
	n := len(out) + 1
	return out, logp / float64(n)
}

func argmax(xs []float32) int {
	best, bi := float32(math.Inf(-1)), 0
	for i, v := range xs {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}

func logProb(logits []float32, idx int) float64 {
	maxv := float32(math.Inf(-1))
	for _, v := range logits {
		if v > maxv {
			maxv = v
		}
	}
	var sum float64
	for _, v := range logits {
		sum += math.Exp(float64(v - maxv))
	}
	return float64(logits[idx]-maxv) - math.Log(sum)
}

// Sample is one training example.
type Sample struct {
	Input  []int
	Output []int
}

// Seq2Seq is the interface shared by the transformer and the ablation
// baselines, which is all the trainer and the generator need.
type Seq2Seq interface {
	Params() []*Tensor
	Loss(tp *Tape, input, output []int) *Tensor
	Generate(input []int, maxLen int) []int
}

var _ Seq2Seq = (*Transformer)(nil)

// ExactMatch evaluates the fraction of samples whose greedy generation
// reproduces the reference output exactly (the paper's Exact Match score).
func ExactMatch(m Seq2Seq, samples []Sample, maxLen int) float64 {
	if len(samples) == 0 {
		return 0
	}
	results := make([]bool, len(samples))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.NumCPU())
	for i := range samples {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			got := m.Generate(samples[i].Input, maxLen)
			results[i] = equalInts(got, samples[i].Output)
		}(i)
	}
	wg.Wait()
	n := 0
	for _, ok := range results {
		if ok {
			n++
		}
	}
	return float64(n) / float64(len(samples))
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TopK returns the indexes of the k largest values (for inspection tools).
func TopK(xs []float32, k int) []int {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] > xs[idx[b]] })
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}
