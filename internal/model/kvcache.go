package model

import (
	"math"

	"vega/internal/tensor"
)

// This file implements the fast Stage 3 inference path: a tape-free
// forward encoder plus an incremental decoder with a per-sequence KV
// cache. The reference decode (GenerateUncached and friends) re-runs the
// whole decoder stack over the full prefix at every emitted token —
// O(L²) decoder row computations per statement — and pays tape-recording
// overhead (gradient buffers, closures, node lists) for ops that will
// never be differentiated. The cached path feeds only the newest token
// per step, reusing
//
//   - the encoder memory, computed once per sequence without a tape,
//   - each decoder layer's cross-attention K/V projections of that
//     memory, computed once per sequence, and
//   - each decoder layer's self-attention K/V rows for every previously
//     fed position, appended as decoding advances,
//
// for O(L) decoder row computations and zero autodiff bookkeeping.
//
// The outputs are bit-identical to the reference path. Every helper
// below mirrors the per-element accumulation order of the corresponding
// Tape op — the internal/tensor kernels' ascending-k terms with the
// zero-skip (see that package's determinism contract), LayerNorm's
// float32 mean/variance accumulation, Softmax's max-shift — so the
// float32 results match exactly, not just approximately. The
// differential tests in kvcache_test.go enforce this invariant; keep the
// helpers in lockstep with tensor.go and internal/tensor when changing
// any of them.

// IncrementalDecoder decodes one output sequence token by token against
// a fixed encoder memory. It is cheap to Clone, which beam search uses
// to branch hypotheses without re-decoding their shared prefix. A
// decoder is single-goroutine; distinct decoders over the same
// (read-only) Transformer may run concurrently.
type IncrementalDecoder struct {
	t      *Transformer
	memR   int             // encoder memory rows
	layers []decLayerCache // one per decoder layer
	pos    int             // next position to be fed
	scr    *decScratch     // lazily allocated, never shared across clones

	// quant switches Step's linears and logits onto the int8 weight view
	// (nil = exact float32 path). ambiguous latches when any step's top-2
	// logit margin falls under QuantMargin: the quantized argmax may then
	// differ from float32, and the caller should re-decode that row at
	// full precision.
	quant     *qView
	ambiguous bool
}

// decScratch holds the per-decoder buffers Step reuses between calls, so
// a long decode performs no per-step allocations. The logits slice Step
// returns aliases one of them.
type decScratch struct {
	x, h, q, attn, o, st []float32
	k, v                 []float32 // full-width K/V projection rows, scattered per head
	f                    []float32 // feed-forward hidden row
	scores               []float32 // attention scores, MaxSeq wide
	logits               []float32
	qrow                 []int8 // quantized-activation row (quant path)
}

// decLayerCache holds one decoder layer's attention state, head-major:
// one dense ctxLen×dh block per head, so attention scores and weighted
// sums run the dense tensor.AttnScoresInto/AttnWeightedSumInto kernels
// instead of strided dots over full-width rows. crossK/crossV are
// computed once per sequence and shared (read-only) across clones;
// selfK/selfV grow by one dh-wide row per head per fed token and are
// copied on Clone. Each head's block grows independently (growKV), so
// capacity doubling never repacks across heads.
type decLayerCache struct {
	selfK, selfV   [][]float32 // per head: pos×dh, appended per step
	crossK, crossV [][]float32 // per head: memR×dh, fixed per sequence
}

// NewIncrementalDecoder runs the encoder over input and precomputes the
// per-layer cross-attention projections of the memory.
func (t *Transformer) NewIncrementalDecoder(input []int) *IncrementalDecoder {
	return t.NewIncrementalDecoderFromMemory(t.forwardEncode(input), false)
}

// NewIncrementalDecoderFromMemory builds a decoder over an
// already-computed encoder memory (a flat rows×Dim slice, e.g. one
// sample's slice of an EncodeBatch result; it is only read). quantized
// routes the cross projections here and every per-step linear plus the
// logits through the int8 weight view; the float32 path is bit-identical
// to NewIncrementalDecoder.
func (t *Transformer) NewIncrementalDecoderFromMemory(mem []float32, quantized bool) *IncrementalDecoder {
	d := &IncrementalDecoder{t: t, memR: len(mem) / t.Cfg.Dim}
	if quantized {
		d.quant = t.quantView()
	}
	d.layers = make([]decLayerCache, len(t.Dec))
	var qm *tensor.QMat
	if d.quant != nil {
		// One activation quantization of the memory serves every layer's
		// cross K/V projection.
		qm = getQa()
		tensor.QuantizeRowsInto(qm, mem, d.memR, t.Cfg.Dim)
	}
	// The cross projections are computed full-width (one batched kernel
	// call over the memory rows), then repacked into per-head dense
	// blocks; tmp is reused across layers.
	tmp := make([]float32, d.memR*t.Cfg.Dim)
	for li, l := range t.Dec {
		dh := l.Cross.D / l.Cross.Heads
		if d.quant != nil {
			qLinearRowsFwdPre(tmp, qm, &d.quant.dec[li].cross.wk)
			d.layers[li].crossK = splitHeads(tmp, d.memR, l.Cross.Heads, dh)
			qLinearRowsFwdPre(tmp, qm, &d.quant.dec[li].cross.wv)
			d.layers[li].crossV = splitHeads(tmp, d.memR, l.Cross.Heads, dh)
		} else {
			linearRowsFwdInto(tmp, mem, d.memR, l.Cross.WK)
			d.layers[li].crossK = splitHeads(tmp, d.memR, l.Cross.Heads, dh)
			linearRowsFwdInto(tmp, mem, d.memR, l.Cross.WV)
			d.layers[li].crossV = splitHeads(tmp, d.memR, l.Cross.Heads, dh)
		}
		// selfK/selfV start as empty per-head blocks and grow on demand
		// (growKV): typical decodes emit far fewer than MaxSeq tokens, so
		// pre-sizing to the MaxSeq·Dim bound wasted ~8× the memory a real
		// decode touches and made decoder construction the dominant
		// allocation site.
		d.layers[li].selfK = make([][]float32, l.Self.Heads)
		d.layers[li].selfV = make([][]float32, l.Self.Heads)
	}
	if qm != nil {
		qaPool.Put(qm)
	}
	return d
}

// Ambiguous reports whether any step so far had a top-2 logit margin
// under QuantMargin on the quantized path (always false on the float32
// path); such a decode may disagree with float32 and should be redone at
// full precision by callers that need exactness.
func (d *IncrementalDecoder) Ambiguous() bool { return d.ambiguous }

// Clone branches the decoder: the growing self-attention blocks are
// copied per head, the per-sequence memory projections are shared.
func (d *IncrementalDecoder) Clone() *IncrementalDecoder {
	c := &IncrementalDecoder{t: d.t, memR: d.memR, pos: d.pos,
		quant: d.quant, ambiguous: d.ambiguous}
	c.layers = make([]decLayerCache, len(d.layers))
	for i, l := range d.t.Dec {
		c.layers[i].crossK = d.layers[i].crossK
		c.layers[i].crossV = d.layers[i].crossV
		// Copy with one row of headroom per head so the clone's first Step
		// doesn't immediately reallocate; beyond that it grows like any
		// decoder.
		dh := l.Self.D / l.Self.Heads
		c.layers[i].selfK = cloneKV(d.layers[i].selfK, dh)
		c.layers[i].selfV = cloneKV(d.layers[i].selfV, dh)
	}
	return c
}

// cloneKV copies a head-contiguous K/V cache: each head's dense block is
// copied with headroom for one more dh-wide row.
func cloneKV(s [][]float32, dh int) [][]float32 {
	c := make([][]float32, len(s))
	for h, blk := range s {
		if len(blk) == 0 {
			continue
		}
		c[h] = append(make([]float32, 0, len(blk)+dh), blk...)
	}
	return c
}

// splitHeads repacks n full-width rows (n×(heads·dh), row-major) into
// per-head dense n×dh blocks carved from one fresh backing array.
func splitHeads(src []float32, n, heads, dh int) [][]float32 {
	buf := make([]float32, n*heads*dh)
	views := make([][]float32, heads)
	packHeads(views, buf, src, n, heads, dh)
	return views
}

// packHeads is splitHeads into caller-provided storage: buf must hold
// n·heads·dh floats and views heads entries. The batched encoder calls
// it with pooled buffers.
func packHeads(views [][]float32, buf, src []float32, n, heads, dh int) {
	d := heads * dh
	for h := 0; h < heads; h++ {
		blk := buf[h*n*dh : (h+1)*n*dh]
		off := h * dh
		for i := 0; i < n; i++ {
			copy(blk[i*dh:(i+1)*dh], src[i*d+off:i*d+off+dh])
		}
		views[h] = blk
	}
}

// growKV extends a K/V cache to need elements, doubling the backing
// array when it is full. The amortized growth replaces the old MaxSeq·Dim
// pre-allocation; values are unaffected, so determinism is too.
func growKV(s []float32, need int) []float32 {
	if cap(s) >= need {
		return s[:need]
	}
	ns := make([]float32, need, 2*need)
	copy(ns, s)
	return ns
}

// Pos returns how many tokens have been fed so far (the position the
// next token will occupy).
func (d *IncrementalDecoder) Pos() int { return d.pos }

// scratch returns the decoder's reusable buffers, taking a recycled set
// from the transformer's pool (all decoders over one transformer share
// buffer shapes) or allocating on first use. Step overwrites every
// region it reads, so a dirty pooled scratch cannot affect outputs.
func (d *IncrementalDecoder) scratch() *decScratch {
	if d.scr == nil {
		t := d.t
		if s, ok := t.scrPool.Get().(*decScratch); ok {
			d.scr = s
			return s
		}
		dim := t.Cfg.Dim
		ffw := dim
		for _, l := range t.Dec {
			if c := l.FF.In.W.C; c > ffw {
				ffw = c
			}
		}
		d.scr = &decScratch{
			x: make([]float32, dim), h: make([]float32, dim),
			q: make([]float32, dim), attn: make([]float32, dim),
			o: make([]float32, dim), st: make([]float32, dim),
			k: make([]float32, dim), v: make([]float32, dim),
			f:      make([]float32, ffw),
			scores: make([]float32, t.Cfg.MaxSeq),
			logits: make([]float32, t.Cfg.Vocab),
			qrow:   make([]int8, ffw),
		}
	}
	return d.scr
}

// Release returns the decoder's scratch buffers to the transformer's
// pool. Call it when the decode is finished and the last Step's returned
// logits row is dead; the decoder itself stays valid (a later Step just
// draws fresh scratch), but typical callers release exactly once, after
// the final Step.
func (d *IncrementalDecoder) Release() {
	if d.scr != nil {
		d.t.scrPool.Put(d.scr)
		d.scr = nil
	}
}

// Step feeds one token at the next position and returns the
// next-token logits row. The caller must keep Pos() < Cfg.MaxSeq, the
// same bound the reference path enforces on its growing prefix. The
// returned slice aliases a scratch buffer: it is valid until the next
// Step on this decoder.
func (d *IncrementalDecoder) Step(token int) []float32 {
	t := d.t
	dim := t.Cfg.Dim
	pos := d.pos
	s := d.scratch()
	smax, gelu := softmaxRow, geluRow
	if d.quant != nil {
		smax, gelu = qSoftmaxRow, qGeluRow
	}

	// Token embedding + learned positional embedding (panics past MaxSeq
	// exactly like the reference path's PosEnc lookup would).
	x := s.x
	er := t.Embed.Row(token)
	pr := t.PosEnc.Row(pos)
	for j := range x {
		x[j] = er[j] + pr[j]
	}

	h := s.h
	for li, l := range t.Dec {
		lc := &d.layers[li]
		var qd *qDecoderLayer
		if d.quant != nil {
			qd = &d.quant.dec[li]
		}

		// Self attention: project the new row, scatter its K/V into each
		// head's dense block, attend over every cached position. The
		// newest row is never masked, so the causal softmax degenerates to
		// a plain one.
		layerNormRow(h, x, l.N1.Gain.Data, l.N1.Bias.Data)
		if qd != nil {
			// One quantization of h serves all three projections.
			qa := s.qrow[:dim]
			var sa float32
			tensor.QuantizeRowInto(qa, h, &sa)
			qMulRowPre(s.q, qa, sa, &qd.self.wq)
			qMulRowPre(s.k, qa, sa, &qd.self.wk)
			qMulRowPre(s.v, qa, sa, &qd.self.wv)
		} else {
			linearRowFwdInto(s.q, h, l.Self.WQ)
			linearRowFwdInto(s.k, h, l.Self.WK)
			linearRowFwdInto(s.v, h, l.Self.WV)
		}
		dh := l.Self.D / l.Self.Heads
		n := pos * dh
		for hd := range lc.selfK {
			lc.selfK[hd] = growKV(lc.selfK[hd], n+dh)
			lc.selfV[hd] = growKV(lc.selfV[hd], n+dh)
			copy(lc.selfK[hd][n:], s.k[hd*dh:(hd+1)*dh])
			copy(lc.selfV[hd][n:], s.v[hd*dh:(hd+1)*dh])
		}
		attendRowInto(s.attn, s.scores, s.q, lc.selfK, lc.selfV, pos+1, l.Self, smax)
		if qd != nil {
			qLinearRowFwdInto(s.o, s.attn, s.qrow, &qd.self.wo)
		} else {
			linearRowFwdInto(s.o, s.attn, l.Self.WO)
		}
		for j := range x {
			x[j] += s.o[j]
		}

		// Cross attention over the cached memory projections.
		layerNormRow(h, x, l.N2.Gain.Data, l.N2.Bias.Data)
		if qd != nil {
			qLinearRowFwdInto(s.q, h, s.qrow, &qd.cross.wq)
		} else {
			linearRowFwdInto(s.q, h, l.Cross.WQ)
		}
		attendRowInto(s.attn, s.scores, s.q, lc.crossK, lc.crossV, d.memR, l.Cross, smax)
		if qd != nil {
			qLinearRowFwdInto(s.o, s.attn, s.qrow, &qd.cross.wo)
		} else {
			linearRowFwdInto(s.o, s.attn, l.Cross.WO)
		}
		for j := range x {
			x[j] += s.o[j]
		}

		// Position-wise feed-forward.
		layerNormRow(h, x, l.N3.Gain.Data, l.N3.Bias.Data)
		f := s.f[:l.FF.In.W.C]
		if qd != nil {
			qLinearRowFwdInto(f, h, s.qrow, &qd.ffIn)
			gelu(f)
			qLinearRowFwdInto(s.o, f, s.qrow, &qd.ffOut)
		} else {
			linearRowFwdInto(f, h, l.FF.In)
			gelu(f)
			linearRowFwdInto(s.o, f, l.FF.Out)
		}
		for j := range x {
			x[j] += s.o[j]
		}
	}

	layerNormRow(s.st, x, t.NormD.Gain.Data, t.NormD.Bias.Data)

	// Tied output projection. Float32 path: against the cached Dim×Vocab
	// transpose, logits[j] = Σ_p st[p]·Embed[j][p], accumulated in the
	// same p-outer order MatMul(states, Transpose(Embed)) uses but
	// reading the embedding row-contiguously. Quantized path: the
	// Vocab×Dim embedding is already the NT operand, so the state row is
	// quantized once and dotted against each int8 embedding row; a thin
	// top-2 margin afterwards latches the ambiguity flag.
	logits := s.logits
	if d.quant != nil {
		qa := s.qrow[:dim]
		var sa float32
		tensor.QuantizeRowInto(qa, s.st, &sa)
		for j := range logits {
			logits[j] = 0
		}
		tensor.QMulRowInto(logits, qa, sa, d.quant.embed)
		if top2Margin(logits) < QuantMargin {
			d.ambiguous = true
		}
	} else {
		for j := range logits {
			logits[j] = 0
		}
		mulRowsInto(logits, s.st, t.embedT(), dim, t.Cfg.Vocab, t.Cfg.Vocab, 0)
	}
	d.pos++
	return logits
}

// top2Margin returns the gap between the largest and second-largest
// logit (0 when the row has fewer than two entries).
func top2Margin(row []float32) float32 {
	if len(row) < 2 {
		return 0
	}
	best := float32(math.Inf(-1))
	second := best
	for _, v := range row {
		if v > best {
			second, best = best, v
		} else if v > second {
			second = v
		}
	}
	return best - second
}

// forwardEncode mirrors Encode without recording a tape: same kernels,
// same op order, no gradient buffers. Returns the memory as a flat
// len(input)×Dim row-major slice.
func (t *Transformer) forwardEncode(input []int) []float32 {
	input = t.clampSeq(input)
	dim := t.Cfg.Dim
	n := len(input)
	x := make([]float32, n*dim)
	for i, tok := range input {
		er := t.Embed.Row(tok)
		pr := t.PosEnc.Row(i)
		row := x[i*dim : (i+1)*dim]
		for j := range row {
			row[j] = er[j] + pr[j]
		}
	}
	h := make([]float32, n*dim)
	for _, l := range t.Enc {
		layerNormRows(h, x, n, l.N1.Gain.Data, l.N1.Bias.Data)
		attn := attendRows(h, h, n, n, l.Attn)
		so := linearRowsFwd(attn, n, l.Attn.WO)
		for j := range x {
			x[j] += so[j]
		}
		layerNormRows(h, x, n, l.N2.Gain.Data, l.N2.Bias.Data)
		f := linearRowsFwd(h, n, l.FF.In)
		geluRow(f)
		fo := linearRowsFwd(f, n, l.FF.Out)
		for j := range x {
			x[j] += fo[j]
		}
	}
	out := make([]float32, n*dim)
	layerNormRows(out, x, n, t.NormE.Gain.Data, t.NormE.Bias.Data)
	return out
}

// --- forward-only kernels, each mirroring a Tape op's float order.
// The heavy ones live in internal/tensor (see its determinism contract);
// these wrappers keep the decoder's call sites in visible lockstep with
// the tape ops above. ---

// mulRowsInto accumulates out[j] += a[p]·b[p*stride+off+j] for j < cols,
// p < rows: one output row of matmul against a sub-matrix of b, in
// matmul's per-element term order with the zero-skip.
func mulRowsInto(out, a, b []float32, rows, cols, stride, off int) {
	tensor.MulRowInto(out, a, b, rows, cols, stride, off)
}

// linearRowFwdInto computes x·W + b for one row into out, mirroring
// Linear.Apply.
func linearRowFwdInto(out, x []float32, l *Linear) {
	for j := range out {
		out[j] = 0
	}
	mulRowsInto(out, x, l.W.Data, l.W.R, l.W.C, l.W.C, 0)
	for j := range out {
		out[j] += l.B.Data[j]
	}
}

// linearRowsFwd computes x·W + b for n rows of a flat row-major slice.
func linearRowsFwd(x []float32, n int, l *Linear) []float32 {
	out := make([]float32, n*l.W.C)
	linearRowsFwdInto(out, x, n, l)
	return out
}

// linearRowsFwdInto is linearRowsFwd into caller-provided out (len
// n·W.C, overwritten) — the batched encoder reuses pooled buffers
// through it.
func linearRowsFwdInto(out, x []float32, n int, l *Linear) {
	for i := range out {
		out[i] = 0
	}
	matmul(out, x, l.W.Data, n, l.W.R, l.W.C)
	for i := 0; i < n; i++ {
		row := out[i*l.W.C : (i+1)*l.W.C]
		for j := range row {
			row[j] += l.B.Data[j]
		}
	}
}

// attendRowInto runs multi-head attention for a single query row over
// ctxLen cached head-contiguous K/V blocks into out: per head, scores →
// scale → softmax → weighted sum, written into the head's slice of the
// output (the HConcat layout). k and v hold one dense ctxLen×dh block
// per head. scores is caller-provided scratch of at least ctxLen
// elements. smax is the softmax to apply per head — softmaxRow on the
// exact float32 path, qSoftmaxRow on the quantized one. The dense
// kernels produce the same bits as the strided DotColumns/MulRowInto
// pass over full-width rows (attn_test.go in internal/tensor pins the
// seam), so this layout change is invisible in the outputs.
func attendRowInto(out, scores, q []float32, k, v [][]float32, ctxLen int, m *MHA, smax func([]float32)) {
	dh := m.D / m.Heads
	scale := float32(1 / math.Sqrt(float64(dh)))
	for j := range out {
		out[j] = 0
	}
	scores = scores[:ctxLen]
	for h := 0; h < m.Heads; h++ {
		off := h * dh
		tensor.AttnScoresInto(scores, q[off:off+dh], k[h], ctxLen, dh)
		for j := range scores {
			scores[j] *= scale
		}
		smax(scores)
		tensor.AttnWeightedSumInto(out[off:off+dh], scores, v[h], ctxLen, dh)
	}
}

// attendRows is attendRow over n query rows (the encoder's full
// self-attention; no mask). The full-width K/V projections are repacked
// head-contiguous once, then every query row attends via the dense
// kernels.
func attendRows(q, kv []float32, n, ctxLen int, m *MHA) []float32 {
	qp := linearRowsFwd(q, n, m.WQ)
	kp := linearRowsFwd(kv, ctxLen, m.WK)
	vp := linearRowsFwd(kv, ctxLen, m.WV)
	dh := m.D / m.Heads
	kh := splitHeads(kp, ctxLen, m.Heads, dh)
	vh := splitHeads(vp, ctxLen, m.Heads, dh)
	out := make([]float32, n*m.D)
	attendRowsPre(out, qp, kh, vh, make([]float32, ctxLen), n, ctxLen, m, softmaxRow)
	return out
}

// attendRowsPre is the attention core after the Q/K/V projections:
// per-head scaled dot-product of full-width query rows against
// head-contiguous K/V blocks (one dense ctxLen×dh block per head),
// written into out (which must start zeroed). Factored out so the
// batched inference encoder can project all samples in one kernel call,
// repack each sample's K/V head-major, and attend over its own row
// range — the per-row math, and therefore the floats, are identical
// either way. scores is caller scratch of at least ctxLen elements.
// smax selects the per-head softmax (exact softmaxRow vs the quantized
// path's qSoftmaxRow).
func attendRowsPre(out, qp []float32, kh, vh [][]float32, scores []float32, n, ctxLen int, m *MHA, smax func([]float32)) {
	dh := m.D / m.Heads
	scale := float32(1 / math.Sqrt(float64(dh)))
	scores = scores[:ctxLen]
	for h := 0; h < m.Heads; h++ {
		off := h * dh
		for i := 0; i < n; i++ {
			tensor.AttnScoresInto(scores, qp[i*m.D+off:i*m.D+off+dh], kh[h], ctxLen, dh)
			for j := range scores {
				scores[j] *= scale
			}
			smax(scores)
			tensor.AttnWeightedSumInto(out[i*m.D+off:i*m.D+off+dh], scores, vh[h], ctxLen, dh)
		}
	}
}

// layerNormRow mirrors LayerNorm's forward pass for one row.
func layerNormRow(dst, src, gain, bias []float32) {
	const eps = 1e-5
	var mean float32
	for _, v := range src {
		mean += v
	}
	mean /= float32(len(src))
	var vr float32
	for _, v := range src {
		d := v - mean
		vr += d * d
	}
	vr /= float32(len(src))
	is := float32(1 / math.Sqrt(float64(vr)+eps))
	for j, v := range src {
		dst[j] = (v-mean)*is*gain[j] + bias[j]
	}
}

// layerNormRows applies layerNormRow to n rows of a flat slice.
func layerNormRows(dst, src []float32, n int, gain, bias []float32) {
	c := len(gain)
	for i := 0; i < n; i++ {
		layerNormRow(dst[i*c:(i+1)*c], src[i*c:(i+1)*c], gain, bias)
	}
}

// softmaxRow mirrors Softmax's forward pass for one unmasked row.
func softmaxRow(row []float32) {
	maxv := float32(math.Inf(-1))
	for _, v := range row {
		if v > maxv {
			maxv = v
		}
	}
	var sum float32
	for j, v := range row {
		e := float32(math.Exp(float64(v - maxv)))
		row[j] = e
		sum += e
	}
	if sum > 0 {
		inv := 1 / sum
		for j := range row {
			row[j] *= inv
		}
	}
}

// geluRow mirrors GELU's forward pass in place.
func geluRow(xs []float32) {
	const c0 = 0.7978845608028654 // sqrt(2/pi)
	for i, v := range xs {
		x := float64(v)
		xs[i] = float32(0.5 * x * (1 + math.Tanh(c0*(x+0.044715*x*x*x))))
	}
}

// --- quantized-path approximations. The int8 decode is already inexact
// (guarded by the QuantMargin ambiguity fallback), so its softmax, GELU,
// and scoring swap the float64 library transcendentals — which dominate
// single-core decode time — for tensor's float32 polynomials. The exact
// float32 path above never calls these. ---

// qSoftmaxRow is softmaxRow with FastExp32.
func qSoftmaxRow(row []float32) {
	maxv := float32(math.Inf(-1))
	for _, v := range row {
		if v > maxv {
			maxv = v
		}
	}
	var sum float32
	for j, v := range row {
		e := tensor.FastExp32(v - maxv)
		row[j] = e
		sum += e
	}
	if sum > 0 {
		inv := 1 / sum
		for j := range row {
			row[j] *= inv
		}
	}
}

// qGeluRow is geluRow with FastTanh32, in float32 throughout.
func qGeluRow(xs []float32) {
	const c0 = float32(0.7978845608028654) // sqrt(2/pi)
	for i, v := range xs {
		xs[i] = 0.5 * v * (1 + tensor.FastTanh32(c0*(v+0.044715*v*v*v)))
	}
}

// qLogProb mirrors logProb with FastExp32 for the full-vocabulary sum —
// the per-step scoring otherwise costs one float64 Exp per vocab entry.
func qLogProb(logits []float32, idx int) float64 {
	maxv := float32(math.Inf(-1))
	for _, v := range logits {
		if v > maxv {
			maxv = v
		}
	}
	var sum float64
	for _, v := range logits {
		sum += float64(tensor.FastExp32(v - maxv))
	}
	return float64(logits[idx]-maxv) - math.Log(sum)
}
