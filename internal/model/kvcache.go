package model

import (
	"math"

	"vega/internal/tensor"
)

// This file implements the fast Stage 3 inference path: a tape-free
// forward encoder plus an incremental decoder with a per-sequence KV
// cache. The reference decode (GenerateUncached and friends) re-runs the
// whole decoder stack over the full prefix at every emitted token —
// O(L²) decoder row computations per statement — and pays tape-recording
// overhead (gradient buffers, closures, node lists) for ops that will
// never be differentiated. The cached path feeds only the newest token
// per step, reusing
//
//   - the encoder memory, computed once per sequence without a tape,
//   - each decoder layer's cross-attention K/V projections of that
//     memory, computed once per sequence, and
//   - each decoder layer's self-attention K/V rows for every previously
//     fed position, appended as decoding advances,
//
// for O(L) decoder row computations and zero autodiff bookkeeping.
//
// The outputs are bit-identical to the reference path. Every helper
// below mirrors the per-element accumulation order of the corresponding
// Tape op — the internal/tensor kernels' ascending-k terms with the
// zero-skip (see that package's determinism contract), LayerNorm's
// float32 mean/variance accumulation, Softmax's max-shift — so the
// float32 results match exactly, not just approximately. The
// differential tests in kvcache_test.go enforce this invariant; keep the
// helpers in lockstep with tensor.go and internal/tensor when changing
// any of them.

// IncrementalDecoder decodes one output sequence token by token against
// a fixed encoder memory. It is cheap to Clone, which beam search uses
// to branch hypotheses without re-decoding their shared prefix. A
// decoder is single-goroutine; distinct decoders over the same
// (read-only) Transformer may run concurrently.
type IncrementalDecoder struct {
	t      *Transformer
	memR   int             // encoder memory rows
	layers []decLayerCache // one per decoder layer
	pos    int             // next position to be fed
	scr    *decScratch     // lazily allocated, never shared across clones
}

// decScratch holds the per-decoder buffers Step reuses between calls, so
// a long decode performs no per-step allocations. The logits slice Step
// returns aliases one of them.
type decScratch struct {
	x, h, q, attn, o, st []float32
	f                    []float32 // feed-forward hidden row
	scores               []float32 // attention scores, MaxSeq wide
	logits               []float32
}

// decLayerCache holds one decoder layer's attention state. crossK/crossV
// are computed once per sequence and shared (read-only) across clones;
// selfK/selfV grow by one D-wide row per fed token and are copied on
// Clone.
type decLayerCache struct {
	selfK, selfV   []float32 // pos×D, appended per step
	crossK, crossV []float32 // memR×D, fixed per sequence
}

// NewIncrementalDecoder runs the encoder over input and precomputes the
// per-layer cross-attention projections of the memory.
func (t *Transformer) NewIncrementalDecoder(input []int) *IncrementalDecoder {
	mem := t.forwardEncode(input)
	d := &IncrementalDecoder{t: t, memR: len(mem) / t.Cfg.Dim}
	d.layers = make([]decLayerCache, len(t.Dec))
	kvCap := t.Cfg.MaxSeq * t.Cfg.Dim
	for li, l := range t.Dec {
		d.layers[li].crossK = linearRowsFwd(mem, d.memR, l.Cross.WK)
		d.layers[li].crossV = linearRowsFwd(mem, d.memR, l.Cross.WV)
		// Pre-size the growing caches to the position bound the caller
		// must respect, so Step can extend them without reallocating.
		d.layers[li].selfK = make([]float32, 0, kvCap)
		d.layers[li].selfV = make([]float32, 0, kvCap)
	}
	return d
}

// Clone branches the decoder: the growing self-attention rows are
// copied, the per-sequence memory projections are shared.
func (d *IncrementalDecoder) Clone() *IncrementalDecoder {
	c := &IncrementalDecoder{t: d.t, memR: d.memR, pos: d.pos}
	c.layers = make([]decLayerCache, len(d.layers))
	kvCap := d.t.Cfg.MaxSeq * d.t.Cfg.Dim
	for i := range d.layers {
		c.layers[i].crossK = d.layers[i].crossK
		c.layers[i].crossV = d.layers[i].crossV
		c.layers[i].selfK = append(make([]float32, 0, kvCap), d.layers[i].selfK...)
		c.layers[i].selfV = append(make([]float32, 0, kvCap), d.layers[i].selfV...)
	}
	return c
}

// Pos returns how many tokens have been fed so far (the position the
// next token will occupy).
func (d *IncrementalDecoder) Pos() int { return d.pos }

// scratch returns the decoder's reusable buffers, allocating on first use.
func (d *IncrementalDecoder) scratch() *decScratch {
	if d.scr == nil {
		t := d.t
		dim := t.Cfg.Dim
		ffw := dim
		for _, l := range t.Dec {
			if c := l.FF.In.W.C; c > ffw {
				ffw = c
			}
		}
		d.scr = &decScratch{
			x: make([]float32, dim), h: make([]float32, dim),
			q: make([]float32, dim), attn: make([]float32, dim),
			o: make([]float32, dim), st: make([]float32, dim),
			f:      make([]float32, ffw),
			scores: make([]float32, t.Cfg.MaxSeq),
			logits: make([]float32, t.Cfg.Vocab),
		}
	}
	return d.scr
}

// Step feeds one token at the next position and returns the
// next-token logits row. The caller must keep Pos() < Cfg.MaxSeq, the
// same bound the reference path enforces on its growing prefix. The
// returned slice aliases a scratch buffer: it is valid until the next
// Step on this decoder.
func (d *IncrementalDecoder) Step(token int) []float32 {
	t := d.t
	dim := t.Cfg.Dim
	pos := d.pos
	s := d.scratch()

	// Token embedding + learned positional embedding (panics past MaxSeq
	// exactly like the reference path's PosEnc lookup would).
	x := s.x
	er := t.Embed.Row(token)
	pr := t.PosEnc.Row(pos)
	for j := range x {
		x[j] = er[j] + pr[j]
	}

	h := s.h
	for li, l := range t.Dec {
		lc := &d.layers[li]

		// Self attention: project the new row, extend the cache, attend
		// over every cached position. The newest row is never masked, so
		// the causal softmax degenerates to a plain one.
		layerNormRow(h, x, l.N1.Gain.Data, l.N1.Bias.Data)
		linearRowFwdInto(s.q, h, l.Self.WQ)
		n := len(lc.selfK)
		lc.selfK = lc.selfK[:n+dim]
		linearRowFwdInto(lc.selfK[n:], h, l.Self.WK)
		lc.selfV = lc.selfV[:n+dim]
		linearRowFwdInto(lc.selfV[n:], h, l.Self.WV)
		attendRowInto(s.attn, s.scores, s.q, lc.selfK, lc.selfV, pos+1, l.Self)
		linearRowFwdInto(s.o, s.attn, l.Self.WO)
		for j := range x {
			x[j] += s.o[j]
		}

		// Cross attention over the cached memory projections.
		layerNormRow(h, x, l.N2.Gain.Data, l.N2.Bias.Data)
		linearRowFwdInto(s.q, h, l.Cross.WQ)
		attendRowInto(s.attn, s.scores, s.q, lc.crossK, lc.crossV, d.memR, l.Cross)
		linearRowFwdInto(s.o, s.attn, l.Cross.WO)
		for j := range x {
			x[j] += s.o[j]
		}

		// Position-wise feed-forward.
		layerNormRow(h, x, l.N3.Gain.Data, l.N3.Bias.Data)
		f := s.f[:l.FF.In.W.C]
		linearRowFwdInto(f, h, l.FF.In)
		geluRow(f)
		linearRowFwdInto(s.o, f, l.FF.Out)
		for j := range x {
			x[j] += s.o[j]
		}
	}

	layerNormRow(s.st, x, t.NormD.Gain.Data, t.NormD.Bias.Data)

	// Tied output projection against the cached Dim×Vocab transpose:
	// logits[j] = Σ_p st[p]·Embed[j][p], accumulated in the same p-outer
	// order MatMul(states, Transpose(Embed)) uses, but reading the
	// embedding row-contiguously.
	logits := s.logits
	for j := range logits {
		logits[j] = 0
	}
	mulRowsInto(logits, s.st, t.embedT(), dim, t.Cfg.Vocab, t.Cfg.Vocab, 0)
	d.pos++
	return logits
}

// forwardEncode mirrors Encode without recording a tape: same kernels,
// same op order, no gradient buffers. Returns the memory as a flat
// len(input)×Dim row-major slice.
func (t *Transformer) forwardEncode(input []int) []float32 {
	input = t.clampSeq(input)
	dim := t.Cfg.Dim
	n := len(input)
	x := make([]float32, n*dim)
	for i, tok := range input {
		er := t.Embed.Row(tok)
		pr := t.PosEnc.Row(i)
		row := x[i*dim : (i+1)*dim]
		for j := range row {
			row[j] = er[j] + pr[j]
		}
	}
	h := make([]float32, n*dim)
	for _, l := range t.Enc {
		layerNormRows(h, x, n, l.N1.Gain.Data, l.N1.Bias.Data)
		attn := attendRows(h, h, n, n, l.Attn)
		so := linearRowsFwd(attn, n, l.Attn.WO)
		for j := range x {
			x[j] += so[j]
		}
		layerNormRows(h, x, n, l.N2.Gain.Data, l.N2.Bias.Data)
		f := linearRowsFwd(h, n, l.FF.In)
		geluRow(f)
		fo := linearRowsFwd(f, n, l.FF.Out)
		for j := range x {
			x[j] += fo[j]
		}
	}
	out := make([]float32, n*dim)
	layerNormRows(out, x, n, t.NormE.Gain.Data, t.NormE.Bias.Data)
	return out
}

// --- forward-only kernels, each mirroring a Tape op's float order.
// The heavy ones live in internal/tensor (see its determinism contract);
// these wrappers keep the decoder's call sites in visible lockstep with
// the tape ops above. ---

// mulRowsInto accumulates out[j] += a[p]·b[p*stride+off+j] for j < cols,
// p < rows: one output row of matmul against a sub-matrix of b, in
// matmul's per-element term order with the zero-skip.
func mulRowsInto(out, a, b []float32, rows, cols, stride, off int) {
	tensor.MulRowInto(out, a, b, rows, cols, stride, off)
}

// dotColumns accumulates out[j] += a[p]·b[j*stride+off+p] — a row times
// the transpose of a sub-matrix of b, in the per-element term order
// MatMul(a, Transpose(b)) produces after materializing the transpose.
// out must start zeroed (every caller zeroes its scores scratch first).
func dotColumns(out, a, b []float32, outer, rows, off, cols int) {
	tensor.DotColumns(out, a, b, outer, rows, off, cols)
}

// linearRowFwdInto computes x·W + b for one row into out, mirroring
// Linear.Apply.
func linearRowFwdInto(out, x []float32, l *Linear) {
	for j := range out {
		out[j] = 0
	}
	mulRowsInto(out, x, l.W.Data, l.W.R, l.W.C, l.W.C, 0)
	for j := range out {
		out[j] += l.B.Data[j]
	}
}

// linearRowsFwd computes x·W + b for n rows of a flat row-major slice.
func linearRowsFwd(x []float32, n int, l *Linear) []float32 {
	out := make([]float32, n*l.W.C)
	matmul(out, x, l.W.Data, n, l.W.R, l.W.C)
	for i := 0; i < n; i++ {
		row := out[i*l.W.C : (i+1)*l.W.C]
		for j := range row {
			row[j] += l.B.Data[j]
		}
	}
	return out
}

// attendRowInto runs multi-head attention for a single query row over
// ctxLen cached full-width K/V rows into out: per head, scores → scale →
// softmax → weighted sum, written into the head's slice of the output
// (the HConcat layout). scores is caller-provided scratch of at least
// ctxLen elements.
func attendRowInto(out, scores, q, k, v []float32, ctxLen int, m *MHA) {
	dh := m.D / m.Heads
	scale := float32(1 / math.Sqrt(float64(dh)))
	for j := range out {
		out[j] = 0
	}
	scores = scores[:ctxLen]
	for h := 0; h < m.Heads; h++ {
		off := h * dh
		for j := range scores {
			scores[j] = 0
		}
		dotColumns(scores, q[off:off+dh], k, ctxLen, m.D, off, dh)
		for j := range scores {
			scores[j] *= scale
		}
		softmaxRow(scores)
		mulRowsInto(out[off:off+dh], scores, v, ctxLen, dh, m.D, off)
	}
}

// attendRows is attendRow over n query rows (the encoder's full
// self-attention; no mask).
func attendRows(q, kv []float32, n, ctxLen int, m *MHA) []float32 {
	qp := linearRowsFwd(q, n, m.WQ)
	kp := linearRowsFwd(kv, ctxLen, m.WK)
	vp := linearRowsFwd(kv, ctxLen, m.WV)
	dh := m.D / m.Heads
	scale := float32(1 / math.Sqrt(float64(dh)))
	out := make([]float32, n*m.D)
	scores := make([]float32, ctxLen)
	for h := 0; h < m.Heads; h++ {
		off := h * dh
		for i := 0; i < n; i++ {
			for j := range scores {
				scores[j] = 0
			}
			dotColumns(scores, qp[i*m.D+off:i*m.D+off+dh], kp, ctxLen, m.D, off, dh)
			for j := range scores {
				scores[j] *= scale
			}
			softmaxRow(scores)
			mulRowsInto(out[i*m.D+off:i*m.D+off+dh], scores, vp, ctxLen, dh, m.D, off)
		}
	}
	return out
}

// layerNormRow mirrors LayerNorm's forward pass for one row.
func layerNormRow(dst, src, gain, bias []float32) {
	const eps = 1e-5
	var mean float32
	for _, v := range src {
		mean += v
	}
	mean /= float32(len(src))
	var vr float32
	for _, v := range src {
		d := v - mean
		vr += d * d
	}
	vr /= float32(len(src))
	is := float32(1 / math.Sqrt(float64(vr)+eps))
	for j, v := range src {
		dst[j] = (v-mean)*is*gain[j] + bias[j]
	}
}

// layerNormRows applies layerNormRow to n rows of a flat slice.
func layerNormRows(dst, src []float32, n int, gain, bias []float32) {
	c := len(gain)
	for i := 0; i < n; i++ {
		layerNormRow(dst[i*c:(i+1)*c], src[i*c:(i+1)*c], gain, bias)
	}
}

// softmaxRow mirrors Softmax's forward pass for one unmasked row.
func softmaxRow(row []float32) {
	maxv := float32(math.Inf(-1))
	for _, v := range row {
		if v > maxv {
			maxv = v
		}
	}
	var sum float32
	for j, v := range row {
		e := float32(math.Exp(float64(v - maxv)))
		row[j] = e
		sum += e
	}
	if sum > 0 {
		inv := 1 / sum
		for j := range row {
			row[j] *= inv
		}
	}
}

// geluRow mirrors GELU's forward pass in place.
func geluRow(xs []float32) {
	const c0 = 0.7978845608028654 // sqrt(2/pi)
	for i, v := range xs {
		x := float64(v)
		xs[i] = float32(0.5 * x * (1 + math.Tanh(c0*(x+0.044715*x*x*x))))
	}
}
