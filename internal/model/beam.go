package model

import (
	"math"
	"sort"
)

// Beam holds one decoding hypothesis.
type Beam struct {
	IDs  []int
	LogP float64
	done bool
}

// Score returns the length-normalized log probability.
func (b Beam) Score() float64 {
	n := len(b.IDs)
	if n == 0 {
		n = 1
	}
	return b.LogP / float64(n)
}

// BeamGenerate decodes with beam search of the given width, returning the
// hypotheses sorted best-first. Width 1 degenerates to greedy decoding.
func (t *Transformer) BeamGenerate(input []int, maxLen, width int) []Beam {
	if width < 1 {
		width = 1
	}
	tp := NewTape()
	mem := t.Encode(tp, input)

	beams := []Beam{{}}
	for step := 0; step < maxLen; step++ {
		var next []Beam
		expanded := false
		for _, b := range beams {
			if b.done {
				next = append(next, b)
				continue
			}
			expanded = true
			prefix := append([]int{BOS}, b.IDs...)
			tp2 := NewTape()
			states := t.decodeStates(tp2, prefix, mem)
			logits := t.Logits(tp2, tp2.SliceRows(states, states.R-1, states.R))
			row := logits.Row(0)
			for _, id := range TopK(row, width) {
				lp := logProb(row, id)
				nb := Beam{
					IDs:  append(append([]int{}, b.IDs...), id),
					LogP: b.LogP + lp,
				}
				if id == EOS {
					nb.IDs = nb.IDs[:len(nb.IDs)-1]
					nb.done = true
				}
				next = append(next, nb)
			}
		}
		if !expanded {
			break
		}
		sort.SliceStable(next, func(i, j int) bool { return next[i].Score() > next[j].Score() })
		if len(next) > width {
			next = next[:width]
		}
		beams = next
	}
	sort.SliceStable(beams, func(i, j int) bool { return beams[i].Score() > beams[j].Score() })
	return beams
}

// Perplexity computes exp(mean cross entropy) of the model over samples,
// a convergence diagnostic.
func Perplexity(m Seq2Seq, samples []Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	var total float64
	for _, s := range samples {
		tp := NewTape()
		loss := m.Loss(tp, s.Input, s.Output)
		total += float64(loss.Data[0])
	}
	return math.Exp(total / float64(len(samples)))
}
