package model

import (
	"math"
	"sort"
)

// Beam holds one decoding hypothesis.
type Beam struct {
	IDs  []int
	LogP float64
	done bool

	// emitted counts the tokens the model actually emitted for this
	// hypothesis, including the EOS that IDs strips from finished beams.
	// Length normalization must use this count: normalizing done beams
	// by the shorter len(IDs) while live beams at the same step divide
	// by their full length biased pruning toward early termination.
	emitted int
}

// Score returns the length-normalized log probability, normalizing over
// the emitted-token count (EOS included) so finished and live hypotheses
// at the same step are compared over the same number of factors in LogP.
func (b Beam) Score() float64 {
	n := b.emitted
	if n == 0 {
		n = len(b.IDs)
	}
	if n == 0 {
		n = 1
	}
	return b.LogP / float64(n)
}

// beamState is a live hypothesis during cached beam search: the Beam
// plus its KV-cached decoder and the logits row its last Step produced.
type beamState struct {
	Beam
	d      *IncrementalDecoder
	logits []float32
}

// BeamGenerate decodes with beam search of the given width, returning the
// hypotheses sorted best-first. Width 1 degenerates to greedy decoding.
//
// Decoding is incremental: each live hypothesis owns a KV-cached
// IncrementalDecoder, cloned when a hypothesis branches into several
// surviving children (the last child inherits the parent's decoder).
// Candidate construction, scoring, and the stable sort all mirror
// BeamGenerateUncached exactly, and the logits rows are bit-identical,
// so both paths return identical beams (enforced by
// TestBeamGenerateCachedMatchesUncached).
//
// A hypothesis whose prefix [BOS]+IDs has reached Cfg.MaxSeq can emit no
// further tokens — the positional table ends there — and is carried
// forward unexpanded, the same bound greedy Generate enforces. The
// (rare) EOS it might have emitted exactly at the boundary is forfeited;
// both paths agree on this.
func (t *Transformer) BeamGenerate(input []int, maxLen, width int) []Beam {
	if width < 1 {
		width = 1
	}
	beams := []*beamState{{}}
	if t.Cfg.MaxSeq > 1 && maxLen > 0 {
		d := t.NewIncrementalDecoder(input)
		beams[0].d = d
		beams[0].logits = d.Step(BOS)
	}

	// candidate is a scored expansion (or pass-through) awaiting pruning;
	// surviving candidates are materialized into beamStates afterwards,
	// so losing branches never pay for a decoder step.
	type candidate struct {
		Beam
		parent *beamState // expansion: parent hypothesis
		pass   *beamState // pass-through: already-final hypothesis
		id     int        // expansion: the token appended
	}

	for step := 0; step < maxLen; step++ {
		var next []candidate
		expanded := false
		for _, b := range beams {
			if b.done || 1+len(b.IDs) >= t.Cfg.MaxSeq {
				next = append(next, candidate{Beam: b.Beam, pass: b})
				continue
			}
			expanded = true
			row := b.logits
			for _, id := range TopK(row, width) {
				lp := logProb(row, id)
				c := candidate{
					Beam: Beam{
						IDs:     append(append([]int{}, b.IDs...), id),
						LogP:    b.LogP + lp,
						emitted: len(b.IDs) + 1,
					},
					parent: b,
					id:     id,
				}
				if id == EOS {
					c.IDs = c.IDs[:len(c.IDs)-1]
					c.done = true
				}
				next = append(next, c)
			}
		}
		if !expanded {
			break
		}
		sort.SliceStable(next, func(i, j int) bool { return next[i].Score() > next[j].Score() })
		if len(next) > width {
			next = next[:width]
		}

		// Materialize survivors. Count how many surviving children still
		// need each parent's decoder: all but the last clone it.
		needs := make(map[*beamState]int, len(next))
		for _, c := range next {
			if c.parent != nil && !c.done && 1+len(c.IDs) < t.Cfg.MaxSeq {
				needs[c.parent]++
			}
		}
		newBeams := make([]*beamState, 0, len(next))
		for _, c := range next {
			if c.pass != nil {
				newBeams = append(newBeams, c.pass)
				continue
			}
			ns := &beamState{Beam: c.Beam}
			if !c.done && 1+len(c.IDs) < t.Cfg.MaxSeq {
				d := c.parent.d
				needs[c.parent]--
				if needs[c.parent] > 0 {
					d = d.Clone()
				}
				ns.d = d
				ns.logits = d.Step(c.id)
			}
			newBeams = append(newBeams, ns)
		}
		beams = newBeams
	}

	out := make([]Beam, len(beams))
	for i, b := range beams {
		out[i] = b.Beam
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Score() > out[j].Score() })
	return out
}

// BeamGenerateUncached is the reference beam search: every live
// hypothesis re-runs the full decoder stack over its whole prefix each
// step. Kept as the ground truth the cached path is differentially
// tested against; semantics (MaxSeq bound, emitted-count normalization,
// candidate ordering) are identical by construction.
func (t *Transformer) BeamGenerateUncached(input []int, maxLen, width int) []Beam {
	if width < 1 {
		width = 1
	}
	tp := NewTape()
	mem := t.Encode(tp, input)

	beams := []Beam{{}}
	for step := 0; step < maxLen; step++ {
		var next []Beam
		expanded := false
		for _, b := range beams {
			if b.done || 1+len(b.IDs) >= t.Cfg.MaxSeq {
				next = append(next, b)
				continue
			}
			expanded = true
			prefix := append([]int{BOS}, b.IDs...)
			tp2 := NewTape()
			states := t.decodeStates(tp2, prefix, mem)
			logits := t.Logits(tp2, tp2.SliceRows(states, states.R-1, states.R))
			row := logits.Row(0)
			for _, id := range TopK(row, width) {
				lp := logProb(row, id)
				nb := Beam{
					IDs:     append(append([]int{}, b.IDs...), id),
					LogP:    b.LogP + lp,
					emitted: len(b.IDs) + 1,
				}
				if id == EOS {
					nb.IDs = nb.IDs[:len(nb.IDs)-1]
					nb.done = true
				}
				next = append(next, nb)
			}
		}
		if !expanded {
			break
		}
		sort.SliceStable(next, func(i, j int) bool { return next[i].Score() > next[j].Score() })
		if len(next) > width {
			next = next[:width]
		}
		beams = next
	}
	sort.SliceStable(beams, func(i, j int) bool { return beams[i].Score() > beams[j].Score() })
	return beams
}

// Perplexity computes exp(mean cross entropy) of the model over samples,
// a convergence diagnostic.
func Perplexity(m Seq2Seq, samples []Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	var total float64
	for _, s := range samples {
		tp := NewTape()
		loss := m.Loss(tp, s.Input, s.Output)
		total += float64(loss.Data[0])
	}
	return math.Exp(total / float64(len(samples)))
}
