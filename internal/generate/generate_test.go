package generate

import (
	"fmt"
	"strings"
	"testing"
)

func sampleFunction() *Function {
	return &Function{
		Name: "getRelocType", Module: "EMI", Target: "RISCV",
		Statements: []Statement{
			{Row: 0, Text: "unsigned W::getRelocType(unsigned Kind, bool IsPCRel) {", Score: 1.0},
			{Row: 1, Text: "unsigned K = Fixup.getTargetKind();", Score: 1.0},
			{Row: 2, Text: "MCSymbolRefExpr::VariantKind M = Target.getAccessVariant();", Score: 0.23},
			{Row: 3, Text: "return K;", Score: 0.8},
			{Row: 4, Text: "}", Score: 1.0},
		},
	}
}

func TestKeptFiltersThreshold(t *testing.T) {
	f := sampleFunction()
	if f.Statements[2].Kept() {
		t.Error("0.23 statement must be dropped")
	}
	if !f.Statements[3].Kept() {
		t.Error("0.8 statement must be kept")
	}
	absent := Statement{Absent: true, Score: 1}
	if absent.Kept() {
		t.Error("absent statements are never kept")
	}
}

func TestRenderSkipsDropped(t *testing.T) {
	f := sampleFunction()
	out := f.Render()
	if strings.Contains(out, "VariantKind") {
		t.Errorf("dropped statement rendered:\n%s", out)
	}
	if !strings.Contains(out, "return K;") {
		t.Errorf("kept statement missing:\n%s", out)
	}
}

func TestRenderAnnotatedShowsEverything(t *testing.T) {
	f := sampleFunction()
	out := f.RenderAnnotated()
	if !strings.Contains(out, "0.23 | MCSymbolRefExpr") {
		t.Errorf("annotation missing:\n%s", out)
	}
	f.Statements = append(f.Statements, Statement{Absent: true, Score: 0})
	if !strings.Contains(f.RenderAnnotated(), "<absent>") {
		t.Error("absent marker missing")
	}
}

func TestFunctionConfidenceIsFirstLine(t *testing.T) {
	f := sampleFunction()
	if f.Confidence() != 1.0 {
		t.Errorf("confidence = %f", f.Confidence())
	}
	f.Statements[0].Score = 0.4
	if f.Generated() {
		t.Error("sub-threshold head means the function is not generated")
	}
	var empty Function
	if empty.Confidence() != 0 || empty.Generated() {
		t.Error("empty function must have zero confidence")
	}
}

func TestParseRendered(t *testing.T) {
	f := sampleFunction()
	fn, err := f.Parse()
	if err != nil {
		t.Fatalf("rendered function does not parse: %v\n%s", err, f.Render())
	}
	if fn.FunctionName() != "getRelocType" {
		t.Errorf("name = %q", fn.FunctionName())
	}
	var bad Function
	if _, err := bad.Parse(); err == nil {
		t.Error("empty function must not parse")
	}
}

func TestStatementCount(t *testing.T) {
	f := sampleFunction()
	// head + 2 kept body statements ("}" excluded, 0.23 dropped).
	if got := f.StatementCount(); got != 3 {
		t.Errorf("statement count = %d, want 3", got)
	}
}

func TestBackendByModuleAndLookup(t *testing.T) {
	b := &Backend{
		Target: "RISCV",
		Functions: []*Function{
			{Name: "a", Module: "SEL"},
			{Name: "b", Module: "SEL"},
			{Name: "c", Module: "EMI"},
		},
	}
	by := b.ByModule()
	if len(by["SEL"]) != 2 || len(by["EMI"]) != 1 {
		t.Errorf("ByModule = %v", by)
	}
	if b.Function("c") == nil || b.Function("zz") != nil {
		t.Error("Function lookup broken")
	}
}

func TestRenderRepairsBraces(t *testing.T) {
	f := &Function{
		Name: "f", Module: "SEL", Target: "X",
		Statements: []Statement{
			{Row: 0, Text: "int f(int a) {", Score: 1},
			{Row: 1, Text: "if (a > 0) {", Score: 0.2}, // dropped header
			{Row: 2, Text: "a = a + 1;", Score: 1},
			{Row: 3, Text: "}", Score: 1}, // orphaned closer
			{Row: 4, Text: "return a;", Score: 1},
			{Row: 5, Text: "}", Score: 1},
		},
	}
	if _, err := f.Parse(); err != nil {
		t.Fatalf("repaired render does not parse: %v\n%s", err, f.Render())
	}
}

func TestRenderRepairsElse(t *testing.T) {
	f := &Function{
		Name: "f", Module: "SEL", Target: "X",
		Statements: []Statement{
			{Row: 0, Text: "int f(int a) {", Score: 1},
			{Row: 1, Text: "if (a > 0) {", Score: 0.1}, // dropped
			{Row: 2, Text: "} else {", Score: 1},       // must be dropped too
			{Row: 3, Text: "a = 2;", Score: 1},
			{Row: 4, Text: "}", Score: 1},
			{Row: 5, Text: "return a;", Score: 1},
			{Row: 6, Text: "}", Score: 1},
		},
	}
	if _, err := f.Parse(); err != nil {
		t.Fatalf("else repair failed: %v\n%s", err, f.Render())
	}
}

func TestRenderClosesUnclosedBlocks(t *testing.T) {
	f := &Function{
		Name: "f", Module: "SEL", Target: "X",
		Statements: []Statement{
			{Row: 0, Text: "int f(int a) {", Score: 1},
			{Row: 1, Text: "if (a > 0) {", Score: 1},
			{Row: 2, Text: "a = 1;", Score: 1},
			{Row: 3, Text: "}", Score: 0.1}, // dropped closer
			{Row: 4, Text: "}", Score: 0.1}, // dropped closer
		},
	}
	if _, err := f.Parse(); err != nil {
		t.Fatalf("unclosed-block repair failed: %v\n%s", err, f.Render())
	}
}

func TestFailedFunctionIsZeroConfidence(t *testing.T) {
	f := FailedFunction("getRelocType", "EMI", "RISCV", fmt.Errorf("recovered panic: boom"))
	if !f.Failed() {
		t.Fatal("Failed() = false")
	}
	if f.Confidence() != 0 || f.Generated() {
		t.Errorf("failed function must be zero-confidence and ungenerated: %+v", f)
	}
	if f.Render() != "" {
		t.Errorf("failed function rendered source: %q", f.Render())
	}
	if !strings.Contains(f.RenderAnnotated(), "generation failed") {
		t.Errorf("annotation hides the failure: %q", f.RenderAnnotated())
	}
	if f.StatementCount() != 0 {
		t.Errorf("StatementCount = %d", f.StatementCount())
	}
}
