// Package generate defines the artifacts of VEGA's Stage 3 — the
// target-specific functions and whole backends synthesized for a new
// target — together with their confidence annotations and rendering.
package generate

import (
	"fmt"
	"strings"

	"vega/internal/confidence"
	"vega/internal/cpp"
)

// Statement is one generated statement with its confidence scores.
type Statement struct {
	Row     int     // template row index
	Text    string  // generated text ("" when predicted absent)
	Absent  bool    // model predicted the statement does not exist
	Score   float64 // model-emitted confidence (the paper's annotation)
	Formula float64 // Eq. (1) score computed from the feature vector
}

// Kept reports whether the statement survives the confidence filter.
func (s Statement) Kept() bool {
	return !s.Absent && s.Text != "" && confidence.Likely(s.Score)
}

// VerifyStatus is the outcome of the verify-and-repair loop for one
// function (zero value = verification never ran).
type VerifyStatus int

// Verification statuses.
const (
	// VerifyNone: verification was not requested (or skipped under
	// pressure) for this function.
	VerifyNone VerifyStatus = iota
	// VerifyNoOracle: no ground-truth implementation exists to execute
	// against, so the function cannot be verified.
	VerifyNoOracle
	// VerifyPassed: the function as generated passed every regression
	// case on the first attempt.
	VerifyPassed
	// VerifyRepaired: the initial function diverged, and counterexample-
	// guided re-decoding produced a passing variant within the round
	// bound; Statements holds the repaired form.
	VerifyRepaired
	// VerifyFailed: every repair round was exhausted without a passing
	// variant; Statements holds the ORIGINAL generation (repair never
	// makes a function worse than plain generation).
	VerifyFailed
)

func (s VerifyStatus) String() string {
	switch s {
	case VerifyNoOracle:
		return "no-oracle"
	case VerifyPassed:
		return "passed"
	case VerifyRepaired:
		return "repaired"
	case VerifyFailed:
		return "failed"
	default:
		return "unverified"
	}
}

// Verification records the verify-and-repair outcome attached to a
// generated function when Config.Verify is on.
type Verification struct {
	Status VerifyStatus
	// Rounds counts the CEGAR repair rounds executed (0 when the function
	// passed immediately or was never repaired).
	Rounds int
	// Counterexample is the human-readable minimal counterexample of the
	// last failing verification: the input values and the first diverging
	// statement. Empty for passing functions.
	Counterexample string
	// RepairedRows lists the template rows whose statements were replaced
	// by the repair loop (only set when Status is VerifyRepaired).
	RepairedRows []int
}

// Function is one generated target-specific function.
type Function struct {
	Name       string // interface function name
	Module     string
	Target     string
	Statements []Statement
	// Err records why generation crashed for this function; a failed
	// function carries no statements and scores confidence 0, so it is
	// flagged for manual review instead of aborting the backend.
	Err string
	// Verify is the verify-and-repair outcome; nil when verification was
	// not requested.
	Verify *Verification
}

// FailedFunction builds the zero-confidence placeholder emitted when
// generating a function panics: the backend stays complete and the
// failure is visible in the confidence review.
func FailedFunction(name, module, target string, err error) *Function {
	return &Function{Name: name, Module: module, Target: target, Err: err.Error()}
}

// Failed reports whether generation crashed for this function.
func (f *Function) Failed() bool { return f.Err != "" }

// Confidence returns the function-level score: the first statement's
// (the function definition line).
func (f *Function) Confidence() float64 {
	if len(f.Statements) == 0 {
		return 0
	}
	return f.Statements[0].Score
}

// Generated reports whether VEGA emitted the function at all (its
// definition line exists and clears the threshold).
func (f *Function) Generated() bool {
	return len(f.Statements) > 0 && f.Statements[0].Kept()
}

// Render joins the surviving statements into source text, repairing brace
// balance: when the confidence filter drops a block header, its orphaned
// closer is dropped too, and unclosed blocks are closed at the end — the
// structural half of the paper's "remove sub-threshold statements" step.
func (f *Function) Render() string {
	var b strings.Builder
	depth := 0
	debt := 0 // dropped block headers whose closers must be dropped too
	for _, s := range f.Statements {
		opens := strings.Count(s.Text, "{")
		closes := strings.Count(s.Text, "}")
		if !s.Kept() {
			if opens > closes {
				debt += opens - closes
			}
			continue
		}
		if debt > 0 && strings.HasPrefix(s.Text, "}") {
			// This closer (or "} else {" continuation) belongs to a
			// dropped header; an "} else {" keeps the debt alive for the
			// else-block's own closer.
			if closes > opens {
				debt--
			}
			continue
		}
		if closes > opens && depth+opens-closes < 0 {
			continue // orphaned closer beyond function depth
		}
		depth += opens - closes
		b.WriteString(s.Text)
		b.WriteString("\n")
	}
	for ; depth > 0; depth-- {
		b.WriteString("}\n")
	}
	return b.String()
}

// RenderAnnotated renders every statement with its confidence score, the
// form developers review (Fig. 4(d)).
func (f *Function) RenderAnnotated() string {
	var b strings.Builder
	if f.Err != "" {
		fmt.Fprintf(&b, "0.00 | <generation failed: %s>\n", f.Err)
	}
	for _, s := range f.Statements {
		text := s.Text
		if s.Absent {
			text = "<absent>"
		}
		fmt.Fprintf(&b, "%4.2f | %s\n", s.Score, text)
	}
	return b.String()
}

// Parse attempts to parse the rendered function.
func (f *Function) Parse() (*cpp.Node, error) {
	src := f.Render()
	if strings.TrimSpace(src) == "" {
		return nil, fmt.Errorf("generate: %s for %s: empty function", f.Name, f.Target)
	}
	return cpp.ParseFunction(src)
}

// StatementCount counts non-absent, non-brace statements (the paper's
// statement metric).
func (f *Function) StatementCount() int {
	n := 0
	for _, s := range f.Statements {
		if s.Absent || !s.Kept() {
			continue
		}
		if s.Text == "}" || s.Text == "{" {
			continue
		}
		n++
	}
	return n
}

// Backend is a complete generated backend for one target.
type Backend struct {
	Target    string
	Functions []*Function
	// Seconds records per-module generation time for Fig. 7.
	Seconds map[string]float64
	// Recovered counts functions whose generation panicked and was
	// converted into a zero-confidence placeholder.
	Recovered int
	// Partial is set when generation stopped early (context canceled or
	// timed out); Functions holds what completed before the stop.
	Partial bool
	// Truncated is set when the request's MaxFunctions cap cut the task
	// list short — a deliberate degradation (load shedding), distinct
	// from Partial's "stopped by cancellation".
	Truncated bool
	// Verified counts functions whose final artifact passed execution
	// against ground truth (VerifyPassed + VerifyRepaired); zero when
	// verification was off.
	Verified int
	// Repaired counts functions recovered by counterexample-guided
	// repair (VerifyRepaired).
	Repaired int
	// RepairFailed counts functions that diverged and exhausted every
	// repair round (VerifyFailed).
	RepairFailed int
}

// ByModule groups the functions per module in stable order.
func (b *Backend) ByModule() map[string][]*Function {
	out := make(map[string][]*Function)
	for _, f := range b.Functions {
		out[f.Module] = append(out[f.Module], f)
	}
	return out
}

// Function looks up a generated function by interface name.
func (b *Backend) Function(name string) *Function {
	for _, f := range b.Functions {
		if f.Name == name {
			return f
		}
	}
	return nil
}
