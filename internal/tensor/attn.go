// Attention kernels over the head-contiguous K/V layout. The Stage 3
// decoder and the batched inference encoder store each head's keys and
// values as a dense ctxLen×dh row-major block (instead of strided slices
// of full-width Dim rows), so the two per-head attention reductions —
// scores = q·Kᵀ and out = weights·V — become dense kernels the SIMD
// layer can vectorize.
//
// Both kernels keep the package determinism contract: every output
// element receives its terms in ascending context order, one float32
// rounding per added term, with the zero-skip on the shared operand
// (q for scores, the softmax weights for the weighted sum). The AVX2
// scores kernel vectorizes across *output* lanes — eight context rows'
// dots advance in lockstep, each lane a private sequential chain — so
// no lane ever reorders or fuses an addition, and the results are
// bit-identical to the scalar loop (and, transitively, to the strided
// DotColumns/MulRowInto path the full-width layout used). attn_test.go
// enforces both seams.
package tensor

// AttnScoresInto writes out[j] = Σ_p q[p]·k[j*dh+p] for j < ctxLen:
// one query head row dotted against every cached key row of that head
// (k is the head's dense ctxLen×dh block). Terms accumulate in
// ascending p with the zero-skip on q's values; out is overwritten.
func AttnScoresInto(out, q, k []float32, ctxLen, dh int) {
	out = out[:ctxLen]
	q = q[:dh]
	j := 0
	if useAVX2 && ctxLen >= 8 && dh >= 8 {
		n8 := ctxLen &^ 7
		dh8 := dh &^ 7
		attnScores8AVX2(&out[0], &q[0], &k[0], n8, dh8, dh)
		if dh8 != dh {
			// Fold the unvectorized p-tail onto each vectorized row: the
			// per-element chain simply continues in ascending p.
			for ; j < n8; j++ {
				row := k[j*dh : (j+1)*dh]
				s := out[j]
				for p := dh8; p < dh; p++ {
					if av := q[p]; av != 0 {
						s += av * row[p]
					}
				}
				out[j] = s
			}
		}
		j = n8
	}
	for ; j < ctxLen; j++ {
		row := k[j*dh : (j+1)*dh]
		var s float32
		for p, av := range q {
			if av == 0 {
				continue
			}
			s += av * row[p]
		}
		out[j] = s
	}
}

// AttnWeightedSumInto accumulates out[j] += Σ_p w[p]·v[p*dh+j] for
// j < dh: the softmax weights against the head's dense ctxLen×dh value
// block. The dense layout makes this exactly one output row of MatMul,
// so it runs the blocked row kernel (fused four-term AVX2 updates,
// ascending-p term order, zero-skip on w) instead of the per-term
// strided axpy loop the full-width layout forced.
func AttnWeightedSumInto(out, w, v []float32, ctxLen, dh int) {
	matmulRows(out, w, v, 0, 1, ctxLen, dh)
}
