// Quantized int8 inference kernels. A QMat holds a row-major int8 matrix
// with one float32 dequantization scale per row (scale = maxabs/127, so
// the row's values span the full int8 range); QMatMulNT multiplies two
// QMats with exact int32 accumulation and applies the scales once per
// output element after the sum ("scale-once").
//
// Determinism contract. The integer accumulation is exact — no rounding
// happens until the single float32 scaling at the end — so the ascending-k
// term order required of the float32 kernels is preserved trivially, and
// the row-partitioned parallel dispatch and the SIMD width cannot change
// any output bit. quant_test.go enforces bit-identity across worker
// counts and the AVX2/pure-Go seam, plus a stated tolerance against the
// float32 kernels. Inference only: nothing here appears on the tape.
package tensor

import "sync"

// QMat is a row-major int8 matrix with per-row dequantization scales:
// the float32 value approximated by element (i,j) is
// float32(Data[i*C+j]) * Scale[i].
type QMat struct {
	R, C  int
	Data  []int8
	Scale []float32
}

// QuantizeRows quantizes src (r×c, row-major float32) per row: each row's
// scale is maxabs/127 and its values are round-to-nearest-even multiples
// of that scale clamped to [-127, 127]. An all-zero row gets scale 0.
func QuantizeRows(src []float32, r, c int) *QMat {
	q := &QMat{}
	QuantizeRowsInto(q, src, r, c)
	return q
}

// QuantizeRowsInto is QuantizeRows into caller-owned storage: q's Data
// and Scale backing arrays are reused when large enough and reallocated
// otherwise, so steady-state activation quantization allocates nothing.
func QuantizeRowsInto(q *QMat, src []float32, r, c int) {
	q.R, q.C = r, c
	if cap(q.Data) < r*c {
		q.Data = make([]int8, r*c)
	}
	q.Data = q.Data[:r*c]
	if cap(q.Scale) < r {
		q.Scale = make([]float32, r)
	}
	q.Scale = q.Scale[:r]
	for i := 0; i < r; i++ {
		QuantizeRowInto(q.Data[i*c:(i+1)*c], src[i*c:(i+1)*c], &q.Scale[i])
	}
}

// QuantizeRowInto quantizes one row into dst and stores its scale.
// len(dst) must equal len(src). The hot loop is pure float32: the
// round-to-nearest-even happens by adding and subtracting 1.5·2²³ (the
// classic magic-number round — the add pushes the value into a binade
// whose ulp is 1, so the IEEE default rounding mode performs the
// round-to-even, and the subtract recovers the integer exactly for
// |v·inv| ≤ 127 ≪ 2²²).
// The AVX2 fast path covers both passes — max(|·|) over 8 lanes, then a
// multiply/VCVTPS2DQ/clamp/pack loop over 32 elements — and is
// bit-identical to the scalar loops: max over non-negative floats is
// order-free, and VCVTPS2DQ's round-to-nearest-even (default MXCSR) is
// exactly what the magic-number trick computes for |x| ≤ 127.
func QuantizeRowInto(dst []int8, src []float32, scale *float32) {
	n := len(src)
	var maxAbs float32
	i := 0
	if useAVX2 && n >= 8 {
		i = n &^ 7
		maxAbs = maxAbsAVX2(&src[0], i)
	}
	for ; i < n; i++ {
		v := src[i]
		if v < 0 {
			v = -v
		}
		if v > maxAbs {
			maxAbs = v
		}
	}
	if maxAbs == 0 {
		for j := range dst {
			dst[j] = 0
		}
		*scale = 0
		return
	}
	const magic = float32(3 << 22) // 1.5·2²³
	inv := 127 / maxAbs
	j := 0
	if useAVX2 && n >= 32 {
		j = n &^ 31
		quantizeRowAVX2(&dst[0], &src[0], j, inv)
	}
	for ; j < n; j++ {
		// Explicit conversions force a rounding after every op: the spec
		// lets implementations fuse float expressions (FMA), which would
		// skip the intermediate rounding the magic trick depends on.
		q := float32(float32(src[j]*inv)+magic) - magic
		if q > 127 {
			q = 127
		} else if q < -127 {
			q = -127
		}
		dst[j] = int8(q)
	}
	*scale = maxAbs / 127
}

// Dequantize expands q back to float32 (row i scaled by Scale[i]); the
// reconstruction the differential tests measure quantization error
// against.
func Dequantize(q *QMat) []float32 {
	out := make([]float32, q.R*q.C)
	for i := 0; i < q.R; i++ {
		s := q.Scale[i]
		for j := 0; j < q.C; j++ {
			out[i*q.C+j] = float32(q.Data[i*q.C+j]) * s
		}
	}
	return out
}

// QMatMulNT computes dst += a·bᵀ with a r×k and b c×k (both quantized
// per row), dst r×c float32. Each output element is an exact int32 dot
// product scaled once: dst[i][j] += float32(Σₚ a[i][p]·b[j][p]) ·
// aScale[i] · bScale[j]. Exact for k ≤ ~133k (127·127·k < 2³¹). Large
// shapes fan out over disjoint dst rows; bit-identical for any worker
// count because the integer sum is order-free.
func QMatMulNT(dst []float32, a, b *QMat) {
	if a.C != b.C {
		panic("tensor: QMatMulNT inner dimensions differ")
	}
	r, c := a.R, b.R
	parallelRows(r, r*a.C*c, func(lo, hi int) {
		acc := getAcc(c)
		for i := lo; i < hi; i++ {
			arow := a.Data[i*a.C : (i+1)*a.C]
			sa := a.Scale[i]
			drow := dst[i*c : (i+1)*c]
			dotInt8Rows(acc, arow, b.Data, c, b.C)
			for j := 0; j < c; j++ {
				drow[j] += float32(acc[j]) * sa * b.Scale[j]
			}
		}
		putAcc(acc)
	})
}

// QMatMul computes dst += a·b with a quantized r×k and b a float32 k×c
// matrix: b's columns are quantized on the fly (per-column scale) and the
// product runs through QMatMulNT. Convenience for tests and one-shot
// products; steady-state callers should hold b's transpose as a QMat.
func QMatMul(dst []float32, a *QMat, b []float32, c int) {
	k := a.C
	bt := make([]float32, c*k)
	for j := 0; j < c; j++ {
		for p := 0; p < k; p++ {
			bt[j*k+p] = b[p*c+j]
		}
	}
	QMatMulNT(dst, a, QuantizeRows(bt, c, k))
}

// QMulRowInto accumulates out[j] += (Σₚ a[p]·b[j][p]) · sa · bScale[j]
// for j < b.R — one activation row (already quantized with scale sa)
// against every row of b. The serial single-row form QMatMulNT reduces
// to; the incremental decoder's per-step linears and logits use it.
func QMulRowInto(out []float32, a []int8, sa float32, b *QMat) {
	if len(a) != b.C {
		panic("tensor: QMulRowInto inner dimensions differ")
	}
	acc := getAcc(b.R)
	dotInt8Rows(acc, a, b.Data, b.R, b.C)
	for j := 0; j < b.R; j++ {
		out[j] += float32(acc[j]) * sa * b.Scale[j]
	}
	putAcc(acc)
}

// accPool recycles the int32 accumulator rows the batched int8 kernels
// write into before the scale-once pass.
var accPool sync.Pool

func getAcc(n int) []int32 {
	p, _ := accPool.Get().(*[]int32)
	if p == nil || cap(*p) < n {
		return make([]int32, n)
	}
	return (*p)[:n]
}

func putAcc(s []int32) {
	s = s[:0]
	accPool.Put(&s)
}

// dotInt8Rows computes acc[j] = dot(a, b[j*stride:][:len(a)]) for
// j < rows — one activation row against a block of weight rows. The
// AVX2 path processes four weight rows per pass so each 16-lane chunk
// of a is sign-extended once and reused, removing the per-call overhead
// that made one-dot-per-output slower than float32 at small depths. The
// integer sums are exact either way, so the split cannot change a bit.
func dotInt8Rows(acc []int32, a, b []int8, rows, stride int) {
	n := len(a)
	j := 0
	if useAVX2 && n >= 16 && rows > 0 {
		n16 := n &^ 15
		dotInt8RowsAVX2(&a[0], &b[0], &acc[0], rows, stride, n16)
		if n16 == n {
			return
		}
		// Fold the unvectorized k-tail into every row's sum.
		for ; j < rows; j++ {
			row := b[j*stride : j*stride+n]
			s := acc[j]
			for i := n16; i < n; i++ {
				s += int32(a[i]) * int32(row[i])
			}
			acc[j] = s
		}
		return
	}
	for ; j < rows; j++ {
		row := b[j*stride : j*stride+n]
		var s int32
		for i := 0; i < n; i++ {
			s += int32(a[i]) * int32(row[i])
		}
		acc[j] = s
	}
}

// dotInt8 computes the exact int32 dot product of two equal-length int8
// vectors. The AVX2 path (16 lanes sign-extended to int16, pairwise
// multiply-add into int32) computes the same exact integer sum.
func dotInt8(a, b []int8) int32 {
	b = b[:len(a)]
	var acc int32
	i := 0
	if useAVX2 && len(a) >= 16 {
		i = len(a) &^ 15
		acc = dotInt8AVX2(&a[0], &b[0], i)
	}
	for ; i < len(a); i++ {
		acc += int32(a[i]) * int32(b[i])
	}
	return acc
}
