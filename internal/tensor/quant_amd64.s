//go:build amd64

#include "textflag.h"

// func dotInt8AVX2(a, b *int8, n int) int32
// Exact int32 dot product, 16 int8 lanes per iteration: sign-extend to
// int16 (VPMOVSXBW), pairwise multiply-add into int32 (VPMADDWD — each
// product fits int16·int16 → int32, and the pairwise add of two such
// products cannot overflow), accumulate with VPADDD, then reduce the 8
// int32 lanes horizontally. Integer ops only: the result equals the
// scalar loop's for any lane grouping.
TEXT ·dotInt8AVX2(SB), NOSPLIT, $0-28
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), DI
	MOVQ n+16(FP), CX
	VPXOR Y0, Y0, Y0
dotloop:
	CMPQ CX, $16
	JLT  dotdone
	VPMOVSXBW (SI), Y1
	VPMOVSXBW (DI), Y2
	VPMADDWD Y1, Y2, Y1
	VPADDD Y1, Y0, Y0
	ADDQ $16, SI
	ADDQ $16, DI
	SUBQ $16, CX
	JMP  dotloop
dotdone:
	VEXTRACTI128 $1, Y0, X1
	VPADDD X1, X0, X0
	VPSHUFD $0xEE, X0, X1
	VPADDD X1, X0, X0
	VPSHUFD $0x55, X0, X1
	VPADDD X1, X0, X0
	VMOVD X0, AX
	MOVL AX, ret+24(FP)
	VZEROUPPER
	RET

// func dotInt8RowsAVX2(a, b *int8, acc *int32, rows, stride, n int)
// acc[j] = exact int32 dot of a[:n] and b[j*stride:][:n] for j < rows,
// n a multiple of 16 and ≥ 16 (the Go wrapper handles leftovers). Rows
// are processed four at a time so each sign-extended 16-lane chunk of a
// is loaded once and multiplied against four weight rows — this
// amortizes the activation loads and the call overhead that made the
// one-dot-per-call kernel slower than float32 at small depths. Integer
// ops only; the sums equal the scalar loop's exactly.
TEXT ·dotInt8RowsAVX2(SB), NOSPLIT, $0-48
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), DI
	MOVQ acc+16(FP), DX
	MOVQ rows+24(FP), CX
	MOVQ stride+32(FP), R8
	MOVQ n+40(FP), R9

block4:
	CMPQ CX, $4
	JLT  rowtail
	LEAQ (DI)(R8*1), R10
	LEAQ (DI)(R8*2), R11
	LEAQ (R10)(R8*2), R12
	VPXOR Y2, Y2, Y2
	VPXOR Y3, Y3, Y3
	VPXOR Y4, Y4, Y4
	VPXOR Y5, Y5, Y5
	XORQ BX, BX
k4loop:
	VPMOVSXBW (SI)(BX*1), Y1
	VPMOVSXBW (DI)(BX*1), Y6
	VPMADDWD Y1, Y6, Y6
	VPADDD Y6, Y2, Y2
	VPMOVSXBW (R10)(BX*1), Y7
	VPMADDWD Y1, Y7, Y7
	VPADDD Y7, Y3, Y3
	VPMOVSXBW (R11)(BX*1), Y6
	VPMADDWD Y1, Y6, Y6
	VPADDD Y6, Y4, Y4
	VPMOVSXBW (R12)(BX*1), Y7
	VPMADDWD Y1, Y7, Y7
	VPADDD Y7, Y5, Y5
	ADDQ $16, BX
	CMPQ BX, R9
	JLT  k4loop
	// Horizontal-reduce the four row accumulators. VPHADDD pairs:
	// hadd(Y2,Y3) interleaves partial sums of rows 0 and 1 per 128-bit
	// half; a second hadd with hadd(Y4,Y5) yields, per half, four int32s
	// [r0 r1 r2 r3] of that half's partial sums. Adding the two halves
	// gives the final four dots in output order.
	VPHADDD Y3, Y2, Y2
	VPHADDD Y5, Y4, Y4
	VPHADDD Y4, Y2, Y2
	VEXTRACTI128 $1, Y2, X1
	VPADDD X1, X2, X2
	VMOVDQU X2, (DX)
	ADDQ $16, DX
	LEAQ (DI)(R8*4), DI
	SUBQ $4, CX
	JMP  block4

rowtail:
	CMPQ CX, $0
	JE   done
	VPXOR Y2, Y2, Y2
	XORQ BX, BX
k1loop:
	VPMOVSXBW (SI)(BX*1), Y1
	VPMOVSXBW (DI)(BX*1), Y6
	VPMADDWD Y1, Y6, Y6
	VPADDD Y6, Y2, Y2
	ADDQ $16, BX
	CMPQ BX, R9
	JLT  k1loop
	VEXTRACTI128 $1, Y2, X1
	VPADDD X1, X2, X2
	VPSHUFD $0xEE, X2, X1
	VPADDD X1, X2, X2
	VPSHUFD $0x55, X2, X1
	VPADDD X1, X2, X2
	VMOVD X2, AX
	MOVL AX, (DX)
	ADDQ $4, DX
	ADDQ R8, DI
	DECQ CX
	JMP  rowtail

done:
	VZEROUPPER
	RET

// Constants for the activation-quantize kernels: the sign-clearing abs
// mask, the int32 clamp bounds, and the VPERMD pattern that undoes the
// per-128-bit-lane interleave VPACKSSDW/VPACKSSWB produce.
DATA qabsmask<>+0(SB)/4, $0x7FFFFFFF
GLOBL qabsmask<>(SB), RODATA|NOPTR, $4
DATA qclamphi<>+0(SB)/4, $127
GLOBL qclamphi<>(SB), RODATA|NOPTR, $4
DATA qclamplo<>+0(SB)/4, $-127
GLOBL qclamplo<>(SB), RODATA|NOPTR, $4
DATA qpackperm<>+0(SB)/4, $0
DATA qpackperm<>+4(SB)/4, $4
DATA qpackperm<>+8(SB)/4, $1
DATA qpackperm<>+12(SB)/4, $5
DATA qpackperm<>+16(SB)/4, $2
DATA qpackperm<>+20(SB)/4, $6
DATA qpackperm<>+24(SB)/4, $3
DATA qpackperm<>+28(SB)/4, $7
GLOBL qpackperm<>(SB), RODATA|NOPTR, $32

// func maxAbsAVX2(src *float32, n8 int) float32
// Max of |src[i]| over i < n8 (a multiple of 8 and ≥ 8). VANDPS clears
// the sign bit, then VMAXPS folds eight lanes; max over non-negative
// finite floats is order-free, so the lane-parallel fold equals the
// scalar sequential max bit for bit. Operand order puts the accumulator
// in VMAXPS's NaN-wins slot (src2) so a NaN input leaves the
// accumulator unchanged, matching the scalar `v > maxAbs` comparison
// (false for NaN).
TEXT ·maxAbsAVX2(SB), NOSPLIT, $0-20
	MOVQ src+0(FP), SI
	MOVQ n8+8(FP), CX
	VBROADCASTSS qabsmask<>(SB), Y2
	VXORPS Y0, Y0, Y0
maxloop:
	VMOVUPS (SI), Y1
	VANDPS Y2, Y1, Y1
	VMAXPS Y0, Y1, Y0        // acc = max(data, acc); acc is src2
	ADDQ $32, SI
	SUBQ $8, CX
	JNZ  maxloop
	VEXTRACTF128 $1, Y0, X1
	VMAXPS X0, X1, X0
	VPSHUFD $0xEE, X0, X1
	VMAXPS X0, X1, X0
	VPSHUFD $0x55, X0, X1
	VMAXPS X0, X1, X0
	VMOVSS X0, ret+16(FP)
	VZEROUPPER
	RET

// func quantizeRowAVX2(dst *int8, src *float32, n32 int, inv float32)
// dst[i] = clamp(rint(src[i]·inv), ±127) for i < n32 (a multiple of 32
// and ≥ 32). VMULPS rounds the product once — exactly the scalar
// float32(v*inv) — and VCVTPS2DQ rounds to nearest-even under the
// default MXCSR, which is precisely what the scalar magic-number trick
// (±1.5·2²³) computes for |x| ≤ 127 ≪ 2²². Clamping in int32
// (VPMINSD/VPMAXSD) matches the scalar float clamp because rint is
// monotonic. Four 8-lane int32 vectors pack to 32 int8 via
// VPACKSSDW×2 + VPACKSSWB (no saturation: values already in ±127),
// then VPERMD restores element order across the 128-bit lanes.
TEXT ·quantizeRowAVX2(SB), NOSPLIT, $0-28
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n32+16(FP), CX
	VBROADCASTSS inv+24(FP), Y7
	VPBROADCASTD qclamphi<>(SB), Y8
	VPBROADCASTD qclamplo<>(SB), Y9
	VMOVDQU qpackperm<>(SB), Y10
quantloop:
	VMOVUPS (SI), Y0
	VMOVUPS 32(SI), Y1
	VMOVUPS 64(SI), Y2
	VMOVUPS 96(SI), Y3
	VMULPS Y7, Y0, Y0
	VMULPS Y7, Y1, Y1
	VMULPS Y7, Y2, Y2
	VMULPS Y7, Y3, Y3
	VCVTPS2DQ Y0, Y0
	VCVTPS2DQ Y1, Y1
	VCVTPS2DQ Y2, Y2
	VCVTPS2DQ Y3, Y3
	VPMINSD Y8, Y0, Y0
	VPMINSD Y8, Y1, Y1
	VPMINSD Y8, Y2, Y2
	VPMINSD Y8, Y3, Y3
	VPMAXSD Y9, Y0, Y0
	VPMAXSD Y9, Y1, Y1
	VPMAXSD Y9, Y2, Y2
	VPMAXSD Y9, Y3, Y3
	VPACKSSDW Y1, Y0, Y0     // per lane: [x0..3 x8..11 | x4..7 x12..15] int16
	VPACKSSDW Y3, Y2, Y2
	VPACKSSWB Y2, Y0, Y0     // per lane dwords: [0 8 16 24 | 4 12 20 28]
	VPERMD Y0, Y10, Y0       // {0,4,1,5,2,6,3,7} → ascending element order
	VMOVDQU Y0, (DI)
	ADDQ $128, SI
	ADDQ $32, DI
	SUBQ $32, CX
	JNZ  quantloop
	VZEROUPPER
	RET
