//go:build amd64

#include "textflag.h"

// func dotInt8AVX2(a, b *int8, n int) int32
// Exact int32 dot product, 16 int8 lanes per iteration: sign-extend to
// int16 (VPMOVSXBW), pairwise multiply-add into int32 (VPMADDWD — each
// product fits int16·int16 → int32, and the pairwise add of two such
// products cannot overflow), accumulate with VPADDD, then reduce the 8
// int32 lanes horizontally. Integer ops only: the result equals the
// scalar loop's for any lane grouping.
TEXT ·dotInt8AVX2(SB), NOSPLIT, $0-28
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), DI
	MOVQ n+16(FP), CX
	VPXOR Y0, Y0, Y0
dotloop:
	CMPQ CX, $16
	JLT  dotdone
	VPMOVSXBW (SI), Y1
	VPMOVSXBW (DI), Y2
	VPMADDWD Y1, Y2, Y1
	VPADDD Y1, Y0, Y0
	ADDQ $16, SI
	ADDQ $16, DI
	SUBQ $16, CX
	JMP  dotloop
dotdone:
	VEXTRACTI128 $1, Y0, X1
	VPADDD X1, X0, X0
	VPSHUFD $0xEE, X0, X1
	VPADDD X1, X0, X0
	VPSHUFD $0x55, X0, X1
	VPADDD X1, X0, X0
	VMOVD X0, AX
	MOVL AX, ret+24(FP)
	VZEROUPPER
	RET

// func dotInt8RowsAVX2(a, b *int8, acc *int32, rows, stride, n int)
// acc[j] = exact int32 dot of a[:n] and b[j*stride:][:n] for j < rows,
// n a multiple of 16 and ≥ 16 (the Go wrapper handles leftovers). Rows
// are processed four at a time so each sign-extended 16-lane chunk of a
// is loaded once and multiplied against four weight rows — this
// amortizes the activation loads and the call overhead that made the
// one-dot-per-call kernel slower than float32 at small depths. Integer
// ops only; the sums equal the scalar loop's exactly.
TEXT ·dotInt8RowsAVX2(SB), NOSPLIT, $0-48
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), DI
	MOVQ acc+16(FP), DX
	MOVQ rows+24(FP), CX
	MOVQ stride+32(FP), R8
	MOVQ n+40(FP), R9

block4:
	CMPQ CX, $4
	JLT  rowtail
	LEAQ (DI)(R8*1), R10
	LEAQ (DI)(R8*2), R11
	LEAQ (R10)(R8*2), R12
	VPXOR Y2, Y2, Y2
	VPXOR Y3, Y3, Y3
	VPXOR Y4, Y4, Y4
	VPXOR Y5, Y5, Y5
	XORQ BX, BX
k4loop:
	VPMOVSXBW (SI)(BX*1), Y1
	VPMOVSXBW (DI)(BX*1), Y6
	VPMADDWD Y1, Y6, Y6
	VPADDD Y6, Y2, Y2
	VPMOVSXBW (R10)(BX*1), Y7
	VPMADDWD Y1, Y7, Y7
	VPADDD Y7, Y3, Y3
	VPMOVSXBW (R11)(BX*1), Y6
	VPMADDWD Y1, Y6, Y6
	VPADDD Y6, Y4, Y4
	VPMOVSXBW (R12)(BX*1), Y7
	VPMADDWD Y1, Y7, Y7
	VPADDD Y7, Y5, Y5
	ADDQ $16, BX
	CMPQ BX, R9
	JLT  k4loop
	// Horizontal-reduce the four row accumulators. VPHADDD pairs:
	// hadd(Y2,Y3) interleaves partial sums of rows 0 and 1 per 128-bit
	// half; a second hadd with hadd(Y4,Y5) yields, per half, four int32s
	// [r0 r1 r2 r3] of that half's partial sums. Adding the two halves
	// gives the final four dots in output order.
	VPHADDD Y3, Y2, Y2
	VPHADDD Y5, Y4, Y4
	VPHADDD Y4, Y2, Y2
	VEXTRACTI128 $1, Y2, X1
	VPADDD X1, X2, X2
	VMOVDQU X2, (DX)
	ADDQ $16, DX
	LEAQ (DI)(R8*4), DI
	SUBQ $4, CX
	JMP  block4

rowtail:
	CMPQ CX, $0
	JE   done
	VPXOR Y2, Y2, Y2
	XORQ BX, BX
k1loop:
	VPMOVSXBW (SI)(BX*1), Y1
	VPMOVSXBW (DI)(BX*1), Y6
	VPMADDWD Y1, Y6, Y6
	VPADDD Y6, Y2, Y2
	ADDQ $16, BX
	CMPQ BX, R9
	JLT  k1loop
	VEXTRACTI128 $1, Y2, X1
	VPADDD X1, X2, X2
	VPSHUFD $0xEE, X2, X1
	VPADDD X1, X2, X2
	VPSHUFD $0x55, X2, X1
	VPADDD X1, X2, X2
	VMOVD X2, AX
	MOVL AX, (DX)
	ADDQ $4, DX
	ADDQ R8, DI
	DECQ CX
	JMP  rowtail

done:
	VZEROUPPER
	RET
