//go:build !amd64

package tensor

// Non-amd64 builds run the pure-Go loops everywhere; these stubs are
// never reached.

const useAVX2 = false

func axpyAVX2(dst, src *float32, n int, alpha float32) {
	panic("tensor: axpyAVX2 on non-amd64")
}

func fused4AVX2(o, b0, b1, b2, b3 *float32, n int, a0, a1, a2, a3 float32) {
	panic("tensor: fused4AVX2 on non-amd64")
}
