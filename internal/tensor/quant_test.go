package tensor

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
)

// refDotInt8 is the scalar reference the SIMD path must match exactly.
func refDotInt8(a, b []int8) int32 {
	var acc int32
	for i := range a {
		acc += int32(a[i]) * int32(b[i])
	}
	return acc
}

func TestDotInt8MatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 15, 16, 17, 31, 32, 33, 48, 100, 255, 256, 1000} {
		a := make([]int8, n)
		b := make([]int8, n)
		for i := range a {
			a[i] = int8(rng.Intn(255) - 127)
			b[i] = int8(rng.Intn(255) - 127)
		}
		if got, want := dotInt8(a, b), refDotInt8(a, b); got != want {
			t.Fatalf("n=%d: dotInt8=%d scalar=%d", n, got, want)
		}
	}
	// Saturation corners: ±127 everywhere, long enough to cross the
	// SIMD loop several times.
	n := 4096
	a := make([]int8, n)
	b := make([]int8, n)
	for i := range a {
		a[i], b[i] = 127, -127
	}
	if got, want := dotInt8(a, b), int32(-127*127*n); got != want {
		t.Fatalf("saturated: dotInt8=%d want %d", got, want)
	}
}

// TestDotInt8RowsMatchesScalar pins the batched 4-row kernel (and its
// row/k tails) to the scalar reference, exactly, across shapes that hit
// every combination of rows%4 and n%16.
func TestDotInt8RowsMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, rows := range []int{1, 2, 3, 4, 5, 7, 8, 9, 48, 101} {
		for _, n := range []int{1, 15, 16, 17, 31, 48, 96, 100} {
			stride := n + rng.Intn(3) // rows may be wider than the dot depth
			b := make([]int8, rows*stride)
			a := make([]int8, n)
			for i := range a {
				a[i] = int8(rng.Intn(255) - 127)
			}
			for i := range b {
				b[i] = int8(rng.Intn(255) - 127)
			}
			acc := make([]int32, rows)
			dotInt8Rows(acc, a, b, rows, stride)
			for j := 0; j < rows; j++ {
				if want := refDotInt8(a, b[j*stride:j*stride+n]); acc[j] != want {
					t.Fatalf("rows=%d n=%d stride=%d j=%d: got %d want %d",
						rows, n, stride, j, acc[j], want)
				}
			}
		}
	}
}

func TestQuantizeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	r, c := 9, 37
	src := make([]float32, r*c)
	for i := range src {
		src[i] = float32(rng.NormFloat64())
	}
	// One all-zero row exercises the scale-0 branch.
	for j := 0; j < c; j++ {
		src[3*c+j] = 0
	}
	q := QuantizeRows(src, r, c)
	deq := Dequantize(q)
	for i := 0; i < r; i++ {
		var maxAbs float64
		for j := 0; j < c; j++ {
			if a := math.Abs(float64(src[i*c+j])); a > maxAbs {
				maxAbs = a
			}
		}
		// Round-to-nearest against a maxabs/127 grid: per-element
		// reconstruction error is at most half a step.
		bound := maxAbs/254 + 1e-7
		for j := 0; j < c; j++ {
			diff := math.Abs(float64(deq[i*c+j]) - float64(src[i*c+j]))
			if diff > bound {
				t.Fatalf("row %d col %d: |%g - %g| = %g > %g",
					i, j, deq[i*c+j], src[i*c+j], diff, bound)
			}
		}
	}
}

// TestQMatMulNTDifferentialFloat32 pins the quantization error bound the
// int8 path guarantees against the float32 kernel: each output element
// differs by at most 1.5·k·maxabs(a_row)·maxabs(b_row)/127 (per-operand
// rounding error of half a quantization step, summed over k terms).
func TestQMatMulNTDifferentialFloat32(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, sh := range []struct{ r, k, c int }{
		{1, 48, 64}, {7, 33, 5}, {16, 128, 16}, {3, 1, 3},
	} {
		a := make([]float32, sh.r*sh.k)
		b := make([]float32, sh.c*sh.k)
		for i := range a {
			a[i] = float32(rng.NormFloat64())
		}
		for i := range b {
			b[i] = float32(rng.NormFloat64())
		}
		want := make([]float32, sh.r*sh.c)
		MatMulNT(want, a, b, sh.r, sh.k, sh.c)
		got := make([]float32, sh.r*sh.c)
		QMatMulNT(got, QuantizeRows(a, sh.r, sh.k), QuantizeRows(b, sh.c, sh.k))
		for i := 0; i < sh.r; i++ {
			maxA := rowMaxAbs(a[i*sh.k : (i+1)*sh.k])
			for j := 0; j < sh.c; j++ {
				maxB := rowMaxAbs(b[j*sh.k : (j+1)*sh.k])
				bound := 1.5*float64(sh.k)*maxA*maxB/127 + 1e-6
				diff := math.Abs(float64(got[i*sh.c+j]) - float64(want[i*sh.c+j]))
				if diff > bound {
					t.Fatalf("%dx%dx%d (%d,%d): |%g - %g| = %g > %g",
						sh.r, sh.k, sh.c, i, j, got[i*sh.c+j], want[i*sh.c+j], diff, bound)
				}
			}
		}
	}
}

func rowMaxAbs(row []float32) float64 {
	var m float64
	for _, v := range row {
		if a := math.Abs(float64(v)); a > m {
			m = a
		}
	}
	return m
}

// TestQMatMulNTWorkerBitIdentity runs a shape past the parFlops gate so
// the parallel dispatch actually fans out, and requires byte-identical
// output for every worker count — the quantized kernels inherit the
// float32 contract.
func TestQMatMulNTWorkerBitIdentity(t *testing.T) {
	defer SetWorkers(0)
	rng := rand.New(rand.NewSource(31))
	r, k, c := 64, 256, 256 // 64·256·256 = 4.2M flops > parFlops
	a := make([]float32, r*k)
	b := make([]float32, c*k)
	for i := range a {
		a[i] = float32(rng.NormFloat64())
	}
	for i := range b {
		b[i] = float32(rng.NormFloat64())
	}
	qa, qb := QuantizeRows(a, r, k), QuantizeRows(b, c, k)
	var ref []float32
	for _, w := range []int{1, 3, 8} {
		SetWorkers(w)
		dst := make([]float32, r*c)
		QMatMulNT(dst, qa, qb)
		if ref == nil {
			ref = dst
			continue
		}
		for i := range dst {
			if math.Float32bits(dst[i]) != math.Float32bits(ref[i]) {
				t.Fatalf("workers=%d: element %d differs: %x vs %x",
					w, i, math.Float32bits(dst[i]), math.Float32bits(ref[i]))
			}
		}
	}
}

func TestQMulRowIntoMatchesQMatMulNT(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	k, c := 48, 200
	a := make([]float32, k)
	b := make([]float32, c*k)
	for i := range a {
		a[i] = float32(rng.NormFloat64())
	}
	for i := range b {
		b[i] = float32(rng.NormFloat64())
	}
	qa, qb := QuantizeRows(a, 1, k), QuantizeRows(b, c, k)
	want := make([]float32, c)
	QMatMulNT(want, qa, qb)
	got := make([]float32, c)
	QMulRowInto(got, qa.Data, qa.Scale[0], qb)
	for j := range got {
		if math.Float32bits(got[j]) != math.Float32bits(want[j]) {
			t.Fatalf("col %d: %g vs %g", j, got[j], want[j])
		}
	}
}

func TestQMatMulMatchesNT(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	r, k, c := 5, 32, 11
	a := make([]float32, r*k)
	b := make([]float32, k*c)
	for i := range a {
		a[i] = float32(rng.NormFloat64())
	}
	for i := range b {
		b[i] = float32(rng.NormFloat64())
	}
	qa := QuantizeRows(a, r, k)
	got := make([]float32, r*c)
	QMatMul(got, qa, b, c)
	bt := make([]float32, c*k)
	for j := 0; j < c; j++ {
		for p := 0; p < k; p++ {
			bt[j*k+p] = b[p*c+j]
		}
	}
	want := make([]float32, r*c)
	QMatMulNT(want, qa, QuantizeRows(bt, c, k))
	for i := range got {
		if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
			t.Fatalf("element %d: %g vs %g", i, got[i], want[i])
		}
	}
}

// TestScratchPoolRetainsUndersized is the getScratch regression test: an
// undersized pooled buffer must be re-Put (not silently dropped) when a
// larger request arrives, so the pool still serves the next small shape.
func TestScratchPoolRetainsUndersized(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops Puts at random under the race detector")
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	for ntPool.Get() != nil { // drain anything earlier tests parked
	}
	small := make([]float32, 16, 16)
	ntPool.Put(small)
	big := getScratch(1024)
	if cap(big) < 1024 {
		t.Fatalf("getScratch(1024) returned cap %d", cap(big))
	}
	v := ntPool.Get()
	if v == nil {
		t.Fatalf("undersized buffer was dropped from the pool on Get")
	}
	if got := v.([]float32); cap(got) != cap(small) {
		t.Fatalf("pool returned cap %d, want the re-Put %d", cap(got), cap(small))
	}
}

// TestScratchAscendingSizesNoThrash covers the other half of the fix:
// without size-class rounding, ascending requests within one class each
// see cap(pooled) one element short and reallocate every call. With
// rounding (next power of two, min 256) the first allocation serves the
// whole sweep, so the byte churn collapses by ~two orders of magnitude.
func TestScratchAscendingSizesNoThrash(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops Puts at random under the race detector")
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	for ntPool.Get() != nil {
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for n := 257; n < 512; n++ { // one post-fix size class (512)
		bt := getScratch(n)
		ntPool.Put(bt) //nolint:staticcheck // mirrors MatMulNT's usage
	}
	runtime.ReadMemStats(&after)
	delta := after.TotalAlloc - before.TotalAlloc
	// Pre-fix this sweep reallocates every call: ~255 × ~385 floats
	// ≈ 390 KiB. Post-fix only the Put boxing allocates (~6 KiB).
	if delta > 64<<10 {
		t.Fatalf("ascending getScratch sweep allocated %d bytes; pool is thrashing", delta)
	}
}
