//go:build amd64

#include "textflag.h"

// func attnScores8AVX2(out, q, k *float32, n8, dh8, dh int)
//
// out[j] = sum over p < dh8 of q[p]*k[j*dh+p], for j < n8, eight rows
// per outer iteration. Each 8x8 tile of k (eight rows, eight columns)
// is loaded with contiguous VMOVUPS, transposed in registers
// (VUNPCK/VSHUFPS/VPERM2F128), and the resulting column vectors are
// accumulated in ascending p with separate VMULPS and VADDPS — one
// rounding per product and per add, per lane, exactly like the scalar
// loop — skipping columns whose q[p] is zero (including -0) in lockstep
// with the scalar zero-skip.
//
// Register plan per tile: Y0-Y7 hold the eight k rows, then the shuffle
// stage reuses them; Y8-Y15 hold unpack temporaries, then the eight
// transposed columns (Y8..Y11 = p0..p0+3, Y12..Y15 = p0+4..p0+7). The
// accumulator phase uses Y0 (acc, spilled to out between column
// blocks), Y1 (broadcast q[p]) and Y2 (product).
TEXT ·attnScores8AVX2(SB), NOSPLIT, $0-48
	MOVQ out+0(FP), DI
	MOVQ q+8(FP), DX
	MOVQ k+16(FP), SI
	MOVQ n8+24(FP), CX
	MOVQ dh8+32(FP), R13
	MOVQ dh+40(FP), R8
	SHLQ $2, R13             // dh8 in bytes: the q/column byte bound
	SHLQ $2, R8              // row stride in bytes

rows8:
	CMPQ CX, $8
	JLT  done
	XORQ BX, BX              // p0 byte offset into q and into each row

cols8:
	// Tile base R9 = &k[j0*dh + p0]; rows 3,5,6,7 need LEA temps since
	// only *1/*2/*4/*8 scales exist.
	LEAQ (SI)(BX*1), R9
	VMOVUPS (R9), Y0
	VMOVUPS (R9)(R8*1), Y1
	VMOVUPS (R9)(R8*2), Y2
	LEAQ (R9)(R8*2), R10
	VMOVUPS (R10)(R8*1), Y3
	VMOVUPS (R9)(R8*4), Y4
	LEAQ (R9)(R8*4), R11
	VMOVUPS (R11)(R8*1), Y5
	VMOVUPS (R11)(R8*2), Y6
	LEAQ (R11)(R8*2), R12
	VMOVUPS (R12)(R8*1), Y7

	// 8x8 transpose: rows r0..r7 (Y0..Y7) -> columns c0..c7 (Y8..Y15).
	VUNPCKLPS Y1, Y0, Y8     // {r0[0] r1[0] r0[1] r1[1] | r0[4] r1[4] r0[5] r1[5]}
	VUNPCKHPS Y1, Y0, Y9
	VUNPCKLPS Y3, Y2, Y10
	VUNPCKHPS Y3, Y2, Y11
	VUNPCKLPS Y5, Y4, Y12
	VUNPCKHPS Y5, Y4, Y13
	VUNPCKLPS Y7, Y6, Y14
	VUNPCKHPS Y7, Y6, Y15
	VSHUFPS $0x44, Y10, Y8, Y0  // {r0[0] r1[0] r2[0] r3[0] | ...[4]}
	VSHUFPS $0xEE, Y10, Y8, Y1  // column 1 | column 5 halves
	VSHUFPS $0x44, Y11, Y9, Y2
	VSHUFPS $0xEE, Y11, Y9, Y3
	VSHUFPS $0x44, Y14, Y12, Y4 // rows 4..7 halves
	VSHUFPS $0xEE, Y14, Y12, Y5
	VSHUFPS $0x44, Y15, Y13, Y6
	VSHUFPS $0xEE, Y15, Y13, Y7
	VPERM2F128 $0x20, Y4, Y0, Y8   // column p0+0 across rows 0..7
	VPERM2F128 $0x20, Y5, Y1, Y9   // p0+1
	VPERM2F128 $0x20, Y6, Y2, Y10  // p0+2
	VPERM2F128 $0x20, Y7, Y3, Y11  // p0+3
	VPERM2F128 $0x31, Y4, Y0, Y12  // p0+4
	VPERM2F128 $0x31, Y5, Y1, Y13  // p0+5
	VPERM2F128 $0x31, Y6, Y2, Y14  // p0+6
	VPERM2F128 $0x31, Y7, Y3, Y15  // p0+7

	// Accumulator: zero on the first column block (the kernel
	// overwrites out), otherwise resume the spilled chain.
	TESTQ BX, BX
	JNZ   loadacc
	VXORPS Y0, Y0, Y0
	JMP    acc0
loadacc:
	VMOVUPS (DI), Y0

	// Eight terms in ascending p; q[p] == 0 (bits & 0x7FFFFFFF) skips.
acc0:
	MOVL 0(DX)(BX*1), AX
	ANDL $0x7FFFFFFF, AX
	JZ   acc1
	VBROADCASTSS 0(DX)(BX*1), Y1
	VMULPS Y8, Y1, Y2
	VADDPS Y2, Y0, Y0
acc1:
	MOVL 4(DX)(BX*1), AX
	ANDL $0x7FFFFFFF, AX
	JZ   acc2
	VBROADCASTSS 4(DX)(BX*1), Y1
	VMULPS Y9, Y1, Y2
	VADDPS Y2, Y0, Y0
acc2:
	MOVL 8(DX)(BX*1), AX
	ANDL $0x7FFFFFFF, AX
	JZ   acc3
	VBROADCASTSS 8(DX)(BX*1), Y1
	VMULPS Y10, Y1, Y2
	VADDPS Y2, Y0, Y0
acc3:
	MOVL 12(DX)(BX*1), AX
	ANDL $0x7FFFFFFF, AX
	JZ   acc4
	VBROADCASTSS 12(DX)(BX*1), Y1
	VMULPS Y11, Y1, Y2
	VADDPS Y2, Y0, Y0
acc4:
	MOVL 16(DX)(BX*1), AX
	ANDL $0x7FFFFFFF, AX
	JZ   acc5
	VBROADCASTSS 16(DX)(BX*1), Y1
	VMULPS Y12, Y1, Y2
	VADDPS Y2, Y0, Y0
acc5:
	MOVL 20(DX)(BX*1), AX
	ANDL $0x7FFFFFFF, AX
	JZ   acc6
	VBROADCASTSS 20(DX)(BX*1), Y1
	VMULPS Y13, Y1, Y2
	VADDPS Y2, Y0, Y0
acc6:
	MOVL 24(DX)(BX*1), AX
	ANDL $0x7FFFFFFF, AX
	JZ   acc7
	VBROADCASTSS 24(DX)(BX*1), Y1
	VMULPS Y14, Y1, Y2
	VADDPS Y2, Y0, Y0
acc7:
	MOVL 28(DX)(BX*1), AX
	ANDL $0x7FFFFFFF, AX
	JZ   accdone
	VBROADCASTSS 28(DX)(BX*1), Y1
	VMULPS Y15, Y1, Y2
	VADDPS Y2, Y0, Y0
accdone:
	VMOVUPS Y0, (DI)

	ADDQ $32, BX
	CMPQ BX, R13
	JLT  cols8

	LEAQ (SI)(R8*8), SI      // next eight rows
	ADDQ $32, DI             // eight finished scores
	SUBQ $8, CX
	JMP  rows8

done:
	VZEROUPPER
	RET
