//go:build amd64

package tensor

// attnScores8AVX2 computes out[j] = Σ_p q[p]·k[j*dh+p] for j < n8 and
// p < dh8 (n8 a multiple of 8 and ≥ 8, dh8 a multiple of 8 with
// 8 ≤ dh8 ≤ dh; dh is the row stride in floats). The caller folds the
// p ∈ [dh8, dh) tail and the j ≥ n8 rows in Go.
//
// Eight context rows advance together: each 8×8 tile of k is loaded
// row-contiguously and transposed in registers, then the eight column
// vectors are multiplied by broadcast q[p] and added to the eight
// per-row accumulators in ascending p with VMULPS/VADDPS only (no FMA).
// Every lane is a private sequential chain — one product rounding and
// one add rounding per term, terms never regrouped — and q[p] == 0
// skips the term in lockstep with the scalar loop, so the results are
// bit-identical to the pure-Go reference.
func attnScores8AVX2(out, q, k *float32, n8, dh8, dh int)
