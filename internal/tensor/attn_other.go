//go:build !amd64

package tensor

// Non-amd64 builds run the pure-Go loops everywhere; this stub is never
// reached (useAVX2 is a false constant).

func attnScores8AVX2(out, q, k *float32, n8, dh8, dh int) {
	panic("tensor: attnScores8AVX2 on non-amd64")
}
