//go:build amd64

package tensor

// The assembly kernels vectorize the two inner loops every matmul-family
// kernel reduces to — axpy and the fused four-term row update — with
// VMULPS/VADDPS only. Each lane performs exactly the scalar sequence
// (separate rounding for the product and for each add, terms associated
// left-to-right from the accumulator), and lanes never exchange data, so
// the vector results are bit-identical to the pure-Go loops; the
// differential tests in kernels_test.go run both paths against the same
// naive reference. FMA is deliberately not used: a fused multiply-add
// rounds once, not twice, and would break the determinism contract.

func cpuidex(leaf, sub uint32) (ax, bx, cx, dx uint32)
func xgetbv0() (eax, edx uint32)

// axpyAVX2 computes dst[i] += alpha·src[i] for n elements (n ≥ 0,
// processed 8 at a time; the caller handles n%8 leftovers).
func axpyAVX2(dst, src *float32, n int, alpha float32)

// fused4AVX2 computes o[j] = o[j] + a0·b0[j] + a1·b1[j] + a2·b2[j] +
// a3·b3[j] for n elements, left-to-right per element (n processed 8 at
// a time; the caller handles leftovers).
func fused4AVX2(o, b0, b1, b2, b3 *float32, n int, a0, a1, a2, a3 float32)

// useAVX2 gates the assembly paths: AVX2 present and YMM state enabled
// by the OS. Checked once at init; the pure-Go loops are the fallback
// and the reference.
var useAVX2 = detectAVX2()

func detectAVX2() bool {
	maxLeaf, _, _, _ := cpuidex(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, c1, _ := cpuidex(1, 0)
	const osxsave = 1 << 27
	const avx = 1 << 28
	if c1&osxsave == 0 || c1&avx == 0 {
		return false
	}
	// XCR0 bits 1 and 2: XMM and YMM state saved/restored by the OS.
	eax, _ := xgetbv0()
	if eax&0x6 != 0x6 {
		return false
	}
	_, b7, _, _ := cpuidex(7, 0)
	return b7&(1<<5) != 0 // CPUID.(EAX=7,ECX=0):EBX[5] = AVX2
}
