// Package tensor is the numeric kernel layer under internal/model: the
// float32 matrix kernels the autodiff tape, the batched trainer, and the
// Stage 3 incremental decoder all share, plus the grow-only arena that
// backs resettable tapes and the fused softmax+cross-entropy.
//
// Determinism contract. Every kernel computes each output element by
// adding its terms in ascending-k order, one float32 rounding per added
// term, and skips a term exactly when its left operand is zero — the
// same per-element semantics as a naive triple loop with a zero-skip.
// The register blocking below only regroups loop iterations (fused
// multi-term adds still associate left-to-right from the accumulator)
// and the row-parallel dispatch only partitions *disjoint* output rows,
// so results are bit-identical to the naive reference for any worker
// count and any blocking factor. kernels_test.go enforces this with
// differential and property tests; keep any new kernel inside the same
// contract, because the Stage 3 cache (internal/model/kvcache.go) and
// the training tape must keep producing identical floats.
package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// workers is the kernel parallelism knob, read atomically on every
// dispatch so tests and callers can retune it at runtime.
var workers atomic.Int32

func init() { workers.Store(int32(runtime.GOMAXPROCS(0))) }

// Workers reports the current kernel worker bound.
func Workers() int { return int(workers.Load()) }

// SetWorkers bounds how many goroutines a single kernel call may fan out
// to. n < 1 restores the default (GOMAXPROCS). Results are bit-identical
// for any value; the knob only trades latency for CPU.
func SetWorkers(n int) {
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	workers.Store(int32(n))
}

// parFlops gates the parallel dispatch: kernels below this many
// multiply-adds run serially, since goroutine handoff costs more than
// the work (Stage 3's per-step rows stay serial, training's batched
// matmuls fan out).
const parFlops = 1 << 21

// parallelRows runs body over [0,r) split into at most Workers()
// contiguous chunks. Output rows are disjoint across chunks, so the
// partitioning never changes results.
func parallelRows(r, flops int, body func(lo, hi int)) {
	w := Workers()
	if w > r {
		w = r
	}
	if w <= 1 || flops < parFlops {
		body(0, r)
		return
	}
	chunk := (r + w - 1) / w
	var wg sync.WaitGroup
	for lo := 0; lo < r; lo += chunk {
		hi := min(lo+chunk, r)
		wg.Add(1)
		go func() {
			defer wg.Done()
			body(lo, hi)
		}()
	}
	wg.Wait()
}

// Axpy computes dst[i] += alpha·src[i]. Lanes are independent and each
// element receives exactly one += (one product rounding, one add
// rounding), so the AVX2 path and the scalar loop produce bit-identical
// results.
func Axpy(dst, src []float32, alpha float32) {
	src = src[:len(dst)]
	i := 0
	if useAVX2 && len(dst) >= 8 {
		i = len(dst) &^ 7
		axpyAVX2(&dst[0], &src[0], i, alpha)
	}
	for ; i < len(dst); i++ {
		dst[i] += alpha * src[i]
	}
}

// fused4 computes o[j] = o[j] + a0·b0[j] + a1·b1[j] + a2·b2[j] + a3·b3[j]
// — the four-k-term block every blocked kernel reduces to. Terms
// associate left-to-right from the accumulator with one rounding per
// product and per add, in vector and scalar form alike.
func fused4(o, b0, b1, b2, b3 []float32, a0, a1, a2, a3 float32) {
	j := 0
	if useAVX2 && len(o) >= 8 {
		j = len(o) &^ 7
		fused4AVX2(&o[0], &b0[0], &b1[0], &b2[0], &b3[0], j, a0, a1, a2, a3)
	}
	for ; j < len(o); j++ {
		o[j] = o[j] + a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
	}
}

// MatMul computes out += a·b with a r×k, b k×c (out accumulates; zero it
// for a plain product). Blocked: four k-terms per pass share one load of
// the output row, and the fused four-term adds associate left-to-right
// from the accumulator, so each element still receives its nonzero terms
// in ascending-k order with one rounding each — bit-identical to the
// naive kernel. Large shapes fan out over disjoint row ranges.
func MatMul(out, a, b []float32, r, k, c int) {
	parallelRows(r, r*k*c, func(lo, hi int) {
		matmulRows(out, a, b, lo, hi, k, c)
	})
}

func matmulRows(out, a, b []float32, lo, hi, k, c int) {
	for i := lo; i < hi; i++ {
		arow := a[i*k : (i+1)*k]
		orow := out[i*c : (i+1)*c]
		p := 0
		for ; p+4 <= k; p += 4 {
			a0, a1, a2, a3 := arow[p], arow[p+1], arow[p+2], arow[p+3]
			if a0 != 0 && a1 != 0 && a2 != 0 && a3 != 0 {
				fused4(orow,
					b[p*c:(p+1)*c], b[(p+1)*c:(p+2)*c],
					b[(p+2)*c:(p+3)*c], b[(p+3)*c:(p+4)*c],
					a0, a1, a2, a3)
			} else if a0 != 0 || a1 != 0 || a2 != 0 || a3 != 0 {
				// Mixed block (causal-attention rows end in exact zeros):
				// fall back to per-term adds with the zero-skip intact.
				for q := 0; q < 4; q++ {
					if av := arow[p+q]; av != 0 {
						Axpy(orow, b[(p+q)*c:(p+q+1)*c], av)
					}
				}
			}
		}
		for ; p < k; p++ {
			if av := arow[p]; av != 0 {
				Axpy(orow, b[p*c:(p+1)*c], av)
			}
		}
	}
}

// ntPool recycles MatMulNT's transpose scratch; the transpose costs k·c
// element copies against the r·k·c multiply-adds it unlocks.
var ntPool sync.Pool

// scratchCap rounds a request up to the next power of two (min 256), so
// nearby shapes share one size class and a pooled buffer keeps serving
// after small size drifts.
func scratchCap(n int) int {
	c := 256
	for c < n {
		c <<= 1
	}
	return c
}

func getScratch(n int) []float32 {
	if v := ntPool.Get(); v != nil {
		if s := v.([]float32); cap(s) >= n {
			return s[:n]
		}
		// Undersized for this call, still useful for the next small
		// one: return it instead of letting it fall to the collector.
		ntPool.Put(v)
	}
	return make([]float32, n, scratchCap(n))
}

// MatMulNT computes dst += a·bᵀ with a r×k, b c×k, dst r×c. It
// materializes bᵀ into pooled scratch and runs the blocked MatMul
// kernel, so every output element gets its nonzero terms in ascending-k
// order with one rounding each (and the zero-skip on a's values), via
// the vectorized row update instead of scalar dot products.
func MatMulNT(dst, a, b []float32, r, k, c int) {
	bt := getScratch(k * c)
	for j := 0; j < c; j++ {
		row := b[j*k : (j+1)*k]
		for p, v := range row {
			bt[p*c+j] = v
		}
	}
	MatMul(dst, a, bt, r, k, c)
	ntPool.Put(bt) //nolint:staticcheck // slice reuse is the point
}

// tnBlock is MatMulTN's k-tile: the naive kernel streams the whole
// r×c destination once per row of a, this version only once per tile.
const tnBlock = 64

// MatMulTN computes dst += aᵀ·b with a r2×r, b r2×c, dst r×c. The k
// (=r2) dimension is tiled so dst is streamed r2/tnBlock times instead
// of r2 times; within a tile the same fused/skip structure as MatMul
// keeps each element's nonzero terms in ascending-k order, one rounding
// each. Parallel over dst rows.
func MatMulTN(dst, a, b []float32, r, r2, c int) {
	parallelRows(r, r*r2*c, func(lo, hi int) {
		for p0 := 0; p0 < r2; p0 += tnBlock {
			p1 := min(p0+tnBlock, r2)
			for i := lo; i < hi; i++ {
				drow := dst[i*c : (i+1)*c]
				p := p0
				for ; p+4 <= p1; p += 4 {
					a0, a1, a2, a3 := a[p*r+i], a[(p+1)*r+i], a[(p+2)*r+i], a[(p+3)*r+i]
					if a0 != 0 && a1 != 0 && a2 != 0 && a3 != 0 {
						fused4(drow,
							b[p*c:(p+1)*c], b[(p+1)*c:(p+2)*c],
							b[(p+2)*c:(p+3)*c], b[(p+3)*c:(p+4)*c],
							a0, a1, a2, a3)
					} else if a0 != 0 || a1 != 0 || a2 != 0 || a3 != 0 {
						for q := 0; q < 4; q++ {
							if av := a[(p+q)*r+i]; av != 0 {
								Axpy(drow, b[(p+q)*c:(p+q+1)*c], av)
							}
						}
					}
				}
				for ; p < p1; p++ {
					if av := a[p*r+i]; av != 0 {
						Axpy(drow, b[p*c:(p+1)*c], av)
					}
				}
			}
		}
	})
}

// MulRowInto accumulates out[j] += a[p]·b[p*stride+off+j] for j < cols,
// p < rows: one output row of MatMul against a sub-matrix of b. When the
// sub-matrix is the whole of b the blocked row kernel applies; otherwise
// the p-outer loop with the zero-skip runs directly. Either way the
// per-element term order matches MatMul exactly (the Stage 3 decoder
// depends on this for its bit-identity with the tape path).
func MulRowInto(out, a, b []float32, rows, cols, stride, off int) {
	if off == 0 && stride == cols {
		matmulRows(out, a, b, 0, 1, rows, cols)
		return
	}
	for p := 0; p < rows; p++ {
		if av := a[p]; av != 0 {
			Axpy(out, b[p*stride+off:p*stride+off+cols], av)
		}
	}
}

// DotColumns accumulates out[j] += a[p]·b[j*rows+off+p] for j < outer,
// p < cols — a row times the transpose of a sub-matrix of b, in the term
// order MatMul(a, Transpose(b)) produces after materializing the
// transpose (ascending p per element, zero terms skipped). Four output
// lanes share each pass over a.
func DotColumns(out, a, b []float32, outer, rows, off, cols int) {
	a = a[:cols]
	j := 0
	for ; j+4 <= outer; j += 4 {
		r0 := b[j*rows+off:]
		r1 := b[(j+1)*rows+off:]
		r2 := b[(j+2)*rows+off:]
		r3 := b[(j+3)*rows+off:]
		var s0, s1, s2, s3 float32
		for p, av := range a {
			if av == 0 {
				continue
			}
			s0 += av * r0[p]
			s1 += av * r1[p]
			s2 += av * r2[p]
			s3 += av * r3[p]
		}
		out[j] += s0
		out[j+1] += s1
		out[j+2] += s2
		out[j+3] += s3
	}
	for ; j < outer; j++ {
		row := b[j*rows+off:]
		var s float32
		for p, av := range a {
			if av == 0 {
				continue
			}
			s += av * row[p]
		}
		out[j] += s
	}
}
