package tensor

// Arena is a grow-only bump allocator for float32 buffers with a
// single-shot free: Alloc hands out slices of large backing chunks, and
// Reset makes every previously handed-out slice reusable at once without
// returning anything to the Go heap. A tape allocates every node buffer
// from its arena, so one training step's worth of intermediate tensors
// costs the garbage collector nothing after the first epoch warms the
// chunks up.
//
// Lifetime rule: a slice returned by Alloc/AllocNoZero is valid until
// the arena's next Reset, after which it will be handed out again —
// holding one across a Reset is a use-after-free. Arenas are
// single-goroutine; concurrency comes from using one arena per tape.
// The zero value is ready to use.
type Arena struct {
	chunks [][]float32
	ci     int // chunk currently being bumped
	off    int // bump offset within chunks[ci]
}

// arenaMinChunk is the smallest backing chunk (in float32s): 256 KiB,
// large enough that a tiny model's whole tape fits in a few chunks while
// a single outsized request still gets a chunk of its own.
const arenaMinChunk = 1 << 16

// Alloc returns a zeroed n-float slice valid until Reset.
func (a *Arena) Alloc(n int) []float32 {
	s := a.AllocNoZero(n)
	clear(s)
	return s
}

// AllocNoZero returns an n-float slice valid until Reset without
// clearing it — for buffers the caller overwrites entirely. Reused
// memory holds stale values from before the last Reset.
func (a *Arena) AllocNoZero(n int) []float32 {
	for {
		if a.ci < len(a.chunks) {
			ch := a.chunks[a.ci]
			if a.off+n <= len(ch) {
				s := ch[a.off : a.off+n : a.off+n]
				a.off += n
				return s
			}
			a.ci++
			a.off = 0
			continue
		}
		size := arenaMinChunk
		for size < n {
			size <<= 1
		}
		a.chunks = append(a.chunks, make([]float32, size))
	}
}

// Reset rewinds the arena: every chunk is retained and every slice
// handed out since the previous Reset becomes reusable.
func (a *Arena) Reset() {
	a.ci, a.off = 0, 0
}

// Footprint reports the total floats held across chunks (observability
// and tests; the arena never shrinks).
func (a *Arena) Footprint() int {
	n := 0
	for _, ch := range a.chunks {
		n += len(ch)
	}
	return n
}
