package tensor

import (
	"math/rand"
	"testing"
)

// naiveAttnScores is the contract reference for AttnScoresInto: terms
// in ascending p, one rounding each, zero-skip on q.
func naiveAttnScores(out, q, k []float32, ctxLen, dh int) {
	for j := 0; j < ctxLen; j++ {
		var s float32
		for p := 0; p < dh; p++ {
			if av := q[p]; av != 0 {
				s += av * k[j*dh+p]
			}
		}
		out[j] = s
	}
}

// attnShapes cross the AVX2 dispatch gates (ctxLen ≥ 8, dh ≥ 8) and
// both tails (row count not a multiple of 8, head dim not a multiple
// of 8), plus the shipped model's dh=16.
var attnCtxLens = []int{1, 3, 7, 8, 9, 16, 23, 64, 129}
var attnHeadDims = []int{1, 3, 7, 8, 11, 16, 24}

func TestAttnScoresMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, ctxLen := range attnCtxLens {
		for _, dh := range attnHeadDims {
			q := make([]float32, dh)
			k := make([]float32, ctxLen*dh)
			fill(q, rng, 0.25)
			fill(k, rng, 0.1)
			got := make([]float32, ctxLen)
			want := make([]float32, ctxLen)
			fill(got, rng, 0) // must be overwritten, not accumulated
			AttnScoresInto(got, q, k, ctxLen, dh)
			naiveAttnScores(want, q, k, ctxLen, dh)
			equalBits(t, "AttnScoresInto", got, want)
		}
	}
}

// TestAttnScoresMatchesDotColumns pins the layout seam: packing a head
// slice of full-width K rows into a dense block and running the new
// kernel must reproduce the strided DotColumns path bit for bit.
func TestAttnScoresMatchesDotColumns(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for _, ctxLen := range attnCtxLens {
		for _, dh := range attnHeadDims {
			heads := 3
			stride := heads * dh
			kfull := make([]float32, ctxLen*stride)
			fill(kfull, rng, 0.1)
			for h := 0; h < heads; h++ {
				off := h * dh
				q := make([]float32, dh)
				fill(q, rng, 0.25)
				want := make([]float32, ctxLen)
				DotColumns(want, q, kfull, ctxLen, stride, off, dh)

				khead := make([]float32, ctxLen*dh)
				for j := 0; j < ctxLen; j++ {
					copy(khead[j*dh:(j+1)*dh], kfull[j*stride+off:j*stride+off+dh])
				}
				got := make([]float32, ctxLen)
				AttnScoresInto(got, q, khead, ctxLen, dh)
				equalBits(t, "AttnScoresInto(vs DotColumns)", got, want)
			}
		}
	}
}

// TestAttnWeightedSumMatchesStridedMulRow pins the value-side seam: the
// dense head block through AttnWeightedSumInto must match the strided
// MulRowInto the full-width layout used, including accumulation into a
// nonzero destination.
func TestAttnWeightedSumMatchesStridedMulRow(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, ctxLen := range attnCtxLens {
		for _, dh := range attnHeadDims {
			heads := 3
			stride := heads * dh
			vfull := make([]float32, ctxLen*stride)
			fill(vfull, rng, 0.1)
			w := make([]float32, ctxLen)
			fill(w, rng, 0.2)
			for h := 0; h < heads; h++ {
				off := h * dh
				want := make([]float32, dh)
				got := make([]float32, dh)
				fill(want, rng, 0)
				copy(got, want)
				MulRowInto(want, w, vfull, ctxLen, dh, stride, off)

				vhead := make([]float32, ctxLen*dh)
				for j := 0; j < ctxLen; j++ {
					copy(vhead[j*dh:(j+1)*dh], vfull[j*stride+off:j*stride+off+dh])
				}
				AttnWeightedSumInto(got, w, vhead, ctxLen, dh)
				equalBits(t, "AttnWeightedSumInto(vs MulRowInto)", got, want)
			}
		}
	}
}

func FuzzAttnScoresAgainstNaive(f *testing.F) {
	f.Add(int64(1), uint8(8), uint8(16))
	f.Add(int64(5), uint8(7), uint8(9))
	f.Add(int64(13), uint8(40), uint8(3))
	f.Fuzz(func(t *testing.T, seed int64, cc, dd uint8) {
		ctxLen, dh := int(cc%48)+1, int(dd%32)+1
		rng := rand.New(rand.NewSource(seed))
		q := make([]float32, dh)
		k := make([]float32, ctxLen*dh)
		fill(q, rng, 0.3)
		fill(k, rng, 0.1)
		got := make([]float32, ctxLen)
		want := make([]float32, ctxLen)
		AttnScoresInto(got, q, k, ctxLen, dh)
		naiveAttnScores(want, q, k, ctxLen, dh)
		equalBits(t, "AttnScoresInto(fuzz)", got, want)
	})
}

// Benchmarks at the shipped model shape: Dim=64, Heads=4 → dh=16, a
// mid-generation context of 128 rows. "FullWidth" is the old strided
// path (DotColumns + per-term MulRowInto over Dim-wide rows);
// "HeadContiguous" is the dense-block path the decoder now runs.

const (
	benchCtx   = 128
	benchHeads = 4
	benchDh    = 16
	benchDim   = benchHeads * benchDh
)

func benchAttnData(rng *rand.Rand) (q, kfull, vfull, khead, vhead, scores, out []float32) {
	q = make([]float32, benchDh)
	kfull = make([]float32, benchCtx*benchDim)
	vfull = make([]float32, benchCtx*benchDim)
	fill(q, rng, 0.1)
	fill(kfull, rng, 0)
	fill(vfull, rng, 0)
	khead = make([]float32, benchCtx*benchDh)
	vhead = make([]float32, benchCtx*benchDh)
	for j := 0; j < benchCtx; j++ {
		copy(khead[j*benchDh:(j+1)*benchDh], kfull[j*benchDim:j*benchDim+benchDh])
		copy(vhead[j*benchDh:(j+1)*benchDh], vfull[j*benchDim:j*benchDim+benchDh])
	}
	scores = make([]float32, benchCtx)
	out = make([]float32, benchDh)
	return
}

func BenchmarkAttendRowFullWidth(b *testing.B) {
	rng := rand.New(rand.NewSource(31))
	q, kfull, vfull, _, _, scores, out := benchAttnData(rng)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		clear(scores)
		DotColumns(scores, q, kfull, benchCtx, benchDim, 0, benchDh)
		clear(out)
		MulRowInto(out, scores, vfull, benchCtx, benchDh, benchDim, 0)
	}
}

func BenchmarkAttendRowHeadContiguous(b *testing.B) {
	rng := rand.New(rand.NewSource(31))
	q, _, _, khead, vhead, scores, out := benchAttnData(rng)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		AttnScoresInto(scores, q, khead, benchCtx, benchDh)
		clear(out)
		AttnWeightedSumInto(out, scores, vhead, benchCtx, benchDh)
	}
}
