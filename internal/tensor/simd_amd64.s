//go:build amd64

#include "textflag.h"

// func cpuidex(leaf, sub uint32) (ax, bx, cx, dx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, ax+8(FP)
	MOVL BX, bx+12(FP)
	MOVL CX, cx+16(FP)
	MOVL DX, dx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func axpyAVX2(dst, src *float32, n int, alpha float32)
// dst[i] += alpha*src[i], 8 lanes per iteration. Product and add round
// separately (VMULPS then VADDPS) exactly like the scalar loop.
TEXT ·axpyAVX2(SB), NOSPLIT, $0-28
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX
	VBROADCASTSS alpha+24(FP), Y0
axpyloop:
	CMPQ CX, $8
	JLT  axpydone
	VMOVUPS (SI), Y1
	VMULPS  Y1, Y0, Y1
	VMOVUPS (DI), Y2
	VADDPS  Y1, Y2, Y2
	VMOVUPS Y2, (DI)
	ADDQ $32, SI
	ADDQ $32, DI
	SUBQ $8, CX
	JMP  axpyloop
axpydone:
	VZEROUPPER
	RET

// func fused4AVX2(o, b0, b1, b2, b3 *float32, n int, a0, a1, a2, a3 float32)
// o[j] = o[j] + a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j], 8 lanes per
// iteration, terms added left-to-right from the accumulator with one
// rounding per product and per add — the scalar fused-block loop exactly.
TEXT ·fused4AVX2(SB), NOSPLIT, $0-64
	MOVQ o+0(FP), DI
	MOVQ b0+8(FP), R8
	MOVQ b1+16(FP), R9
	MOVQ b2+24(FP), R10
	MOVQ b3+32(FP), R11
	MOVQ n+40(FP), CX
	VBROADCASTSS a0+48(FP), Y0
	VBROADCASTSS a1+52(FP), Y1
	VBROADCASTSS a2+56(FP), Y2
	VBROADCASTSS a3+60(FP), Y3
f4loop:
	CMPQ CX, $8
	JLT  f4done
	VMOVUPS (DI), Y4
	VMOVUPS (R8), Y5
	VMULPS  Y5, Y0, Y5
	VADDPS  Y5, Y4, Y4
	VMOVUPS (R9), Y5
	VMULPS  Y5, Y1, Y5
	VADDPS  Y5, Y4, Y4
	VMOVUPS (R10), Y5
	VMULPS  Y5, Y2, Y5
	VADDPS  Y5, Y4, Y4
	VMOVUPS (R11), Y5
	VMULPS  Y5, Y3, Y5
	VADDPS  Y5, Y4, Y4
	VMOVUPS Y4, (DI)
	ADDQ $32, DI
	ADDQ $32, R8
	ADDQ $32, R9
	ADDQ $32, R10
	ADDQ $32, R11
	SUBQ $8, CX
	JMP  f4loop
f4done:
	VZEROUPPER
	RET
