//go:build !amd64

package tensor

// Non-amd64 builds run the pure-Go integer loop; this stub is never
// reached (useAVX2 is a false constant).

func dotInt8AVX2(a, b *int8, n int) int32 {
	panic("tensor: dotInt8AVX2 on non-amd64")
}

func dotInt8RowsAVX2(a, b *int8, acc *int32, rows, stride, n int) {
	panic("tensor: dotInt8RowsAVX2 on non-amd64")
}

func maxAbsAVX2(src *float32, n8 int) float32 {
	panic("tensor: maxAbsAVX2 on non-amd64")
}

func quantizeRowAVX2(dst *int8, src *float32, n32 int, inv float32) {
	panic("tensor: quantizeRowAVX2 on non-amd64")
}
