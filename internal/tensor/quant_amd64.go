//go:build amd64

package tensor

// dotInt8AVX2 computes the exact int32 dot product of n int8 elements
// (n a multiple of 16; the caller handles leftovers). Sign-extends 16
// lanes to int16 and pairwise multiply-adds into int32 accumulators —
// integer arithmetic throughout, so the sum is exact and identical to
// the scalar loop regardless of lane order.
func dotInt8AVX2(a, b *int8, n int) int32

// dotInt8RowsAVX2 computes acc[j] = dot(a[:n], b[j*stride:][:n]) for
// j < rows, n a multiple of 16 and ≥ 16. Four rows per outer iteration
// share each sign-extended chunk of a; see quant_amd64.s.
func dotInt8RowsAVX2(a, b *int8, acc *int32, rows, stride, n int)

// maxAbsAVX2 returns max(|src[i]|) over i < n8, n8 a multiple of 8 and
// ≥ 8. Bit-identical to the scalar scan for finite inputs: abs then a
// lane-parallel max, which is order-free over non-negative floats.
func maxAbsAVX2(src *float32, n8 int) float32

// quantizeRowAVX2 writes dst[i] = clamp(rint(src[i]·inv), ±127) for
// i < n32, n32 a multiple of 32 and ≥ 32. VCVTPS2DQ's round-to-nearest-
// even equals the scalar magic-number round for every finite in-range
// input, so the vector path is bit-identical to the scalar loop.
func quantizeRowAVX2(dst *int8, src *float32, n32 int, inv float32)
