// Fast float32 transcendentals for the quantized inference path. The
// float32 kernels' bit-identity contract pins math.Exp/math.Tanh — the
// tape and the exact decode path must keep calling those — but the int8
// path is already an approximation guarded by the ambiguity fallback, so
// its softmax/GELU/scoring can use short float32 polynomials instead of
// the float64 library calls that otherwise dominate single-core decode.
//
// Both functions are pure branches-and-arithmetic over float32: the same
// input always produces the same output, so the quantized path stays
// bit-identical across worker counts and repeated runs. Relative error
// is ≤ ~3e-6 for FastExp32 and ≤ ~1e-5 for FastTanh32 — two to three
// orders of magnitude below the int8 quantization noise the ambiguity
// margin already absorbs.
package tensor

import "math"

const (
	log2e   = 1.4426950408889634
	ln2Hi   = 6.9335937500e-01 // high bits of ln 2 (exact in float32)
	ln2Lo   = -2.1219444005e-04
	expMax  = 88.0  // e^x overflows float32 just past this
	expMin  = -87.0 // e^x underflows to 0 below this
	roundMg = float32(3 << 22)
)

// FastExp32 approximates e^x. Range reduction x = n·ln2 + r with
// |r| ≤ ln2/2, a degree-5 Taylor polynomial for e^r, and an exponent-bit
// reconstruction for 2ⁿ.
func FastExp32(x float32) float32 {
	if x > expMax {
		return float32(math.Inf(1))
	}
	if x < expMin {
		return 0
	}
	nf := float32(float32(x*log2e)+roundMg) - roundMg
	r := float32(x-nf*ln2Hi) - nf*ln2Lo
	// e^r ≈ 1 + r(1 + r(1/2 + r(1/6 + r(1/24 + r/120)))), |r| ≤ 0.347.
	p := 1 + r*(1+r*(0.5+r*(1.0/6+r*(1.0/24+r*(1.0/120)))))
	return p * math.Float32frombits(uint32(int32(nf)+127)<<23)
}

// FastTanh32 approximates tanh(x) via e^{2|x|}: tanh(x) =
// sign(x)·(1 − 2/(e^{2|x|}+1)), saturating to ±1 past |x| = 9 where
// float32 tanh is 1 to the last bit anyway.
func FastTanh32(x float32) float32 {
	neg := x < 0
	if neg {
		x = -x
	}
	var t float32
	if x >= 9 {
		t = 1
	} else {
		e := FastExp32(2 * x)
		t = 1 - 2/(e+1)
	}
	if neg {
		return -t
	}
	return t
}
