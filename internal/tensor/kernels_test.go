package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// naiveMatMul is the reference triple loop with the zero-skip: each
// output element receives its nonzero terms in ascending-k order, one
// rounding per term. The blocked kernels must match it bit for bit.
func naiveMatMul(out, a, b []float32, r, k, c int) {
	for i := 0; i < r; i++ {
		for p := 0; p < k; p++ {
			av := a[i*k+p]
			if av == 0 {
				continue
			}
			for j := 0; j < c; j++ {
				out[i*c+j] += av * b[p*c+j]
			}
		}
	}
}

// naiveMatMulNT mirrors the kernel's contract semantics: materialize bᵀ
// and run the naive skip-on-zero matmul, so every element's nonzero
// terms add in ascending-k order with one rounding each.
func naiveMatMulNT(dst, a, b []float32, r, k, c int) {
	bt := make([]float32, k*c)
	for j := 0; j < c; j++ {
		for p := 0; p < k; p++ {
			bt[p*c+j] = b[j*k+p]
		}
	}
	naiveMatMul(dst, a, bt, r, k, c)
}

func naiveMatMulTN(dst, a, b []float32, r, r2, c int) {
	for p := 0; p < r2; p++ {
		for i := 0; i < r; i++ {
			av := a[p*r+i]
			if av == 0 {
				continue
			}
			for j := 0; j < c; j++ {
				dst[i*c+j] += av * b[p*c+j]
			}
		}
	}
}

// fill populates xs with a deterministic mix of values including exact
// zeros (zeroFrac of them), so the zero-skip paths are exercised.
func fill(xs []float32, rng *rand.Rand, zeroFrac float64) {
	for i := range xs {
		if rng.Float64() < zeroFrac {
			xs[i] = 0
		} else {
			xs[i] = float32(rng.NormFloat64())
		}
	}
}

// kernelShapes are the ISSUE-mandated odd sizes around the blocking
// factors: the 4-wide register block and the 64-row MatMulTN tile.
var kernelShapes = []int{1, 3, 4, 5, 13, 63, 64, 65, 133}

func equalBits(t *testing.T, kernel string, got, want []float32) {
	t.Helper()
	for i := range want {
		if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
			t.Fatalf("%s: element %d = %v (bits %x), want %v (bits %x)",
				kernel, i, got[i], math.Float32bits(got[i]), want[i], math.Float32bits(want[i]))
		}
	}
}

func TestBlockedKernelsMatchNaive(t *testing.T) {
	defer SetWorkers(0)
	rng := rand.New(rand.NewSource(1))
	for _, w := range []int{1, 3, 8} {
		SetWorkers(w)
		for _, r := range kernelShapes {
			for _, k := range kernelShapes {
				for _, c := range kernelShapes {
					a := make([]float32, r*k)
					b := make([]float32, k*c)
					bt := make([]float32, c*k)
					at := make([]float32, k*r)
					fill(a, rng, 0.2)
					fill(b, rng, 0.1)
					fill(bt, rng, 0.1)
					fill(at, rng, 0.2)

					got := make([]float32, r*c)
					want := make([]float32, r*c)
					MatMul(got, a, b, r, k, c)
					naiveMatMul(want, a, b, r, k, c)
					equalBits(t, "MatMul", got, want)

					// Accumulation into a nonzero destination.
					fill(got, rng, 0)
					copy(want, got)
					MatMulNT(got, a, bt, r, k, c)
					naiveMatMulNT(want, a, bt, r, k, c)
					equalBits(t, "MatMulNT", got, want)

					clear(got)
					clear(want)
					MatMulTN(got, at, b, r, k, c)
					naiveMatMulTN(want, at, b, r, k, c)
					equalBits(t, "MatMulTN", got, want)
				}
			}
		}
	}
}

// TestParallelDispatchAboveGate forces shapes across the parFlops gate
// and checks worker counts cannot change a single bit.
func TestParallelDispatchAboveGate(t *testing.T) {
	defer SetWorkers(0)
	r, k, c := 160, 96, 160 // r*k*c ≈ 2.4M > parFlops
	rng := rand.New(rand.NewSource(7))
	a := make([]float32, r*k)
	b := make([]float32, k*c)
	fill(a, rng, 0.15)
	fill(b, rng, 0)
	SetWorkers(1)
	want := make([]float32, r*c)
	MatMul(want, a, b, r, k, c)
	for _, w := range []int{2, 5, 16} {
		SetWorkers(w)
		got := make([]float32, r*c)
		MatMul(got, a, b, r, k, c)
		equalBits(t, "MatMul(parallel)", got, want)
	}
}

func TestMulRowIntoMatchesMatMulRow(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, k := range kernelShapes {
		for _, c := range kernelShapes {
			a := make([]float32, k)
			b := make([]float32, k*c)
			fill(a, rng, 0.2)
			fill(b, rng, 0)
			got := make([]float32, c)
			want := make([]float32, c)
			MulRowInto(got, a, b, k, c, c, 0)
			naiveMatMul(want, a, b, 1, k, c)
			equalBits(t, "MulRowInto", got, want)

			// Strided sub-matrix: columns [off, off+cols) of a wider b.
			if c > 2 {
				off, cols := 1, c-2
				gotS := make([]float32, cols)
				wantS := make([]float32, cols)
				for p := 0; p < k; p++ {
					if av := a[p]; av != 0 {
						for j := 0; j < cols; j++ {
							wantS[j] += av * b[p*c+off+j]
						}
					}
				}
				MulRowInto(gotS, a, b, k, cols, c, off)
				equalBits(t, "MulRowInto(strided)", gotS, wantS)
			}
		}
	}
}

func TestDotColumnsMatchesTransposedMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, outer := range kernelShapes {
		for _, dh := range []int{1, 3, 8, 16} {
			stride := dh + 5 // K rows wider than the head slice
			off := 2
			q := make([]float32, dh)
			kmat := make([]float32, outer*stride)
			fill(q, rng, 0.2)
			fill(kmat, rng, 0)
			want := make([]float32, outer)
			// Reference: materialize the transpose, run the naive kernel.
			bt := make([]float32, dh*outer)
			for j := 0; j < outer; j++ {
				for p := 0; p < dh; p++ {
					bt[p*outer+j] = kmat[j*stride+off+p]
				}
			}
			naiveMatMul(want, q, bt, 1, dh, outer)
			got := make([]float32, outer)
			DotColumns(got, q, kmat, outer, stride, off, dh)
			equalBits(t, "DotColumns", got, want)
		}
	}
}

func FuzzMatMulAgainstNaive(f *testing.F) {
	f.Add(int64(1), uint8(3), uint8(5), uint8(4))
	f.Add(int64(9), uint8(1), uint8(1), uint8(1))
	f.Add(int64(42), uint8(13), uint8(7), uint8(9))
	f.Fuzz(func(t *testing.T, seed int64, rr, kk, cc uint8) {
		r, k, c := int(rr%24)+1, int(kk%24)+1, int(cc%24)+1
		rng := rand.New(rand.NewSource(seed))
		a := make([]float32, r*k)
		b := make([]float32, k*c)
		fill(a, rng, 0.3)
		fill(b, rng, 0.1)
		got := make([]float32, r*c)
		want := make([]float32, r*c)
		MatMul(got, a, b, r, k, c)
		naiveMatMul(want, a, b, r, k, c)
		equalBits(t, "MatMul(fuzz)", got, want)

		gotNT := make([]float32, r*k)
		wantNT := make([]float32, r*k)
		// dst r×k += (r×c)·(k×c)ᵀ reuses got as a and b as bᵀ-shaped input.
		MatMulNT(gotNT, got, b, r, c, k)
		naiveMatMulNT(wantNT, got, b, r, c, k)
		equalBits(t, "MatMulNT(fuzz)", gotNT, wantNT)

		gotTN := make([]float32, k*c)
		wantTN := make([]float32, k*c)
		MatMulTN(gotTN, a, got, k, r, c)
		naiveMatMulTN(wantTN, a, got, k, r, c)
		equalBits(t, "MatMulTN(fuzz)", gotTN, wantTN)
	})
}

func TestArenaAllocZeroesReusedMemory(t *testing.T) {
	var a Arena
	s1 := a.Alloc(100)
	for i := range s1 {
		s1[i] = 7
	}
	a.Reset()
	s2 := a.Alloc(100)
	for i, v := range s2 {
		if v != 0 {
			t.Fatalf("reused Alloc not zeroed at %d: %v", i, v)
		}
	}
	// Same backing memory must have been handed out again.
	s2[0] = 9
	if s1[0] != 9 {
		t.Error("Reset did not rewind to the same chunk")
	}
}

func TestArenaGrowth(t *testing.T) {
	var a Arena
	big := a.Alloc(3 * arenaMinChunk)
	if len(big) != 3*arenaMinChunk {
		t.Fatalf("big alloc length %d", len(big))
	}
	small := a.AllocNoZero(8)
	if len(small) != 8 {
		t.Fatalf("small alloc length %d", len(small))
	}
	fp := a.Footprint()
	a.Reset()
	for i := 0; i < 100; i++ {
		a.Alloc(arenaMinChunk / 2)
		a.Reset()
	}
	if got := a.Footprint(); got != fp {
		t.Errorf("footprint grew across Reset cycles: %d -> %d", fp, got)
	}
	// Append beyond an allocation's length must not clobber its neighbor.
	a.Reset()
	first := a.Alloc(4)
	second := a.Alloc(4)
	_ = append(first, 99)
	if second[0] != 0 {
		t.Error("append to a full arena slice overwrote the next allocation")
	}
}

func TestSoftmaxXentMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	r, c := 9, 37
	logits := make([]float32, r*c)
	fill(logits, rng, 0)
	targets := make([]int, r)
	for i := range targets {
		targets[i] = rng.Intn(c)
	}
	targets[2], targets[6] = -1, -1 // padding rows

	probs := make([]float32, r*c)
	rowNLL := make([]float64, r)
	SoftmaxXent(probs, logits, targets, r, c, rowNLL)

	for i := 0; i < r; i++ {
		row := logits[i*c : (i+1)*c]
		maxv := float32(math.Inf(-1))
		for _, v := range row {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for _, v := range row {
			sum += math.Exp(float64(v - maxv))
		}
		logZ := math.Log(sum) + float64(maxv)
		if targets[i] < 0 {
			if rowNLL[i] != 0 {
				t.Errorf("padding row %d nll = %v, want 0", i, rowNLL[i])
			}
			continue
		}
		wantNLL := logZ - float64(row[targets[i]])
		if math.Abs(rowNLL[i]-wantNLL) > 1e-9 {
			t.Errorf("row %d nll = %v, want %v", i, rowNLL[i], wantNLL)
		}
		var psum float64
		for j := 0; j < c; j++ {
			p := float64(probs[i*c+j])
			want := math.Exp(float64(row[j]) - logZ)
			if math.Abs(p-want) > 1e-6 {
				t.Errorf("row %d prob %d = %v, want %v", i, j, p, want)
			}
			psum += p
		}
		if math.Abs(psum-1) > 1e-5 {
			t.Errorf("row %d probs sum to %v", i, psum)
		}
	}

	// Backward: finite-difference check on a couple of elements.
	weights := make([]float32, r)
	for i := range weights {
		weights[i] = 0.25
	}
	grad := make([]float32, r*c)
	XentBackward(grad, probs, targets, r, c, 1, weights)
	lossAt := func(ls []float32) float64 {
		p2 := make([]float32, r*c)
		n2 := make([]float64, r)
		SoftmaxXent(p2, ls, targets, r, c, n2)
		var total float64
		for i := range n2 {
			if targets[i] >= 0 {
				total += float64(weights[i]) * n2[i]
			}
		}
		return total
	}
	const h = 1e-2
	for _, idx := range []int{0, c + 3, 4*c + 7} {
		pert := append([]float32(nil), logits...)
		pert[idx] += h
		up := lossAt(pert)
		pert[idx] -= 2 * h
		down := lossAt(pert)
		numeric := (up - down) / (2 * h)
		if math.Abs(numeric-float64(grad[idx])) > 1e-3 {
			t.Errorf("grad[%d] = %v, numeric %v", idx, grad[idx], numeric)
		}
	}
	// Padding rows must receive no gradient.
	for j := 0; j < c; j++ {
		if grad[2*c+j] != 0 {
			t.Fatalf("padding row received gradient at col %d", j)
		}
	}
}

func TestSetWorkersBounds(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(5)
	if Workers() != 5 {
		t.Fatalf("Workers() = %d after SetWorkers(5)", Workers())
	}
	SetWorkers(0)
	if Workers() < 1 {
		t.Fatalf("Workers() = %d after reset", Workers())
	}
}
