//go:build race

package tensor

// raceEnabled gates pool-behavior tests: under the race detector
// sync.Pool deliberately drops Puts at random, so pool retention and
// alloc-churn assertions are meaningless there.
const raceEnabled = true
