package tensor

import "math"

// SoftmaxXent is the fused forward kernel for softmax + cross-entropy
// over r rows of c logits: for each row with targets[i] >= 0 it writes
// the softmax probabilities into probs[i*c:(i+1)*c] (one exp per
// element, shared between the normalizer and the probabilities) and the
// row's negative log-likelihood — logZ − logit[target], accumulated in
// float64 exactly like the unfused reference — into rowNLL[i]. Rows with
// target < 0 (padding) are skipped entirely: their probs stay untouched
// and their nll is 0.
func SoftmaxXent(probs, logits []float32, targets []int, r, c int, rowNLL []float64) {
	for i := 0; i < r; i++ {
		if targets[i] < 0 {
			rowNLL[i] = 0
			continue
		}
		row := logits[i*c : (i+1)*c]
		prow := probs[i*c : (i+1)*c]
		maxv := float32(math.Inf(-1))
		for _, v := range row {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(float64(v - maxv))
			prow[j] = float32(e)
			sum += e
		}
		inv := float32(1 / sum)
		for j := range prow {
			prow[j] *= inv
		}
		rowNLL[i] = math.Log(sum) + float64(maxv) - float64(row[targets[i]])
	}
}

// XentBackward accumulates the fused kernel's gradient into dst:
// for each row with targets[i] >= 0,
//
//	dst[i][j] += upstream · weights[i] · (probs[i][j] − 1{j==target}).
//
// Padding rows contribute nothing.
func XentBackward(dst, probs []float32, targets []int, r, c int, upstream float32, weights []float32) {
	for i := 0; i < r; i++ {
		t := targets[i]
		if t < 0 {
			continue
		}
		scale := upstream * weights[i]
		drow := dst[i*c : (i+1)*c]
		prow := probs[i*c : (i+1)*c]
		for j := range drow {
			drow[j] += scale * prow[j]
		}
		drow[t] -= scale
	}
}

// SumSquares returns Σ v² in float64 (the global-norm accumulation the
// Adam clip uses).
func SumSquares(xs []float32) float64 {
	var s float64
	for _, v := range xs {
		s += float64(v) * float64(v)
	}
	return s
}

// ScaleInPlace multiplies every element by s.
func ScaleInPlace(xs []float32, s float32) {
	for i := range xs {
		xs[i] *= s
	}
}

// AdamUpdate applies one Adam step to a parameter slice: moment updates
// in float32 and the step itself in float64, in exactly the element
// order and arithmetic the in-model optimizer used before the kernel
// moved here (bit-compatible with existing training runs).
func AdamUpdate(data, grad, m, v []float32, lr float64, b1, b2 float32, eps float64) {
	for j, g := range grad {
		m[j] = b1*m[j] + (1-b1)*g
		v[j] = b2*v[j] + (1-b2)*g*g
		data[j] -= float32(lr * float64(m[j]) / (math.Sqrt(float64(v[j])) + eps))
	}
}
