//go:build amd64

package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// These tests pin the AVX2 quantize kernels to the pure-Go loops by
// toggling the useAVX2 dispatch var — amd64-only, since elsewhere it is
// a false constant and there is no second path to compare.

func TestQuantizeRowAVX2MatchesScalar(t *testing.T) {
	if !useAVX2 {
		t.Skip("AVX2 unavailable on this machine")
	}
	defer func() { useAVX2 = true }()
	rng := rand.New(rand.NewSource(17))
	sizes := []int{1, 7, 8, 9, 15, 16, 31, 32, 33, 63, 64, 65, 100, 127, 256, 1000}
	for _, n := range sizes {
		src := make([]float32, n)
		fill(src, rng, 0.2)
		if n > 2 {
			src[1] = float32(math.Copysign(0, -1)) // -0 must not win the max scan
		}

		useAVX2 = false
		wantDst := make([]int8, n)
		var wantScale float32
		QuantizeRowInto(wantDst, src, &wantScale)

		useAVX2 = true
		gotDst := make([]int8, n)
		var gotScale float32
		QuantizeRowInto(gotDst, src, &gotScale)

		if math.Float32bits(gotScale) != math.Float32bits(wantScale) {
			t.Fatalf("n=%d: scale %v (bits %x), scalar %v (bits %x)",
				n, gotScale, math.Float32bits(gotScale), wantScale, math.Float32bits(wantScale))
		}
		for i := range wantDst {
			if gotDst[i] != wantDst[i] {
				t.Fatalf("n=%d element %d: avx2 %d scalar %d (src %v, inv %v)",
					n, i, gotDst[i], wantDst[i], src[i], 127/wantScale/127)
			}
		}
	}
}

// TestQuantizeRowAVX2RoundToEvenTies drives exact .5 grid points (inv=1
// when maxAbs is 127) so a kernel that rounded half-away-from-zero
// instead of to-nearest-even would be caught.
func TestQuantizeRowAVX2RoundToEvenTies(t *testing.T) {
	if !useAVX2 {
		t.Skip("AVX2 unavailable on this machine")
	}
	src := make([]float32, 64)
	src[0] = 127 // pins maxAbs, so inv = 1 exactly
	for i := 1; i < len(src); i++ {
		v := float32(i%10) + 0.5
		if i%2 == 0 {
			v = -v
		}
		src[i] = v
	}
	dst := make([]int8, len(src))
	var scale float32
	QuantizeRowInto(dst, src, &scale)
	for i, v := range src {
		want := int8(math.RoundToEven(float64(v)))
		if dst[i] != want {
			t.Fatalf("element %d: %v quantized to %d, want %d", i, v, dst[i], want)
		}
	}
}

func TestQuantizeRowAVX2AllZero(t *testing.T) {
	if !useAVX2 {
		t.Skip("AVX2 unavailable on this machine")
	}
	src := make([]float32, 96) // multiple of 32: pure vector path for max
	src[40] = float32(math.Copysign(0, -1))
	dst := make([]int8, len(src))
	dst[3] = 99 // must be cleared
	var scale float32 = 5
	QuantizeRowInto(dst, src, &scale)
	if scale != 0 {
		t.Fatalf("all-zero row scale = %v, want 0", scale)
	}
	for i, v := range dst {
		if v != 0 {
			t.Fatalf("all-zero row dst[%d] = %d", i, v)
		}
	}
}

// Benchmarks at the shipped activation width (Dim=64); Scalar forces
// the pure-Go loops through the dispatch var.

func benchQuantizeRow(b *testing.B, n int) {
	rng := rand.New(rand.NewSource(19))
	src := make([]float32, n)
	fill(src, rng, 0.1)
	dst := make([]int8, n)
	var scale float32
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		QuantizeRowInto(dst, src, &scale)
	}
}

func BenchmarkQuantizeRow(b *testing.B) {
	if !useAVX2 {
		b.Skip("AVX2 unavailable on this machine")
	}
	benchQuantizeRow(b, 64)
}

func BenchmarkQuantizeRowScalar(b *testing.B) {
	saved := useAVX2
	useAVX2 = false
	defer func() { useAVX2 = saved }()
	benchQuantizeRow(b, 64)
}
