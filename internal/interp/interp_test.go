package interp

import (
	"errors"
	"testing"

	"vega/internal/cpp"
)

func parseFn(t *testing.T, src string) *cpp.Node {
	t.Helper()
	fn, err := cpp.ParseFunction(src)
	if err != nil {
		t.Fatal(err)
	}
	return fn
}

func TestCallSimpleArithmetic(t *testing.T) {
	fn := parseFn(t, `int add(int a, int b) { return a + b * 2; }`)
	got, err := Call(fn, NewEnv(), map[string]any{"a": int64(3), "b": int64(4)})
	if err != nil {
		t.Fatal(err)
	}
	if got != int64(11) {
		t.Errorf("got %v", got)
	}
}

func TestSwitchFallThrough(t *testing.T) {
	fn := parseFn(t, `int f(int k) {
  int acc = 0;
  switch (k) {
  case 1:
    acc += 10;
  case 2:
    acc += 100;
    break;
  case 3:
    acc += 1000;
    break;
  default:
    acc = -1;
  }
  return acc;
}`)
	cases := map[int64]int64{1: 110, 2: 100, 3: 1000, 9: -1}
	for in, want := range cases {
		got, err := Call(fn, NewEnv(), map[string]any{"k": in})
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("f(%d) = %v, want %d", in, got, want)
		}
	}
}

func TestQualifiedNamesAndGlobals(t *testing.T) {
	fn := parseFn(t, `unsigned f(unsigned Kind) {
  switch (Kind) {
  case RISCV::fixup_riscv_hi20:
    return ELF::R_RISCV_HI20;
  default:
    return ELF::R_RISCV_NONE;
  }
}`)
	env := NewEnv()
	env.Qualified["RISCV::fixup_riscv_hi20"] = int64(128)
	env.Qualified["ELF::R_RISCV_HI20"] = int64(26)
	env.Qualified["ELF::R_RISCV_NONE"] = int64(0)
	got, err := Call(fn, env, map[string]any{"Kind": int64(128)})
	if err != nil {
		t.Fatal(err)
	}
	if got != int64(26) {
		t.Errorf("got %v", got)
	}
}

func TestObjectsAndMethods(t *testing.T) {
	fn := parseFn(t, `unsigned f(const MCOperand &MO) {
  if (MO.isReg()) {
    return MO.getReg() - 100;
  }
  if (MO.isImm()) {
    return static_cast<unsigned>(MO.getImm());
  }
  llvm_unreachable("bad operand");
}`)
	reg := NewObject("MO").Const("isReg", true).Const("isImm", false).Const("getReg", int64(105))
	got, err := Call(fn, NewEnv(), map[string]any{"MO": reg})
	if err != nil {
		t.Fatal(err)
	}
	if got != int64(5) {
		t.Errorf("reg path: %v", got)
	}
	imm := NewObject("MO").Const("isReg", false).Const("isImm", true).Const("getImm", int64(42))
	got, err = Call(fn, NewEnv(), map[string]any{"MO": imm})
	if err != nil || got != int64(42) {
		t.Errorf("imm path: %v %v", got, err)
	}
	bad := NewObject("MO").Const("isReg", false).Const("isImm", false)
	_, err = Call(fn, NewEnv(), map[string]any{"MO": bad})
	var fatal Fatal
	if !errors.As(err, &fatal) {
		t.Errorf("expected Fatal, got %v", err)
	}
}

func TestForLoopAndEffects(t *testing.T) {
	fn := parseFn(t, `void emit(raw_ostream &OS, unsigned Bits, unsigned Size) {
  for (unsigned i = 0; i != Size; ++i) {
    OS.write((Bits >> (i * 8)) & 255);
  }
}`)
	var bytes []int64
	os := NewObject("OS").On("write", func(args []any) (any, error) {
		bytes = append(bytes, args[0].(int64))
		return nil, nil
	})
	_, err := Call(fn, NewEnv(), map[string]any{"OS": os, "Bits": int64(0x01020304), "Size": int64(4)})
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{4, 3, 2, 1}
	for i := range want {
		if bytes[i] != want[i] {
			t.Fatalf("bytes = %v", bytes)
		}
	}
}

func TestWhileAndCompoundAssign(t *testing.T) {
	fn := parseFn(t, `int f(int n) {
  int total = 0;
  while (n > 0) {
    total += n;
    n--;
  }
  return total;
}`)
	got, err := Call(fn, NewEnv(), map[string]any{"n": int64(4)})
	if err != nil || got != int64(10) {
		t.Errorf("got %v, %v", got, err)
	}
}

func TestStringComparison(t *testing.T) {
	fn := parseFn(t, `unsigned match(StringRef Name) {
  if (Name == "sp") {
    return 2;
  }
  if (Name != "fp") {
    return 0;
  }
  return 8;
}`)
	for name, want := range map[string]int64{"sp": 2, "fp": 8, "xx": 0} {
		got, err := Call(fn, NewEnv(), map[string]any{"Name": name})
		if err != nil || got != want {
			t.Errorf("match(%q) = %v, %v", name, got, err)
		}
	}
}

func TestFreeFunctions(t *testing.T) {
	fn := parseFn(t, `int f(unsigned Imm) { return signExtend(Imm, 12); }`)
	env := NewEnv()
	env.Funcs["signExtend"] = func(args []any) (any, error) {
		v := args[0].(int64)
		bits := args[1].(int64)
		shift := 64 - uint(bits)
		return (v << shift) >> shift, nil
	}
	got, err := Call(fn, env, map[string]any{"Imm": int64(0xFFF)})
	if err != nil || got != int64(-1) {
		t.Errorf("got %v, %v", got, err)
	}
}

func TestTernaryShortCircuitUnary(t *testing.T) {
	fn := parseFn(t, `int f(int a, int b) {
  int r = a > 0 ? a : -a;
  if (a > 0 && b / a > 1) {
    r++;
  }
  if (!(b == 0) || a == 0) {
    r = r + 1;
  }
  return r;
}`)
	got, err := Call(fn, NewEnv(), map[string]any{"a": int64(-3), "b": int64(5)})
	if err != nil {
		t.Fatal(err)
	}
	if got != int64(4) { // |-3| = 3; && short-circuits; b!=0 so +1
		t.Errorf("got %v", got)
	}
}

func TestInfiniteLoopGuard(t *testing.T) {
	fn := parseFn(t, `int f() { while (true) { } return 0; }`)
	env := NewEnv()
	env.MaxSteps = 1000
	_, err := Call(fn, env, nil)
	var re RuntimeError
	if !errors.As(err, &re) {
		t.Errorf("expected RuntimeError, got %v", err)
	}
}

func TestUnknownIdentifierError(t *testing.T) {
	fn := parseFn(t, `int f() { return Mystery; }`)
	_, err := Call(fn, NewEnv(), nil)
	var re RuntimeError
	if !errors.As(err, &re) {
		t.Errorf("expected RuntimeError, got %v", err)
	}
}

func TestBareEnumFallbackForQualified(t *testing.T) {
	fn := parseFn(t, `int f() { return X::Success; }`)
	env := NewEnv()
	env.Globals["Success"] = int64(3)
	got, err := Call(fn, env, nil)
	if err != nil || got != int64(3) {
		t.Errorf("got %v, %v", got, err)
	}
}

func TestVoidReturn(t *testing.T) {
	fn := parseFn(t, `void f(raw_ostream &OS, int x) {
  if (x == 0) {
    return;
  }
  OS.write(x);
}`)
	var wrote bool
	os := NewObject("OS").On("write", func([]any) (any, error) { wrote = true; return nil, nil })
	if _, err := Call(fn, NewEnv(), map[string]any{"OS": os, "x": int64(0)}); err != nil {
		t.Fatal(err)
	}
	if wrote {
		t.Error("early return ignored")
	}
}

func TestShiftsAndMasks(t *testing.T) {
	fn := parseFn(t, `unsigned f(unsigned Value) { return (Value + 2048) >> 12; }`)
	got, err := Call(fn, NewEnv(), map[string]any{"Value": int64(0x12345678)})
	if err != nil {
		t.Fatal(err)
	}
	want := (int64(0x12345678) + 2048) >> 12
	if got != want {
		t.Errorf("got %v want %v", got, want)
	}
}

func TestMethodChaining(t *testing.T) {
	fn := parseFn(t, `unsigned f(const MCInst &MI) { return MI.getOperand(1).getReg(); }`)
	op := NewObject("MCOperand").Const("getReg", int64(7))
	mi := NewObject("MCInst").On("getOperand", func(args []any) (any, error) {
		if args[0] != int64(1) {
			t.Errorf("getOperand arg = %v", args[0])
		}
		return op, nil
	})
	got, err := Call(fn, NewEnv(), map[string]any{"MI": mi})
	if err != nil || got != int64(7) {
		t.Errorf("got %v, %v", got, err)
	}
}
