package interp

import (
	"strconv"
	"strings"

	"vega/internal/cpp"
)

// eval evaluates an expression node.
func (f *frame) eval(e *cpp.Node) (any, error) {
	if err := f.tick(); err != nil {
		return nil, err
	}
	switch e.Kind {
	case cpp.KindNumber:
		return parseNumber(e.Value)
	case cpp.KindString:
		return unquote(e.Value), nil
	case cpp.KindChar:
		s := e.Value
		if len(s) >= 3 {
			return int64(s[1]), nil
		}
		return int64(0), nil
	case cpp.KindIdent:
		return f.lookup(e.Value)
	case cpp.KindQualified:
		if v, ok := f.env.Qualified[e.Value]; ok {
			return v, nil
		}
		// Fall back to the last component as a global (enum members are
		// often usable unqualified).
		parts := strings.Split(e.Value, "::")
		if v, ok := f.env.Globals[parts[len(parts)-1]]; ok {
			return v, nil
		}
		return nil, errf("unknown qualified name %q", e.Value)
	case cpp.KindBinary:
		return f.evalBinary(e)
	case cpp.KindUnary:
		return f.evalUnary(e)
	case cpp.KindPostfix:
		return f.evalIncDec(e.Children[0], e.Value, false)
	case cpp.KindAssign:
		return f.evalAssign(e)
	case cpp.KindTernary:
		cond, err := f.evalBool(e.Children[0])
		if err != nil {
			return nil, err
		}
		if cond {
			return f.eval(e.Children[1])
		}
		return f.eval(e.Children[2])
	case cpp.KindCall:
		return f.evalCall(e)
	case cpp.KindMember:
		base, err := f.eval(e.Children[0])
		if err != nil {
			return nil, err
		}
		obj, ok := base.(*Object)
		if !ok {
			return nil, errf("member access on non-object")
		}
		if v, ok := obj.Fields[e.Children[1].Value]; ok {
			return v, nil
		}
		return nil, errf("object %s has no field %q", obj.Name, e.Children[1].Value)
	case cpp.KindCast:
		return f.eval(e.Children[1])
	case cpp.KindIndex:
		return nil, errf("array indexing unsupported")
	default:
		return nil, errf("cannot evaluate %v", e.Kind)
	}
}

func parseNumber(s string) (any, error) {
	s = strings.TrimRight(s, "uUlLfF")
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		v, err := strconv.ParseInt(s[2:], 16, 64)
		if err != nil {
			return nil, errf("bad hex literal %q", s)
		}
		return v, nil
	}
	if strings.HasPrefix(s, "0b") || strings.HasPrefix(s, "0B") {
		v, err := strconv.ParseInt(s[2:], 2, 64)
		if err != nil {
			return nil, errf("bad binary literal %q", s)
		}
		return v, nil
	}
	if strings.Contains(s, ".") {
		// The backend subset treats floats as ints of their truncation.
		fv, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return nil, errf("bad float literal %q", s)
		}
		return int64(fv), nil
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return nil, errf("bad literal %q", s)
	}
	return v, nil
}

func (f *frame) lookup(name string) (any, error) {
	if v, ok := f.vars[name]; ok {
		return v, nil
	}
	switch name {
	case "true":
		return true, nil
	case "false":
		return false, nil
	case "nullptr":
		return nil, nil
	}
	if v, ok := f.env.Globals[name]; ok {
		return v, nil
	}
	return nil, errf("unknown identifier %q", name)
}

func (f *frame) evalBool(e *cpp.Node) (bool, error) {
	v, err := f.eval(e)
	if err != nil {
		return false, err
	}
	b, ok := toBool(v)
	if !ok {
		return false, errf("non-boolean condition")
	}
	return b, nil
}

func (f *frame) evalBinary(e *cpp.Node) (any, error) {
	op := e.Value
	// Short-circuit operators first.
	if op == "&&" || op == "||" {
		l, err := f.evalBool(e.Children[0])
		if err != nil {
			return nil, err
		}
		if op == "&&" && !l {
			return false, nil
		}
		if op == "||" && l {
			return true, nil
		}
		return f.evalBool(e.Children[1])
	}
	l, err := f.eval(e.Children[0])
	if err != nil {
		return nil, err
	}
	r, err := f.eval(e.Children[1])
	if err != nil {
		return nil, err
	}
	// String equality.
	if ls, ok := l.(string); ok {
		if rs, ok2 := r.(string); ok2 {
			switch op {
			case "==":
				return ls == rs, nil
			case "!=":
				return ls != rs, nil
			case "+":
				return ls + rs, nil
			}
			return nil, errf("unsupported string operator %q", op)
		}
	}
	li, lok := toInt(l)
	ri, rok := toInt(r)
	if !lok || !rok {
		switch op {
		case "==":
			return equalValues(l, r), nil
		case "!=":
			return !equalValues(l, r), nil
		}
		return nil, errf("non-integer operands for %q", op)
	}
	switch op {
	case "+":
		return li + ri, nil
	case "-":
		return li - ri, nil
	case "*":
		return li * ri, nil
	case "/":
		if ri == 0 {
			return nil, Fatal{Msg: "division by zero"}
		}
		return li / ri, nil
	case "%":
		if ri == 0 {
			return nil, Fatal{Msg: "modulo by zero"}
		}
		return li % ri, nil
	case "<<":
		return li << uint(ri&63), nil
	case ">>":
		return li >> uint(ri&63), nil
	case "&":
		return li & ri, nil
	case "|":
		return li | ri, nil
	case "^":
		return li ^ ri, nil
	case "==":
		return li == ri, nil
	case "!=":
		return li != ri, nil
	case "<":
		return li < ri, nil
	case ">":
		return li > ri, nil
	case "<=":
		return li <= ri, nil
	case ">=":
		return li >= ri, nil
	}
	return nil, errf("unknown operator %q", op)
}

func (f *frame) evalUnary(e *cpp.Node) (any, error) {
	if e.Value == "++" || e.Value == "--" {
		return f.evalIncDec(e.Children[0], e.Value, true)
	}
	v, err := f.eval(e.Children[0])
	if err != nil {
		return nil, err
	}
	switch e.Value {
	case "!":
		b, ok := toBool(v)
		if !ok {
			return nil, errf("! on non-boolean")
		}
		return !b, nil
	case "-":
		i, ok := toInt(v)
		if !ok {
			return nil, errf("- on non-integer")
		}
		return -i, nil
	case "+":
		return v, nil
	case "~":
		i, ok := toInt(v)
		if !ok {
			return nil, errf("~ on non-integer")
		}
		return ^i, nil
	case "*", "&":
		// Pointers degenerate to their referents in the subset.
		return v, nil
	case "sizeof":
		return int64(4), nil
	}
	return nil, errf("unknown unary operator %q", e.Value)
}

// evalIncDec handles ++x / x++ / --x / x--; pre selects the returned value.
func (f *frame) evalIncDec(target *cpp.Node, op string, pre bool) (any, error) {
	if target.Kind != cpp.KindIdent {
		return nil, errf("++/-- on non-variable")
	}
	cur, err := f.lookup(target.Value)
	if err != nil {
		return nil, err
	}
	i, ok := toInt(cur)
	if !ok {
		return nil, errf("++/-- on non-integer")
	}
	next := i + 1
	if strings.HasPrefix(op, "--") || op == "--" {
		next = i - 1
	}
	f.vars[target.Value] = next
	if pre {
		return next, nil
	}
	return i, nil
}

func (f *frame) evalAssign(e *cpp.Node) (any, error) {
	lhs := e.Children[0]
	if lhs.Kind != cpp.KindIdent {
		return nil, errf("assignment to non-variable")
	}
	rhs, err := f.eval(e.Children[1])
	if err != nil {
		return nil, err
	}
	if e.Value == "=" {
		f.vars[lhs.Value] = rhs
		return rhs, nil
	}
	cur, err := f.lookup(lhs.Value)
	if err != nil {
		return nil, err
	}
	li, lok := toInt(cur)
	ri, rok := toInt(rhs)
	if !lok || !rok {
		return nil, errf("compound assignment on non-integers")
	}
	var v int64
	switch e.Value {
	case "+=":
		v = li + ri
	case "-=":
		v = li - ri
	case "*=":
		v = li * ri
	case "/=":
		if ri == 0 {
			return nil, Fatal{Msg: "division by zero"}
		}
		v = li / ri
	case "%=":
		if ri == 0 {
			return nil, Fatal{Msg: "modulo by zero"}
		}
		v = li % ri
	case "&=":
		v = li & ri
	case "|=":
		v = li | ri
	case "^=":
		v = li ^ ri
	case "<<=":
		v = li << uint(ri&63)
	case ">>=":
		v = li >> uint(ri&63)
	default:
		return nil, errf("unknown assignment %q", e.Value)
	}
	f.vars[lhs.Value] = v
	return v, nil
}

func (f *frame) evalCall(e *cpp.Node) (any, error) {
	callee := e.Children[0]
	args := make([]any, 0, len(e.Children)-1)
	for _, a := range e.Children[1:] {
		v, err := f.eval(a)
		if err != nil {
			return nil, err
		}
		args = append(args, v)
	}
	switch callee.Kind {
	case cpp.KindIdent:
		name := callee.Value
		switch name {
		case "report_fatal_error", "llvm_unreachable":
			msg := ""
			if len(args) > 0 {
				if s, ok := args[0].(string); ok {
					msg = s
				}
			}
			return nil, Fatal{Msg: msg}
		}
		if fn, ok := f.env.Funcs[name]; ok {
			return fn(args)
		}
		return nil, errf("unknown function %q", name)
	case cpp.KindMember:
		base, err := f.eval(callee.Children[0])
		if err != nil {
			return nil, err
		}
		obj, ok := base.(*Object)
		if !ok {
			return nil, errf("method call on non-object")
		}
		mname := callee.Children[1].Value
		m, ok := obj.Methods[mname]
		if !ok {
			return nil, errf("object %s has no method %q", obj.Name, mname)
		}
		return m(args)
	case cpp.KindQualified:
		// Qualified free function, e.g. Helper::run — resolve by the last
		// component.
		parts := strings.Split(callee.Value, "::")
		if fn, ok := f.env.Funcs[parts[len(parts)-1]]; ok {
			return fn(args)
		}
		return nil, errf("unknown function %q", callee.Value)
	default:
		return nil, errf("cannot call %v", callee.Kind)
	}
}
