// Package interp executes functions written in the C++ subset of
// internal/cpp. It is the regression-test substrate: the paper's pass@1
// substitutes a generated function into the compiler and runs LLVM's
// regression suites; here both the generated function and the reference
// run side by side in this interpreter over input grids, and observable
// behaviour (return values, emitted bytes, collected effects, aborts) is
// compared.
//
// Values are Go values: int64, bool, string, and *Object for the stub
// objects (MCInst, operands, streams) the harness supplies.
package interp

import (
	"fmt"
	"strings"

	"vega/internal/cpp"
)

// Object is a stub C++ object: callable methods plus mutable fields.
type Object struct {
	Name    string
	Methods map[string]func(args []any) (any, error)
	Fields  map[string]any
}

// NewObject allocates a named stub object.
func NewObject(name string) *Object {
	return &Object{
		Name:    name,
		Methods: make(map[string]func(args []any) (any, error)),
		Fields:  make(map[string]any),
	}
}

// On registers a method.
func (o *Object) On(name string, fn func(args []any) (any, error)) *Object {
	o.Methods[name] = fn
	return o
}

// Const registers a zero-argument method returning a fixed value.
func (o *Object) Const(name string, v any) *Object {
	return o.On(name, func([]any) (any, error) { return v, nil })
}

// Env is the execution environment of one call.
type Env struct {
	// Globals resolves bare identifiers: enum members (FK_Data_4,
	// Success), feature-bit names, objects passed by the harness.
	Globals map[string]any
	// Qualified resolves "NS::member" names to values.
	Qualified map[string]any
	// Funcs resolves free function calls (report_fatal_error, helpers).
	Funcs map[string]func(args []any) (any, error)
	// MaxSteps bounds execution; 0 means the default (1e6).
	MaxSteps int
}

// NewEnv allocates an empty environment.
func NewEnv() *Env {
	return &Env{
		Globals:   make(map[string]any),
		Qualified: make(map[string]any),
		Funcs:     make(map[string]func(args []any) (any, error)),
	}
}

// Fatal is the error produced by report_fatal_error / llvm_unreachable —
// an observable outcome, distinct from interpreter failures.
type Fatal struct{ Msg string }

func (f Fatal) Error() string { return "fatal: " + f.Msg }

// RuntimeError reports genuine interpretation failures (unknown names,
// type confusion) — the generated code did something inexplicable.
type RuntimeError struct{ Msg string }

func (e RuntimeError) Error() string { return "interp: " + e.Msg }

func errf(format string, args ...any) error {
	return RuntimeError{Msg: fmt.Sprintf(format, args...)}
}

type frame struct {
	env   *Env
	vars  map[string]any
	steps int
	max   int
}

type signal int

const (
	sigNone signal = iota
	sigReturn
	sigBreak
	sigContinue
)

// Call executes a parsed function with named arguments. It returns the
// function's return value (nil for void). A Fatal error reflects
// deliberate aborts in the interpreted code.
func Call(fn *cpp.Node, env *Env, args map[string]any) (any, error) {
	if fn == nil || fn.Kind != cpp.KindFunction {
		return nil, errf("not a function")
	}
	f := &frame{env: env, vars: make(map[string]any), max: env.MaxSteps}
	if f.max == 0 {
		f.max = 1_000_000
	}
	params := fn.Children[1]
	for _, p := range params.Children {
		if p.Value == "" {
			continue
		}
		if v, ok := args[p.Value]; ok {
			f.vars[p.Value] = v
		} else {
			f.vars[p.Value] = int64(0)
		}
	}
	body := fn.Children[2]
	var ret any
	sig, err := f.execBlock(body, &ret)
	if err != nil {
		return nil, err
	}
	if sig == sigReturn {
		return ret, nil
	}
	return nil, nil
}

func (f *frame) tick() error {
	f.steps++
	if f.steps > f.max {
		return errf("step limit exceeded (infinite loop?)")
	}
	return nil
}

func (f *frame) execBlock(blk *cpp.Node, ret *any) (signal, error) {
	for _, st := range blk.Children {
		sig, err := f.execStmt(st, ret)
		if err != nil || sig != sigNone {
			return sig, err
		}
	}
	return sigNone, nil
}

func (f *frame) execStmt(st *cpp.Node, ret *any) (signal, error) {
	if err := f.tick(); err != nil {
		return sigNone, err
	}
	switch st.Kind {
	case cpp.KindBlock:
		return f.execBlock(st, ret)
	case cpp.KindEmpty:
		return sigNone, nil
	case cpp.KindDecl:
		for _, d := range st.Children[1:] {
			switch {
			case d.Kind == cpp.KindIdent:
				f.vars[d.Value] = int64(0)
			case d.Kind == cpp.KindAssign:
				v, err := f.eval(d.Children[1])
				if err != nil {
					return sigNone, err
				}
				f.vars[d.Children[0].Value] = v
			}
		}
		return sigNone, nil
	case cpp.KindExprStmt:
		_, err := f.eval(st.Children[0])
		return sigNone, err
	case cpp.KindReturn:
		if len(st.Children) == 1 {
			v, err := f.eval(st.Children[0])
			if err != nil {
				return sigNone, err
			}
			*ret = v
		} else {
			*ret = nil
		}
		return sigReturn, nil
	case cpp.KindBreak:
		return sigBreak, nil
	case cpp.KindContinue:
		return sigContinue, nil
	case cpp.KindIf:
		cond, err := f.evalBool(st.Children[0])
		if err != nil {
			return sigNone, err
		}
		if cond {
			return f.execStmt(st.Children[1], ret)
		}
		if len(st.Children) == 3 {
			return f.execStmt(st.Children[2], ret)
		}
		return sigNone, nil
	case cpp.KindSwitch:
		return f.execSwitch(st, ret)
	case cpp.KindWhile:
		for {
			if err := f.tick(); err != nil {
				return sigNone, err
			}
			cond, err := f.evalBool(st.Children[0])
			if err != nil {
				return sigNone, err
			}
			if !cond {
				return sigNone, nil
			}
			sig, err := f.execStmt(st.Children[1], ret)
			if err != nil {
				return sigNone, err
			}
			if sig == sigBreak {
				return sigNone, nil
			}
			if sig == sigReturn {
				return sigReturn, nil
			}
		}
	case cpp.KindDoWhile:
		for {
			if err := f.tick(); err != nil {
				return sigNone, err
			}
			sig, err := f.execStmt(st.Children[0], ret)
			if err != nil {
				return sigNone, err
			}
			if sig == sigBreak {
				return sigNone, nil
			}
			if sig == sigReturn {
				return sigReturn, nil
			}
			cond, err := f.evalBool(st.Children[1])
			if err != nil {
				return sigNone, err
			}
			if !cond {
				return sigNone, nil
			}
		}
	case cpp.KindFor:
		if st.Children[0].Kind != cpp.KindEmpty {
			if sig, err := f.execStmt(st.Children[0], ret); err != nil || sig != sigNone {
				return sig, err
			}
		}
		for {
			if err := f.tick(); err != nil {
				return sigNone, err
			}
			if st.Children[1].Kind != cpp.KindEmpty {
				cond, err := f.evalBool(st.Children[1])
				if err != nil {
					return sigNone, err
				}
				if !cond {
					return sigNone, nil
				}
			}
			sig, err := f.execStmt(st.Children[3], ret)
			if err != nil {
				return sigNone, err
			}
			if sig == sigBreak {
				return sigNone, nil
			}
			if sig == sigReturn {
				return sigReturn, nil
			}
			if st.Children[2].Kind != cpp.KindEmpty {
				if _, err := f.eval(st.Children[2]); err != nil {
					return sigNone, err
				}
			}
		}
	default:
		return sigNone, errf("cannot execute %v statement", st.Kind)
	}
}

// execSwitch evaluates the discriminant, finds the matching arm (or
// default), and executes arms from there with C fall-through semantics.
func (f *frame) execSwitch(st *cpp.Node, ret *any) (signal, error) {
	discr, err := f.eval(st.Children[0])
	if err != nil {
		return sigNone, err
	}
	arms := st.Children[1].Children
	match := -1
	deflt := -1
	for i, arm := range arms {
		if arm.Kind == cpp.KindDefault {
			deflt = i
			continue
		}
		label, err := f.eval(arm.Children[0])
		if err != nil {
			return sigNone, err
		}
		if equalValues(discr, label) {
			match = i
			break
		}
	}
	if match == -1 {
		match = deflt
	}
	if match == -1 {
		return sigNone, nil
	}
	for i := match; i < len(arms); i++ {
		arm := arms[i]
		stmts := arm.Children
		if arm.Kind == cpp.KindCase {
			stmts = arm.Children[1:]
		}
		for _, s := range stmts {
			sig, err := f.execStmt(s, ret)
			if err != nil {
				return sigNone, err
			}
			switch sig {
			case sigBreak:
				return sigNone, nil
			case sigReturn:
				return sigReturn, nil
			case sigContinue:
				return sigContinue, nil
			}
		}
	}
	return sigNone, nil
}

func equalValues(a, b any) bool {
	ai, aok := toInt(a)
	bi, bok := toInt(b)
	if aok && bok {
		return ai == bi
	}
	as, aok2 := a.(string)
	bs, bok2 := b.(string)
	if aok2 && bok2 {
		return as == bs
	}
	return a == b
}

func toInt(v any) (int64, bool) {
	switch x := v.(type) {
	case int64:
		return x, true
	case int:
		return int64(x), true
	case bool:
		if x {
			return 1, true
		}
		return 0, true
	}
	return 0, false
}

func toBool(v any) (bool, bool) {
	switch x := v.(type) {
	case bool:
		return x, true
	case int64:
		return x != 0, true
	case int:
		return x != 0, true
	case string:
		return x != "", true
	case *Object:
		return x != nil, true
	case nil:
		return false, true
	}
	return false, false
}

func unquote(s string) string {
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		inner := s[1 : len(s)-1]
		inner = strings.ReplaceAll(inner, `\"`, `"`)
		inner = strings.ReplaceAll(inner, `\\`, `\`)
		return inner
	}
	return s
}
