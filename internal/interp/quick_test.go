package interp

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"vega/internal/cpp"
)

// Property: the interpreter agrees with Go's own integer semantics on
// randomly generated arithmetic expressions over two variables.

type arithExpr struct {
	src  string
	eval func(a, b int64) (int64, bool) // ok=false when the Go side divides by zero
}

func genArith(rng *rand.Rand, depth int) arithExpr {
	if depth <= 0 || rng.Intn(3) == 0 {
		switch rng.Intn(3) {
		case 0:
			v := int64(rng.Intn(21) - 10)
			return arithExpr{src: fmt.Sprintf("(%d)", v), eval: func(a, b int64) (int64, bool) { return v, true }}
		case 1:
			return arithExpr{src: "a", eval: func(a, b int64) (int64, bool) { return a, true }}
		default:
			return arithExpr{src: "b", eval: func(a, b int64) (int64, bool) { return b, true }}
		}
	}
	l := genArith(rng, depth-1)
	r := genArith(rng, depth-1)
	ops := []string{"+", "-", "*", "&", "|", "^"}
	op := ops[rng.Intn(len(ops))]
	return arithExpr{
		src: fmt.Sprintf("(%s %s %s)", l.src, op, r.src),
		eval: func(a, b int64) (int64, bool) {
			lv, ok1 := l.eval(a, b)
			rv, ok2 := r.eval(a, b)
			if !ok1 || !ok2 {
				return 0, false
			}
			switch op {
			case "+":
				return lv + rv, true
			case "-":
				return lv - rv, true
			case "*":
				return lv * rv, true
			case "&":
				return lv & rv, true
			case "|":
				return lv | rv, true
			case "^":
				return lv ^ rv, true
			}
			return 0, false
		},
	}
}

func TestInterpMatchesGoSemanticsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(a, b int16) bool {
		e := genArith(rng, 3)
		want, ok := e.eval(int64(a), int64(b))
		if !ok {
			return true
		}
		fn, err := cpp.ParseFunction(fmt.Sprintf("int f(int a, int b) { return %s; }", e.src))
		if err != nil {
			t.Fatalf("parse %s: %v", e.src, err)
		}
		got, err := Call(fn, NewEnv(), map[string]any{"a": int64(a), "b": int64(b)})
		if err != nil {
			t.Fatalf("eval %s: %v", e.src, err)
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// Property: comparison chains agree with Go.
func TestInterpComparisonsProperty(t *testing.T) {
	ops := []string{"==", "!=", "<", "<=", ">", ">="}
	f := func(a, b int8, opIdx uint8) bool {
		op := ops[int(opIdx)%len(ops)]
		fn, err := cpp.ParseFunction(fmt.Sprintf("bool f(int a, int b) { return a %s b; }", op))
		if err != nil {
			return false
		}
		got, err := Call(fn, NewEnv(), map[string]any{"a": int64(a), "b": int64(b)})
		if err != nil {
			return false
		}
		var want bool
		switch op {
		case "==":
			want = a == b
		case "!=":
			want = a != b
		case "<":
			want = a < b
		case "<=":
			want = a <= b
		case ">":
			want = a > b
		case ">=":
			want = a >= b
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
