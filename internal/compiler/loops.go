package compiler

// Loop lowering: counted For loops are where the -O3 pipeline earns its
// keep — hardware loops on RI5CY-style targets, 4-wide vectorization on
// SIMD targets, and plain compare-and-branch otherwise.

// forLoop lowers a counted loop.
func (c *cg) forLoop(st For) error {
	if c.opt >= 3 {
		if ok, err := c.tryVectorize(st); ok || err != nil {
			return err
		}
		if ok, err := c.tryHardwareLoop(st); ok || err != nil {
			return err
		}
	}
	// Generic lowering: i = From; while (i < To) { Body; i = i + 1 }.
	if err := c.stmt(Assign{Name: st.Var, E: st.From}); err != nil {
		return err
	}
	top := len(c.out)
	if err := c.condBranch(Bin{Op: "<", L: Var{Name: st.Var}, R: st.To}, false); err != nil {
		return err
	}
	jExit := len(c.out) - 1
	if err := c.stmts(st.Body); err != nil {
		return err
	}
	if err := c.stmt(Assign{Name: st.Var, E: Bin{Op: "+", L: Var{Name: st.Var}, R: Const{Value: 1}}}); err != nil {
		return err
	}
	c.emit(MInst{Kind: KBr, Opcode: c.tb.BrUnc, Target: top})
	c.out[jExit].Target = len(c.out)
	return nil
}

// tryHardwareLoop emits a zero-overhead loop when the target has one and
// the body is branch- and call-free.
func (c *cg) tryHardwareLoop(st For) (bool, error) {
	if c.tb.HWLoopStart == 0 || !simpleBody(st.Body) {
		return false, nil
	}
	// count = To - From; skip when empty.
	if err := c.expr(Bin{Op: "-", L: st.To, R: st.From}, regTmpA); err != nil {
		return false, err
	}
	c.emit(MInst{Kind: KMovImm, Opcode: c.tb.MoveImm, Dst: regTmpB, Imm: 0})
	jSkip := c.emit(MInst{Kind: KBrCond, Opcode: c.tb.BrEq, Op: "<=", A: regTmpA, B: regTmpB})
	if err := c.stmt(Assign{Name: st.Var, E: st.From}); err != nil {
		return false, err
	}
	loop := c.emit(MInst{Kind: KLoopStart, Opcode: c.tb.HWLoopStart, A: regTmpA})
	if err := c.stmts(st.Body); err != nil {
		return false, err
	}
	if err := c.stmt(Assign{Name: st.Var, E: Bin{Op: "+", L: Var{Name: st.Var}, R: Const{Value: 1}}}); err != nil {
		return false, err
	}
	c.out[loop].Target = len(c.out) // loop body ends here
	c.out[jSkip].Target = len(c.out)
	return true, nil
}

// tryVectorize recognizes dst[i] = a[i] op b[i] over the loop variable
// with op in {+,-,^,&,|} and emits 4-wide SIMD operations plus a scalar
// remainder loop.
func (c *cg) tryVectorize(st For) (bool, error) {
	if c.tb.SIMDAdd == 0 || len(st.Body) != 1 {
		return false, nil
	}
	store, ok := st.Body[0].(Store)
	if !ok {
		return false, nil
	}
	if v, ok := store.Index.(Var); !ok || v.Name != st.Var {
		return false, nil
	}
	bin, ok := store.Value.(Bin)
	if !ok {
		return false, nil
	}
	switch bin.Op {
	case "+", "-", "^", "&", "|":
	default:
		return false, nil
	}
	la, ok := bin.L.(Load)
	if !ok {
		return false, nil
	}
	lb, ok := bin.R.(Load)
	if !ok {
		return false, nil
	}
	if v, ok := la.Index.(Var); !ok || v.Name != st.Var {
		return false, nil
	}
	if v, ok := lb.Index.(Var); !ok || v.Name != st.Var {
		return false, nil
	}

	// i = From; vec = To - (To-From)%4;
	// while (i < vec) { simd; i += 4 }  then scalar remainder.
	if err := c.stmt(Assign{Name: st.Var, E: st.From}); err != nil {
		return false, err
	}
	if err := c.expr(Bin{Op: "-", L: st.To, R: Bin{Op: "%", L: Bin{Op: "-", L: st.To, R: st.From}, R: Const{Value: 4}}}, regTmpB); err != nil {
		return false, err
	}
	vecEnd := regVecEnd // dedicated abstract register holding the vector bound
	c.emit(MInst{Kind: KMov, Opcode: c.tb.ALUOp["+"], Op: "+", Dst: vecEnd, A: regTmpB})

	top := len(c.out)
	iReg := c.readVar(st.Var, regTmpA)
	jExit := c.emit(MInst{Kind: KBrCond, Opcode: c.tb.BrNe, Op: ">=", A: iReg, B: vecEnd})
	c.emit(MInst{
		Kind: KSIMD, Opcode: c.tb.SIMDAdd, Op: bin.Op,
		A: iReg, SymDst: store.Array, Sym: la.Array, Sym2: lb.Array,
	})
	if err := c.stmt(Assign{Name: st.Var, E: Bin{Op: "+", L: Var{Name: st.Var}, R: Const{Value: 4}}}); err != nil {
		return false, err
	}
	c.emit(MInst{Kind: KBr, Opcode: c.tb.BrUnc, Target: top})
	c.out[jExit].Target = len(c.out)

	// Scalar remainder.
	remTop := len(c.out)
	iReg = c.readVar(st.Var, regTmpA)
	if err := c.expr(st.To, regTmpB); err != nil {
		return false, err
	}
	jDone := c.emit(MInst{Kind: KBrCond, Opcode: c.tb.BrNe, Op: ">=", A: iReg, B: regTmpB})
	if err := c.stmt(store); err != nil {
		return false, err
	}
	if err := c.stmt(Assign{Name: st.Var, E: Bin{Op: "+", L: Var{Name: st.Var}, R: Const{Value: 1}}}); err != nil {
		return false, err
	}
	c.emit(MInst{Kind: KBr, Opcode: c.tb.BrUnc, Target: remTop})
	c.out[jDone].Target = len(c.out)
	return true, nil
}

// simpleBody reports whether a loop body is free of calls and nested
// control flow (the hardware-loop eligibility rule).
func simpleBody(body []Stmt) bool {
	for _, s := range body {
		switch st := s.(type) {
		case Assign:
			if !simpleExpr(st.E) {
				return false
			}
		case Store:
			if !simpleExpr(st.Index) || !simpleExpr(st.Value) {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func simpleExpr(e Expr) bool {
	switch ex := e.(type) {
	case Const, Var:
		return true
	case Bin:
		return simpleExpr(ex.L) && simpleExpr(ex.R)
	case Load:
		return simpleExpr(ex.Index)
	case CallExpr:
		return false
	}
	return false
}

// --- constant folding (-O3) ---

func foldStmts(body []Stmt) []Stmt {
	out := make([]Stmt, 0, len(body))
	for _, s := range body {
		switch st := s.(type) {
		case Assign:
			out = append(out, Assign{Name: st.Name, E: foldExpr(st.E)})
		case Store:
			out = append(out, Store{Array: st.Array, Index: foldExpr(st.Index), Value: foldExpr(st.Value)})
		case If:
			folded := If{Cond: foldExpr(st.Cond), Then: foldStmts(st.Then), Else: foldStmts(st.Else)}
			if cv, ok := folded.Cond.(Const); ok {
				// Branch folding.
				if cv.Value != 0 {
					out = append(out, folded.Then...)
				} else {
					out = append(out, folded.Else...)
				}
				continue
			}
			out = append(out, folded)
		case For:
			out = append(out, For{Var: st.Var, From: foldExpr(st.From), To: foldExpr(st.To), Body: foldStmts(st.Body)})
		case While:
			out = append(out, While{Cond: foldExpr(st.Cond), Body: foldStmts(st.Body)})
		case Return:
			out = append(out, Return{E: foldExpr(st.E)})
		default:
			out = append(out, s)
		}
	}
	return out
}

func foldExpr(e Expr) Expr {
	b, ok := e.(Bin)
	if !ok {
		switch ex := e.(type) {
		case Load:
			return Load{Array: ex.Array, Index: foldExpr(ex.Index)}
		case CallExpr:
			args := make([]Expr, len(ex.Args))
			for i, a := range ex.Args {
				args[i] = foldExpr(a)
			}
			return CallExpr{Name: ex.Name, Args: args}
		}
		return e
	}
	l, r := foldExpr(b.L), foldExpr(b.R)
	lc, lok := l.(Const)
	rc, rok := r.(Const)
	if lok && rok {
		if v, ok := evalConst(b.Op, lc.Value, rc.Value); ok {
			return Const{Value: v}
		}
	}
	// Identities: x+0, x*1, x-0.
	if rok {
		switch {
		case rc.Value == 0 && (b.Op == "+" || b.Op == "-" || b.Op == "|" || b.Op == "^" || b.Op == "<<" || b.Op == ">>"):
			return l
		case rc.Value == 1 && (b.Op == "*" || b.Op == "/"):
			return l
		}
	}
	return Bin{Op: b.Op, L: l, R: r}
}

func evalConst(op string, a, b int64) (int64, bool) {
	switch op {
	case "+":
		return a + b, true
	case "-":
		return a - b, true
	case "*":
		return a * b, true
	case "/":
		if b == 0 {
			return 0, false
		}
		return a / b, true
	case "%":
		if b == 0 {
			return 0, false
		}
		return a % b, true
	case "&":
		return a & b, true
	case "|":
		return a | b, true
	case "^":
		return a ^ b, true
	case "<<":
		return a << uint(b&63), true
	case ">>":
		return a >> uint(b&63), true
	case "==":
		return boolInt(a == b), true
	case "!=":
		return boolInt(a != b), true
	case "<":
		return boolInt(a < b), true
	case "<=":
		return boolInt(a <= b), true
	case ">":
		return boolInt(a > b), true
	case ">=":
		return boolInt(a >= b), true
	}
	return 0, false
}

func boolInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// powerOfTwo recognizes Bin{*, x, Const(2^k)} and returns k.
func powerOfTwo(b Bin) (int64, bool) {
	if b.Op != "*" {
		return 0, false
	}
	c, ok := b.R.(Const)
	if !ok {
		return 0, false
	}
	v := c.Value
	if v <= 1 || v&(v-1) != 0 {
		return 0, false
	}
	k := int64(0)
	for v > 1 {
		v >>= 1
		k++
	}
	return k, true
}
