package compiler

import "fmt"

// MKind classifies machine instructions.
type MKind int

// Machine instruction kinds.
const (
	KMovImm    MKind = iota // Dst <- Imm
	KMov                    // Dst <- A
	KAlu                    // Dst <- A op B
	KLoad                   // Dst <- mem[Sym + A] or frame slot Imm
	KStore                  // mem[Sym + A] <- B, or frame slot Imm <- B
	KBr                     // goto Target
	KBrCond                 // if (A op B) goto Target
	KCall                   // call Sym, result in r1
	KRet                    // return r1
	KLoopStart              // hardware loop: body [pc+1, Target), count in A
	KSIMD                   // 4-wide elementwise: dstArr[A+i] = aArr[A+i] op bArr[A+i]
)

// MInst is one machine instruction.
type MInst struct {
	Kind   MKind
	Opcode int    // target opcode (drives the cycle model)
	Op     string // source operator carrying the semantics
	Dst    int
	A, B   int
	Imm    int64
	Sym    string // array or callee name
	Sym2   string // second source array for KSIMD
	SymDst string // destination array for KSIMD
	Target int    // branch target / loop end
}

// MFunc is one compiled function.
type MFunc struct {
	Name       string
	NumParams  int
	Code       []MInst
	FrameSlots int
	SavedRegs  []int // callee-saved registers the prologue preserves
}

// Object is a compiled program.
type Object struct {
	Target string
	Opt    int // 0 or 3
	Funcs  map[string]*MFunc
	Arrays map[string]int
	Init   map[string][]int64
}

// StaticSize sums instruction sizes (bytes) over the object.
func (o *Object) StaticSize(tb *Tables) int {
	n := 0
	for _, f := range o.Funcs {
		for _, in := range f.Code {
			if s, ok := tb.Size[in.Opcode]; ok {
				n += s
			} else {
				n += 4
			}
		}
	}
	return n
}

// Register conventions (abstract register numbers, independent of the
// target's own numbering; the Tables only drive opcode/cost selection).
const (
	regRet  = 1 // return value and first scratch
	regTmpA = 2
	regTmpB = 3
	regArg0 = 4 // up to 4 arguments
	numArgs = 4
)

// Compile lowers a program at the given optimization level.
func Compile(p *Program, tb *Tables, opt int) (*Object, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	obj := &Object{
		Target: tb.Target, Opt: opt,
		Funcs:  map[string]*MFunc{},
		Arrays: p.Arrays,
		Init:   p.Init,
	}
	for _, f := range p.Funcs {
		mf, err := compileFunc(f, tb, opt)
		if err != nil {
			return nil, fmt.Errorf("compiler: %s: %w", f.Name, err)
		}
		obj.Funcs[f.Name] = mf
	}
	return obj, nil
}

type cg struct {
	tb        *Tables
	opt       int
	out       []MInst
	slots     map[string]int // variable -> frame slot (O0 or spilled)
	regs      map[string]int // variable -> register (O3)
	pool      []int          // registers available for locals
	nextTmp   int
	tmpDepth  int
	usedSaved map[int]bool
}

// Abstract register map: 1 return/scratch, 2-3 scratch, 4-7 arguments,
// 8-15 reserved (vector bounds), 20-43 locals, 44-63 expression temps.
const (
	regVecEnd  = 8
	regLocal0  = 20
	regTemp0   = 44
	maxTmpDeep = 19
)

// tmpPush allocates an expression-temporary register.
func (c *cg) tmpPush() int {
	r := regTemp0 + c.tmpDepth
	c.tmpDepth++
	if c.tmpDepth > maxTmpDeep {
		panic("compiler: expression too deep")
	}
	return r
}

func (c *cg) tmpPop() { c.tmpDepth-- }

func compileFunc(f *Function, tb *Tables, opt int) (*MFunc, error) {
	c := &cg{
		tb: tb, opt: opt,
		slots:     map[string]int{},
		regs:      map[string]int{},
		usedSaved: map[int]bool{},
	}
	if opt >= 3 {
		// Locals live in callee-saved registers; the prologue cost of
		// saving them is paid only for the ones actually used.
		for i := range tb.CalleeSaved {
			if regLocal0+i >= regTemp0 {
				break
			}
			c.pool = append(c.pool, regLocal0+i)
		}
	}
	for i, p := range f.Params {
		if i >= numArgs {
			return nil, fmt.Errorf("too many parameters")
		}
		if reg := -1; opt >= 3 {
			reg = c.allocReg(p)
			if reg >= 0 {
				c.emit(MInst{Kind: KMov, Opcode: tb.ALUOp["+"], Op: "+", Dst: reg, A: regArg0 + i})
				continue
			}
		}
		slot := c.slot(p)
		c.emit(MInst{Kind: KStore, Opcode: tb.StoreOp, Imm: int64(slot), B: regArg0 + i})
	}
	body := f.Body
	if opt >= 3 {
		body = foldStmts(body)
	}
	if err := c.stmts(body); err != nil {
		return nil, err
	}
	// Implicit return 0.
	c.emit(MInst{Kind: KMovImm, Opcode: tb.MoveImm, Dst: regRet, Imm: 0})
	c.emit(MInst{Kind: KRet, Opcode: tb.BrUnc})

	mf := &MFunc{Name: f.Name, NumParams: len(f.Params), Code: c.out, FrameSlots: len(c.slots) + 8}
	if opt >= 3 {
		for r := range c.usedSaved {
			mf.SavedRegs = append(mf.SavedRegs, r)
		}
	} else {
		// -O0 conservatively saves every callee-saved register.
		for i := range tb.CalleeSaved {
			mf.SavedRegs = append(mf.SavedRegs, regLocal0+i)
		}
	}
	return mf, nil
}

func (c *cg) emit(in MInst) int {
	c.out = append(c.out, in)
	return len(c.out) - 1
}

func (c *cg) slot(name string) int {
	if s, ok := c.slots[name]; ok {
		return s
	}
	s := len(c.slots)
	c.slots[name] = s
	return s
}

func (c *cg) allocReg(name string) int {
	if r, ok := c.regs[name]; ok {
		return r
	}
	if len(c.pool) == 0 {
		return -1 // spill: register-starved target
	}
	r := c.pool[0]
	c.pool = c.pool[1:]
	c.regs[name] = r
	c.usedSaved[r] = true
	return r
}

// readVar loads a variable into a register and returns it.
func (c *cg) readVar(name string, prefer int) int {
	if c.opt >= 3 {
		if r, ok := c.regs[name]; ok {
			return r
		}
		if r := c.allocReg(name); r >= 0 {
			// First touch: materialize from its slot if it ever spilled.
			if s, ok := c.slots[name]; ok {
				c.emit(MInst{Kind: KLoad, Opcode: c.tb.LoadOp, Dst: r, Imm: int64(s)})
			}
			return r
		}
	}
	s := c.slot(name)
	c.emit(MInst{Kind: KLoad, Opcode: c.tb.LoadOp, Dst: prefer, Imm: int64(s)})
	return prefer
}

// writeVar stores a register into a variable.
func (c *cg) writeVar(name string, src int) {
	if c.opt >= 3 {
		if r, ok := c.regs[name]; ok {
			if r != src {
				c.emit(MInst{Kind: KMov, Opcode: c.tb.ALUOp["+"], Op: "+", Dst: r, A: src})
			}
			return
		}
		if r := c.allocReg(name); r >= 0 {
			c.emit(MInst{Kind: KMov, Opcode: c.tb.ALUOp["+"], Op: "+", Dst: r, A: src})
			return
		}
	}
	s := c.slot(name)
	c.emit(MInst{Kind: KStore, Opcode: c.tb.StoreOp, Imm: int64(s), B: src})
}

// expr evaluates e into register dst. At -O0 each intermediate value
// round-trips through a fresh frame slot, which is the naive-lowering tax.
func (c *cg) expr(e Expr, dst int) error {
	switch ex := e.(type) {
	case Const:
		c.emit(MInst{Kind: KMovImm, Opcode: c.tb.MoveImm, Dst: dst, Imm: ex.Value})
	case Var:
		r := c.readVar(ex.Name, dst)
		if r != dst {
			c.emit(MInst{Kind: KMov, Opcode: c.tb.ALUOp["+"], Op: "+", Dst: dst, A: r})
		}
	case Bin:
		// Strength reduction at -O3: multiply by a power of two.
		if c.opt >= 3 {
			if k, ok := powerOfTwo(ex); ok {
				if err := c.expr(ex.L, dst); err != nil {
					return err
				}
				sh := c.tmpPush()
				c.emit(MInst{Kind: KMovImm, Opcode: c.tb.MoveImm, Dst: sh, Imm: k})
				c.emit(MInst{Kind: KAlu, Opcode: c.tb.ALUOp["<<"], Op: "<<", Dst: dst, A: dst, B: sh})
				c.tmpPop()
				return nil
			}
		}
		if err := c.expr(ex.L, dst); err != nil {
			return err
		}
		// Preserve the left value across the right computation: through a
		// frame slot at -O0, through a temp register at -O3.
		if c.opt < 3 {
			slot := c.tempSlot()
			c.emit(MInst{Kind: KStore, Opcode: c.tb.StoreOp, Imm: int64(slot), B: dst})
			if err := c.expr(ex.R, regTmpB); err != nil {
				return err
			}
			c.emit(MInst{Kind: KLoad, Opcode: c.tb.LoadOp, Dst: regTmpA, Imm: int64(slot)})
			c.emit(MInst{Kind: KAlu, Opcode: c.aluOpcode(ex.Op), Op: ex.Op, Dst: dst, A: regTmpA, B: regTmpB})
			return nil
		}
		save := c.tmpPush()
		c.emit(MInst{Kind: KMov, Opcode: c.tb.ALUOp["+"], Op: "+", Dst: save, A: dst})
		rreg := c.tmpPush()
		if err := c.expr(ex.R, rreg); err != nil {
			return err
		}
		c.emit(MInst{Kind: KAlu, Opcode: c.aluOpcode(ex.Op), Op: ex.Op, Dst: dst, A: save, B: rreg})
		c.tmpPop()
		c.tmpPop()
	case Load:
		idxReg := regTmpA
		if c.opt >= 3 {
			idxReg = c.tmpPush()
			defer c.tmpPop()
		}
		if err := c.expr(ex.Index, idxReg); err != nil {
			return err
		}
		c.emit(MInst{Kind: KLoad, Opcode: c.tb.LoadOp, Dst: dst, A: idxReg, Sym: ex.Array})
	case CallExpr:
		if len(ex.Args) > numArgs {
			return fmt.Errorf("too many call arguments")
		}
		// Arguments evaluate into temporaries first so a nested call in a
		// later argument cannot clobber an earlier one.
		var tmps []int
		for _, a := range ex.Args {
			var t int
			if c.opt >= 3 {
				t = c.tmpPush()
			} else {
				t = c.tempSlot()
			}
			tmps = append(tmps, t)
			if c.opt >= 3 {
				if err := c.expr(a, t); err != nil {
					return err
				}
			} else {
				if err := c.expr(a, regRet); err != nil {
					return err
				}
				c.emit(MInst{Kind: KStore, Opcode: c.tb.StoreOp, Imm: int64(t), B: regRet})
			}
		}
		for i, t := range tmps {
			if c.opt >= 3 {
				c.emit(MInst{Kind: KMov, Opcode: c.tb.ALUOp["+"], Op: "+", Dst: regArg0 + i, A: t})
			} else {
				c.emit(MInst{Kind: KLoad, Opcode: c.tb.LoadOp, Dst: regArg0 + i, Imm: int64(t)})
			}
		}
		if c.opt >= 3 {
			for range tmps {
				c.tmpPop()
			}
		}
		c.emit(MInst{Kind: KCall, Opcode: c.tb.CallOp, Sym: ex.Name})
		if dst != regRet {
			c.emit(MInst{Kind: KMov, Opcode: c.tb.ALUOp["+"], Op: "+", Dst: dst, A: regRet})
		}
	default:
		return fmt.Errorf("unknown expression %T", e)
	}
	return nil
}

func (c *cg) aluOpcode(op string) int {
	if oc, ok := c.tb.ALUOp[op]; ok {
		return oc
	}
	return c.tb.ALUOp["+"]
}

func (c *cg) tempSlot() int {
	c.nextTmp++
	return c.slot(fmt.Sprintf("$t%d", c.nextTmp))
}

func (c *cg) stmts(body []Stmt) error {
	for _, s := range body {
		if err := c.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *cg) stmt(s Stmt) error {
	switch st := s.(type) {
	case Assign:
		if err := c.expr(st.E, regRet); err != nil {
			return err
		}
		c.writeVar(st.Name, regRet)
	case Store:
		if c.opt < 3 {
			if err := c.expr(st.Value, regRet); err != nil {
				return err
			}
			slot := c.tempSlot()
			c.emit(MInst{Kind: KStore, Opcode: c.tb.StoreOp, Imm: int64(slot), B: regRet})
			if err := c.expr(st.Index, regTmpA); err != nil {
				return err
			}
			c.emit(MInst{Kind: KLoad, Opcode: c.tb.LoadOp, Dst: regTmpB, Imm: int64(slot)})
			c.emit(MInst{Kind: KStore, Opcode: c.tb.StoreOp, A: regTmpA, B: regTmpB, Sym: st.Array})
			return nil
		}
		val := c.tmpPush()
		if err := c.expr(st.Value, val); err != nil {
			return err
		}
		idx := c.tmpPush()
		if err := c.expr(st.Index, idx); err != nil {
			return err
		}
		c.emit(MInst{Kind: KStore, Opcode: c.tb.StoreOp, A: idx, B: val, Sym: st.Array})
		c.tmpPop()
		c.tmpPop()
	case If:
		if err := c.condBranch(st.Cond, false); err != nil {
			return err
		}
		jFalse := len(c.out) - 1
		if err := c.stmts(st.Then); err != nil {
			return err
		}
		if len(st.Else) > 0 {
			jEnd := c.emit(MInst{Kind: KBr, Opcode: c.tb.BrUnc})
			c.out[jFalse].Target = len(c.out)
			if err := c.stmts(st.Else); err != nil {
				return err
			}
			c.out[jEnd].Target = len(c.out)
		} else {
			c.out[jFalse].Target = len(c.out)
		}
	case For:
		return c.forLoop(st)
	case While:
		top := len(c.out)
		if err := c.condBranch(st.Cond, false); err != nil {
			return err
		}
		jExit := len(c.out) - 1
		if err := c.stmts(st.Body); err != nil {
			return err
		}
		c.emit(MInst{Kind: KBr, Opcode: c.tb.BrUnc, Target: top})
		c.out[jExit].Target = len(c.out)
	case Return:
		if err := c.expr(st.E, regRet); err != nil {
			return err
		}
		c.emit(MInst{Kind: KRet, Opcode: c.tb.BrUnc})
	default:
		return fmt.Errorf("unknown statement %T", s)
	}
	return nil
}

// condBranch emits a branch taken when the condition equals want==true's
// negation — i.e. it branches AWAY when cond is false.
func (c *cg) condBranch(cond Expr, _ bool) error {
	if b, ok := cond.(Bin); ok && isComparison(b.Op) {
		if c.opt < 3 {
			if err := c.expr(b.L, regTmpA); err != nil {
				return err
			}
			slot := c.tempSlot()
			c.emit(MInst{Kind: KStore, Opcode: c.tb.StoreOp, Imm: int64(slot), B: regTmpA})
			if err := c.expr(b.R, regTmpB); err != nil {
				return err
			}
			c.emit(MInst{Kind: KLoad, Opcode: c.tb.LoadOp, Dst: regTmpA, Imm: int64(slot)})
			c.emit(MInst{Kind: KBrCond, Opcode: c.tb.BrNe, Op: negate(b.Op), A: regTmpA, B: regTmpB})
			return nil
		}
		l := c.tmpPush()
		if err := c.expr(b.L, l); err != nil {
			return err
		}
		r := c.tmpPush()
		if err := c.expr(b.R, r); err != nil {
			return err
		}
		c.emit(MInst{Kind: KBrCond, Opcode: c.tb.BrNe, Op: negate(b.Op), A: l, B: r})
		c.tmpPop()
		c.tmpPop()
		return nil
	}
	if err := c.expr(cond, regTmpA); err != nil {
		return err
	}
	c.emit(MInst{Kind: KMovImm, Opcode: c.tb.MoveImm, Dst: regTmpB, Imm: 0})
	c.emit(MInst{Kind: KBrCond, Opcode: c.tb.BrEq, Op: "==", A: regTmpA, B: regTmpB})
	return nil
}

func isComparison(op string) bool {
	switch op {
	case "==", "!=", "<", "<=", ">", ">=":
		return true
	}
	return false
}

func negate(op string) string {
	switch op {
	case "==":
		return "!="
	case "!=":
		return "=="
	case "<":
		return ">="
	case "<=":
		return ">"
	case ">":
		return "<="
	case ">=":
		return "<"
	}
	return op
}
