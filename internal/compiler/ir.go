// Package compiler is the miniature optimizing compiler used to measure
// backend performance (the paper's Fig. 10). It lowers a small structured
// language to target machine code, driven entirely by backend Tables that
// can be extracted either from a reference backend or from a VEGA-generated
// one (by interrogating the backend's interface functions in the
// interpreter). Two pass pipelines are provided: a naive -O0 lowering that
// keeps every value in memory, and an -O3 pipeline with constant folding,
// strength reduction, register-resident locals, hardware-loop conversion
// and SIMD vectorization where the target supports them.
package compiler

import "fmt"

// Expr is an expression of the source language.
type Expr interface{ exprNode() }

// Const is an integer literal.
type Const struct{ Value int64 }

// Var references a scalar variable.
type Var struct{ Name string }

// Bin is a binary operation: + - * / % & | ^ << >> == != < <= > >=.
type Bin struct {
	Op   string
	L, R Expr
}

// Load reads Array[Index].
type Load struct {
	Array string
	Index Expr
}

// CallExpr invokes another function.
type CallExpr struct {
	Name string
	Args []Expr
}

func (Const) exprNode()    {}
func (Var) exprNode()      {}
func (Bin) exprNode()      {}
func (Load) exprNode()     {}
func (CallExpr) exprNode() {}

// Stmt is a statement of the source language.
type Stmt interface{ stmtNode() }

// Assign sets a scalar variable.
type Assign struct {
	Name string
	E    Expr
}

// Store writes Array[Index] = Value.
type Store struct {
	Array string
	Index Expr
	Value Expr
}

// If branches on a condition.
type If struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
}

// For is a counted loop: for Var = From; Var < To; Var++ { Body }.
// Counted loops are what hardware-loop conversion and vectorization key on.
type For struct {
	Var      string
	From, To Expr
	Body     []Stmt
}

// While loops on a condition.
type While struct {
	Cond Expr
	Body []Stmt
}

// Return exits the function with a value.
type Return struct{ E Expr }

func (Assign) stmtNode() {}
func (Store) stmtNode()  {}
func (If) stmtNode()     {}
func (For) stmtNode()    {}
func (While) stmtNode()  {}
func (Return) stmtNode() {}

// Function is one source function.
type Function struct {
	Name   string
	Params []string
	Body   []Stmt
}

// Program is a compilation unit: functions plus named global arrays.
type Program struct {
	Funcs  []*Function
	Arrays map[string]int // name -> element count
	// Init optionally seeds array contents.
	Init map[string][]int64
}

// Func returns a function by name.
func (p *Program) Func(name string) *Function {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Validate checks referential integrity (arrays and callees exist).
func (p *Program) Validate() error {
	for _, f := range p.Funcs {
		if err := p.validateStmts(f, f.Body); err != nil {
			return fmt.Errorf("compiler: %s: %w", f.Name, err)
		}
	}
	return nil
}

func (p *Program) validateStmts(f *Function, body []Stmt) error {
	for _, s := range body {
		switch st := s.(type) {
		case Assign:
			if err := p.validateExpr(st.E); err != nil {
				return err
			}
		case Store:
			if _, ok := p.Arrays[st.Array]; !ok {
				return fmt.Errorf("unknown array %q", st.Array)
			}
			if err := p.validateExpr(st.Index); err != nil {
				return err
			}
			if err := p.validateExpr(st.Value); err != nil {
				return err
			}
		case If:
			if err := p.validateExpr(st.Cond); err != nil {
				return err
			}
			if err := p.validateStmts(f, st.Then); err != nil {
				return err
			}
			if err := p.validateStmts(f, st.Else); err != nil {
				return err
			}
		case For:
			if err := p.validateExpr(st.From); err != nil {
				return err
			}
			if err := p.validateExpr(st.To); err != nil {
				return err
			}
			if err := p.validateStmts(f, st.Body); err != nil {
				return err
			}
		case While:
			if err := p.validateExpr(st.Cond); err != nil {
				return err
			}
			if err := p.validateStmts(f, st.Body); err != nil {
				return err
			}
		case Return:
			if err := p.validateExpr(st.E); err != nil {
				return err
			}
		}
	}
	return nil
}

func (p *Program) validateExpr(e Expr) error {
	switch ex := e.(type) {
	case Bin:
		if err := p.validateExpr(ex.L); err != nil {
			return err
		}
		return p.validateExpr(ex.R)
	case Load:
		if _, ok := p.Arrays[ex.Array]; !ok {
			return fmt.Errorf("unknown array %q", ex.Array)
		}
		return p.validateExpr(ex.Index)
	case CallExpr:
		if p.Func(ex.Name) == nil {
			return fmt.Errorf("unknown function %q", ex.Name)
		}
		for _, a := range ex.Args {
			if err := p.validateExpr(a); err != nil {
				return err
			}
		}
	}
	return nil
}
