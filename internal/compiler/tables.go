package compiler

import (
	"fmt"

	"vega/internal/corpus"
	"vega/internal/cpp"
	"vega/internal/interp"
)

// Tables is everything codegen needs to know about a target backend. It
// is produced either straight from a TargetSpec or — the interesting path
// — by interrogating a backend's interface functions in the interpreter,
// which is how a corrected VEGA-generated backend drives the compiler.
type Tables struct {
	Target string

	ALUOp   map[string]int // source operator -> opcode
	LoadOp  int
	StoreOp int
	MoveImm int // load-constant opcode
	BrEq    int
	BrNe    int
	BrUnc   int
	CallOp  int

	// Optional ISA extensions (0 = unavailable).
	HWLoopStart int
	SIMDAdd     int

	Latency map[int]int // opcode -> cycles
	Size    map[int]int // opcode -> bytes

	NumRegs     int
	SPIndex     int
	CalleeSaved []int
}

// aluSourceOps maps source operators to the index into the target's ALU
// instruction list (add, sub, and, or, xor, shl, shr).
var aluSourceOps = map[string]int{
	"+": 0, "-": 1, "&": 2, "|": 3, "^": 4, "<<": 5, ">>": 6,
	// Multiplication and division lower through the first ALU op when the
	// target has no dedicated unit; cost model handles the difference.
	"*": 0, "/": 1, "%": 1,
}

// TablesFromSpec extracts tables directly from a target specification
// (the "base compiler" path).
func TablesFromSpec(t *corpus.TargetSpec) *Tables {
	tb := &Tables{
		Target:  t.Name,
		ALUOp:   map[string]int{},
		Latency: map[int]int{},
		Size:    map[int]int{},
	}
	alu := t.Insts(corpus.ClassALU)
	for op, idx := range aluSourceOps {
		tb.ALUOp[op] = alu[idx%len(alu)].Opcode
	}
	loads := t.Insts(corpus.ClassLoad)
	stores := t.Insts(corpus.ClassStore)
	moves := t.Insts(corpus.ClassMove)
	branches := t.Insts(corpus.ClassBranch)
	tb.LoadOp = loads[0].Opcode
	tb.StoreOp = stores[0].Opcode
	tb.MoveImm = moves[len(moves)-1].Opcode
	tb.BrEq = branches[0].Opcode
	tb.BrNe = branches[1%len(branches)].Opcode
	tb.BrUnc = branches[len(branches)-1].Opcode
	tb.CallOp = t.Inst(corpus.ClassCall).Opcode
	if t.HasHardwareLoop {
		tb.HWLoopStart = t.Inst(corpus.ClassLoop).Opcode
	}
	if t.HasSIMD {
		tb.SIMDAdd = t.Inst(corpus.ClassSIMD).Opcode
	}
	for _, inst := range t.InstSet {
		tb.Latency[inst.Opcode] = inst.Latency
		tb.Size[inst.Opcode] = inst.Size
	}
	tb.NumRegs = t.NumRegs
	tb.SPIndex = t.SPIndex
	tb.CalleeSaved = append([]int{}, t.CalleeSaved...)
	return tb
}

// BackendQuerier runs a backend's interface functions to answer codegen
// questions. fns maps interface-function names to parsed implementations.
type BackendQuerier struct {
	T   *corpus.TargetSpec
	Fns map[string]*cpp.Node
	Env *interp.Env
}

// TablesFromBackend extracts tables by querying a backend's functions —
// selectLoadOpcode, getBranchOpcodeForCond, getInstrLatency, and friends —
// in the interpreter. env must be the target's evaluation universe.
func TablesFromBackend(t *corpus.TargetSpec, fns map[string]*cpp.Node, env *interp.Env) (*Tables, error) {
	q := &BackendQuerier{T: t, Fns: fns, Env: env}
	tb := TablesFromSpec(t) // sizes/latencies fall back to the spec
	tb.ALUOp = map[string]int{}
	alu := t.Insts(corpus.ClassALU)
	for op, idx := range aluSourceOps {
		tb.ALUOp[op] = alu[idx%len(alu)].Opcode
	}

	var err error
	if tb.LoadOp, err = q.callInt("selectLoadOpcode", map[string]any{"Size": int64(4)}); err != nil {
		return nil, err
	}
	if tb.StoreOp, err = q.callInt("selectStoreOpcode", map[string]any{"Size": int64(4)}); err != nil {
		return nil, err
	}
	if tb.MoveImm, err = q.callInt("selectMoveImmOpcode", map[string]any{"Imm": int64(1 << 20)}); err != nil {
		return nil, err
	}
	if tb.BrEq, err = q.callInt("getBranchOpcodeForCond", map[string]any{"CC": int64(0)}); err != nil {
		return nil, err
	}
	if tb.BrNe, err = q.callInt("getBranchOpcodeForCond", map[string]any{"CC": int64(1)}); err != nil {
		return nil, err
	}
	if tb.BrUnc, err = q.callInt("getUncondBranchOpcode", nil); err != nil {
		return nil, err
	}
	if tb.CallOp, err = q.callInt("getCallOpcode", nil); err != nil {
		return nil, err
	}
	// Latencies through the scheduler interface.
	for _, inst := range t.InstSet {
		lat, err := q.callInt("getInstrLatency", map[string]any{"Opcode": int64(inst.Opcode)})
		if err != nil {
			return nil, err
		}
		tb.Latency[inst.Opcode] = lat
	}
	// Hardware loops through the OPT interface.
	tb.HWLoopStart = 0
	if _, ok := fns["convertToHardwareLoop"]; ok {
		branches := t.Insts(corpus.ClassBranch)
		op, err := q.callInt("convertToHardwareLoop", map[string]any{
			"Opcode": int64(branches[0].Opcode), "TripCount": int64(8),
		})
		if err == nil && op != 0 {
			tb.HWLoopStart = op
		}
	}
	tb.SIMDAdd = 0
	if t.HasSIMD {
		tb.SIMDAdd = t.Inst(corpus.ClassSIMD).Opcode
	}
	// Callee-saved registers through the REG interface.
	if fn, ok := fns["getCalleeSavedRegs"]; ok {
		var pushed []int
		regs := interp.NewObject("RegList").On("push_back", func(args []any) (any, error) {
			if v, ok := args[0].(int64); ok {
				pushed = append(pushed, int(v)-1000)
			}
			return nil, nil
		})
		if _, err := interp.Call(fn, q.Env, map[string]any{"Regs": regs}); err != nil {
			return nil, fmt.Errorf("compiler: getCalleeSavedRegs: %w", err)
		}
		tb.CalleeSaved = pushed
	}
	return tb, nil
}

func (q *BackendQuerier) callInt(name string, args map[string]any) (int, error) {
	fn, ok := q.Fns[name]
	if !ok {
		return 0, fmt.Errorf("compiler: backend lacks %s", name)
	}
	ret, err := interp.Call(fn, q.Env, args)
	if err != nil {
		return 0, fmt.Errorf("compiler: %s: %w", name, err)
	}
	v, ok := ret.(int64)
	if !ok {
		return 0, fmt.Errorf("compiler: %s returned %T", name, ret)
	}
	return int(v), nil
}
