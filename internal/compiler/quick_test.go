package compiler

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// evalExpr evaluates a closed-over-two-variables expression directly,
// giving the semantic oracle for optimizer properties.
func evalExpr(e Expr, a, b int64) (int64, bool) {
	switch ex := e.(type) {
	case Const:
		return ex.Value, true
	case Var:
		if ex.Name == "a" {
			return a, true
		}
		return b, true
	case Bin:
		l, ok1 := evalExpr(ex.L, a, b)
		r, ok2 := evalExpr(ex.R, a, b)
		if !ok1 || !ok2 {
			return 0, false
		}
		if (ex.Op == "/" || ex.Op == "%") && r == 0 {
			return 0, false
		}
		return mustEval(ex.Op, l, r), true
	}
	return 0, false
}

func mustEval(op string, l, r int64) int64 {
	v, _ := evalConst(op, l, r)
	return v
}

func genExpr(rng *rand.Rand, depth int) Expr {
	if depth <= 0 || rng.Intn(3) == 0 {
		switch rng.Intn(3) {
		case 0:
			return Const{Value: int64(rng.Intn(17) - 8)}
		case 1:
			return Var{Name: "a"}
		default:
			return Var{Name: "b"}
		}
	}
	ops := []string{"+", "-", "*", "&", "|", "^", "<<", ">>"}
	return Bin{
		Op: ops[rng.Intn(len(ops))],
		L:  genExpr(rng, depth-1),
		R:  genExpr(rng, depth-1),
	}
}

// Property: constant folding preserves semantics on random expressions.
func TestFoldPreservesSemanticsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	f := func(a, b int8) bool {
		e := genExpr(rng, 4)
		folded := foldExpr(e)
		w1, ok1 := evalExpr(e, int64(a), int64(b))
		w2, ok2 := evalExpr(folded, int64(a), int64(b))
		if ok1 != ok2 {
			// Folding may only remove division hazards, never add them.
			return !ok1 || ok2
		}
		return w1 == w2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: branch folding preserves which side executes.
func TestBranchFoldPreservesChoiceProperty(t *testing.T) {
	f := func(c int8) bool {
		cond := Bin{Op: "<", L: Const{Value: int64(c)}, R: Const{Value: 0}}
		body := foldStmts([]Stmt{If{
			Cond: cond,
			Then: []Stmt{Assign{Name: "x", E: Const{Value: 1}}},
			Else: []Stmt{Assign{Name: "x", E: Const{Value: 2}}},
		}})
		if len(body) != 1 {
			return false
		}
		as, ok := body[0].(Assign)
		if !ok {
			return false
		}
		want := int64(2)
		if c < 0 {
			want = 1
		}
		return as.E.(Const).Value == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
