package compiler

import (
	"testing"

	"vega/internal/corpus"
	"vega/internal/interp"
)

// newTestEnv builds the minimal interpreter environment TablesFromBackend
// needs; the full harness lives in internal/eval (which depends on this
// package's consumers, so the test re-creates the slice it needs).
func newTestEnv(t *testing.T, b *corpus.Backend) *interp.Env {
	t.Helper()
	env := interp.NewEnv()
	spec := b.Target
	for name, v := range map[string]int64{
		"SETEQ": 0, "SETNE": 1, "SETLT": 2, "SETGT": 3,
		"NoRegister": 4095, "Fail": 0, "Success": 3,
	} {
		env.Globals[name] = v
	}
	features := map[string]bool{
		"HasHardwareLoop": spec.HasHardwareLoop,
		"HasSIMD":         spec.HasSIMD,
	}
	for n := range features {
		env.Globals[n] = n
	}
	env.Globals["STI"] = interp.NewObject("STI").On("hasFeature", func(args []any) (any, error) {
		name, _ := args[0].(string)
		return features[name], nil
	})
	for i := 0; i < spec.NumRegs; i++ {
		env.Qualified[spec.Name+"::"+spec.RegEnum(i)] = int64(1000 + i)
	}
	for _, inst := range spec.InstSet {
		env.Qualified[spec.Name+"::"+inst.Enum] = int64(inst.Opcode)
	}
	for name, fn := range b.Funcs {
		name, fn := name, fn
		env.Funcs[name] = func(args []any) (any, error) {
			bound := map[string]any{}
			params := fn.Children[1]
			for i, p := range params.Children {
				if i < len(args) && p.Value != "" {
					bound[p.Value] = args[i]
				}
			}
			return interp.Call(fn, env, bound)
		}
	}
	return env
}
