package compiler

import (
	"testing"

	"vega/internal/corpus"
)

func tablesFor(t *testing.T, name string) *Tables {
	t.Helper()
	spec := corpus.FindTarget(name)
	if spec == nil {
		t.Fatalf("unknown target %s", name)
	}
	return TablesFromSpec(spec)
}

func simpleProgram() *Program {
	return &Program{
		Arrays: map[string]int{"a": 8},
		Init:   map[string][]int64{"a": {1, 2, 3, 4, 5, 6, 7, 8}},
		Funcs: []*Function{{
			Name: "main",
			Body: []Stmt{
				Assign{Name: "s", E: Const{Value: 0}},
				For{Var: "i", From: Const{Value: 0}, To: Const{Value: 8},
					Body: []Stmt{
						Assign{Name: "s", E: Bin{Op: "+", L: Var{Name: "s"}, R: Load{Array: "a", Index: Var{Name: "i"}}}},
					}},
				Return{E: Var{Name: "s"}},
			},
		}},
	}
}

func TestCompileBothLevels(t *testing.T) {
	tb := tablesFor(t, "RISCV")
	for _, opt := range []int{0, 3} {
		obj, err := Compile(simpleProgram(), tb, opt)
		if err != nil {
			t.Fatalf("O%d: %v", opt, err)
		}
		if len(obj.Funcs["main"].Code) == 0 {
			t.Fatalf("O%d: empty code", opt)
		}
	}
}

func TestO3SmallerThanO0(t *testing.T) {
	tb := tablesFor(t, "RISCV")
	o0, err := Compile(simpleProgram(), tb, 0)
	if err != nil {
		t.Fatal(err)
	}
	o3, err := Compile(simpleProgram(), tb, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(o3.Funcs["main"].Code) >= len(o0.Funcs["main"].Code) {
		t.Errorf("O3 (%d insts) not smaller than O0 (%d insts)",
			len(o3.Funcs["main"].Code), len(o0.Funcs["main"].Code))
	}
}

func TestHardwareLoopEmission(t *testing.T) {
	tb := tablesFor(t, "RI5CY")
	if tb.HWLoopStart == 0 {
		t.Fatal("RI5CY should have hardware loops")
	}
	p := &Program{
		Arrays: map[string]int{"a": 8},
		Funcs: []*Function{{
			Name: "main",
			Body: []Stmt{
				Assign{Name: "s", E: Const{Value: 0}},
				For{Var: "i", From: Const{Value: 0}, To: Const{Value: 8},
					Body: []Stmt{Assign{Name: "s", E: Bin{Op: "+", L: Var{Name: "s"}, R: Var{Name: "i"}}}}},
				Return{E: Var{Name: "s"}},
			},
		}},
	}
	obj, err := Compile(p, tb, 3)
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, in := range obj.Funcs["main"].Code {
		if in.Kind == KLoopStart {
			found = true
		}
	}
	if !found {
		t.Error("no hardware loop emitted at O3")
	}
	// O0 must not use hardware loops.
	obj0, _ := Compile(p, tb, 0)
	for _, in := range obj0.Funcs["main"].Code {
		if in.Kind == KLoopStart {
			t.Error("hardware loop at O0")
		}
	}
}

func TestSIMDVectorization(t *testing.T) {
	tb := tablesFor(t, "RI5CY")
	p := &Program{
		Arrays: map[string]int{"a": 8, "b": 8, "c": 8},
		Funcs: []*Function{{
			Name: "main",
			Body: []Stmt{
				For{Var: "i", From: Const{Value: 0}, To: Const{Value: 8},
					Body: []Stmt{
						Store{Array: "c", Index: Var{Name: "i"},
							Value: Bin{Op: "+", L: Load{Array: "a", Index: Var{Name: "i"}}, R: Load{Array: "b", Index: Var{Name: "i"}}}},
					}},
				Return{E: Const{Value: 0}},
			},
		}},
	}
	obj, err := Compile(p, tb, 3)
	if err != nil {
		t.Fatal(err)
	}
	var simd bool
	for _, in := range obj.Funcs["main"].Code {
		if in.Kind == KSIMD {
			simd = true
		}
	}
	if !simd {
		t.Error("no SIMD emitted for vectorizable loop")
	}
	// RISCV (no SIMD) must lower the same loop scalar.
	objRV, err := Compile(p, tablesFor(t, "RISCV"), 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range objRV.Funcs["main"].Code {
		if in.Kind == KSIMD {
			t.Error("SIMD emitted for a non-SIMD target")
		}
	}
}

func TestConstantFolding(t *testing.T) {
	folded := foldExpr(Bin{Op: "+", L: Const{Value: 2}, R: Bin{Op: "*", L: Const{Value: 3}, R: Const{Value: 4}}})
	if c, ok := folded.(Const); !ok || c.Value != 14 {
		t.Errorf("folded = %#v", folded)
	}
	ident := foldExpr(Bin{Op: "+", L: Var{Name: "x"}, R: Const{Value: 0}})
	if _, ok := ident.(Var); !ok {
		t.Errorf("x+0 not simplified: %#v", ident)
	}
}

func TestBranchFolding(t *testing.T) {
	body := foldStmts([]Stmt{
		If{Cond: Bin{Op: "<", L: Const{Value: 1}, R: Const{Value: 2}},
			Then: []Stmt{Assign{Name: "x", E: Const{Value: 1}}},
			Else: []Stmt{Assign{Name: "x", E: Const{Value: 2}}}},
	})
	if len(body) != 1 {
		t.Fatalf("folded body = %#v", body)
	}
	if a, ok := body[0].(Assign); !ok || a.E.(Const).Value != 1 {
		t.Errorf("wrong branch kept: %#v", body[0])
	}
}

func TestPowerOfTwo(t *testing.T) {
	if k, ok := powerOfTwo(Bin{Op: "*", L: Var{Name: "x"}, R: Const{Value: 8}}); !ok || k != 3 {
		t.Errorf("x*8: k=%d ok=%v", k, ok)
	}
	if _, ok := powerOfTwo(Bin{Op: "*", L: Var{Name: "x"}, R: Const{Value: 6}}); ok {
		t.Error("x*6 must not strength-reduce")
	}
	if _, ok := powerOfTwo(Bin{Op: "+", L: Var{Name: "x"}, R: Const{Value: 8}}); ok {
		t.Error("x+8 must not strength-reduce")
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	p := &Program{
		Arrays: map[string]int{},
		Funcs: []*Function{{
			Name: "main",
			Body: []Stmt{Store{Array: "nope", Index: Const{Value: 0}, Value: Const{Value: 1}}},
		}},
	}
	if _, err := Compile(p, tablesFor(t, "RISCV"), 0); err == nil {
		t.Error("expected validation error")
	}
	p2 := &Program{
		Arrays: map[string]int{},
		Funcs: []*Function{{
			Name: "main",
			Body: []Stmt{Assign{Name: "x", E: CallExpr{Name: "ghost"}}},
		}},
	}
	if _, err := Compile(p2, tablesFor(t, "RISCV"), 0); err == nil {
		t.Error("expected unknown-function error")
	}
}

func TestTablesFromBackendMatchesSpec(t *testing.T) {
	// Extracting tables by interpreting the reference backend must agree
	// with the spec-derived tables.
	for _, name := range []string{"RISCV", "RI5CY", "XCore"} {
		spec := corpus.FindTarget(name)
		b, err := corpus.BuildBackend(spec)
		if err != nil {
			t.Fatal(err)
		}
		env := newTestEnv(t, b)
		got, err := TablesFromBackend(spec, b.Funcs, env)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want := TablesFromSpec(spec)
		if got.LoadOp != want.LoadOp || got.StoreOp != want.StoreOp ||
			got.BrEq != want.BrEq || got.CallOp != want.CallOp {
			t.Errorf("%s: backend tables diverge: %+v vs %+v", name, got, want)
		}
		if (got.HWLoopStart != 0) != (want.HWLoopStart != 0) {
			t.Errorf("%s: hardware-loop mismatch", name)
		}
		if len(got.CalleeSaved) != len(want.CalleeSaved) {
			t.Errorf("%s: callee-saved %v vs %v", name, got.CalleeSaved, want.CalleeSaved)
		}
	}
}
