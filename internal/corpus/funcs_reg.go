package corpus

import (
	"fmt"
	"strings"
)

// Register Allocation (REG) interface functions: reserved registers,
// frame register selection, callee-saved sets, frame index elimination.

func genGetFrameRegister(t *TargetSpec) string {
	var b strings.Builder
	fmt.Fprintf(&b, "unsigned %sRegisterInfo::getFrameRegister(const MachineFunction &MF) {\n", t.Name)
	if t.FPIndex >= 0 && t.FPIndex != t.SPIndex {
		b.WriteString("  if (MF.hasFP()) {\n")
		fmt.Fprintf(&b, "    return %s;\n", t.FP())
		b.WriteString("  }\n")
	}
	fmt.Fprintf(&b, "  return %s;\n", t.SP())
	b.WriteString("}\n")
	return b.String()
}

func genGetCalleeSavedRegs(t *TargetSpec) string {
	var b strings.Builder
	fmt.Fprintf(&b, "void %sRegisterInfo::getCalleeSavedRegs(RegList &Regs) {\n", t.Name)
	for _, r := range t.CalleeSaved {
		fmt.Fprintf(&b, "  Regs.push_back(%s::%s);\n", t.Name, t.RegEnum(r))
	}
	b.WriteString("}\n")
	return b.String()
}

func genIsReservedReg(t *TargetSpec) string {
	var b strings.Builder
	fmt.Fprintf(&b, "bool %sRegisterInfo::isReservedReg(unsigned Reg) {\n", t.Name)
	b.WriteString("  switch (Reg) {\n")
	fmt.Fprintf(&b, "  case %s:\n", t.SP())
	if t.RAIndex >= 0 && t.RAIndex != t.SPIndex {
		fmt.Fprintf(&b, "  case %s::%s:\n", t.Name, t.RegEnum(t.RAIndex))
	}
	fmt.Fprintf(&b, "  case %s::%s:\n", t.Name, t.RegEnum(0))
	b.WriteString("    return true;\n")
	b.WriteString("  default:\n")
	b.WriteString("    return false;\n")
	b.WriteString("  }\n")
	b.WriteString("}\n")
	return b.String()
}

func genEliminateFrameIndex(t *TargetSpec) string {
	reach := t.ImmReach()
	var b strings.Builder
	fmt.Fprintf(&b, "int %sRegisterInfo::eliminateFrameIndex(int FrameIndex, int Offset, const MachineFunction &MF) {\n", t.Name)
	fmt.Fprintf(&b, "  int StackSize = MF.getStackSize();\n")
	fmt.Fprintf(&b, "  int FrameOffset = StackSize + FrameIndex * %d + Offset;\n", t.StackAlign)
	fmt.Fprintf(&b, "  if (FrameOffset < -%d || FrameOffset >= %d) {\n", reach, reach)
	b.WriteString("    report_fatal_error(\"frame offset out of range\");\n")
	b.WriteString("  }\n")
	b.WriteString("  return FrameOffset;\n")
	b.WriteString("}\n")
	return b.String()
}

func genGetStackAlignment(t *TargetSpec) string {
	var b strings.Builder
	fmt.Fprintf(&b, "unsigned %sFrameLowering::getStackAlignment() {\n", t.Name)
	fmt.Fprintf(&b, "  return %d;\n", t.StackAlign)
	b.WriteString("}\n")
	return b.String()
}

func genHasReservedCallFrame(t *TargetSpec) string {
	var b strings.Builder
	fmt.Fprintf(&b, "bool %sFrameLowering::hasReservedCallFrame(const MachineFunction &MF) {\n", t.Name)
	if t.FPIndex >= 0 {
		b.WriteString("  if (MF.hasVarSizedObjects()) {\n")
		b.WriteString("    return false;\n")
		b.WriteString("  }\n")
	}
	if t.StackAlign >= 16 {
		// Over-aligned stacks cannot pre-reserve the call frame eagerly.
		b.WriteString("  if (MF.getStackSize() > 0) {\n")
		b.WriteString("    return false;\n")
		b.WriteString("  }\n")
	}
	b.WriteString("  return true;\n")
	b.WriteString("}\n")
	return b.String()
}

func regFuncs() []InterfaceFunc {
	return []InterfaceFunc{
		{Name: "getFrameRegister", Module: REG, Gen: genGetFrameRegister},
		{Name: "getCalleeSavedRegs", Module: REG, Gen: genGetCalleeSavedRegs},
		{Name: "isReservedReg", Module: REG, Gen: genIsReservedReg},
		{Name: "eliminateFrameIndex", Module: REG, Gen: genEliminateFrameIndex},
		{Name: "getStackAlignment", Module: REG, Gen: genGetStackAlignment},
		{Name: "hasReservedCallFrame", Module: REG, Gen: genHasReservedCallFrame},
	}
}
