package corpus

import "testing"

// TestFuncByNameIndex pins the lazily built name index against the
// authoritative AllFuncs list: every function resolves to itself, and
// unknown names miss cleanly.
func TestFuncByNameIndex(t *testing.T) {
	all := AllFuncs()
	if len(all) == 0 {
		t.Fatal("AllFuncs is empty")
	}
	for _, want := range all {
		got, ok := FuncByName(want.Name)
		if !ok {
			t.Fatalf("FuncByName(%q) missed", want.Name)
		}
		if got.Name != want.Name || got.Module != want.Module {
			t.Fatalf("FuncByName(%q) = %s/%s", want.Name, got.Name, got.Module)
		}
	}
	if _, ok := FuncByName("noSuchFunction"); ok {
		t.Fatal("FuncByName invented a function")
	}
}

// TestFuncByNameConstantTime guards the satellite regression: lookups
// after the first must not rescan or reallocate — zero allocations per
// call is the observable proxy for the O(1) map path (the old linear
// scan allocated the AllFuncs slice on every call).
func TestFuncByNameConstantTime(t *testing.T) {
	FuncByName("getRelocType") // force the index build outside the measurement
	allocs := testing.AllocsPerRun(100, func() {
		if _, ok := FuncByName("getRelocType"); !ok {
			t.Fatal("lookup missed")
		}
		if _, ok := FuncByName("noSuchFunction"); ok {
			t.Fatal("phantom hit")
		}
	})
	if allocs != 0 {
		t.Fatalf("FuncByName allocates %v per lookup, want 0", allocs)
	}
}

// BenchmarkFuncByName records the lookup cost for the bench harness.
func BenchmarkFuncByName(b *testing.B) {
	FuncByName("getRelocType")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		FuncByName("getRelocType")
	}
}
