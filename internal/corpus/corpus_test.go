package corpus

import (
	"strings"
	"testing"

	"vega/internal/cpp"
	"vega/internal/feature"
	"vega/internal/tablegen"
)

func buildCorpus(t *testing.T) *Corpus {
	t.Helper()
	c, err := Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestTargetsFleet(t *testing.T) {
	ts := Targets()
	if len(ts) < 15 {
		t.Fatalf("fleet too small: %d", len(ts))
	}
	evals := EvalTargets()
	if len(evals) != 3 {
		t.Fatalf("eval targets = %d, want 3", len(evals))
	}
	names := map[string]bool{}
	for _, e := range evals {
		names[e.Name] = true
	}
	for _, want := range []string{"RISCV", "RI5CY", "XCore"} {
		if !names[want] {
			t.Errorf("missing eval target %s", want)
		}
	}
	for _, ts := range Targets() {
		if ts.SPIndex >= ts.NumRegs || (ts.FPIndex >= 0 && ts.FPIndex >= ts.NumRegs) {
			t.Errorf("%s: register indexes out of range", ts.Name)
		}
		if len(ts.InstSet) == 0 || len(ts.FixupKinds) == 0 {
			t.Errorf("%s: empty ISA", ts.Name)
		}
	}
}

func TestEveryReferenceFunctionParses(t *testing.T) {
	c := buildCorpus(t)
	for name, b := range c.Backends {
		if len(b.Funcs) < 30 {
			t.Errorf("%s implements only %d functions", name, len(b.Funcs))
		}
		for fname, fn := range b.Funcs {
			if fn.FunctionName() == "" {
				t.Errorf("%s %s: no function name", name, fname)
			}
		}
	}
}

func TestXCoreLacksDisassembler(t *testing.T) {
	c := buildCorpus(t)
	x := c.Backends["XCore"]
	for _, f := range disFuncs() {
		if _, ok := x.Funcs[f.Name]; ok {
			t.Errorf("XCore should lack DIS function %s", f.Name)
		}
	}
	r := c.Backends["RISCV"]
	if _, ok := r.Funcs["decodeGPRRegisterClass"]; !ok {
		t.Error("RISCV should have a disassembler")
	}
}

func TestHardwareLoopOnlyWhereDeclared(t *testing.T) {
	c := buildCorpus(t)
	if _, ok := c.Backends["RISCV"].Funcs["convertToHardwareLoop"]; ok {
		t.Error("RISCV must not implement convertToHardwareLoop")
	}
	if _, ok := c.Backends["RI5CY"].Funcs["convertToHardwareLoop"]; !ok {
		t.Error("RI5CY must implement convertToHardwareLoop")
	}
	if _, ok := c.Backends["Hexagon"].Funcs["convertToHardwareLoop"]; !ok {
		t.Error("Hexagon must implement convertToHardwareLoop")
	}
}

func TestDescriptionFilesParse(t *testing.T) {
	c := buildCorpus(t)
	for _, p := range c.Tree.Paths() {
		content, _ := c.Tree.Content(p)
		switch {
		case strings.HasSuffix(p, ".td"):
			if _, err := tablegen.ParseTD(content); err != nil {
				t.Errorf("%s: %v", p, err)
			}
		case strings.HasSuffix(p, ".h"):
			if _, err := tablegen.ParseEnums(content); err != nil {
				t.Errorf("%s: %v", p, err)
			}
		case strings.HasSuffix(p, ".def"):
			if _, err := tablegen.ParseDefFile(content); err != nil {
				t.Errorf("%s: %v", p, err)
			}
		}
	}
}

func TestDescriptionFileConventions(t *testing.T) {
	c := buildCorpus(t)
	for _, tgt := range c.Targets {
		dir := "lib/Target/" + tgt.Name + "/"
		for _, want := range []string{
			dir + tgt.Name + ".td",
			dir + tgt.Name + "RegisterInfo.td",
			dir + tgt.Name + "InstrInfo.td",
			dir + tgt.Name + "FixupKinds.h",
			"llvm/BinaryFormat/ELFRelocs/" + tgt.Name + ".def",
		} {
			if _, ok := c.Tree.Content(want); !ok {
				t.Errorf("missing description file %s", want)
			}
		}
		if tgt.HasVariantKind {
			if _, ok := c.Tree.Content(dir + tgt.Name + "MCExpr.h"); !ok {
				t.Errorf("%s: HasVariantKind target missing MCExpr.h", tgt.Name)
			}
		}
	}
}

func TestFixupNamingConventions(t *testing.T) {
	arm := FindTarget("ARM")
	mips := FindTarget("Mips")
	rv := FindTarget("RISCV")
	if got := arm.Fixups()[0].Name; got != "fixup_arm_hi16" {
		t.Errorf("ARM fixup = %q", got)
	}
	if got := mips.Fixups()[0].Name; got != "fixup_MIPS_HI16" {
		t.Errorf("Mips fixup = %q", got)
	}
	if got := rv.Fixups()[0].Name; got != "fixup_riscv_hi20" {
		t.Errorf("RISCV fixup = %q", got)
	}
	if got := rv.Fixups()[0].Reloc; got != "R_RISCV_HI20" {
		t.Errorf("RISCV reloc = %q", got)
	}
}

func TestFeatureExtractionOnCorpus(t *testing.T) {
	c := buildCorpus(t)
	e := feature.NewExtractor(c.Tree, nil)
	// Key properties must be in the candidate set.
	for _, want := range []string{"MCFixupKind", "ELF_RELOC", "Register", "BranchInst", "SaveList", "FramePointer", "StackPointer", "HasHardwareLoop", "Name", "AsmString", "StackAlignment"} {
		if !e.InPropList(want) {
			t.Errorf("PropList missing %q", want)
		}
	}
}

func TestStatementCounts(t *testing.T) {
	c := buildCorpus(t)
	total := 0
	for _, b := range c.Backends {
		n := b.StatementCount()
		if n < 150 {
			t.Errorf("%s has only %d statements", b.Target.Name, n)
		}
		total += n
	}
	if total < 4000 {
		t.Errorf("corpus statements = %d, want >= 4000", total)
	}
	t.Logf("corpus: %d targets, %d statements", len(c.Backends), total)
}

func TestFunctionGroupGathering(t *testing.T) {
	c := buildCorpus(t)
	g := FunctionGroup(c.TrainingBackends(), "getRelocType")
	if len(g) != len(c.TrainingBackends()) {
		t.Errorf("getRelocType group size = %d", len(g))
	}
	g2 := FunctionGroup(c.TrainingBackends(), "convertToHardwareLoop")
	if len(g2) == 0 || len(g2) >= len(c.TrainingBackends()) {
		t.Errorf("convertToHardwareLoop group size = %d, want a proper subset", len(g2))
	}
}

func TestReferenceSourcesSplit(t *testing.T) {
	c := buildCorpus(t)
	b := c.Backends["ARM"]
	fn := b.Funcs["getRelocType"]
	sts := cpp.SplitFunction(fn)
	if len(sts) < 10 {
		t.Errorf("getRelocType splits into %d statements", len(sts))
	}
	var hasCase bool
	for _, s := range sts {
		if strings.HasPrefix(s.Text, "case ARM::fixup_arm_") {
			hasCase = true
		}
	}
	if !hasCase {
		t.Error("ARM getRelocType lost its fixup cases")
	}
}

func TestGetRelocTypeHelperInlined(t *testing.T) {
	c := buildCorpus(t)
	// MIPS-family targets wrap getRelocType in GetRelocTypeInner; the
	// pre-processing must inline it so the group aligns.
	fn := c.Backends["Mips"].Funcs["getRelocType"]
	printed := cpp.Print(fn)
	if strings.Contains(printed, "GetRelocTypeInner") {
		t.Errorf("helper call not inlined:\n%s", printed)
	}
	if !strings.Contains(printed, "switch (Kind)") {
		t.Errorf("helper body not spliced:\n%s", printed)
	}
	if src := c.Backends["Mips"].Sources["getRelocType"]; !strings.Contains(src, "GetRelocTypeInner") {
		t.Error("raw source should still show the helper (pre-inlining form)")
	}
}
