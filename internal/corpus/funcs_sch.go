package corpus

import (
	"fmt"
	"strings"
)

// Instruction Scheduling (SCH) interface functions: latencies, scheduling
// boundaries, delay slots, clustering.

func genGetInstrLatency(t *TargetSpec) string {
	var b strings.Builder
	fmt.Fprintf(&b, "int %sInstrInfo::getInstrLatency(unsigned Opcode) {\n", t.Name)
	b.WriteString("  switch (Opcode) {\n")
	for _, inst := range t.Insts(ClassLoad) {
		fmt.Fprintf(&b, "  case %s:\n", t.QualInst(inst))
		fmt.Fprintf(&b, "    return %d;\n", inst.Latency)
	}
	for _, inst := range t.Insts(ClassSIMD) {
		fmt.Fprintf(&b, "  case %s:\n", t.QualInst(inst))
		fmt.Fprintf(&b, "    return %d;\n", inst.Latency)
	}
	for _, inst := range t.Insts(ClassTensor) {
		fmt.Fprintf(&b, "  case %s:\n", t.QualInst(inst))
		fmt.Fprintf(&b, "    return %d;\n", inst.Latency)
	}
	call := t.Inst(ClassCall)
	fmt.Fprintf(&b, "  case %s:\n", t.QualInst(call))
	fmt.Fprintf(&b, "    return %d;\n", call.Latency)
	b.WriteString("  default:\n")
	b.WriteString("    return 1;\n")
	b.WriteString("  }\n")
	b.WriteString("}\n")
	return b.String()
}

func genIsSchedulingBoundary(t *TargetSpec) string {
	var b strings.Builder
	fmt.Fprintf(&b, "bool %sInstrInfo::isSchedulingBoundary(const MachineInstr &MI) {\n", t.Name)
	b.WriteString("  if (MI.isTerminator() || MI.isLabel()) {\n")
	b.WriteString("    return true;\n")
	b.WriteString("  }\n")
	if t.HasVLIWBundles {
		// Bundle boundaries: calls always end a VLIW issue packet.
		b.WriteString("  if (STI.hasFeature(HasVLIWBundles) && MI.isCall()) {\n")
		b.WriteString("    return true;\n")
		b.WriteString("  }\n")
	}
	b.WriteString("  switch (MI.getOpcode()) {\n")
	fmt.Fprintf(&b, "  case %s:\n", t.QualInst(t.Inst(ClassCall)))
	if t.HasHardwareLoop {
		loops := t.Insts(ClassLoop)
		fmt.Fprintf(&b, "  case %s:\n", t.QualInst(loops[0]))
	}
	if t.HasRealtime {
		ios := t.Insts(ClassIO)
		fmt.Fprintf(&b, "  case %s:\n", t.QualInst(ios[len(ios)-1]))
	}
	if t.HasTensorOps {
		fmt.Fprintf(&b, "  case %s:\n", t.QualInst(t.Inst(ClassTensor)))
	}
	b.WriteString("    return true;\n")
	b.WriteString("  default:\n")
	b.WriteString("    return false;\n")
	b.WriteString("  }\n")
	b.WriteString("}\n")
	return b.String()
}

func genHasDelaySlot(t *TargetSpec) string {
	var b strings.Builder
	fmt.Fprintf(&b, "bool %sInstrInfo::hasDelaySlot(unsigned Opcode) {\n", t.Name)
	if !t.HasDelaySlots {
		b.WriteString("  return false;\n")
		b.WriteString("}\n")
		return b.String()
	}
	b.WriteString("  if (!STI.hasFeature(HasDelaySlots)) {\n")
	b.WriteString("    return false;\n")
	b.WriteString("  }\n")
	b.WriteString("  switch (Opcode) {\n")
	for _, inst := range t.Insts(ClassBranch) {
		fmt.Fprintf(&b, "  case %s:\n", t.QualInst(inst))
	}
	fmt.Fprintf(&b, "  case %s:\n", t.QualInst(t.Inst(ClassCall)))
	b.WriteString("    return true;\n")
	b.WriteString("  default:\n")
	b.WriteString("    return false;\n")
	b.WriteString("  }\n")
	b.WriteString("}\n")
	return b.String()
}

func genGetSchedPriority(t *TargetSpec) string {
	var b strings.Builder
	fmt.Fprintf(&b, "int %sSchedStrategy::getSchedPriority(const MachineInstr &MI) {\n", t.Name)
	b.WriteString("  if (MI.isBranch()) {\n")
	b.WriteString("    return 0;\n")
	b.WriteString("  }\n")
	b.WriteString("  if (MI.mayLoad()) {\n")
	fmt.Fprintf(&b, "    return %d;\n", t.Inst(ClassLoad).Latency+1)
	b.WriteString("  }\n")
	if t.HasSIMD {
		b.WriteString("  if (MI.isVector()) {\n")
		fmt.Fprintf(&b, "    return %d;\n", t.Inst(ClassSIMD).Latency)
		b.WriteString("  }\n")
	}
	if t.HasVLIWBundles {
		// Calls drain the whole bundle; priority scales with its width.
		b.WriteString("  if (MI.isCall()) {\n")
		fmt.Fprintf(&b, "    return %d;\n", t.BundleSize)
		b.WriteString("  }\n")
	}
	b.WriteString("  return 1;\n")
	b.WriteString("}\n")
	return b.String()
}

func genShouldClusterMemOps(t *TargetSpec) string {
	var b strings.Builder
	fmt.Fprintf(&b, "bool %sInstrInfo::shouldClusterMemOps(unsigned First, unsigned Second, int NumLoads) {\n", t.Name)
	loads := t.Insts(ClassLoad)
	fmt.Fprintf(&b, "  if (First != %s || Second != %s) {\n", t.QualInst(loads[0]), t.QualInst(loads[0]))
	b.WriteString("    return false;\n")
	b.WriteString("  }\n")
	limit := t.StackAlign / 4
	if limit < 1 {
		limit = 1
	}
	if t.PtrBits == 64 {
		limit *= 2
	}
	fmt.Fprintf(&b, "  return NumLoads <= %d;\n", limit)
	b.WriteString("}\n")
	return b.String()
}

func schFuncs() []InterfaceFunc {
	return []InterfaceFunc{
		{Name: "getInstrLatency", Module: SCH, Gen: genGetInstrLatency},
		{Name: "isSchedulingBoundary", Module: SCH, Gen: genIsSchedulingBoundary},
		{Name: "hasDelaySlot", Module: SCH, Gen: genHasDelaySlot},
		{Name: "getSchedPriority", Module: SCH, Gen: genGetSchedPriority},
		{Name: "shouldClusterMemOps", Module: SCH, Gen: genShouldClusterMemOps},
	}
}
