package corpus

import (
	"fmt"
	"strings"
)

// Code Emission (EMI) interface functions: object writing, fixup
// application, instruction encoding, assembly printing.

func genGetRelocType(t *TargetSpec) string {
	var b strings.Builder
	if t.Style == StyleUpper {
		// MIPS-family backends wrap the real work in a helper (the paper's
		// Fig. 2(a), GetRelocTypeInner); pre-processing inlines it.
		fmt.Fprintf(&b, "unsigned %sELFObjectWriter::getRelocType(MCContext &Ctx, const MCValue &Target, const MCFixup &Fixup, bool IsPCRel) {\n", t.Name)
		b.WriteString("  return GetRelocTypeInner(Ctx, Target, Fixup, IsPCRel);\n")
		b.WriteString("}\n")
		fmt.Fprintf(&b, "unsigned GetRelocTypeInner(MCContext &Ctx, const MCValue &Target, const MCFixup &Fixup, bool IsPCRel) {\n")
	} else {
		fmt.Fprintf(&b, "unsigned %sELFObjectWriter::getRelocType(MCContext &Ctx, const MCValue &Target, const MCFixup &Fixup, bool IsPCRel) {\n", t.Name)
	}
	b.WriteString("  unsigned Kind = Fixup.getTargetKind();\n")
	if t.HasVariantKind {
		b.WriteString("  MCSymbolRefExpr::VariantKind Modifier = Target.getAccessVariant();\n")
	}
	b.WriteString("  if (IsPCRel) {\n")
	b.WriteString("    switch (Kind) {\n")
	for _, f := range t.Fixups() {
		if !f.PCRel {
			continue
		}
		fmt.Fprintf(&b, "    case %s::%s:\n", t.Name, f.Name)
		fmt.Fprintf(&b, "      return ELF::%s;\n", f.Reloc)
	}
	b.WriteString("    default:\n")
	fmt.Fprintf(&b, "      return ELF::R_%s_NONE;\n", upper(t.Name))
	b.WriteString("    }\n")
	b.WriteString("  }\n")
	b.WriteString("  switch (Kind) {\n")
	b.WriteString("  case FK_Data_4:\n")
	// 64-bit targets relocate word data with the 32-bit absolute reloc
	// when present, matching their base compilers.
	if abs := t.fixupOfKind(FixAbs32); abs != nil {
		fmt.Fprintf(&b, "    return ELF::%s;\n", abs.Reloc)
	} else {
		fmt.Fprintf(&b, "    return ELF::R_%s_NONE;\n", upper(t.Name))
	}
	for _, f := range t.Fixups() {
		if f.PCRel {
			continue
		}
		fmt.Fprintf(&b, "  case %s::%s:\n", t.Name, f.Name)
		fmt.Fprintf(&b, "    return ELF::%s;\n", f.Reloc)
	}
	b.WriteString("  default:\n")
	b.WriteString("    report_fatal_error(\"invalid fixup kind\");\n")
	b.WriteString("  }\n")
	b.WriteString("}\n")
	return b.String()
}

func genAdjustFixupValue(t *TargetSpec) string {
	var b strings.Builder
	fmt.Fprintf(&b, "unsigned %sAsmBackend::adjustFixupValue(const MCFixup &Fixup, unsigned Value) {\n", t.Name)
	b.WriteString("  unsigned Kind = Fixup.getTargetKind();\n")
	b.WriteString("  switch (Kind) {\n")
	b.WriteString("  case FK_Data_4:\n")
	b.WriteString("  case FK_Data_8:\n")
	b.WriteString("    return Value;\n")
	for _, f := range t.Fixups() {
		fmt.Fprintf(&b, "  case %s::%s:\n", t.Name, f.Name)
		switch {
		case f.Bits >= 32:
			b.WriteString("    return Value;\n")
		case strings.Contains(f.Name, "hi") || strings.Contains(f.Name, "HI") || strings.Contains(f.Name, "Hi"):
			fmt.Fprintf(&b, "    return (Value + 2048) >> %d;\n", 32-f.Bits)
		case f.PCRel:
			fmt.Fprintf(&b, "    return (Value >> 1) & %d;\n", (1<<f.Bits)-1)
		default:
			fmt.Fprintf(&b, "    return Value & %d;\n", (1<<f.Bits)-1)
		}
	}
	b.WriteString("  default:\n")
	b.WriteString("    llvm_unreachable(\"unknown fixup kind\");\n")
	b.WriteString("  }\n")
	b.WriteString("}\n")
	return b.String()
}

func genApplyFixup(t *TargetSpec) string {
	var b strings.Builder
	fmt.Fprintf(&b, "void %sAsmBackend::applyFixup(const MCFixup &Fixup, MutableArrayRef Data, unsigned Value) {\n", t.Name)
	b.WriteString("  Value = adjustFixupValue(Fixup, Value);\n")
	b.WriteString("  if (Value == 0) {\n")
	b.WriteString("    return;\n")
	b.WriteString("  }\n")
	b.WriteString("  unsigned Offset = Fixup.getOffset();\n")
	b.WriteString("  unsigned NumBytes = 4;\n")
	if t.BigEndian {
		b.WriteString("  for (unsigned i = 0; i != NumBytes; ++i) {\n")
		b.WriteString("    Data.set(Offset + i, (Value >> ((NumBytes - i - 1) * 8)) & 255);\n")
		b.WriteString("  }\n")
	} else {
		b.WriteString("  for (unsigned i = 0; i != NumBytes; ++i) {\n")
		b.WriteString("    Data.set(Offset + i, (Value >> (i * 8)) & 255);\n")
		b.WriteString("  }\n")
	}
	b.WriteString("}\n")
	return b.String()
}

func genEncodeInstruction(t *TargetSpec) string {
	inst := t.Inst(ClassALU)
	var b strings.Builder
	fmt.Fprintf(&b, "void %sMCCodeEmitter::encodeInstruction(const MCInst &MI, raw_ostream &OS, const MCSubtargetInfo &STI) {\n", t.Name)
	b.WriteString("  unsigned Bits = getBinaryCodeForInstr(MI);\n")
	fmt.Fprintf(&b, "  unsigned Size = %d;\n", inst.Size)
	if t.BigEndian {
		b.WriteString("  for (unsigned i = 0; i != Size; ++i) {\n")
		b.WriteString("    OS.write((Bits >> ((Size - i - 1) * 8)) & 255);\n")
		b.WriteString("  }\n")
	} else {
		b.WriteString("  for (unsigned i = 0; i != Size; ++i) {\n")
		b.WriteString("    OS.write((Bits >> (i * 8)) & 255);\n")
		b.WriteString("  }\n")
	}
	b.WriteString("}\n")
	return b.String()
}

func genGetMachineOpValue(t *TargetSpec) string {
	var b strings.Builder
	fmt.Fprintf(&b, "unsigned %sMCCodeEmitter::getMachineOpValue(const MCInst &MI, const MCOperand &MO) {\n", t.Name)
	b.WriteString("  if (MO.isReg()) {\n")
	fmt.Fprintf(&b, "    return MO.getReg() - %s::%s;\n", t.Name, t.RegEnum(0))
	b.WriteString("  }\n")
	b.WriteString("  if (MO.isImm()) {\n")
	b.WriteString("    return static_cast<unsigned>(MO.getImm());\n")
	b.WriteString("  }\n")
	b.WriteString("  llvm_unreachable(\"unhandled operand kind\");\n")
	b.WriteString("}\n")
	return b.String()
}

func genWriteNopData(t *TargetSpec) string {
	nop := t.Inst(ClassALU)
	var b strings.Builder
	fmt.Fprintf(&b, "bool %sAsmBackend::writeNopData(raw_ostream &OS, unsigned Count) {\n", t.Name)
	fmt.Fprintf(&b, "  unsigned MinNopSize = %d;\n", nop.Size)
	b.WriteString("  if (Count % MinNopSize != 0) {\n")
	b.WriteString("    return false;\n")
	b.WriteString("  }\n")
	b.WriteString("  for (unsigned i = 0; i != Count; i += MinNopSize) {\n")
	fmt.Fprintf(&b, "    OS.write(%d);\n", nop.Opcode)
	b.WriteString("  }\n")
	b.WriteString("  return true;\n")
	b.WriteString("}\n")
	return b.String()
}

func genGetFixupKindInfo(t *TargetSpec) string {
	var b strings.Builder
	fmt.Fprintf(&b, "unsigned %sAsmBackend::getFixupKindNumBits(unsigned Kind) {\n", t.Name)
	b.WriteString("  switch (Kind) {\n")
	b.WriteString("  case FK_Data_4:\n")
	b.WriteString("    return 32;\n")
	b.WriteString("  case FK_Data_8:\n")
	b.WriteString("    return 64;\n")
	for _, f := range t.Fixups() {
		fmt.Fprintf(&b, "  case %s::%s:\n", t.Name, f.Name)
		fmt.Fprintf(&b, "    return %d;\n", f.Bits)
	}
	b.WriteString("  default:\n")
	b.WriteString("    llvm_unreachable(\"unknown fixup kind\");\n")
	b.WriteString("  }\n")
	b.WriteString("}\n")
	return b.String()
}

func genPrintOperand(t *TargetSpec) string {
	var b strings.Builder
	fmt.Fprintf(&b, "void %sInstPrinter::printOperand(const MCInst &MI, unsigned OpNo, raw_ostream &OS) {\n", t.Name)
	b.WriteString("  const MCOperand &MO = MI.getOperand(OpNo);\n")
	b.WriteString("  if (MO.isReg()) {\n")
	b.WriteString("    OS.print(getRegisterName(MO.getReg()));\n")
	b.WriteString("    return;\n")
	b.WriteString("  }\n")
	b.WriteString("  if (MO.isImm()) {\n")
	if t.HasRealtime {
		// xCORE-style printers mark resource immediates.
		b.WriteString("    OS.print(\"res[\");\n")
		b.WriteString("    OS.printInt(MO.getImm());\n")
		b.WriteString("    OS.print(\"]\");\n")
	} else {
		b.WriteString("    OS.printInt(MO.getImm());\n")
	}
	b.WriteString("    return;\n")
	b.WriteString("  }\n")
	b.WriteString("  llvm_unreachable(\"unknown operand\");\n")
	b.WriteString("}\n")
	return b.String()
}

func genGetRegisterName(t *TargetSpec) string {
	var b strings.Builder
	fmt.Fprintf(&b, "StringRef %sInstPrinter::getRegisterName(unsigned Reg) {\n", t.Name)
	// Special-name registers print by role; the rest by index.
	if t.SPIndex >= 0 {
		fmt.Fprintf(&b, "  if (Reg == %s) {\n    return \"%s\";\n  }\n", t.SP(), "sp")
	}
	if t.FPIndex >= 0 && t.FPIndex != t.SPIndex {
		fmt.Fprintf(&b, "  if (Reg == %s) {\n    return \"%s\";\n  }\n", t.FP(), "fp")
	}
	if t.RegSymbol != "" {
		fmt.Fprintf(&b, "  return formatRegisterSym(\"%s\", \"%s\", Reg - %s::%s);\n", t.RegSymbol, t.RegPrefix, t.Name, t.RegEnum(0))
	} else {
		fmt.Fprintf(&b, "  return formatRegister(\"%s\", Reg - %s::%s);\n", t.RegPrefix, t.Name, t.RegEnum(0))
	}
	b.WriteString("}\n")
	return b.String()
}

// fixupOfKind returns the fixup spec of a kind, or nil.
func (t *TargetSpec) fixupOfKind(k FixupKind) *FixupSpec {
	for _, f := range t.Fixups() {
		if f.Kind == k {
			g := f
			return &g
		}
	}
	return nil
}

func emiFuncs() []InterfaceFunc {
	return []InterfaceFunc{
		{Name: "getRelocType", Module: EMI, Gen: genGetRelocType},
		{Name: "adjustFixupValue", Module: EMI, Gen: genAdjustFixupValue},
		{Name: "applyFixup", Module: EMI, Gen: genApplyFixup},
		{Name: "encodeInstruction", Module: EMI, Gen: genEncodeInstruction},
		{Name: "getMachineOpValue", Module: EMI, Gen: genGetMachineOpValue},
		{Name: "writeNopData", Module: EMI, Gen: genWriteNopData},
		{Name: "getFixupKindNumBits", Module: EMI, Gen: genGetFixupKindInfo},
		{Name: "printOperand", Module: EMI, Gen: genPrintOperand},
		{Name: "getRegisterName", Module: EMI, Gen: genGetRegisterName},
	}
}
