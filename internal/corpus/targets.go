package corpus

// stdInsts builds a target's instruction set from its mnemonic table and
// feature flags. Opcodes, sizes and latencies vary deterministically with
// the base so that encoders and schedulers differ across targets.
func stdInsts(base int, size int, names map[InstClass][]string, hwloop, simd, rtio bool) []InstSpec {
	var out []InstSpec
	add := func(class InstClass, mnems []string, lat int) {
		for i, m := range mnems {
			out = append(out, InstSpec{
				Enum:     upper(m),
				Mnemonic: m,
				Class:    class,
				Opcode:   base + len(out),
				Size:     size,
				Latency:  lat + i%2,
			})
		}
	}
	add(ClassALU, names[ClassALU], 1)
	add(ClassMove, names[ClassMove], 1)
	add(ClassLoad, names[ClassLoad], 3)
	add(ClassStore, names[ClassStore], 1)
	add(ClassBranch, names[ClassBranch], 2)
	add(ClassCall, names[ClassCall], 2)
	if hwloop {
		add(ClassLoop, names[ClassLoop], 1)
	}
	if simd {
		add(ClassSIMD, names[ClassSIMD], 2)
	}
	if rtio {
		add(ClassIO, names[ClassIO], 4)
	}
	return out
}

var riscNames = map[InstClass][]string{
	ClassALU:    {"add", "sub", "and", "or", "xor", "sll", "srl"},
	ClassMove:   {"mv", "lui"},
	ClassLoad:   {"lw", "lh", "lb"},
	ClassStore:  {"sw", "sh", "sb"},
	ClassBranch: {"beq", "bne", "jal"},
	ClassCall:   {"call"},
	ClassLoop:   {"lp_starti", "lp_endi", "lp_count"},
	ClassSIMD:   {"pv_add_h", "pv_sub_h", "pv_dotsp_h"},
	ClassIO:     {"outw", "inw", "setc"},
}

var ciscNames = map[InstClass][]string{
	ClassALU:    {"addl", "subl", "andl", "orl", "xorl", "shll", "shrl"},
	ClassMove:   {"movl", "leal"},
	ClassLoad:   {"movzxl", "movsxb"},
	ClassStore:  {"movsl", "pushq"},
	ClassBranch: {"je", "jne", "jmp"},
	ClassCall:   {"calll"},
}

var armNames = map[InstClass][]string{
	ClassALU:    {"add", "sub", "and", "orr", "eor", "lsl", "lsr"},
	ClassMove:   {"mov", "movt"},
	ClassLoad:   {"ldr", "ldrh", "ldrb"},
	ClassStore:  {"str", "strh", "strb"},
	ClassBranch: {"beq", "bne", "b"},
	ClassCall:   {"bl"},
	ClassSIMD:   {"vadd", "vsub", "vmul"},
}

var mipsNames = map[InstClass][]string{
	ClassALU:    {"addu", "subu", "and", "or", "xor", "sllv", "srlv"},
	ClassMove:   {"move", "lui"},
	ClassLoad:   {"lw", "lhu", "lbu"},
	ClassStore:  {"sw", "sh", "sb"},
	ClassBranch: {"beq", "bne", "j"},
	ClassCall:   {"jal"},
}

var dspNames = map[InstClass][]string{
	ClassALU:    {"A2_add", "A2_sub", "A2_and", "A2_or", "A2_xor", "S2_asl", "S2_lsr"},
	ClassMove:   {"A2_tfr", "A2_tfrsi"},
	ClassLoad:   {"L2_loadri", "L2_loadrh", "L2_loadrb"},
	ClassStore:  {"S2_storeri", "S2_storerh", "S2_storerb"},
	ClassBranch: {"J2_jumpt", "J2_jumpf", "J2_jump"},
	ClassCall:   {"J2_call"},
	ClassLoop:   {"J2_loop0i", "J2_loop1i", "J2_endloop"},
	ClassSIMD:   {"V6_vadd", "V6_vsub", "V6_vmpy"},
}

var xcoreNames = map[InstClass][]string{
	ClassALU:    {"add", "sub", "and", "or", "xor", "shl", "shr"},
	ClassMove:   {"mkmsk", "ldc"},
	ClassLoad:   {"ldw", "ld16s", "ld8u"},
	ClassStore:  {"stw", "st16", "st8"},
	ClassBranch: {"bt", "bf", "bu"},
	ClassCall:   {"bl"},
	ClassIO:     {"out", "in", "setc"},
}

// Targets returns the full fleet: training backends plus the three
// held-out evaluation targets (RISCV, RI5CY, XCORE).
func Targets() []*TargetSpec {
	stdFix := []FixupKind{FixHi, FixLo, FixBranch, FixJump, FixCall, FixAbs32}
	richFix := append(append([]FixupKind{}, stdFix...), FixPCRelHi, FixPCRelLo, FixGotHi)
	ts := []*TargetSpec{
		// --- training backends, patterned on real LLVM targets ---
		{
			Name: "ARM", TdName: "ARM", Style: StyleLower, PtrBits: 32, StackAlign: 8,
			LoBits: 16, ProcName: "cortex-a8", RegSymbol: "",
			NumRegs: 16, RegPrefix: "r", SPIndex: 13, FPIndex: 11, RAIndex: 14,
			CalleeSaved:    []int{4, 5, 6, 7, 8, 9, 10, 11},
			HasVariantKind: true, HasSIMD: true, HasDisassembler: true, CmpUsesFlags: true,
			FixupKinds: richFix,
			InstSet:    stdInsts(0x10, 4, armNames, false, true, false),
		},
		{
			Name: "Mips", TdName: "Mips", Style: StyleUpper, BigEndian: true, PtrBits: 32, StackAlign: 8,
			LoBits: 16, ProcName: "mips32r2", RegSymbol: "$",
			NumRegs: 32, RegPrefix: "r", SPIndex: 29, FPIndex: 30, RAIndex: 31,
			CalleeSaved:     []int{16, 17, 18, 19, 20, 21, 22, 23, 30},
			HasDisassembler: true, HasDelaySlots: true,
			FixupKinds: richFix,
			InstSet:    stdInsts(0x20, 4, mipsNames, false, false, false),
		},
		{
			Name: "X86", TdName: "X86", Style: StyleShort, PtrBits: 64, StackAlign: 16,
			LoBits: 16, ProcName: "x86-64", RegSymbol: "%",
			NumRegs: 16, RegPrefix: "r", SPIndex: 4, FPIndex: 5, RAIndex: -1,
			CalleeSaved:     []int{3, 5, 12, 13, 14, 15},
			HasDisassembler: true, CmpUsesFlags: true,
			FixupKinds: []FixupKind{FixAbs32, FixAbs64, FixPCRelHi, FixCall, FixGotHi, FixTLS},
			InstSet:    stdInsts(0x30, 1, ciscNames, false, false, false),
		},
		{
			Name: "PPC", TdName: "PowerPC", Style: StyleLower, BigEndian: true, PtrBits: 64, StackAlign: 16,
			LoBits: 16, ProcName: "ppc64le", RegSymbol: "",
			NumRegs: 32, RegPrefix: "r", SPIndex: 1, FPIndex: 31, RAIndex: -1,
			CalleeSaved:    []int{14, 15, 16, 17, 18, 19, 20},
			HasVariantKind: true, HasSIMD: true, HasDisassembler: true,
			FixupKinds: richFix,
			InstSet:    stdInsts(0x40, 4, riscNames, false, true, false),
		},
		{
			Name: "Sparc", TdName: "Sparc", Style: StyleUpper, BigEndian: true, PtrBits: 32, StackAlign: 8,
			LoBits: 13, ProcName: "v9", RegSymbol: "%",
			NumRegs: 32, RegPrefix: "g", SPIndex: 14, FPIndex: 30, RAIndex: 15,
			CalleeSaved:     []int{16, 17, 18, 19, 20, 21, 22, 23},
			HasDisassembler: true, HasDelaySlots: true,
			FixupKinds: stdFix,
			InstSet:    stdInsts(0x50, 4, mipsNames, false, false, false),
		},
		{
			Name: "Hexagon", TdName: "Hexagon", Style: StyleLower, PtrBits: 32, StackAlign: 8,
			LoBits: 12, ProcName: "hexagonv60", RegSymbol: "",
			NumRegs: 32, RegPrefix: "r", SPIndex: 29, FPIndex: 30, RAIndex: 31,
			CalleeSaved:     []int{16, 17, 18, 19, 20, 21, 22, 23, 24},
			HasHardwareLoop: true, HasSIMD: true, HasDisassembler: true,
			FixupKinds: richFix,
			InstSet:    stdInsts(0x60, 4, dspNames, true, true, false),
		},
		{
			Name: "Lanai", TdName: "Lanai", Style: StyleShort, BigEndian: true, PtrBits: 32, StackAlign: 8,
			LoBits: 16, ProcName: "v11", RegSymbol: "",
			NumRegs: 32, RegPrefix: "r", SPIndex: 4, FPIndex: 5, RAIndex: 15,
			CalleeSaved:     []int{16, 17, 18, 19, 20, 21},
			HasDisassembler: true,
			FixupKinds:      stdFix,
			InstSet:         stdInsts(0x70, 4, riscNames, false, false, false),
		},
		{
			Name: "MSP430", TdName: "MSP430", Style: StyleShort, PtrBits: 16, StackAlign: 2,
			LoBits: 16, ProcName: "msp430x", RegSymbol: "",
			NumRegs: 16, RegPrefix: "r", SPIndex: 1, FPIndex: 4, RAIndex: -1,
			CalleeSaved:  []int{4, 5, 6, 7, 8, 9, 10},
			CmpUsesFlags: true,
			FixupKinds:   []FixupKind{FixHi, FixLo, FixBranch, FixCall, FixAbs32},
			InstSet:      stdInsts(0x80, 2, ciscNames, false, false, false),
		},
		{
			Name: "AVR", TdName: "AVR", Style: StyleLower, PtrBits: 16, StackAlign: 1,
			LoBits: 8, ProcName: "atmega328", RegSymbol: "",
			NumRegs: 32, RegPrefix: "r", SPIndex: 28, FPIndex: 28, RAIndex: -1,
			CalleeSaved:  []int{2, 3, 4, 5, 6, 7, 8, 9},
			CmpUsesFlags: true,
			FixupKinds:   []FixupKind{FixHi, FixLo, FixBranch, FixCall, FixAbs32},
			InstSet:      stdInsts(0x90, 2, riscNames, false, false, false),
		},
		{
			Name: "SystemZ", TdName: "SystemZ", Style: StyleShort, BigEndian: true, PtrBits: 64, StackAlign: 8,
			LoBits: 16, ProcName: "z13", RegSymbol: "%",
			NumRegs: 16, RegPrefix: "r", SPIndex: 15, FPIndex: 11, RAIndex: 14,
			CalleeSaved:    []int{6, 7, 8, 9, 10, 11, 12, 13},
			HasVariantKind: true, HasDisassembler: true, CmpUsesFlags: true,
			FixupKinds: []FixupKind{FixAbs32, FixAbs64, FixPCRelHi, FixCall, FixTLS},
			InstSet:    stdInsts(0xA0, 4, ciscNames, false, false, false),
		},
		{
			Name: "AArch64", TdName: "AArch64", Style: StyleLower, PtrBits: 64, StackAlign: 16,
			LoBits: 12, ProcName: "cortex-a53", RegSymbol: "",
			NumRegs: 32, RegPrefix: "x", SPIndex: 31, FPIndex: 29, RAIndex: 30,
			CalleeSaved:    []int{19, 20, 21, 22, 23, 24, 25, 26, 27, 28},
			HasVariantKind: true, HasSIMD: true, HasDisassembler: true, CmpUsesFlags: true,
			FixupKinds: richFix,
			InstSet:    stdInsts(0xB0, 4, armNames, false, true, false),
		},
		{
			Name: "BPF", TdName: "BPF", Style: StyleShort, PtrBits: 64, StackAlign: 8,
			LoBits: 16, ProcName: "v2", RegSymbol: "",
			NumRegs: 11, RegPrefix: "r", SPIndex: 10, FPIndex: 10, RAIndex: -1,
			CalleeSaved: []int{6, 7, 8, 9},
			FixupKinds:  []FixupKind{FixAbs32, FixAbs64, FixCall},
			InstSet:     stdInsts(0xC0, 8, riscNames, false, false, false),
		},
		{
			Name: "VE", TdName: "VE", Style: StyleLower, PtrBits: 64, StackAlign: 16,
			LoBits: 12, ProcName: "ve1", RegSymbol: "%",
			NumRegs: 64, RegPrefix: "s", SPIndex: 11, FPIndex: 9, RAIndex: 10,
			CalleeSaved:    []int{18, 19, 20, 21, 22, 23, 24},
			HasVariantKind: true, HasSIMD: true, HasDisassembler: true,
			FixupKinds: richFix,
			InstSet:    stdInsts(0xD0, 8, riscNames, false, true, false),
		},
		{
			Name: "ARC", TdName: "ARC", Style: StyleCamel, PtrBits: 32, StackAlign: 4,
			LoBits: 9, ProcName: "archs", RegSymbol: "",
			NumRegs: 32, RegPrefix: "r", SPIndex: 28, FPIndex: 27, RAIndex: 31,
			CalleeSaved:     []int{13, 14, 15, 16, 17, 18},
			HasHardwareLoop: true, HasDisassembler: true,
			FixupKinds: stdFix,
			InstSet:    stdInsts(0xE0, 4, riscNames, true, false, false),
		},
		{
			Name: "CSKY", TdName: "CSKY", Style: StyleLower, PtrBits: 32, StackAlign: 4,
			LoBits: 12, ProcName: "ck810", RegSymbol: "",
			NumRegs: 32, RegPrefix: "r", SPIndex: 14, FPIndex: 8, RAIndex: 15,
			CalleeSaved:     []int{4, 5, 6, 7, 8, 9, 10, 11},
			HasHardwareLoop: true, HasSIMD: true, HasDisassembler: true,
			FixupKinds: richFix,
			InstSet:    stdInsts(0xF0, 4, riscNames, true, true, false),
		},
		{
			Name: "Xtensa", TdName: "Xtensa", Style: StyleCamel, PtrBits: 32, StackAlign: 4,
			LoBits: 8, ProcName: "esp32", RegSymbol: "",
			NumRegs: 16, RegPrefix: "a", SPIndex: 1, FPIndex: 15, RAIndex: 0,
			CalleeSaved:     []int{12, 13, 14, 15},
			HasHardwareLoop: true,
			FixupKinds:      stdFix,
			InstSet:         stdInsts(0x100, 3, riscNames, true, false, false),
		},
		{
			Name: "NIOS2", TdName: "Nios2", Style: StyleUpper, PtrBits: 32, StackAlign: 4,
			LoBits: 16, ProcName: "nios2r1", RegSymbol: "",
			NumRegs: 32, RegPrefix: "r", SPIndex: 27, FPIndex: 28, RAIndex: 31,
			CalleeSaved:   []int{16, 17, 18, 19, 20, 21, 22},
			HasDelaySlots: true,
			FixupKinds:    stdFix,
			InstSet:       stdInsts(0x110, 4, mipsNames, false, false, false),
		},

		// --- held-out evaluation targets ---
		{
			Name: "RISCV", TdName: "RISCV", Style: StyleLower, PtrBits: 32, StackAlign: 16,
			LoBits: 12, ProcName: "generic-rv32", RegSymbol: "",
			NumRegs: 32, RegPrefix: "x", SPIndex: 2, FPIndex: 8, RAIndex: 1,
			CalleeSaved:     []int{8, 9, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27},
			HasDisassembler: true,
			FixupKinds:      richFix,
			InstSet:         stdInsts(0x120, 4, riscNames, false, false, false),
			Eval:            true,
		},
		{
			Name: "RI5CY", TdName: "RI5CY", Style: StyleLower, PtrBits: 32, StackAlign: 16,
			LoBits: 12, ProcName: "pulp-ri5cy", RegSymbol: "",
			NumRegs: 32, RegPrefix: "x", SPIndex: 2, FPIndex: 8, RAIndex: 1,
			CalleeSaved:     []int{8, 9, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27},
			HasHardwareLoop: true, HasSIMD: true, HasDisassembler: true,
			FixupKinds: richFix,
			InstSet:    stdInsts(0x130, 4, riscNames, true, true, false),
			Eval:       true,
		},
		{
			Name: "XCore", TdName: "XCore", Style: StyleShort, PtrBits: 32, StackAlign: 4,
			LoBits: 10, ProcName: "xs1b-generic", RegSymbol: "",
			NumRegs: 12, RegPrefix: "r", SPIndex: 11, FPIndex: 10, RAIndex: -1,
			CalleeSaved: []int{4, 5, 6, 7, 8, 9, 10},
			HasRealtime: true, // thread scheduler / synchronization ISA
			// LLVM 3.0 lacks the XCore disassembler module (paper §4.1.4).
			HasDisassembler: false,
			FixupKinds:      []FixupKind{FixHi, FixLo, FixBranch, FixCall, FixAbs32},
			InstSet:         stdInsts(0x140, 2, xcoreNames, false, false, true),
			Eval:            true,
		},
	}
	return ts
}

// TrainingTargets filters the fleet to the non-eval backends.
func TrainingTargets() []*TargetSpec {
	var out []*TargetSpec
	for _, t := range Targets() {
		if !t.Eval {
			out = append(out, t)
		}
	}
	return out
}

// EvalTargets returns the three held-out targets.
func EvalTargets() []*TargetSpec {
	var out []*TargetSpec
	for _, t := range Targets() {
		if t.Eval {
			out = append(out, t)
		}
	}
	return out
}

// FindTarget looks a target up by name.
func FindTarget(name string) *TargetSpec {
	for _, t := range Targets() {
		if t.Name == name {
			return t
		}
	}
	return nil
}
