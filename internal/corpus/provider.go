package corpus

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"iter"
	"sync"

	"vega/internal/cpp"
	"vega/internal/tablegen"
)

// Provider is the streaming corpus abstraction: instead of holding every
// backend resident (Build), a Provider yields one function group at a
// time, so Stage 1 memory stays bounded by a single group regardless of
// fleet size.
//
// The resident *Corpus implements Provider (groups come from the parsed
// backends), and Stream renders groups on demand straight from the
// TargetSpecs. Method names avoid Corpus's Tree/Targets field names.
type Provider interface {
	// TargetSpecs iterates the fleet in its canonical order.
	TargetSpecs() iter.Seq[*TargetSpec]
	// SourceTree returns the rendered .td/.h/.def tree for the fleet.
	SourceTree() *tablegen.SourceTree
	// GroupSource collects one interface function's implementations
	// across the training targets, in fleet order. Targets that do not
	// implement the function are absent; an empty group has no targets.
	GroupSource(fn InterfaceFunc) *GroupSource
	// ReferenceBackend returns the full parsed reference backend for one
	// target (used by eval and verify-and-repair), or an error if the
	// fleet has no such target.
	ReferenceBackend(name string) (*Backend, error)
}

// GroupSource is the raw material of one Stage 1 function group: per
// training target, the reference implementation of one interface
// function. Sources[i] is a content-representative string for Targets[i]
// — the rendered C++ text, or an "ast:<hash>" fingerprint when only a
// parsed form exists (adopted backends) — and is what per-group cache
// keys hash.
type GroupSource struct {
	Func    InterfaceFunc
	Targets []string
	Sources []string

	impls []*cpp.Node // pre-parsed, when the provider has them resident
}

// Impls returns the parsed implementations aligned with Targets, parsing
// the rendered sources on demand when the provider streamed them.
func (g *GroupSource) Impls() ([]*cpp.Node, error) {
	if g.impls != nil {
		return g.impls, nil
	}
	out := make([]*cpp.Node, len(g.Targets))
	for i, src := range g.Sources {
		fn, err := ParseFunction(src)
		if err != nil {
			return nil, fmt.Errorf("corpus: %s %s: %w\n%s", g.Targets[i], g.Func.Name, err, src)
		}
		out[i] = fn
	}
	return out, nil
}

// nodeFingerprint hashes a parsed function deterministically (kind,
// value, and child structure) for backends that carry no source text.
func nodeFingerprint(n *cpp.Node) string {
	h := sha256.New()
	var walk func(n *cpp.Node)
	var num [4]byte
	walk = func(n *cpp.Node) {
		binary.LittleEndian.PutUint32(num[:], uint32(n.Kind))
		h.Write(num[:])
		h.Write([]byte(n.Value))
		h.Write([]byte{0})
		binary.LittleEndian.PutUint32(num[:], uint32(len(n.Children)))
		h.Write(num[:])
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(n)
	return hex.EncodeToString(h.Sum(nil))
}

// TargetSpecs implements Provider over the resident fleet.
func (c *Corpus) TargetSpecs() iter.Seq[*TargetSpec] {
	return func(yield func(*TargetSpec) bool) {
		for _, t := range c.Targets {
			if !yield(t) {
				return
			}
		}
	}
}

// SourceTree implements Provider.
func (c *Corpus) SourceTree() *tablegen.SourceTree { return c.Tree }

// GroupSource implements Provider from the parsed backends.
func (c *Corpus) GroupSource(fn InterfaceFunc) *GroupSource {
	gs := &GroupSource{Func: fn}
	for _, t := range c.Targets {
		if t.Eval {
			continue
		}
		b := c.Backends[t.Name]
		if b == nil {
			continue
		}
		node, ok := b.Funcs[fn.Name]
		if !ok {
			continue
		}
		src := b.Sources[fn.Name]
		if src == "" {
			// Adopted backends (AdoptBackend) carry parsed functions
			// only; fingerprint the AST so cache keys stay content-true.
			src = "ast:" + nodeFingerprint(node)
		}
		gs.Targets = append(gs.Targets, t.Name)
		gs.Sources = append(gs.Sources, src)
		gs.impls = append(gs.impls, node)
	}
	return gs
}

// ReferenceBackend implements Provider.
func (c *Corpus) ReferenceBackend(name string) (*Backend, error) {
	if b := c.Backends[name]; b != nil {
		return b, nil
	}
	return nil, fmt.Errorf("corpus: no backend %q", name)
}

// Stream is the on-demand Provider: it renders each function group
// straight from the TargetSpecs when asked, holding only the source tree
// (cheap text) resident. Reference backends are materialized lazily and
// memoized, so eval-only paths pay for just the targets they touch.
type Stream struct {
	specs []*TargetSpec
	tree  *tablegen.SourceTree

	mu   sync.Mutex
	refs map[string]*Backend
}

// NewStream builds a streaming provider over an explicit fleet.
func NewStream(specs []*TargetSpec) *Stream {
	return &Stream{
		specs: specs,
		tree:  BuildTree(specs),
		refs:  make(map[string]*Backend),
	}
}

// TargetSpecs implements Provider.
func (s *Stream) TargetSpecs() iter.Seq[*TargetSpec] {
	return func(yield func(*TargetSpec) bool) {
		for _, t := range s.specs {
			if !yield(t) {
				return
			}
		}
	}
}

// SourceTree implements Provider.
func (s *Stream) SourceTree() *tablegen.SourceTree { return s.tree }

// GroupSource implements Provider by rendering the group's sources.
func (s *Stream) GroupSource(fn InterfaceFunc) *GroupSource {
	gs := &GroupSource{Func: fn}
	for _, t := range s.specs {
		if t.Eval {
			continue
		}
		src := fn.Gen(t)
		if src == "" {
			continue
		}
		gs.Targets = append(gs.Targets, t.Name)
		gs.Sources = append(gs.Sources, src)
	}
	return gs
}

// ReferenceBackend implements Provider, building each backend on first
// use and memoizing it.
func (s *Stream) ReferenceBackend(name string) (*Backend, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if b, ok := s.refs[name]; ok {
		return b, nil
	}
	t := FindIn(s.specs, name)
	if t == nil {
		return nil, fmt.Errorf("corpus: no backend %q", name)
	}
	b, err := BuildBackend(t)
	if err != nil {
		return nil, err
	}
	s.refs[name] = b
	return b, nil
}

// Override decorates a Provider, replacing the rendered source of one
// (function, target) pair. It models "the user edited one target's
// implementation" for incremental-invalidation tests and benchmarks:
// exactly one group's cache key changes, and that group re-parses from
// the overridden text.
type Override struct {
	Provider
	FuncName string
	Target   string
	Source   string
}

// GroupSource substitutes the override and drops pre-parsed impls for
// the affected group so it re-parses from text.
func (o *Override) GroupSource(fn InterfaceFunc) *GroupSource {
	gs := o.Provider.GroupSource(fn)
	if fn.Name != o.FuncName {
		return gs
	}
	out := &GroupSource{
		Func:    gs.Func,
		Targets: gs.Targets,
		Sources: append([]string(nil), gs.Sources...),
	}
	for i, t := range out.Targets {
		if t == o.Target {
			out.Sources[i] = o.Source
		}
	}
	return out
}

// Specs collects a provider's fleet as a slice.
func Specs(p Provider) []*TargetSpec {
	var out []*TargetSpec
	for t := range p.TargetSpecs() {
		out = append(out, t)
	}
	return out
}

// TrainingSpecs collects the provider's training targets, in fleet order.
func TrainingSpecs(p Provider) []*TargetSpec {
	var out []*TargetSpec
	for t := range p.TargetSpecs() {
		if !t.Eval {
			out = append(out, t)
		}
	}
	return out
}

// FindSpec returns the provider's target with the given name, or nil.
func FindSpec(p Provider, name string) *TargetSpec {
	for t := range p.TargetSpecs() {
		if t.Name == name {
			return t
		}
	}
	return nil
}

// FindIn returns the spec with the given name from a slice, or nil.
func FindIn(specs []*TargetSpec, name string) *TargetSpec {
	for _, t := range specs {
		if t.Name == name {
			return t
		}
	}
	return nil
}
