package corpus

import (
	"fmt"
	"strings"
)

// Assembly parsing (ASS) and Disassembler (DIS) interface functions.

func genMatchRegisterName(t *TargetSpec) string {
	var b strings.Builder
	fmt.Fprintf(&b, "unsigned %sAsmParser::matchRegisterName(StringRef Name) {\n", t.Name)
	fmt.Fprintf(&b, "  if (Name == \"sp\") {\n    return %s;\n  }\n", t.SP())
	if t.FPIndex >= 0 && t.FPIndex != t.SPIndex {
		fmt.Fprintf(&b, "  if (Name == \"fp\") {\n    return %s;\n  }\n", t.FP())
	}
	if t.RAIndex >= 0 && t.RAIndex != t.SPIndex {
		fmt.Fprintf(&b, "  if (Name == \"ra\") {\n    return %s::%s;\n  }\n", t.Name, t.RegEnum(t.RAIndex))
	}
	fmt.Fprintf(&b, "  int Num = parseRegisterIndex(Name, \"%s\");\n", t.RegPrefix)
	b.WriteString("  if (Num < 0) {\n")
	b.WriteString("    return NoRegister;\n")
	b.WriteString("  }\n")
	fmt.Fprintf(&b, "  if (Num >= %d) {\n", t.NumRegs)
	b.WriteString("    return NoRegister;\n")
	b.WriteString("  }\n")
	fmt.Fprintf(&b, "  return %s::%s + Num;\n", t.Name, t.RegEnum(0))
	b.WriteString("}\n")
	return b.String()
}

func genMatchInstruction(t *TargetSpec) string {
	call := t.Inst(ClassCall)
	branches := t.Insts(ClassBranch)
	var b strings.Builder
	fmt.Fprintf(&b, "unsigned %sAsmParser::matchInstruction(StringRef Mnemonic) {\n", t.Name)
	fmt.Fprintf(&b, "  if (Mnemonic == \"%s\") {\n    return %s;\n  }\n", call.Mnemonic, t.QualInst(call))
	fmt.Fprintf(&b, "  if (Mnemonic == \"%s\") {\n    return %s;\n  }\n", branches[0].Mnemonic, t.QualInst(branches[0]))
	if t.HasHardwareLoop {
		loop := t.Inst(ClassLoop)
		b.WriteString("  if (STI.hasFeature(HasHardwareLoop)) {\n")
		fmt.Fprintf(&b, "    if (Mnemonic == \"%s\") {\n      return %s;\n    }\n", loop.Mnemonic, t.QualInst(loop))
		b.WriteString("  }\n")
	}
	if t.HasRealtime {
		io := t.Inst(ClassIO)
		b.WriteString("  if (STI.hasFeature(HasRealtimeISA)) {\n")
		fmt.Fprintf(&b, "    if (Mnemonic == \"%s\") {\n      return %s;\n    }\n", io.Mnemonic, t.QualInst(io))
		b.WriteString("  }\n")
	}
	if t.HasTensorOps {
		tens := t.Inst(ClassTensor)
		b.WriteString("  if (STI.hasFeature(HasTensorOps)) {\n")
		fmt.Fprintf(&b, "    if (Mnemonic == \"%s\") {\n      return %s;\n    }\n", tens.Mnemonic, t.QualInst(tens))
		b.WriteString("  }\n")
	}
	for _, e := range t.Extensions {
		inst, ok := t.instByMnemonic(extMnemonics(e)[0])
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "  if (STI.hasFeature(HasStdExt%s)) {\n", upper(e))
		fmt.Fprintf(&b, "    if (Mnemonic == \"%s\") {\n      return %s;\n    }\n", inst.Mnemonic, t.QualInst(inst))
		b.WriteString("  }\n")
	}
	b.WriteString("  return 0;\n")
	b.WriteString("}\n")
	return b.String()
}

func genValidateImmediate(t *TargetSpec) string {
	reach := t.ImmReach()
	var b strings.Builder
	fmt.Fprintf(&b, "bool %sAsmParser::validateImmediate(int Imm, bool IsBranch) {\n", t.Name)
	b.WriteString("  if (IsBranch) {\n")
	fmt.Fprintf(&b, "    return Imm %% 2 == 0 && Imm >= -%d && Imm < %d;\n", reach*2, reach*2)
	b.WriteString("  }\n")
	fmt.Fprintf(&b, "  return Imm >= -%d && Imm < %d;\n", reach, reach)
	b.WriteString("}\n")
	return b.String()
}

func genParseDirective(t *TargetSpec) string {
	var b strings.Builder
	fmt.Fprintf(&b, "bool %sAsmParser::parseDirective(StringRef Directive) {\n", t.Name)
	b.WriteString("  if (Directive == \".word\") {\n")
	b.WriteString("    return true;\n")
	b.WriteString("  }\n")
	if t.HasRealtime {
		// xCORE carries its own section directives for the thread runtime.
		b.WriteString("  if (Directive == \".cc_top\" || Directive == \".cc_bottom\") {\n")
		b.WriteString("    return true;\n")
		b.WriteString("  }\n")
	}
	if t.HasVariantKind {
		b.WriteString("  if (Directive == \".reloc\") {\n")
		b.WriteString("    return true;\n")
		b.WriteString("  }\n")
	}
	if t.Style == StyleUpper {
		// MIPS-family assemblers accept .set noreorder et al.
		b.WriteString("  if (Directive == \".set\") {\n")
		b.WriteString("    return true;\n")
		b.WriteString("  }\n")
	}
	if t.HasExt("c") {
		// RISC-V-style assemblers toggle compression via .option rvc.
		b.WriteString("  if (Directive == \".option\") {\n")
		b.WriteString("    return true;\n")
		b.WriteString("  }\n")
	}
	fmt.Fprintf(&b, "  if (Directive == \".align\") {\n    return %v;\n  }\n", t.StackAlign > 1)
	b.WriteString("  return false;\n")
	b.WriteString("}\n")
	return b.String()
}

func genIsValidCPU(t *TargetSpec) string {
	var b strings.Builder
	fmt.Fprintf(&b, "bool %sSubtarget::isValidCPU(StringRef CPU) {\n", t.Name)
	fmt.Fprintf(&b, "  if (CPU == \"%s\") {\n", t.procName())
	b.WriteString("    return true;\n")
	b.WriteString("  }\n")
	if len(t.Extensions) > 0 {
		// Extension families accept the base CPU plus its extension string.
		fmt.Fprintf(&b, "  if (CPU == \"%s%s\") {\n", t.procName(), strings.Join(t.Extensions, ""))
		b.WriteString("    return true;\n")
		b.WriteString("  }\n")
	}
	b.WriteString("  return CPU == \"generic\";\n")
	b.WriteString("}\n")
	return b.String()
}

func assFuncs() []InterfaceFunc {
	return []InterfaceFunc{
		{Name: "matchRegisterName", Module: ASS, Gen: genMatchRegisterName},
		{Name: "matchInstruction", Module: ASS, Gen: genMatchInstruction},
		{Name: "validateImmediate", Module: ASS, Gen: genValidateImmediate},
		{Name: "parseDirective", Module: ASS, Gen: genParseDirective},
		{Name: "isValidCPU", Module: ASS, Gen: genIsValidCPU},
	}
}

// --- DIS ---

func genDecodeGPRRegisterClass(t *TargetSpec) string {
	if !t.HasDisassembler {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "int %sDisassembler::decodeGPRRegisterClass(MCInst &MI, unsigned RegNo) {\n", t.Name)
	fmt.Fprintf(&b, "  if (RegNo >= %d) {\n", t.NumRegs)
	b.WriteString("    return Fail;\n")
	b.WriteString("  }\n")
	fmt.Fprintf(&b, "  unsigned Reg = %s::%s + RegNo;\n", t.Name, t.RegEnum(0))
	b.WriteString("  MI.addReg(Reg);\n")
	b.WriteString("  return Success;\n")
	b.WriteString("}\n")
	return b.String()
}

func genDecodeSImmOperand(t *TargetSpec) string {
	if !t.HasDisassembler {
		return ""
	}
	bits := t.LoBits
	if bits == 0 {
		bits = 12
	}
	var b strings.Builder
	fmt.Fprintf(&b, "int %sDisassembler::decodeSImmOperand(MCInst &MI, unsigned Imm) {\n", t.Name)
	fmt.Fprintf(&b, "  int Val = signExtend(Imm, %d);\n", bits)
	b.WriteString("  MI.addImm(Val);\n")
	b.WriteString("  return Success;\n")
	b.WriteString("}\n")
	return b.String()
}

func genGetInstructionOpcode(t *TargetSpec) string {
	if !t.HasDisassembler {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "int %sDisassembler::getInstructionOpcode(MCInst &MI, unsigned Insn) {\n", t.Name)
	b.WriteString("  switch (Insn) {\n")
	for _, class := range []InstClass{ClassALU, ClassLoad, ClassStore, ClassBranch, ClassCall} {
		insts := t.Insts(class)
		if len(insts) == 0 {
			continue
		}
		fmt.Fprintf(&b, "  case %d:\n", insts[0].Opcode)
		fmt.Fprintf(&b, "    MI.setOpcode(%s);\n", t.QualInst(insts[0]))
		b.WriteString("    return Success;\n")
	}
	b.WriteString("  default:\n")
	b.WriteString("    return Fail;\n")
	b.WriteString("  }\n")
	b.WriteString("}\n")
	return b.String()
}

func disFuncs() []InterfaceFunc {
	return []InterfaceFunc{
		{Name: "decodeGPRRegisterClass", Module: DIS, Gen: genDecodeGPRRegisterClass},
		{Name: "decodeSImmOperand", Module: DIS, Gen: genDecodeSImmOperand},
		{Name: "getInstructionOpcode", Module: DIS, Gen: genGetInstructionOpcode},
	}
}
