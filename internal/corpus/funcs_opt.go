package corpus

import (
	"fmt"
	"strings"
)

// Code Optimization (OPT) interface functions: machine-dependent
// peepholes, pseudo expansion, hardware-loop conversion.

func genGetInstSizeInBytes(t *TargetSpec) string {
	var b strings.Builder
	fmt.Fprintf(&b, "unsigned %sInstrInfo::getInstSizeInBytes(unsigned Opcode) {\n", t.Name)
	b.WriteString("  switch (Opcode) {\n")
	for _, inst := range t.Insts(ClassBranch) {
		fmt.Fprintf(&b, "  case %s:\n", t.QualInst(inst))
		fmt.Fprintf(&b, "    return %d;\n", inst.Size)
	}
	call := t.Inst(ClassCall)
	callMult := 2
	if t.HasVLIWBundles && t.BundleSize > 0 {
		// A call occupies a whole issue bundle.
		callMult = t.BundleSize
	}
	fmt.Fprintf(&b, "  case %s:\n", t.QualInst(call))
	fmt.Fprintf(&b, "    return %d;\n", call.Size*callMult)
	if t.HasExt("c") {
		// Compressed-extension instructions are half-width.
		for _, inst := range t.InstSet {
			if inst.Size == 2 {
				fmt.Fprintf(&b, "  case %s:\n", t.QualInst(inst))
			}
		}
		b.WriteString("    return 2;\n")
	}
	b.WriteString("  default:\n")
	fmt.Fprintf(&b, "    return %d;\n", t.Inst(ClassALU).Size)
	b.WriteString("  }\n")
	b.WriteString("}\n")
	return b.String()
}

func genIsLoadFromStackSlot(t *TargetSpec) string {
	var b strings.Builder
	fmt.Fprintf(&b, "bool %sInstrInfo::isLoadFromStackSlot(const MachineInstr &MI) {\n", t.Name)
	b.WriteString("  switch (MI.getOpcode()) {\n")
	for _, inst := range t.Insts(ClassLoad) {
		fmt.Fprintf(&b, "  case %s:\n", t.QualInst(inst))
	}
	b.WriteString("    break;\n")
	b.WriteString("  default:\n")
	b.WriteString("    return false;\n")
	b.WriteString("  }\n")
	b.WriteString("  return MI.getOperand(1).isFI();\n")
	b.WriteString("}\n")
	return b.String()
}

func genIsStoreToStackSlot(t *TargetSpec) string {
	var b strings.Builder
	fmt.Fprintf(&b, "bool %sInstrInfo::isStoreToStackSlot(const MachineInstr &MI) {\n", t.Name)
	b.WriteString("  switch (MI.getOpcode()) {\n")
	for _, inst := range t.Insts(ClassStore) {
		fmt.Fprintf(&b, "  case %s:\n", t.QualInst(inst))
	}
	b.WriteString("    break;\n")
	b.WriteString("  default:\n")
	b.WriteString("    return false;\n")
	b.WriteString("  }\n")
	b.WriteString("  return MI.getOperand(1).isFI();\n")
	b.WriteString("}\n")
	return b.String()
}

func genIsProfitableToHoist(t *TargetSpec) string {
	var b strings.Builder
	fmt.Fprintf(&b, "bool %sInstrInfo::isProfitableToHoist(const MachineInstr &MI) {\n", t.Name)
	b.WriteString("  if (MI.mayStore()) {\n")
	b.WriteString("    return false;\n")
	b.WriteString("  }\n")
	if t.NumRegs <= 16 {
		// Register-starved targets avoid hoisting long expressions.
		b.WriteString("  if (MI.getNumOperands() > 3) {\n")
		b.WriteString("    return false;\n")
		b.WriteString("  }\n")
	}
	if t.HasSIMD {
		b.WriteString("  if (STI.hasFeature(HasSIMD) && MI.isVector()) {\n")
		b.WriteString("    return false;\n")
		b.WriteString("  }\n")
	}
	if t.HasDelaySlots {
		b.WriteString("  if (STI.hasFeature(HasDelaySlots) && MI.isBranch()) {\n")
		b.WriteString("    return false;\n")
		b.WriteString("  }\n")
	}
	if t.HasPredication {
		// If-converted regions make hoisting across branches free.
		b.WriteString("  if (STI.hasFeature(HasPredication) && MI.isBranch()) {\n")
		b.WriteString("    return true;\n")
		b.WriteString("  }\n")
	}
	b.WriteString("  return true;\n")
	b.WriteString("}\n")
	return b.String()
}

// genConvertToHardwareLoop exists only for hardware-loop targets: the
// RI5CY-style custom optimization.
func genConvertToHardwareLoop(t *TargetSpec) string {
	if !t.HasHardwareLoop {
		return ""
	}
	loops := t.Insts(ClassLoop)
	branches := t.Insts(ClassBranch)
	var b strings.Builder
	fmt.Fprintf(&b, "unsigned %sHardwareLoops::convertToHardwareLoop(unsigned Opcode, int TripCount) {\n", t.Name)
	b.WriteString("  if (!STI.hasFeature(HasHardwareLoop)) {\n")
	b.WriteString("    return 0;\n")
	b.WriteString("  }\n")
	b.WriteString("  if (TripCount < 2) {\n")
	b.WriteString("    return 0;\n")
	b.WriteString("  }\n")
	b.WriteString("  switch (Opcode) {\n")
	fmt.Fprintf(&b, "  case %s:\n", t.QualInst(branches[0]))
	fmt.Fprintf(&b, "  case %s:\n", t.QualInst(branches[1%len(branches)]))
	fmt.Fprintf(&b, "    return %s;\n", t.QualInst(loops[0]))
	b.WriteString("  default:\n")
	b.WriteString("    return 0;\n")
	b.WriteString("  }\n")
	b.WriteString("}\n")
	return b.String()
}

func genEnablePostRAScheduler(t *TargetSpec) string {
	var b strings.Builder
	fmt.Fprintf(&b, "bool %sSubtarget::enablePostRAScheduler() {\n", t.Name)
	switch {
	case t.HasDelaySlots:
		b.WriteString("  return false;\n")
	case t.HasVLIWBundles:
		// Static bundling depends on post-RA scheduling.
		b.WriteString("  return true;\n")
	case t.HasSIMD || t.HasHardwareLoop:
		b.WriteString("  return true;\n")
	default:
		b.WriteString("  return MF.getOptLevel() >= 2;\n")
	}
	b.WriteString("}\n")
	return b.String()
}

func genExpandPseudoMove(t *TargetSpec) string {
	moves := t.Insts(ClassMove)
	alu := t.Inst(ClassALU)
	var b strings.Builder
	fmt.Fprintf(&b, "unsigned %sExpandPseudo::expandPseudoMove(bool IsImm) {\n", t.Name)
	b.WriteString("  if (IsImm) {\n")
	fmt.Fprintf(&b, "    return %s;\n", t.QualInst(moves[len(moves)-1]))
	b.WriteString("  }\n")
	if t.Style == StyleShort {
		// Accumulator-flavoured targets copy through an ALU op.
		fmt.Fprintf(&b, "  return %s;\n", t.QualInst(alu))
	} else {
		fmt.Fprintf(&b, "  return %s;\n", t.QualInst(moves[0]))
	}
	b.WriteString("}\n")
	return b.String()
}

// genExpandRealtimeOp exists only for real-time I/O targets (xCORE).
func genExpandRealtimeOp(t *TargetSpec) string {
	if !t.HasRealtime {
		return ""
	}
	ios := t.Insts(ClassIO)
	var b strings.Builder
	fmt.Fprintf(&b, "unsigned %sRealtimeLowering::expandRealtimeOp(int Dir) {\n", t.Name)
	b.WriteString("  if (!STI.hasFeature(HasRealtimeISA)) {\n")
	b.WriteString("    return 0;\n")
	b.WriteString("  }\n")
	b.WriteString("  if (Dir == 0) {\n")
	fmt.Fprintf(&b, "    return %s;\n", t.QualInst(ios[0]))
	b.WriteString("  }\n")
	fmt.Fprintf(&b, "  return %s;\n", t.QualInst(ios[1%len(ios)]))
	b.WriteString("}\n")
	return b.String()
}

func optFuncs() []InterfaceFunc {
	return []InterfaceFunc{
		{Name: "getInstSizeInBytes", Module: OPT, Gen: genGetInstSizeInBytes},
		{Name: "isLoadFromStackSlot", Module: OPT, Gen: genIsLoadFromStackSlot},
		{Name: "isStoreToStackSlot", Module: OPT, Gen: genIsStoreToStackSlot},
		{Name: "isProfitableToHoist", Module: OPT, Gen: genIsProfitableToHoist},
		{Name: "convertToHardwareLoop", Module: OPT, Gen: genConvertToHardwareLoop},
		{Name: "enablePostRAScheduler", Module: OPT, Gen: genEnablePostRAScheduler},
		{Name: "expandPseudoMove", Module: OPT, Gen: genExpandPseudoMove},
		{Name: "expandRealtimeOp", Module: OPT, Gen: genExpandRealtimeOp},
	}
}
