package corpus

import (
	"fmt"
	"strings"

	"vega/internal/tablegen"
)

// RenderCore writes the LLVM-provided code — the LLVMDIRs headers and
// Target.td every backend shares — into the tree.
func RenderCore(tree *tablegen.SourceTree) {
	tree.Add("llvm/MC/MCFixup.h", `
class MCFixup {
};
enum MCFixupKind {
  FK_NONE = 0,
  FK_Data_1 = 1,
  FK_Data_2 = 2,
  FK_Data_4 = 3,
  FK_Data_8 = 4,
  FirstTargetFixupKind = 128
};
`)
	tree.Add("llvm/MC/MCExpr.h", `
class MCExpr {
};
class MCSymbolRefExpr {
};
enum VariantKind {
  VK_None = 0,
  VK_PLT = 1,
  VK_GOT = 2
};
`)
	tree.Add("llvm/MC/MCInst.h", `
class MCInst {
};
class MCOperand {
};
class MCRegister {
};
class MCDisassembler {
};
enum DecodeStatus {
  Fail = 0,
  SoftFail = 1,
  Success = 3
};
enum RegSentinel {
  NoRegister = 4095
};
`)
	tree.Add("llvm/MC/MCStreamer.h", `
class MCStreamer {
};
class MCAsmParser {
};
enum MatchResultTy {
  Match_Success = 0,
  Match_InvalidOperand = 1,
  Match_MnemonicFail = 2,
  Match_MissingFeature = 3
};
`)
	tree.Add("llvm/BinaryFormat/ELF.h", `
enum ELF_RELOC {
  R_NONE = 0
};
enum ELFClass {
  ELFCLASS32 = 1,
  ELFCLASS64 = 2
};
`)
	tree.Add("llvm/CodeGen/MachineInstr.h", `
class MachineInstr {
};
class MachineBasicBlock {
};
class MachineFunction {
};
class MachineFrameInfo {
};
class MachineOperand {
};
enum ISDOpcode {
  ISD_ADD = 1,
  ISD_SUB = 2,
  ISD_LOAD = 3,
  ISD_STORE = 4,
  ISD_BR = 5,
  ISD_BRCOND = 6,
  ISD_CALL = 7,
  ISD_SELECT = 8,
  ISD_SETCC = 9,
  ISD_GlobalAddress = 10,
  ISD_FrameIndex = 11,
  ISD_Constant = 12,
  ISD_MUL = 13,
  ISD_SHL = 14
};
enum CondCode {
  SETEQ = 0,
  SETNE = 1,
  SETLT = 2,
  SETGT = 3
};
`)
	tree.Add("llvm/CodeGen/TargetLowering.h", `
class TargetLowering {
};
class TargetRegisterInfo {
};
class TargetInstrInfo {
};
class TargetFrameLowering {
};
class SelectionDAG {
};
class SDValue {
};
class SDNode {
};
enum MVT {
  i8 = 8,
  i16 = 16,
  i32 = 32,
  i64 = 64
};
`)
	tree.Add("llvm/Target/Target.td", `
class Target {
  string Name = "";
}
class Register {
  string AsmName = "";
}
class Instruction {
  string AsmString = "";
  int Opcode = 0;
  int Size = 4;
  int Latency = 1;
}
class ALUInst : Instruction {
}
class MoveInst : Instruction {
}
class LoadInst : Instruction {
}
class StoreInst : Instruction {
}
class BranchInst : Instruction {
}
class CallInst : Instruction {
}
class SIMDInst : Instruction {
}
class LoopInst : Instruction {
}
class IOInst : Instruction {
}
class TensorInst : Instruction {
}
class Extension {
  string Ext = "";
}
class Operand {
  string OperandType = "OPERAND_UNKNOWN";
}
class ABIInfo {
  string StackPointer = "";
  string FramePointer = "";
  string ReturnAddress = "";
  int StackAlignment = 4;
  int PointerSize = 32;
  int NumRegisters = 32;
  int ImmReach = 2048;
  int BranchReach = 4096;
  string RegPrefix = "r";
  string RegSymbol = "";
}
class CalleeSavedRegs {
  list SaveList = [];
}
class SubtargetFeatures {
  bit HasVariantKind = 0;
  bit HasHardwareLoop = 0;
  bit HasSIMD = 0;
  bit HasRealtimeISA = 0;
  bit HasDelaySlots = 0;
  bit HasCmpFlags = 0;
  bit IsBigEndian = 0;
  bit HasDisassembler = 0;
  bit HasFramePointer = 0;
  bit HasReturnAddressReg = 0;
  bit HasVLIWBundles = 0;
  bit HasPredication = 0;
  bit HasTensorOps = 0;
  int BundleSize = 0;
}
class Proc {
  string ProcName = "";
}
`)
}

// instParentClass maps an instruction class to its LLVM-core TableGen
// class name.
func instParentClass(c InstClass) string {
	switch c {
	case ClassALU:
		return "ALUInst"
	case ClassMove:
		return "MoveInst"
	case ClassLoad:
		return "LoadInst"
	case ClassStore:
		return "StoreInst"
	case ClassBranch:
		return "BranchInst"
	case ClassCall:
		return "CallInst"
	case ClassSIMD:
		return "SIMDInst"
	case ClassLoop:
		return "LoopInst"
	case ClassIO:
		return "IOInst"
	case ClassTensor:
		return "TensorInst"
	}
	return "Instruction"
}

// RenderTarget writes one target's description files into the tree: the
// artifacts a new backend brings to VEGA.
func RenderTarget(tree *tablegen.SourceTree, t *TargetSpec) {
	dir := "lib/Target/" + t.Name + "/"

	// --- <T>.td: target def, subtarget features, processor ---
	var td strings.Builder
	fmt.Fprintf(&td, "def %s : Target {\n  let Name = \"%s\";\n}\n", t.Name, t.TdName)
	fmt.Fprintf(&td, "def %sFeatures : SubtargetFeatures {\n", t.Name)
	flag := func(name string, on bool) {
		if on {
			fmt.Fprintf(&td, "  let %s = 1;\n", name)
		}
	}
	flag("HasVariantKind", t.HasVariantKind)
	flag("HasHardwareLoop", t.HasHardwareLoop)
	flag("HasSIMD", t.HasSIMD)
	flag("HasRealtimeISA", t.HasRealtime)
	flag("HasDelaySlots", t.HasDelaySlots)
	flag("HasCmpFlags", t.CmpUsesFlags)
	flag("IsBigEndian", t.BigEndian)
	flag("HasDisassembler", t.HasDisassembler)
	flag("HasFramePointer", t.FPIndex >= 0)
	flag("HasReturnAddressReg", t.RAIndex >= 0)
	flag("HasVLIWBundles", t.HasVLIWBundles)
	flag("HasPredication", t.HasPredication)
	flag("HasTensorOps", t.HasTensorOps)
	if t.BundleSize > 0 {
		fmt.Fprintf(&td, "  let BundleSize = %d;\n", t.BundleSize)
	}
	td.WriteString("}\n")
	for _, e := range t.Extensions {
		fmt.Fprintf(&td, "def %sExt%s : Extension {\n  let Ext = \"%s\";\n}\n", t.Name, upper(e), e)
	}
	fmt.Fprintf(&td, "def %sProc : Proc {\n  let ProcName = \"%s\";\n}\n", t.Name, t.procName())
	tree.Add(dir+t.Name+".td", td.String())

	// --- <T>RegisterInfo.td ---
	var rtd strings.Builder
	fmt.Fprintf(&rtd, "class %sReg : Register {\n}\n", t.Name)
	for i := 0; i < t.NumRegs; i++ {
		fmt.Fprintf(&rtd, "def %s : %sReg {\n  let AsmName = \"%s\";\n}\n",
			t.RegEnum(i), t.Name, t.RegName(i))
	}
	fmt.Fprintf(&rtd, "def %sABI : ABIInfo {\n", t.Name)
	fmt.Fprintf(&rtd, "  let StackPointer = %s;\n", t.RegEnum(t.SPIndex))
	if t.FPIndex >= 0 {
		fmt.Fprintf(&rtd, "  let FramePointer = %s;\n", t.RegEnum(t.FPIndex))
	}
	if t.RAIndex >= 0 {
		fmt.Fprintf(&rtd, "  let ReturnAddress = %s;\n", t.RegEnum(t.RAIndex))
	}
	fmt.Fprintf(&rtd, "  let StackAlignment = %d;\n", t.StackAlign)
	fmt.Fprintf(&rtd, "  let PointerSize = %d;\n", t.PtrBits)
	fmt.Fprintf(&rtd, "  let NumRegisters = %d;\n", t.NumRegs)
	fmt.Fprintf(&rtd, "  let ImmReach = %d;\n", t.ImmReach())
	fmt.Fprintf(&rtd, "  let BranchReach = %d;\n", t.ImmReach()*2)
	fmt.Fprintf(&rtd, "  let RegPrefix = \"%s\";\n", t.RegPrefix)
	if t.RegSymbol != "" {
		fmt.Fprintf(&rtd, "  let RegSymbol = \"%s\";\n", t.RegSymbol)
	}
	rtd.WriteString("}\n")
	fmt.Fprintf(&rtd, "def %sCSR : CalleeSavedRegs {\n  let SaveList = [", t.Name)
	for i, r := range t.CalleeSaved {
		if i > 0 {
			rtd.WriteString(", ")
		}
		rtd.WriteString(t.RegEnum(r))
	}
	rtd.WriteString("];\n}\n")
	tree.Add(dir+t.Name+"RegisterInfo.td", rtd.String())

	// --- <T>InstrInfo.td ---
	var itd strings.Builder
	if t.hasPCRelFixup() {
		itd.WriteString("OperandType = \"OPERAND_PCREL\"\n")
	}
	classesSeen := map[InstClass]bool{}
	for _, inst := range t.InstSet {
		if !classesSeen[inst.Class] {
			classesSeen[inst.Class] = true
			fmt.Fprintf(&itd, "class %s%s : %s {\n}\n",
				t.Name, instParentClass(inst.Class), instParentClass(inst.Class))
		}
	}
	for _, inst := range t.InstSet {
		fmt.Fprintf(&itd, "def %s : %s%s {\n", inst.Enum, t.Name, instParentClass(inst.Class))
		fmt.Fprintf(&itd, "  let AsmString = \"%s\";\n", inst.Mnemonic)
		fmt.Fprintf(&itd, "  let Opcode = %d;\n", inst.Opcode)
		fmt.Fprintf(&itd, "  let Size = %d;\n", inst.Size)
		fmt.Fprintf(&itd, "  let Latency = %d;\n", inst.Latency)
		itd.WriteString("}\n")
	}
	tree.Add(dir+t.Name+"InstrInfo.td", itd.String())

	// --- <T>FixupKinds.h ---
	var fh strings.Builder
	fmt.Fprintf(&fh, "namespace %s {\nenum Fixups {\n", t.Name)
	for i, f := range t.Fixups() {
		if i == 0 {
			fmt.Fprintf(&fh, "  %s = FirstTargetFixupKind,\n", f.Name)
		} else {
			fmt.Fprintf(&fh, "  %s,\n", f.Name)
		}
	}
	fmt.Fprintf(&fh, "  NumTargetFixupKinds = %d\n};\n}\n", len(t.FixupKinds))
	tree.Add(dir+t.Name+"FixupKinds.h", fh.String())

	// --- <T>MCExpr.h (VariantKind specialization) ---
	if t.HasVariantKind {
		var mh strings.Builder
		fmt.Fprintf(&mh, "namespace %s {\nenum VariantKind {\n", t.Name)
		fmt.Fprintf(&mh, "  VK_%s_None = 0,\n", upper(t.Name))
		fmt.Fprintf(&mh, "  VK_%s_HI = 1,\n", upper(t.Name))
		fmt.Fprintf(&mh, "  VK_%s_LO = 2\n};\n}\n", upper(t.Name))
		tree.Add(dir+t.Name+"MCExpr.h", mh.String())
	}

	// --- llvm/BinaryFormat/ELFRelocs/<T>.def ---
	var def strings.Builder
	fmt.Fprintf(&def, "ELF_RELOC(R_%s_NONE, 0)\n", upper(t.Name))
	for i, f := range t.Fixups() {
		fmt.Fprintf(&def, "ELF_RELOC(%s, %d)\n", f.Reloc, i+1)
	}
	tree.Add("llvm/BinaryFormat/ELFRelocs/"+t.Name+".def", def.String())
}

func (t *TargetSpec) hasPCRelFixup() bool {
	for _, k := range t.FixupKinds {
		if _, _, pcrel := t.fixupInfo(k); pcrel {
			return true
		}
	}
	return false
}

// BuildTree renders the core plus the given targets into a fresh tree.
func BuildTree(targets []*TargetSpec) *tablegen.SourceTree {
	tree := tablegen.NewSourceTree()
	RenderCore(tree)
	for _, t := range targets {
		RenderTarget(tree, t)
	}
	return tree
}
