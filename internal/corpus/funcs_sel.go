package corpus

import (
	"fmt"
	"strings"
)

// Instruction Selection (SEL) interface functions: legality queries and
// IR-to-opcode lowering decisions.

func genIsLegalAddressingMode(t *TargetSpec) string {
	// Offset reach follows the target's low-immediate width.
	reach := t.ImmReach()
	var b strings.Builder
	fmt.Fprintf(&b, "bool %sTargetLowering::isLegalAddressingMode(int BaseOffs, bool HasBaseReg, int Scale) {\n", t.Name)
	fmt.Fprintf(&b, "  if (BaseOffs < -%d || BaseOffs >= %d) {\n", reach, reach)
	b.WriteString("    return false;\n")
	b.WriteString("  }\n")
	if t.StackAlign >= 8 {
		// Wide-slot targets require naturally aligned base offsets.
		fmt.Fprintf(&b, "  if (BaseOffs %% %d != 0) {\n", t.StackAlign/2)
		b.WriteString("    return false;\n")
		b.WriteString("  }\n")
	}
	if t.Style == StyleShort && t.PtrBits == 64 {
		// CISC-flavoured targets allow scaled indexing.
		b.WriteString("  if (Scale == 2 || Scale == 4 || Scale == 8) {\n")
		b.WriteString("    return true;\n")
		b.WriteString("  }\n")
	}
	b.WriteString("  if (Scale > 1) {\n")
	b.WriteString("    return false;\n")
	b.WriteString("  }\n")
	b.WriteString("  return true;\n")
	b.WriteString("}\n")
	return b.String()
}

func genGetSetCCResultType(t *TargetSpec) string {
	var b strings.Builder
	fmt.Fprintf(&b, "unsigned %sTargetLowering::getSetCCResultType() {\n", t.Name)
	if t.PtrBits == 64 {
		b.WriteString("  return MVT::i64;\n")
	} else if t.PtrBits == 16 {
		b.WriteString("  return MVT::i16;\n")
	} else {
		b.WriteString("  return MVT::i32;\n")
	}
	b.WriteString("}\n")
	return b.String()
}

func genGetBranchOpcodeForCond(t *TargetSpec) string {
	branches := t.Insts(ClassBranch)
	var b strings.Builder
	fmt.Fprintf(&b, "unsigned %sInstrInfo::getBranchOpcodeForCond(int CC) {\n", t.Name)
	b.WriteString("  switch (CC) {\n")
	b.WriteString("  case SETEQ:\n")
	fmt.Fprintf(&b, "    return %s;\n", t.QualInst(branches[0]))
	b.WriteString("  case SETNE:\n")
	fmt.Fprintf(&b, "    return %s;\n", t.QualInst(branches[1%len(branches)]))
	b.WriteString("  case SETLT:\n")
	b.WriteString("  case SETGT:\n")
	fmt.Fprintf(&b, "    return %s;\n", t.QualInst(branches[len(branches)-1]))
	b.WriteString("  default:\n")
	b.WriteString("    llvm_unreachable(\"unsupported condition\");\n")
	b.WriteString("  }\n")
	b.WriteString("}\n")
	return b.String()
}

func genGetUncondBranchOpcode(t *TargetSpec) string {
	branches := t.Insts(ClassBranch)
	last := branches[len(branches)-1]
	var b strings.Builder
	fmt.Fprintf(&b, "unsigned %sInstrInfo::getUncondBranchOpcode() {\n", t.Name)
	fmt.Fprintf(&b, "  return %s;\n", t.QualInst(last))
	b.WriteString("}\n")
	return b.String()
}

func genIsLegalICmpImmediate(t *TargetSpec) string {
	reach := t.ImmReach()
	var b strings.Builder
	fmt.Fprintf(&b, "bool %sTargetLowering::isLegalICmpImmediate(int Imm) {\n", t.Name)
	if t.CmpUsesFlags {
		b.WriteString("  if (Imm == 0) {\n")
		b.WriteString("    return true;\n")
		b.WriteString("  }\n")
	}
	fmt.Fprintf(&b, "  return Imm >= -%d && Imm < %d;\n", reach, reach)
	b.WriteString("}\n")
	return b.String()
}

func genSelectLoadOpcode(t *TargetSpec) string {
	loads := t.Insts(ClassLoad)
	var b strings.Builder
	fmt.Fprintf(&b, "unsigned %sDAGToDAGISel::selectLoadOpcode(int Size) {\n", t.Name)
	b.WriteString("  switch (Size) {\n")
	b.WriteString("  case 1:\n")
	fmt.Fprintf(&b, "    return %s;\n", t.QualInst(loads[len(loads)-1]))
	b.WriteString("  case 2:\n")
	fmt.Fprintf(&b, "    return %s;\n", t.QualInst(loads[1%len(loads)]))
	b.WriteString("  case 4:\n")
	fmt.Fprintf(&b, "    return %s;\n", t.QualInst(loads[0]))
	// Archetype-specific wide loads: tensor targets route 8-byte loads
	// through the tensor load unit, F-extension targets through the FPU.
	if t.HasTensorOps {
		b.WriteString("  case 8:\n")
		fmt.Fprintf(&b, "    return %s;\n", t.QualInst(t.tensorInst("tld")))
	} else if t.HasExt("f") {
		if fl, ok := t.instByMnemonic("flw"); ok {
			b.WriteString("  case 8:\n")
			fmt.Fprintf(&b, "    return %s;\n", t.QualInst(fl))
		}
	}
	b.WriteString("  default:\n")
	b.WriteString("    report_fatal_error(\"unsupported load size\");\n")
	b.WriteString("  }\n")
	b.WriteString("}\n")
	return b.String()
}

func genSelectStoreOpcode(t *TargetSpec) string {
	stores := t.Insts(ClassStore)
	var b strings.Builder
	fmt.Fprintf(&b, "unsigned %sDAGToDAGISel::selectStoreOpcode(int Size) {\n", t.Name)
	b.WriteString("  switch (Size) {\n")
	b.WriteString("  case 1:\n")
	fmt.Fprintf(&b, "    return %s;\n", t.QualInst(stores[len(stores)-1]))
	b.WriteString("  case 2:\n")
	fmt.Fprintf(&b, "    return %s;\n", t.QualInst(stores[1%len(stores)]))
	b.WriteString("  case 4:\n")
	fmt.Fprintf(&b, "    return %s;\n", t.QualInst(stores[0]))
	if t.HasTensorOps {
		b.WriteString("  case 8:\n")
		fmt.Fprintf(&b, "    return %s;\n", t.QualInst(t.tensorInst("tst")))
	} else if t.HasExt("f") {
		if fs, ok := t.instByMnemonic("fsw"); ok {
			b.WriteString("  case 8:\n")
			fmt.Fprintf(&b, "    return %s;\n", t.QualInst(fs))
		}
	}
	b.WriteString("  default:\n")
	b.WriteString("    report_fatal_error(\"unsupported store size\");\n")
	b.WriteString("  }\n")
	b.WriteString("}\n")
	return b.String()
}

func genGetCallOpcode(t *TargetSpec) string {
	call := t.Inst(ClassCall)
	var b strings.Builder
	fmt.Fprintf(&b, "unsigned %sISelLowering::getCallOpcode() {\n", t.Name)
	fmt.Fprintf(&b, "  return %s;\n", t.QualInst(call))
	b.WriteString("}\n")
	return b.String()
}

func genShouldExpandSelect(t *TargetSpec) string {
	var b strings.Builder
	fmt.Fprintf(&b, "bool %sTargetLowering::shouldExpandSelect(unsigned VT) {\n", t.Name)
	if t.HasPredication {
		// Predicated ISAs lower select to predicated moves, never branches.
		b.WriteString("  if (STI.hasFeature(HasPredication)) {\n")
		b.WriteString("    return false;\n")
		b.WriteString("  }\n")
	}
	if t.HasSIMD {
		b.WriteString("  if (STI.hasFeature(HasSIMD) && VT > MVT::i64) {\n")
		b.WriteString("    return false;\n")
		b.WriteString("  }\n")
	}
	if t.CmpUsesFlags {
		b.WriteString("  if (STI.hasFeature(HasCmpFlags)) {\n")
		b.WriteString("    return false;\n")
		b.WriteString("  }\n")
	}
	b.WriteString("  return true;\n")
	b.WriteString("}\n")
	return b.String()
}

func genSelectMoveImmOpcode(t *TargetSpec) string {
	moves := t.Insts(ClassMove)
	var b strings.Builder
	fmt.Fprintf(&b, "unsigned %sDAGToDAGISel::selectMoveImmOpcode(int Imm) {\n", t.Name)
	fmt.Fprintf(&b, "  if (Imm >= -%d && Imm < %d) {\n", t.ImmReach(), t.ImmReach())
	fmt.Fprintf(&b, "    return %s;\n", t.QualInst(moves[0]))
	b.WriteString("  }\n")
	fmt.Fprintf(&b, "  return %s;\n", t.QualInst(moves[len(moves)-1]))
	b.WriteString("}\n")
	return b.String()
}

func selFuncs() []InterfaceFunc {
	return []InterfaceFunc{
		{Name: "isLegalAddressingMode", Module: SEL, Gen: genIsLegalAddressingMode},
		{Name: "getSetCCResultType", Module: SEL, Gen: genGetSetCCResultType},
		{Name: "getBranchOpcodeForCond", Module: SEL, Gen: genGetBranchOpcodeForCond},
		{Name: "getUncondBranchOpcode", Module: SEL, Gen: genGetUncondBranchOpcode},
		{Name: "isLegalICmpImmediate", Module: SEL, Gen: genIsLegalICmpImmediate},
		{Name: "selectLoadOpcode", Module: SEL, Gen: genSelectLoadOpcode},
		{Name: "selectStoreOpcode", Module: SEL, Gen: genSelectStoreOpcode},
		{Name: "getCallOpcode", Module: SEL, Gen: genGetCallOpcode},
		{Name: "shouldExpandSelect", Module: SEL, Gen: genShouldExpandSelect},
		{Name: "selectMoveImmOpcode", Module: SEL, Gen: genSelectMoveImmOpcode},
	}
}
