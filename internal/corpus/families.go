package corpus

import (
	"fmt"
	"strings"
)

// This file grows the corpus from the hand-written standard fleet to 50+
// targets via data-driven TargetSpec families, one per ISA archetype the
// roadmap names: VLIW bundle machines, fully predicated ISAs,
// tensor-accelerator targets (à la ACT), and RISC-V-style extension
// families. Family members are synthesized from small parameter tables
// rotated deterministically by index, so adding a member is one table
// row, not a new hand-written spec.

// HasExt reports whether the target carries a standard-extension letter.
func (t *TargetSpec) HasExt(e string) bool {
	for _, x := range t.Extensions {
		if x == e {
			return true
		}
	}
	return false
}

// instByMnemonic finds an instruction by mnemonic.
func (t *TargetSpec) instByMnemonic(m string) (InstSpec, bool) {
	for _, i := range t.InstSet {
		if i.Mnemonic == m {
			return i, true
		}
	}
	return InstSpec{}, false
}

// tensorInst returns the first tensor instruction whose mnemonic contains
// sub, falling back to the first tensor instruction.
func (t *TargetSpec) tensorInst(sub string) InstSpec {
	for _, i := range t.Insts(ClassTensor) {
		if strings.Contains(i.Mnemonic, sub) {
			return i
		}
	}
	return t.Inst(ClassTensor)
}

// addInsts appends instructions of one class, continuing the target's
// opcode numbering from base.
func addInsts(set []InstSpec, base int, class InstClass, size, lat int, mnems []string) []InstSpec {
	for i, m := range mnems {
		set = append(set, InstSpec{
			Enum:     upper(m),
			Mnemonic: m,
			Class:    class,
			Opcode:   base + len(set),
			Size:     size,
			Latency:  lat + i%2,
		})
	}
	return set
}

// tensorNames order matters: compute, conv, load, store.
var tensorNames = []string{"mma", "tconv", "tld", "tst"}

// extMnemonics lists the instructions each standard extension adds; the
// first entry is the extension's marquee mnemonic (used by the assembler
// generators).
func extMnemonics(e string) []string {
	switch e {
	case "m":
		return []string{"mul", "div", "rem"}
	case "c":
		return []string{"c_add", "c_lw", "c_sw"}
	case "f":
		return []string{"fadd_s", "fmul_s", "flw", "fsw"}
	}
	return nil
}

// familyBase is the first opcode base reserved for family targets; the
// standard fleet tops out at 0x140.
const familyBase = 0x200

// familySeat carries the per-member rotation parameters shared by all
// four families.
type familySeat struct {
	name    string
	style   NameStyle
	names   map[InstClass][]string
	ptrBits int
	loBits  int
	align   int
	numRegs int
	fix     []FixupKind
}

func familySeats(names []string, tabs []map[InstClass][]string) []familySeat {
	stdFix := []FixupKind{FixHi, FixLo, FixBranch, FixJump, FixCall, FixAbs32}
	richFix := append(append([]FixupKind{}, stdFix...), FixPCRelHi, FixPCRelLo, FixGotHi)
	styles := []NameStyle{StyleLower, StyleUpper, StyleShort, StyleCamel}
	out := make([]familySeat, len(names))
	for i, n := range names {
		s := familySeat{
			name:    n,
			style:   styles[i%len(styles)],
			names:   tabs[i%len(tabs)],
			ptrBits: []int{32, 64, 32}[i%3],
			loBits:  []int{12, 16, 13}[i%3],
			align:   []int{8, 16, 4}[i%3],
			numRegs: []int{32, 64, 16}[i%3],
			fix:     stdFix,
		}
		if i%2 == 0 {
			s.fix = richFix
		}
		out[i] = s
	}
	return out
}

// seatSpec fills the register-file and naming boilerplate every family
// member shares; callers then flip archetype features and extend InstSet.
func seatSpec(s familySeat, idx int) *TargetSpec {
	n := s.numRegs
	return &TargetSpec{
		Name: s.name, TdName: s.name, Style: s.style,
		BigEndian: idx%4 == 1, PtrBits: s.ptrBits, StackAlign: s.align,
		LoBits: s.loBits, ProcName: lower(s.name) + "-gen1", RegSymbol: "",
		NumRegs: n, RegPrefix: "r", SPIndex: n - 2, FPIndex: n - 4, RAIndex: n - 1,
		CalleeSaved: []int{4, 5, 6, 7, 8, 9},
		FixupKinds:  s.fix,
	}
}

var vliwFamilyNames = []string{"TC62", "TC64", "TC67", "TM32", "ST200", "SHAVE", "VP500", "QDSP6", "EPIPH"}
var predFamilyNames = []string{"IA64", "EPIC2", "PRED32", "CE3200", "ITAN", "PSEL", "GUARD8", "COND64", "PMOV"}
var tensorFamilyNames = []string{"TPU1", "NPU16", "MXU", "TCORE", "AIE2", "VTA", "DLA8", "MAIA", "WSE"}
var rvextFamilyNames = []string{"RV32M", "RV32C", "RV32F", "RV64M", "RV64C", "RV64F", "RV32MC", "RV64MF", "RV32MFC"}

// rvextSets maps rvextFamilyNames to their extension letters.
var rvextSets = [][]string{
	{"m"}, {"c"}, {"f"}, {"m"}, {"c"}, {"f"}, {"m", "c"}, {"m", "f"}, {"m", "f", "c"},
}

// VLIWTargets synthesizes the VLIW-bundle family: explicitly parallel
// machines issuing fixed bundles of 2–4 slots.
func VLIWTargets() []*TargetSpec {
	seats := familySeats(vliwFamilyNames, []map[InstClass][]string{dspNames, riscNames, armNames})
	out := make([]*TargetSpec, len(seats))
	for i, s := range seats {
		base := familyBase + i*0x40
		t := seatSpec(s, i)
		t.HasVLIWBundles = true
		t.BundleSize = 2 + i%3
		t.HasSIMD = i%2 == 0
		t.HasDisassembler = i%3 != 2
		t.InstSet = stdInsts(base, 4, s.names, false, t.HasSIMD, false)
		out[i] = t
	}
	return out
}

// PredicatedTargets synthesizes the fully predicated family: every
// instruction guards on a predicate register, select never branches.
func PredicatedTargets() []*TargetSpec {
	seats := familySeats(predFamilyNames, []map[InstClass][]string{armNames, ciscNames, riscNames})
	out := make([]*TargetSpec, len(seats))
	for i, s := range seats {
		base := familyBase + (len(vliwFamilyNames)+i)*0x40
		t := seatSpec(s, i)
		t.HasPredication = true
		t.CmpUsesFlags = true
		t.HasDisassembler = i%2 == 0
		t.InstSet = stdInsts(base, 4, s.names, false, false, false)
		out[i] = t
	}
	return out
}

// TensorTargets synthesizes the tensor-accelerator family: SIMD machines
// with dedicated matrix/tensor instructions (ClassTensor).
func TensorTargets() []*TargetSpec {
	seats := familySeats(tensorFamilyNames, []map[InstClass][]string{riscNames, dspNames, armNames})
	out := make([]*TargetSpec, len(seats))
	for i, s := range seats {
		base := familyBase + (len(vliwFamilyNames)+len(predFamilyNames)+i)*0x40
		t := seatSpec(s, i)
		t.HasTensorOps = true
		t.HasSIMD = true
		t.HasDisassembler = i%2 == 0
		t.InstSet = stdInsts(base, 4, s.names, false, true, false)
		t.InstSet = addInsts(t.InstSet, base, ClassTensor, 4, 4, tensorNames)
		out[i] = t
	}
	return out
}

// RVExtTargets synthesizes the RISC-V-style extension family: a shared
// base ISA plus rotating standard-extension sets (M/C/F).
func RVExtTargets() []*TargetSpec {
	seats := familySeats(rvextFamilyNames, []map[InstClass][]string{riscNames})
	out := make([]*TargetSpec, len(seats))
	for i, s := range seats {
		base := familyBase + (len(vliwFamilyNames)+len(predFamilyNames)+len(tensorFamilyNames)+i)*0x40
		t := seatSpec(s, i)
		t.Style = StyleLower
		t.LoBits = 12
		if strings.HasPrefix(s.name, "RV64") {
			t.PtrBits = 64
		} else {
			t.PtrBits = 32
		}
		t.Extensions = rvextSets[i]
		t.HasDisassembler = true
		t.InstSet = stdInsts(base, 4, s.names, false, false, false)
		for _, e := range t.Extensions {
			switch e {
			case "m":
				t.InstSet = addInsts(t.InstSet, base, ClassALU, 4, 2, []string{"mul", "div", "rem"})
			case "c":
				t.InstSet = addInsts(t.InstSet, base, ClassALU, 2, 1, []string{"c_add"})
				t.InstSet = addInsts(t.InstSet, base, ClassLoad, 2, 3, []string{"c_lw"})
				t.InstSet = addInsts(t.InstSet, base, ClassStore, 2, 1, []string{"c_sw"})
			case "f":
				t.InstSet = addInsts(t.InstSet, base, ClassALU, 4, 4, []string{"fadd_s", "fmul_s"})
				t.InstSet = addInsts(t.InstSet, base, ClassLoad, 4, 3, []string{"flw"})
				t.InstSet = addInsts(t.InstSet, base, ClassStore, 4, 1, []string{"fsw"})
			}
		}
		out[i] = t
	}
	return out
}

// FamilyTargets returns every synthesized family member, in family order.
func FamilyTargets() []*TargetSpec {
	var out []*TargetSpec
	out = append(out, VLIWTargets()...)
	out = append(out, PredicatedTargets()...)
	out = append(out, TensorTargets()...)
	out = append(out, RVExtTargets()...)
	return out
}

// Fleet selects a named fleet: "standard" is the original hand-written
// set (19 targets), "extended" adds the four archetype families (50+).
func Fleet(name string) ([]*TargetSpec, error) {
	switch name {
	case "", "standard":
		return Targets(), nil
	case "extended":
		return append(Targets(), FamilyTargets()...), nil
	default:
		return nil, fmt.Errorf("corpus: unknown fleet %q (want standard or extended)", name)
	}
}
