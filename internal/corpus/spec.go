// Package corpus synthesizes the fleet of LLVM-shaped compiler backends
// VEGA learns from and is evaluated on. The paper trains on 101 backends
// scraped from GitHub; offline, we generate equivalents: each target is a
// TargetSpec (ISA naming conventions, fixups, relocations, registers,
// instructions, subtarget features), from which the package renders
//
//   - the target description files under lib/Target/<T> and
//     llvm/BinaryFormat/ELFRelocs (.td, .h, .def) — what a new target
//     brings to VEGA, and
//   - the reference C++ implementations of every interface function in the
//     seven backend modules (SEL, REG, OPT, SCH, EMI, ASS, DIS) — what
//     VEGA trains on for existing targets and is scored against for
//     held-out ones.
//
// The LLVM-provided core (LLVMDIRs headers and Target.td) is rendered once
// and shared by all targets.
package corpus

import "fmt"

// Module identifies one of the paper's seven backend function modules.
type Module string

// The seven function modules of Fig. 1.
const (
	SEL Module = "SEL" // instruction selection
	REG Module = "REG" // register allocation
	OPT Module = "OPT" // machine-dependent optimization
	SCH Module = "SCH" // instruction scheduling
	EMI Module = "EMI" // code emission
	ASS Module = "ASS" // assembly parsing
	DIS Module = "DIS" // disassembler
)

// Modules lists the seven modules in the paper's order.
var Modules = []Module{SEL, REG, OPT, SCH, EMI, ASS, DIS}

// FixupKind is a semantic fixup category shared across targets; each
// target names a subset of these in its own convention.
type FixupKind int

// Shared fixup categories.
const (
	FixHi FixupKind = iota
	FixLo
	FixPCRelHi
	FixPCRelLo
	FixBranch
	FixJump
	FixCall
	FixAbs32
	FixAbs64
	FixGotHi
	FixTLS
)

// fixupInfo derives a fixup kind's slug, width and pc-relativity for one
// target: the hi/lo family follows the target's low-immediate width
// (MIPS-style HI16/LO16 vs RISC-V-style HI20/LO12).
func (t *TargetSpec) fixupInfo(k FixupKind) (slug string, bits int, pcrel bool) {
	lo := t.LoBits
	if lo == 0 {
		lo = 12
	}
	hi := 32 - lo
	switch k {
	case FixHi:
		return fmt.Sprintf("hi%d", hi), hi, false
	case FixLo:
		return fmt.Sprintf("lo%d", lo), lo, false
	case FixPCRelHi:
		return fmt.Sprintf("pcrel_hi%d", hi), hi, true
	case FixPCRelLo:
		return fmt.Sprintf("pcrel_lo%d", lo), lo, true
	case FixBranch:
		return "branch", lo, true
	case FixJump:
		return "jal", hi, true
	case FixCall:
		return "call", 32, true
	case FixAbs32:
		return "32", 32, false
	case FixAbs64:
		return "64", 64, false
	case FixGotHi:
		return fmt.Sprintf("got_hi%d", hi), hi, true
	case FixTLS:
		return fmt.Sprintf("tls_got_hi%d", hi), hi, true
	}
	return "unknown", 32, false
}

// NameStyle selects the target's identifier naming convention, the main
// source of cross-target surface variation (fixup_arm_movt_hi16 vs
// fixup_MIPS_HI16 vs fixup_riscv_pcrel_hi20).
type NameStyle int

// Naming conventions seen across LLVM backends.
const (
	// StyleLower: fixup_<ns>_<slug> (ARM, RISC-V).
	StyleLower NameStyle = iota
	// StyleUpper: fixup_<NS>_<SLUG> (MIPS).
	StyleUpper
	// StyleShort: fixup_<slug> without the namespace (Lanai, MSP430).
	StyleShort
	// StyleCamel: fixup_<Ns><CamelSlug> (a few out-of-tree backends).
	StyleCamel
)

// FixupSpec is one fixup a target defines.
type FixupSpec struct {
	Kind  FixupKind
	Name  string // e.g. "fixup_riscv_pcrel_hi20"
	Reloc string // e.g. "R_RISCV_PCREL_HI20"
	Bits  int
	PCRel bool
}

// InstClass groups instructions by semantic role.
type InstClass string

// Instruction classes.
const (
	ClassALU    InstClass = "ALU"
	ClassLoad   InstClass = "LOAD"
	ClassStore  InstClass = "STORE"
	ClassBranch InstClass = "BRANCH"
	ClassCall   InstClass = "CALL"
	ClassMove   InstClass = "MOVE"
	ClassSIMD   InstClass = "SIMD"
	ClassLoop   InstClass = "HWLOOP"
	ClassIO     InstClass = "RTIO"   // xCORE-style real-time I/O
	ClassTensor InstClass = "TENSOR" // accelerator matrix/tensor ops
)

// InstSpec is one instruction a target defines.
type InstSpec struct {
	Enum     string // record/enum name, e.g. "ADDI"
	Mnemonic string // assembly mnemonic, e.g. "addi"
	Class    InstClass
	Opcode   int
	Size     int // bytes
	Latency  int
}

// TargetSpec describes one backend completely.
type TargetSpec struct {
	Name       string // LLVM directory and C++ namespace, e.g. "RISCV"
	TdName     string // value of Name in <T>.td, e.g. "RISCV"
	Style      NameStyle
	BigEndian  bool
	PtrBits    int
	StackAlign int
	// LoBits is the low-immediate width driving the hi/lo fixup family
	// (12 for RISC-V-style hi20/lo12, 16 for MIPS-style HI16/LO16).
	LoBits int
	// ProcName is the default processor model name ("mips32r2").
	ProcName string
	// RegSymbol prefixes printed register names ("$" on MIPS, "%" on
	// SPARC, "" elsewhere).
	RegSymbol string

	// Registers.
	NumRegs     int
	RegPrefix   string
	SPIndex     int
	FPIndex     int // -1 when the target has no dedicated frame pointer
	RAIndex     int // -1 when return addresses live on the stack
	CalleeSaved []int

	// Subtarget features (drive statement presence in reference code).
	HasVariantKind  bool
	HasHardwareLoop bool
	HasSIMD         bool
	HasDisassembler bool
	HasRealtime     bool
	HasDelaySlots   bool
	CmpUsesFlags    bool

	// ISA-archetype features (the scale-out families).
	//
	// HasVLIWBundles marks explicitly-parallel targets that issue fixed
	// instruction bundles of BundleSize slots (TI-C6x/TriMedia style).
	HasVLIWBundles bool
	BundleSize     int
	// HasPredication marks fully predicated ISAs (IA-64/ARM-CE style):
	// select lowers to predicated moves, never to branches.
	HasPredication bool
	// HasTensorOps marks accelerator-flavoured targets with dedicated
	// matrix/tensor instructions (ClassTensor) à la ACT.
	HasTensorOps bool
	// Extensions lists RISC-V-style standard-extension letters ("m",
	// "c", "f"); each adds instructions and assembler surface.
	Extensions []string

	FixupKinds []FixupKind
	InstSet    []InstSpec

	// Evaluation role: training backends feed the model; eval backends are
	// held out and regenerated.
	Eval bool
}

// Fixups expands the target's fixup kinds into named specs.
func (t *TargetSpec) Fixups() []FixupSpec {
	out := make([]FixupSpec, 0, len(t.FixupKinds))
	for _, k := range t.FixupKinds {
		slug, bits, pcrel := t.fixupInfo(k)
		out = append(out, FixupSpec{
			Kind:  k,
			Name:  t.fixupName(slug),
			Reloc: t.relocName(slug),
			Bits:  bits,
			PCRel: pcrel,
		})
	}
	return out
}

// procName returns the default processor model name.
func (t *TargetSpec) procName() string {
	if t.ProcName != "" {
		return t.ProcName
	}
	return "generic-" + lower(t.Name)
}

// ImmReach returns the signed reach of the target's low immediate,
// 1 << (LoBits-1).
func (t *TargetSpec) ImmReach() int {
	lo := t.LoBits
	if lo == 0 {
		lo = 12
	}
	return 1 << (lo - 1)
}

func (t *TargetSpec) fixupName(slug string) string {
	switch t.Style {
	case StyleUpper:
		return "fixup_" + upper(t.Name) + "_" + upper(slug)
	case StyleShort:
		return "fixup_" + slug
	case StyleCamel:
		return "fixup_" + camel(t.Name) + camel(slug)
	default:
		return "fixup_" + lower(t.Name) + "_" + slug
	}
}

func (t *TargetSpec) relocName(slug string) string {
	return "R_" + upper(t.Name) + "_" + upper(slug)
}

// RegName renders register i's assembly name.
func (t *TargetSpec) RegName(i int) string {
	return fmt.Sprintf("%s%d", t.RegPrefix, i)
}

// RegEnum renders register i's enum/record name (e.g. "X2").
func (t *TargetSpec) RegEnum(i int) string {
	return fmt.Sprintf("%s%d", upper(t.RegPrefix), i)
}

// SP returns the stack pointer's qualified enum name.
func (t *TargetSpec) SP() string { return t.Name + "::" + t.RegEnum(t.SPIndex) }

// FP returns the frame pointer's qualified enum name ("" if none).
func (t *TargetSpec) FP() string {
	if t.FPIndex < 0 {
		return ""
	}
	return t.Name + "::" + t.RegEnum(t.FPIndex)
}

// Insts returns the instructions of a class.
func (t *TargetSpec) Insts(class InstClass) []InstSpec {
	var out []InstSpec
	for _, i := range t.InstSet {
		if i.Class == class {
			out = append(out, i)
		}
	}
	return out
}

// Inst returns the first instruction of a class, or a zero spec.
func (t *TargetSpec) Inst(class InstClass) InstSpec {
	for _, i := range t.InstSet {
		if i.Class == class {
			return i
		}
	}
	return InstSpec{}
}

// QualInst renders an instruction's qualified opcode name.
func (t *TargetSpec) QualInst(i InstSpec) string { return t.Name + "::" + i.Enum }

func lower(s string) string {
	b := []byte(s)
	for i := range b {
		if b[i] >= 'A' && b[i] <= 'Z' {
			b[i] += 32
		}
	}
	return string(b)
}

func upper(s string) string {
	b := []byte(s)
	for i := range b {
		if b[i] >= 'a' && b[i] <= 'z' {
			b[i] -= 32
		}
	}
	return string(b)
}

// camel renders "pcrel_hi20" as "PcrelHi20".
func camel(s string) string {
	out := make([]byte, 0, len(s))
	up := true
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '_' {
			up = true
			continue
		}
		if up && c >= 'a' && c <= 'z' {
			c -= 32
		} else if !up && c >= 'A' && c <= 'Z' {
			c += 32
		}
		out = append(out, c)
		up = false
	}
	return string(out)
}
