package corpus

import (
	"fmt"
	"sort"
	"sync"

	"vega/internal/cpp"
	"vega/internal/tablegen"
)

// InterfaceFunc describes one LLVM-provided interface function: its name,
// owning module, and the generator producing a target's reference
// implementation (returning "" when the target does not implement it).
type InterfaceFunc struct {
	Name   string
	Module Module
	Gen    func(t *TargetSpec) string
}

// AllFuncs lists every interface function across the seven modules.
func AllFuncs() []InterfaceFunc {
	var out []InterfaceFunc
	out = append(out, selFuncs()...)
	out = append(out, regFuncs()...)
	out = append(out, optFuncs()...)
	out = append(out, schFuncs()...)
	out = append(out, emiFuncs()...)
	out = append(out, assFuncs()...)
	out = append(out, disFuncs()...)
	return out
}

// funcIndex lazily maps function name → InterfaceFunc. The function set
// is process-constant, so the index is built once and shared.
var funcIndex struct {
	once sync.Once
	m    map[string]InterfaceFunc
}

// FuncByName returns the interface function with the given name in O(1).
func FuncByName(name string) (InterfaceFunc, bool) {
	funcIndex.once.Do(func() {
		all := AllFuncs()
		m := make(map[string]InterfaceFunc, len(all))
		for _, f := range all {
			m[f.Name] = f
		}
		funcIndex.m = m
	})
	f, ok := funcIndex.m[name]
	return f, ok
}

// Backend is one target's complete set of reference implementations.
type Backend struct {
	Target *TargetSpec
	// Funcs maps interface-function name to parsed implementation.
	Funcs map[string]*cpp.Node
	// Sources keeps the rendered C++ text.
	Sources map[string]string
}

// FuncNames lists the backend's implemented functions, sorted.
func (b *Backend) FuncNames() []string {
	out := make([]string, 0, len(b.Funcs))
	for n := range b.Funcs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// StatementCount totals the paper's statement metric over the backend.
func (b *Backend) StatementCount() int {
	n := 0
	for _, fn := range b.Funcs {
		n += len(cpp.NonClose(cpp.SplitFunction(fn)))
	}
	return n
}

// ParseFunction parses one rendered reference implementation into its
// normalized AST. A generator may emit the interface function plus local
// helpers (MIPS-style GetRelocTypeInner); pre-processing recursively
// inlines the helpers, as the paper's pipeline does.
func ParseFunction(src string) (*cpp.Node, error) {
	file, err := cpp.ParseFile(src)
	if err != nil {
		return nil, err
	}
	fn := file.Children[0]
	if len(file.Children) > 1 {
		in := cpp.NewInliner(file.Children[1:])
		fn = in.Inline(fn)
	}
	cpp.Normalize(fn)
	return fn, nil
}

// BuildBackend renders and parses one target's reference backend.
func BuildBackend(t *TargetSpec) (*Backend, error) {
	b := &Backend{
		Target:  t,
		Funcs:   make(map[string]*cpp.Node),
		Sources: make(map[string]string),
	}
	for _, f := range AllFuncs() {
		src := f.Gen(t)
		if src == "" {
			continue
		}
		fn, err := ParseFunction(src)
		if err != nil {
			return nil, fmt.Errorf("corpus: %s %s: %w\n%s", t.Name, f.Name, err, src)
		}
		b.Funcs[f.Name] = fn
		b.Sources[f.Name] = src
	}
	return b, nil
}

// Corpus bundles the rendered source tree with every backend.
type Corpus struct {
	Tree     *tablegen.SourceTree
	Backends map[string]*Backend // by target name
	Targets  []*TargetSpec
}

// Build renders the standard fleet: the LLVM core, every target's
// description files, and every target's reference backend.
func Build() (*Corpus, error) { return BuildFleet(Targets()) }

// BuildFleet renders a resident corpus for an explicit fleet of targets.
func BuildFleet(targets []*TargetSpec) (*Corpus, error) {
	c := &Corpus{
		Tree:     BuildTree(targets),
		Backends: make(map[string]*Backend, len(targets)),
		Targets:  targets,
	}
	for _, t := range targets {
		b, err := BuildBackend(t)
		if err != nil {
			return nil, err
		}
		c.Backends[t.Name] = b
	}
	return c, nil
}

// TrainingBackends returns the non-eval backends, in fleet order.
func (c *Corpus) TrainingBackends() []*Backend {
	var out []*Backend
	for _, t := range c.Targets {
		if !t.Eval {
			out = append(out, c.Backends[t.Name])
		}
	}
	return out
}

// EvalBackends returns the held-out backends, in fleet order.
func (c *Corpus) EvalBackends() []*Backend {
	var out []*Backend
	for _, t := range c.Targets {
		if t.Eval {
			out = append(out, c.Backends[t.Name])
		}
	}
	return out
}

// FunctionGroup gathers the implementations of one interface function
// across the given backends, preserving backend order.
func FunctionGroup(backends []*Backend, name string) map[string]*cpp.Node {
	out := make(map[string]*cpp.Node)
	for _, b := range backends {
		if fn, ok := b.Funcs[name]; ok {
			out[b.Target.Name] = fn
		}
	}
	return out
}
