package faultinject

import (
	"sync"
	"testing"
)

func TestShouldFiresOnce(t *testing.T) {
	Reset()
	defer Reset()
	Arm(GeneratePanic, "getRelocType")
	if Should(GeneratePanic, "other") {
		t.Fatal("fired on non-matching key")
	}
	if !Should(GeneratePanic, "getRelocType") {
		t.Fatal("did not fire on matching key")
	}
	if Should(GeneratePanic, "getRelocType") {
		t.Fatal("fired twice")
	}
	if Fired(GeneratePanic) != 1 {
		t.Fatalf("fired count = %d", Fired(GeneratePanic))
	}
}

func TestWildcardSpec(t *testing.T) {
	Reset()
	defer Reset()
	Arm(CheckpointCorrupt, "*")
	if !Should(CheckpointCorrupt, "/any/path.ckpt") {
		t.Fatal("wildcard did not match")
	}
	Arm(TrainNaN, "")
	if !Should(TrainNaN, "3") {
		t.Fatal("empty spec did not match")
	}
}

func TestDisarm(t *testing.T) {
	Reset()
	defer Reset()
	Arm(TrainCancel, "2")
	if !Armed(TrainCancel) {
		t.Fatal("not armed")
	}
	Disarm(TrainCancel)
	if Armed(TrainCancel) || Should(TrainCancel, "2") {
		t.Fatal("still armed after Disarm")
	}
}

func TestParseSpecs(t *testing.T) {
	got := parseSpecs(" generate-panic=getRelocType ; train-nan=2; checkpoint-corrupt=* ;;")
	want := map[Point]string{
		GeneratePanic:     "getRelocType",
		TrainNaN:          "2",
		CheckpointCorrupt: "*",
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %v", got)
	}
	for p, spec := range want {
		if got[p] != spec {
			t.Fatalf("parsed %v, want %v", got, want)
		}
	}
}

func TestValidateSpecsRejectsUnknownNames(t *testing.T) {
	valid, unknown := validateSpecs(parseSpecs("generate-panic=*;genrate-panic=typo;serve-admit-rejct=x"))
	if len(valid) != 1 || valid[GeneratePanic] != "*" {
		t.Fatalf("valid = %v, want only generate-panic=*", valid)
	}
	if len(unknown) != 2 || unknown[0] != "genrate-panic" || unknown[1] != "serve-admit-rejct" {
		t.Fatalf("unknown = %v, want the two typos sorted", unknown)
	}
}

func TestArmRefusesUnknownPoint(t *testing.T) {
	Reset()
	defer Reset()
	Arm(Point("no-such-point"), "*")
	if Armed(Point("no-such-point")) {
		t.Fatal("unknown point was armed")
	}
	if Should(Point("no-such-point"), "key") {
		t.Fatal("unknown point fired")
	}
}

func TestPointsListsEveryRegisteredPoint(t *testing.T) {
	pts := Points()
	if len(pts) != len(registry) {
		t.Fatalf("Points() = %d entries, registry has %d", len(pts), len(registry))
	}
	seen := map[Point]bool{}
	for i, p := range pts {
		if !registry[p] {
			t.Errorf("Points()[%d] = %q not in registry", i, p)
		}
		if i > 0 && !(pts[i-1] < p) {
			t.Errorf("Points() not sorted at %d: %q >= %q", i, pts[i-1], p)
		}
		seen[p] = true
	}
	for _, want := range []Point{ServeAdmitReject, ServeSwapFail, ServeHandlerPanic} {
		if !seen[want] {
			t.Errorf("serve point %q missing from Points()", want)
		}
	}
}

// TestConcurrentShould exercises the one-shot guarantee under the race
// detector: many goroutines race on one armed point; exactly one wins.
func TestConcurrentShould(t *testing.T) {
	Reset()
	defer Reset()
	Arm(GeneratePanic, "*")
	var wg sync.WaitGroup
	hits := make(chan bool, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if Should(GeneratePanic, "fn") {
				hits <- true
			}
		}()
	}
	wg.Wait()
	close(hits)
	n := 0
	for range hits {
		n++
	}
	if n != 1 {
		t.Fatalf("fired %d times, want 1", n)
	}
}
