// Package faultinject provides named fault points for exercising the
// pipeline's recovery paths. A fault point is armed either
// programmatically (tests) or through the VEGA_FAULTS environment
// variable (CLIs), and fires at most once per arming when a caller asks
// whether it should fail at a matching site.
//
// The environment form is a semicolon-separated list of point=spec
// pairs, e.g.
//
//	VEGA_FAULTS="generate-panic=getRelocType;train-nan=2"
//
// A spec of "*" (or an empty spec) matches every key offered at that
// point; otherwise the spec must equal the key exactly. All operations
// are safe for concurrent use.
package faultinject

import (
	"os"
	"strings"
	"sync"
)

// Point names a fault site compiled into the pipeline.
type Point string

const (
	// CheckpointCorrupt flips one payload byte of a checkpoint right
	// after it is written; key = destination path.
	CheckpointCorrupt Point = "checkpoint-corrupt"
	// GeneratePanic panics inside GenerateFunction; key = interface
	// function name.
	GeneratePanic Point = "generate-panic"
	// GenerateCancel aborts backend generation as if the context had
	// been canceled; key = module name.
	GenerateCancel Point = "generate-cancel"
	// TrainNaN poisons one model parameter with NaN at the start of an
	// epoch; key = decimal epoch index.
	TrainNaN Point = "train-nan"
	// TrainCancel stops training as if the context had been canceled;
	// key = decimal epoch index.
	TrainCancel Point = "train-cancel"
)

var (
	mu      sync.Mutex
	armed   map[Point]string
	fired   map[Point]int
	envOnce sync.Once
)

// loadEnv arms the points listed in VEGA_FAULTS. Called lazily so tests
// that never touch the package pay nothing.
func loadEnv() {
	envOnce.Do(func() {
		for p, spec := range parseSpecs(os.Getenv("VEGA_FAULTS")) {
			armRaw(p, spec)
		}
	})
}

// parseSpecs parses the VEGA_FAULTS syntax: "point=spec;point2=spec2".
func parseSpecs(s string) map[Point]string {
	out := make(map[Point]string)
	for _, pair := range strings.Split(s, ";") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		name, spec, _ := strings.Cut(pair, "=")
		out[Point(strings.TrimSpace(name))] = strings.TrimSpace(spec)
	}
	return out
}

func armRaw(p Point, spec string) {
	if armed == nil {
		armed = make(map[Point]string)
	}
	armed[p] = spec
}

// Arm arms a fault point with a spec ("" or "*" matches any key).
func Arm(p Point, spec string) {
	loadEnv()
	mu.Lock()
	defer mu.Unlock()
	armRaw(p, spec)
}

// Disarm removes a single armed point.
func Disarm(p Point) {
	loadEnv()
	mu.Lock()
	defer mu.Unlock()
	delete(armed, p)
}

// Reset disarms every point and clears fire counts. Environment faults
// are not re-armed; tests call Reset to start from a clean slate.
func Reset() {
	loadEnv()
	mu.Lock()
	defer mu.Unlock()
	armed = nil
	fired = nil
}

// Should reports whether the fault at p should fire for key. A firing
// consumes the arming, so each armed fault triggers exactly once.
func Should(p Point, key string) bool {
	loadEnv()
	mu.Lock()
	defer mu.Unlock()
	spec, ok := armed[p]
	if !ok {
		return false
	}
	if spec != "" && spec != "*" && spec != key {
		return false
	}
	delete(armed, p)
	if fired == nil {
		fired = make(map[Point]int)
	}
	fired[p]++
	return true
}

// Armed reports whether p is currently armed (without consuming it).
func Armed(p Point) bool {
	loadEnv()
	mu.Lock()
	defer mu.Unlock()
	_, ok := armed[p]
	return ok
}

// Fired returns how many times p has fired since the last Reset.
func Fired(p Point) int {
	loadEnv()
	mu.Lock()
	defer mu.Unlock()
	return fired[p]
}
