// Package faultinject provides named fault points for exercising the
// pipeline's recovery paths. A fault point is armed either
// programmatically (tests) or through the VEGA_FAULTS environment
// variable (CLIs), and fires at most once per arming when a caller asks
// whether it should fail at a matching site.
//
// The environment form is a semicolon-separated list of point=spec
// pairs, e.g.
//
//	VEGA_FAULTS="generate-panic=getRelocType;train-nan=2"
//
// A spec of "*" (or an empty spec) matches every key offered at that
// point; otherwise the spec must equal the key exactly. All operations
// are safe for concurrent use.
package faultinject

import (
	"log"
	"os"
	"sort"
	"strings"
	"sync"
)

// Point names a fault site compiled into the pipeline.
type Point string

const (
	// CheckpointCorrupt flips one payload byte of a checkpoint right
	// after it is written; key = destination path.
	CheckpointCorrupt Point = "checkpoint-corrupt"
	// GeneratePanic panics inside GenerateFunction; key = interface
	// function name.
	GeneratePanic Point = "generate-panic"
	// GenerateCancel aborts backend generation as if the context had
	// been canceled; key = module name.
	GenerateCancel Point = "generate-cancel"
	// TrainNaN poisons one model parameter with NaN at the start of an
	// epoch; key = decimal epoch index.
	TrainNaN Point = "train-nan"
	// TrainCancel stops training as if the context had been canceled;
	// key = decimal epoch index.
	TrainCancel Point = "train-cancel"
	// ServeAdmitReject forces the serving admission gate to shed a
	// request as if the queue were full (429); key = target name.
	ServeAdmitReject Point = "serve-admit-reject"
	// ServeSwapFail fails the snapshot health check during a hot reload,
	// so the old snapshot must stay serving; key = checkpoint path.
	ServeSwapFail Point = "serve-swap-fail"
	// ServeHandlerPanic panics inside the generate request handler so
	// the request-level recovery path (degraded 200, never a 500) is
	// exercisable; key = target name.
	ServeHandlerPanic Point = "serve-handler-panic"
)

// registry lists every compiled-in fault point. VEGA_FAULTS entries are
// validated against it, so a typo in a point name is reported instead of
// being armed forever without ever firing.
var registry = map[Point]bool{
	CheckpointCorrupt: true,
	GeneratePanic:     true,
	GenerateCancel:    true,
	TrainNaN:          true,
	TrainCancel:       true,
	ServeAdmitReject:  true,
	ServeSwapFail:     true,
	ServeHandlerPanic: true,
}

// Points returns every registered fault point name, sorted — the list
// VEGA_FAULTS specs are checked against, exported so operators and docs
// can enumerate what is armable.
func Points() []Point {
	out := make([]Point, 0, len(registry))
	for p := range registry {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Registered reports whether p names a compiled-in fault point.
func Registered(p Point) bool { return registry[p] }

var (
	mu      sync.Mutex
	armed   map[Point]string
	fired   map[Point]int
	envOnce sync.Once
)

// loadEnv arms the points listed in VEGA_FAULTS. Called lazily so tests
// that never touch the package pay nothing. Unknown point names are
// skipped and logged once (per process), never armed: a typo'd spec used
// to sit armed forever without firing, invisible to the operator.
func loadEnv() {
	envOnce.Do(func() {
		specs, unknown := validateSpecs(parseSpecs(os.Getenv("VEGA_FAULTS")))
		if len(unknown) > 0 {
			log.Printf("faultinject: VEGA_FAULTS names unknown point(s) %v; known points: %v",
				unknown, Points())
		}
		for p, spec := range specs {
			armRaw(p, spec)
		}
	})
}

// validateSpecs splits parsed specs into the registered (armable) set and
// the sorted list of unknown point names.
func validateSpecs(specs map[Point]string) (valid map[Point]string, unknown []Point) {
	valid = make(map[Point]string, len(specs))
	for p, spec := range specs {
		if !registry[p] {
			unknown = append(unknown, p)
			continue
		}
		valid[p] = spec
	}
	sort.Slice(unknown, func(i, j int) bool { return unknown[i] < unknown[j] })
	return valid, unknown
}

// parseSpecs parses the VEGA_FAULTS syntax: "point=spec;point2=spec2".
func parseSpecs(s string) map[Point]string {
	out := make(map[Point]string)
	for _, pair := range strings.Split(s, ";") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		name, spec, _ := strings.Cut(pair, "=")
		out[Point(strings.TrimSpace(name))] = strings.TrimSpace(spec)
	}
	return out
}

func armRaw(p Point, spec string) {
	if armed == nil {
		armed = make(map[Point]string)
	}
	armed[p] = spec
}

// warnedUnknown remembers which unknown point names have been logged, so
// a hot loop arming a typo'd point cannot flood the log. Guarded by mu.
var warnedUnknown map[Point]bool

// Arm arms a fault point with a spec ("" or "*" matches any key).
// Unregistered points are refused and logged once: arming a point the
// binary does not contain can never fire and would otherwise hide the
// mistake forever.
func Arm(p Point, spec string) {
	loadEnv()
	mu.Lock()
	defer mu.Unlock()
	if !registry[p] {
		if !warnedUnknown[p] {
			if warnedUnknown == nil {
				warnedUnknown = make(map[Point]bool)
			}
			warnedUnknown[p] = true
			log.Printf("faultinject: Arm(%q): unknown point; known points: %v", p, Points())
		}
		return
	}
	armRaw(p, spec)
}

// Disarm removes a single armed point.
func Disarm(p Point) {
	loadEnv()
	mu.Lock()
	defer mu.Unlock()
	delete(armed, p)
}

// Reset disarms every point and clears fire counts. Environment faults
// are not re-armed; tests call Reset to start from a clean slate.
func Reset() {
	loadEnv()
	mu.Lock()
	defer mu.Unlock()
	armed = nil
	fired = nil
}

// Should reports whether the fault at p should fire for key. A firing
// consumes the arming, so each armed fault triggers exactly once.
func Should(p Point, key string) bool {
	loadEnv()
	mu.Lock()
	defer mu.Unlock()
	spec, ok := armed[p]
	if !ok {
		return false
	}
	if spec != "" && spec != "*" && spec != key {
		return false
	}
	delete(armed, p)
	if fired == nil {
		fired = make(map[Point]int)
	}
	fired[p]++
	return true
}

// Armed reports whether p is currently armed (without consuming it).
func Armed(p Point) bool {
	loadEnv()
	mu.Lock()
	defer mu.Unlock()
	_, ok := armed[p]
	return ok
}

// Fired returns how many times p has fired since the last Reset.
func Fired(p Point) int {
	loadEnv()
	mu.Lock()
	defer mu.Unlock()
	return fired[p]
}
