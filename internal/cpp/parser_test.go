package cpp

import (
	"strings"
	"testing"
)

const relocFuncSrc = `unsigned ARMELFObjectWriter::getRelocType(MCContext &Ctx, const MCValue &Target, const MCFixup &Fixup, bool IsPCRel) const {
  unsigned Kind = Fixup.getTargetKind();
  MCSymbolRefExpr::VariantKind Modifier = Target.getAccessVariant();
  if (IsPCRel) {
    switch (Kind) {
    case ARM::fixup_arm_movt_hi16:
      return ELF::R_ARM_MOVT_PREL;
    default:
      return ELF::R_ARM_NONE;
    }
  }
  return ELF::R_ARM_ABS32;
}`

func mustParseFunction(t *testing.T, src string) *Node {
	t.Helper()
	fn, err := ParseFunction(src)
	if err != nil {
		t.Fatalf("ParseFunction: %v", err)
	}
	return fn
}

func TestParseFunctionShape(t *testing.T) {
	fn := mustParseFunction(t, relocFuncSrc)
	if fn.Kind != KindFunction {
		t.Fatalf("kind = %v", fn.Kind)
	}
	if fn.Value != "ARMELFObjectWriter::getRelocType" {
		t.Errorf("name = %q", fn.Value)
	}
	if fn.FunctionName() != "getRelocType" {
		t.Errorf("FunctionName = %q", fn.FunctionName())
	}
	if got := fn.Children[0].Value; got != "unsigned" {
		t.Errorf("return type = %q", got)
	}
	params := fn.Children[1]
	if len(params.Children) != 4 {
		t.Fatalf("params = %d", len(params.Children))
	}
	if params.Children[3].Value != "IsPCRel" || params.Children[3].Children[0].Value != "bool" {
		t.Errorf("param 3 = %v", params.Children[3])
	}
	body := fn.Children[2]
	if len(body.Children) != 4 {
		t.Fatalf("body statements = %d, want 4", len(body.Children))
	}
	if body.Children[0].Kind != KindDecl || body.Children[2].Kind != KindIf {
		t.Errorf("statement kinds: %v, %v", body.Children[0].Kind, body.Children[2].Kind)
	}
}

func TestParseDeclWithQualifiedType(t *testing.T) {
	st, err := ParseStatement(`MCSymbolRefExpr::VariantKind Modifier = Target.getAccessVariant();`)
	if err != nil {
		t.Fatal(err)
	}
	if st.Kind != KindDecl {
		t.Fatalf("kind = %v", st.Kind)
	}
	if st.Children[0].Value != "MCSymbolRefExpr::VariantKind" {
		t.Errorf("type = %q", st.Children[0].Value)
	}
}

func TestParseDeclVsExprStmt(t *testing.T) {
	decl, err := ParseStatement(`unsigned Kind = 0;`)
	if err != nil || decl.Kind != KindDecl {
		t.Errorf("decl: %v %v", decl, err)
	}
	expr, err := ParseStatement(`Kind = f(x);`)
	if err != nil || expr.Kind != KindExprStmt {
		t.Errorf("expr stmt: %v %v", expr, err)
	}
	if expr.Children[0].Kind != KindAssign {
		t.Errorf("assignment: %v", expr.Children[0].Kind)
	}
	call, err := ParseStatement(`report_fatal_error("bad");`)
	if err != nil || call.Kind != KindExprStmt || call.Children[0].Kind != KindCall {
		t.Errorf("call stmt: %v %v", call, err)
	}
}

func TestParsePointerDecl(t *testing.T) {
	st, err := ParseStatement(`const MCExpr *Expr = Fixup.getValue();`)
	if err != nil {
		t.Fatal(err)
	}
	if st.Kind != KindDecl || st.Children[0].Value != "const MCExpr *" {
		t.Errorf("got %v", st)
	}
}

func TestParseSwitchWithCases(t *testing.T) {
	st, err := ParseStatement(`switch (Kind) {
  case A::x:
    return 1;
  case A::y:
  case A::z:
    break;
  default:
    return 0;
  }`)
	if err != nil {
		t.Fatal(err)
	}
	if st.Kind != KindSwitch {
		t.Fatalf("kind = %v", st.Kind)
	}
	body := st.Children[1]
	if len(body.Children) != 4 {
		t.Fatalf("arms = %d, want 4 (3 cases + default)", len(body.Children))
	}
	// Fall-through case A::y has no statements.
	if len(body.Children[1].Children) != 1 {
		t.Errorf("fall-through case should have only its label, got %d children", len(body.Children[1].Children))
	}
	if body.Children[3].Kind != KindDefault {
		t.Errorf("last arm = %v", body.Children[3].Kind)
	}
}

func TestParseIfElseChain(t *testing.T) {
	st, err := ParseStatement(`if (a == 1) { f(); } else if (a == 2) { g(); } else { h(); }`)
	if err != nil {
		t.Fatal(err)
	}
	if st.Kind != KindIf || len(st.Children) != 3 {
		t.Fatalf("if shape: %v", st)
	}
	if st.Children[2].Kind != KindIf {
		t.Errorf("else-if chain not nested: %v", st.Children[2].Kind)
	}
}

func TestParseForWhileDo(t *testing.T) {
	for _, src := range []string{
		`for (unsigned i = 0; i < n; i++) { total += i; }`,
		`while (x > 0) { x--; }`,
		`do { x++; } while (x < 10);`,
	} {
		if _, err := ParseStatement(src); err != nil {
			t.Errorf("ParseStatement(%q): %v", src, err)
		}
	}
}

func TestParseExprPrecedence(t *testing.T) {
	e, err := ParseExpr(`a + b * c`)
	if err != nil {
		t.Fatal(err)
	}
	if e.Kind != KindBinary || e.Value != "+" {
		t.Fatalf("root = %v", e)
	}
	if e.Children[1].Kind != KindBinary || e.Children[1].Value != "*" {
		t.Errorf("rhs = %v", e.Children[1])
	}
}

func TestParseShiftVsTemplate(t *testing.T) {
	e, err := ParseExpr(`Value << 16 | Value >> 8`)
	if err != nil {
		t.Fatal(err)
	}
	if e.Value != "|" {
		t.Errorf("root op = %q", e.Value)
	}
	st, err := ParseStatement(`SmallVector<int, 4> Ops;`)
	if err != nil {
		t.Fatal(err)
	}
	if st.Kind != KindDecl || st.Children[0].Value != "SmallVector<int, 4>" {
		t.Errorf("template decl: %v", st)
	}
	// "a < b" must not be mistaken for template args.
	cmp, err := ParseExpr(`a < b`)
	if err != nil || cmp.Kind != KindBinary || cmp.Value != "<" {
		t.Errorf("comparison: %v %v", cmp, err)
	}
}

func TestParseCasts(t *testing.T) {
	e, err := ParseExpr(`static_cast<unsigned>(Modifier)`)
	if err != nil || e.Kind != KindCast || e.Value != "static_cast" {
		t.Fatalf("static_cast: %v %v", e, err)
	}
	e2, err := ParseExpr(`(unsigned)x`)
	if err != nil || e2.Kind != KindCast {
		t.Fatalf("C cast: %v %v", e2, err)
	}
	e3, err := ParseExpr(`unsigned(x + 1)`)
	if err != nil || e3.Kind != KindCast {
		t.Fatalf("functional cast: %v %v", e3, err)
	}
}

func TestParseMemberChains(t *testing.T) {
	e, err := ParseExpr(`MI.getOperand(0).getReg()`)
	if err != nil {
		t.Fatal(err)
	}
	if e.Kind != KindCall {
		t.Fatalf("root = %v", e.Kind)
	}
	if e.Children[0].Kind != KindMember {
		t.Errorf("callee = %v", e.Children[0].Kind)
	}
}

func TestParseTernaryAndUnary(t *testing.T) {
	e, err := ParseExpr(`IsPCRel ? ELF::R_X_PREL : ELF::R_X_ABS`)
	if err != nil || e.Kind != KindTernary {
		t.Fatalf("ternary: %v %v", e, err)
	}
	u, err := ParseExpr(`!Target.isAbsolute()`)
	if err != nil || u.Kind != KindUnary || u.Value != "!" {
		t.Fatalf("unary: %v %v", u, err)
	}
}

func TestParseFileMultipleFunctions(t *testing.T) {
	src := relocFuncSrc + "\n" + `bool X::isValid(int a) { return a > 0; }`
	file, err := ParseFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(file.Children) != 2 {
		t.Fatalf("functions = %d", len(file.Children))
	}
	if file.Children[1].FunctionName() != "isValid" {
		t.Errorf("second function = %q", file.Children[1].FunctionName())
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`if (x { }`,
		`switch (x) { foo; }`,
		`return 1 +;`,
		`int = 4;`,
	}
	for _, src := range bad {
		if _, err := ParseStatement(src); err == nil {
			t.Errorf("ParseStatement(%q): expected error", src)
		}
	}
}

func TestNodeHelpers(t *testing.T) {
	fn := mustParseFunction(t, relocFuncSrc)
	clone := fn.Clone()
	if !fn.Equal(clone) {
		t.Error("clone not equal")
	}
	if fn.Hash() != clone.Hash() {
		t.Error("clone hash differs")
	}
	clone.Children[2].Children[0].Value = "mutated"
	if fn.Equal(clone) {
		t.Error("mutated clone still equal")
	}
	if fn.Size() < 10 {
		t.Errorf("size = %d, too small", fn.Size())
	}
	if fn.Height() < 4 {
		t.Errorf("height = %d, too small", fn.Height())
	}
	ids := fn.Idents()
	found := false
	for _, id := range ids {
		if id == "fixup_arm_movt_hi16" {
			found = true
		}
	}
	if !found {
		t.Errorf("Idents missing qualified components: %v", ids)
	}
}

func TestPostOrderAndLeaves(t *testing.T) {
	e, _ := ParseExpr("a + b")
	post := e.PostOrder(nil)
	if len(post) != 3 || post[2] != e {
		t.Errorf("post-order: %v", post)
	}
	leaves := e.Leaves()
	if len(leaves) != 2 || leaves[0].Value != "a" || leaves[1].Value != "b" {
		t.Errorf("leaves: %v", leaves)
	}
}

func TestParseRoundTrip(t *testing.T) {
	fn := mustParseFunction(t, relocFuncSrc)
	printed := Print(fn)
	fn2, err := ParseFunction(printed)
	if err != nil {
		t.Fatalf("reparse failed: %v\nprinted:\n%s", err, printed)
	}
	if !fn.Equal(fn2) {
		t.Errorf("round trip mismatch:\n%s\nvs\n%s", Print(fn), Print(fn2))
	}
}

func TestPrintContainsExpectedLines(t *testing.T) {
	fn := mustParseFunction(t, relocFuncSrc)
	printed := Print(fn)
	for _, want := range []string{
		"unsigned Kind = Fixup.getTargetKind();",
		"case ARM::fixup_arm_movt_hi16:",
		"return ELF::R_ARM_MOVT_PREL;",
		"switch (Kind) {",
	} {
		if !strings.Contains(printed, want) {
			t.Errorf("printed output missing %q:\n%s", want, printed)
		}
	}
}
