package cpp

import "strings"

// Inliner recursively inlines calls to known helper functions into their
// callers, as VEGA's pre-processing does ("for each non-recursive function,
// its callee functions are recursively inlined, maintaining calls to
// target-specific functions"). Helpers are looked up by bare name.
type Inliner struct {
	// Helpers maps a bare function name to its definition.
	Helpers map[string]*Node
	// MaxDepth bounds recursive inlining; cycles are refused regardless.
	MaxDepth int
}

// NewInliner builds an inliner over a set of function definitions.
func NewInliner(fns []*Node) *Inliner {
	in := &Inliner{Helpers: make(map[string]*Node), MaxDepth: 8}
	for _, f := range fns {
		if f != nil && f.Kind == KindFunction {
			in.Helpers[bareName(f.Value)] = f
		}
	}
	return in
}

func bareName(qualified string) string {
	parts := strings.Split(qualified, "::")
	return parts[len(parts)-1]
}

// Inline returns a copy of fn with eligible helper calls expanded.
// Two call shapes are inlined, matching how LLVM backends wrap helpers:
//
//	return Helper(a, b);     -> helper body with params substituted
//	Helper(a, b);            -> same, minus any trailing return value
//
// Calls in other expression positions are left intact. Recursive helpers
// are never inlined.
func (in *Inliner) Inline(fn *Node) *Node {
	out := fn.Clone()
	body := out.Children[2]
	in.inlineBlock(body, map[string]bool{bareName(fn.Value): true}, 0)
	return out
}

func (in *Inliner) inlineBlock(blk *Node, active map[string]bool, depth int) {
	if depth > in.MaxDepth {
		return
	}
	var out []*Node
	for _, st := range blk.Children {
		expanded := in.expandStmt(st, active, depth)
		out = append(out, expanded...)
	}
	blk.Children = out
	for _, st := range blk.Children {
		in.recurseCompound(st, active, depth)
	}
}

// recurseCompound walks compound statements to reach nested blocks.
func (in *Inliner) recurseCompound(st *Node, active map[string]bool, depth int) {
	switch st.Kind {
	case KindBlock:
		in.inlineBlock(st, active, depth)
	case KindIf:
		in.recurseCompound(st.Children[1], active, depth)
		if len(st.Children) == 3 {
			in.recurseCompound(st.Children[2], active, depth)
		}
	case KindSwitch:
		for _, c := range st.Children[1].Children {
			in.recurseCompound(c, active, depth)
		}
	case KindCase:
		for _, s := range st.Children[1:] {
			in.recurseCompound(s, active, depth)
		}
	case KindDefault:
		for _, s := range st.Children {
			in.recurseCompound(s, active, depth)
		}
	case KindFor, KindWhile:
		in.recurseCompound(st.Children[len(st.Children)-1], active, depth)
	case KindDoWhile:
		in.recurseCompound(st.Children[0], active, depth)
	}
}

// expandStmt returns the replacement statements for st (usually just st).
func (in *Inliner) expandStmt(st *Node, active map[string]bool, depth int) []*Node {
	call, isReturn := inlinableCall(st)
	if call == nil {
		return []*Node{st}
	}
	name := calleeName(call)
	helper, ok := in.Helpers[name]
	if !ok || active[name] {
		return []*Node{st}
	}
	params := helper.Children[1]
	if len(call.Children)-1 != len(params.Children) {
		return []*Node{st}
	}
	subst := make(map[string]*Node, len(params.Children))
	for i, p := range params.Children {
		if p.Value != "" {
			subst[p.Value] = call.Children[i+1]
		}
	}
	body := helper.Children[2].Clone()
	substituteIdents(body, subst)

	active[name] = true
	in.inlineBlock(body, active, depth+1)
	delete(active, name)

	sts := body.Children
	if !isReturn {
		sts = stripReturnValues(sts)
	}
	if len(sts) == 0 {
		return []*Node{NewNode(KindEmpty, "")}
	}
	return sts
}

// inlinableCall recognizes "return F(args);" and "F(args);" statements.
// It returns the call node and whether the statement was a return.
func inlinableCall(st *Node) (*Node, bool) {
	switch st.Kind {
	case KindReturn:
		if len(st.Children) == 1 && st.Children[0].Kind == KindCall {
			c := st.Children[0]
			if c.Children[0].Kind == KindIdent {
				return c, true
			}
		}
	case KindExprStmt:
		if st.Children[0].Kind == KindCall {
			c := st.Children[0]
			if c.Children[0].Kind == KindIdent {
				return c, false
			}
		}
	}
	return nil, false
}

func calleeName(call *Node) string {
	callee := call.Children[0]
	switch callee.Kind {
	case KindIdent:
		return callee.Value
	case KindQualified:
		return bareName(callee.Value)
	}
	return ""
}

// substituteIdents replaces identifier leaves per subst throughout a tree.
func substituteIdents(n *Node, subst map[string]*Node) {
	for i, c := range n.Children {
		if c.Kind == KindIdent {
			if repl, ok := subst[c.Value]; ok {
				n.Children[i] = repl.Clone()
				continue
			}
		}
		substituteIdents(c, subst)
	}
}

// stripReturnValues converts "return expr;" into "expr;" (or removes bare
// returns) when a helper was called for effect only.
func stripReturnValues(sts []*Node) []*Node {
	out := make([]*Node, 0, len(sts))
	for _, st := range sts {
		if st.Kind == KindReturn {
			if len(st.Children) == 1 {
				out = append(out, NewNode(KindExprStmt, "", st.Children[0]))
			}
			continue
		}
		out = append(out, st)
	}
	return out
}
