package cpp

import (
	"strings"
	"sync"
)

// Token interning. Backend code re-uses a small vocabulary of
// identifiers (getRelocType, Fixups, MCExpr, ...) across thousands of
// statements, and the lexer runs over every statement text again during
// templatization and alignment. Handing out one canonical string per
// distinct token text keeps equal tokens pointer-equal — string
// comparison and map hashing hit their fast paths — and lets the big
// per-file source strings be collected instead of being pinned by
// token substrings.
var interner = struct {
	sync.RWMutex
	m map[string]string
}{m: make(map[string]string, 1024)}

// singleByte holds canonical one-byte strings so single-character
// punctuation never allocates.
var singleByte [256]string

func init() {
	for i := range singleByte {
		singleByte[i] = string(rune(i))
	}
	for kw := range keywords {
		interner.m[kw] = kw
	}
}

// Intern returns the canonical copy of s, detached from any larger
// backing array. Safe for concurrent use.
func Intern(s string) string {
	if len(s) == 1 {
		return singleByte[s[0]]
	}
	interner.RLock()
	c, ok := interner.m[s]
	interner.RUnlock()
	if ok {
		return c
	}
	c = strings.Clone(s) // detach from the source file's backing array
	interner.Lock()
	if prev, ok := interner.m[c]; ok {
		c = prev
	} else {
		interner.m[c] = c
	}
	interner.Unlock()
	return c
}
