package cpp

// Normalize applies the paper's pre-processing normalizations to a function
// AST, in place, returning the (possibly replaced) root:
//
//   - if/else-if chains that compare one discriminant against constants
//     with == are rewritten into switch statements ("we normalize
//     equivalent selection statements like if elif into switch");
//   - empty statements are dropped.
func Normalize(fn *Node) *Node {
	if fn == nil {
		return nil
	}
	normalizeChildren(fn)
	return fn
}

func normalizeChildren(n *Node) {
	for i, c := range n.Children {
		n.Children[i] = normalizeStmt(c)
	}
	// Drop empty statements from blocks.
	if n.Kind == KindBlock || n.Kind == KindFunction {
		kept := n.Children[:0]
		for _, c := range n.Children {
			if c.Kind != KindEmpty {
				kept = append(kept, c)
			}
		}
		n.Children = kept
	}
}

func normalizeStmt(n *Node) *Node {
	if n == nil {
		return nil
	}
	if n.Kind == KindIf {
		if sw := ifChainToSwitch(n); sw != nil {
			normalizeChildren(sw)
			return sw
		}
	}
	normalizeChildren(n)
	return n
}

// ifChainToSwitch converts
//
//	if (K == A::x) {...} else if (K == A::y) {...} else {...}
//
// into
//
//	switch (K) { case A::x: ... case A::y: ... default: ... }
//
// when every branch condition is "discriminant == constant" over the same
// discriminant. Returns nil when the chain does not qualify.
func ifChainToSwitch(n *Node) *Node {
	type arm struct {
		label *Node
		body  *Node
	}
	var arms []arm
	var deflt *Node
	var discr *Node

	cur := n
	for {
		cond := cur.Children[0]
		d, label := splitEqCond(cond)
		if d == nil {
			return nil
		}
		if discr == nil {
			discr = d
		} else if !discr.Equal(d) {
			return nil
		}
		arms = append(arms, arm{label: label, body: cur.Children[1]})
		if len(cur.Children) < 3 {
			break
		}
		els := cur.Children[2]
		if els.Kind == KindIf {
			cur = els
			continue
		}
		deflt = els
		break
	}
	if len(arms) < 2 {
		return nil
	}

	body := NewNode(KindBlock, "")
	for _, a := range arms {
		cs := NewNode(KindCase, "", a.label)
		cs.Children = append(cs.Children, caseStatements(a.body)...)
		cs.Children = append(cs.Children, NewNode(KindBreak, ""))
		body.Children = append(body.Children, cs)
	}
	if deflt != nil {
		def := NewNode(KindDefault, "")
		def.Children = append(def.Children, caseStatements(deflt)...)
		def.Children = append(def.Children, NewNode(KindBreak, ""))
		body.Children = append(body.Children, def)
	}
	return NewNode(KindSwitch, "", discr, body)
}

// splitEqCond decomposes "X == C" where C is a constant-ish expression
// (number, qualified name, or char); returns (discriminant, label) or
// (nil, nil).
func splitEqCond(cond *Node) (*Node, *Node) {
	if cond == nil || cond.Kind != KindBinary || cond.Value != "==" {
		return nil, nil
	}
	lhs, rhs := cond.Children[0], cond.Children[1]
	if isCaseConstant(rhs) && !isCaseConstant(lhs) {
		return lhs, rhs
	}
	if isCaseConstant(lhs) && !isCaseConstant(rhs) {
		return rhs, lhs
	}
	return nil, nil
}

func isCaseConstant(n *Node) bool {
	switch n.Kind {
	case KindNumber, KindQualified, KindChar:
		return true
	}
	return false
}

// caseStatements returns the statements of a branch body, unwrapping a
// block and removing a trailing break (one is re-added by the caller).
func caseStatements(body *Node) []*Node {
	var sts []*Node
	if body.Kind == KindBlock {
		sts = body.Children
	} else {
		sts = []*Node{body}
	}
	out := make([]*Node, 0, len(sts))
	for _, s := range sts {
		if s.Kind == KindBreak {
			continue
		}
		out = append(out, s.Clone())
	}
	return out
}
