package cpp

// Statement is the paper's unit of code: a one-line fragment that ends with
// one of "{", ";" or ":". A function body is flattened into a statement
// sequence; compound statements contribute their header line plus the
// statements of their bodies, and closing braces contribute "}" lines so
// the sequence round-trips to well-formed code.
type Statement struct {
	Text  string // canonical one-line rendering
	Node  *Node  // owning AST node (nil for closing braces)
	Close bool   // true for a synthetic "}" line
	Depth int    // nesting depth inside the function body
}

// SplitFunction flattens a parsed function definition into the paper's
// statement sequence. The first statement is the function definition line
// itself ("unsigned T::getRelocType(...) {"); the last is its closing "}".
func SplitFunction(fn *Node) []Statement {
	if fn == nil || fn.Kind != KindFunction {
		return nil
	}
	var out []Statement
	out = append(out, Statement{Text: FunctionHead(fn), Node: fn, Depth: 0})
	body := fn.Children[2]
	for _, st := range body.Children {
		out = flatten(out, st, 1)
	}
	out = append(out, Statement{Text: "}", Close: true, Depth: 0})
	return out
}

// FunctionHead renders the definition line of a function.
func FunctionHead(fn *Node) string {
	ret, params := fn.Children[0], fn.Children[1]
	head := ret.Value + " " + fn.Value + "("
	for i, p := range params.Children {
		if i > 0 {
			head += ", "
		}
		head += p.Children[0].Value
		if p.Value != "" {
			head += " " + p.Value
		}
	}
	return head + ") {"
}

func flatten(out []Statement, n *Node, depth int) []Statement {
	switch n.Kind {
	case KindBlock:
		out = append(out, Statement{Text: "{", Node: n, Depth: depth})
		for _, st := range n.Children {
			out = flatten(out, st, depth+1)
		}
		out = append(out, Statement{Text: "}", Close: true, Depth: depth})
	case KindIf:
		out = append(out, Statement{Text: StmtHead(n), Node: n, Depth: depth})
		out = flattenBody(out, n.Children[1], depth+1)
		if len(n.Children) == 3 {
			out = append(out, Statement{Text: "} else {", Node: n, Depth: depth})
			out = flattenBody(out, n.Children[2], depth+1)
		}
		out = append(out, Statement{Text: "}", Close: true, Depth: depth})
	case KindSwitch:
		out = append(out, Statement{Text: StmtHead(n), Node: n, Depth: depth})
		for _, c := range n.Children[1].Children {
			out = flatten(out, c, depth)
		}
		out = append(out, Statement{Text: "}", Close: true, Depth: depth})
	case KindCase:
		out = append(out, Statement{Text: StmtHead(n), Node: n, Depth: depth})
		for _, st := range n.Children[1:] {
			out = flatten(out, st, depth+1)
		}
	case KindDefault:
		out = append(out, Statement{Text: "default:", Node: n, Depth: depth})
		for _, st := range n.Children {
			out = flatten(out, st, depth+1)
		}
	case KindFor, KindWhile:
		out = append(out, Statement{Text: StmtHead(n), Node: n, Depth: depth})
		out = flattenBody(out, n.Children[len(n.Children)-1], depth+1)
		out = append(out, Statement{Text: "}", Close: true, Depth: depth})
	case KindDoWhile:
		out = append(out, Statement{Text: "do {", Node: n, Depth: depth})
		out = flattenBody(out, n.Children[0], depth+1)
		out = append(out, Statement{Text: "} while (" + ExprString(n.Children[1]) + ");", Close: true, Depth: depth})
	default:
		out = append(out, Statement{Text: StmtHead(n), Node: n, Depth: depth})
	}
	return out
}

// flattenBody flattens a compound statement's body without emitting the
// enclosing block's own braces (the header/footer lines own them).
func flattenBody(out []Statement, n *Node, depth int) []Statement {
	if n.Kind == KindBlock {
		for _, st := range n.Children {
			out = flatten(out, st, depth)
		}
		return out
	}
	return flatten(out, n, depth)
}

// StatementTexts extracts just the text lines of a statement sequence.
func StatementTexts(sts []Statement) []string {
	out := make([]string, len(sts))
	for i, s := range sts {
		out[i] = s.Text
	}
	return out
}

// NonClose filters out synthetic closing-brace statements; what remains
// are the paper's "statements" counted in all evaluation tables.
func NonClose(sts []Statement) []Statement {
	var out []Statement
	for _, s := range sts {
		if !s.Close && s.Text != "{" {
			out = append(out, s)
		}
	}
	return out
}
