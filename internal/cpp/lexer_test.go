package cpp

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestLexBasicTokens(t *testing.T) {
	toks, err := Lex(`unsigned Kind = Fixup.getTargetKind();`)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"unsigned", "Kind", "=", "Fixup", ".", "getTargetKind", "(", ")", ";"}
	if got := TokenTexts(toks); !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
	if toks[0].Kind != TokKeyword {
		t.Errorf("unsigned should be a keyword, got %v", toks[0].Kind)
	}
	if toks[1].Kind != TokIdent {
		t.Errorf("Kind should be an identifier, got %v", toks[1].Kind)
	}
}

func TestLexQualifiedName(t *testing.T) {
	toks := mustLex(t, `case ARM::fixup_arm_movt_hi16:`)
	want := []string{"case", "ARM", "::", "fixup_arm_movt_hi16", ":"}
	if got := TokenTexts(toks); !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestLexMultiCharPunct(t *testing.T) {
	cases := map[string][]string{
		"a->b":     {"a", "->", "b"},
		"a<<=2":    {"a", "<<=", "2"},
		"a<<2":     {"a", "<<", "2"},
		"x::y":     {"x", "::", "y"},
		"a!=b":     {"a", "!=", "b"},
		"a&&b||c":  {"a", "&&", "b", "||", "c"},
		"i++ +--j": {"i", "++", "+", "--", "j"},
		"a<=b>=c":  {"a", "<=", "b", ">=", "c"},
	}
	for src, want := range cases {
		if got := TokenTexts(mustLex(t, src)); !reflect.DeepEqual(got, want) {
			t.Errorf("Lex(%q) = %v, want %v", src, got, want)
		}
	}
}

func TestLexNumbers(t *testing.T) {
	cases := map[string]string{
		"0x1F":  "0x1F",
		"42":    "42",
		"3.5":   "3.5",
		"7u":    "7u",
		"0xffL": "0xffL",
	}
	for src, want := range cases {
		toks := mustLex(t, src)
		if len(toks) != 1 || toks[0].Kind != TokNumber || toks[0].Text != want {
			t.Errorf("Lex(%q) = %v, want single number %q", src, toks, want)
		}
	}
}

func TestLexStringAndChar(t *testing.T) {
	toks := mustLex(t, `Name == "RISCV" && c == 'x'`)
	if toks[2].Kind != TokString || toks[2].Text != `"RISCV"` {
		t.Errorf("string literal = %v", toks[2])
	}
	if toks[6].Kind != TokChar || toks[6].Text != `'x'` {
		t.Errorf("char literal = %v", toks[6])
	}
}

func TestLexStringEscapes(t *testing.T) {
	toks := mustLex(t, `"a\"b" 'b'`)
	if toks[0].Text != `"a\"b"` {
		t.Errorf("escaped string = %q", toks[0].Text)
	}
}

func TestLexSkipsComments(t *testing.T) {
	src := "a; // line comment\n/* block\ncomment */ b;"
	want := []string{"a", ";", "b", ";"}
	if got := TokenTexts(mustLex(t, src)); !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestLexKeepComments(t *testing.T) {
	l := NewLexerKeepComments("a; // note\nb;")
	var kinds []TokenKind
	for {
		tok, err := l.Next()
		if err != nil {
			t.Fatal(err)
		}
		if tok.Kind == TokEOF {
			break
		}
		kinds = append(kinds, tok.Kind)
	}
	want := []TokenKind{TokIdent, TokPunct, TokComment, TokIdent, TokPunct}
	if !reflect.DeepEqual(kinds, want) {
		t.Errorf("got %v, want %v", kinds, want)
	}
}

func TestLexSkipsPreprocessor(t *testing.T) {
	src := "#include \"x.h\"\nint a;"
	want := []string{"int", "a", ";"}
	if got := TokenTexts(mustLex(t, src)); !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestLexPositions(t *testing.T) {
	toks := mustLex(t, "a\n  b")
	if toks[0].Pos != (Pos{Line: 1, Col: 1}) {
		t.Errorf("a at %v", toks[0].Pos)
	}
	if toks[1].Pos != (Pos{Line: 2, Col: 3}) {
		t.Errorf("b at %v", toks[1].Pos)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{`"unterminated`, `'u`, "/* open", "`"} {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q): expected error", src)
		}
	}
}

// Property: lexing the joined token texts of any lexable identifier/number
// mix reproduces the same token stream (idempotence of lex∘join).
func TestLexRoundTripProperty(t *testing.T) {
	alphabet := []string{"foo", "Bar_9", "42", "0x1F", "+", "-", "==", "::", "(", ")", ";", `"s"`}
	f := func(picks []uint8) bool {
		var parts []string
		for _, p := range picks {
			parts = append(parts, alphabet[int(p)%len(alphabet)])
		}
		src := strings.Join(parts, " ")
		toks, err := Lex(src)
		if err != nil {
			return false
		}
		got := TokenTexts(toks)
		if len(got) != len(parts) {
			return false
		}
		for i := range got {
			if got[i] != parts[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// mustLex replaces the removed MustLex API: lexer errors now flow
// through Lex's error return instead of a panic.
func mustLex(t *testing.T, src string) []Token {
	t.Helper()
	toks, err := Lex(src)
	if err != nil {
		t.Fatalf("lex %q: %v", src, err)
	}
	return toks
}
