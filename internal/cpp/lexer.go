package cpp

import (
	"fmt"
	"strings"
)

// Lexer tokenizes C++-subset source text.
type Lexer struct {
	src          string
	off          int
	line, col    int
	keepComments bool
}

// NewLexer returns a lexer over src. Comments are skipped.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// NewLexerKeepComments returns a lexer that emits comment tokens.
func NewLexerKeepComments(src string) *Lexer {
	l := NewLexer(src)
	l.keepComments = true
	return l
}

// Lex tokenizes the whole input, returning the token stream without the
// trailing EOF token.
func Lex(src string) ([]Token, error) {
	l := NewLexer(src)
	var toks []Token
	for {
		t, err := l.Next()
		if err != nil {
			return toks, err
		}
		if t.Kind == TokEOF {
			return toks, nil
		}
		toks = append(toks, t)
	}
}

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peekAt(n int) byte {
	if l.off+n >= len(l.src) {
		return 0
	}
	return l.src[l.off+n]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) pos() Pos { return Pos{Line: l.line, Col: l.col} }

func (l *Lexer) errorf(format string, args ...any) error {
	return fmt.Errorf("cpp: %d:%d: %s", l.line, l.col, fmt.Sprintf(format, args...))
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentCont(c byte) bool { return isIdentStart(c) || isDigit(c) }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\r' || c == '\n' }

// Next returns the next token, or an EOF token at end of input.
func (l *Lexer) Next() (Token, error) {
	for {
		for l.off < len(l.src) && isSpace(l.peek()) {
			l.advance()
		}
		if l.off >= len(l.src) {
			return Token{Kind: TokEOF, Pos: l.pos()}, nil
		}
		// Preprocessor lines are skipped wholesale: backend function bodies
		// in the corpus do not rely on them, but source files may carry
		// includes and guards.
		if l.peek() == '#' && l.col == 1 {
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
			continue
		}
		if l.peek() == '/' && l.peekAt(1) == '/' {
			tok, keep := l.lexLineComment()
			if keep {
				return tok, nil
			}
			continue
		}
		if l.peek() == '/' && l.peekAt(1) == '*' {
			tok, keep, err := l.lexBlockComment()
			if err != nil {
				return Token{}, err
			}
			if keep {
				return tok, nil
			}
			continue
		}
		break
	}

	pos := l.pos()
	c := l.peek()
	switch {
	case isIdentStart(c):
		start := l.off
		for l.off < len(l.src) && isIdentCont(l.peek()) {
			l.advance()
		}
		text := Intern(l.src[start:l.off])
		kind := TokIdent
		if keywords[text] {
			kind = TokKeyword
		}
		return Token{Kind: kind, Text: text, Pos: pos}, nil
	case isDigit(c):
		return l.lexNumber(pos)
	case c == '"':
		return l.lexString(pos)
	case c == '\'':
		return l.lexChar(pos)
	default:
		return l.lexPunct(pos)
	}
}

func (l *Lexer) lexLineComment() (Token, bool) {
	pos := l.pos()
	start := l.off
	for l.off < len(l.src) && l.peek() != '\n' {
		l.advance()
	}
	if l.keepComments {
		return Token{Kind: TokComment, Text: l.src[start:l.off], Pos: pos}, true
	}
	return Token{}, false
}

func (l *Lexer) lexBlockComment() (Token, bool, error) {
	pos := l.pos()
	start := l.off
	l.advance() // '/'
	l.advance() // '*'
	for {
		if l.off >= len(l.src) {
			return Token{}, false, l.errorf("unterminated block comment")
		}
		if l.peek() == '*' && l.peekAt(1) == '/' {
			l.advance()
			l.advance()
			break
		}
		l.advance()
	}
	if l.keepComments {
		return Token{Kind: TokComment, Text: l.src[start:l.off], Pos: pos}, true, nil
	}
	return Token{}, false, nil
}

func (l *Lexer) lexNumber(pos Pos) (Token, error) {
	start := l.off
	if l.peek() == '0' && (l.peekAt(1) == 'x' || l.peekAt(1) == 'X') {
		l.advance()
		l.advance()
		for l.off < len(l.src) && isHexDigit(l.peek()) {
			l.advance()
		}
	} else if l.peek() == '0' && (l.peekAt(1) == 'b' || l.peekAt(1) == 'B') {
		l.advance()
		l.advance()
		for l.off < len(l.src) && (l.peek() == '0' || l.peek() == '1') {
			l.advance()
		}
	} else {
		for l.off < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
		if l.peek() == '.' && isDigit(l.peekAt(1)) {
			l.advance()
			for l.off < len(l.src) && isDigit(l.peek()) {
				l.advance()
			}
		}
	}
	// Integer suffixes (u, l, ull, ...).
	for l.off < len(l.src) && strings.ContainsRune("uUlLfF", rune(l.peek())) {
		l.advance()
	}
	return Token{Kind: TokNumber, Text: Intern(l.src[start:l.off]), Pos: pos}, nil
}

func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

func (l *Lexer) lexString(pos Pos) (Token, error) {
	start := l.off
	l.advance() // opening quote
	for {
		if l.off >= len(l.src) {
			return Token{}, l.errorf("unterminated string literal")
		}
		c := l.advance()
		if c == '\\' {
			if l.off >= len(l.src) {
				return Token{}, l.errorf("unterminated escape in string literal")
			}
			l.advance()
			continue
		}
		if c == '"' && l.off > start+1 {
			break
		}
	}
	return Token{Kind: TokString, Text: l.src[start:l.off], Pos: pos}, nil
}

func (l *Lexer) lexChar(pos Pos) (Token, error) {
	start := l.off
	l.advance() // opening quote
	for {
		if l.off >= len(l.src) {
			return Token{}, l.errorf("unterminated char literal")
		}
		c := l.advance()
		if c == '\\' {
			if l.off >= len(l.src) {
				return Token{}, l.errorf("unterminated escape in char literal")
			}
			l.advance()
			continue
		}
		if c == '\'' && l.off > start+1 {
			break
		}
	}
	return Token{Kind: TokChar, Text: l.src[start:l.off], Pos: pos}, nil
}

func (l *Lexer) lexPunct(pos Pos) (Token, error) {
	rest := l.src[l.off:]
	for _, p := range punct3 {
		if strings.HasPrefix(rest, p) {
			for range p {
				l.advance()
			}
			return Token{Kind: TokPunct, Text: p, Pos: pos}, nil
		}
	}
	for _, p := range punct2 {
		if strings.HasPrefix(rest, p) {
			for range p {
				l.advance()
			}
			return Token{Kind: TokPunct, Text: p, Pos: pos}, nil
		}
	}
	c := l.peek()
	if strings.ContainsRune("+-*/%<>=!&|^~?:;,.(){}[]", rune(c)) {
		l.advance()
		return Token{Kind: TokPunct, Text: Intern(l.src[l.off-1 : l.off]), Pos: pos}, nil
	}
	return Token{}, l.errorf("unexpected character %q", c)
}

// TokenTexts returns just the text of each token; the flat form used by
// feature selection and the model tokenizer.
func TokenTexts(toks []Token) []string {
	out := make([]string, len(toks))
	for i, t := range toks {
		out[i] = t.Text
	}
	return out
}
