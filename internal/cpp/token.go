// Package cpp implements a lexer, parser, printer and light semantic
// tooling for the C++ subset used by LLVM-style compiler backend code.
//
// The subset covers what appears inside backend interface functions:
// function definitions, declarations, if/else, switch/case, loops,
// return/break/continue, calls, member access, qualified names
// (Target::fixup_x), casts, and the usual expression operators. It is the
// substrate every later VEGA stage builds on: statement splitting for
// templatization, ASTs for GumTree alignment, printing for emitted code,
// normalization and inlining for pre-processing.
package cpp

import "fmt"

// TokenKind classifies lexical tokens.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokKeyword
	TokNumber
	TokString
	TokChar
	TokPunct
	TokComment // retained only when lexing with comments enabled
)

var tokenKindNames = map[TokenKind]string{
	TokEOF:     "EOF",
	TokIdent:   "Ident",
	TokKeyword: "Keyword",
	TokNumber:  "Number",
	TokString:  "String",
	TokChar:    "Char",
	TokPunct:   "Punct",
	TokComment: "Comment",
}

func (k TokenKind) String() string {
	if s, ok := tokenKindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("TokenKind(%d)", int(k))
}

// Pos is a source position (1-based line and column).
type Pos struct {
	Line int
	Col  int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical token.
type Token struct {
	Kind TokenKind
	Text string
	Pos  Pos
}

func (t Token) String() string {
	return fmt.Sprintf("%s(%q)@%s", t.Kind, t.Text, t.Pos)
}

// Is reports whether the token has the given kind and text.
func (t Token) Is(kind TokenKind, text string) bool {
	return t.Kind == kind && t.Text == text
}

// IsPunct reports whether the token is the given punctuation.
func (t Token) IsPunct(text string) bool { return t.Is(TokPunct, text) }

// IsKeyword reports whether the token is the given keyword.
func (t Token) IsKeyword(text string) bool { return t.Is(TokKeyword, text) }

var keywords = map[string]bool{
	"auto": true, "bool": true, "break": true, "case": true, "char": true,
	"const": true, "continue": true, "default": true, "do": true,
	"double": true, "else": true, "enum": true, "false": true, "float": true,
	"for": true, "goto": true, "if": true, "int": true, "long": true,
	"namespace": true, "new": true, "nullptr": true, "return": true,
	"short": true, "signed": true, "sizeof": true, "static": true,
	"struct": true, "switch": true, "true": true, "typedef": true,
	"unsigned": true, "void": true, "while": true, "class": true,
	"public": true, "private": true, "protected": true, "virtual": true,
	"override": true, "template": true, "typename": true, "using": true,
	"static_cast": true, "const_cast": true, "reinterpret_cast": true,
	"dynamic_cast": true, "delete": true, "this": true, "llvm_unreachable": false,
}

// IsKeywordText reports whether s is a reserved word of the subset.
func IsKeywordText(s string) bool { return keywords[s] }

// multi-character punctuation, longest first within each leading byte.
var punct3 = []string{"<<=", ">>=", "...", "->*"}
var punct2 = []string{
	"::", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
	"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
}
