package cpp

import (
	"fmt"
	"hash/fnv"
	"strings"
)

// NodeKind classifies AST nodes. The AST is deliberately generic — a kind, a
// value, and children — so tree algorithms (GumTree matching, LCS,
// templatization) can treat all nodes uniformly.
type NodeKind int

// Node kinds.
const (
	KindFile NodeKind = iota
	KindFunction
	KindParamList
	KindParam
	KindBlock
	KindDecl      // declaration statement: type + declarators
	KindExprStmt  // expression statement
	KindIf        // children: cond, then, [else]
	KindSwitch    // children: cond, body
	KindCase      // children: label expr, then statements
	KindDefault   // children: statements
	KindFor       // children: init, cond, post, body
	KindWhile     // children: cond, body
	KindDoWhile   // children: body, cond
	KindReturn    // children: [expr]
	KindBreak     //
	KindContinue  //
	KindBinary    // value: operator; children: lhs, rhs
	KindUnary     // value: operator; children: operand
	KindPostfix   // value: operator (++/--); children: operand
	KindAssign    // value: operator (=, +=, ...); children: lhs, rhs
	KindTernary   // children: cond, then, else
	KindCall      // children: callee, args...
	KindMember    // value: "." or "->"; children: base, name
	KindIndex     // children: base, index
	KindQualified // value: joined "A::B::c"; children: ident leaves
	KindIdent     // value: name
	KindNumber    // value: literal text
	KindString    // value: literal text with quotes
	KindChar      // value: literal text with quotes
	KindCast      // value: cast keyword or "" for C cast; children: type, expr
	KindType      // value: canonical type text
	KindInit      // brace initializer; children: elements
	KindEmpty     // empty statement ";"
)

var nodeKindNames = map[NodeKind]string{
	KindFile: "File", KindFunction: "Function", KindParamList: "ParamList",
	KindParam: "Param", KindBlock: "Block", KindDecl: "Decl",
	KindExprStmt: "ExprStmt", KindIf: "If", KindSwitch: "Switch",
	KindCase: "Case", KindDefault: "Default", KindFor: "For",
	KindWhile: "While", KindDoWhile: "DoWhile", KindReturn: "Return",
	KindBreak: "Break", KindContinue: "Continue", KindBinary: "Binary",
	KindUnary: "Unary", KindPostfix: "Postfix", KindAssign: "Assign",
	KindTernary: "Ternary", KindCall: "Call", KindMember: "Member",
	KindIndex: "Index", KindQualified: "Qualified", KindIdent: "Ident",
	KindNumber: "Number", KindString: "String", KindChar: "Char",
	KindCast: "Cast", KindType: "Type", KindInit: "Init", KindEmpty: "Empty",
}

func (k NodeKind) String() string {
	if s, ok := nodeKindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("NodeKind(%d)", int(k))
}

// Node is a generic AST node.
type Node struct {
	Kind     NodeKind
	Value    string
	Children []*Node
	Pos      Pos
}

// NewNode constructs a node.
func NewNode(kind NodeKind, value string, children ...*Node) *Node {
	return &Node{Kind: kind, Value: value, Children: children}
}

// Clone deep-copies the subtree.
func (n *Node) Clone() *Node {
	if n == nil {
		return nil
	}
	c := &Node{Kind: n.Kind, Value: n.Value, Pos: n.Pos}
	if len(n.Children) > 0 {
		c.Children = make([]*Node, len(n.Children))
		for i, ch := range n.Children {
			c.Children[i] = ch.Clone()
		}
	}
	return c
}

// Size returns the number of nodes in the subtree.
func (n *Node) Size() int {
	if n == nil {
		return 0
	}
	s := 1
	for _, c := range n.Children {
		s += c.Size()
	}
	return s
}

// Height returns the height of the subtree (leaf = 1).
func (n *Node) Height() int {
	if n == nil {
		return 0
	}
	h := 0
	for _, c := range n.Children {
		if ch := c.Height(); ch > h {
			h = ch
		}
	}
	return h + 1
}

// IsLeaf reports whether the node has no children.
func (n *Node) IsLeaf() bool { return len(n.Children) == 0 }

// Label is the matching label used by tree differencing: kind plus value.
func (n *Node) Label() string { return n.Kind.String() + ":" + n.Value }

// Equal reports deep structural equality.
func (n *Node) Equal(m *Node) bool {
	if n == nil || m == nil {
		return n == m
	}
	if n.Kind != m.Kind || n.Value != m.Value || len(n.Children) != len(m.Children) {
		return false
	}
	for i := range n.Children {
		if !n.Children[i].Equal(m.Children[i]) {
			return false
		}
	}
	return true
}

// Hash returns a structural hash of the subtree (ignores positions).
func (n *Node) Hash() uint64 {
	h := fnv.New64a()
	n.hashInto(h)
	return h.Sum64()
}

func (n *Node) hashInto(h interface{ Write([]byte) (int, error) }) {
	if n == nil {
		h.Write([]byte{0})
		return
	}
	fmt.Fprintf(h.(interface{ Write([]byte) (int, error) }), "(%d:%s", n.Kind, n.Value)
	for _, c := range n.Children {
		c.hashInto(h)
	}
	h.Write([]byte(")"))
}

// Walk visits the subtree pre-order; if fn returns false the node's
// children are skipped.
func (n *Node) Walk(fn func(*Node) bool) {
	if n == nil {
		return
	}
	if !fn(n) {
		return
	}
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// PostOrder appends the subtree's nodes in post-order to dst and returns it.
func (n *Node) PostOrder(dst []*Node) []*Node {
	if n == nil {
		return dst
	}
	for _, c := range n.Children {
		dst = c.PostOrder(dst)
	}
	return append(dst, n)
}

// Leaves returns the leaf nodes of the subtree, left to right.
func (n *Node) Leaves() []*Node {
	var out []*Node
	n.Walk(func(m *Node) bool {
		if m.IsLeaf() {
			out = append(out, m)
		}
		return true
	})
	return out
}

// Idents returns the identifier leaf values in the subtree, in order,
// including the components of qualified names.
func (n *Node) Idents() []string {
	var out []string
	n.Walk(func(m *Node) bool {
		switch m.Kind {
		case KindIdent:
			out = append(out, m.Value)
		case KindQualified:
			out = append(out, strings.Split(m.Value, "::")...)
			return false
		}
		return true
	})
	return out
}

// String renders a compact s-expression form, useful in tests and debugging.
func (n *Node) String() string {
	var b strings.Builder
	n.sexpr(&b)
	return b.String()
}

func (n *Node) sexpr(b *strings.Builder) {
	if n == nil {
		b.WriteString("nil")
		return
	}
	if n.IsLeaf() {
		if n.Value != "" {
			fmt.Fprintf(b, "%s(%s)", n.Kind, n.Value)
		} else {
			b.WriteString(n.Kind.String())
		}
		return
	}
	b.WriteString("(")
	b.WriteString(n.Kind.String())
	if n.Value != "" {
		fmt.Fprintf(b, "[%s]", n.Value)
	}
	for _, c := range n.Children {
		b.WriteString(" ")
		c.sexpr(b)
	}
	b.WriteString(")")
}

// FunctionName returns the declared name of a KindFunction node
// ("getRelocType" from "unsigned X::getRelocType(...)"), or "".
func (n *Node) FunctionName() string {
	if n == nil || n.Kind != KindFunction {
		return ""
	}
	// Value holds the qualified declarator; the interface name is the last
	// :: component.
	parts := strings.Split(n.Value, "::")
	return parts[len(parts)-1]
}
