package cpp

import (
	"strings"
	"testing"
)

func TestInlineReturnCall(t *testing.T) {
	outer := mustParseFunction(t, `unsigned W::getRelocType(unsigned Kind, bool IsPCRel) {
  return GetRelocTypeInner(Kind, IsPCRel);
}`)
	inner := mustParseFunction(t, `unsigned GetRelocTypeInner(unsigned Kind, bool IsPCRel) {
  if (IsPCRel) {
    return 1;
  }
  return 2;
}`)
	in := NewInliner([]*Node{inner})
	got := Print(in.Inline(outer))
	if strings.Contains(got, "GetRelocTypeInner") {
		t.Errorf("call not inlined:\n%s", got)
	}
	if !strings.Contains(got, "if (IsPCRel)") {
		t.Errorf("body not spliced:\n%s", got)
	}
}

func TestInlineSubstitutesArguments(t *testing.T) {
	outer := mustParseFunction(t, `int f(int x) {
  return helper(x + 1);
}`)
	helper := mustParseFunction(t, `int helper(int v) {
  return v * 2;
}`)
	in := NewInliner([]*Node{helper})
	got := Print(in.Inline(outer))
	if !strings.Contains(got, "return (x + 1) * 2;") {
		t.Errorf("argument substitution failed:\n%s", got)
	}
}

func TestInlineVoidCall(t *testing.T) {
	outer := mustParseFunction(t, `void f(int x) {
  emit(x);
  done();
}`)
	helper := mustParseFunction(t, `void emit(int v) {
  OS.write(v);
  count = count + 1;
}`)
	in := NewInliner([]*Node{helper})
	got := Print(in.Inline(outer))
	if strings.Contains(got, "emit(") {
		t.Errorf("void call not inlined:\n%s", got)
	}
	if !strings.Contains(got, "OS.write(x);") {
		t.Errorf("body not substituted:\n%s", got)
	}
	if !strings.Contains(got, "done();") {
		t.Errorf("unknown call should remain:\n%s", got)
	}
}

func TestInlineRefusesRecursion(t *testing.T) {
	rec := mustParseFunction(t, `int fact(int n) {
  if (n <= 1) {
    return 1;
  }
  return fact(n - 1);
}`)
	in := NewInliner([]*Node{rec})
	got := Print(in.Inline(rec))
	if !strings.Contains(got, "fact(n - 1)") {
		t.Errorf("recursive call must be preserved:\n%s", got)
	}
}

func TestInlineTransitive(t *testing.T) {
	a := mustParseFunction(t, `int a(int x) { return b(x); }`)
	b := mustParseFunction(t, `int b(int x) { return c(x) + 1; }`)
	c := mustParseFunction(t, `int c(int x) { return x * 3; }`)
	in := NewInliner([]*Node{b, c})
	got := Print(in.Inline(a))
	// b is inlined; c appears in a non-statement position inside b's body
	// so it is kept as a call — calls are only expanded at statement level.
	if strings.Contains(got, "b(") {
		t.Errorf("b not inlined:\n%s", got)
	}
	if !strings.Contains(got, "c(x) + 1") {
		t.Errorf("expected inlined b body:\n%s", got)
	}
}

func TestInlineKeepsUnknownCalls(t *testing.T) {
	outer := mustParseFunction(t, `int f() { return TargetSpecificThing(); }`)
	in := NewInliner(nil)
	got := Print(in.Inline(outer))
	if !strings.Contains(got, "TargetSpecificThing()") {
		t.Errorf("unknown (target-specific) call removed:\n%s", got)
	}
}

func TestInlineInsideNestedBlocks(t *testing.T) {
	outer := mustParseFunction(t, `int f(int x) {
  if (x > 0) {
    log(x);
  }
  return x;
}`)
	helper := mustParseFunction(t, `void log(int v) {
  sink = v;
}`)
	in := NewInliner([]*Node{helper})
	got := Print(in.Inline(outer))
	if strings.Contains(got, "log(") {
		t.Errorf("nested call not inlined:\n%s", got)
	}
	if !strings.Contains(got, "sink = x;") {
		t.Errorf("substitution in nested block failed:\n%s", got)
	}
}

func TestInlineArityMismatchKept(t *testing.T) {
	outer := mustParseFunction(t, `int f() { return h(1, 2); }`)
	helper := mustParseFunction(t, `int h(int a) { return a; }`)
	in := NewInliner([]*Node{helper})
	got := Print(in.Inline(outer))
	if !strings.Contains(got, "h(1, 2)") {
		t.Errorf("arity-mismatched call should be kept:\n%s", got)
	}
}
