package cpp

import (
	"fmt"
	"strings"
)

// Parser builds ASTs from token streams. It is a recursive-descent parser
// with single-point backtracking for the declaration/expression ambiguity.
type Parser struct {
	toks []Token
	pos  int
}

// NewParser returns a parser over toks.
func NewParser(toks []Token) *Parser { return &Parser{toks: toks} }

// ParseFile parses src as a sequence of function definitions.
func ParseFile(src string) (*Node, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := NewParser(toks)
	file := NewNode(KindFile, "")
	for !p.atEOF() {
		fn, err := p.parseFunction()
		if err != nil {
			return nil, err
		}
		file.Children = append(file.Children, fn)
	}
	return file, nil
}

// ParseFunction parses a single function definition.
func ParseFunction(src string) (*Node, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := NewParser(toks)
	fn, err := p.parseFunction()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, p.errorf("trailing tokens after function definition")
	}
	return fn, nil
}

// ParseStatement parses a single statement (used heavily in tests and by
// the interpreter's harness code).
func ParseStatement(src string) (*Node, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := NewParser(toks)
	st, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, p.errorf("trailing tokens after statement")
	}
	return st, nil
}

// ParseExpr parses a single expression.
func ParseExpr(src string) (*Node, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := NewParser(toks)
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, p.errorf("trailing tokens after expression")
	}
	return e, nil
}

func (p *Parser) atEOF() bool { return p.pos >= len(p.toks) }

func (p *Parser) cur() Token {
	if p.atEOF() {
		return Token{Kind: TokEOF}
	}
	return p.toks[p.pos]
}

func (p *Parser) peekN(n int) Token {
	if p.pos+n >= len(p.toks) {
		return Token{Kind: TokEOF}
	}
	return p.toks[p.pos+n]
}

func (p *Parser) next() Token {
	t := p.cur()
	if !p.atEOF() {
		p.pos++
	}
	return t
}

func (p *Parser) accept(kind TokenKind, text string) bool {
	if p.cur().Is(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expect(kind TokenKind, text string) error {
	if !p.accept(kind, text) {
		return p.errorf("expected %q, found %q", text, p.cur().Text)
	}
	return nil
}

func (p *Parser) errorf(format string, args ...any) error {
	pos := Pos{}
	if !p.atEOF() {
		pos = p.cur().Pos
	} else if len(p.toks) > 0 {
		pos = p.toks[len(p.toks)-1].Pos
	}
	return fmt.Errorf("cpp: %s: %s", pos, fmt.Sprintf(format, args...))
}

// --- functions ---

// parseFunction parses "retType Qualified::name(params) [const] { body }".
func (p *Parser) parseFunction() (*Node, error) {
	start := p.cur().Pos
	// Optional leading "static".
	static := p.accept(TokKeyword, "static")
	retType, err := p.parseType()
	if err != nil {
		return nil, err
	}
	name, err := p.parseQualifiedName()
	if err != nil {
		return nil, err
	}
	params, err := p.parseParamList()
	if err != nil {
		return nil, err
	}
	p.accept(TokKeyword, "const")
	p.accept(TokKeyword, "override")
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fn := NewNode(KindFunction, name, retType, params, body)
	fn.Pos = start
	if static {
		fn.Value = name // staticness is not semantically relevant to VEGA
	}
	return fn, nil
}

func (p *Parser) parseQualifiedName() (string, error) {
	if p.cur().Kind != TokIdent {
		return "", p.errorf("expected identifier, found %q", p.cur().Text)
	}
	name := p.next().Text
	for p.cur().IsPunct("::") {
		p.pos++
		if p.cur().Kind != TokIdent {
			return "", p.errorf("expected identifier after ::, found %q", p.cur().Text)
		}
		name += "::" + p.next().Text
	}
	return name, nil
}

func (p *Parser) parseParamList() (*Node, error) {
	if err := p.expect(TokPunct, "("); err != nil {
		return nil, err
	}
	list := NewNode(KindParamList, "")
	for !p.cur().IsPunct(")") {
		if p.atEOF() {
			return nil, p.errorf("unterminated parameter list")
		}
		ty, err := p.parseType()
		if err != nil {
			return nil, err
		}
		name := ""
		if p.cur().Kind == TokIdent {
			name = p.next().Text
		}
		list.Children = append(list.Children, NewNode(KindParam, name, ty))
		if !p.accept(TokPunct, ",") {
			break
		}
	}
	if err := p.expect(TokPunct, ")"); err != nil {
		return nil, err
	}
	return list, nil
}

// --- statements ---

func (p *Parser) parseBlock() (*Node, error) {
	start := p.cur().Pos
	if err := p.expect(TokPunct, "{"); err != nil {
		return nil, err
	}
	blk := NewNode(KindBlock, "")
	blk.Pos = start
	for !p.cur().IsPunct("}") {
		if p.atEOF() {
			return nil, p.errorf("unterminated block")
		}
		st, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		blk.Children = append(blk.Children, st)
	}
	p.pos++ // consume '}'
	return blk, nil
}

func (p *Parser) parseStatement() (*Node, error) {
	start := p.cur().Pos
	t := p.cur()
	var st *Node
	var err error
	switch {
	case t.IsPunct("{"):
		st, err = p.parseBlock()
	case t.IsPunct(";"):
		p.pos++
		st = NewNode(KindEmpty, "")
	case t.IsKeyword("if"):
		st, err = p.parseIf()
	case t.IsKeyword("switch"):
		st, err = p.parseSwitch()
	case t.IsKeyword("for"):
		st, err = p.parseFor()
	case t.IsKeyword("while"):
		st, err = p.parseWhile()
	case t.IsKeyword("do"):
		st, err = p.parseDoWhile()
	case t.IsKeyword("return"):
		p.pos++
		ret := NewNode(KindReturn, "")
		if !p.cur().IsPunct(";") {
			e, err2 := p.parseExpr()
			if err2 != nil {
				return nil, err2
			}
			ret.Children = append(ret.Children, e)
		}
		if err2 := p.expect(TokPunct, ";"); err2 != nil {
			return nil, err2
		}
		st = ret
	case t.IsKeyword("break"):
		p.pos++
		if err2 := p.expect(TokPunct, ";"); err2 != nil {
			return nil, err2
		}
		st = NewNode(KindBreak, "")
	case t.IsKeyword("continue"):
		p.pos++
		if err2 := p.expect(TokPunct, ";"); err2 != nil {
			return nil, err2
		}
		st = NewNode(KindContinue, "")
	default:
		st, err = p.parseDeclOrExprStmt()
	}
	if err != nil {
		return nil, err
	}
	st.Pos = start
	return st, nil
}

func (p *Parser) parseIf() (*Node, error) {
	p.pos++ // if
	if err := p.expect(TokPunct, "("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(TokPunct, ")"); err != nil {
		return nil, err
	}
	then, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	node := NewNode(KindIf, "", cond, then)
	if p.accept(TokKeyword, "else") {
		els, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		node.Children = append(node.Children, els)
	}
	return node, nil
}

func (p *Parser) parseSwitch() (*Node, error) {
	p.pos++ // switch
	if err := p.expect(TokPunct, "("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(TokPunct, ")"); err != nil {
		return nil, err
	}
	if err := p.expect(TokPunct, "{"); err != nil {
		return nil, err
	}
	body := NewNode(KindBlock, "")
	for !p.cur().IsPunct("}") {
		if p.atEOF() {
			return nil, p.errorf("unterminated switch body")
		}
		switch {
		case p.cur().IsKeyword("case"):
			cs, err := p.parseCase()
			if err != nil {
				return nil, err
			}
			body.Children = append(body.Children, cs)
		case p.cur().IsKeyword("default"):
			p.pos++
			if err := p.expect(TokPunct, ":"); err != nil {
				return nil, err
			}
			def := NewNode(KindDefault, "")
			if err := p.parseCaseBody(def); err != nil {
				return nil, err
			}
			body.Children = append(body.Children, def)
		default:
			return nil, p.errorf("expected case or default in switch, found %q", p.cur().Text)
		}
	}
	p.pos++ // '}'
	return NewNode(KindSwitch, "", cond, body), nil
}

func (p *Parser) parseCase() (*Node, error) {
	p.pos++ // case
	label, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(TokPunct, ":"); err != nil {
		return nil, err
	}
	cs := NewNode(KindCase, "", label)
	if err := p.parseCaseBody(cs); err != nil {
		return nil, err
	}
	return cs, nil
}

// parseCaseBody appends statements to node until the next case/default or
// the closing brace of the switch.
func (p *Parser) parseCaseBody(node *Node) error {
	for {
		t := p.cur()
		if t.IsPunct("}") || t.IsKeyword("case") || t.IsKeyword("default") || p.atEOF() {
			return nil
		}
		st, err := p.parseStatement()
		if err != nil {
			return err
		}
		node.Children = append(node.Children, st)
	}
}

func (p *Parser) parseFor() (*Node, error) {
	p.pos++ // for
	if err := p.expect(TokPunct, "("); err != nil {
		return nil, err
	}
	var init *Node
	if p.cur().IsPunct(";") {
		init = NewNode(KindEmpty, "")
		p.pos++
	} else {
		var err error
		init, err = p.parseDeclOrExprStmt()
		if err != nil {
			return nil, err
		}
	}
	var cond *Node
	if p.cur().IsPunct(";") {
		cond = NewNode(KindEmpty, "")
	} else {
		var err error
		cond, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	if err := p.expect(TokPunct, ";"); err != nil {
		return nil, err
	}
	var post *Node
	if p.cur().IsPunct(")") {
		post = NewNode(KindEmpty, "")
	} else {
		var err error
		post, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	if err := p.expect(TokPunct, ")"); err != nil {
		return nil, err
	}
	body, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	return NewNode(KindFor, "", init, cond, post, body), nil
}

func (p *Parser) parseWhile() (*Node, error) {
	p.pos++ // while
	if err := p.expect(TokPunct, "("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(TokPunct, ")"); err != nil {
		return nil, err
	}
	body, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	return NewNode(KindWhile, "", cond, body), nil
}

func (p *Parser) parseDoWhile() (*Node, error) {
	p.pos++ // do
	body, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	if err := p.expect(TokKeyword, "while"); err != nil {
		return nil, err
	}
	if err := p.expect(TokPunct, "("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(TokPunct, ")"); err != nil {
		return nil, err
	}
	if err := p.expect(TokPunct, ";"); err != nil {
		return nil, err
	}
	return NewNode(KindDoWhile, "", body, cond), nil
}

// parseDeclOrExprStmt disambiguates declarations from expression statements
// by attempting a declaration parse and backtracking on failure.
func (p *Parser) parseDeclOrExprStmt() (*Node, error) {
	save := p.pos
	if decl, ok := p.tryParseDecl(); ok {
		return decl, nil
	}
	p.pos = save
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(TokPunct, ";"); err != nil {
		return nil, err
	}
	return NewNode(KindExprStmt, "", e), nil
}

// tryParseDecl attempts "type declarator [= init] [, declarator...] ;".
func (p *Parser) tryParseDecl() (*Node, bool) {
	ty, err := p.parseType()
	if err != nil {
		return nil, false
	}
	// Declarator must be a plain identifier here; the type already consumed
	// any pointer/reference sigils.
	if p.cur().Kind != TokIdent {
		return nil, false
	}
	// Lookahead: after the identifier we must see '=', ';', ',' or '(' to
	// call it a declaration.
	after := p.peekN(1)
	if !(after.IsPunct("=") || after.IsPunct(";") || after.IsPunct(",") || after.IsPunct("(")) {
		return nil, false
	}
	decl := NewNode(KindDecl, "", ty)
	for {
		if p.cur().Kind != TokIdent {
			return nil, false
		}
		name := NewNode(KindIdent, p.next().Text)
		switch {
		case p.accept(TokPunct, "="):
			init, err := p.parseAssignExpr()
			if err != nil {
				return nil, false
			}
			decl.Children = append(decl.Children, NewNode(KindAssign, "=", name, init))
		case p.cur().IsPunct("("):
			// Constructor-style initialization: T x(a, b);
			p.pos++
			call := NewNode(KindCall, "", name.Clone())
			for !p.cur().IsPunct(")") {
				arg, err := p.parseAssignExpr()
				if err != nil {
					return nil, false
				}
				call.Children = append(call.Children, arg)
				if !p.accept(TokPunct, ",") {
					break
				}
			}
			if !p.accept(TokPunct, ")") {
				return nil, false
			}
			decl.Children = append(decl.Children, NewNode(KindAssign, "()", name, call))
		default:
			decl.Children = append(decl.Children, name)
		}
		if p.accept(TokPunct, ",") {
			continue
		}
		break
	}
	if !p.accept(TokPunct, ";") {
		return nil, false
	}
	return decl, true
}

var typeKeywords = map[string]bool{
	"void": true, "bool": true, "char": true, "short": true, "int": true,
	"long": true, "float": true, "double": true, "signed": true,
	"unsigned": true, "auto": true,
}

// parseType parses "[const|static]* base [<args>] [*&]* [const]" and
// returns a KindType node whose Value is the canonical rendering.
func (p *Parser) parseType() (*Node, error) {
	var parts []string
	for p.cur().IsKeyword("const") || p.cur().IsKeyword("static") {
		parts = append(parts, p.next().Text)
	}
	t := p.cur()
	switch {
	case t.Kind == TokKeyword && typeKeywords[t.Text]:
		parts = append(parts, p.next().Text)
		// Multi-word fundamental types: unsigned int, long long, ...
		for p.cur().Kind == TokKeyword && typeKeywords[p.cur().Text] {
			parts = append(parts, p.next().Text)
		}
	case t.Kind == TokIdent:
		name, err := p.parseQualifiedName()
		if err != nil {
			return nil, err
		}
		// Template arguments, e.g. SmallVector<int, 4>.
		if p.cur().IsPunct("<") && p.looksLikeTemplateArgs() {
			args, err := p.parseTemplateArgs()
			if err != nil {
				return nil, err
			}
			name += args
		}
		parts = append(parts, name)
	default:
		return nil, p.errorf("expected type, found %q", t.Text)
	}
	for {
		c := p.cur()
		if c.IsPunct("*") || c.IsPunct("&") {
			parts = append(parts, p.next().Text)
			continue
		}
		if c.IsKeyword("const") {
			parts = append(parts, p.next().Text)
			continue
		}
		break
	}
	return NewNode(KindType, canonicalType(parts)), nil
}

// looksLikeTemplateArgs distinguishes "Foo<int>" from "Kind < 4".
// Heuristic: scan ahead for a matching '>' before any ';', '{', '}', '&&',
// '||' or assignment; require the contents to start with a plausible type.
func (p *Parser) looksLikeTemplateArgs() bool {
	inner := p.peekN(1)
	if !(inner.Kind == TokIdent || (inner.Kind == TokKeyword && typeKeywords[inner.Text]) || inner.Kind == TokNumber) {
		return false
	}
	depth := 0
	for i := 0; p.pos+i < len(p.toks) && i < 32; i++ {
		t := p.peekN(i)
		switch {
		case t.IsPunct("<"):
			depth++
		case t.IsPunct(">"):
			depth--
			if depth == 0 {
				return true
			}
		case t.IsPunct(";"), t.IsPunct("{"), t.IsPunct("}"),
			t.IsPunct("&&"), t.IsPunct("||"), t.IsPunct("="):
			return false
		}
	}
	return false
}

func (p *Parser) parseTemplateArgs() (string, error) {
	if err := p.expect(TokPunct, "<"); err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("<")
	depth := 1
	for depth > 0 {
		if p.atEOF() {
			return "", p.errorf("unterminated template argument list")
		}
		t := p.next()
		switch {
		case t.IsPunct("<"):
			depth++
		case t.IsPunct(">"):
			depth--
			if depth == 0 {
				b.WriteString(">")
				return b.String(), nil
			}
		}
		if b.Len() > 1 && t.Kind != TokPunct {
			prev := b.String()
			if !strings.HasSuffix(prev, "<") && !strings.HasSuffix(prev, " ") {
				b.WriteString(" ")
			}
		}
		b.WriteString(t.Text)
	}
	return b.String(), nil
}

// canonicalType joins type parts: words separated by spaces, sigils
// attached ("const MCExpr *" -> "const MCExpr *").
func canonicalType(parts []string) string {
	var b strings.Builder
	for i, p := range parts {
		if i > 0 {
			b.WriteString(" ")
		}
		b.WriteString(p)
	}
	return b.String()
}

// --- expressions (precedence climbing) ---

var binaryPrec = map[string]int{
	"||": 1, "&&": 2, "|": 3, "^": 4, "&": 5,
	"==": 6, "!=": 6,
	"<": 7, ">": 7, "<=": 7, ">=": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

var assignOps = map[string]bool{
	"=": true, "+=": true, "-=": true, "*=": true, "/=": true, "%=": true,
	"&=": true, "|=": true, "^=": true, "<<=": true, ">>=": true,
}

func (p *Parser) parseExpr() (*Node, error) { return p.parseAssignExpr() }

func (p *Parser) parseAssignExpr() (*Node, error) {
	lhs, err := p.parseTernary()
	if err != nil {
		return nil, err
	}
	if t := p.cur(); t.Kind == TokPunct && assignOps[t.Text] {
		op := p.next().Text
		rhs, err := p.parseAssignExpr()
		if err != nil {
			return nil, err
		}
		return NewNode(KindAssign, op, lhs, rhs), nil
	}
	return lhs, nil
}

func (p *Parser) parseTernary() (*Node, error) {
	cond, err := p.parseBinary(1)
	if err != nil {
		return nil, err
	}
	if p.accept(TokPunct, "?") {
		then, err := p.parseAssignExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(TokPunct, ":"); err != nil {
			return nil, err
		}
		els, err := p.parseAssignExpr()
		if err != nil {
			return nil, err
		}
		return NewNode(KindTernary, "", cond, then, els), nil
	}
	return cond, nil
}

func (p *Parser) parseBinary(minPrec int) (*Node, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.Kind != TokPunct {
			return lhs, nil
		}
		prec, ok := binaryPrec[t.Text]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		op := p.next().Text
		rhs, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = NewNode(KindBinary, op, lhs, rhs)
	}
}

func (p *Parser) parseUnary() (*Node, error) {
	t := p.cur()
	if t.Kind == TokPunct {
		switch t.Text {
		case "!", "~", "-", "+", "*", "&", "++", "--":
			op := p.next().Text
			operand, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return NewNode(KindUnary, op, operand), nil
		}
	}
	if t.IsKeyword("sizeof") {
		p.pos++
		if err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		inner, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		return NewNode(KindUnary, "sizeof", inner), nil
	}
	return p.parsePostfix()
}

func (p *Parser) parsePostfix() (*Node, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		switch {
		case t.IsPunct("("):
			p.pos++
			call := NewNode(KindCall, "", e)
			for !p.cur().IsPunct(")") {
				if p.atEOF() {
					return nil, p.errorf("unterminated argument list")
				}
				arg, err := p.parseAssignExpr()
				if err != nil {
					return nil, err
				}
				call.Children = append(call.Children, arg)
				if !p.accept(TokPunct, ",") {
					break
				}
			}
			if err := p.expect(TokPunct, ")"); err != nil {
				return nil, err
			}
			e = call
		case t.IsPunct("["):
			p.pos++
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect(TokPunct, "]"); err != nil {
				return nil, err
			}
			e = NewNode(KindIndex, "", e, idx)
		case t.IsPunct(".") || t.IsPunct("->"):
			op := p.next().Text
			if p.cur().Kind != TokIdent {
				return nil, p.errorf("expected member name after %q", op)
			}
			name := NewNode(KindIdent, p.next().Text)
			e = NewNode(KindMember, op, e, name)
		case t.IsPunct("++") || t.IsPunct("--"):
			op := p.next().Text
			e = NewNode(KindPostfix, op, e)
		default:
			return e, nil
		}
	}
}

var castKeywords = map[string]bool{
	"static_cast": true, "const_cast": true,
	"reinterpret_cast": true, "dynamic_cast": true,
}

func (p *Parser) parsePrimary() (*Node, error) {
	t := p.cur()
	switch {
	case t.Kind == TokNumber:
		p.pos++
		return NewNode(KindNumber, t.Text), nil
	case t.Kind == TokString:
		p.pos++
		return NewNode(KindString, t.Text), nil
	case t.Kind == TokChar:
		p.pos++
		return NewNode(KindChar, t.Text), nil
	case t.IsKeyword("true") || t.IsKeyword("false") || t.IsKeyword("nullptr") || t.IsKeyword("this"):
		p.pos++
		return NewNode(KindIdent, t.Text), nil
	case t.Kind == TokKeyword && castKeywords[t.Text]:
		kw := p.next().Text
		if err := p.expect(TokPunct, "<"); err != nil {
			return nil, err
		}
		ty, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if err := p.expect(TokPunct, ">"); err != nil {
			return nil, err
		}
		if err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		inner, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		return NewNode(KindCast, kw, ty, inner), nil
	case t.Kind == TokKeyword && typeKeywords[t.Text]:
		// Functional cast: unsigned(x), int(y).
		kw := p.next().Text
		if err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		inner, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		return NewNode(KindCast, "", NewNode(KindType, kw), inner), nil
	case t.IsPunct("("):
		// C-style cast "(unsigned)x" is recognized only for fundamental
		// keyword types to avoid ambiguity with parenthesized expressions.
		if inner := p.peekN(1); inner.Kind == TokKeyword && typeKeywords[inner.Text] {
			save := p.pos
			p.pos++
			ty, err := p.parseType()
			if err == nil && p.accept(TokPunct, ")") {
				operand, err2 := p.parseUnary()
				if err2 == nil {
					return NewNode(KindCast, "", ty, operand), nil
				}
			}
			p.pos = save
		}
		p.pos++
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.Kind == TokIdent:
		name, err := p.parseQualifiedName()
		if err != nil {
			return nil, err
		}
		if strings.Contains(name, "::") {
			q := NewNode(KindQualified, name)
			for _, part := range strings.Split(name, "::") {
				q.Children = append(q.Children, NewNode(KindIdent, part))
			}
			// Qualified leaves keep children for Idents() but count as one
			// unit for matching; collapse children into the label only.
			q.Children = nil
			return q, nil
		}
		return NewNode(KindIdent, name), nil
	case t.IsPunct("{"):
		// Brace initializer list.
		p.pos++
		init := NewNode(KindInit, "")
		for !p.cur().IsPunct("}") {
			if p.atEOF() {
				return nil, p.errorf("unterminated initializer list")
			}
			e, err := p.parseAssignExpr()
			if err != nil {
				return nil, err
			}
			init.Children = append(init.Children, e)
			if !p.accept(TokPunct, ",") {
				break
			}
		}
		if err := p.expect(TokPunct, "}"); err != nil {
			return nil, err
		}
		return init, nil
	default:
		return nil, p.errorf("unexpected token %q in expression", t.Text)
	}
}
