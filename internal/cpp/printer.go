package cpp

import (
	"fmt"
	"strings"
)

// Print renders an AST back to source text with standard LLVM-ish
// formatting: two-space indentation, one statement per line.
func Print(n *Node) string {
	var b strings.Builder
	printNode(&b, n, 0)
	return b.String()
}

func indent(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
}

func printNode(b *strings.Builder, n *Node, depth int) {
	if n == nil {
		return
	}
	switch n.Kind {
	case KindFile:
		for i, c := range n.Children {
			if i > 0 {
				b.WriteString("\n")
			}
			printNode(b, c, depth)
		}
	case KindFunction:
		ret, params, body := n.Children[0], n.Children[1], n.Children[2]
		indent(b, depth)
		fmt.Fprintf(b, "%s %s(", ret.Value, n.Value)
		for i, p := range params.Children {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(p.Children[0].Value)
			if p.Value != "" {
				b.WriteString(" " + p.Value)
			}
		}
		b.WriteString(") {\n")
		for _, st := range body.Children {
			printNode(b, st, depth+1)
		}
		indent(b, depth)
		b.WriteString("}\n")
	case KindBlock:
		indent(b, depth)
		b.WriteString("{\n")
		for _, st := range n.Children {
			printNode(b, st, depth+1)
		}
		indent(b, depth)
		b.WriteString("}\n")
	case KindDecl:
		indent(b, depth)
		b.WriteString(declText(n))
		b.WriteString("\n")
	case KindExprStmt:
		indent(b, depth)
		b.WriteString(ExprString(n.Children[0]) + ";")
		b.WriteString("\n")
	case KindReturn:
		indent(b, depth)
		if len(n.Children) > 0 {
			b.WriteString("return " + ExprString(n.Children[0]) + ";")
		} else {
			b.WriteString("return;")
		}
		b.WriteString("\n")
	case KindBreak:
		indent(b, depth)
		b.WriteString("break;\n")
	case KindContinue:
		indent(b, depth)
		b.WriteString("continue;\n")
	case KindEmpty:
		indent(b, depth)
		b.WriteString(";\n")
	case KindIf:
		indent(b, depth)
		fmt.Fprintf(b, "if (%s) ", ExprString(n.Children[0]))
		printStmtAsBlock(b, n.Children[1], depth)
		if len(n.Children) == 3 {
			indent(b, depth)
			b.WriteString("else ")
			if n.Children[2].Kind == KindIf {
				// "else if" chains stay flat.
				var inner strings.Builder
				printNode(&inner, n.Children[2], depth)
				b.WriteString(strings.TrimLeft(inner.String(), " "))
			} else {
				printStmtAsBlock(b, n.Children[2], depth)
			}
		}
	case KindSwitch:
		indent(b, depth)
		fmt.Fprintf(b, "switch (%s) {\n", ExprString(n.Children[0]))
		for _, c := range n.Children[1].Children {
			printNode(b, c, depth)
		}
		indent(b, depth)
		b.WriteString("}\n")
	case KindCase:
		indent(b, depth)
		fmt.Fprintf(b, "case %s:\n", ExprString(n.Children[0]))
		for _, st := range n.Children[1:] {
			printNode(b, st, depth+1)
		}
	case KindDefault:
		indent(b, depth)
		b.WriteString("default:\n")
		for _, st := range n.Children {
			printNode(b, st, depth+1)
		}
	case KindFor:
		indent(b, depth)
		init := strings.TrimSuffix(stmtHeadText(n.Children[0]), ";")
		fmt.Fprintf(b, "for (%s; %s; %s) ", init,
			forClause(n.Children[1]), forClause(n.Children[2]))
		printStmtAsBlock(b, n.Children[3], depth)
	case KindWhile:
		indent(b, depth)
		fmt.Fprintf(b, "while (%s) ", ExprString(n.Children[0]))
		printStmtAsBlock(b, n.Children[1], depth)
	case KindDoWhile:
		indent(b, depth)
		b.WriteString("do {\n")
		body := n.Children[0]
		if body.Kind == KindBlock {
			for _, st := range body.Children {
				printNode(b, st, depth+1)
			}
		} else {
			printNode(b, body, depth+1)
		}
		indent(b, depth)
		fmt.Fprintf(b, "} while (%s);\n", ExprString(n.Children[1]))
	default:
		indent(b, depth)
		b.WriteString(ExprString(n))
		b.WriteString("\n")
	}
}

// forClause renders a for-loop condition or post expression.
func forClause(n *Node) string {
	if n == nil || n.Kind == KindEmpty {
		return ""
	}
	return ExprString(n)
}

// printStmtAsBlock prints a statement as a braced block body; single
// statements are wrapped so output is uniform.
func printStmtAsBlock(b *strings.Builder, n *Node, depth int) {
	if n.Kind == KindBlock {
		b.WriteString("{\n")
		for _, st := range n.Children {
			printNode(b, st, depth+1)
		}
		indent(b, depth)
		b.WriteString("}\n")
		return
	}
	b.WriteString("{\n")
	printNode(b, n, depth+1)
	indent(b, depth)
	b.WriteString("}\n")
}

// declText renders a declaration statement on one line.
func declText(n *Node) string {
	var b strings.Builder
	b.WriteString(n.Children[0].Value)
	for i, d := range n.Children[1:] {
		if i > 0 {
			b.WriteString(",")
		}
		b.WriteString(" ")
		switch {
		case d.Kind == KindIdent:
			b.WriteString(d.Value)
		case d.Kind == KindAssign && d.Value == "()":
			call := d.Children[1]
			b.WriteString(d.Children[0].Value + "(")
			for j, arg := range call.Children[1:] {
				if j > 0 {
					b.WriteString(", ")
				}
				b.WriteString(ExprString(arg))
			}
			b.WriteString(")")
		default:
			b.WriteString(d.Children[0].Value + " = " + ExprString(d.Children[1]))
		}
	}
	b.WriteString(";")
	return b.String()
}

// stmtHeadText renders the one-line "head" of a statement: the full text
// for simple statements, the header line ("if (X) {", "switch (K) {",
// "case V:") for compound ones. This is exactly the paper's notion of a
// statement, used for templatization and feature vectors.
func stmtHeadText(n *Node) string {
	switch n.Kind {
	case KindDecl:
		return declText(n)
	case KindExprStmt:
		return ExprString(n.Children[0]) + ";"
	case KindReturn:
		if len(n.Children) > 0 {
			return "return " + ExprString(n.Children[0]) + ";"
		}
		return "return;"
	case KindBreak:
		return "break;"
	case KindContinue:
		return "continue;"
	case KindEmpty:
		return ";"
	case KindIf:
		return "if (" + ExprString(n.Children[0]) + ") {"
	case KindSwitch:
		return "switch (" + ExprString(n.Children[0]) + ") {"
	case KindCase:
		return "case " + ExprString(n.Children[0]) + ":"
	case KindDefault:
		return "default:"
	case KindFor:
		return "for (" + strings.TrimSuffix(stmtHeadText(n.Children[0]), ";") + "; " +
			forClause(n.Children[1]) + "; " + forClause(n.Children[2]) + ") {"
	case KindWhile:
		return "while (" + ExprString(n.Children[0]) + ") {"
	case KindDoWhile:
		return "do {"
	case KindBlock:
		return "{"
	default:
		return ExprString(n)
	}
}

// StmtHead returns the one-line head text of a statement node.
func StmtHead(n *Node) string { return stmtHeadText(n) }

// ExprString renders an expression AST to source text.
func ExprString(n *Node) string {
	var b strings.Builder
	exprInto(&b, n, 0)
	return b.String()
}

// exprInto renders with minimal parentheses: parens are added when a
// child's precedence is lower than required by context.
func exprInto(b *strings.Builder, n *Node, minPrec int) {
	if n == nil {
		return
	}
	switch n.Kind {
	case KindIdent, KindNumber, KindString, KindChar, KindQualified, KindType:
		b.WriteString(n.Value)
	case KindBinary:
		prec := binaryPrec[n.Value]
		if prec < minPrec {
			b.WriteString("(")
		}
		exprInto(b, n.Children[0], prec)
		b.WriteString(" " + n.Value + " ")
		exprInto(b, n.Children[1], prec+1)
		if prec < minPrec {
			b.WriteString(")")
		}
	case KindUnary:
		if n.Value == "sizeof" {
			b.WriteString("sizeof(")
			exprInto(b, n.Children[0], 0)
			b.WriteString(")")
			return
		}
		b.WriteString(n.Value)
		exprInto(b, n.Children[0], 11)
	case KindPostfix:
		exprInto(b, n.Children[0], 11)
		b.WriteString(n.Value)
	case KindAssign:
		if minPrec > 0 {
			b.WriteString("(")
		}
		exprInto(b, n.Children[0], 1)
		b.WriteString(" " + n.Value + " ")
		exprInto(b, n.Children[1], 0)
		if minPrec > 0 {
			b.WriteString(")")
		}
	case KindTernary:
		if minPrec > 0 {
			b.WriteString("(")
		}
		exprInto(b, n.Children[0], 1)
		b.WriteString(" ? ")
		exprInto(b, n.Children[1], 0)
		b.WriteString(" : ")
		exprInto(b, n.Children[2], 0)
		if minPrec > 0 {
			b.WriteString(")")
		}
	case KindCall:
		exprInto(b, n.Children[0], 11)
		b.WriteString("(")
		for i, a := range n.Children[1:] {
			if i > 0 {
				b.WriteString(", ")
			}
			exprInto(b, a, 0)
		}
		b.WriteString(")")
	case KindMember:
		exprInto(b, n.Children[0], 11)
		b.WriteString(n.Value)
		b.WriteString(n.Children[1].Value)
	case KindIndex:
		exprInto(b, n.Children[0], 11)
		b.WriteString("[")
		exprInto(b, n.Children[1], 0)
		b.WriteString("]")
	case KindCast:
		if n.Value != "" {
			b.WriteString(n.Value + "<" + n.Children[0].Value + ">(")
			exprInto(b, n.Children[1], 0)
			b.WriteString(")")
			return
		}
		b.WriteString("(" + n.Children[0].Value + ")")
		exprInto(b, n.Children[1], 11)
	case KindInit:
		b.WriteString("{")
		for i, c := range n.Children {
			if i > 0 {
				b.WriteString(", ")
			}
			exprInto(b, c, 0)
		}
		b.WriteString("}")
	default:
		fmt.Fprintf(b, "/*?%s*/", n.Kind)
	}
}
