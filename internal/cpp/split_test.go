package cpp

import (
	"reflect"
	"strings"
	"testing"
)

func TestSplitFunctionStatements(t *testing.T) {
	fn := mustParseFunction(t, relocFuncSrc)
	sts := SplitFunction(fn)
	texts := StatementTexts(sts)
	want := []string{
		"unsigned ARMELFObjectWriter::getRelocType(MCContext & Ctx, const MCValue & Target, const MCFixup & Fixup, bool IsPCRel) {",
		"unsigned Kind = Fixup.getTargetKind();",
		"MCSymbolRefExpr::VariantKind Modifier = Target.getAccessVariant();",
		"if (IsPCRel) {",
		"switch (Kind) {",
		"case ARM::fixup_arm_movt_hi16:",
		"return ELF::R_ARM_MOVT_PREL;",
		"default:",
		"return ELF::R_ARM_NONE;",
		"}",
		"}",
		"return ELF::R_ARM_ABS32;",
		"}",
	}
	if !reflect.DeepEqual(texts, want) {
		t.Errorf("got:\n%s\nwant:\n%s", strings.Join(texts, "\n"), strings.Join(want, "\n"))
	}
}

func TestSplitStatementTerminators(t *testing.T) {
	fn := mustParseFunction(t, relocFuncSrc)
	for _, s := range SplitFunction(fn) {
		ok := strings.HasSuffix(s.Text, "{") || strings.HasSuffix(s.Text, ";") ||
			strings.HasSuffix(s.Text, ":") || s.Text == "}"
		if !ok {
			t.Errorf("statement %q does not end with one of {, ;, :", s.Text)
		}
	}
}

func TestNonCloseFiltering(t *testing.T) {
	fn := mustParseFunction(t, relocFuncSrc)
	all := SplitFunction(fn)
	open := NonClose(all)
	if len(open) >= len(all) {
		t.Errorf("NonClose did not remove closers: %d vs %d", len(open), len(all))
	}
	for _, s := range open {
		if s.Close || s.Text == "}" || s.Text == "{" {
			t.Errorf("NonClose kept %q", s.Text)
		}
	}
}

func TestSplitIfElse(t *testing.T) {
	fn := mustParseFunction(t, `int f(int a) {
  if (a > 0) {
    g();
  } else {
    h();
  }
  return a;
}`)
	texts := StatementTexts(SplitFunction(fn))
	want := []string{
		"int f(int a) {",
		"if (a > 0) {",
		"g();",
		"} else {",
		"h();",
		"}",
		"return a;",
		"}",
	}
	if !reflect.DeepEqual(texts, want) {
		t.Errorf("got %v, want %v", texts, want)
	}
}

func TestSplitDepths(t *testing.T) {
	fn := mustParseFunction(t, relocFuncSrc)
	sts := SplitFunction(fn)
	if sts[0].Depth != 0 {
		t.Errorf("function head depth = %d", sts[0].Depth)
	}
	var caseDepth int
	for _, s := range sts {
		if strings.HasPrefix(s.Text, "case ") {
			caseDepth = s.Depth
		}
	}
	if caseDepth <= sts[1].Depth {
		t.Errorf("case depth %d should exceed top-level statement depth %d", caseDepth, sts[1].Depth)
	}
}

func TestSplitRoundTripParses(t *testing.T) {
	// Joining the statement lines back into text must reparse to an
	// equivalent function.
	fn := mustParseFunction(t, relocFuncSrc)
	joined := strings.Join(StatementTexts(SplitFunction(fn)), "\n")
	fn2, err := ParseFunction(joined)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, joined)
	}
	if fn2.FunctionName() != "getRelocType" {
		t.Errorf("round-trip name = %q", fn2.FunctionName())
	}
	if got, want := len(SplitFunction(fn2)), len(SplitFunction(fn)); got != want {
		t.Errorf("statement count after round trip: %d vs %d", got, want)
	}
}
