package cpp

import (
	"strings"
	"testing"
)

func roundTrip(t *testing.T, src string) string {
	t.Helper()
	fn, err := ParseFunction(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	printed := Print(fn)
	if _, err := ParseFunction(printed); err != nil {
		t.Fatalf("reparse: %v\n%s", err, printed)
	}
	return printed
}

func TestPrintForLoop(t *testing.T) {
	out := roundTrip(t, `void f(unsigned Size) {
  for (unsigned i = 0; i != Size; ++i) {
    OS.write(i);
  }
}`)
	if !strings.Contains(out, "for (unsigned i = 0; i != Size; ++i) {") {
		t.Errorf("for header mangled:\n%s", out)
	}
}

func TestPrintWhileAndDo(t *testing.T) {
	out := roundTrip(t, `int f(int n) {
  while (n > 0) {
    n--;
  }
  do {
    n++;
  } while (n < 5);
  return n;
}`)
	for _, want := range []string{"while (n > 0) {", "do {", "} while (n < 5);"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestPrintElseIfChainStaysFlat(t *testing.T) {
	out := roundTrip(t, `int f(int a) {
  if (a > 2) {
    return 2;
  } else if (a > 1) {
    return 1;
  } else {
    return 0;
  }
}`)
	if !strings.Contains(out, "else if (a > 1)") {
		t.Errorf("else-if chain nested instead of flat:\n%s", out)
	}
}

func TestPrintPrecedenceParens(t *testing.T) {
	cases := map[string]string{
		"(a + b) * c":      "(a + b) * c",
		"a + b * c":        "a + b * c",
		"a << 2 | b":       "a << 2 | b",
		"(a | b) & c":      "(a | b) & c",
		"-(a + b)":         "-(a + b)",
		"(a == b) == true": "a == b == true", // left-assoc: parens redundant
	}
	for src, want := range cases {
		e, err := ParseExpr(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if got := ExprString(e); got != want {
			t.Errorf("ExprString(%q) = %q, want %q", src, got, want)
		}
		// Printing must preserve evaluation structure.
		e2, err := ParseExpr(ExprString(e))
		if err != nil || !e.Equal(e2) {
			t.Errorf("%q: print/parse not stable", src)
		}
	}
}

func TestPrintCastsAndCalls(t *testing.T) {
	for _, src := range []string{
		"static_cast<unsigned>(Modifier)",
		"(unsigned)x + 1",
		"unsigned(y)",
		"MI.getOperand(0).getReg()",
		"arr[i + 1]",
		"sizeof(x)",
		"f(a, b, g(c))",
	} {
		e, err := ParseExpr(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		e2, err := ParseExpr(ExprString(e))
		if err != nil {
			t.Fatalf("%s: reparse %q: %v", src, ExprString(e), err)
		}
		if !e.Equal(e2) {
			t.Errorf("%q: round trip changed tree: %q", src, ExprString(e))
		}
	}
}

func TestStmtHeadForms(t *testing.T) {
	cases := map[string]string{
		"return;":                          "return;",
		"break;":                           "break;",
		"continue;":                        "continue;",
		"while (a) { b(); }":               "while (a) {",
		"do { b(); } while (a);":           "do {",
		"for (i = 0; i < n; i++) { b(); }": "for (i = 0; i < n; i++) {",
	}
	for src, want := range cases {
		st, err := ParseStatement(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if got := StmtHead(st); got != want {
			t.Errorf("StmtHead(%q) = %q, want %q", src, got, want)
		}
	}
}

func TestPrintDeclForms(t *testing.T) {
	out := roundTrip(t, `void f() {
  int a, b = 2;
  SmallVector<int, 4> v;
  const MCExpr *e = nullptr;
}`)
	for _, want := range []string{"int a, b = 2;", "SmallVector<int, 4> v;", "const MCExpr * e = nullptr;"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}
