package cpp

import (
	"strings"
	"testing"
)

func TestNormalizeIfChainToSwitch(t *testing.T) {
	fn := mustParseFunction(t, `unsigned f(unsigned K) {
  if (K == A::x) {
    return 1;
  } else if (K == A::y) {
    return 2;
  } else {
    return 0;
  }
}`)
	Normalize(fn)
	body := fn.Children[2]
	if len(body.Children) != 1 || body.Children[0].Kind != KindSwitch {
		t.Fatalf("body after normalize: %v", body)
	}
	sw := body.Children[0]
	arms := sw.Children[1].Children
	if len(arms) != 3 {
		t.Fatalf("arms = %d, want 2 cases + default", len(arms))
	}
	if arms[0].Kind != KindCase || ExprString(arms[0].Children[0]) != "A::x" {
		t.Errorf("first arm: %v", arms[0])
	}
	if arms[2].Kind != KindDefault {
		t.Errorf("last arm: %v", arms[2].Kind)
	}
}

func TestNormalizeReversedOperands(t *testing.T) {
	fn := mustParseFunction(t, `int f(int K) {
  if (1 == K) {
    return 10;
  } else if (2 == K) {
    return 20;
  }
  return 0;
}`)
	Normalize(fn)
	if fn.Children[2].Children[0].Kind != KindSwitch {
		t.Errorf("reversed equality not normalized: %s", Print(fn))
	}
}

func TestNormalizeLeavesNonChains(t *testing.T) {
	src := `int f(int a, int b) {
  if (a > b) {
    return a;
  }
  return b;
}`
	fn := mustParseFunction(t, src)
	before := Print(fn)
	Normalize(fn)
	if Print(fn) != before {
		t.Errorf("non-equality if was rewritten:\n%s", Print(fn))
	}
}

func TestNormalizeRequiresSameDiscriminant(t *testing.T) {
	fn := mustParseFunction(t, `int f(int a, int b) {
  if (a == 1) {
    return 1;
  } else if (b == 2) {
    return 2;
  }
  return 0;
}`)
	Normalize(fn)
	if fn.Children[2].Children[0].Kind == KindSwitch {
		t.Error("mixed discriminants must not normalize to switch")
	}
}

func TestNormalizeSingleIfNotConverted(t *testing.T) {
	fn := mustParseFunction(t, `int f(int a) {
  if (a == 1) {
    return 1;
  }
  return 0;
}`)
	Normalize(fn)
	if fn.Children[2].Children[0].Kind == KindSwitch {
		t.Error("single-arm if must not become a switch")
	}
}

func TestNormalizeNestedChains(t *testing.T) {
	fn := mustParseFunction(t, `int f(int K, int J) {
  if (K == 1) {
    if (J == 1) {
      return 11;
    } else if (J == 2) {
      return 12;
    }
    return 10;
  }
  return 0;
}`)
	Normalize(fn)
	printed := Print(fn)
	if !strings.Contains(printed, "switch (J)") {
		t.Errorf("nested chain not normalized:\n%s", printed)
	}
}

func TestNormalizeDropsEmptyStatements(t *testing.T) {
	fn := mustParseFunction(t, `int f(int a) {
  ;
  return a;
  ;
}`)
	Normalize(fn)
	if len(fn.Children[2].Children) != 1 {
		t.Errorf("empty statements kept: %s", Print(fn))
	}
}

func TestNormalizedSwitchIsValid(t *testing.T) {
	fn := mustParseFunction(t, `unsigned f(unsigned K) {
  if (K == A::x) {
    return 1;
  } else if (K == A::y) {
    return 2;
  } else {
    return 0;
  }
}`)
	Normalize(fn)
	if _, err := ParseFunction(Print(fn)); err != nil {
		t.Errorf("normalized output does not reparse: %v\n%s", err, Print(fn))
	}
}
