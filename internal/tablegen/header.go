package tablegen

import (
	"fmt"
	"strings"

	"vega/internal/cpp"
)

// Enum is an enum declaration extracted from a C++ header.
type Enum struct {
	Name    string
	Members []EnumMember
}

// EnumMember is one enumerator, with its raw initializer text if present.
type EnumMember struct {
	Name  string
	Value string
}

// MemberNames lists the enumerator names in declaration order.
func (e *Enum) MemberNames() []string {
	out := make([]string, len(e.Members))
	for i, m := range e.Members {
		out[i] = m.Name
	}
	return out
}

// Has reports whether the enum declares the named member.
func (e *Enum) Has(name string) bool {
	for _, m := range e.Members {
		if m.Name == name {
			return true
		}
	}
	return false
}

// ParseEnums extracts every enum declaration from C++ header source.
// Namespaces and class scopes are scanned through; everything that is not
// an enum is skipped token-wise.
func ParseEnums(src string) ([]Enum, error) {
	toks, err := cpp.Lex(src)
	if err != nil {
		return nil, fmt.Errorf("tablegen: %w", err)
	}
	var enums []Enum
	for i := 0; i < len(toks); i++ {
		if !toks[i].IsKeyword("enum") {
			continue
		}
		e, end, perr := parseEnumAt(toks, i)
		if perr != nil {
			return nil, perr
		}
		enums = append(enums, e)
		i = end
	}
	return enums, nil
}

// parseEnumAt parses the enum starting at toks[i] (the "enum" keyword) and
// returns the enum and the index of its closing brace.
func parseEnumAt(toks []cpp.Token, i int) (Enum, int, error) {
	j := i + 1
	if j < len(toks) && toks[j].IsKeyword("class") {
		j++
	}
	var e Enum
	if j < len(toks) && toks[j].Kind == cpp.TokIdent {
		e.Name = toks[j].Text
		j++
	}
	// Optional underlying type ": unsigned".
	if j < len(toks) && toks[j].IsPunct(":") {
		j++
		for j < len(toks) && !toks[j].IsPunct("{") {
			j++
		}
	}
	if j >= len(toks) || !toks[j].IsPunct("{") {
		return e, j, fmt.Errorf("tablegen: enum %s: expected '{'", e.Name)
	}
	j++
	for j < len(toks) && !toks[j].IsPunct("}") {
		if toks[j].Kind != cpp.TokIdent {
			return e, j, fmt.Errorf("tablegen: enum %s: expected member name, found %q", e.Name, toks[j].Text)
		}
		m := EnumMember{Name: toks[j].Text}
		j++
		if j < len(toks) && toks[j].IsPunct("=") {
			j++
			var parts []string
			depth := 0
			for j < len(toks) {
				t := toks[j]
				if depth == 0 && (t.IsPunct(",") || t.IsPunct("}")) {
					break
				}
				if t.IsPunct("(") {
					depth++
				}
				if t.IsPunct(")") {
					depth--
				}
				parts = append(parts, t.Text)
				j++
			}
			m.Value = strings.Join(parts, " ")
		}
		e.Members = append(e.Members, m)
		if j < len(toks) && toks[j].IsPunct(",") {
			j++
		}
	}
	if j >= len(toks) {
		return e, j, fmt.Errorf("tablegen: enum %s: unterminated body", e.Name)
	}
	return e, j, nil
}

// DefMacro is one X-macro invocation from a .def file, e.g.
// ELF_RELOC(R_RISCV_HI20, 26).
type DefMacro struct {
	Name string
	Args []string
}

// ParseDefFile extracts macro invocations "NAME(arg, arg, ...)" from a
// .def file, one per line by convention.
func ParseDefFile(src string) ([]DefMacro, error) {
	toks, err := cpp.Lex(src)
	if err != nil {
		return nil, fmt.Errorf("tablegen: %w", err)
	}
	var out []DefMacro
	i := 0
	for i < len(toks) {
		if toks[i].Kind != cpp.TokIdent || i+1 >= len(toks) || !toks[i+1].IsPunct("(") {
			i++
			continue
		}
		m := DefMacro{Name: toks[i].Text}
		i += 2
		var cur []string
		depth := 1
		for i < len(toks) && depth > 0 {
			t := toks[i]
			switch {
			case t.IsPunct("("):
				depth++
				cur = append(cur, t.Text)
			case t.IsPunct(")"):
				depth--
				if depth > 0 {
					cur = append(cur, t.Text)
				}
			case t.IsPunct(",") && depth == 1:
				m.Args = append(m.Args, strings.Join(cur, " "))
				cur = nil
			default:
				cur = append(cur, t.Text)
			}
			i++
		}
		if len(cur) > 0 {
			m.Args = append(m.Args, strings.Join(cur, " "))
		}
		out = append(out, m)
	}
	return out, nil
}
