// Package tablegen implements a miniature TableGen: a parser and record
// model for the target-description subset LLVM-style backends carry in
// .td files, plus parsers for the enum declarations in .h headers and the
// X-macro lines in .def files.
//
// VEGA's feature selection (Algorithm 1 in the paper) only ever asks four
// questions of these files — does a token occur, which enum contains a
// member, what are an enum's members, and which "key = \"value\""
// assignments exist — so the package also provides a SourceTree with
// exactly those search operations over a virtual directory layout
// (LLVMDIRs and TGTDIRs).
package tablegen

import (
	"fmt"
	"strings"

	"vega/internal/cpp"
)

// Record is a TableGen class or def.
type Record struct {
	Kind    string // "class" or "def"
	Name    string
	Parents []string
	Fields  []Field
}

// Field is one "name = value;" binding inside a record body.
type Field struct {
	Name     string
	Value    string // unquoted for strings, raw text otherwise
	IsString bool
}

// Lookup returns the named field and whether it exists.
func (r *Record) Lookup(name string) (Field, bool) {
	for _, f := range r.Fields {
		if f.Name == name {
			return f, true
		}
	}
	return Field{}, false
}

// HasParent reports whether the record inherits (directly) from parent.
func (r *Record) HasParent(parent string) bool {
	for _, p := range r.Parents {
		if p == parent {
			return true
		}
	}
	return false
}

// TDFile is a parsed .td file.
type TDFile struct {
	Records []Record
	// TopAssigns are file-scope "key = value" assignments; the corpus uses
	// them for loose properties such as OperandType = "OPERAND_PCREL".
	TopAssigns []Field
}

// Def returns the def with the given name.
func (f *TDFile) Def(name string) (*Record, bool) {
	for i := range f.Records {
		if f.Records[i].Kind == "def" && f.Records[i].Name == name {
			return &f.Records[i], true
		}
	}
	return nil, false
}

// DefsOf returns all defs inheriting from the given class.
func (f *TDFile) DefsOf(class string) []*Record {
	var out []*Record
	for i := range f.Records {
		if f.Records[i].Kind == "def" && f.Records[i].HasParent(class) {
			out = append(out, &f.Records[i])
		}
	}
	return out
}

// ParseTD parses TableGen source.
func ParseTD(src string) (*TDFile, error) {
	toks, err := cpp.Lex(src)
	if err != nil {
		return nil, fmt.Errorf("tablegen: %w", err)
	}
	p := &tdParser{toks: toks}
	return p.parseFile()
}

type tdParser struct {
	toks []cpp.Token
	pos  int
}

func (p *tdParser) atEOF() bool { return p.pos >= len(p.toks) }

func (p *tdParser) cur() cpp.Token {
	if p.atEOF() {
		return cpp.Token{Kind: cpp.TokEOF}
	}
	return p.toks[p.pos]
}

func (p *tdParser) next() cpp.Token {
	t := p.cur()
	if !p.atEOF() {
		p.pos++
	}
	return t
}

func (p *tdParser) accept(kind cpp.TokenKind, text string) bool {
	if p.cur().Is(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *tdParser) expect(text string) error {
	t := p.cur()
	if t.Text != text {
		return fmt.Errorf("tablegen: %s: expected %q, found %q", t.Pos, text, t.Text)
	}
	p.pos++
	return nil
}

func (p *tdParser) parseFile() (*TDFile, error) {
	f := &TDFile{}
	for !p.atEOF() {
		t := p.cur()
		switch {
		case t.Text == "class" || t.Text == "def":
			rec, err := p.parseRecord(t.Text)
			if err != nil {
				return nil, err
			}
			f.Records = append(f.Records, rec)
		case t.Text == "let":
			// File-scope "let X = V in { ... }" or "let X = V;"
			p.pos++
			field, err := p.parseFieldAssign()
			if err != nil {
				return nil, err
			}
			f.TopAssigns = append(f.TopAssigns, field)
			if p.accept(cpp.TokIdent, "in") {
				// Skip the braced group wholesale but collect its records.
				if p.cur().IsPunct("{") {
					if err := p.skipBalanced("{", "}"); err != nil {
						return nil, err
					}
				}
			}
		case t.Kind == cpp.TokIdent:
			// Bare file-scope assignment "Name = "RISCV"" used by the
			// corpus's simplified top-level description lines.
			field, err := p.parseFieldAssign()
			if err != nil {
				return nil, err
			}
			f.TopAssigns = append(f.TopAssigns, field)
		case t.Text == "include":
			p.pos++
			p.next() // the path string
		default:
			return nil, fmt.Errorf("tablegen: %s: unexpected token %q", t.Pos, t.Text)
		}
	}
	return f, nil
}

// parseFieldAssign parses `name = value [;]` where value extends to the
// next ';', 'in', or end of line-ish boundary.
func (p *tdParser) parseFieldAssign() (Field, error) {
	t := p.cur()
	if t.Kind != cpp.TokIdent {
		return Field{}, fmt.Errorf("tablegen: %s: expected field name, found %q", t.Pos, t.Text)
	}
	name := p.next().Text
	if err := p.expect("="); err != nil {
		return Field{}, err
	}
	return p.parseFieldValue(name)
}

func (p *tdParser) parseFieldValue(name string) (Field, error) {
	t := p.cur()
	if t.Kind == cpp.TokString {
		p.pos++
		p.accept(cpp.TokPunct, ";")
		return Field{Name: name, Value: unquote(t.Text), IsString: true}, nil
	}
	var parts []string
	for !p.atEOF() {
		t = p.cur()
		if t.IsPunct(";") {
			p.pos++
			break
		}
		if t.Text == "in" || t.IsPunct("}") || t.Text == "let" ||
			t.Text == "def" || t.Text == "class" {
			break
		}
		parts = append(parts, p.next().Text)
	}
	return Field{Name: name, Value: strings.Join(parts, " ")}, nil
}

func (p *tdParser) parseRecord(kind string) (Record, error) {
	p.pos++ // class/def
	rec := Record{Kind: kind}
	if p.cur().Kind == cpp.TokIdent {
		rec.Name = p.next().Text
	}
	// Template parameter list on classes: class Foo<bits<7> op, string n>.
	if p.cur().IsPunct("<") {
		if err := p.skipBalanced("<", ">"); err != nil {
			return rec, err
		}
	}
	if p.accept(cpp.TokPunct, ":") {
		for {
			t := p.cur()
			if t.Kind != cpp.TokIdent {
				return rec, fmt.Errorf("tablegen: %s: expected parent class, found %q", t.Pos, t.Text)
			}
			rec.Parents = append(rec.Parents, p.next().Text)
			// Parent template args: Proc<"generic", [...]>.
			if p.cur().IsPunct("<") {
				if err := p.skipBalanced("<", ">"); err != nil {
					return rec, err
				}
			}
			if !p.accept(cpp.TokPunct, ",") {
				break
			}
		}
	}
	if p.accept(cpp.TokPunct, ";") {
		return rec, nil
	}
	if err := p.expect("{"); err != nil {
		return rec, err
	}
	for !p.cur().IsPunct("}") {
		if p.atEOF() {
			return rec, fmt.Errorf("tablegen: unterminated record body for %s", rec.Name)
		}
		t := p.cur()
		switch {
		case t.Text == "let":
			p.pos++
			f, err := p.parseFieldAssign()
			if err != nil {
				return rec, err
			}
			rec.Fields = append(rec.Fields, f)
		case t.Kind == cpp.TokIdent || t.Kind == cpp.TokKeyword:
			// Typed field decl: "string Name = ...;" or "bits<7> Opcode = ...;"
			f, err := p.parseTypedField()
			if err != nil {
				return rec, err
			}
			rec.Fields = append(rec.Fields, f)
		default:
			return rec, fmt.Errorf("tablegen: %s: unexpected token %q in record body", t.Pos, t.Text)
		}
	}
	p.pos++ // '}'
	return rec, nil
}

// parseTypedField parses "type name = value;" or "name = value;".
func (p *tdParser) parseTypedField() (Field, error) {
	first := p.next()
	// Possible bits<N> suffix on the type.
	if p.cur().IsPunct("<") {
		if err := p.skipBalanced("<", ">"); err != nil {
			return Field{}, err
		}
	}
	if p.cur().Is(cpp.TokPunct, "=") {
		// "name = value" — first was the field name.
		p.pos++
		return p.parseFieldValue(first.Text)
	}
	// "type name [= value];"
	t := p.cur()
	if t.Kind != cpp.TokIdent {
		return Field{}, fmt.Errorf("tablegen: %s: expected field name after type %q", t.Pos, first.Text)
	}
	name := p.next().Text
	if p.accept(cpp.TokPunct, "=") {
		return p.parseFieldValue(name)
	}
	p.accept(cpp.TokPunct, ";")
	return Field{Name: name}, nil
}

func (p *tdParser) skipBalanced(open, close string) error {
	if err := p.expect(open); err != nil {
		return err
	}
	depth := 1
	for depth > 0 {
		if p.atEOF() {
			return fmt.Errorf("tablegen: unbalanced %q", open)
		}
		t := p.next()
		switch t.Text {
		case open:
			depth++
		case close:
			depth--
		}
	}
	return nil
}

func unquote(s string) string {
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		return s[1 : len(s)-1]
	}
	return s
}
