package tablegen

import (
	"reflect"
	"testing"
)

const sampleTD = `
// RISCV.td - top level target description
Name = "RISCV"

class Proc<string n> {
  string ProcName = n;
}

def GenericRV32 : Proc<"generic-rv32">;

class RVInst {
  string Namespace = "RISCV";
  bits<7> Opcode = 0b0110011;
}

def ADD : RVInst {
  let Name = "add";
  string AsmString = "add $rd, $rs1, $rs2";
  OperandType = "OPERAND_REG";
}
`

func TestParseTDRecords(t *testing.T) {
	f, err := ParseTD(sampleTD)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Records) != 4 {
		t.Fatalf("records = %d, want 4", len(f.Records))
	}
	add, ok := f.Def("ADD")
	if !ok {
		t.Fatal("def ADD not found")
	}
	if !add.HasParent("RVInst") {
		t.Errorf("ADD parents = %v", add.Parents)
	}
	name, ok := add.Lookup("Name")
	if !ok || name.Value != "add" || !name.IsString {
		t.Errorf("ADD.Name = %+v", name)
	}
	asm, ok := add.Lookup("AsmString")
	if !ok || asm.Value != "add $rd, $rs1, $rs2" {
		t.Errorf("ADD.AsmString = %+v", asm)
	}
}

func TestParseTDTopAssigns(t *testing.T) {
	f, err := ParseTD(sampleTD)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.TopAssigns) != 1 || f.TopAssigns[0].Name != "Name" || f.TopAssigns[0].Value != "RISCV" {
		t.Errorf("top assigns = %+v", f.TopAssigns)
	}
}

func TestParseTDClassFields(t *testing.T) {
	f, err := ParseTD(sampleTD)
	if err != nil {
		t.Fatal(err)
	}
	var inst *Record
	for i := range f.Records {
		if f.Records[i].Name == "RVInst" {
			inst = &f.Records[i]
		}
	}
	if inst == nil {
		t.Fatal("class RVInst not found")
	}
	ns, ok := inst.Lookup("Namespace")
	if !ok || ns.Value != "RISCV" {
		t.Errorf("Namespace = %+v", ns)
	}
	op, ok := inst.Lookup("Opcode")
	if !ok || op.Value != "0b0110011" {
		t.Errorf("Opcode = %+v", op)
	}
}

func TestDefsOf(t *testing.T) {
	f, err := ParseTD(sampleTD)
	if err != nil {
		t.Fatal(err)
	}
	defs := f.DefsOf("RVInst")
	if len(defs) != 1 || defs[0].Name != "ADD" {
		t.Errorf("DefsOf(RVInst) = %v", defs)
	}
}

func TestParseTDAnonymousDef(t *testing.T) {
	f, err := ParseTD(`def : Proc<"generic">;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Records) != 1 || f.Records[0].Name != "" || !f.Records[0].HasParent("Proc") {
		t.Errorf("records = %+v", f.Records)
	}
}

func TestParseTDErrors(t *testing.T) {
	for _, src := range []string{
		`def X : { }`,       // missing parent name
		`class X { string`,  // truncated body
		`def X : Y { ??? }`, // garbage in body
	} {
		if _, err := ParseTD(src); err == nil {
			t.Errorf("ParseTD(%q): expected error", src)
		}
	}
}

const sampleHeader = `
#ifndef RISCV_FIXUP_KINDS_H
namespace RISCV {
enum Fixups {
  fixup_riscv_hi20 = FirstTargetFixupKind,
  fixup_riscv_lo12_i,
  fixup_riscv_pcrel_hi20,
  NumTargetFixupKinds = fixup_riscv_pcrel_hi20 - FirstTargetFixupKind + 1
};
enum class OperandFlags : unsigned {
  OF_None = 0,
  OF_Imm = 1
};
}
#endif
`

func TestParseEnums(t *testing.T) {
	enums, err := ParseEnums(sampleHeader)
	if err != nil {
		t.Fatal(err)
	}
	if len(enums) != 2 {
		t.Fatalf("enums = %d, want 2", len(enums))
	}
	fix := enums[0]
	if fix.Name != "Fixups" {
		t.Errorf("name = %q", fix.Name)
	}
	want := []string{"fixup_riscv_hi20", "fixup_riscv_lo12_i", "fixup_riscv_pcrel_hi20", "NumTargetFixupKinds"}
	if got := fix.MemberNames(); !reflect.DeepEqual(got, want) {
		t.Errorf("members = %v, want %v", got, want)
	}
	if fix.Members[0].Value != "FirstTargetFixupKind" {
		t.Errorf("first member value = %q", fix.Members[0].Value)
	}
	if !fix.Has("fixup_riscv_hi20") || fix.Has("nope") {
		t.Error("Has misbehaves")
	}
	if enums[1].Name != "OperandFlags" || len(enums[1].Members) != 2 {
		t.Errorf("enum class = %+v", enums[1])
	}
}

func TestParseDefFile(t *testing.T) {
	macros, err := ParseDefFile(`
ELF_RELOC(R_RISCV_NONE, 0)
ELF_RELOC(R_RISCV_32, 1)
ELF_RELOC(R_RISCV_HI20, 26)
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(macros) != 3 {
		t.Fatalf("macros = %d", len(macros))
	}
	if macros[2].Name != "ELF_RELOC" || macros[2].Args[0] != "R_RISCV_HI20" || macros[2].Args[1] != "26" {
		t.Errorf("macro = %+v", macros[2])
	}
}

func TestSourceTreeTokenSearch(t *testing.T) {
	tree := NewSourceTree()
	tree.Add("llvm/MC/MCExpr.h", "class MCSymbolRefExpr { enum VariantKind { VK_None }; };")
	tree.Add("lib/Target/RISCV/RISCVFixupKinds.h", sampleHeader)
	tree.Add("lib/Target/RISCV/RISCV.td", sampleTD)

	llvmDirs := []string{"llvm/MC"}
	tgtDirs := []string{"lib/Target/RISCV"}

	if !tree.HasToken("MCSymbolRefExpr", llvmDirs) {
		t.Error("MCSymbolRefExpr not found in LLVMDIRs")
	}
	if tree.HasToken("MCSymbolRefExpr", tgtDirs) {
		t.Error("MCSymbolRefExpr should not be in TGTDIRs")
	}
	paths := tree.FindToken("fixup_riscv_hi20", tgtDirs)
	if len(paths) != 1 || paths[0] != "lib/Target/RISCV/RISCVFixupKinds.h" {
		t.Errorf("FindToken = %v", paths)
	}
}

func TestSourceTreeAssignments(t *testing.T) {
	tree := NewSourceTree()
	tree.Add("lib/Target/RISCV/RISCV.td", sampleTD)
	as := tree.AssignmentsUnder([]string{"lib/Target/RISCV"})
	var found bool
	for _, a := range as {
		if a.LHS == "Name" && a.RHS == "RISCV" && a.IsStr {
			found = true
		}
	}
	if !found {
		t.Errorf("Name = \"RISCV\" assignment missing from %+v", as)
	}
}

func TestSourceTreeEnumQueries(t *testing.T) {
	tree := NewSourceTree()
	tree.Add("lib/Target/RISCV/RISCVFixupKinds.h", sampleHeader)
	name, path, ok := tree.EnumContaining("fixup_riscv_pcrel_hi20", []string{"lib/Target/RISCV"})
	if !ok || name != "Fixups" || path != "lib/Target/RISCV/RISCVFixupKinds.h" {
		t.Errorf("EnumContaining = %q %q %v", name, path, ok)
	}
	members := tree.EnumMembers("Fixups", []string{"lib/Target/RISCV"})
	if len(members) != 4 {
		t.Errorf("EnumMembers = %v", members)
	}
	if _, _, ok := tree.EnumContaining("no_such_member", []string{"lib/Target/RISCV"}); ok {
		t.Error("EnumContaining false positive")
	}
}

func TestSourceTreePathsUnder(t *testing.T) {
	tree := NewSourceTree()
	tree.Add("lib/Target/ARM/ARM.td", "Name = \"ARM\"")
	tree.Add("lib/Target/ARMX/X.td", "Name = \"ARMX\"")
	got := tree.PathsUnder([]string{"lib/Target/ARM"})
	if len(got) != 1 || got[0] != "lib/Target/ARM/ARM.td" {
		t.Errorf("prefix matching leaked across sibling dirs: %v", got)
	}
}

func TestSourceTreeInvalidation(t *testing.T) {
	tree := NewSourceTree()
	tree.Add("a/x.td", "Name = \"One\"")
	_ = tree.HasToken("One", []string{"a"}) // builds index
	tree.Add("a/x.td", "Name = \"Two\"")
	if tree.HasToken("One", []string{"a"}) {
		t.Error("stale token index after Add")
	}
	if !tree.HasToken("Two", []string{"a"}) {
		t.Error("new content not indexed")
	}
}

func TestListAssignments(t *testing.T) {
	tree := NewSourceTree()
	tree.Add("lib/Target/X/XRegisterInfo.td", `
def XCSR : CalleeSavedRegs {
  let SaveList = [X8, X9, X18];
}`)
	las := tree.ListAssignmentsUnder([]string{"lib/Target/X"})
	if len(las) != 1 {
		t.Fatalf("list assignments = %d", len(las))
	}
	la := las[0]
	if la.LHS != "SaveList" || len(la.Items) != 3 || la.Items[1] != "X9" {
		t.Errorf("list assignment = %+v", la)
	}
}

func TestListAssignmentsIgnoreNonTd(t *testing.T) {
	tree := NewSourceTree()
	tree.Add("lib/Target/X/X.h", "int a[] = [1, 2];")
	if got := tree.ListAssignmentsUnder([]string{"lib/Target/X"}); len(got) != 0 {
		t.Errorf("non-td list assignments = %v", got)
	}
}
