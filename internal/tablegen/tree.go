package tablegen

import (
	"sort"
	"strings"
	"sync"

	"vega/internal/cpp"
)

// SourceTree is a virtual directory of source files — the LLVM-provided
// code under LLVMDIRs plus the per-target description files under TGTDIRs.
// It answers the search queries Algorithm 1 performs: token occurrence,
// assignment scanning, and enum membership.
type SourceTree struct {
	files map[string]string // path -> content

	// Lazily built indexes, guarded by mu: queries may arrive from
	// Stage 1's templatization workers and Stage 3's concurrent
	// generation workers, and the first one to need an index builds it.
	// Once assigned the maps are read-only (Add replaces them wholesale),
	// so queries after the build need no lock — the build's mutex release
	// publishes the maps.
	mu          sync.Mutex
	tokens      map[string]map[string]bool  // path -> token set
	assigns     map[string][]Assignment     // path -> assignments
	listAssigns map[string][]ListAssignment // path -> list assignments
	enums       map[string][]Enum           // path -> enums

	// Per-directory-set memos, guarded by mu on every access: the
	// feature-selection inner loops ask for the same few TGTDIRs/LLVMDIRs
	// slices thousands of times per pipeline build, and re-concatenating
	// (or worse, re-lexing) per call dominated Stage 1. Returned slices
	// are shared — callers must not mutate them.
	pathsMemo  map[string][]string
	assignMemo map[string][]Assignment
	listMemo   map[string][]ListAssignment
}

// Assignment is a "key = value" pair found in a file, whether a TableGen
// field, a top-level .td assignment, or a C++ initializer.
type Assignment struct {
	Path  string
	LHS   string
	RHS   string // unquoted for string literals
	IsStr bool
}

// NewSourceTree builds an empty tree.
func NewSourceTree() *SourceTree {
	return &SourceTree{files: make(map[string]string)}
}

// Add inserts or replaces a file. Indexes are invalidated. Not safe to
// call concurrently with queries — trees are built up front and read
// from then on.
func (t *SourceTree) Add(path, content string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.files[path] = content
	t.tokens, t.assigns, t.listAssigns, t.enums = nil, nil, nil, nil
	t.pathsMemo, t.assignMemo, t.listMemo = nil, nil, nil
}

// Content returns a file's content.
func (t *SourceTree) Content(path string) (string, bool) {
	c, ok := t.files[path]
	return c, ok
}

// Paths returns all file paths, sorted.
func (t *SourceTree) Paths() []string {
	out := make([]string, 0, len(t.files))
	for p := range t.files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// PathsUnder returns all file paths under any of the given directory
// prefixes, sorted. The slice is memoized per directory set and shared
// across calls — callers must not mutate it.
func (t *SourceTree) PathsUnder(dirs []string) []string {
	key := strings.Join(dirs, "\x00")
	t.mu.Lock()
	if out, ok := t.pathsMemo[key]; ok {
		t.mu.Unlock()
		return out
	}
	var out []string
	for p := range t.files {
		for _, d := range dirs {
			if strings.HasPrefix(p, strings.TrimSuffix(d, "/")+"/") {
				out = append(out, p)
				break
			}
		}
	}
	sort.Strings(out)
	if t.pathsMemo == nil {
		t.pathsMemo = make(map[string][]string)
	}
	t.pathsMemo[key] = out
	t.mu.Unlock()
	return out
}

func (t *SourceTree) buildTokenIndex() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.tokens != nil {
		return
	}
	tokens := make(map[string]map[string]bool, len(t.files))
	for p, c := range t.files {
		set := make(map[string]bool)
		toks, err := cpp.Lex(c)
		if err != nil {
			// Fall back to whitespace splitting on unlexable content so a
			// single odd file cannot hide the rest of the tree.
			for _, w := range strings.Fields(c) {
				set[w] = true
			}
		} else {
			for _, tok := range toks {
				set[tok.Text] = true
				if tok.Kind == cpp.TokString {
					// Index string contents too: feature selection matches
					// tokens against values like Name = "RISCV".
					set[unquote(tok.Text)] = true
				}
			}
		}
		tokens[p] = set
	}
	t.tokens = tokens
}

// FindToken returns the sorted paths under dirs whose token stream
// contains tok exactly.
func (t *SourceTree) FindToken(tok string, dirs []string) []string {
	t.buildTokenIndex()
	var out []string
	for _, p := range t.PathsUnder(dirs) {
		if t.tokens[p][tok] {
			out = append(out, p)
		}
	}
	return out
}

// HasToken reports whether tok occurs in any file under dirs.
func (t *SourceTree) HasToken(tok string, dirs []string) bool {
	return len(t.FindToken(tok, dirs)) > 0
}

func (t *SourceTree) buildAssignIndex() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.assigns != nil {
		return
	}
	assigns := make(map[string][]Assignment, len(t.files))
	for p, c := range t.files {
		assigns[p] = scanAssignments(p, c)
	}
	t.assigns = assigns
}

// scanAssignments finds "ident = value" pairs token-wise. String RHSes are
// unquoted. This catches TableGen fields, top-level assigns and C++
// initializers uniformly, which is all Algorithm 1's partial matching
// needs.
func scanAssignments(path, content string) []Assignment {
	toks, err := cpp.Lex(content)
	if err != nil {
		return nil
	}
	var out []Assignment
	for i := 1; i+1 < len(toks); i++ {
		if !toks[i].IsPunct("=") {
			continue
		}
		lhs, rhs := toks[i-1], toks[i+1]
		if lhs.Kind != cpp.TokIdent {
			continue
		}
		a := Assignment{Path: path, LHS: lhs.Text}
		switch rhs.Kind {
		case cpp.TokString:
			a.RHS = unquote(rhs.Text)
			a.IsStr = true
		case cpp.TokIdent, cpp.TokNumber, cpp.TokKeyword:
			a.RHS = rhs.Text
		default:
			continue
		}
		out = append(out, a)
	}
	return out
}

// ListAssignment is an "LHS = [a, b, c]" binding (TableGen list values).
type ListAssignment struct {
	Path  string
	LHS   string
	Items []string
}

// scanListAssignments finds "ident = [ items ]" bindings token-wise.
func scanListAssignments(path, content string) []ListAssignment {
	toks, err := cpp.Lex(content)
	if err != nil {
		return nil
	}
	var out []ListAssignment
	for i := 1; i+1 < len(toks); i++ {
		if !toks[i].IsPunct("=") || !toks[i+1].IsPunct("[") || toks[i-1].Kind != cpp.TokIdent {
			continue
		}
		la := ListAssignment{Path: path, LHS: toks[i-1].Text}
		for j := i + 2; j < len(toks); j++ {
			t := toks[j]
			if t.IsPunct("]") {
				break
			}
			if t.Kind == cpp.TokIdent || t.Kind == cpp.TokNumber {
				la.Items = append(la.Items, t.Text)
			} else if t.Kind == cpp.TokString {
				la.Items = append(la.Items, unquote(t.Text))
			}
		}
		out = append(out, la)
	}
	return out
}

func (t *SourceTree) buildListAssignIndex() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.listAssigns != nil {
		return
	}
	listAssigns := make(map[string][]ListAssignment, len(t.files))
	for p, c := range t.files {
		if !strings.HasSuffix(p, ".td") {
			continue
		}
		listAssigns[p] = scanListAssignments(p, c)
	}
	t.listAssigns = listAssigns
}

// ListAssignmentsUnder returns every list assignment in files under dirs.
// The slice is memoized per directory set and shared — do not mutate.
func (t *SourceTree) ListAssignmentsUnder(dirs []string) []ListAssignment {
	t.buildListAssignIndex()
	key := strings.Join(dirs, "\x00")
	t.mu.Lock()
	if out, ok := t.listMemo[key]; ok {
		t.mu.Unlock()
		return out
	}
	t.mu.Unlock()
	var out []ListAssignment
	for _, p := range t.PathsUnder(dirs) {
		out = append(out, t.listAssigns[p]...)
	}
	t.mu.Lock()
	if t.listMemo == nil {
		t.listMemo = make(map[string][]ListAssignment)
	}
	t.listMemo[key] = out
	t.mu.Unlock()
	return out
}

// AssignmentsUnder returns every assignment in files under dirs. The
// slice is memoized per directory set and shared — do not mutate.
func (t *SourceTree) AssignmentsUnder(dirs []string) []Assignment {
	t.buildAssignIndex()
	key := strings.Join(dirs, "\x00")
	t.mu.Lock()
	if out, ok := t.assignMemo[key]; ok {
		t.mu.Unlock()
		return out
	}
	t.mu.Unlock()
	var out []Assignment
	for _, p := range t.PathsUnder(dirs) {
		out = append(out, t.assigns[p]...)
	}
	t.mu.Lock()
	if t.assignMemo == nil {
		t.assignMemo = make(map[string][]Assignment)
	}
	t.assignMemo[key] = out
	t.mu.Unlock()
	return out
}

func (t *SourceTree) buildEnumIndex() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.enums != nil {
		return
	}
	enums := make(map[string][]Enum, len(t.files))
	for p, c := range t.files {
		if !strings.HasSuffix(p, ".h") && !strings.HasSuffix(p, ".def") {
			continue
		}
		es, err := ParseEnums(c)
		if err != nil {
			continue
		}
		if strings.HasSuffix(p, ".def") {
			// X-macro .def files act as enums named after the macro:
			// ELF_RELOC(R_X_32, 1) contributes member R_X_32 to ELF_RELOC.
			if macros, err := ParseDefFile(c); err == nil {
				index := map[string]int{}
				var synth []Enum
				for _, m := range macros {
					if len(m.Args) == 0 {
						continue
					}
					k, ok := index[m.Name]
					if !ok {
						k = len(synth)
						index[m.Name] = k
						synth = append(synth, Enum{Name: m.Name})
					}
					mem := EnumMember{Name: m.Args[0]}
					if len(m.Args) > 1 {
						mem.Value = m.Args[1]
					}
					synth[k].Members = append(synth[k].Members, mem)
				}
				es = append(es, synth...)
			}
		}
		enums[p] = es
	}
	t.enums = enums
}

// EnumsUnder returns all enums declared in headers under dirs, with the
// paths that declare them.
func (t *SourceTree) EnumsUnder(dirs []string) map[string][]Enum {
	t.buildEnumIndex()
	out := make(map[string][]Enum)
	for _, p := range t.PathsUnder(dirs) {
		if es := t.enums[p]; len(es) > 0 {
			out[p] = es
		}
	}
	return out
}

// EnumContaining finds the enum (and declaring path) that has member under
// dirs. Returns ok=false if none does.
func (t *SourceTree) EnumContaining(member string, dirs []string) (enumName, path string, ok bool) {
	t.buildEnumIndex()
	for _, p := range t.PathsUnder(dirs) {
		for _, e := range t.enums[p] {
			if e.Has(member) {
				return e.Name, p, true
			}
		}
	}
	return "", "", false
}

// EnumMembers returns the members of the named enum found under dirs
// (first declaration wins).
func (t *SourceTree) EnumMembers(enumName string, dirs []string) []string {
	t.buildEnumIndex()
	for _, p := range t.PathsUnder(dirs) {
		for _, e := range t.enums[p] {
			if e.Name == enumName {
				return e.MemberNames()
			}
		}
	}
	return nil
}
