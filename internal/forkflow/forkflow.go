// Package forkflow implements the paper's baseline: the traditional
// fork-flow approach of copying the most similar existing backend and
// mechanically renaming it for the new target. The paper forked MIPS for
// all three evaluation targets; so does this implementation. Accuracy is
// then measured by the same pass@1 harness as VEGA's output — which is
// how the baseline lands below 8%: renamed identifiers rarely match the
// new target's actual fixups, relocations, registers or opcodes.
package forkflow

import (
	"strings"

	"vega/internal/corpus"
	"vega/internal/cpp"
	"vega/internal/generate"
)

// DefaultDonor is the backend the paper forks from.
const DefaultDonor = "Mips"

// Fork produces a backend for target by copying donor's implementations
// and renaming the donor's namespace tokens to the target's.
func Fork(c *corpus.Corpus, donor, target string) *generate.Backend {
	d := c.Backends[donor]
	tSpec := corpus.FindTarget(target)
	out := &generate.Backend{Target: target, Seconds: map[string]float64{}}
	for _, ifn := range corpus.AllFuncs() {
		fn, ok := d.Funcs[ifn.Name]
		if !ok {
			continue
		}
		forked := RenameFunction(fn, d.Target, tSpec)
		gf := &generate.Function{
			Name:   ifn.Name,
			Module: string(ifn.Module),
			Target: target,
		}
		for i, st := range cpp.SplitFunction(forked) {
			gf.Statements = append(gf.Statements, generate.Statement{
				Row:   i,
				Text:  st.Text,
				Score: 1.0, // the fork flow asserts everything it copies
			})
		}
		out.Functions = append(out.Functions, gf)
	}
	return out
}

// RenameFunction rewrites a donor function for a new target: namespace
// components of identifiers are substituted in all casings, which is the
// mechanical part of a human fork.
func RenameFunction(fn *cpp.Node, donor, target *corpus.TargetSpec) *cpp.Node {
	out := fn.Clone()
	ren := renamer(donor, target)
	rewrite(out, ren)
	return out
}

// renamer maps donor namespace spellings to target spellings.
func renamer(donor, target *corpus.TargetSpec) func(string) string {
	pairs := [][2]string{
		{donor.Name, target.Name},
		{strings.ToUpper(donor.Name), strings.ToUpper(target.Name)},
		{strings.ToLower(donor.Name), strings.ToLower(target.Name)},
		{donor.TdName, target.TdName},
	}
	return func(s string) string {
		for _, p := range pairs {
			if p[0] == "" || p[0] == p[1] {
				continue
			}
			s = strings.ReplaceAll(s, p[0], p[1])
		}
		return s
	}
}

func rewrite(n *cpp.Node, ren func(string) string) {
	switch n.Kind {
	case cpp.KindIdent, cpp.KindQualified, cpp.KindType, cpp.KindFunction, cpp.KindString:
		n.Value = ren(n.Value)
	}
	for _, c := range n.Children {
		rewrite(c, ren)
	}
}
