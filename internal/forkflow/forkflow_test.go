package forkflow

import (
	"strings"
	"testing"

	"vega/internal/corpus"
)

func buildCorpus(t *testing.T) *corpus.Corpus {
	t.Helper()
	c, err := corpus.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestForkCoversDonorFunctions(t *testing.T) {
	c := buildCorpus(t)
	ff := Fork(c, "Mips", "RISCV")
	if len(ff.Functions) != len(c.Backends["Mips"].Funcs) {
		t.Errorf("forked %d functions, donor has %d",
			len(ff.Functions), len(c.Backends["Mips"].Funcs))
	}
	for _, f := range ff.Functions {
		if len(f.Statements) == 0 {
			t.Errorf("%s: empty fork", f.Name)
		}
		if f.Target != "RISCV" {
			t.Errorf("%s: target %q", f.Name, f.Target)
		}
	}
}

func TestForkRenamesNamespaces(t *testing.T) {
	c := buildCorpus(t)
	ff := Fork(c, "Mips", "RISCV")
	reloc := ff.Function("getRelocType")
	if reloc == nil {
		t.Fatal("getRelocType missing")
	}
	text := reloc.Render()
	if strings.Contains(text, "Mips::") || strings.Contains(text, "MIPS") {
		t.Errorf("donor namespace survived the rename:\n%s", text)
	}
	if !strings.Contains(text, "RISCV::") {
		t.Errorf("target namespace missing:\n%s", text)
	}
	// The mechanically renamed fixup names do NOT match RISC-V's actual
	// enum (fixup_RISCV_HI16 vs fixup_riscv_hi20) — the reason the
	// baseline fails pass@1.
	if !strings.Contains(text, "fixup_RISCV_") {
		t.Errorf("expected mechanically renamed fixups:\n%s", text)
	}
}

func TestForkRenamesStrings(t *testing.T) {
	c := buildCorpus(t)
	ff := Fork(c, "Mips", "RISCV")
	cpu := ff.Function("isValidCPU")
	if cpu == nil {
		t.Fatal("isValidCPU missing")
	}
	text := cpu.Render()
	if strings.Contains(text, "mips32r2") {
		t.Errorf("string literal not renamed:\n%s", text)
	}
}

func TestForkedFunctionsParse(t *testing.T) {
	c := buildCorpus(t)
	for _, tgt := range []string{"RISCV", "RI5CY", "XCore"} {
		ff := Fork(c, DefaultDonor, tgt)
		for _, f := range ff.Functions {
			if _, err := f.Parse(); err != nil {
				t.Errorf("%s/%s does not parse: %v", tgt, f.Name, err)
			}
		}
	}
}

func TestForkAllStatementsAsserted(t *testing.T) {
	c := buildCorpus(t)
	ff := Fork(c, DefaultDonor, "XCore")
	for _, f := range ff.Functions {
		for _, s := range f.Statements {
			if s.Score != 1.0 {
				t.Fatalf("%s: fork-flow must assert full confidence", f.Name)
			}
		}
	}
}
