package confidence

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestStatementPureCommon(t *testing.T) {
	// T_k^var empty: CS = has(S_k).
	if got := Statement(5, 5, nil, true); !almost(got, 1) {
		t.Errorf("pure common present = %f, want 1", got)
	}
	if got := Statement(5, 5, nil, false); got != 0 {
		t.Errorf("pure common absent = %f, want 0", got)
	}
}

func TestStatementWithPlaceholder(t *testing.T) {
	// "case SV5:" with 3 tokens, 2 common, one placeholder with N=66.
	got := Statement(2, 3, []int{66}, true)
	want := 2.0/3.0 + 1.0/(3.0*66.0)
	if !almost(got, want) {
		t.Errorf("got %f, want %f", got, want)
	}
	if got >= 1 {
		t.Errorf("placeholder statement must score below 1, got %f", got)
	}
}

func TestStatementFewerChoicesScoreHigher(t *testing.T) {
	few := Statement(2, 3, []int{2}, true)
	many := Statement(2, 3, []int{100}, true)
	if few <= many {
		t.Errorf("N=2 (%f) should beat N=100 (%f)", few, many)
	}
}

func TestStatementZeroChoices(t *testing.T) {
	got := Statement(2, 3, []int{0}, true)
	if !almost(got, 2.0/3.0) {
		t.Errorf("zero candidates must add nothing: %f", got)
	}
}

func TestStatementClamped(t *testing.T) {
	got := Statement(10, 3, []int{1}, true) // degenerate inputs
	if got > 1 {
		t.Errorf("score above 1: %f", got)
	}
	if Statement(1, 0, nil, true) != 0 {
		t.Error("total=0 must score 0")
	}
}

func TestFunctionScore(t *testing.T) {
	if got := Function([]float64{0.8, 0.1, 1}); !almost(got, 0.8) {
		t.Errorf("function score = %f, want first statement's", got)
	}
	if Function(nil) != 0 {
		t.Error("empty function must score 0")
	}
}

func TestLikelyThreshold(t *testing.T) {
	if Likely(0.49) || !Likely(0.5) || !Likely(1) {
		t.Error("threshold boundary wrong")
	}
}

func TestBands(t *testing.T) {
	cases := map[float64]Band{
		1.0:   BandHigh,
		0.995: BandHigh,
		0.99:  BandMid,
		0.5:   BandMid,
		0.49:  BandLow,
		0:     BandLow,
	}
	for score, want := range cases {
		if got := BandOf(score); got != want {
			t.Errorf("BandOf(%f) = %v, want %v", score, got, want)
		}
	}
	if BandHigh.String() == "" || BandMid.String() == "" || BandLow.String() == "" {
		t.Error("bands must render")
	}
}

// Property: scores are always in [0, 1], and absent statements always
// score exactly 0.
func TestStatementRangeProperty(t *testing.T) {
	f := func(common, total uint8, ns []uint8, has bool) bool {
		choices := make([]int, len(ns))
		for i, n := range ns {
			choices[i] = int(n)
		}
		s := Statement(int(common), int(total), choices, has)
		if s < 0 || s > 1 {
			return false
		}
		if !has && s != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// NaN must be rejected explicitly at every surface — not merely fall
// through a failed comparison — and empty score lists stay at 0.
func TestNaNEdgeCases(t *testing.T) {
	nan := math.NaN()
	if Likely(nan) {
		t.Error("Likely(NaN) = true; NaN must never clear the threshold")
	}
	if got := BandOf(nan); got != BandLow {
		t.Errorf("BandOf(NaN) = %v, want BandLow", got)
	}
	if got := Function(nil); got != 0 {
		t.Errorf("Function(nil) = %v, want 0", got)
	}
	if got := Function([]float64{}); got != 0 {
		t.Errorf("Function(empty) = %v, want 0", got)
	}
	if got := Function([]float64{nan, 0.9}); got != 0 {
		t.Errorf("Function([NaN, …]) = %v, want 0", got)
	}
	if got := Function([]float64{0.7, nan}); got != 0.7 {
		t.Errorf("Function ignores later scores: got %v, want 0.7", got)
	}
	// Statement cannot produce NaN from integer inputs, but the clamp is
	// the documented contract: non-finite intermediate results map to 0.
	if got := Statement(3, 4, []int{2}, true); math.IsNaN(got) || got < 0 || got > 1 {
		t.Errorf("Statement returned out-of-range score %v", got)
	}
	if got := Statement(0, 0, nil, true); got != 0 {
		t.Errorf("Statement with total 0 = %v, want 0", got)
	}
}
