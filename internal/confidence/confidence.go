// Package confidence implements VEGA's confidence scoring (Equation 1):
// the score of a statement S_k derived from template T_k is
//
//	CS(S_k) = (|T_k^com|/|T_k| + Σ_{SV∈T_k^var} 1/(|T_k|·N(SV))) · has(S_k)
//
// where |T_k^com| counts common-code tokens, |T_k| all tokens, N(SV) the
// number of possible target-specific values for placeholder SV on this
// target, and has(S_k) is 1 iff the statement exists for the target.
// A statement scoring below Threshold is flagged for manual review; the
// confidence of a whole function is the score of its first statement (the
// function definition line).
package confidence

import "math"

// Threshold is the paper's accuracy threshold: statements scoring below
// it are treated as incorrect (and removed or reviewed).
const Threshold = 0.5

// NaN policy: a score that is NaN (a corrupted model output, a poisoned
// feature ratio) carries no information and must never pass a filter by
// accident. Likely treats NaN as explicitly not-likely, BandOf maps it to
// BandLow, and Statement/Function clamp non-finite results to 0 — the
// same bucket as "maximal uncertainty". Before these guards, NaN reached
// the same outcomes only through the incidental semantics of failed
// float comparisons.

// Statement computes CS(S_k).
//
// common is |T_k^com|, total is |T_k| (common + placeholder slots), and
// choices holds N(SV) for each placeholder of the row on the target at
// hand. A placeholder with no mined candidates (N = 0) contributes zero —
// maximal uncertainty. has reports whether the statement exists in the
// target-specific implementation.
func Statement(common, total int, choices []int, has bool) float64 {
	if !has {
		return 0
	}
	if total <= 0 {
		return 0
	}
	score := float64(common) / float64(total)
	for _, n := range choices {
		if n <= 0 {
			continue
		}
		score += 1 / (float64(total) * float64(n))
	}
	if math.IsNaN(score) || math.IsInf(score, 0) {
		return 0
	}
	if score > 1 {
		score = 1
	}
	return score
}

// Function returns the function-level confidence given its per-statement
// scores: the score of the first statement, which corresponds to the
// function definition line.
func Function(stmtScores []float64) float64 {
	if len(stmtScores) == 0 {
		return 0
	}
	if s := stmtScores[0]; !math.IsNaN(s) {
		return s
	}
	return 0
}

// Likely reports whether a score clears the accuracy threshold. NaN is
// explicitly not likely (not merely by comparison accident).
func Likely(score float64) bool {
	if math.IsNaN(score) {
		return false
	}
	return score >= Threshold
}

// NeedsEscalation is the greedy-first decode policy: a statement decoded
// greedily is re-decoded with beam search when its leading confidence
// score is missing (ok false — the model emitted no confidence bucket,
// maximal uncertainty) or fails Likely (below Threshold, or NaN). Cheap
// decoding for the confident majority, full fidelity for the rest.
func NeedsEscalation(score float64, ok bool) bool {
	return !ok || !Likely(score)
}

// Band buckets a score the way Fig. 8 reports it: "≈1.00" means > 0.99.
type Band int

// Bands.
const (
	BandLow  Band = iota // below threshold
	BandMid              // [Threshold, 0.99]
	BandHigh             // > 0.99 ("≈ 1.00")
)

// BandOf classifies a score. NaN maps to BandLow by policy: an
// uninterpretable score is flagged for review, never trusted.
func BandOf(score float64) Band {
	switch {
	case math.IsNaN(score):
		return BandLow
	case score > 0.99:
		return BandHigh
	case score >= Threshold:
		return BandMid
	default:
		return BandLow
	}
}

func (b Band) String() string {
	switch b {
	case BandHigh:
		return "≈1.00"
	case BandMid:
		return "[0.5,0.99]"
	default:
		return "<0.5"
	}
}
