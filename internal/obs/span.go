package obs

import (
	"context"
	"strconv"
	"sync/atomic"
	"time"
)

// Attr is one key/value pair attached to a span.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// String builds a string attribute.
func String(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int builds an integer attribute.
func Int(k string, v int) Attr { return Attr{Key: k, Value: strconv.Itoa(v)} }

// Float builds a float attribute.
func Float(k string, v float64) Attr {
	return Attr{Key: k, Value: strconv.FormatFloat(v, 'g', -1, 64)}
}

// SpanData is the completed-span record a Sink receives.
type SpanData struct {
	Name   string        `json:"name"`
	ID     uint64        `json:"id"`
	Parent uint64        `json:"parent,omitempty"` // 0 = root
	Start  time.Time     `json:"start"`
	Dur    time.Duration `json:"dur"`
	Attrs  []Attr        `json:"attrs,omitempty"`
}

// Span is one in-flight operation. A nil span (from a nil observer) is
// a no-op; End may be called at most usefully once (later calls are
// ignored), so `defer span.End()` composes with early explicit Ends.
type Span struct {
	o     *Obs
	data  SpanData
	ended atomic.Bool
}

// startSpan allocates and stamps a span; parent 0 means root.
func (o *Obs) startSpan(name string, parent uint64, attrs []Attr) *Span {
	return &Span{o: o, data: SpanData{
		Name:   name,
		ID:     o.ids.Add(1),
		Parent: parent,
		Start:  time.Now(),
		Attrs:  attrs,
	}}
}

// StartSpan opens a root span outside any context (Stage 1 runs before
// a context exists). Nil-safe: a nil observer returns a nil span.
func (o *Obs) StartSpan(name string, attrs ...Attr) *Span {
	if o == nil {
		return nil
	}
	return o.startSpan(name, 0, attrs)
}

// Start opens a span under the observer threaded through ctx, parented
// to the nearest enclosing span, and returns a derived context carrying
// the new span for its children. Without an observer it returns ctx
// unchanged and a nil (no-op) span — no allocation.
func Start(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	o := From(ctx)
	if o == nil {
		return ctx, nil
	}
	parent, _ := ctx.Value(spanCtxKey{}).(uint64)
	s := o.startSpan(name, parent, attrs)
	return context.WithValue(ctx, spanCtxKey{}, s.data.ID), s
}

// SetAttr appends attributes; must precede End. Nil-safe.
func (s *Span) SetAttr(attrs ...Attr) {
	if s == nil || s.ended.Load() {
		return
	}
	s.data.Attrs = append(s.data.Attrs, attrs...)
}

// End stamps the duration and emits the span to the sink; nil-safe and
// idempotent.
func (s *Span) End() {
	if s == nil || s.ended.Swap(true) {
		return
	}
	s.data.Dur = time.Since(s.data.Start)
	s.o.sink.Span(s.data)
}
