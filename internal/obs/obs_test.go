package obs

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// TestConcurrentCounters hammers one counter, one gauge, and one
// histogram from many goroutines; run under -race this proves the hot
// path is data-race-free, and the totals prove no increment is lost.
func TestConcurrentCounters(t *testing.T) {
	o := New(nil)
	c := o.Counter("c")
	g := o.Gauge("g")
	h := o.Histogram("h")
	const workers, per = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				c.Add(0.5)
				g.Set(float64(w))
				h.Observe(0.01)
			}
		}(w)
	}
	wg.Wait()
	if got, want := c.Value(), float64(workers*per)*1.5; got != want {
		t.Errorf("counter = %v, want %v", got, want)
	}
	if h.Count() != workers*per {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*per)
	}
	if math.Abs(h.Sum()-float64(workers*per)*0.01) > 1e-6 {
		t.Errorf("histogram sum = %v", h.Sum())
	}
	if gv := g.Value(); gv < 0 || gv >= workers {
		t.Errorf("gauge = %v, want a worker index", gv)
	}
}

// TestInstrumentIdentity: the same name must return the same instrument.
func TestInstrumentIdentity(t *testing.T) {
	o := New(nil)
	if o.Counter("x") != o.Counter("x") {
		t.Error("counter identity lost")
	}
	o.Counter("x").Add(2)
	if v := o.Counter("x").Value(); v != 2 {
		t.Errorf("value = %v", v)
	}
}

// TestNilObserverInert: every operation on a nil observer and its nil
// instruments must be a no-op with zero allocations — the overhead
// contract the Stage 3 hot path depends on.
func TestNilObserverInert(t *testing.T) {
	var o *Obs
	c, g, h := o.Counter("c"), o.Gauge("g"), o.Histogram("h")
	allocs := testing.AllocsPerRun(100, func() {
		c.Add(1)
		g.Set(2)
		h.Observe(3)
		sp := o.StartSpan("s")
		sp.SetAttr(String("k", "v"))
		sp.End()
	})
	if allocs != 0 {
		t.Errorf("nil-observer path allocates %v per op, want 0", allocs)
	}
	if o.Snapshot() != nil {
		t.Error("nil snapshot must be nil")
	}
	o.Flush()
	if err := o.Close(); err != nil {
		t.Errorf("nil close: %v", err)
	}
	ctx := With(context.Background(), nil)
	if From(ctx) != nil {
		t.Error("With(nil) must not install an observer")
	}
	ctx2, sp := Start(ctx, "s")
	if ctx2 != ctx || sp != nil {
		t.Error("Start without observer must be inert")
	}
}

// TestSpanNesting checks parent links and End order: children end
// before parents, and each child records its parent's ID.
func TestSpanNesting(t *testing.T) {
	mem := &MemSink{}
	o := New(mem)
	ctx := With(context.Background(), o)
	ctx, root := Start(ctx, "root")
	cctx, child := Start(ctx, "child")
	_, grand := Start(cctx, "grandchild")
	grand.End()
	child.End()
	// A sibling of child, still under root.
	_, sib := Start(ctx, "sibling")
	sib.End()
	root.End()

	spans := mem.Spans()
	names := make([]string, len(spans))
	byName := map[string]SpanData{}
	for i, s := range spans {
		names[i] = s.Name
		byName[s.Name] = s
	}
	want := []string{"grandchild", "child", "sibling", "root"}
	if len(names) != len(want) {
		t.Fatalf("spans = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("end order = %v, want %v", names, want)
		}
	}
	if byName["root"].Parent != 0 {
		t.Error("root must be parentless")
	}
	if byName["child"].Parent != byName["root"].ID {
		t.Error("child not parented to root")
	}
	if byName["grandchild"].Parent != byName["child"].ID {
		t.Error("grandchild not parented to child")
	}
	if byName["sibling"].Parent != byName["root"].ID {
		t.Error("sibling not parented to root")
	}
	if byName["root"].Dur <= 0 {
		t.Error("root duration not stamped")
	}
}

// TestSpanEndIdempotent: double End emits once.
func TestSpanEndIdempotent(t *testing.T) {
	mem := &MemSink{}
	o := New(mem)
	sp := o.StartSpan("once")
	sp.End()
	sp.End()
	if n := len(mem.Spans()); n != 1 {
		t.Errorf("span emitted %d times", n)
	}
}

// TestSnapshotAndMemSink: Flush delivers a sorted, complete snapshot.
func TestSnapshotAndMemSink(t *testing.T) {
	mem := &MemSink{}
	o := New(mem)
	o.Counter("b.count").Add(3)
	o.Gauge("a.gauge").Set(1.5)
	o.Histogram("c.hist").Observe(0.2)
	o.Flush()
	ms := mem.Metrics()
	if len(ms) != 3 {
		t.Fatalf("snapshot = %d metrics", len(ms))
	}
	for i := 1; i < len(ms); i++ {
		if ms[i-1].Name >= ms[i].Name {
			t.Errorf("snapshot not sorted: %q before %q", ms[i-1].Name, ms[i].Name)
		}
	}
	if m, ok := mem.Metric("b.count"); !ok || m.Value != 3 || m.Kind != "counter" {
		t.Errorf("b.count = %+v, ok=%v", m, ok)
	}
	if m, ok := mem.Metric("c.hist"); !ok || m.Count != 1 || len(m.Counts) != len(m.Bounds)+1 {
		t.Errorf("c.hist = %+v, ok=%v", m, ok)
	}
}

// TestHistogramBuckets: observations land in the right buckets,
// including the overflow slot.
func TestHistogramBuckets(t *testing.T) {
	o := New(nil)
	h := o.Histogram("h", 1, 10)
	for _, v := range []float64{0.5, 1, 5, 100} {
		h.Observe(v)
	}
	m := h.metric()
	want := []uint64{2, 1, 1} // ≤1: {0.5, 1}; ≤10: {5}; overflow: {100}
	for i, w := range want {
		if m.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (all: %v)", i, m.Counts[i], w, m.Counts)
		}
	}
	if m.Count != 4 {
		t.Errorf("count = %d", m.Count)
	}
}

// TestJSONLSink writes spans and a snapshot, then parses the file back.
func TestJSONLSink(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.jsonl")
	sink, err := NewJSONLSink(path)
	if err != nil {
		t.Fatal(err)
	}
	o := New(sink)
	sp := o.StartSpan("stage/test", String("target", "RISCV"))
	sp.End()
	o.Counter("gen.functions").Add(7)
	if err := o.Close(); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var spans, metrics int
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad line %q: %v", sc.Text(), err)
		}
		switch rec["type"] {
		case "span":
			spans++
			if rec["name"] != "stage/test" {
				t.Errorf("span name = %v", rec["name"])
			}
			attrs, _ := rec["attrs"].(map[string]any)
			if attrs["target"] != "RISCV" {
				t.Errorf("span attrs = %v", rec["attrs"])
			}
		case "metric":
			metrics++
			if rec["name"] != "gen.functions" || rec["value"].(float64) != 7 {
				t.Errorf("metric = %v", rec)
			}
		default:
			t.Errorf("unknown record type %v", rec["type"])
		}
	}
	if spans != 1 || metrics != 1 {
		t.Errorf("file has %d spans, %d metrics", spans, metrics)
	}
}

// TestJSONLSinkFlushMakesLinesDurable proves the crash-survival contract:
// after an explicit Flush, every line written so far is readable from the
// file even though the sink is still open (nothing stuck in the buffer).
func TestJSONLSinkFlushMakesLinesDurable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.jsonl")
	sink, err := NewJSONLSink(path)
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	o := New(sink)
	for i := 0; i < 10; i++ {
		o.StartSpan("flush/test").End()
	}
	o.Flush() // metric snapshot line(s)
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := 0
	sc := bufio.NewScanner(bytes.NewReader(raw))
	for sc.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad line %q: %v", sc.Text(), err)
		}
		lines++
	}
	if lines < 10 {
		t.Errorf("only %d lines durable before Close, want >= 10", lines)
	}
}

// TestJSONLSinkPeriodicFlush starts the background flusher and waits for
// it to push buffered spans without any explicit Flush call.
func TestJSONLSinkPeriodicFlush(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.jsonl")
	sink, err := NewJSONLSink(path)
	if err != nil {
		t.Fatal(err)
	}
	sink.FlushEvery(5 * time.Millisecond)
	sink.FlushEvery(5 * time.Millisecond) // second start is a no-op
	o := New(sink)
	o.StartSpan("periodic/test").End()

	deadline := time.Now().Add(2 * time.Second)
	for {
		raw, _ := os.ReadFile(path)
		if len(raw) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("periodic flusher never made the span durable")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	// Close again is harmless for the flusher bookkeeping (file close
	// errors are expected and ignored here).
	sink.Close()
}

// TestObsFlushEvery snapshots metrics on a ticker until stopped.
func TestObsFlushEvery(t *testing.T) {
	mem := &MemSink{}
	o := New(mem)
	o.Counter("periodic.count").Add(3)
	stop := o.FlushEvery(5 * time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for {
		if m, ok := mem.Metric("periodic.count"); ok && m.Value == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("FlushEvery never snapshotted")
		}
		time.Sleep(2 * time.Millisecond)
	}
	stop()
	stop() // idempotent

	// Nil observer and disabled interval both return working no-ops.
	var nilObs *Obs
	nilObs.FlushEvery(time.Millisecond)()
	New(nil).FlushEvery(0)()
}

// TestMultiSink fans out to every sink.
func TestMultiSink(t *testing.T) {
	a, b := &MemSink{}, &MemSink{}
	o := New(Multi(a, b))
	o.StartSpan("s").End()
	o.Counter("c").Inc()
	o.Flush()
	for i, m := range []*MemSink{a, b} {
		if len(m.Spans()) != 1 {
			t.Errorf("sink %d spans = %d", i, len(m.Spans()))
		}
		if _, ok := m.Metric("c"); !ok {
			t.Errorf("sink %d missing metric", i)
		}
	}
}

// BenchmarkCounterAdd measures the installed-observer hot path.
func BenchmarkCounterAdd(b *testing.B) {
	c := New(nil).Counter("c")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

// BenchmarkNilCounterAdd measures the disabled (nil) hot path.
func BenchmarkNilCounterAdd(b *testing.B) {
	var o *Obs
	c := o.Counter("c")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}
