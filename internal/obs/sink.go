package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"
)

// Sink receives completed spans (as they end, from any goroutine) and
// metric snapshots (on Flush/Close). Implementations must be safe for
// concurrent use.
type Sink interface {
	Span(SpanData)
	MetricSnapshot([]Metric)
	Close() error
}

// NopSink discards everything — the default sink, so an observer can be
// installed for Snapshot-based tests without writing anywhere.
type NopSink struct{}

func (NopSink) Span(SpanData)           {}
func (NopSink) MetricSnapshot([]Metric) {}
func (NopSink) Close() error            { return nil }

// MemSink records spans and the latest metric snapshot in memory, for
// tests and the bench harness. The zero value is ready to use.
type MemSink struct {
	mu    sync.Mutex
	spans []SpanData
	last  []Metric
}

func (m *MemSink) Span(s SpanData) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.spans = append(m.spans, s)
}

func (m *MemSink) MetricSnapshot(ms []Metric) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.last = append([]Metric{}, ms...)
}

func (m *MemSink) Close() error { return nil }

// Spans returns the completed spans in End order.
func (m *MemSink) Spans() []SpanData {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]SpanData{}, m.spans...)
}

// Metrics returns the latest snapshot (nil before the first Flush).
func (m *MemSink) Metrics() []Metric {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Metric{}, m.last...)
}

// Metric looks a name up in the latest snapshot.
func (m *MemSink) Metric(name string) (Metric, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, mt := range m.last {
		if mt.Name == name {
			return mt, true
		}
	}
	return Metric{}, false
}

// JSONLSink writes one JSON object per line: spans as they end
// ("type":"span") and one line per metric at each snapshot
// ("type":"metric"), machine-readable by anything that reads JSON lines.
//
// Writes are buffered; Flush (or the periodic flusher started with
// FlushEvery) pushes buffered lines to the OS so a long-running process
// that crashes loses at most one flush interval of telemetry instead of
// everything since startup. Close flushes and stops any flusher.
type JSONLSink struct {
	mu  sync.Mutex
	f   *os.File
	w   *bufio.Writer
	enc *json.Encoder
	err error

	stopFlush chan struct{}
	flushDone chan struct{}
}

// NewJSONLSink creates (truncating) the file at path.
func NewJSONLSink(path string) (*JSONLSink, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: jsonl sink: %w", err)
	}
	w := bufio.NewWriter(f)
	return &JSONLSink{f: f, w: w, enc: json.NewEncoder(w)}, nil
}

// Flush writes buffered lines through to the OS. It is safe from any
// goroutine and a no-op when nothing is buffered.
func (j *JSONLSink) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.flushLocked()
}

func (j *JSONLSink) flushLocked() error {
	if ferr := j.w.Flush(); ferr != nil && j.err == nil {
		j.err = ferr
	}
	return j.err
}

// FlushEvery starts a background flusher that calls Flush every interval
// until Close. Starting it twice is a no-op; a non-positive interval
// disables it. Long-running processes (vega-serve) use this so telemetry
// survives a crash between snapshots.
func (j *JSONLSink) FlushEvery(interval time.Duration) {
	if interval <= 0 {
		return
	}
	j.mu.Lock()
	if j.stopFlush != nil {
		j.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	j.stopFlush, j.flushDone = stop, done
	j.mu.Unlock()

	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				j.Flush()
			case <-stop:
				return
			}
		}
	}()
}

// jsonlSpan flattens SpanData for the file format: duration in seconds,
// attrs as a plain object.
type jsonlSpan struct {
	Type   string            `json:"type"`
	Name   string            `json:"name"`
	ID     uint64            `json:"id"`
	Parent uint64            `json:"parent,omitempty"`
	Start  string            `json:"start"`
	DurS   float64           `json:"dur_s"`
	Attrs  map[string]string `json:"attrs,omitempty"`
}

type jsonlMetric struct {
	Type string `json:"type"`
	Metric
}

func (j *JSONLSink) Span(s SpanData) {
	rec := jsonlSpan{
		Type:   "span",
		Name:   s.Name,
		ID:     s.ID,
		Parent: s.Parent,
		Start:  s.Start.Format("2006-01-02T15:04:05.000000Z07:00"),
		DurS:   s.Dur.Seconds(),
	}
	if len(s.Attrs) > 0 {
		rec.Attrs = make(map[string]string, len(s.Attrs))
		for _, a := range s.Attrs {
			rec.Attrs[a.Key] = a.Value
		}
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err == nil {
		j.err = j.enc.Encode(rec)
	}
}

func (j *JSONLSink) MetricSnapshot(ms []Metric) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for _, m := range ms {
		if j.err != nil {
			return
		}
		j.err = j.enc.Encode(jsonlMetric{Type: "metric", Metric: m})
	}
}

// Close stops the periodic flusher (if any), flushes buffered lines, and
// closes the file, returning the first write error if any.
func (j *JSONLSink) Close() error {
	j.mu.Lock()
	stop, done := j.stopFlush, j.flushDone
	j.stopFlush, j.flushDone = nil, nil
	j.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.flushLocked()
	cerr := j.f.Close()
	if j.err != nil {
		return j.err
	}
	return cerr
}

// multiSink fans every event out to several sinks in order.
type multiSink []Sink

// Multi bundles sinks (e.g. in-memory for the harness plus JSONL for
// the operator) into one.
func Multi(sinks ...Sink) Sink { return multiSink(sinks) }

func (m multiSink) Span(s SpanData) {
	for _, sk := range m {
		sk.Span(s)
	}
}

func (m multiSink) MetricSnapshot(ms []Metric) {
	for _, sk := range m {
		sk.MetricSnapshot(ms)
	}
}

func (m multiSink) Close() error {
	var first error
	for _, sk := range m {
		if err := sk.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
