package obs

import (
	"math"
	"sync/atomic"
)

// Metric is one instrument's snapshotted value. Value holds the counter
// total, the gauge's last set value, or the histogram's sum; Count and
// the bucket slices are histogram-only.
type Metric struct {
	Name   string    `json:"name"`
	Kind   string    `json:"kind"` // "counter", "gauge", "histogram"
	Value  float64   `json:"value"`
	Count  uint64    `json:"count,omitempty"`
	Bounds []float64 `json:"bounds,omitempty"`
	Counts []uint64  `json:"counts,omitempty"`
}

// addFloat accumulates v into a float64 stored as atomic bits — the
// standard mutex-free CAS loop.
func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Counter is a monotonic float total. The zero value is usable; a nil
// counter (from a nil observer) is a no-op.
type Counter struct {
	name string
	bits atomic.Uint64
}

// Add accumulates v; nil-safe and mutex-free.
func (c *Counter) Add(v float64) {
	if c == nil || v == 0 {
		return
	}
	addFloat(&c.bits, v)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value reads the current total; nil-safe.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

func (c *Counter) metric() Metric {
	return Metric{Name: c.name, Kind: "counter", Value: c.Value()}
}

// Gauge is a last-write-wins float value; nil-safe like Counter.
type Gauge struct {
	name string
	bits atomic.Uint64
}

// Set records v; nil-safe and mutex-free.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value reads the last set value (zero before any Set); nil-safe.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

func (g *Gauge) metric() Metric {
	return Metric{Name: g.name, Kind: "gauge", Value: g.Value()}
}

// DefaultBuckets suit durations in seconds: half a millisecond up to a
// minute, roughly 2.5× apart, with an implicit overflow bucket.
var DefaultBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// Histogram accumulates observations into fixed buckets plus a running
// sum and count; every operation is atomic and mutex-free.
type Histogram struct {
	name    string
	bounds  []float64 // ascending upper limits; counts has one extra overflow slot
	counts  []atomic.Uint64
	sumBits atomic.Uint64
	n       atomic.Uint64
}

func newHistogram(name string, bounds []float64) *Histogram {
	return &Histogram{name: name, bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records v into its bucket; nil-safe and mutex-free.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	addFloat(&h.sumBits, v)
	h.n.Add(1)
}

// Sum reads the accumulated total; nil-safe.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Count reads the observation count; nil-safe.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

func (h *Histogram) metric() Metric {
	m := Metric{
		Name:   h.name,
		Kind:   "histogram",
		Value:  h.Sum(),
		Count:  h.Count(),
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
	}
	for i := range h.counts {
		m.Counts[i] = h.counts[i].Load()
	}
	return m
}
