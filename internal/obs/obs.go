// Package obs is the pipeline's zero-dependency observability layer:
// hierarchical spans, named counters/gauges/histograms, and pluggable
// sinks (no-op, JSON-lines file, in-memory).
//
// The overhead contract every instrument honors: when no observer is
// installed, every call degrades to a nil-receiver no-op — no
// allocation, no atomic traffic, no lock contention — so the hot Stage 3
// decode path costs the same with observability compiled in but
// disabled. With an observer installed, the hot-path operations
// (Counter.Add, Gauge.Set, Histogram.Observe) are mutex-free: plain
// atomics with a CAS loop for float accumulation. Locks appear only on
// instrument creation (once per name) and in sinks (span completion,
// snapshot), which are off the per-token path.
//
//	o := obs.New(sink)                     // nil sink → NopSink
//	ctx = obs.With(ctx, o)                 // thread through call trees
//	ctx, span := obs.Start(ctx, "stage2/fit", obs.Int("samples", n))
//	defer span.End()
//	o.Counter("fit.epochs").Inc()          // cache the instrument on hot paths
//	o.Close()                              // flush metric snapshot + close sink
package obs

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Obs is an observer: a metric registry plus a span emitter, bound to
// one Sink. A nil *Obs is valid everywhere and disables everything.
type Obs struct {
	sink Sink
	ids  atomic.Uint64

	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// New builds an observer writing to sink; a nil sink means NopSink, so
// metrics still aggregate and Snapshot still works, but spans go nowhere.
func New(sink Sink) *Obs {
	if sink == nil {
		sink = NopSink{}
	}
	return &Obs{
		sink:     sink,
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns (creating once) the named counter. Nil-safe: a nil
// observer returns a nil counter whose methods are no-ops.
func (o *Obs) Counter(name string) *Counter {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	c, ok := o.counters[name]
	if !ok {
		c = &Counter{name: name}
		o.counters[name] = c
	}
	return c
}

// Gauge returns (creating once) the named gauge; nil-safe like Counter.
func (o *Obs) Gauge(name string) *Gauge {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	g, ok := o.gauges[name]
	if !ok {
		g = &Gauge{name: name}
		o.gauges[name] = g
	}
	return g
}

// Histogram returns (creating once) the named histogram. The optional
// bounds are ascending bucket upper limits; omitted, DefaultBuckets
// (sub-millisecond to a minute, for durations in seconds) apply. Bounds
// are fixed at first creation; nil-safe like Counter.
func (o *Obs) Histogram(name string, bounds ...float64) *Histogram {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	h, ok := o.hists[name]
	if !ok {
		if len(bounds) == 0 {
			bounds = DefaultBuckets
		}
		h = newHistogram(name, bounds)
		o.hists[name] = h
	}
	return h
}

// Snapshot returns every instrument's current value, sorted by name.
// Nil-safe: a nil observer snapshots to nil.
func (o *Obs) Snapshot() []Metric {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]Metric, 0, len(o.counters)+len(o.gauges)+len(o.hists))
	for _, c := range o.counters {
		out = append(out, c.metric())
	}
	for _, g := range o.gauges {
		out = append(out, g.metric())
	}
	for _, h := range o.hists {
		out = append(out, h.metric())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Flush pushes a metric snapshot to the sink; spans are emitted as they
// end and need no flushing.
func (o *Obs) Flush() {
	if o == nil {
		return
	}
	o.sink.MetricSnapshot(o.Snapshot())
}

// FlushEvery snapshots metrics to the sink every interval until the
// returned stop function is called (idempotent). Nil-safe and disabled
// for non-positive intervals, both returning a no-op stop. Long-running
// processes use this so a crash loses at most one interval of metrics
// rather than everything since startup.
func (o *Obs) FlushEvery(interval time.Duration) (stop func()) {
	if o == nil || interval <= 0 {
		return func() {}
	}
	quit := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				o.Flush()
			case <-quit:
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(quit)
			<-done
		})
	}
}

// Close flushes a final metric snapshot and closes the sink.
func (o *Obs) Close() error {
	if o == nil {
		return nil
	}
	o.Flush()
	return o.sink.Close()
}

// ctxKey carries the observer; spanCtxKey the current span's ID, so
// Start can parent-link nested spans.
type ctxKey struct{}
type spanCtxKey struct{}

// With threads an observer through a context. A nil observer returns
// ctx unchanged, keeping the disabled path allocation-free.
func With(ctx context.Context, o *Obs) context.Context {
	if o == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, o)
}

// From recovers the observer threaded by With; nil when absent.
func From(ctx context.Context) *Obs {
	o, _ := ctx.Value(ctxKey{}).(*Obs)
	return o
}
