package s1cache

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"vega/internal/corpus"
	"vega/internal/feature"
	"vega/internal/template"
)

// testSnapshot builds a small hand-rolled snapshot exercising every
// serialized field: patterns with placeholders, per-target token maps,
// properties, and per-target feature values.
func testSnapshot() *Snapshot {
	ft := &template.FunctionTemplate{
		Name: "getRelocType", Module: "EMI",
		Targets: []string{"ARM", "MIPS"},
		Rows: []template.Row{
			{
				Pattern: []template.Elem{
					{Text: "return"},
					{Var: true, Text: "SV0", ID: 0},
					{Text: ";"},
				},
				PerTarget: map[string][]string{
					"ARM":  {"return", "R_ARM_NONE", ";"},
					"MIPS": {"return", "R_MIPS_NONE", ";"},
				},
			},
		},
		NumVars: 1,
	}
	tf := &feature.TemplateFeatures{
		FT: ft,
		Props: []feature.Property{
			{Name: "RelocNone", Kind: feature.Dependent, EnumName: "Fixups"},
		},
		VarProps: map[int][]int{0: {0}},
		Targets: map[string]*feature.TargetFeatures{
			"ARM": {
				Target: "ARM",
				Bools:  map[string]feature.BoolVal{"hasVI": {Value: true, UpdateSite: "ARM.td"}},
				Deps: map[string]feature.DepInfo{
					"RelocNone": {Candidates: []string{"R_ARM_NONE"}, UpdateSite: "ARM.td"},
				},
			},
		},
	}
	return &Snapshot{Groups: []Group{
		{FuncName: "getRelocType", Targets: []string{"ARM", "MIPS"}, FT: ft, TF: tf},
	}}
}

func TestStoreLoadRoundTrip(t *testing.T) {
	c := &Cache{Dir: t.TempDir()}
	snap := testSnapshot()
	if err := c.Store("k1", snap); err != nil {
		t.Fatal(err)
	}
	got, err := c.Load("k1")
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Groups) != 1 {
		t.Fatalf("groups = %d", len(got.Groups))
	}
	g := got.Groups[0]
	if g.TF.FT != g.FT {
		t.Fatal("TF.FT not relinked to the loaded template")
	}
	if !reflect.DeepEqual(g.FT, snap.Groups[0].FT) {
		t.Fatalf("template round-trip mismatch:\n got %+v\nwant %+v", g.FT, snap.Groups[0].FT)
	}
	if !reflect.DeepEqual(g.TF.Props, snap.Groups[0].TF.Props) ||
		!reflect.DeepEqual(g.TF.Targets, snap.Groups[0].TF.Targets) ||
		!reflect.DeepEqual(g.TF.VarProps, snap.Groups[0].TF.VarProps) {
		t.Fatal("feature round-trip mismatch")
	}
	// Store must not have mutated the caller's snapshot (the TF.FT
	// detach works on a shallow copy).
	if snap.Groups[0].TF.FT != snap.Groups[0].FT {
		t.Fatal("Store detached the caller's TF.FT pointer")
	}
}

func TestLoadMiss(t *testing.T) {
	c := &Cache{Dir: t.TempDir()}
	if _, err := c.Load("nope"); !errors.Is(err, ErrMiss) {
		t.Fatalf("err = %v, want ErrMiss", err)
	}
}

func TestLoadCorrupt(t *testing.T) {
	dir := t.TempDir()
	c := &Cache{Dir: dir}
	if err := c.Store("k", testSnapshot()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "k.s1")
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"payload bit flip", func(b []byte) []byte {
			b[headerLen+1] ^= 0x40
			return b
		}},
		{"truncated payload", func(b []byte) []byte {
			return b[:len(b)-3]
		}},
		{"truncated header", func(b []byte) []byte {
			return b[:headerLen-5]
		}},
		{"bad magic", func(b []byte) []byte {
			b[0] = 'X'
			return b
		}},
		{"wrong version", func(b []byte) []byte {
			b[11] = 99
			return b
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := os.WriteFile(path, tc.mut(append([]byte{}, pristine...)), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := c.Load("k"); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("err = %v, want ErrCorrupt", err)
			}
		})
	}

	// Overwriting with a fresh Store heals the entry.
	if err := c.Store("k", testSnapshot()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Load("k"); err != nil {
		t.Fatalf("load after re-store: %v", err)
	}
}

func TestKeySensitivity(t *testing.T) {
	c, err := corpus.Build()
	if err != nil {
		t.Fatal(err)
	}
	base := KeyConfig{Seed: 1, TrainFraction: 0.75}
	k1 := Key(c, base)
	if k2 := Key(c, base); k2 != k1 {
		t.Fatal("key not deterministic for identical inputs")
	}
	if k := Key(c, KeyConfig{Seed: 2, TrainFraction: 0.75}); k == k1 {
		t.Fatal("seed change did not change the key")
	}
	if k := Key(c, KeyConfig{Seed: 1, TrainFraction: 0.5}); k == k1 {
		t.Fatal("train-fraction change did not change the key")
	}
	if k := Key(c, KeyConfig{Seed: 1, TrainFraction: 0.75, SplitByBackend: true}); k == k1 {
		t.Fatal("split-mode change did not change the key")
	}
	c2, err := corpus.Build()
	if err != nil {
		t.Fatal(err)
	}
	if k := Key(c2, base); k != k1 {
		t.Fatal("key differs across identical corpus builds")
	}
	c2.Tree.Add("lib/Target/ARM/Extra.td", "def Extra;")
	if k := Key(c2, base); k == k1 {
		t.Fatal("source-tree change did not change the key")
	}
}
