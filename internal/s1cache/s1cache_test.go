package s1cache

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"vega/internal/corpus"
	"vega/internal/feature"
	"vega/internal/template"
)

// testEntry builds a small hand-rolled group entry exercising every
// serialized field: patterns with placeholders, per-target token maps,
// properties, and per-target feature values.
func testEntry() *GroupEntry {
	ft := &template.FunctionTemplate{
		Name: "getRelocType", Module: "EMI",
		Targets: []string{"ARM", "MIPS"},
		Rows: []template.Row{
			{
				Pattern: []template.Elem{
					{Text: "return"},
					{Var: true, Text: "SV0", ID: 0},
					{Text: ";"},
				},
				PerTarget: map[string][]string{
					"ARM":  {"return", "R_ARM_NONE", ";"},
					"MIPS": {"return", "R_MIPS_NONE", ";"},
				},
			},
		},
		NumVars: 1,
	}
	tf := &feature.TemplateFeatures{
		FT: ft,
		Props: []feature.Property{
			{Name: "RelocNone", Kind: feature.Dependent, EnumName: "Fixups"},
		},
		VarProps: map[int][]int{0: {0}},
		Targets: map[string]*feature.TargetFeatures{
			"ARM": {
				Target: "ARM",
				Bools:  map[string]feature.BoolVal{"hasVI": {Value: true, UpdateSite: "ARM.td"}},
				Deps: map[string]feature.DepInfo{
					"RelocNone": {Candidates: []string{"R_ARM_NONE"}, UpdateSite: "ARM.td"},
				},
			},
		},
	}
	return &GroupEntry{FuncName: "getRelocType", Targets: []string{"ARM", "MIPS"}, FT: ft, TF: tf}
}

func TestGroupStoreLoadRoundTrip(t *testing.T) {
	c := &Cache{Dir: t.TempDir()}
	e := testEntry()
	if err := c.StoreGroup("k1", e); err != nil {
		t.Fatal(err)
	}
	got, err := c.LoadGroup("k1")
	if err != nil {
		t.Fatal(err)
	}
	if got.FuncName != e.FuncName || !reflect.DeepEqual(got.Targets, e.Targets) {
		t.Fatalf("identity round-trip mismatch: %+v", got)
	}
	if got.TF.FT != got.FT {
		t.Fatal("TF.FT not relinked to the loaded template")
	}
	if !reflect.DeepEqual(got.FT, e.FT) {
		t.Fatalf("template round-trip mismatch:\n got %+v\nwant %+v", got.FT, e.FT)
	}
	if !reflect.DeepEqual(got.TF.Props, e.TF.Props) ||
		!reflect.DeepEqual(got.TF.Targets, e.TF.Targets) ||
		!reflect.DeepEqual(got.TF.VarProps, e.TF.VarProps) {
		t.Fatal("feature round-trip mismatch")
	}
	// StoreGroup must not have mutated the caller's entry (the TF.FT
	// detach works on a shallow copy).
	if e.TF.FT != e.FT {
		t.Fatal("StoreGroup detached the caller's TF.FT pointer")
	}
}

func TestLoadGroupMiss(t *testing.T) {
	c := &Cache{Dir: t.TempDir()}
	if _, err := c.LoadGroup("nope"); !errors.Is(err, ErrMiss) {
		t.Fatalf("err = %v, want ErrMiss", err)
	}
	if _, err := c.LoadManifest("nope"); !errors.Is(err, ErrMiss) {
		t.Fatalf("manifest err = %v, want ErrMiss", err)
	}
}

func TestLoadGroupCorrupt(t *testing.T) {
	dir := t.TempDir()
	c := &Cache{Dir: dir}
	if err := c.StoreGroup("k", testEntry()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "k.s1g")
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"payload bit flip", func(b []byte) []byte {
			b[headerLen+1] ^= 0x40
			return b
		}},
		{"truncated payload", func(b []byte) []byte {
			return b[:len(b)-3]
		}},
		{"truncated header", func(b []byte) []byte {
			return b[:headerLen-5]
		}},
		{"bad magic", func(b []byte) []byte {
			b[0] = 'X'
			return b
		}},
		{"wrong version", func(b []byte) []byte {
			b[11] = 99
			return b
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := os.WriteFile(path, tc.mut(append([]byte{}, pristine...)), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := c.LoadGroup("k"); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("err = %v, want ErrCorrupt", err)
			}
		})
	}

	// Overwriting with a fresh StoreGroup heals the entry.
	if err := c.StoreGroup("k", testEntry()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.LoadGroup("k"); err != nil {
		t.Fatalf("load after re-store: %v", err)
	}
}

func TestManifestRoundTripAndGC(t *testing.T) {
	c := &Cache{Dir: t.TempDir()}
	if err := c.StoreGroup("g1", testEntry()); err != nil {
		t.Fatal(err)
	}
	if err := c.StoreGroup("g2", testEntry()); err != nil {
		t.Fatal(err)
	}
	m1 := &Manifest{Groups: []ManifestGroup{
		{FuncName: "getRelocType", Key: "g1"},
		{FuncName: "other", Key: "g2"},
	}}
	if err := c.StoreManifest("fleet", m1); err != nil {
		t.Fatal(err)
	}
	got, err := c.LoadManifest("fleet")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m1) {
		t.Fatalf("manifest round-trip mismatch: %+v", got)
	}

	// A new manifest for the same fleet that drops g2 (re-keyed group)
	// garbage-collects the superseded entry but keeps the live one.
	if err := c.StoreGroup("g3", testEntry()); err != nil {
		t.Fatal(err)
	}
	m2 := &Manifest{Groups: []ManifestGroup{
		{FuncName: "getRelocType", Key: "g1"},
		{FuncName: "other", Key: "g3"},
	}}
	if err := c.StoreManifest("fleet", m2); err != nil {
		t.Fatal(err)
	}
	if _, err := c.LoadGroup("g2"); !errors.Is(err, ErrMiss) {
		t.Fatalf("superseded entry not collected: %v", err)
	}
	if _, err := c.LoadGroup("g1"); err != nil {
		t.Fatalf("live entry collected: %v", err)
	}
	if _, err := c.LoadGroup("g3"); err != nil {
		t.Fatalf("new entry collected: %v", err)
	}
}

// TestGroupKeySensitivity pins the incremental-invalidation contract:
// a group's key moves only when that group's own inputs move.
func TestGroupKeySensitivity(t *testing.T) {
	c, err := corpus.Build()
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, spec := range c.Targets {
		names = append(names, spec.Name)
	}
	core, byTarget := TreeHashes(c.Tree, names)
	fn, ok := corpus.FuncByName("getRelocType")
	if !ok {
		t.Fatal("no getRelocType")
	}
	gs := c.GroupSource(fn)
	k1 := GroupKey(fn.Name, string(fn.Module), gs.Targets, gs.Sources, byTarget, core)
	if k2 := GroupKey(fn.Name, string(fn.Module), gs.Targets, gs.Sources, byTarget, core); k2 != k1 {
		t.Fatal("group key not deterministic")
	}

	// Mutating one member's source changes the key...
	mut := append([]string(nil), gs.Sources...)
	mut[0] += "\n"
	if k := GroupKey(fn.Name, string(fn.Module), gs.Targets, mut, byTarget, core); k == k1 {
		t.Fatal("member source change did not change the group key")
	}
	// ...as does a different function identity...
	if k := GroupKey("other", string(fn.Module), gs.Targets, gs.Sources, byTarget, core); k == k1 {
		t.Fatal("function identity did not participate in the key")
	}
	// ...and an edit to a member's description files...
	c.Tree.Add("lib/Target/"+gs.Targets[0]+"/Extra.td", "def Extra;")
	core2, byTarget2 := TreeHashes(c.Tree, names)
	if core2 != core {
		t.Fatal("target-owned file changed the core hash")
	}
	if byTarget2[gs.Targets[0]] == byTarget[gs.Targets[0]] {
		t.Fatal("target tree hash insensitive to its own files")
	}
	if k := GroupKey(fn.Name, string(fn.Module), gs.Targets, gs.Sources, byTarget2, core2); k == k1 {
		t.Fatal("member .td change did not change the group key")
	}
	// ...but another target's description files leave it untouched.
	other := ""
	for _, n := range names {
		inGroup := false
		for _, g := range gs.Targets {
			if g == n {
				inGroup = true
			}
		}
		if !inGroup {
			other = n
			break
		}
	}
	if other != "" {
		c2, err := corpus.Build()
		if err != nil {
			t.Fatal(err)
		}
		c2.Tree.Add("lib/Target/"+other+"/Extra.td", "def Extra;")
		core3, byTarget3 := TreeHashes(c2.Tree, names)
		if k := GroupKey(fn.Name, string(fn.Module), gs.Targets, gs.Sources, byTarget3, core3); k != k1 {
			t.Fatal("non-member .td change invalidated the group")
		}
	}

	// A core-tree edit invalidates every group.
	c3, err := corpus.Build()
	if err != nil {
		t.Fatal(err)
	}
	c3.Tree.Add("llvm/CodeGen/Extra.h", "class Extra {};")
	core4, byTarget4 := TreeHashes(c3.Tree, names)
	if core4 == core {
		t.Fatal("core edit did not change the core hash")
	}
	if k := GroupKey(fn.Name, string(fn.Module), gs.Targets, gs.Sources, byTarget4, core4); k == k1 {
		t.Fatal("core change did not change the group key")
	}
}

func TestFleetKeySensitivity(t *testing.T) {
	funcs := []string{"a", "b"}
	targets := []string{"ARM", "Mips"}
	k1 := FleetKey(funcs, targets)
	if k := FleetKey(funcs, targets); k != k1 {
		t.Fatal("fleet key not deterministic")
	}
	if k := FleetKey([]string{"a"}, targets); k == k1 {
		t.Fatal("function-set change did not change the fleet key")
	}
	if k := FleetKey(funcs, []string{"ARM", "Mips", "X86"}); k == k1 {
		t.Fatal("fleet change did not change the fleet key")
	}
}
