// Package s1cache persists Stage 1 artifacts — function templates and
// their mined feature schemas — in a content-addressed on-disk cache, so
// repeated pipeline builds over an unchanged corpus (CLI runs, the bench
// harness, the eval loop) skip templatization and feature selection
// entirely.
//
// Entries are addressed by a SHA-256 key over the corpus sources and the
// Stage-1-relevant configuration (see Key), so any change to a source
// file, the fleet, the interface-function set, or the split parameters
// produces a different key and a clean miss — there is no invalidation
// protocol to get wrong. Files follow the checkpoint discipline of
// internal/core: a self-verifying header (magic, format version, payload
// length, SHA-256 of the payload) over a gob payload, written atomically
// (temp file, fsync, rename), so torn or bit-flipped entries surface as
// ErrCorrupt and callers fall back to a rebuild.
package s1cache

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"vega/internal/corpus"
	"vega/internal/feature"
	"vega/internal/template"
)

var (
	// ErrMiss marks a key with no cache entry.
	ErrMiss = errors.New("s1cache: miss")
	// ErrCorrupt marks an entry that failed self-verification; callers
	// should rebuild and overwrite.
	ErrCorrupt = errors.New("s1cache: entry corrupt")
)

var magic = [8]byte{'V', 'E', 'G', 'A', 'S', '1', 'C', 'H'}

// formatVersion is bumped whenever the snapshot layout or the meaning of
// cached artifacts changes; it participates in the key, so stale-format
// entries are simply never addressed.
const formatVersion = 1

// headerLen is magic(8) + version(4) + payload length(8) + sha256(32).
const headerLen = 8 + 4 + 8 + sha256.Size

// Group is one cached function group: everything core rebuilds per
// group during Stage 1 except the live extractor. The interface function
// itself is stored by name and re-resolved against corpus.AllFuncs on
// load (it carries a generator closure that cannot be serialized).
type Group struct {
	FuncName string
	Targets  []string
	FT       *template.FunctionTemplate
	TF       *feature.TemplateFeatures
}

// Snapshot is a full Stage 1 result set, in corpus.AllFuncs order.
type Snapshot struct {
	Groups []Group
}

// KeyConfig is the Stage-1-relevant slice of the pipeline config: the
// fields that shape templates, features, or the train/verify split.
type KeyConfig struct {
	Seed           int64
	TrainFraction  float64
	SplitByBackend bool
}

// Key computes the content address for a corpus + config pair: a SHA-256
// over the cache format version, the split-relevant config, the
// interface-function set, the training fleet, every rendered backend
// source, and every source-tree file. Any difference in inputs yields a
// different key.
func Key(c *corpus.Corpus, cfg KeyConfig) string {
	h := sha256.New()
	fmt.Fprintf(h, "v%d|seed=%d|frac=%g|bybackend=%t\n",
		formatVersion, cfg.Seed, cfg.TrainFraction, cfg.SplitByBackend)
	for _, f := range corpus.AllFuncs() {
		fmt.Fprintf(h, "fn|%s|%s\n", f.Name, f.Module)
	}
	for _, t := range c.Targets {
		fmt.Fprintf(h, "tgt|%s|eval=%t\n", t.Name, t.Eval)
		b := c.Backends[t.Name]
		if b == nil {
			continue
		}
		names := make([]string, 0, len(b.Sources))
		for n := range b.Sources {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(h, "src|%s|%d|", n, len(b.Sources[n]))
			h.Write([]byte(b.Sources[n]))
			h.Write([]byte{'\n'})
		}
	}
	for _, p := range c.Tree.Paths() {
		content, _ := c.Tree.Content(p)
		fmt.Fprintf(h, "file|%s|%d|", p, len(content))
		h.Write([]byte(content))
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Cache is a directory of content-addressed Stage 1 entries.
type Cache struct {
	Dir string
}

// path maps a key to its entry file.
func (c *Cache) path(key string) string {
	return filepath.Join(c.Dir, key+".s1")
}

// Load reads and verifies the entry for key. Returns ErrMiss when no
// entry exists and ErrCorrupt (wrapped) when one exists but fails
// verification or decoding.
func (c *Cache) Load(key string) (*Snapshot, error) {
	raw, err := os.ReadFile(c.path(key))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, ErrMiss
		}
		return nil, fmt.Errorf("s1cache: load: %w", err)
	}
	if len(raw) < headerLen || !bytes.Equal(raw[:len(magic)], magic[:]) {
		return nil, fmt.Errorf("%w: %s: bad header", ErrCorrupt, key)
	}
	if v := binary.BigEndian.Uint32(raw[8:12]); v != formatVersion {
		return nil, fmt.Errorf("%w: %s: version %d", ErrCorrupt, key, v)
	}
	plen := binary.BigEndian.Uint64(raw[12:20])
	payload := raw[headerLen:]
	if uint64(len(payload)) != plen {
		return nil, fmt.Errorf("%w: %s: payload %d bytes, header says %d",
			ErrCorrupt, key, len(payload), plen)
	}
	var want [sha256.Size]byte
	copy(want[:], raw[20:headerLen])
	if sha256.Sum256(payload) != want {
		return nil, fmt.Errorf("%w: %s: checksum mismatch", ErrCorrupt, key)
	}
	var snap Snapshot
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&snap); err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrCorrupt, key, err)
	}
	// Relink the template pointer the encoder detached (see Store).
	for i := range snap.Groups {
		if snap.Groups[i].TF != nil {
			snap.Groups[i].TF.FT = snap.Groups[i].FT
		}
	}
	return &snap, nil
}

// Store writes the entry for key atomically: encode, checksum, temp
// file in the cache directory, fsync, rename. An existing entry for the
// same key is replaced.
func (c *Cache) Store(key string, snap *Snapshot) error {
	if err := os.MkdirAll(c.Dir, 0o755); err != nil {
		return fmt.Errorf("s1cache: store: %w", err)
	}
	// Detach each TF's back-pointer to its template before encoding so
	// the gob stream carries one copy of every template, not two; Load
	// relinks. The shallow copy keeps the caller's structs untouched.
	enc := Snapshot{Groups: make([]Group, len(snap.Groups))}
	for i, g := range snap.Groups {
		if g.TF != nil {
			tf := *g.TF
			tf.FT = nil
			g.TF = &tf
		}
		enc.Groups[i] = g
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(&enc); err != nil {
		return fmt.Errorf("s1cache: store: %w", err)
	}
	sum := sha256.Sum256(payload.Bytes())
	buf := make([]byte, 0, headerLen+payload.Len())
	buf = append(buf, magic[:]...)
	buf = binary.BigEndian.AppendUint32(buf, formatVersion)
	buf = binary.BigEndian.AppendUint64(buf, uint64(payload.Len()))
	buf = append(buf, sum[:]...)
	buf = append(buf, payload.Bytes()...)

	tmp, err := os.CreateTemp(c.Dir, "."+key+".tmp*")
	if err != nil {
		return fmt.Errorf("s1cache: store: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return fmt.Errorf("s1cache: store: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("s1cache: store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("s1cache: store: %w", err)
	}
	if err := os.Rename(tmp.Name(), c.path(key)); err != nil {
		return fmt.Errorf("s1cache: store: %w", err)
	}
	return nil
}
