// Package s1cache persists Stage 1 artifacts — function templates and
// their mined feature schemas — in a content-addressed on-disk cache, so
// repeated pipeline builds over an unchanged corpus (CLI runs, the bench
// harness, the eval loop) skip templatization and feature selection
// entirely.
//
// The cache is sharded per function group: each group's template and
// features live in their own entry (`<key>.s1g`), addressed by a SHA-256
// over only that group's inputs — the function identity, the group's
// training targets, their rendered sources, the per-target slice of the
// description tree, and the shared core tree (see GroupKey). Editing one
// target therefore re-keys only the groups that include it; every other
// group still hits. A fleet-level manifest (`<key>.s1m`, see FleetKey)
// records which group entries a build used, providing stats and garbage
// collection of superseded entries.
//
// Files follow the checkpoint discipline of internal/core: a
// self-verifying header (magic, format version, payload length, SHA-256
// of the payload) over a gob payload, written atomically (temp file,
// fsync, rename), so torn or bit-flipped entries surface as ErrCorrupt
// and callers rebuild exactly the damaged group.
package s1cache

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"vega/internal/feature"
	"vega/internal/tablegen"
	"vega/internal/template"
)

var (
	// ErrMiss marks a key with no cache entry.
	ErrMiss = errors.New("s1cache: miss")
	// ErrCorrupt marks an entry that failed self-verification; callers
	// should rebuild and overwrite only that entry.
	ErrCorrupt = errors.New("s1cache: entry corrupt")
)

var magic = [8]byte{'V', 'E', 'G', 'A', 'S', '1', 'C', 'H'}

// formatVersion is bumped whenever the entry layout or the meaning of
// cached artifacts changes; it participates in every key, so
// stale-format entries are simply never addressed. Version 2 introduced
// per-group entries and the fleet manifest.
const formatVersion = 2

// headerLen is magic(8) + version(4) + payload length(8) + sha256(32).
const headerLen = 8 + 4 + 8 + sha256.Size

// GroupEntry is one cached function group: everything core rebuilds per
// group during Stage 1 except the live extractor. The interface function
// itself is stored by name and re-resolved against corpus.FuncByName on
// load (it carries a generator closure that cannot be serialized).
type GroupEntry struct {
	FuncName string
	Targets  []string
	FT       *template.FunctionTemplate
	TF       *feature.TemplateFeatures
}

// Manifest ties one build's group entries together under the fleet key:
// the group keys a warm rebuild will look up, in corpus.AllFuncs order.
type Manifest struct {
	Groups []ManifestGroup
}

// ManifestGroup names one group entry.
type ManifestGroup struct {
	FuncName string
	Key      string
}

// GroupKey computes the content address of one function group: a
// SHA-256 over the cache format version, the function identity, and per
// training target its name, its rendered source for this function, and
// its description-tree hash, plus the shared core-tree hash. Only edits
// that can change this group's template or features change the key.
func GroupKey(fnName, module string, targets, sources []string, targetHash map[string]string, coreHash string) string {
	h := sha256.New()
	fmt.Fprintf(h, "v%d|fn|%s|%s\n", formatVersion, fnName, module)
	for i, t := range targets {
		src := ""
		if i < len(sources) {
			src = sources[i]
		}
		fmt.Fprintf(h, "tgt|%s|td=%s|%d|", t, targetHash[t], len(src))
		h.Write([]byte(src))
		h.Write([]byte{'\n'})
	}
	fmt.Fprintf(h, "core|%s\n", coreHash)
	return hex.EncodeToString(h.Sum(nil))
}

// FleetKey computes the manifest address for a fleet + function set: the
// cache format version, every interface function, and every target's
// name and eval role. Split parameters are deliberately excluded — the
// train/verify split is recomputed from the cached groups on every load.
func FleetKey(funcs []string, targets []string) string {
	h := sha256.New()
	fmt.Fprintf(h, "v%d|fleet\n", formatVersion)
	for _, f := range funcs {
		fmt.Fprintf(h, "fn|%s\n", f)
	}
	for _, t := range targets {
		fmt.Fprintf(h, "tgt|%s\n", t)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TreeHashes classifies the source tree into the shared core and
// per-target slices, hashing each bucket: paths under lib/Target/<T>/
// and llvm/BinaryFormat/ELFRelocs/<T>.def belong to target T, everything
// else to the core. targets lists the fleet's target names.
func TreeHashes(tree *tablegen.SourceTree, targets []string) (core string, byTarget map[string]string) {
	owner := func(p string) string {
		if rest, ok := strings.CutPrefix(p, "lib/Target/"); ok {
			if t, _, ok := strings.Cut(rest, "/"); ok {
				return t
			}
		}
		if rest, ok := strings.CutPrefix(p, "llvm/BinaryFormat/ELFRelocs/"); ok {
			if t, ok := strings.CutSuffix(rest, ".def"); ok {
				return t
			}
		}
		return ""
	}
	known := make(map[string]bool, len(targets))
	for _, t := range targets {
		known[t] = true
	}
	sums := map[string]*bytes.Buffer{"": {}}
	for _, p := range tree.Paths() { // Paths is sorted: buckets are deterministic
		t := owner(p)
		if !known[t] {
			t = "" // unknown owners count as core, never silently dropped
		}
		buf := sums[t]
		if buf == nil {
			buf = &bytes.Buffer{}
			sums[t] = buf
		}
		content, _ := tree.Content(p)
		fmt.Fprintf(buf, "file|%s|%d|%s\n", p, len(content), content)
	}
	byTarget = make(map[string]string, len(sums))
	for t, buf := range sums {
		sum := sha256.Sum256(buf.Bytes())
		if t == "" {
			core = hex.EncodeToString(sum[:])
		} else {
			byTarget[t] = hex.EncodeToString(sum[:])
		}
	}
	return core, byTarget
}

// Cache is a directory of content-addressed Stage 1 entries.
type Cache struct {
	Dir string
}

// groupPath maps a group key to its entry file.
func (c *Cache) groupPath(key string) string {
	return filepath.Join(c.Dir, key+".s1g")
}

// manifestPath maps a fleet key to its manifest file.
func (c *Cache) manifestPath(key string) string {
	return filepath.Join(c.Dir, key+".s1m")
}

// readBlob reads and verifies one self-checking file, returning the gob
// payload. ErrMiss when absent, ErrCorrupt (wrapped) on any damage.
func readBlob(path, key string) ([]byte, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, ErrMiss
		}
		return nil, fmt.Errorf("s1cache: load: %w", err)
	}
	if len(raw) < headerLen || !bytes.Equal(raw[:len(magic)], magic[:]) {
		return nil, fmt.Errorf("%w: %s: bad header", ErrCorrupt, key)
	}
	if v := binary.BigEndian.Uint32(raw[8:12]); v != formatVersion {
		return nil, fmt.Errorf("%w: %s: version %d", ErrCorrupt, key, v)
	}
	plen := binary.BigEndian.Uint64(raw[12:20])
	payload := raw[headerLen:]
	if uint64(len(payload)) != plen {
		return nil, fmt.Errorf("%w: %s: payload %d bytes, header says %d",
			ErrCorrupt, key, len(payload), plen)
	}
	var want [sha256.Size]byte
	copy(want[:], raw[20:headerLen])
	if sha256.Sum256(payload) != want {
		return nil, fmt.Errorf("%w: %s: checksum mismatch", ErrCorrupt, key)
	}
	return payload, nil
}

// writeBlob writes one self-checking file atomically: header + payload
// into a temp file in the cache directory, fsync, rename.
func (c *Cache) writeBlob(path, key string, payload []byte) error {
	if err := os.MkdirAll(c.Dir, 0o755); err != nil {
		return fmt.Errorf("s1cache: store: %w", err)
	}
	sum := sha256.Sum256(payload)
	buf := make([]byte, 0, headerLen+len(payload))
	buf = append(buf, magic[:]...)
	buf = binary.BigEndian.AppendUint32(buf, formatVersion)
	buf = binary.BigEndian.AppendUint64(buf, uint64(len(payload)))
	buf = append(buf, sum[:]...)
	buf = append(buf, payload...)

	tmp, err := os.CreateTemp(c.Dir, "."+key+".tmp*")
	if err != nil {
		return fmt.Errorf("s1cache: store: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return fmt.Errorf("s1cache: store: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("s1cache: store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("s1cache: store: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("s1cache: store: %w", err)
	}
	return nil
}

// LoadGroup reads and verifies one group entry. Returns ErrMiss when no
// entry exists and ErrCorrupt (wrapped) when one exists but fails
// verification or decoding.
func (c *Cache) LoadGroup(key string) (*GroupEntry, error) {
	payload, err := readBlob(c.groupPath(key), key)
	if err != nil {
		return nil, err
	}
	var e GroupEntry
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&e); err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrCorrupt, key, err)
	}
	// Relink the template pointer the encoder detached (see StoreGroup).
	if e.TF != nil {
		e.TF.FT = e.FT
	}
	return &e, nil
}

// StoreGroup writes one group entry atomically, replacing any existing
// entry for the same key.
func (c *Cache) StoreGroup(key string, e *GroupEntry) error {
	// Detach the TF's back-pointer to its template before encoding so the
	// gob stream carries one copy of the template, not two; LoadGroup
	// relinks. The shallow copy keeps the caller's structs untouched.
	enc := *e
	if enc.TF != nil {
		tf := *enc.TF
		tf.FT = nil
		enc.TF = &tf
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(&enc); err != nil {
		return fmt.Errorf("s1cache: store: %w", err)
	}
	return c.writeBlob(c.groupPath(key), key, payload.Bytes())
}

// LoadManifest reads and verifies the manifest for a fleet key.
func (c *Cache) LoadManifest(key string) (*Manifest, error) {
	payload, err := readBlob(c.manifestPath(key), key)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&m); err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrCorrupt, key, err)
	}
	return &m, nil
}

// StoreManifest writes the manifest for a fleet key and garbage-collects
// group entries the previous manifest for the same fleet referenced but
// the new one no longer does (superseded by re-keyed groups).
func (c *Cache) StoreManifest(key string, m *Manifest) error {
	prev, err := c.LoadManifest(key)
	if err != nil && !errors.Is(err, ErrMiss) && !errors.Is(err, ErrCorrupt) {
		return err
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(m); err != nil {
		return fmt.Errorf("s1cache: store: %w", err)
	}
	if err := c.writeBlob(c.manifestPath(key), key, payload.Bytes()); err != nil {
		return err
	}
	if prev != nil {
		live := make(map[string]bool, len(m.Groups))
		for _, g := range m.Groups {
			live[g.Key] = true
		}
		for _, g := range prev.Groups {
			if !live[g.Key] {
				os.Remove(c.groupPath(g.Key)) // best-effort GC
			}
		}
	}
	return nil
}
