package bench

import (
	"testing"

	"vega/internal/compiler"
)

func TestSuiteSizes(t *testing.T) {
	if n := len(SPECLike()); n != 28 {
		t.Errorf("SPEC-like = %d, want 28 (paper's C/C++ subset)", n)
	}
	if n := len(PULPLike()); n != 69 {
		t.Errorf("PULP-like = %d, want 69", n)
	}
	if n := len(EmbenchLike()); n != 22 {
		t.Errorf("Embench-like = %d, want 22", n)
	}
}

func TestWorkloadsValidate(t *testing.T) {
	for _, suite := range [][]Workload{SPECLike(), PULPLike(), EmbenchLike()} {
		for _, w := range suite {
			if err := w.Program.Validate(); err != nil {
				t.Errorf("%s: %v", w.Name, err)
			}
			if w.Program.Func(w.Entry) == nil {
				t.Errorf("%s: entry %q missing", w.Name, w.Entry)
			}
		}
	}
}

func TestWorkloadNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, suite := range [][]Workload{SPECLike(), PULPLike(), EmbenchLike()} {
		for _, w := range suite {
			if seen[w.Name] {
				t.Errorf("duplicate workload name %s", w.Name)
			}
			seen[w.Name] = true
		}
	}
}

func TestSuiteForMapping(t *testing.T) {
	if len(SuiteFor("RISCV")) != 28 || len(SuiteFor("RI5CY")) != 69 || len(SuiteFor("XCore")) != 22 {
		t.Error("SuiteFor maps the wrong suites")
	}
	if SuiteFor("ARM") != nil {
		t.Error("training targets have no evaluation suite")
	}
}

func TestWorkloadsAreDeterministic(t *testing.T) {
	a := SPECLike()[0]
	b := SPECLike()[0]
	if a.Program.Init["data"][0] != b.Program.Init["data"][0] {
		t.Error("workload generation not deterministic")
	}
}

func TestPULPKernelsVectorizable(t *testing.T) {
	// At least the vecadd kernels must contain the canonical
	// store(load+load) loop shape the vectorizer keys on.
	var found bool
	for _, w := range PULPLike() {
		f := w.Program.Func("main")
		for _, st := range f.Body {
			if loop, ok := st.(compiler.For); ok && len(loop.Body) == 1 {
				if _, ok := loop.Body[0].(compiler.Store); ok {
					found = true
				}
			}
		}
	}
	if !found {
		t.Error("no vectorizable kernels in the PULP-like suite")
	}
}
