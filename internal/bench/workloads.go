// Package bench generates the three benchmark suites of the paper's
// performance evaluation (Fig. 10): 28 SPEC CPU2017-like C/C++ workloads
// for RISC-V, 69 PULP-regression-like kernels for RI5CY, and 22
// Embench-like embedded programs for xCORE. The programs are synthetic
// but shaped like their namesakes: SPEC-like workloads are big, branchy
// and call-heavy; PULP-like kernels are tight DSP loops that reward
// hardware loops and SIMD; Embench-like programs are small integer
// kernels.
package bench

import (
	"fmt"
	"math/rand"

	"vega/internal/compiler"
)

// Workload is one benchmark program with its entry point.
type Workload struct {
	Name    string
	Program *compiler.Program
	Entry   string
	Args    []int64
}

// SPECLike generates the 28-benchmark RISC-V suite.
func SPECLike() []Workload {
	names := []string{
		"perlbench", "gcc", "mcf", "omnetpp", "xalancbmk", "x264",
		"deepsjeng", "leela", "exchange2", "xz", "bwaves", "cactuBSSN",
		"namd", "parest", "povray", "lbm", "wrf", "blender", "cam4",
		"imagick", "nab", "fotonik3d", "roms", "specrand", "gzip2",
		"vortex2", "twolf2", "crafty2",
	}
	out := make([]Workload, 0, len(names))
	for i, n := range names {
		out = append(out, synthWorkload("spec."+n, int64(101+i*7), 3, 40, true))
	}
	return out
}

// PULPLike generates the 69-test RI5CY suite: DSP kernels.
func PULPLike() []Workload {
	kinds := []string{"dotp", "vecadd", "fir", "matmul", "conv", "maxpool"}
	out := make([]Workload, 0, 69)
	for i := 0; i < 69; i++ {
		kind := kinds[i%len(kinds)]
		out = append(out, dspWorkload(fmt.Sprintf("pulp.%s_%02d", kind, i), kind, int64(3001+i*13)))
	}
	return out
}

// EmbenchLike generates the 22-benchmark xCORE suite.
func EmbenchLike() []Workload {
	names := []string{
		"aha-mont64", "crc32", "cubic", "edn", "huffbench", "matmult-int",
		"md5sum", "minver", "nbody", "nettle-aes", "nettle-sha256",
		"nsichneu", "picojpeg", "primecount", "qrduino", "sglib-combined",
		"slre", "st", "statemate", "tarfind", "ud", "wikisort",
	}
	out := make([]Workload, 0, len(names))
	for i, n := range names {
		out = append(out, synthWorkload("embench."+n, int64(501+i*11), 2, 16, false))
	}
	return out
}

// SuiteFor maps an evaluation target to its suite, per the paper.
func SuiteFor(target string) []Workload {
	switch target {
	case "RISCV":
		return SPECLike()
	case "RI5CY":
		return PULPLike()
	case "XCore":
		return EmbenchLike()
	}
	return nil
}

// synthWorkload builds a branchy, loopy, call-using integer program.
// depth controls loop nesting, n the data size.
func synthWorkload(name string, seed int64, depth, n int, calls bool) Workload {
	rng := rand.New(rand.NewSource(seed))
	p := &compiler.Program{
		Arrays: map[string]int{"data": n, "out": n},
		Init:   map[string][]int64{"data": randInit(rng, n)},
		Funcs:  []*compiler.Function{},
	}
	if calls {
		p.Funcs = append(p.Funcs, &compiler.Function{
			Name:   "mix",
			Params: []string{"a", "b"},
			Body: []compiler.Stmt{
				compiler.If{
					Cond: compiler.Bin{Op: ">", L: compiler.Var{Name: "a"}, R: compiler.Var{Name: "b"}},
					Then: []compiler.Stmt{compiler.Return{E: compiler.Bin{Op: "-", L: compiler.Var{Name: "a"}, R: compiler.Var{Name: "b"}}}},
					Else: []compiler.Stmt{compiler.Return{E: compiler.Bin{Op: "+", L: compiler.Var{Name: "a"}, R: compiler.Bin{Op: "*", L: compiler.Var{Name: "b"}, R: compiler.Const{Value: 2}}}}},
				},
			},
		})
	}
	var body []compiler.Stmt
	body = append(body, compiler.Assign{Name: "acc", E: compiler.Const{Value: 0}})
	for d := 0; d < depth; d++ {
		v := fmt.Sprintf("i%d", d)
		inner := []compiler.Stmt{
			compiler.Assign{Name: "t", E: compiler.Bin{
				Op: "+",
				L:  compiler.Load{Array: "data", Index: compiler.Bin{Op: "%", L: compiler.Var{Name: v}, R: compiler.Const{Value: int64(n)}}},
				R:  compiler.Var{Name: "acc"},
			}},
			compiler.If{
				Cond: compiler.Bin{Op: ">", L: compiler.Var{Name: "t"}, R: compiler.Const{Value: int64(rng.Intn(50))}},
				Then: []compiler.Stmt{compiler.Assign{Name: "acc", E: compiler.Bin{Op: "-", L: compiler.Var{Name: "t"}, R: compiler.Const{Value: 3}}}},
				Else: []compiler.Stmt{compiler.Assign{Name: "acc", E: compiler.Bin{Op: "+", L: compiler.Var{Name: "t"}, R: compiler.Const{Value: int64(1 + rng.Intn(4))}}}},
			},
			compiler.Store{Array: "out",
				Index: compiler.Bin{Op: "%", L: compiler.Var{Name: v}, R: compiler.Const{Value: int64(n)}},
				Value: compiler.Var{Name: "acc"}},
		}
		if calls && d == depth-1 {
			inner = append(inner, compiler.Assign{Name: "acc", E: compiler.CallExpr{
				Name: "mix",
				Args: []compiler.Expr{compiler.Var{Name: "acc"}, compiler.Var{Name: v}},
			}})
		}
		body = append(body, compiler.For{
			Var: v, From: compiler.Const{Value: 0}, To: compiler.Const{Value: int64(n + d*5)},
			Body: inner,
		})
	}
	body = append(body, compiler.Return{E: compiler.Var{Name: "acc"}})
	p.Funcs = append(p.Funcs, &compiler.Function{Name: "main", Body: body})
	return Workload{Name: name, Program: p, Entry: "main"}
}

// dspWorkload builds DSP kernels whose inner loops are hardware-loop and
// SIMD friendly.
func dspWorkload(name, kind string, seed int64) Workload {
	rng := rand.New(rand.NewSource(seed))
	const n = 64
	p := &compiler.Program{
		Arrays: map[string]int{"a": n, "b": n, "c": n},
		Init: map[string][]int64{
			"a": randInit(rng, n),
			"b": randInit(rng, n),
		},
	}
	var body []compiler.Stmt
	switch kind {
	case "vecadd":
		body = []compiler.Stmt{
			compiler.For{Var: "i", From: compiler.Const{Value: 0}, To: compiler.Const{Value: n},
				Body: []compiler.Stmt{
					compiler.Store{Array: "c", Index: compiler.Var{Name: "i"},
						Value: compiler.Bin{Op: "+",
							L: compiler.Load{Array: "a", Index: compiler.Var{Name: "i"}},
							R: compiler.Load{Array: "b", Index: compiler.Var{Name: "i"}}}},
				}},
			compiler.Return{E: compiler.Load{Array: "c", Index: compiler.Const{Value: n - 1}}},
		}
	case "dotp":
		body = []compiler.Stmt{
			compiler.Assign{Name: "s", E: compiler.Const{Value: 0}},
			compiler.For{Var: "i", From: compiler.Const{Value: 0}, To: compiler.Const{Value: n},
				Body: []compiler.Stmt{
					compiler.Assign{Name: "s", E: compiler.Bin{Op: "+",
						L: compiler.Var{Name: "s"},
						R: compiler.Bin{Op: "*",
							L: compiler.Load{Array: "a", Index: compiler.Var{Name: "i"}},
							R: compiler.Load{Array: "b", Index: compiler.Var{Name: "i"}}}}},
				}},
			compiler.Return{E: compiler.Var{Name: "s"}},
		}
	case "fir":
		body = []compiler.Stmt{
			compiler.Assign{Name: "s", E: compiler.Const{Value: 0}},
			compiler.For{Var: "i", From: compiler.Const{Value: 0}, To: compiler.Const{Value: n - 4},
				Body: []compiler.Stmt{
					compiler.Assign{Name: "s", E: compiler.Const{Value: 0}},
					compiler.For{Var: "k", From: compiler.Const{Value: 0}, To: compiler.Const{Value: 4},
						Body: []compiler.Stmt{
							compiler.Assign{Name: "s", E: compiler.Bin{Op: "+",
								L: compiler.Var{Name: "s"},
								R: compiler.Bin{Op: "*",
									L: compiler.Load{Array: "a", Index: compiler.Bin{Op: "+", L: compiler.Var{Name: "i"}, R: compiler.Var{Name: "k"}}},
									R: compiler.Load{Array: "b", Index: compiler.Var{Name: "k"}}}}},
						}},
					compiler.Store{Array: "c", Index: compiler.Var{Name: "i"}, Value: compiler.Var{Name: "s"}},
				}},
			compiler.Return{E: compiler.Load{Array: "c", Index: compiler.Const{Value: 0}}},
		}
	case "matmul":
		const m = 8
		body = []compiler.Stmt{
			compiler.For{Var: "i", From: compiler.Const{Value: 0}, To: compiler.Const{Value: m},
				Body: []compiler.Stmt{
					compiler.For{Var: "j", From: compiler.Const{Value: 0}, To: compiler.Const{Value: m},
						Body: []compiler.Stmt{
							compiler.Assign{Name: "s", E: compiler.Const{Value: 0}},
							compiler.For{Var: "k", From: compiler.Const{Value: 0}, To: compiler.Const{Value: m},
								Body: []compiler.Stmt{
									compiler.Assign{Name: "s", E: compiler.Bin{Op: "+",
										L: compiler.Var{Name: "s"},
										R: compiler.Bin{Op: "*",
											L: compiler.Load{Array: "a", Index: compiler.Bin{Op: "+", L: compiler.Bin{Op: "*", L: compiler.Var{Name: "i"}, R: compiler.Const{Value: m}}, R: compiler.Var{Name: "k"}}},
											R: compiler.Load{Array: "b", Index: compiler.Bin{Op: "+", L: compiler.Bin{Op: "*", L: compiler.Var{Name: "k"}, R: compiler.Const{Value: m}}, R: compiler.Var{Name: "j"}}}}}},
								}},
							compiler.Store{Array: "c", Index: compiler.Bin{Op: "+", L: compiler.Bin{Op: "*", L: compiler.Var{Name: "i"}, R: compiler.Const{Value: m}}, R: compiler.Var{Name: "j"}}, Value: compiler.Var{Name: "s"}},
						}},
				}},
			compiler.Return{E: compiler.Load{Array: "c", Index: compiler.Const{Value: m*m - 1}}},
		}
	case "conv":
		body = []compiler.Stmt{
			compiler.For{Var: "i", From: compiler.Const{Value: 1}, To: compiler.Const{Value: n - 1},
				Body: []compiler.Stmt{
					compiler.Store{Array: "c", Index: compiler.Var{Name: "i"},
						Value: compiler.Bin{Op: "+",
							L: compiler.Load{Array: "a", Index: compiler.Bin{Op: "-", L: compiler.Var{Name: "i"}, R: compiler.Const{Value: 1}}},
							R: compiler.Bin{Op: "+",
								L: compiler.Bin{Op: "*", L: compiler.Load{Array: "a", Index: compiler.Var{Name: "i"}}, R: compiler.Const{Value: 2}},
								R: compiler.Load{Array: "a", Index: compiler.Bin{Op: "+", L: compiler.Var{Name: "i"}, R: compiler.Const{Value: 1}}}}}},
				}},
			compiler.Return{E: compiler.Load{Array: "c", Index: compiler.Const{Value: n / 2}}},
		}
	default: // maxpool
		body = []compiler.Stmt{
			compiler.Assign{Name: "m", E: compiler.Const{Value: -1 << 30}},
			compiler.For{Var: "i", From: compiler.Const{Value: 0}, To: compiler.Const{Value: n},
				Body: []compiler.Stmt{
					compiler.Assign{Name: "v", E: compiler.Load{Array: "a", Index: compiler.Var{Name: "i"}}},
					compiler.If{Cond: compiler.Bin{Op: ">", L: compiler.Var{Name: "v"}, R: compiler.Var{Name: "m"}},
						Then: []compiler.Stmt{compiler.Assign{Name: "m", E: compiler.Var{Name: "v"}}}},
				}},
			compiler.Return{E: compiler.Var{Name: "m"}},
		}
	}
	p.Funcs = []*compiler.Function{{Name: "main", Body: body}}
	return Workload{Name: name, Program: p, Entry: "main"}
}

func randInit(rng *rand.Rand, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(rng.Intn(97)) - 31
	}
	return out
}
