package feature

import (
	"testing"

	"vega/internal/tablegen"
)

// TestParseTDNegativeCache pins the parseTD failure semantics: a .td
// file that fails to parse is remembered in the dedicated negative cache
// and keeps reporting !ok on every later call — it is never stored as a
// nil success, and never conflated with a file that parses to an empty
// (but valid) TDFile.
func TestParseTDNegativeCache(t *testing.T) {
	tree := tablegen.NewSourceTree()
	tree.Add("lib/Target/ARM/Bad.td", "def Foo {") // unterminated record body
	tree.Add("lib/Target/ARM/Empty.td", "")        // valid, parses to an empty file
	e := NewExtractor(tree, []string{"llvm/MC"})

	for i := 0; i < 2; i++ { // second round is served from the caches
		if td, ok := e.parseTD("lib/Target/ARM/Bad.td"); ok || td != nil {
			t.Fatalf("round %d: bad file parsed: td=%v ok=%v", i, td, ok)
		}
		if td, ok := e.parseTD("lib/Target/ARM/Empty.td"); !ok || td == nil {
			t.Fatalf("round %d: valid empty file rejected: td=%v ok=%v", i, td, ok)
		}
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.tdFailed["lib/Target/ARM/Bad.td"] {
		t.Fatal("parse failure not recorded in the negative cache")
	}
	if _, ok := e.tdCache["lib/Target/ARM/Bad.td"]; ok {
		t.Fatal("failed parse leaked into the success cache")
	}
	if _, ok := e.tdCache["lib/Target/ARM/Empty.td"]; !ok {
		t.Fatal("valid empty parse missing from the success cache")
	}
	if e.tdFailed["lib/Target/ARM/Empty.td"] {
		t.Fatal("valid empty parse landed in the negative cache")
	}
}
