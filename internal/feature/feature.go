// Package feature implements VEGA's feature selection (Algorithm 1):
// mining Boolean target-independent properties for a template's common
// code and string target-dependent properties for its placeholders, from
// the LLVM-provided code under LLVMDIRs and the per-target description
// files under TGTDIRs.
//
// Every property is anchored at two locations: its identified site (the
// declaration in LLVMDIRs) and its update site (where a target defines or
// specializes it, in TGTDIRs — or LLVMDIRs for universal properties).
// A property discovered here is exactly what a new target's description
// files can answer, which is what makes backend generation possible from
// those files alone.
package feature

import (
	"sort"
	"strings"
	"sync"

	"vega/internal/tablegen"
	"vega/internal/template"
)

// Kind distinguishes the two property families.
type Kind int

// Property kinds.
const (
	// Independent properties are Booleans over the common code.
	Independent Kind = iota
	// Dependent properties are strings filling placeholders.
	Dependent
)

func (k Kind) String() string {
	if k == Independent {
		return "independent"
	}
	return "dependent"
}

// Method records how a property was discovered, so the same discovery can
// be re-run against a new target's description files.
type Method int

// Discovery methods.
const (
	// MethodToken: the token itself occurs in TGTDIRs (Algorithm 1 lines 10-13).
	MethodToken Method = iota
	// MethodPartial: the token partially matches the RHS of an assignment
	// "prop = str" in TGTDIRs (lines 14-17).
	MethodPartial
	// MethodCore: the token occurs only in LLVMDIRs (lines 18-20);
	// universal, true for every target.
	MethodCore
	// MethodEnum: a placeholder value is a member of a target enum
	// correlated with an LLVMDIRs enum (lines 29-32).
	MethodEnum
	// MethodAssign: a placeholder value is the RHS of "prop = value"
	// in TGTDIRs (lines 29-32, assignment form).
	MethodAssign
	// MethodRecord: a placeholder value names a TableGen def whose class
	// chain reaches an LLVMDIRs class (records become enums via TableGen).
	MethodRecord
	// MethodList: a placeholder value is an element of a TableGen list
	// assignment "prop = [a, b, c]" in TGTDIRs (CalleeSavedRegs et al.).
	MethodList
)

func (m Method) String() string {
	switch m {
	case MethodToken:
		return "token"
	case MethodPartial:
		return "partial"
	case MethodCore:
		return "core"
	case MethodEnum:
		return "enum"
	case MethodAssign:
		return "assign"
	case MethodRecord:
		return "record"
	case MethodList:
		return "list"
	}
	return "?"
}

// Property is one mined feature.
type Property struct {
	Name           string
	Kind           Kind
	Method         Method
	IdentifiedSite string
	// EnumName is the LLVMDIRs enum correlated with MethodEnum properties.
	EnumName string
	// ClassName is the LLVMDIRs TableGen class for MethodRecord properties.
	ClassName string
}

// BoolVal is a target's value for an independent property.
type BoolVal struct {
	Value      bool
	UpdateSite string
}

// DepInfo is a target's information for a dependent property: the ordered
// candidate value set mined from its description files (the paper's
// TgtValSet) and where it was found.
type DepInfo struct {
	Candidates []string
	UpdateSite string
}

// N returns |TgtValSet|, the choice count used by confidence scoring.
func (d DepInfo) N() int { return len(d.Candidates) }

// TargetFeatures holds one target's property values for one template.
type TargetFeatures struct {
	Target string
	Bools  map[string]BoolVal
	Deps   map[string]DepInfo
}

// TemplateFeatures is the full feature schema of a function template plus
// per-target values.
type TemplateFeatures struct {
	FT *template.FunctionTemplate
	// Props lists the template's properties: independent first, then
	// dependent, each deduped by name, in discovery order.
	Props []Property
	// VarProps maps a placeholder id to the indexes (into Props) of the
	// dependent properties that explain it.
	VarProps map[int][]int
	// Targets holds per-target values for every training target.
	Targets map[string]*TargetFeatures
}

// PropIndex returns the index of the named property, or -1.
func (tf *TemplateFeatures) PropIndex(name string) int {
	for i, p := range tf.Props {
		if p.Name == name {
			return i
		}
	}
	return -1
}

// IndependentProps returns the independent subset, in order.
func (tf *TemplateFeatures) IndependentProps() []Property {
	var out []Property
	for _, p := range tf.Props {
		if p.Kind == Independent {
			out = append(out, p)
		}
	}
	return out
}

// DependentProps returns the dependent subset, in order.
func (tf *TemplateFeatures) DependentProps() []Property {
	var out []Property
	for _, p := range tf.Props {
		if p.Kind == Dependent {
			out = append(out, p)
		}
	}
	return out
}

// Extractor mines properties from a source tree laid out with LLVM
// conventions.
type Extractor struct {
	Tree     *tablegen.SourceTree
	LLVMDirs []string

	propSites map[string]string // PropList: identifier -> identified site

	// caches (keyed by path / target) for the hot discovery loops.
	// Lazily filled on first use, so concurrent extraction — Stage 3's
	// generation worker pool calls TargetValues from several goroutines —
	// must hold mu around every lookup/build. The builds are
	// deterministic and idempotent, so coarse serialization is enough.
	mu          sync.Mutex
	tdCache     map[string]*tablegen.TDFile
	tdFailed    map[string]bool // negative cache: paths whose parse errored
	recordCache map[string]*recordMaps

	// pmCache memoizes PartialMatch verdicts. The same (token, RHS)
	// pairs recur across every group and target — common-code tokens
	// repeat fleet-wide — and the camel-case run expansion inside
	// PartialMatch is costly enough to dominate Stage 1 without this.
	pmMu    sync.Mutex
	pmCache map[[2]string]bool
}

// recordMaps indexes one target's TableGen records (plus the LLVM core's).
type recordMaps struct {
	classes map[string][]string // class name -> parents
	defs    map[string][]string // def name -> parents
}

// DefaultLLVMDirs are the paper's LLVMDIRs.
func DefaultLLVMDirs() []string {
	return []string{"llvm/CodeGen", "llvm/MC", "llvm/BinaryFormat", "llvm/Target"}
}

// TGTDirs returns the paper's TGTDIRs for a target.
func TGTDirs(target string) []string {
	return []string{"lib/Target/" + target, "llvm/BinaryFormat/ELFRelocs"}
}

// NewExtractor builds an extractor and its PropCandidateSet over LLVMDIRs.
func NewExtractor(tree *tablegen.SourceTree, llvmDirs []string) *Extractor {
	if llvmDirs == nil {
		llvmDirs = DefaultLLVMDirs()
	}
	e := &Extractor{
		Tree: tree, LLVMDirs: llvmDirs,
		tdCache:     make(map[string]*tablegen.TDFile),
		tdFailed:    make(map[string]bool),
		recordCache: make(map[string]*recordMaps),
		pmCache:     make(map[[2]string]bool),
	}
	e.buildPropList()
	return e
}

// parseTD returns a cached parse of a .td file.
func (e *Extractor) parseTD(path string) (*tablegen.TDFile, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.parseTDLocked(path)
}

// parseTDLocked is parseTD for callers already holding e.mu. Parse
// failures are remembered in a separate negative cache (tdFailed), so a
// cached failure reports !ok exactly like the first attempt did — it is
// never conflated with a successfully parsed (possibly empty) file.
func (e *Extractor) parseTDLocked(path string) (*tablegen.TDFile, bool) {
	if td, ok := e.tdCache[path]; ok {
		return td, true
	}
	if e.tdFailed[path] {
		return nil, false
	}
	content, _ := e.Tree.Content(path)
	td, err := tablegen.ParseTD(content)
	if err != nil {
		e.tdFailed[path] = true
		return nil, false
	}
	e.tdCache[path] = td
	return td, true
}

// partialMatch is PartialMatch with per-extractor memoization; exact,
// safe for concurrent use.
func (e *Extractor) partialMatch(tok, str string) bool {
	key := [2]string{tok, str}
	e.pmMu.Lock()
	v, ok := e.pmCache[key]
	e.pmMu.Unlock()
	if ok {
		return v
	}
	v = PartialMatch(tok, str)
	e.pmMu.Lock()
	e.pmCache[key] = v
	e.pmMu.Unlock()
	return v
}

// buildPropList gathers class names, enum names and global variables
// declared under LLVMDIRs (Algorithm 1 line 5).
func (e *Extractor) buildPropList() {
	e.propSites = make(map[string]string)
	add := func(name, path string) {
		if name == "" {
			return
		}
		if _, ok := e.propSites[name]; !ok {
			e.propSites[name] = path
		}
	}
	for _, path := range e.Tree.PathsUnder(e.LLVMDirs) {
		content, _ := e.Tree.Content(path)
		// Enum names (and the enums' own members count as locatable but
		// not as properties).
		if strings.HasSuffix(path, ".h") {
			enums, err := tablegen.ParseEnums(content)
			if err == nil {
				for _, en := range enums {
					add(en.Name, path)
				}
			}
			// Class names: "class X" / "struct X".
			for _, name := range classNames(content) {
				add(name, path)
			}
		}
		if strings.HasSuffix(path, ".td") {
			td, err := tablegen.ParseTD(content)
			if err != nil {
				continue
			}
			for _, rec := range td.Records {
				if rec.Kind == "class" {
					add(rec.Name, path)
					// Field names of LLVM-core classes are the paper's
					// "global variables" (OperandType, Name, ...).
					for _, f := range rec.Fields {
						add(f.Name, path)
					}
				}
			}
			for _, a := range td.TopAssigns {
				add(a.Name, path)
			}
		}
	}
}

// classNames scans header text for "class X"/"struct X" declarations.
func classNames(content string) []string {
	var out []string
	fields := strings.Fields(content)
	for i := 0; i+1 < len(fields); i++ {
		if fields[i] == "class" || fields[i] == "struct" {
			name := strings.TrimRight(fields[i+1], "{;:")
			if isIdent(name) {
				out = append(out, name)
			}
		}
	}
	return out
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// InPropList reports whether the identifier is a candidate property.
func (e *Extractor) InPropList(name string) bool {
	_, ok := e.propSites[name]
	return ok
}

// IdentifiedSite returns a property's declaration path under LLVMDIRs.
func (e *Extractor) IdentifiedSite(name string) string { return e.propSites[name] }

// PropListSize reports the candidate-set size (for diagnostics).
func (e *Extractor) PropListSize() int { return len(e.propSites) }

// PropNames returns the sorted candidate identifiers (for diagnostics).
func (e *Extractor) PropNames() []string {
	out := make([]string, 0, len(e.propSites))
	for n := range e.propSites {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
