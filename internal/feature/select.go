package feature

import (
	"strings"

	"vega/internal/cpp"
	"vega/internal/tablegen"
	"vega/internal/template"
)

// GlobalFeatureProps lists the subtarget feature bits every template's
// schema carries regardless of its own tokens. The paper's feature vector
// spans all 345 properties globally; these flags are the slice of it that
// predicts whole-function presence (a DIS function exists only on
// HasDisassembler targets even though its body never names the bit).
func (e *Extractor) GlobalFeatureProps() []Property {
	var out []Property
	for _, name := range []string{
		"HasVariantKind", "HasHardwareLoop", "HasSIMD", "HasRealtimeISA",
		"HasDelaySlots", "HasCmpFlags", "IsBigEndian", "HasDisassembler",
		"HasFramePointer", "HasReturnAddressReg",
	} {
		if !e.InPropList(name) {
			continue
		}
		out = append(out, Property{
			Name: name, Kind: Independent, Method: MethodToken,
			IdentifiedSite: e.propSites[name],
		})
	}
	return out
}

// Select runs Algorithm 1 over a function template for a set of training
// targets, producing the template's property schema and every target's
// values.
func (e *Extractor) Select(ft *template.FunctionTemplate, targets []string) *TemplateFeatures {
	tf := &TemplateFeatures{
		FT:       ft,
		VarProps: make(map[int][]int),
		Targets:  make(map[string]*TargetFeatures, len(targets)),
	}
	tf.Props = append(tf.Props, e.GlobalFeatureProps()...)

	// --- independent properties over the common code (lines 8-24) ---
	// First pass: decide, per candidate token, which discovery case hits
	// on each target; tokens hit by cases 1/2 anywhere are "specialized",
	// tokens hit only by case 3 are universal.
	type indDiscovery struct {
		prop      Property
		perTarget map[string]BoolVal
	}
	var indOrder []string
	indFound := map[string]*indDiscovery{}

	commonTokens := commonTokenSet(ft)
	for _, target := range targets {
		tgtDirs := TGTDirs(target)
		for _, tok := range commonTokens {
			name, method, site, ok := e.discoverIndependent(tok, tgtDirs)
			if !ok {
				continue
			}
			d := indFound[name]
			if d == nil {
				d = &indDiscovery{
					prop: Property{
						Name:           name,
						Kind:           Independent,
						Method:         method,
						IdentifiedSite: e.propSites[name],
					},
					perTarget: map[string]BoolVal{},
				}
				indFound[name] = d
				indOrder = append(indOrder, name)
			}
			if method != MethodCore {
				// Specialized hit for this target overrides the universal
				// default and upgrades the property's method.
				d.perTarget[target] = BoolVal{Value: true, UpdateSite: site}
				if d.prop.Method == MethodCore {
					d.prop.Method = method
				}
			}
		}
	}
	for _, name := range indOrder {
		if tf.PropIndex(name) >= 0 {
			continue // already carried as a global feature property
		}
		d := indFound[name]
		tf.Props = append(tf.Props, d.prop)
	}

	// --- dependent properties over placeholders (lines 25-40) ---
	type depDiscovery struct {
		prop Property
	}
	depIndex := map[string]int{} // prop name -> index in tf.Props
	for ri := range ft.Rows {
		ids := ft.Rows[ri].VarIDs()
		if len(ids) == 0 {
			continue
		}
		for _, target := range targets {
			vals, ok := ft.Values(ri, target)
			if !ok {
				continue
			}
			for _, id := range ids {
				val, ok := vals[id]
				if !ok || val == "" {
					continue
				}
				for _, vtok := range strings.Fields(val) {
					vtok = strings.Trim(vtok, "\"")
					prop, ok := e.discoverDependent(vtok, target)
					if !ok {
						continue
					}
					pi, exists := depIndex[prop.Name]
					if !exists {
						pi = len(tf.Props)
						depIndex[prop.Name] = pi
						tf.Props = append(tf.Props, prop)
					}
					if !containsInt(tf.VarProps[id], pi) {
						tf.VarProps[id] = append(tf.VarProps[id], pi)
					}
				}
			}
		}
	}

	// --- per-target values ---
	for _, target := range targets {
		tf.Targets[target] = e.TargetValues(tf, target)
	}
	return tf
}

// TargetValues resolves every property of the schema against one target's
// description files. It works for training targets and unseen ones alike —
// this is what Stage 3 calls for a new target.
func (e *Extractor) TargetValues(tf *TemplateFeatures, target string) *TargetFeatures {
	tgtDirs := TGTDirs(target)
	out := &TargetFeatures{
		Target: target,
		Bools:  make(map[string]BoolVal),
		Deps:   make(map[string]DepInfo),
	}
	for _, p := range tf.Props {
		switch p.Kind {
		case Independent:
			if p.Method == MethodCore {
				out.Bools[p.Name] = BoolVal{Value: true, UpdateSite: p.IdentifiedSite}
				continue
			}
			if name, m, site, ok := e.discoverIndependent(p.Name, tgtDirs); ok && name == p.Name && m != MethodCore {
				out.Bools[p.Name] = BoolVal{Value: true, UpdateSite: site}
			} else if site, ok := e.partialAssignSite(p.Name, tgtDirs); ok {
				out.Bools[p.Name] = BoolVal{Value: true, UpdateSite: site}
			} else {
				out.Bools[p.Name] = BoolVal{Value: false}
			}
		case Dependent:
			out.Deps[p.Name] = e.dependentCandidates(p, target)
		}
	}
	return out
}

// commonTokenSet lists the distinct literal identifier tokens of the
// template's common code, in first-appearance order.
func commonTokenSet(ft *template.FunctionTemplate) []string {
	seen := map[string]bool{}
	var out []string
	for _, row := range ft.Rows {
		for _, el := range row.Pattern {
			if el.Var || !isIdent(el.Text) || cpp.IsKeywordText(el.Text) {
				continue
			}
			if !seen[el.Text] {
				seen[el.Text] = true
				out = append(out, el.Text)
			}
		}
	}
	return out
}

// discoverIndependent applies the three cases of lines 8-24 to one token.
func (e *Extractor) discoverIndependent(tok string, tgtDirs []string) (name string, method Method, site string, ok bool) {
	// Case 1: token occurs under TGTDIRs and is a candidate property.
	if e.InPropList(tok) {
		if paths := e.Tree.FindToken(tok, tgtDirs); len(paths) > 0 {
			return tok, MethodToken, paths[0], true
		}
	}
	// Case 2: partial match against assignment RHS under TGTDIRs.
	if name, site, ok := e.partialAssignProp(tok, tgtDirs); ok {
		return name, MethodPartial, site, true
	}
	// Case 3: declared only in LLVMDIRs.
	if e.InPropList(tok) {
		return tok, MethodCore, e.propSites[tok], true
	}
	return "", 0, "", false
}

// partialAssignProp finds an assignment "prop = str" under tgtDirs whose
// RHS partially matches tok, with prop in the candidate set.
func (e *Extractor) partialAssignProp(tok string, tgtDirs []string) (string, string, bool) {
	for _, a := range e.Tree.AssignmentsUnder(tgtDirs) {
		if !a.IsStr || !e.InPropList(a.LHS) {
			continue
		}
		if e.partialMatch(tok, a.RHS) {
			return a.LHS, a.Path, true
		}
	}
	return "", "", false
}

// partialAssignSite checks whether the property itself is assigned under
// tgtDirs ("OperandType = ..." present for this target).
func (e *Extractor) partialAssignSite(prop string, tgtDirs []string) (string, bool) {
	for _, a := range e.Tree.AssignmentsUnder(tgtDirs) {
		if a.LHS == prop {
			return a.Path, true
		}
	}
	return "", false
}

// discoverDependent applies lines 25-40 to one placeholder value token.
func (e *Extractor) discoverDependent(val, target string) (Property, bool) {
	tgtDirs := TGTDirs(target)
	// Case 1a: enum membership under TGTDIRs.
	if enumName, path, ok := e.Tree.EnumContaining(val, tgtDirs); ok {
		if e.InPropList(enumName) {
			return Property{
				Name: enumName, Kind: Dependent, Method: MethodEnum,
				IdentifiedSite: e.propSites[enumName], EnumName: enumName,
			}, true
		}
		// Correlate through member initializers with an LLVMDIRs enum
		// (Fixups -> MCFixupKind via FirstTargetFixupKind).
		if core, ok := e.correlateEnum(enumName, path); ok {
			return Property{
				Name: core, Kind: Dependent, Method: MethodEnum,
				IdentifiedSite: e.propSites[core], EnumName: core,
			}, true
		}
	}
	// Case 1b: element of a TableGen list assignment "prop = [..., val, ...]".
	for _, la := range e.Tree.ListAssignmentsUnder(tgtDirs) {
		if !e.InPropList(la.LHS) {
			continue
		}
		for _, item := range la.Items {
			if item == val {
				return Property{
					Name: la.LHS, Kind: Dependent, Method: MethodList,
					IdentifiedSite: e.propSites[la.LHS],
				}, true
			}
		}
	}
	// Case 1c: exact assignment "prop = val".
	for _, a := range e.Tree.AssignmentsUnder(tgtDirs) {
		if a.RHS == val && e.InPropList(a.LHS) {
			return Property{
				Name: a.LHS, Kind: Dependent, Method: MethodAssign,
				IdentifiedSite: e.propSites[a.LHS],
			}, true
		}
	}
	// Case 1d: TableGen record whose class chain reaches an LLVMDIRs class.
	if class, ok := e.recordClass(val, tgtDirs); ok {
		return Property{
			Name: class, Kind: Dependent, Method: MethodRecord,
			IdentifiedSite: e.propSites[class], ClassName: class,
		}, true
	}
	// Case 2: partial match against assignment RHS.
	for _, a := range e.Tree.AssignmentsUnder(tgtDirs) {
		if a.IsStr && e.InPropList(a.LHS) && e.partialMatch(val, a.RHS) {
			return Property{
				Name: a.LHS, Kind: Dependent, Method: MethodAssign,
				IdentifiedSite: e.propSites[a.LHS],
			}, true
		}
	}
	return Property{}, false
}

// correlateEnum maps a target enum to the LLVMDIRs enum its member
// initializers reference.
func (e *Extractor) correlateEnum(enumName, path string) (string, bool) {
	content, _ := e.Tree.Content(path)
	enums, err := tablegen.ParseEnums(content)
	if err != nil {
		return "", false
	}
	llvmEnums := e.Tree.EnumsUnder(e.LLVMDirs)
	for _, en := range enums {
		if en.Name != enumName {
			continue
		}
		for _, m := range en.Members {
			if m.Value == "" {
				continue
			}
			for _, ref := range strings.Fields(m.Value) {
				for corePath, ces := range llvmEnums {
					for _, ce := range ces {
						if ce.Has(ref) {
							_ = corePath
							return ce.Name, true
						}
					}
				}
			}
		}
	}
	return "", false
}

// recordsFor builds (and caches) the class/def indexes of one directory
// set, keyed by the joined prefix list.
func (e *Extractor) recordsFor(tgtDirs []string) *recordMaps {
	e.mu.Lock()
	defer e.mu.Unlock()
	key := strings.Join(tgtDirs, "|")
	if rm, ok := e.recordCache[key]; ok {
		return rm
	}
	rm := &recordMaps{classes: map[string][]string{}, defs: map[string][]string{}}
	for _, path := range e.append2(e.Tree.PathsUnder(tgtDirs), e.Tree.PathsUnder(e.LLVMDirs)) {
		if !strings.HasSuffix(path, ".td") {
			continue
		}
		td, ok := e.parseTDLocked(path)
		if !ok {
			continue
		}
		for _, rec := range td.Records {
			if rec.Kind == "class" {
				rm.classes[rec.Name] = rec.Parents
			} else if rec.Name != "" {
				rm.defs[rec.Name] = rec.Parents
			}
		}
	}
	e.recordCache[key] = rm
	return rm
}

// recordClass resolves a def name under tgtDirs to its root LLVMDIRs class.
func (e *Extractor) recordClass(val string, tgtDirs []string) (string, bool) {
	rm := e.recordsFor(tgtDirs)
	classes, defs := rm.classes, rm.defs
	parents, ok := defs[val]
	if !ok {
		return "", false
	}
	// Walk the class chain breadth-first to the first candidate class.
	queue := append([]string(nil), parents...)
	seen := map[string]bool{}
	for len(queue) > 0 {
		c := queue[0]
		queue = queue[1:]
		if seen[c] {
			continue
		}
		seen[c] = true
		if e.InPropList(c) {
			return c, true
		}
		queue = append(queue, classes[c]...)
	}
	return "", false
}

func (e *Extractor) append2(a, b []string) []string {
	out := make([]string, 0, len(a)+len(b))
	out = append(out, a...)
	return append(out, b...)
}

// targetPaths lists the description files that belong to one target:
// everything under lib/Target/<T>, plus files in shared TGTDIRs whose base
// name carries the target's name (llvm/BinaryFormat/ELFRelocs/<T>.def).
func (e *Extractor) targetPaths(target string) []string {
	var out []string
	ownPrefix := "lib/Target/" + target + "/"
	for _, path := range e.Tree.PathsUnder(TGTDirs(target)) {
		if strings.HasPrefix(path, ownPrefix) {
			out = append(out, path)
			continue
		}
		base := path[strings.LastIndex(path, "/")+1:]
		if strings.HasPrefix(strings.ToLower(base), strings.ToLower(target)) {
			out = append(out, path)
		}
	}
	return out
}

// dependentCandidates mines a target's TgtValSet for one dependent
// property.
func (e *Extractor) dependentCandidates(p Property, target string) DepInfo {
	tgtDirs := TGTDirs(target)
	switch p.Method {
	case MethodEnum:
		// Find the enum under TGTDIRs correlated with p.EnumName: same
		// name, or member initializers referencing it.
		for _, path := range e.targetPaths(target) {
			content, _ := e.Tree.Content(path)
			if !strings.HasSuffix(path, ".h") && !strings.HasSuffix(path, ".def") {
				continue
			}
			enums, err := tablegen.ParseEnums(content)
			if err != nil {
				continue
			}
			if strings.HasSuffix(path, ".def") {
				macros, err := tablegen.ParseDefFile(content)
				if err == nil {
					var en tablegen.Enum
					for _, m := range macros {
						en.Name = m.Name
						if len(m.Args) > 0 {
							en.Members = append(en.Members, tablegen.EnumMember{Name: m.Args[0]})
						}
					}
					if en.Name != "" {
						enums = append(enums, en)
					}
				}
			}
			for _, en := range enums {
				if en.Name == p.EnumName || e.enumReferences(en, p.EnumName) {
					return DepInfo{Candidates: realMembers(en), UpdateSite: path}
				}
			}
		}
	case MethodRecord:
		var cands []string
		var site string
		for _, path := range e.targetPaths(target) {
			if !strings.HasSuffix(path, ".td") {
				continue
			}
			td, ok := e.parseTD(path)
			if !ok {
				continue
			}
			for _, rec := range td.Records {
				if rec.Kind != "def" || rec.Name == "" {
					continue
				}
				if _, ok := e.recordClassIs(rec.Name, p.ClassName, tgtDirs); ok {
					cands = append(cands, rec.Name)
					site = path
				}
			}
		}
		return DepInfo{Candidates: cands, UpdateSite: site}
	case MethodList:
		own := map[string]bool{}
		for _, path := range e.targetPaths(target) {
			own[path] = true
		}
		for _, la := range e.Tree.ListAssignmentsUnder(tgtDirs) {
			if la.LHS == p.Name && own[la.Path] {
				return DepInfo{Candidates: la.Items, UpdateSite: la.Path}
			}
		}
	case MethodAssign:
		var cands []string
		var site string
		seen := map[string]bool{}
		own := map[string]bool{}
		for _, path := range e.targetPaths(target) {
			own[path] = true
		}
		for _, a := range e.Tree.AssignmentsUnder(tgtDirs) {
			if !own[a.Path] {
				continue
			}
			if a.LHS == p.Name && !seen[a.RHS] {
				seen[a.RHS] = true
				cands = append(cands, a.RHS)
				site = a.Path
			}
		}
		return DepInfo{Candidates: cands, UpdateSite: site}
	}
	return DepInfo{}
}

// enumReferences reports whether any member initializer of en references a
// member of the named LLVMDIRs enum.
func (e *Extractor) enumReferences(en tablegen.Enum, coreEnum string) bool {
	coreMembers := e.Tree.EnumMembers(coreEnum, e.LLVMDirs)
	if len(coreMembers) == 0 {
		return false
	}
	coreSet := map[string]bool{}
	for _, m := range coreMembers {
		coreSet[m] = true
	}
	for _, m := range en.Members {
		for _, ref := range strings.Fields(m.Value) {
			if coreSet[ref] {
				return true
			}
		}
	}
	return false
}

// recordClassIs checks whether def's class chain reaches class.
func (e *Extractor) recordClassIs(def, class string, tgtDirs []string) (string, bool) {
	got, ok := e.recordClass(def, tgtDirs)
	if ok && got == class {
		return got, true
	}
	return "", false
}

// realMembers drops bookkeeping enumerators (counts, sentinels) from a
// candidate set.
func realMembers(en tablegen.Enum) []string {
	var out []string
	for _, m := range en.Members {
		if strings.Contains(m.Name, "Num") || strings.HasPrefix(m.Name, "Last") ||
			strings.HasPrefix(m.Name, "First") {
			continue
		}
		out = append(out, m.Name)
	}
	return out
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// PartialMatch implements the paper's loose string matching: descriptive
// identifiers like IsPCRel match values like "OPERAND_PCREL" because a
// camel-case run of one, normalized, is a substring of the other.
func PartialMatch(tok, str string) bool {
	nt, ns := normalize(tok), normalize(str)
	if nt == "" || ns == "" {
		return false
	}
	if len(nt) >= 4 && strings.Contains(ns, nt) {
		return true
	}
	if len(ns) >= 4 && strings.Contains(nt, ns) {
		return true
	}
	// A short value that prefixes the token still matches: "ARM" explains
	// ARMELFObjectWriter.
	if len(ns) >= 3 && strings.HasPrefix(nt, ns) {
		return true
	}
	// Contiguous camel-case runs of tok (length >= 4 normalized).
	runs := camelRuns(tok)
	for i := 0; i < len(runs); i++ {
		for j := i; j < len(runs); j++ {
			sub := normalize(strings.Join(runs[i:j+1], ""))
			if len(sub) >= 4 && strings.Contains(ns, sub) {
				return true
			}
		}
	}
	return false
}

// normalize uppercases and strips separators. Byte-wise: ASCII letters
// are uppercased in place and non-ASCII bytes pass through unchanged,
// which is exactly what the rune-wise version produced.
func normalize(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '_' || c == ' ' {
			continue
		}
		if c >= 'a' && c <= 'z' {
			c -= 32
		}
		b.WriteByte(c)
	}
	return b.String()
}

// camelRuns splits CamelCase and snake_case identifiers into runs.
func camelRuns(s string) []string {
	var runs []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			runs = append(runs, cur.String())
			cur.Reset()
		}
	}
	rs := []rune(s)
	isUp := func(r rune) bool { return r >= 'A' && r <= 'Z' }
	isLo := func(r rune) bool { return r >= 'a' && r <= 'z' }
	for i, r := range rs {
		switch {
		case r == '_':
			flush()
		case isUp(r):
			// Boundaries: lower->Upper ("IsPC"), and Upper->Upper+lower
			// ("PCRel" splits before "Rel").
			if i > 0 && isLo(rs[i-1]) {
				flush()
			} else if i > 0 && isUp(rs[i-1]) && i+1 < len(rs) && isLo(rs[i+1]) {
				flush()
			}
			cur.WriteRune(r)
		default:
			cur.WriteRune(r)
		}
	}
	flush()
	return runs
}
