package feature

import (
	"testing"

	"vega/internal/cpp"
	"vega/internal/tablegen"
	"vega/internal/template"
)

// miniTree builds a small LLVM-shaped source tree with two training
// targets (ARM, MIPS) exercising every discovery method.
func miniTree() *tablegen.SourceTree {
	tree := tablegen.NewSourceTree()
	// --- LLVMDIRs ---
	tree.Add("llvm/MC/MCFixup.h", `
class MCFixup {};
enum MCFixupKind {
  FK_NONE = 0,
  FK_Data_4 = 1,
  FirstTargetFixupKind = 128
};`)
	tree.Add("llvm/MC/MCExpr.h", `
class MCSymbolRefExpr {
};
enum VariantKind {
  VK_None = 0
};`)
	tree.Add("llvm/BinaryFormat/ELF.h", `
enum ELF_RELOC {
  R_NONE = 0
};`)
	tree.Add("llvm/Target/Target.td", `
class Target {
  string Name = "";
}
class Operand {
  string OperandType = "OPERAND_UNKNOWN";
}
class Register {
  string AsmName = "";
}
class Instruction {
  string AsmString = "";
}`)
	// --- ARM TGTDIRs ---
	tree.Add("lib/Target/ARM/ARM.td", `
def ARMTarget : Target {
  let Name = "ARM";
}`)
	tree.Add("lib/Target/ARM/ARMInstrInfo.td", `
OperandType = "OPERAND_PCREL"
class ARMInst : Instruction {
}
def MOVT : ARMInst {
  let AsmString = "movt";
}`)
	tree.Add("lib/Target/ARM/ARMFixupKinds.h", `
enum Fixups {
  fixup_arm_movt_hi16 = FirstTargetFixupKind,
  fixup_arm_ldst = FirstTargetFixupKind + 1,
  NumTargetFixupKinds = 2
};`)
	tree.Add("lib/Target/ARM/ARMMCExpr.h", `
enum VariantKind {
  VK_ARM_HI16 = 1
};`)
	tree.Add("llvm/BinaryFormat/ELFRelocs/ARM.def", `
ELF_RELOC(R_ARM_NONE, 0)
ELF_RELOC(R_ARM_MOVT_PREL, 45)
ELF_RELOC(R_ARM_ABS32, 2)
`)
	// --- MIPS TGTDIRs (no VariantKind specialization) ---
	tree.Add("lib/Target/MIPS/MIPS.td", `
def MIPSTarget : Target {
  let Name = "Mips";
}`)
	tree.Add("lib/Target/MIPS/MIPSInstrInfo.td", `
OperandType = "OPERAND_PCREL"
class MipsInst : Instruction {
}
def LUI : MipsInst {
  let AsmString = "lui";
}`)
	tree.Add("lib/Target/MIPS/MIPSFixupKinds.h", `
enum Fixups {
  fixup_MIPS_HI16 = FirstTargetFixupKind,
  fixup_MIPS_LO16 = FirstTargetFixupKind + 1,
  NumTargetFixupKinds = 2
};`)
	tree.Add("llvm/BinaryFormat/ELFRelocs/MIPS.def", `
ELF_RELOC(R_MIPS_NONE, 0)
ELF_RELOC(R_MIPS_HI16, 5)
ELF_RELOC(R_MIPS_32, 2)
`)
	return tree
}

const armGetReloc = `unsigned ARMELFObjectWriter::getRelocType(unsigned Kind, bool IsPCRel) {
  unsigned K = Fixup.getTargetKind();
  MCSymbolRefExpr::VariantKind Modifier = Target.getAccessVariant();
  if (IsPCRel) {
    switch (K) {
    case ARM::fixup_arm_movt_hi16:
      return ELF::R_ARM_MOVT_PREL;
    default:
      return ELF::R_ARM_NONE;
    }
  }
  return ELF::R_ARM_ABS32;
}`

const mipsGetReloc = `unsigned MIPSELFObjectWriter::getRelocType(unsigned Kind, bool IsPCRel) {
  unsigned K = Fixup.getTargetKind();
  if (IsPCRel) {
    switch (K) {
    case MIPS::fixup_MIPS_HI16:
      return ELF::R_MIPS_HI16;
    default:
      return ELF::R_MIPS_NONE;
    }
  }
  return ELF::R_MIPS_32;
}`

func relocTemplate(t *testing.T) *template.FunctionTemplate {
	t.Helper()
	parse := func(src string) *cpp.Node {
		fn, err := cpp.ParseFunction(src)
		if err != nil {
			t.Fatal(err)
		}
		return fn
	}
	ft, err := template.Build("getRelocType", []template.Impl{
		template.NewImpl("ARM", parse(armGetReloc)),
		template.NewImpl("MIPS", parse(mipsGetReloc)),
	})
	if err != nil {
		t.Fatal(err)
	}
	return ft
}

func TestPropListContainsDeclarations(t *testing.T) {
	e := NewExtractor(miniTree(), nil)
	for _, want := range []string{"MCFixupKind", "MCSymbolRefExpr", "VariantKind", "ELF_RELOC", "Name", "OperandType", "Target", "Instruction"} {
		if !e.InPropList(want) {
			t.Errorf("PropList missing %q (have %v)", want, e.PropNames())
		}
	}
	// Target-local identifiers must not be candidate properties.
	for _, wrong := range []string{"fixup_arm_movt_hi16", "ARMInst", "MOVT"} {
		if e.InPropList(wrong) {
			t.Errorf("PropList wrongly contains target-local %q", wrong)
		}
	}
}

func TestSelectIndependentProperties(t *testing.T) {
	e := NewExtractor(miniTree(), nil)
	tf := e.Select(relocTemplate(t), []string{"ARM", "MIPS"})

	vi := tf.PropIndex("VariantKind")
	if vi == -1 {
		t.Fatalf("VariantKind property not selected; props = %+v", tf.Props)
	}
	if tf.Props[vi].Kind != Independent {
		t.Errorf("VariantKind kind = %v", tf.Props[vi].Kind)
	}
	arm, mips := tf.Targets["ARM"], tf.Targets["MIPS"]
	if !arm.Bools["VariantKind"].Value {
		t.Error("VariantKind should be true for ARM (specialized in ARMMCExpr.h)")
	}
	if mips.Bools["VariantKind"].Value {
		t.Error("VariantKind should be false for MIPS (not specialized)")
	}
	if arm.Bools["VariantKind"].UpdateSite != "lib/Target/ARM/ARMMCExpr.h" {
		t.Errorf("VariantKind ARM update site = %q", arm.Bools["VariantKind"].UpdateSite)
	}

	// MCSymbolRefExpr is declared only in LLVMDIRs: universal, true for both.
	si := tf.PropIndex("MCSymbolRefExpr")
	if si == -1 {
		t.Fatal("MCSymbolRefExpr property not selected")
	}
	if !arm.Bools["MCSymbolRefExpr"].Value || !mips.Bools["MCSymbolRefExpr"].Value {
		t.Error("MCSymbolRefExpr should be universally true")
	}

	// OperandType is discovered from IsPCRel by partial matching.
	oi := tf.PropIndex("OperandType")
	if oi == -1 {
		t.Fatalf("OperandType not discovered via partial match; props = %+v", tf.Props)
	}
	if !arm.Bools["OperandType"].Value || !mips.Bools["OperandType"].Value {
		t.Error("OperandType should be true for both targets")
	}
}

func TestSelectDependentProperties(t *testing.T) {
	e := NewExtractor(miniTree(), nil)
	tf := e.Select(relocTemplate(t), []string{"ARM", "MIPS"})

	fi := tf.PropIndex("MCFixupKind")
	if fi == -1 {
		t.Fatalf("MCFixupKind not selected; props = %+v", tf.Props)
	}
	if tf.Props[fi].Kind != Dependent || tf.Props[fi].Method != MethodEnum {
		t.Errorf("MCFixupKind = %+v", tf.Props[fi])
	}
	arm := tf.Targets["ARM"]
	dep := arm.Deps["MCFixupKind"]
	if dep.N() != 2 {
		t.Errorf("ARM MCFixupKind candidates = %v, want 2 (Num sentinel filtered)", dep.Candidates)
	}
	if dep.Candidates[0] != "fixup_arm_movt_hi16" {
		t.Errorf("first candidate = %q", dep.Candidates[0])
	}
	if dep.UpdateSite != "lib/Target/ARM/ARMFixupKinds.h" {
		t.Errorf("update site = %q", dep.UpdateSite)
	}

	// Name discovered from placeholder value "ARM" matching Name = "ARM".
	ni := tf.PropIndex("Name")
	if ni == -1 {
		t.Fatalf("Name property not selected; props = %+v", tf.Props)
	}
	if got := arm.Deps["Name"].Candidates; len(got) != 1 || got[0] != "ARM" {
		t.Errorf("ARM Name candidates = %v", got)
	}
	if got := tf.Targets["MIPS"].Deps["Name"].Candidates; len(got) != 1 || got[0] != "Mips" {
		t.Errorf("MIPS Name candidates = %v", got)
	}

	// ELF_RELOC values from the .def files.
	ei := tf.PropIndex("ELF_RELOC")
	if ei == -1 {
		t.Fatalf("ELF_RELOC not selected; props = %+v", tf.Props)
	}
	if got := arm.Deps["ELF_RELOC"].Candidates; len(got) != 3 {
		t.Errorf("ARM ELF_RELOC candidates = %v", got)
	}
	for _, c := range tf.Targets["MIPS"].Deps["ELF_RELOC"].Candidates {
		if c == "R_ARM_NONE" {
			t.Error("MIPS candidates leaked ARM relocations")
		}
	}
}

func TestVarPropsLinkage(t *testing.T) {
	e := NewExtractor(miniTree(), nil)
	ft := relocTemplate(t)
	tf := e.Select(ft, []string{"ARM", "MIPS"})
	if len(tf.VarProps) == 0 {
		t.Fatal("no placeholder-property links")
	}
	// Some placeholder must link to MCFixupKind.
	fi := tf.PropIndex("MCFixupKind")
	found := false
	for _, props := range tf.VarProps {
		for _, pi := range props {
			if pi == fi {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("no placeholder linked to MCFixupKind: %+v", tf.VarProps)
	}
}

func TestTargetValuesForUnseenTarget(t *testing.T) {
	tree := miniTree()
	// Add RISCV description files only — no implementation exists.
	tree.Add("lib/Target/RISCV/RISCV.td", `
def RISCVTarget : Target {
  let Name = "RISCV";
}`)
	tree.Add("lib/Target/RISCV/RISCVInstrInfo.td", `
OperandType = "OPERAND_PCREL"
class RVInst : Instruction {
}
def LUI : RVInst {
  let AsmString = "lui";
}`)
	tree.Add("lib/Target/RISCV/RISCVFixupKinds.h", `
enum Fixups {
  fixup_riscv_pcrel_hi20 = FirstTargetFixupKind,
  NumTargetFixupKinds = 1
};`)
	tree.Add("llvm/BinaryFormat/ELFRelocs/RISCV.def", `
ELF_RELOC(R_RISCV_NONE, 0)
ELF_RELOC(R_RISCV_PCREL_HI20, 23)
`)
	e := NewExtractor(tree, nil)
	tf := e.Select(relocTemplate(t), []string{"ARM", "MIPS"})
	rv := e.TargetValues(tf, "RISCV")

	if rv.Bools["VariantKind"].Value {
		t.Error("RISCV does not specialize VariantKind")
	}
	if !rv.Bools["OperandType"].Value {
		t.Error("RISCV OperandType should be true")
	}
	if got := rv.Deps["MCFixupKind"].Candidates; len(got) != 1 || got[0] != "fixup_riscv_pcrel_hi20" {
		t.Errorf("RISCV fixup candidates = %v", got)
	}
	if got := rv.Deps["Name"].Candidates; len(got) != 1 || got[0] != "RISCV" {
		t.Errorf("RISCV Name candidates = %v", got)
	}
	if got := rv.Deps["ELF_RELOC"].Candidates; len(got) != 2 {
		t.Errorf("RISCV reloc candidates = %v", got)
	}
}

func TestPartialMatch(t *testing.T) {
	cases := []struct {
		tok, str string
		want     bool
	}{
		{"IsPCRel", "OPERAND_PCREL", true},
		{"OperandType", "OPERAND_PCREL", true},
		{"ARMELFObjectWriter", "ARM", true}, // prefix rule: short value explains long token
		{"fixup_arm_movt_hi16", "movt", true},
		{"Kind", "OPERAND_PCREL", false},
		{"x", "y", false},
		{"", "anything", false},
	}
	for _, c := range cases {
		if got := PartialMatch(c.tok, c.str); got != c.want {
			t.Errorf("PartialMatch(%q, %q) = %v, want %v", c.tok, c.str, got, c.want)
		}
	}
}

func TestCamelRuns(t *testing.T) {
	got := camelRuns("IsPCRelMovtHi16")
	want := []string{"Is", "PC", "Rel", "Movt", "Hi16"}
	if len(got) != len(want) {
		t.Fatalf("camelRuns = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("run %d = %q, want %q", i, got[i], want[i])
		}
	}
}
