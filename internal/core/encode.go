package core

import (
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"vega/internal/confidence"
	"vega/internal/corpus"
	"vega/internal/feature"
	"vega/internal/model"
)

// Marker tokens structuring the model input (atomic vocabulary pieces).
const (
	markRow   = "[ROW]"
	markSep   = "[SEP]"
	markVar   = "[VAR]"
	markCand  = "[CAND]"
	markTrue  = "[T]"
	markFalse = "[F]"
	markOK    = "[OK]"  // statement present, no variant content
	markNil   = "[NIL]" // placeholder present but empty
)

// maxShownCands bounds the flat candidate list per placeholder, and with
// it the number of selection tokens.
const maxShownCands = 8

// selMarks are the pointer-style selection tokens: [C0] picks the first
// shown candidate, and so on. Selecting instead of character-copying is
// what makes value transfer learnable at this model scale; UniXcoder's
// 125M parameters absorb the copying itself, ours point at the input.
var selMarks = []string{"[C0]", "[C1]", "[C2]", "[C3]", "[C4]", "[C5]", "[C6]", "[C7]"}

var markerTokens = append([]string{markRow, markVar, markCand, markTrue, markFalse, markOK, markNil}, selMarks...)

func newRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// candidateSet ranks a target's mined candidates for one (row, var, prop):
// by subword similarity to the values other targets use at this placeholder
// (excluding the target itself), with ordinal proximity breaking ties.
// The top CandidateWindow survive, best first.
func (p *Pipeline) candidateSet(g *Group, row, varID int, prop feature.Property, tv *feature.TargetFeatures, exclude string) []string {
	dep, ok := tv.Deps[prop.Name]
	if !ok || len(dep.Candidates) == 0 {
		return nil
	}
	refs := p.referenceValues(g, row, varID, exclude)
	ord := p.ordinal(g, prop.Name, row, varID)
	// The similarity loop below is candidates × refs; splitting each side
	// into subword units once here (instead of once per pair inside
	// unitSimilarity) keeps the dice scores bit-identical while removing
	// the dominant allocation cost of sample encoding.
	refUnits := make([][]string, len(refs))
	for i, r := range refs {
		refUnits[i] = model.Units(strings.Trim(r, "\""))
	}
	type scored struct {
		val   string
		score float64
		idx   int
	}
	items := make([]scored, 0, len(dep.Candidates))
	for i, c := range dep.Candidates {
		s := 0.0
		if uc := model.Units(c); len(uc) > 0 {
			set := make(map[string]bool, len(uc))
			for _, u := range uc {
				set[u] = true
			}
			for _, ru := range refUnits {
				if len(ru) == 0 {
					continue
				}
				common := 0
				for _, u := range ru {
					if set[u] {
						common++
					}
				}
				if v := 2 * float64(common) / float64(len(uc)+len(ru)); v > s {
					s = v
				}
			}
		}
		// Ordinal proximity: candidates near the placeholder's position in
		// the enumeration order get a small boost.
		dist := i - ord
		if dist < 0 {
			dist = -dist
		}
		s += 0.2 / float64(1+dist)
		items = append(items, scored{val: c, score: s, idx: i})
	}
	sort.SliceStable(items, func(a, b int) bool { return items[a].score > items[b].score })
	k := p.Cfg.CandidateWindow
	if k > len(items) {
		k = len(items)
	}
	// When this placeholder is used as a string literal (the reference
	// values are quoted), present the candidates quoted too, so selection
	// reconstructs the exact source token.
	quoted := 0
	for _, r := range refs {
		if strings.HasPrefix(r, "\"") {
			quoted++
		}
	}
	wrap := len(refs) > 0 && quoted*2 > len(refs)
	out := make([]string, 0, k)
	for _, it := range items[:k] {
		v := it.val
		if wrap && !strings.HasPrefix(v, "\"") {
			v = "\"" + v + "\""
		}
		out = append(out, v)
	}
	return out
}

// referenceValues collects the values other training targets use for this
// placeholder.
func (p *Pipeline) referenceValues(g *Group, row, varID int, exclude string) []string {
	var out []string
	for _, tgt := range g.Targets {
		if tgt == exclude {
			continue
		}
		vals, ok := g.FT.Values(row, tgt)
		if !ok {
			continue
		}
		if v := vals[varID]; v != "" {
			out = append(out, v)
		}
	}
	return out
}

// ordinal counts how many placeholder slots linked to prop precede this
// one in template order — the slot's position in the target's enumeration.
func (p *Pipeline) ordinal(g *Group, prop string, row, varID int) int {
	pi := g.TF.PropIndex(prop)
	n := 0
	for ri := 0; ri <= row && ri < len(g.FT.Rows); ri++ {
		for _, id := range g.FT.Rows[ri].VarIDs() {
			if ri == row && id == varID {
				return n
			}
			for _, link := range g.TF.VarProps[id] {
				if link == pi {
					n++
					break
				}
			}
		}
	}
	return n
}

// unitSimilarity is the dice coefficient over subword unit sets.
func unitSimilarity(a, b string) float64 {
	ua, ub := model.Units(a), model.Units(b)
	if len(ua) == 0 || len(ub) == 0 {
		return 0
	}
	set := make(map[string]bool, len(ua))
	for _, u := range ua {
		set[u] = true
	}
	common := 0
	for _, u := range ub {
		if set[u] {
			common++
		}
	}
	return 2 * float64(common) / float64(len(ua)+len(ub))
}

// varCandidates returns the flat, ordered candidate list shown for one
// placeholder (prop-major, each prop contributing its similarity-ranked
// window), plus N(SV) — the total choice count behind it. The same list
// indexes the selection tokens at training, generation and decoding time.
func (p *Pipeline) varCandidates(g *Group, row, varID int, tv *feature.TargetFeatures, exclude string) ([]string, int) {
	var flat []string
	seen := map[string]bool{}
	n := 0
	nprops := 0
	for _, li := range g.TF.VarProps[varID] {
		if nprops >= p.Cfg.MaxCandProps {
			break
		}
		prop := g.TF.Props[li]
		cands := p.candidateSet(g, row, varID, prop, tv, exclude)
		if len(cands) == 0 {
			continue
		}
		nprops++
		if dep, ok := tv.Deps[prop.Name]; ok && n == 0 {
			n = dep.N()
		}
		for _, c := range cands {
			if seen[c] || len(flat) >= maxShownCands {
				continue
			}
			seen[c] = true
			flat = append(flat, c)
		}
	}
	return flat, n
}

// rowInputTokens builds the feature-vector token sequence I_k for one
// template row, resolved against one target's property values.
func (p *Pipeline) rowInputTokens(g *Group, row int, tv *feature.TargetFeatures, exclude string) []string {
	toks := []string{g.Func.Name, markRow, strconv.Itoa(row)}
	toks = append(toks, g.FT.Rows[row].PatternTokens()...)
	toks = append(toks, markSep)
	for _, pr := range g.TF.Props {
		if pr.Kind != feature.Independent {
			continue
		}
		if tv.Bools[pr.Name].Value {
			toks = append(toks, markTrue)
		} else {
			toks = append(toks, markFalse)
		}
	}
	ids := g.FT.Rows[row].VarIDs()
	if len(ids) > 0 {
		toks = append(toks, markSep)
		for _, id := range ids {
			toks = append(toks, markVar)
			cands, n := p.varCandidates(g, row, id, tv, exclude)
			toks = append(toks, strconv.Itoa(n))
			for i, c := range cands {
				toks = append(toks, selMarks[i])
				toks = append(toks, strings.Fields(c)...)
			}
		}
	}
	return toks
}

// rowFormulaScore computes Eq. (1) for a row against a target's mined
// candidate counts; has is the statement-existence bit.
func (p *Pipeline) rowFormulaScore(g *Group, row int, tv *feature.TargetFeatures, has bool) float64 {
	common := g.FT.CommonTokenCount(row)
	total := len(g.FT.Rows[row].Pattern)
	var choices []int
	for _, id := range g.FT.Rows[row].VarIDs() {
		n := 0
		for _, li := range g.TF.VarProps[id] {
			prop := g.TF.Props[li]
			if dep, ok := tv.Deps[prop.Name]; ok && dep.N() > 0 {
				n = dep.N()
				break
			}
		}
		choices = append(choices, n)
	}
	return confidence.Statement(common, total, choices, has)
}

// encodedSample is a sample plus its provenance.
type encodedSample struct {
	sample model.Sample
	key    string
	group  string
	target string
	row    int
}

// buildSample encodes one (group, row, target) pair into a training
// sample: input feature vector, output confidence bucket + statement.
func (p *Pipeline) buildSample(g *Group, row int, target string, tv *feature.TargetFeatures) encodedSample {
	in := p.rowInputTokens(g, row, tv, target)
	inIDs := append([]int{model.CLS}, p.Vocab.Encode(in)...)

	// The output is the row's decision content: a confidence bucket, then
	// either [ABSENT], [OK] (present, pure common code), or one [VAR] group
	// of value pieces per placeholder. The invariant code is spliced back
	// from the template at reconstruction time — the paper's common/variant
	// split, pushed through the decoder.
	var outIDs []int
	_, present := g.FT.Rows[row].PerTarget[target]
	score := p.rowFormulaScore(g, row, tv, present)
	outIDs = append(outIDs, p.Vocab.ConfidenceToken(score))
	switch {
	case !present:
		outIDs = append(outIDs, model.ABSENT)
	default:
		ids := g.FT.Rows[row].VarIDs()
		if len(ids) == 0 {
			outIDs = append(outIDs, p.Vocab.ID(markOK))
		} else {
			vals, _ := g.FT.Values(row, target)
			for _, id := range ids {
				outIDs = append(outIDs, p.Vocab.ID(markVar))
				outIDs = append(outIDs, p.encodeValue(g, row, id, tv, target, vals[id])...)
			}
		}
	}
	var key strings.Builder
	for _, id := range inIDs {
		key.WriteString(strconv.Itoa(id))
		key.WriteByte(',')
	}
	key.WriteByte('|')
	for _, id := range outIDs {
		key.WriteString(strconv.Itoa(id))
		key.WriteByte(',')
	}
	return encodedSample{
		sample: model.Sample{Input: inIDs, Output: outIDs},
		key:    key.String(),
		group:  g.Func.Name,
		target: target,
		row:    row,
	}
}

// encodeValue encodes one placeholder value as decision content: a
// selection token when the value is (or starts with) a shown candidate,
// raw pieces otherwise.
func (p *Pipeline) encodeValue(g *Group, row, varID int, tv *feature.TargetFeatures, exclude, v string) []int {
	if v == "" {
		return []int{p.Vocab.ID(markNil)}
	}
	cands, _ := p.varCandidates(g, row, varID, tv, exclude)
	for i, c := range cands {
		if c == v {
			return []int{p.Vocab.ID(selMarks[i])}
		}
	}
	// Composed values: candidate + suffix (RISCV + ELFObjectWriter).
	best, bestLen := -1, 0
	for i, c := range cands {
		if len(c) > bestLen && len(c) < len(v) && strings.HasPrefix(v, c) {
			best, bestLen = i, len(c)
		}
	}
	if best >= 0 {
		out := []int{p.Vocab.ID(selMarks[best])}
		return append(out, p.Vocab.EncodeContinuation(v[bestLen:])...)
	}
	return p.Vocab.Encode(strings.Fields(v))
}

// decodeValue inverts encodeValue given the model's piece ids for one
// placeholder group.
func (p *Pipeline) decodeValue(g *Group, row, varID int, tv *feature.TargetFeatures, exclude string, pieces []int) string {
	if len(pieces) == 0 {
		return ""
	}
	if pieces[0] == p.Vocab.ID(markNil) {
		return ""
	}
	cands, _ := p.varCandidates(g, row, varID, tv, exclude)
	var b strings.Builder
	rest := pieces
	// Leading selection token splices the candidate text.
	for i, m := range selMarks {
		if pieces[0] == p.Vocab.ID(m) {
			if i < len(cands) {
				b.WriteString(cands[i])
			}
			rest = pieces[1:]
			break
		}
	}
	if b.Len() == 0 && rest != nil && len(rest) == len(pieces) {
		// No selection token: plain decoded pieces.
		return joinTokens(p.Vocab.Decode(pieces))
	}
	// Remaining pieces continue the token (##) or start new ones.
	for _, id := range rest {
		t := p.Vocab.PieceText(id)
		if strings.HasPrefix(t, "##") {
			b.WriteString(t[2:])
		} else if t != "" && t[0] != '[' {
			b.WriteString(" ")
			b.WriteString(t)
		}
	}
	return b.String()
}

// trainingSequences gathers the raw token sequences of the training
// split, for vocabulary construction.
func (p *Pipeline) trainingSequences() [][]string {
	var seqs [][]string
	for _, g := range p.Groups {
		for _, tgt := range g.Targets {
			if !p.TrainFns[g.Func.Name+"/"+tgt] {
				continue
			}
			tv := g.TF.Targets[tgt]
			for ri := range g.FT.Rows {
				seqs = append(seqs, p.rowInputTokens(g, ri, tv, tgt))
				if toks, ok := g.FT.Rows[ri].PerTarget[tgt]; ok {
					seqs = append(seqs, toks)
				}
			}
		}
	}
	return seqs
}

// forceCharNames lists every fleet target's namespace variants, which the
// tokenizer always decomposes to characters: the model must treat target
// names as unseen strings even during training.
func (p *Pipeline) forceCharNames() []string {
	var out []string
	for t := range p.Provider.TargetSpecs() {
		out = append(out, t.Name, lower(t.Name), upper(t.Name), t.TdName)
	}
	return out
}

func lower(s string) string { return strings.ToLower(s) }
func upper(s string) string { return strings.ToUpper(s) }

// absentSamples teaches whole-function absence: for every group, every
// training backend that does NOT implement the interface function yields
// all-absent row samples. Without these, a model never sees "this function
// does not exist here" and hallucinates DIS functions for targets without
// a disassembler.
func (p *Pipeline) absentSamples() []encodedSample {
	var out []encodedSample
	for _, g := range p.Groups {
		implements := map[string]bool{}
		for _, tgt := range g.Targets {
			implements[tgt] = true
		}
		for _, t := range corpus.TrainingSpecs(p.Provider) {
			tgt := t.Name
			if implements[tgt] {
				continue
			}
			tv := p.Extractor.TargetValues(g.TF, tgt)
			for ri := range g.FT.Rows {
				out = append(out, p.buildSample(g, ri, tgt, tv))
			}
		}
	}
	return out
}

// samplesForSplit encodes all (group, target) pairs of a split.
func (p *Pipeline) samplesForSplit(split map[string]bool) []encodedSample {
	var out []encodedSample
	for _, g := range p.Groups {
		for _, tgt := range g.Targets {
			if !split[g.Func.Name+"/"+tgt] {
				continue
			}
			tv := g.TF.Targets[tgt]
			for ri := range g.FT.Rows {
				out = append(out, p.buildSample(g, ri, tgt, tv))
			}
		}
	}
	return out
}

// dedupAndCap removes duplicate samples and caps the set deterministically.
func (p *Pipeline) dedupAndCap(samples []encodedSample, capN int, seed int64) []model.Sample {
	seen := map[string]bool{}
	var uniq []encodedSample
	for _, s := range samples {
		if seen[s.key] {
			continue
		}
		seen[s.key] = true
		uniq = append(uniq, s)
	}
	rng := newRNG(seed)
	rng.Shuffle(len(uniq), func(i, j int) { uniq[i], uniq[j] = uniq[j], uniq[i] })
	if capN > 0 && len(uniq) > capN {
		uniq = uniq[:capN]
	}
	out := make([]model.Sample, len(uniq))
	for i, s := range uniq {
		out[i] = s.sample
	}
	return out
}
