package core

import (
	"context"
	"fmt"
	"log"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vega/internal/confidence"
	"vega/internal/corpus"
	"vega/internal/faultinject"
	"vega/internal/feature"
	"vega/internal/generate"
	"vega/internal/model"
	"vega/internal/obs"
	"vega/internal/repair"
	"vega/internal/template"
	"vega/internal/tensor"
)

func joinTokens(toks []string) string { return template.JoinTokens(toks) }

// genMetrics caches the Stage 3 instruments once per pipeline so the
// per-row decode path never touches the metric registry's lock. Every
// field is nil — and therefore a no-cost no-op — when no observer is
// installed.
type genMetrics struct {
	functions      *obs.Counter   // gen.functions: interface functions decoded
	decodeSeconds  *obs.Histogram // gen.decode_seconds: per-function decode time
	queueWait      *obs.Histogram // gen.queue_wait_seconds: pool start → task pickup
	recovered      *obs.Counter   // gen.recovered_panics: functions salvaged by the panic boundary
	beamFallbacks  *obs.Counter   // gen.beam_fallbacks: beam requests served greedily (wrong arch)
	beamEmpty      *obs.Counter   // gen.beam_empty: BeamGenerate returned zero beams
	kvHits         *obs.Counter   // gen.kv_cache_hits: decodes served by the KV-cached decoder
	kvMisses       *obs.Counter   // gen.kv_cache_misses: reference/uncached or non-transformer decodes
	quantDecodes   *obs.Counter   // gen.quant_decodes: rows decoded on the int8 path
	quantFallbacks *obs.Counter   // gen.quant_fallbacks: ambiguous int8 rows re-decoded in float32
	escalations    *obs.Counter   // gen.escalations: low-confidence greedy rows re-decoded with beam
}

func newGenMetrics(o *obs.Obs) genMetrics {
	return genMetrics{
		functions:      o.Counter("gen.functions"),
		decodeSeconds:  o.Histogram("gen.decode_seconds"),
		queueWait:      o.Histogram("gen.queue_wait_seconds"),
		recovered:      o.Counter("gen.recovered_panics"),
		beamFallbacks:  o.Counter("gen.beam_fallbacks"),
		beamEmpty:      o.Counter("gen.beam_empty"),
		kvHits:         o.Counter("gen.kv_cache_hits"),
		kvMisses:       o.Counter("gen.kv_cache_misses"),
		quantDecodes:   o.Counter("gen.quant_decodes"),
		quantFallbacks: o.Counter("gen.quant_fallbacks"),
		escalations:    o.Counter("gen.escalations"),
	}
}

// GenerateFunction runs Stage 3 for one interface function on a new
// target: it resolves the target's property values from its description
// files, builds one feature vector per template row, and decodes each
// into a confidence-annotated statement.
//
// The call is a panic boundary: a crash anywhere in feature resolution,
// decoding, or tensor math degrades to a zero-confidence, error-annotated
// function — one bad template row flags itself for review (the paper's
// per-function confidence behaviour) instead of killing the backend.
func (p *Pipeline) GenerateFunction(g *Group, target string) (fn *generate.Function) {
	return p.generateFunction(g, target, genMode{})
}

// genMode carries one generation call's decode strategy and any
// precomputed state from the batch pre-pass. The zero value is the
// historical behaviour: per-row self-encoded float32 decoding honoring
// Cfg.BeamWidth.
type genMode struct {
	// greedy bypasses beam search regardless of Cfg.BeamWidth — the
	// serving degrade ladder's beam→greedy downgrade, which must not flip
	// the pipeline-wide BeamFallback flag (it is a deliberate per-request
	// choice, not a capability failure).
	greedy bool
	// quantize routes row decodes through the int8 quantized weight view;
	// rows whose quantized decode is Ambiguous are re-decoded in float32,
	// so output accuracy is preserved by construction.
	quantize bool
	// escalate switches beam decoding to greedy-first: each row decodes
	// greedily and only re-decodes with beam search when its leading
	// confidence fails confidence.Threshold. No effect unless
	// Cfg.BeamWidth > 1 and greedy is off.
	escalate bool
	// tv, when non-nil, is the precomputed target-value set (the batch
	// pre-pass resolves it once per task; nil recomputes locally).
	tv *feature.TargetFeatures
	// rowMems, when non-nil, holds one pre-encoded encoder memory per
	// template row (quantized iff quantize is set); nil entries, and a
	// nil slice, self-encode per row.
	rowMems [][]float32
	// rowIDs, when non-nil, holds the encoded input token ids per
	// template row, exactly what the batch pre-pass fed EncodeBatch —
	// reusing them skips rebuilding the row features and re-encoding the
	// vocabulary a second time per row. A nil slice (or short entry)
	// rebuilds locally.
	rowIDs [][]int
}

// generateFunction is GenerateFunction under an explicit decode mode.
func (p *Pipeline) generateFunction(g *Group, target string, mode genMode) (fn *generate.Function) {
	defer func() {
		if r := recover(); r != nil {
			fn = generate.FailedFunction(g.Func.Name, g.FT.Module, target,
				fmt.Errorf("recovered panic: %v", r))
		}
	}()
	if faultinject.Should(faultinject.GeneratePanic, g.Func.Name) {
		panic(fmt.Sprintf("faultinject generate-panic in %s", g.Func.Name))
	}
	tv := mode.tv
	if tv == nil {
		tv = p.Extractor.TargetValues(g.TF, target)
	}
	fn = &generate.Function{
		Name:   g.Func.Name,
		Module: g.FT.Module,
		Target: target,
	}
	for ri := range g.FT.Rows {
		var inIDs []int
		if mode.rowIDs != nil && ri < len(mode.rowIDs) {
			inIDs = mode.rowIDs[ri]
		} else {
			in := p.rowInputTokens(g, ri, tv, target)
			inIDs = append([]int{model.CLS}, p.Vocab.Encode(in)...)
		}
		var mem []float32
		if mode.rowMems != nil && ri < len(mode.rowMems) {
			mem = mode.rowMems[ri]
		}
		outIDs := p.decodeRow(inIDs, mode, mem)
		fn.Statements = append(fn.Statements, p.decodeStatement(g, ri, tv, outIDs))
	}
	return fn
}

// decodeRow decodes one template row under mode. The fast path — taken
// when quantization, a pre-encoded memory, or greedy-first escalation is
// in play on the cached transformer — builds an incremental decoder
// straight from the (possibly batch-encoded) memory; everything else
// defers to the historical decode. Ambiguous quantized rows fall back to
// float32, and under escalation a greedy row whose leading confidence
// fails confidence.Threshold is re-decoded with full float32 beam
// search, so both knobs trade only time, never accuracy.
func (p *Pipeline) decodeRow(inIDs []int, mode genMode, mem []float32) []int {
	t, isT := p.Model.(*model.Transformer)
	canFast := isT && !p.uncachedDecode
	beamConfigured := p.Cfg.BeamWidth > 1 && !mode.greedy
	fast := canFast && (mode.quantize || mem != nil || (beamConfigured && mode.escalate))
	if !fast || (beamConfigured && !mode.escalate) {
		return p.decode(inIDs, mode.greedy)
	}
	m := mem
	if m == nil {
		m = t.EncodeBatch([][]int{inIDs}, mode.quantize)[0]
	}
	d := t.NewIncrementalDecoderFromMemory(m, mode.quantize)
	out := t.GenerateFromDecoder(d, p.Cfg.MaxOutPieces)
	if mode.quantize {
		p.gm.quantDecodes.Inc()
		if d.Ambiguous() {
			// The quantized argmax may disagree with float32: re-decode
			// the row at full precision (p.decode re-encodes float32 and
			// keeps its own cache metrics).
			p.gm.quantFallbacks.Inc()
			out = p.decode(inIDs, true)
		} else {
			p.gm.kvHits.Inc()
		}
	} else {
		p.gm.kvHits.Inc()
	}
	if beamConfigured && mode.escalate {
		score, ok := p.leadingConfidence(out)
		if confidence.NeedsEscalation(score, ok) {
			p.gm.escalations.Inc()
			return p.decode(inIDs, false)
		}
	}
	return out
}

// leadingConfidence extracts the decoded row's leading confidence-bucket
// value (ok false when the model emitted none).
func (p *Pipeline) leadingConfidence(outIDs []int) (float64, bool) {
	if len(outIDs) == 0 {
		return 0, false
	}
	return p.Vocab.ConfidenceValue(outIDs[0])
}

// beamSearcher is the decoding capability beam search requires. The
// transformer implements it; the GRU and BERT baselines do not, and
// tests stub it to exercise decode's degradation paths.
type beamSearcher interface {
	BeamGenerate(input []int, maxLen, width int) []model.Beam
}

// decode runs the configured decoding strategy. Beam search needs a
// model that can beam-search (the transformer); any other architecture
// downgrades to greedy decoding and says so once instead of silently
// ignoring the config. A beam search that returns zero hypotheses
// downgrades the same way — flagged via BeamFallback and the
// gen.beam_empty counter, never silently. The test-only uncachedDecode
// flag swaps in the reference full-prefix decoder so differential tests
// can compare backends bit for bit. greedy forces greedy decoding for
// this call only (a per-request downgrade, never flagged as a fallback).
func (p *Pipeline) decode(inIDs []int, greedy bool) []int {
	if p.Cfg.BeamWidth > 1 && !greedy {
		if bs, ok := p.Model.(beamSearcher); ok {
			var beams []model.Beam
			if t, isT := p.Model.(*model.Transformer); isT && p.uncachedDecode {
				beams = t.BeamGenerateUncached(inIDs, p.Cfg.MaxOutPieces, p.Cfg.BeamWidth)
			} else {
				beams = bs.BeamGenerate(inIDs, p.Cfg.MaxOutPieces, p.Cfg.BeamWidth)
			}
			if len(beams) > 0 {
				if p.uncachedDecode {
					p.gm.kvMisses.Inc()
				} else {
					p.gm.kvHits.Inc()
				}
				return beams[0].IDs
			}
			p.gm.beamEmpty.Inc()
			p.fallBackToGreedy(fmt.Sprintf(
				"BeamGenerate(width %d) returned no beams; decoding greedily", p.Cfg.BeamWidth))
		} else {
			p.gm.beamFallbacks.Inc()
			p.fallBackToGreedy(fmt.Sprintf(
				"BeamWidth %d needs the transformer; arch %q decodes greedily",
				p.Cfg.BeamWidth, p.Cfg.Arch))
		}
	}
	if p.uncachedDecode {
		if t, ok := p.Model.(*model.Transformer); ok {
			p.gm.kvMisses.Inc()
			return t.GenerateUncached(inIDs, p.Cfg.MaxOutPieces)
		}
	}
	if _, ok := p.Model.(*model.Transformer); ok {
		p.gm.kvHits.Inc() // greedy transformer decoding runs on the KV cache
	} else {
		p.gm.kvMisses.Inc()
	}
	return p.Model.Generate(inIDs, p.Cfg.MaxOutPieces)
}

// fallBackToGreedy marks the pipeline as beam-degraded and logs the
// reason once — the shared path for both the wrong-architecture and the
// empty-beam downgrades, so neither is ever indistinguishable from a
// deliberate greedy run.
func (p *Pipeline) fallBackToGreedy(reason string) {
	// Once.Do gives the flag write mutual exclusion: several pool workers
	// (or several concurrent serving requests) can hit the downgrade at
	// the same time, and a bare bool store from each would be a data race.
	p.beamWarn.Do(func() {
		p.BeamFallback = true
		log.Printf("core: %s", reason)
	})
}

// decodeStatement reconstructs a statement from the model's decision
// content: confidence bucket, presence, and per-placeholder values. The
// invariant code comes from the template row; predicted values fill its
// placeholders in order.
func (p *Pipeline) decodeStatement(g *Group, ri int, tv *feature.TargetFeatures, outIDs []int) generate.Statement {
	st := generate.Statement{Row: ri}
	rest := outIDs
	if len(rest) > 0 {
		if v, ok := p.Vocab.ConfidenceValue(rest[0]); ok {
			st.Score = v
			rest = rest[1:]
		}
	}
	varMark := p.Vocab.ID(markVar)
	nilMark := p.Vocab.ID(markNil)
	var groups [][]int // value pieces per emitted [VAR] group
	for _, id := range rest {
		switch id {
		case model.ABSENT:
			st.Absent = true
		case varMark:
			groups = append(groups, nil)
		default:
			if len(groups) > 0 {
				groups[len(groups)-1] = append(groups[len(groups)-1], id)
			}
		}
	}
	if st.Absent {
		st.Formula = p.rowFormulaScore(g, ri, tv, false)
		return st
	}
	// Fill the row's placeholders with the predicted values, in order.
	ids := g.FT.Rows[ri].VarIDs()
	values := map[int]string{}
	for i, id := range ids {
		if i >= len(groups) {
			break // model under-produced: the SV name stays, parse fails
		}
		pieces := groups[i]
		if len(pieces) == 1 && pieces[0] == nilMark {
			values[id] = ""
			continue
		}
		values[id] = p.decodeValue(g, ri, id, tv, tv.Target, pieces)
	}
	var toks []string
	unresolved := false
	for _, el := range g.FT.Rows[ri].Pattern {
		if !el.Var {
			toks = append(toks, el.Text)
			continue
		}
		if v, ok := values[el.ID]; ok {
			if v != "" {
				toks = append(toks, strings.Fields(v)...)
			}
			continue
		}
		toks = append(toks, el.Text) // unresolved placeholder
		unresolved = true
	}
	st.Text = joinTokens(toks)
	if unresolved && st.Score >= 0.5 {
		// A statement whose placeholder the model could not fill cannot be
		// asserted; cap its confidence below the threshold so it is flagged
		// for review instead of breaking the function.
		st.Score = 0.45
	}
	st.Formula = p.rowFormulaScore(g, ri, tv, true)
	return st
}

// GenerateBackend runs Stage 3 for every function group, producing the
// complete backend for a new target, with per-module wall-clock timings
// (Fig. 7's series).
func (p *Pipeline) GenerateBackend(target string) *generate.Backend {
	return p.GenerateBackendContext(context.Background(), target)
}

// GenOptions scopes and degrades one generation request. The zero value
// generates the complete backend exactly like GenerateBackendContext;
// every field narrows or cheapens the run, which is what the serving
// layer's admission/degradation ladder needs per request.
type GenOptions struct {
	// Modules restricts generation to these module names (corpus.Modules
	// order is preserved regardless of the order given here). Empty means
	// all modules.
	Modules []string
	// Functions restricts generation to these interface-function names.
	// Empty means all functions in scope.
	Functions []string
	// MaxFunctions truncates the task list after this many functions
	// (0 = unlimited). A truncated run is marked Backend.Truncated so the
	// caller can surface the degradation explicitly.
	MaxFunctions int
	// Greedy forces greedy decoding even when Cfg.BeamWidth > 1 — the
	// beam→greedy rung of the serving degrade ladder. It never sets
	// BeamFallback: a requested downgrade is not a capability failure.
	Greedy bool
	// Verify turns on verify-and-repair for this request (OR-ed with
	// Cfg.Verify): generated functions are executed against ground truth
	// and repaired from counterexamples on divergence.
	Verify bool
	// SkipRepair keeps verification on but skips the repair rounds — the
	// pressure ≥ SkipRepairAt rung of the serving degrade ladder.
	// Functions still carry a verification status; diverging ones report
	// VerifyFailed with zero rounds instead of burning decode budget.
	SkipRepair bool
	// Quantize routes this request's decodes through the int8 quantized
	// weight view (OR-ed with Cfg.Quantize). Ambiguous rows re-decode in
	// float32, so results match the full-precision path; the serving
	// ladder's QuantizeAt rung sets this under pressure.
	Quantize bool
	// BeamEscalate switches beam decoding to greedy-first for this
	// request (OR-ed with Cfg.BeamEscalate): rows decode greedily and
	// re-decode with beam search only when their leading confidence
	// fails confidence.Threshold. No effect when BeamWidth ≤ 1 or Greedy
	// is set.
	BeamEscalate bool
}

// moduleListed reports whether module survives a Modules filter (an empty
// filter admits everything).
func moduleListed(filter []string, module string) bool {
	if len(filter) == 0 {
		return true
	}
	for _, m := range filter {
		if m == module {
			return true
		}
	}
	return false
}

// inScope reports whether a module/function pair survives both filters.
func (o GenOptions) inScope(module, fn string) bool {
	if !moduleListed(o.Modules, module) {
		return false
	}
	if len(o.Functions) > 0 {
		ok := false
		for _, f := range o.Functions {
			if f == fn {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// GenerateBackendContext is GenerateBackend with cancellation: when ctx
// is canceled or times out mid-run, the backend generated so far is
// returned with Partial set, so a long Stage 3 run salvages the
// functions it finished. Functions that panic are recovered (see
// GenerateFunction) and counted in Recovered.
//
// Generation runs on a bounded worker pool of Cfg.Workers goroutines
// (0 = NumCPU): model weights and Stage 1 state are read-only after
// training, so interface functions decode independently. The pool
// preserves the serial contract exactly:
//
//   - Functions appear in deterministic order — modules in
//     corpus.Modules order, groups in p.Groups order within a module —
//     for any worker count, with identical bytes (the differential
//     tests in generate_parallel_test.go enforce this).
//   - Seconds keeps Fig. 7's per-module semantics: each function's
//     decode duration is recorded individually and aggregated into its
//     module's entry. (Workers overlap, so module sums exceed wall
//     clock on multi-core machines; cross-module ratios, the figure's
//     subject, are preserved.)
//   - Cancellation is observed per task: workers stop picking up work,
//     already-decoded functions are kept, and Partial is set.
func (p *Pipeline) GenerateBackendContext(ctx context.Context, target string) *generate.Backend {
	return p.GenerateBackendOptions(ctx, target, GenOptions{})
}

// GenerateBackendOptions is GenerateBackendContext narrowed by opt: the
// request can scope generation to a module subset or an explicit function
// list, truncate after MaxFunctions (marked Truncated), and force greedy
// decoding. The cancellation, panic-isolation, determinism, and Seconds
// contracts of GenerateBackendContext hold unchanged within the scope.
//
// The method is safe for concurrent use: model weights and Stage 1 state
// are read-only after training, metrics are atomic, and all per-run state
// lives on the stack — overlapping calls against one shared pipeline (the
// serving snapshot case) produce bit-identical results to serial runs
// (enforced by internal/serve's concurrency differential test).
func (p *Pipeline) GenerateBackendOptions(ctx context.Context, target string, opt GenOptions) *generate.Backend {
	ctx = obs.With(ctx, p.Cfg.Obs)
	ctx, span := obs.Start(ctx, "stage3/generate", obs.String("target", target))
	defer span.End()
	if p.Cfg.KernelWorkers > 0 {
		tensor.SetWorkers(p.Cfg.KernelWorkers)
	}
	b := &generate.Backend{Target: target, Seconds: make(map[string]float64)}

	// Build the work list in the serial output order. The injected
	// mid-run cancellation point cuts the list at a module boundary
	// before any of that module's functions are attempted, exactly like
	// the serial path did.
	type task struct {
		g      *Group
		module string
	}
	var tasks []task
	for _, m := range corpus.Modules {
		if !moduleListed(opt.Modules, string(m)) {
			continue
		}
		if faultinject.Should(faultinject.GenerateCancel, string(m)) {
			b.Partial = true
			break
		}
		for _, g := range p.Groups {
			if g.FT.Module == string(m) && opt.inScope(string(m), g.Func.Name) {
				if opt.MaxFunctions > 0 && len(tasks) >= opt.MaxFunctions {
					b.Truncated = true
					continue
				}
				tasks = append(tasks, task{g, string(m)})
			}
		}
	}

	workers := p.Cfg.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}

	quantize := opt.Quantize || p.Cfg.Quantize
	escalate := opt.BeamEscalate || p.Cfg.BeamEscalate

	// Batch encode pre-pass: resolve each task's target values once, build
	// every (task, row) encoder input in deterministic task order, and
	// encode them in fixed-size chunks through the ragged batched encoder —
	// wide enough to cross the kernel layer's parallel-dispatch gate, which
	// per-row self-encoding rarely does. Rows then decode straight from
	// their pre-encoded memories. The pass is skipped when it cannot help:
	// a non-transformer or the reference uncached decoder self-encodes
	// anyway, and a beam run without escalation re-encodes inside beam
	// search regardless. Panics during value resolution or input building
	// leave that task to the per-function boundary in generateFunction;
	// a panic while encoding a chunk leaves those rows to self-encode.
	tvs := make([]*feature.TargetFeatures, len(tasks))
	for i := range tasks {
		func() {
			defer func() { _ = recover() }() // leave nil: generateFunction re-resolves
			tvs[i] = p.Extractor.TargetValues(tasks[i].g.TF, target)
		}()
	}
	taskMems := make([][][]float32, len(tasks))
	taskIDs := make([][][]int, len(tasks))
	encShare := make([]float64, len(tasks))
	tModel, isT := p.Model.(*model.Transformer)
	beamConfigured := p.Cfg.BeamWidth > 1 && !opt.Greedy
	if isT && !p.uncachedDecode && !(beamConfigured && !escalate) {
		type rowRef struct{ task, row int }
		var refs []rowRef
		var inputs [][]int
		for i := range tasks {
			if tvs[i] == nil {
				continue
			}
			g := tasks[i].g
			rows := func() (rows [][]int) {
				defer func() {
					if recover() != nil {
						rows = nil
					}
				}()
				for ri := range g.FT.Rows {
					in := p.rowInputTokens(g, ri, tvs[i], target)
					rows = append(rows, append([]int{model.CLS}, p.Vocab.Encode(in)...))
				}
				return rows
			}()
			if rows == nil {
				continue
			}
			taskIDs[i] = rows
			taskMems[i] = make([][]float32, len(rows))
			for ri := range rows {
				refs = append(refs, rowRef{i, ri})
			}
			inputs = append(inputs, rows...)
		}
		// Chunking bounds the shared backing array each batch pins (the
		// memories are views into it) while still packing ~two orders of
		// magnitude more rows per kernel call than self-encoding.
		const encChunk = 128
		for lo := 0; lo < len(inputs); lo += encChunk {
			hi := lo + encChunk
			if hi > len(inputs) {
				hi = len(inputs)
			}
			chunkStart := time.Now()
			mems := func() (m [][]float32) {
				defer func() {
					if recover() != nil {
						m = nil
					}
				}()
				return tModel.EncodeBatch(inputs[lo:hi], quantize)
			}()
			if mems == nil {
				continue // these rows self-encode in decodeRow
			}
			// Seconds keeps Fig. 7's per-function semantics: the chunk's
			// wall clock is attributed equally to the rows it encoded.
			share := time.Since(chunkStart).Seconds() / float64(hi-lo)
			for j, mem := range mems {
				r := refs[lo+j]
				taskMems[r.task][r.row] = mem
				encShare[r.task] += share
			}
		}
	}

	// Verify-and-repair: built only when requested, so the default path
	// pays nothing (no oracle, no engine, not even a nil-check per row).
	// One engine serves every worker — it is stateless between functions
	// and each Verify builds a fresh eval universe, so per-function runs
	// are independent and the output stays byte-identical for any worker
	// count.
	var eng *repair.Engine
	repairRounds := -1 // engine default
	if opt.Verify || p.Cfg.Verify {
		// Best-effort: a target outside the fleet (generating for a brand
		// new ISA) simply has no reference, and the oracle degrades.
		ref, _ := p.Provider.ReferenceBackend(target)
		eng = repair.NewEngine(&repair.Oracle{Ref: ref},
			repairDecoder{p: p, target: target},
			repair.Options{MaxRounds: p.Cfg.RepairRounds}, p.Cfg.Obs)
		if opt.SkipRepair {
			repairRounds = 0 // verify only: the degrade ladder's rung
		}
	}

	span.SetAttr(obs.Int("workers", workers), obs.Int("tasks", len(tasks)))
	results := make([]*generate.Function, len(tasks))
	durs := make([]float64, len(tasks))
	var next int64
	var canceled atomic.Bool
	var wg sync.WaitGroup
	poolStart := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= len(tasks) {
					return
				}
				if ctx.Err() != nil {
					canceled.Store(true)
					return
				}
				// Queue wait: every task is ready at pool start, so the
				// gap to pickup measures pool starvation.
				p.gm.queueWait.Observe(time.Since(poolStart).Seconds())
				_, fnSpan := obs.Start(ctx, "stage3/function",
					obs.String("func", tasks[i].g.Func.Name),
					obs.String("module", tasks[i].module))
				start := time.Now()
				results[i] = p.generateFunction(tasks[i].g, target, genMode{
					greedy:   opt.Greedy,
					quantize: quantize,
					escalate: escalate,
					tv:       tvs[i],
					rowMems:  taskMems[i],
				})
				durs[i] = time.Since(start).Seconds() + encShare[i]
				if eng != nil {
					// Outside the decode timing: Seconds keeps Fig. 7's
					// pure-decode semantics whether or not verify is on.
					eng.Run(ctx, results[i], repairRounds)
				}
				fnSpan.End()
				p.gm.functions.Inc()
				p.gm.decodeSeconds.Observe(durs[i])
			}
		}()
	}
	wg.Wait()

	if canceled.Load() || ctx.Err() != nil {
		b.Partial = true
	}
	// Per-(target, module) decode-second counters feed Fig. 7 straight
	// from the metrics sink; the instrument lookup is off the hot path.
	o := p.Cfg.Obs
	modSeconds := map[string]*obs.Counter{}
	for i, fn := range results {
		if fn == nil {
			continue // task skipped after cancellation
		}
		if fn.Failed() {
			b.Recovered++
			p.gm.recovered.Inc()
		}
		if fn.Verify != nil {
			switch fn.Verify.Status {
			case generate.VerifyPassed:
				b.Verified++
			case generate.VerifyRepaired:
				b.Verified++
				b.Repaired++
			case generate.VerifyFailed:
				b.RepairFailed++
			}
		}
		b.Functions = append(b.Functions, fn)
		b.Seconds[tasks[i].module] += durs[i]
		if o != nil {
			c, ok := modSeconds[tasks[i].module]
			if !ok {
				c = o.Counter("gen.seconds." + target + "." + tasks[i].module)
				modSeconds[tasks[i].module] = c
			}
			c.Add(durs[i])
		}
	}
	return b
}

// Describe renders a one-line summary of a generated backend.
func Describe(b *generate.Backend) string {
	gen := 0
	for _, f := range b.Functions {
		if f.Generated() {
			gen++
		}
	}
	return fmt.Sprintf("%s: %d/%d functions generated", b.Target, gen, len(b.Functions))
}
