package core

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"vega/internal/corpus"
	"vega/internal/generate"
)

// backendFingerprint serializes everything about a backend that must be
// invariant across decode path (cached/uncached) and worker count.
// Seconds is excluded: timings are the one legitimately nondeterministic
// output.
func backendFingerprint(b *generate.Backend) string {
	var sb strings.Builder
	for _, f := range b.Functions {
		sb.WriteString(functionFingerprint(f))
	}
	return sb.String()
}

func functionFingerprint(f *generate.Function) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s|%s|%s|%s\n", f.Name, f.Module, f.Target, f.Err)
	for _, s := range f.Statements {
		fmt.Fprintf(&sb, "  %d|%q|%v|%v|%v\n", s.Row, s.Text, s.Absent, s.Score, s.Formula)
	}
	return sb.String()
}

// TestParallelCachedMatchesSerialUncached is the PR's central differential
// test: the KV-cached incremental decoder running on an 8-worker pool must
// produce byte-identical backends to the reference full-prefix decoder
// running serially, in greedy and beam-search decoding modes.
func TestParallelCachedMatchesSerialUncached(t *testing.T) {
	if testing.Short() {
		t.Skip("full-backend generation test")
	}
	p := faultPipeline(t)
	for _, beam := range []int{1, 2} {
		p.Cfg.BeamWidth = beam

		p.uncachedDecode = true
		p.Cfg.Workers = 1
		ref := p.GenerateBackend("RISCV")

		p.uncachedDecode = false
		p.Cfg.Workers = 8
		got := p.GenerateBackend("RISCV")

		if len(ref.Functions) == 0 {
			t.Fatalf("beam %d: reference backend is empty", beam)
		}
		if a, b := backendFingerprint(ref), backendFingerprint(got); a != b {
			t.Errorf("beam %d: parallel cached backend differs from serial uncached reference", beam)
		}
		if ref.Partial || got.Partial {
			t.Errorf("beam %d: unexpected Partial (ref=%v got=%v)", beam, ref.Partial, got.Partial)
		}
	}
}

// TestParallelWorkerCountInvariant checks output determinism across worker
// counts on the cached path, plus the per-module Seconds contract.
func TestParallelWorkerCountInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("full-backend generation test")
	}
	p := faultPipeline(t)

	p.Cfg.Workers = 1
	one := p.GenerateBackend("RISCV")
	p.Cfg.Workers = 8
	many := p.GenerateBackend("RISCV")

	if a, b := backendFingerprint(one), backendFingerprint(many); a != b {
		t.Error("backend differs between Workers=1 and Workers=8")
	}
	for _, b := range []*generate.Backend{one, many} {
		for _, m := range corpus.Modules {
			if _, ok := b.Seconds[string(m)]; !ok {
				t.Errorf("Seconds missing module %s", m)
			}
		}
	}
}

// countCtx is a context whose Err starts reporting Canceled after budget
// calls. The worker pool polls Err once per task, so this cancels the run
// mid-pool at a deterministic point without any timing dependence.
type countCtx struct {
	context.Context
	calls  atomic.Int64
	budget int64
}

func (c *countCtx) Err() error {
	if c.calls.Add(1) > c.budget {
		return context.Canceled
	}
	return nil
}

// TestParallelCancelMidPoolConsistent cancels mid-pool and checks the
// salvaged backend is consistent: Partial set, and every completed
// function an order-preserving, bit-identical subset of the full run.
func TestParallelCancelMidPoolConsistent(t *testing.T) {
	if testing.Short() {
		t.Skip("full-backend generation test")
	}
	p := faultPipeline(t)
	p.Cfg.Workers = 4
	full := p.GenerateBackend("RISCV")
	if len(full.Functions) < 10 {
		t.Fatalf("full run generated only %d functions", len(full.Functions))
	}

	ctx := &countCtx{Context: context.Background(), budget: 10}
	b := p.GenerateBackendContext(ctx, "RISCV")
	if !b.Partial {
		t.Error("canceled run not marked Partial")
	}
	if len(b.Functions) >= len(full.Functions) {
		t.Errorf("cancellation salvaged all %d functions; expected a strict subset", len(full.Functions))
	}

	// Order-preserving subset with identical content: every salvaged
	// function appears in the full run, in the same relative order.
	want := make([]string, len(full.Functions))
	for i, f := range full.Functions {
		want[i] = functionFingerprint(f)
	}
	j := 0
	for _, f := range b.Functions {
		fp := functionFingerprint(f)
		for j < len(want) && want[j] != fp {
			j++
		}
		if j == len(want) {
			t.Fatalf("salvaged function %s not found in full run (or out of order)", f.Name)
		}
		j++
	}
}
