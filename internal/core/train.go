package core

import (
	"context"
	"fmt"
	"strings"

	"vega/internal/model"
)

// TrainResult reports Stage 2 outcomes.
type TrainResult struct {
	Samples        int
	VocabSize      int
	Params         int
	EpochLosses    []float64
	PretrainLosses []float64
	// VerifyExactMatch is the exact-match score on the held-out 25%
	// verification split (the paper reports 99.03%).
	VerifyExactMatch float64
	VerifySamples    int
	// RetriedEpochs counts epochs re-run from last-good weights after a
	// NaN/Inf or diverging loss (pre-training included).
	RetriedEpochs int
	// SkippedSamples counts samples dropped mid-epoch for non-finite
	// losses or isolated panics.
	SkippedSamples int
	// Canceled is set when the context stopped training early; the
	// result then describes the partial run.
	Canceled bool
}

// Train runs Stage 2 to completion; it is TrainContext without
// cancellation.
func (p *Pipeline) Train() (*TrainResult, error) {
	return p.TrainContext(context.Background())
}

// TrainContext runs Stage 2: builds the vocabulary, encodes the training
// split, optionally pre-trains with a denoising objective, and fine-tunes
// the selected architecture. When ctx is canceled or times out, the
// partial TrainResult (epochs completed so far) is returned alongside the
// error so callers can salvage or report it.
func (p *Pipeline) TrainContext(ctx context.Context) (*TrainResult, error) {
	// Vocabulary over the training split only.
	p.Vocab = model.BuildVocabExtra(p.trainingSequences(), 2, p.forceCharNames(), markerTokens)

	cfg := p.Cfg.Model
	cfg.Vocab = p.Vocab.Size()
	if cfg.Seed == 0 {
		cfg.Seed = p.Cfg.Seed
	}
	switch p.Cfg.Arch {
	case "", "transformer":
		p.Model = model.NewTransformer(cfg)
	case "gru":
		p.Model = model.NewGRUSeq2Seq(cfg)
	case "bert":
		p.Model = model.NewBERTStyle(cfg, p.Cfg.MaxOutPieces)
	default:
		return nil, fmt.Errorf("core: unknown architecture %q", p.Cfg.Arch)
	}

	res := &TrainResult{VocabSize: p.Vocab.Size()}
	if t, ok := p.Model.(*model.Transformer); ok {
		res.Params = t.NumParams()
	}

	if p.Cfg.Pretrain && p.Cfg.PretrainEpochs > 0 {
		pre := p.pretrainSamples()
		opt := p.Cfg.Train
		opt.Epochs = p.Cfg.PretrainEpochs
		opt.MinLoss = 0
		stats, err := model.FitContext(ctx, p.Model, pre, opt)
		res.PretrainLosses = stats.EpochLosses
		res.RetriedEpochs += stats.RetriedEpochs
		res.SkippedSamples += stats.SkippedSamples
		if err != nil {
			res.Canceled = stats.Canceled
			return res, fmt.Errorf("core: pretrain: %w", err)
		}
	}

	all := append(p.samplesForSplit(p.TrainFns), p.absentSamples()...)
	train := p.dedupAndCap(all, p.Cfg.MaxSamples, p.Cfg.Seed+1)
	res.Samples = len(train)
	stats, err := model.FitContext(ctx, p.Model, train, p.Cfg.Train)
	res.EpochLosses = stats.EpochLosses
	res.RetriedEpochs += stats.RetriedEpochs
	res.SkippedSamples += stats.SkippedSamples
	if err != nil {
		res.Canceled = stats.Canceled
		return res, fmt.Errorf("core: train: %w", err)
	}

	// Verification exact match on (a capped subset of) the 25% split.
	vcap := p.Cfg.VerifyCap
	if vcap == 0 {
		vcap = 400
	}
	verify := p.dedupAndCap(p.samplesForSplit(p.VerifyFns), vcap, p.Cfg.Seed+2)
	res.VerifySamples = len(verify)
	res.VerifyExactMatch = model.ExactMatch(p.Model, verify, p.Cfg.MaxOutPieces)
	return res, nil
}

// pretrainSamples builds the pre-training curriculum that stands in for
// UniXcoder's pre-training: (a) denoising — reconstruct each statement
// from a corrupted copy (15% of pieces dropped) — and (b) candidate
// copying — emit the value following a [CAND] marker — which primes the
// cross-attention copy behaviour backend generation depends on.
func (p *Pipeline) pretrainSamples() []model.Sample {
	rng := newRNG(p.Cfg.Seed + 7)
	var out []model.Sample
	candID := p.Vocab.ID(markCand)
	varID := p.Vocab.ID(markVar)
	for _, g := range p.Groups {
		for _, tgt := range g.Targets {
			if !p.TrainFns[g.Func.Name+"/"+tgt] {
				continue
			}
			for ri := range g.FT.Rows {
				toks, ok := g.FT.Rows[ri].PerTarget[tgt]
				if !ok {
					continue
				}
				ids := p.Vocab.Encode(toks)
				if len(ids) < 3 {
					continue
				}
				in := []int{model.CLS}
				for _, id := range ids {
					if rng.Float64() < 0.15 {
						continue
					}
					in = append(in, id)
				}
				out = append(out, model.Sample{Input: in, Output: ids})
			}
			// Selection curriculum: given a query value and a candidate
			// list, emit the selection token of the matching candidate —
			// the content-matching skill generation relies on.
			tv := g.TF.Targets[tgt]
			for _, pr := range g.TF.DependentProps() {
				dep, ok := tv.Deps[pr.Name]
				if !ok || len(dep.Candidates) == 0 {
					continue
				}
				window := dep.Candidates
				if len(window) > 6 {
					window = window[:6]
				}
				for i, c := range window {
					in := []int{model.CLS, candID}
					in = append(in, p.Vocab.Encode(strings.Fields(c))...)
					in = append(in, model.SEP, varID)
					for j, w := range window {
						in = append(in, p.Vocab.ID(selMarks[j]))
						in = append(in, p.Vocab.Encode(strings.Fields(w))...)
					}
					out = append(out, model.Sample{Input: in, Output: []int{p.Vocab.ID(selMarks[i])}})
				}
			}
		}
	}
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	if len(out) > 1600 {
		out = out[:1600]
	}
	return out
}
