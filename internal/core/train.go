package core

import (
	"context"
	"fmt"
	"log"
	"strings"

	"vega/internal/model"
	"vega/internal/obs"
	"vega/internal/tensor"
)

// TrainResult reports Stage 2 outcomes.
type TrainResult struct {
	Samples        int
	VocabSize      int
	Params         int
	EpochLosses    []float64
	PretrainLosses []float64
	// VerifyExactMatch is the exact-match score on the held-out 25%
	// verification split (the paper reports 99.03%).
	VerifyExactMatch float64
	VerifySamples    int
	// RetriedEpochs counts epochs re-run from last-good weights after a
	// NaN/Inf or diverging loss (pre-training included).
	RetriedEpochs int
	// SkippedSamples counts samples dropped mid-epoch for non-finite
	// losses or isolated panics.
	SkippedSamples int
	// Canceled is set when the context stopped training early; the
	// result then describes the partial run.
	Canceled bool
}

// Train runs Stage 2 to completion; it is TrainContext without
// cancellation.
func (p *Pipeline) Train() (*TrainResult, error) {
	return p.TrainContext(context.Background())
}

// TrainingData builds the Stage 2 vocabulary and the encoded, deduplicated
// fine-tuning set without training anything — the entry point the Fig. 6
// training-time benchmark and diagnostics use to time one epoch in
// isolation. TrainContext performs the same construction inline.
func (p *Pipeline) TrainingData() []model.Sample {
	p.Vocab = model.BuildVocabExtra(p.trainingSequences(), 2, p.forceCharNames(), markerTokens)
	all := append(p.samplesForSplit(p.TrainFns), p.absentSamples()...)
	return p.dedupAndCap(all, p.Cfg.MaxSamples, p.Cfg.Seed+1)
}

// InitUntrained builds the vocabulary and a freshly initialized (seeded,
// untrained) model without running Stage 2. Decoding works immediately
// and is deterministic for a given seed — the cheap way to stand up a
// decode-capable pipeline where output *stability* matters but trained
// weights do not (the serving concurrency/soak tests, dry runs of the
// serving stack, smoke tooling).
func (p *Pipeline) InitUntrained() error {
	p.Vocab = model.BuildVocabExtra(p.trainingSequences(), 2, p.forceCharNames(), markerTokens)
	cfg := p.Cfg.Model
	cfg.Vocab = p.Vocab.Size()
	if cfg.Seed == 0 {
		cfg.Seed = p.Cfg.Seed
	}
	switch p.Cfg.Arch {
	case "", "transformer":
		p.Model = model.NewTransformer(cfg)
	case "gru":
		p.Model = model.NewGRUSeq2Seq(cfg)
	case "bert":
		p.Model = model.NewBERTStyle(cfg, p.Cfg.MaxOutPieces)
	default:
		return fmt.Errorf("core: unknown architecture %q", p.Cfg.Arch)
	}
	return nil
}

// TrainContext runs Stage 2: builds the vocabulary, encodes the training
// split, optionally pre-trains with a denoising objective, and fine-tunes
// the selected architecture. When ctx is canceled or times out, the
// partial TrainResult (epochs completed so far) is returned alongside the
// error so callers can salvage or report it.
func (p *Pipeline) TrainContext(ctx context.Context) (*TrainResult, error) {
	o := p.Cfg.Obs
	ctx = obs.With(ctx, o)
	ctx, span := obs.Start(ctx, "stage2/train")
	defer span.End()

	if p.Cfg.KernelWorkers > 0 {
		tensor.SetWorkers(p.Cfg.KernelWorkers)
	}

	// Vocabulary over the training split only.
	p.Vocab = model.BuildVocabExtra(p.trainingSequences(), 2, p.forceCharNames(), markerTokens)
	o.Gauge("vocab.size").Set(float64(p.Vocab.Size()))

	cfg := p.Cfg.Model
	cfg.Vocab = p.Vocab.Size()
	if cfg.Seed == 0 {
		cfg.Seed = p.Cfg.Seed
	}
	switch p.Cfg.Arch {
	case "", "transformer":
		p.Model = model.NewTransformer(cfg)
	case "gru":
		p.Model = model.NewGRUSeq2Seq(cfg)
	case "bert":
		p.Model = model.NewBERTStyle(cfg, p.Cfg.MaxOutPieces)
	default:
		return nil, fmt.Errorf("core: unknown architecture %q", p.Cfg.Arch)
	}

	res := &TrainResult{VocabSize: p.Vocab.Size()}
	if t, ok := p.Model.(*model.Transformer); ok {
		res.Params = t.NumParams()
	}
	o.Gauge("train.params").Set(float64(res.Params))

	if p.Cfg.Pretrain && p.Cfg.PretrainEpochs > 0 {
		pre := p.pretrainSamples()
		o.Gauge("pretrain.samples").Set(float64(len(pre)))
		opt := p.Cfg.Train
		opt.Epochs = p.Cfg.PretrainEpochs
		opt.MinLoss = 0
		preCtx, preSpan := obs.Start(ctx, "stage2/pretrain", obs.Int("samples", len(pre)))
		stats, err := model.FitContext(preCtx, p.Model, pre, opt)
		preSpan.End()
		res.PretrainLosses = stats.EpochLosses
		res.RetriedEpochs += stats.RetriedEpochs
		res.SkippedSamples += stats.SkippedSamples
		if err != nil {
			res.Canceled = stats.Canceled
			return res, fmt.Errorf("core: pretrain: %w", err)
		}
	}

	all := append(p.samplesForSplit(p.TrainFns), p.absentSamples()...)
	train := p.dedupAndCap(all, p.Cfg.MaxSamples, p.Cfg.Seed+1)
	res.Samples = len(train)
	o.Gauge("train.samples").Set(float64(len(train)))
	fitCtx, fitSpan := obs.Start(ctx, "stage2/fit", obs.Int("samples", len(train)))
	stats, err := model.FitContext(fitCtx, p.Model, train, p.Cfg.Train)
	fitSpan.End()
	res.EpochLosses = stats.EpochLosses
	res.RetriedEpochs += stats.RetriedEpochs
	res.SkippedSamples += stats.SkippedSamples
	if err != nil {
		res.Canceled = stats.Canceled
		return res, fmt.Errorf("core: train: %w", err)
	}

	// Verification exact match on (a capped subset of) the 25% split.
	// VerifyCap follows the MaxSamples convention: 0 or negative bounds
	// nothing (the 400 default lives in DefaultConfig), so an explicit
	// "verify on everything" run is expressible.
	vcap := p.Cfg.VerifyCap
	o.Gauge("verify.cap_applied").Set(float64(max(vcap, 0))) // 0 = unlimited
	verify := p.dedupAndCap(p.samplesForSplit(p.VerifyFns), vcap, p.Cfg.Seed+2)
	res.VerifySamples = len(verify)
	_, vSpan := obs.Start(ctx, "stage2/verify", obs.Int("samples", len(verify)))
	res.VerifyExactMatch = model.ExactMatch(p.Model, verify, p.Cfg.MaxOutPieces)
	vSpan.End()
	o.Gauge("verify.samples").Set(float64(res.VerifySamples))
	o.Gauge("verify.exact_match").Set(res.VerifyExactMatch)
	return res, nil
}

// pretrainCap bounds the pre-training curriculum after shuffling. The
// cap is never silent: hitting it logs once and counts the drop in the
// pretrain.samples_dropped metric, so ablation runs can see it.
const pretrainCap = 1600

// pretrainSamples builds the pre-training curriculum that stands in for
// UniXcoder's pre-training: (a) denoising — reconstruct each statement
// from a corrupted copy (15% of pieces dropped) — and (b) candidate
// copying — emit the value following a [CAND] marker — which primes the
// cross-attention copy behaviour backend generation depends on.
func (p *Pipeline) pretrainSamples() []model.Sample {
	rng := newRNG(p.Cfg.Seed + 7)
	var out []model.Sample
	candID := p.Vocab.ID(markCand)
	varID := p.Vocab.ID(markVar)
	for _, g := range p.Groups {
		for _, tgt := range g.Targets {
			if !p.TrainFns[g.Func.Name+"/"+tgt] {
				continue
			}
			for ri := range g.FT.Rows {
				toks, ok := g.FT.Rows[ri].PerTarget[tgt]
				if !ok {
					continue
				}
				ids := p.Vocab.Encode(toks)
				if len(ids) < 3 {
					continue
				}
				in := []int{model.CLS}
				for _, id := range ids {
					if rng.Float64() < 0.15 {
						continue
					}
					in = append(in, id)
				}
				out = append(out, model.Sample{Input: in, Output: ids})
			}
			// Selection curriculum: given a query value and a candidate
			// list, emit the selection token of the matching candidate —
			// the content-matching skill generation relies on.
			tv := g.TF.Targets[tgt]
			for _, pr := range g.TF.DependentProps() {
				dep, ok := tv.Deps[pr.Name]
				if !ok || len(dep.Candidates) == 0 {
					continue
				}
				window := dep.Candidates
				if len(window) > 6 {
					window = window[:6]
				}
				for i, c := range window {
					in := []int{model.CLS, candID}
					in = append(in, p.Vocab.Encode(strings.Fields(c))...)
					in = append(in, model.SEP, varID)
					for j, w := range window {
						in = append(in, p.Vocab.ID(selMarks[j]))
						in = append(in, p.Vocab.Encode(strings.Fields(w))...)
					}
					out = append(out, model.Sample{Input: in, Output: []int{p.Vocab.ID(selMarks[i])}})
				}
			}
		}
	}
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	if len(out) > pretrainCap {
		dropped := len(out) - pretrainCap
		p.Cfg.Obs.Counter("pretrain.samples_dropped").Add(float64(dropped))
		p.pretrainWarn.Do(func() {
			log.Printf("core: pre-training curriculum capped at %d samples (%d dropped)",
				pretrainCap, dropped)
		})
		out = out[:pretrainCap]
	}
	return out
}
