package core

import (
	"context"
	"testing"
)

// TestGenerateBackendOptionsScope exercises the request-scoping knobs the
// serving layer builds on: module filters, explicit function lists, and
// the MaxFunctions truncation marker.
func TestGenerateBackendOptionsScope(t *testing.T) {
	if testing.Short() {
		t.Skip("generation test")
	}
	p := faultPipeline(t)
	ctx := context.Background()

	t.Run("module filter", func(t *testing.T) {
		b := p.GenerateBackendOptions(ctx, "RISCV", GenOptions{Modules: []string{"EMI"}})
		if len(b.Functions) == 0 {
			t.Fatal("module-scoped generation produced no functions")
		}
		for _, f := range b.Functions {
			if f.Module != "EMI" {
				t.Errorf("function %s has module %s, want EMI only", f.Name, f.Module)
			}
		}
		if b.Truncated {
			t.Error("module scoping must not set Truncated")
		}
	})

	t.Run("function filter", func(t *testing.T) {
		b := p.GenerateBackendOptions(ctx, "RISCV", GenOptions{Functions: []string{"getRelocType"}})
		if len(b.Functions) != 1 || b.Functions[0].Name != "getRelocType" {
			t.Fatalf("function-scoped generation: got %d functions, want exactly getRelocType", len(b.Functions))
		}
	})

	t.Run("max functions truncates and marks", func(t *testing.T) {
		full := p.GenerateBackendOptions(ctx, "RISCV", GenOptions{Modules: []string{"EMI"}})
		if len(full.Functions) < 2 {
			t.Skip("EMI module too small to demonstrate truncation")
		}
		cap := len(full.Functions) - 1
		b := p.GenerateBackendOptions(ctx, "RISCV", GenOptions{Modules: []string{"EMI"}, MaxFunctions: cap})
		if len(b.Functions) != cap {
			t.Errorf("got %d functions, want %d", len(b.Functions), cap)
		}
		if !b.Truncated {
			t.Error("truncated backend must be marked Truncated")
		}
		// Truncation keeps the task-list prefix, so the shared functions
		// are byte-identical to the untruncated run.
		for i, f := range b.Functions {
			if got, want := functionFingerprint(f), functionFingerprint(full.Functions[i]); got != want {
				t.Errorf("function %d differs between truncated and full runs", i)
			}
		}
	})

	t.Run("greedy matches beam width 1", func(t *testing.T) {
		b1 := p.GenerateBackendOptions(ctx, "RISCV", GenOptions{Functions: []string{"getRelocType"}})
		b2 := p.GenerateBackendOptions(ctx, "RISCV", GenOptions{Functions: []string{"getRelocType"}, Greedy: true})
		if backendFingerprint(b1) != backendFingerprint(b2) {
			t.Error("Greedy option changed output at beam width 1")
		}
	})
}
