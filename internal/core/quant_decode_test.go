package core

import (
	"context"
	"testing"
)

// TestQuantizedBackendMatchesFloat32 is the accuracy-preservation
// contract of the int8 path at the backend level: quantized generation
// must produce byte-identical output to float32, because every row whose
// quantized decode is ambiguous re-decodes at full precision. This is
// what keeps the Fig. 7 speedup from moving the Fig. 7 accuracy.
func TestQuantizedBackendMatchesFloat32(t *testing.T) {
	if testing.Short() {
		t.Skip("generation test")
	}
	p := faultPipeline(t)
	ctx := context.Background()
	scope := GenOptions{Modules: []string{"EMI"}}

	ref := p.GenerateBackendOptions(ctx, "RISCV", scope)
	if len(ref.Functions) == 0 {
		t.Fatal("float32 reference backend is empty")
	}

	q := scope
	q.Quantize = true
	got := p.GenerateBackendOptions(ctx, "RISCV", q)
	if backendFingerprint(got) != backendFingerprint(ref) {
		t.Error("quantized backend differs from float32 reference")
	}

	// The config-level knob must route identically to the per-request one.
	p.Cfg.Quantize = true
	defer func() { p.Cfg.Quantize = false }()
	viaCfg := p.GenerateBackendOptions(ctx, "RISCV", scope)
	if backendFingerprint(viaCfg) != backendFingerprint(ref) {
		t.Error("Cfg.Quantize backend differs from float32 reference")
	}
}

// TestBeamEscalateRowsComeFromGreedyOrBeam pins the greedy-first
// escalation ladder: under BeamEscalate every decoded statement must be
// exactly what the pure-greedy run or the pure-beam run produced for
// that row — confident rows keep their cheap greedy decode, escalated
// rows re-decode with the full (deterministic) beam.
func TestBeamEscalateRowsComeFromGreedyOrBeam(t *testing.T) {
	if testing.Short() {
		t.Skip("generation test")
	}
	p := faultPipeline(t)
	p.Cfg.BeamWidth = 2
	defer func() { p.Cfg.BeamWidth = 0 }()
	ctx := context.Background()
	scope := GenOptions{Modules: []string{"EMI"}}

	greedyOpt := scope
	greedyOpt.Greedy = true
	greedy := p.GenerateBackendOptions(ctx, "RISCV", greedyOpt)
	beam := p.GenerateBackendOptions(ctx, "RISCV", scope)
	escOpt := scope
	escOpt.BeamEscalate = true
	esc := p.GenerateBackendOptions(ctx, "RISCV", escOpt)

	if len(esc.Functions) == 0 || len(esc.Functions) != len(greedy.Functions) ||
		len(esc.Functions) != len(beam.Functions) {
		t.Fatalf("function counts differ: esc=%d greedy=%d beam=%d",
			len(esc.Functions), len(greedy.Functions), len(beam.Functions))
	}
	for fi, f := range esc.Functions {
		g, b := greedy.Functions[fi], beam.Functions[fi]
		if len(f.Statements) != len(g.Statements) || len(f.Statements) != len(b.Statements) {
			t.Fatalf("%s: statement counts differ", f.Name)
		}
		for si, st := range f.Statements {
			if st != g.Statements[si] && st != b.Statements[si] {
				t.Errorf("%s row %d: escalated statement %+v matches neither greedy %+v nor beam %+v",
					f.Name, st.Row, st, g.Statements[si], b.Statements[si])
			}
		}
	}
}

// TestSecondsOnlyContributingModules is the regression test for the
// misleading Fig. 7 zero entries: a request scoped to a single function
// must report decode seconds only for that function's module, not a zero
// row for every module in the corpus.
func TestSecondsOnlyContributingModules(t *testing.T) {
	if testing.Short() {
		t.Skip("generation test")
	}
	p := faultPipeline(t)
	b := p.GenerateBackendOptions(context.Background(), "RISCV",
		GenOptions{Functions: []string{"getRelocType"}})
	if len(b.Functions) != 1 {
		t.Fatalf("got %d functions, want exactly getRelocType", len(b.Functions))
	}
	mods := map[string]bool{}
	for _, f := range b.Functions {
		mods[f.Module] = true
	}
	for m := range b.Seconds {
		if !mods[m] {
			t.Errorf("Seconds has entry for module %q (%.6fs) which contributed no functions",
				m, b.Seconds[m])
		}
	}
	if len(b.Seconds) == 0 {
		t.Error("Seconds is empty; want an entry for the generated function's module")
	}
}

// TestMaxFunctionsExactBoundary covers the truncation boundary: a cap
// equal to the in-scope function count is not a truncation, one below it
// is.
func TestMaxFunctionsExactBoundary(t *testing.T) {
	if testing.Short() {
		t.Skip("generation test")
	}
	p := faultPipeline(t)
	ctx := context.Background()
	full := p.GenerateBackendOptions(ctx, "RISCV", GenOptions{Modules: []string{"EMI"}})
	n := len(full.Functions)
	if n < 2 {
		t.Skip("EMI module too small to demonstrate the boundary")
	}

	exact := p.GenerateBackendOptions(ctx, "RISCV",
		GenOptions{Modules: []string{"EMI"}, MaxFunctions: n})
	if len(exact.Functions) != n {
		t.Errorf("MaxFunctions=%d generated %d functions, want all %d", n, len(exact.Functions), n)
	}
	if exact.Truncated {
		t.Error("MaxFunctions equal to the in-scope count must not set Truncated")
	}

	under := p.GenerateBackendOptions(ctx, "RISCV",
		GenOptions{Modules: []string{"EMI"}, MaxFunctions: n - 1})
	if len(under.Functions) != n-1 {
		t.Errorf("MaxFunctions=%d generated %d functions, want %d", n-1, len(under.Functions), n-1)
	}
	if !under.Truncated {
		t.Error("MaxFunctions below the in-scope count must set Truncated")
	}
}
