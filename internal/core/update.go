package core

import (
	"fmt"

	"vega/internal/corpus"
	"vega/internal/cpp"
	"vega/internal/generate"
)

// The paper's §6 proposes "a software update mechanism to enhance
// [VEGA's] inferential accuracy by learning from newly synthesized
// function templates": once a generated backend has been corrected by
// developers, it becomes one more training backend. AdoptBackend
// implements that loop: fold a corrected backend into the corpus and
// rebuild the pipeline, ready for another Train().

// CorrectedBackend pairs a generated backend with the reference used to
// repair its inaccurate functions.
type CorrectedBackend struct {
	Target string
	Funcs  map[string]*cpp.Node
}

// Correct merges a generated backend with its reference: accurate,
// parseable generated functions are kept, everything else comes from the
// reference (the paper's §4.3 robustness methodology). accurate maps
// interface-function names to their pass@1 verdicts.
func Correct(gen *generate.Backend, ref *corpus.Backend, accurate map[string]bool) *CorrectedBackend {
	out := &CorrectedBackend{Target: gen.Target, Funcs: map[string]*cpp.Node{}}
	for name, fn := range ref.Funcs {
		out.Funcs[name] = fn
	}
	for _, f := range gen.Functions {
		if !accurate[f.Name] || !f.Generated() {
			continue
		}
		parsed, err := f.Parse()
		if err != nil {
			continue
		}
		cpp.Normalize(parsed)
		out.Funcs[f.Name] = parsed
	}
	return out
}

// AdoptBackend adds a corrected backend to the corpus as a training
// backend and rebuilds the pipeline's Stage 1 state. The caller re-runs
// Train() to let the model learn from the new target — the paper's update
// mechanism. The adopted target's spec must already exist in the fleet
// (its description files do: they were the generation input).
func AdoptBackend(c *corpus.Corpus, cb *CorrectedBackend, cfg Config) (*Pipeline, error) {
	spec := corpus.FindTarget(cb.Target)
	if spec == nil {
		return nil, fmt.Errorf("core: unknown target %q", cb.Target)
	}
	// Clone the fleet with the adopted target flipped to training.
	adopted := &corpus.Corpus{
		Tree:     c.Tree,
		Backends: make(map[string]*corpus.Backend, len(c.Backends)),
	}
	for _, t := range c.Targets {
		if t.Name == cb.Target {
			clone := *t
			clone.Eval = false
			adopted.Targets = append(adopted.Targets, &clone)
			adopted.Backends[t.Name] = &corpus.Backend{
				Target:  &clone,
				Funcs:   cb.Funcs,
				Sources: map[string]string{},
			}
			continue
		}
		adopted.Targets = append(adopted.Targets, t)
		adopted.Backends[t.Name] = c.Backends[t.Name]
	}
	return New(adopted, cfg)
}
