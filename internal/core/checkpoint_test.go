package core

import (
	"path/filepath"
	"reflect"
	"testing"
)

func TestCheckpointRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	cfg := tinyConfig()
	cfg.Train.Epochs = 1
	cfg.MaxSamples = 60
	cfg.VerifyCap = 10
	p, err := New(testCorpus(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Train(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ckpt.gob")
	if err := p.Save(path); err != nil {
		t.Fatal(err)
	}

	q, err := New(testCorpus(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Load(path); err != nil {
		t.Fatal(err)
	}
	// The restored pipeline must generate identical output.
	g1 := p.GroupByName("getRelocType")
	g2 := q.GroupByName("getRelocType")
	f1 := p.GenerateFunction(g1, "RISCV")
	f2 := q.GenerateFunction(g2, "RISCV")
	if len(f1.Statements) != len(f2.Statements) {
		t.Fatalf("statement counts differ: %d vs %d", len(f1.Statements), len(f2.Statements))
	}
	for i := range f1.Statements {
		a, b := f1.Statements[i], f2.Statements[i]
		if a.Text != b.Text || a.Score != b.Score || a.Absent != b.Absent {
			t.Fatalf("statement %d differs after reload:\n%+v\n%+v", i, a, b)
		}
	}
	if !reflect.DeepEqual(p.Vocab.Pieces(), q.Vocab.Pieces()) {
		t.Fatal("vocabulary differs after reload")
	}
}

func TestLoadErrors(t *testing.T) {
	p, err := New(testCorpus(t), tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Load("/no/such/file"); err == nil {
		t.Error("expected error for missing checkpoint")
	}
	if err := p.Save(filepath.Join(t.TempDir(), "x.gob")); err == nil {
		t.Error("expected error saving an untrained pipeline")
	}
}
