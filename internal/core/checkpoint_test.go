package core

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"vega/internal/faultinject"
	"vega/internal/model"
)

// initModel fills in an untrained vocab and model so Save/Load round-trip
// tests do not need a full training run.
func initModel(t *testing.T, p *Pipeline) {
	t.Helper()
	p.Vocab = model.BuildVocabExtra(p.trainingSequences(), 2, p.forceCharNames(), markerTokens)
	cfg := p.Cfg.Model
	cfg.Vocab = p.Vocab.Size()
	p.Model = model.NewTransformer(cfg)
}

// savedCheckpoint builds a pipeline with an untrained model and saves it.
func savedCheckpoint(t *testing.T) (*Pipeline, string) {
	t.Helper()
	p, err := New(testCorpus(t), tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	initModel(t, p)
	path := filepath.Join(t.TempDir(), "ckpt.vega")
	if err := p.Save(path); err != nil {
		t.Fatal(err)
	}
	return p, path
}

func TestCheckpointRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	cfg := tinyConfig()
	cfg.Train.Epochs = 1
	cfg.MaxSamples = 60
	cfg.VerifyCap = 10
	p, err := New(testCorpus(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Train(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ckpt.gob")
	if err := p.Save(path); err != nil {
		t.Fatal(err)
	}

	q, err := New(testCorpus(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Load(path); err != nil {
		t.Fatal(err)
	}
	// The restored pipeline must generate identical output.
	g1 := p.GroupByName("getRelocType")
	g2 := q.GroupByName("getRelocType")
	f1 := p.GenerateFunction(g1, "RISCV")
	f2 := q.GenerateFunction(g2, "RISCV")
	if len(f1.Statements) != len(f2.Statements) {
		t.Fatalf("statement counts differ: %d vs %d", len(f1.Statements), len(f2.Statements))
	}
	for i := range f1.Statements {
		a, b := f1.Statements[i], f2.Statements[i]
		if a.Text != b.Text || a.Score != b.Score || a.Absent != b.Absent {
			t.Fatalf("statement %d differs after reload:\n%+v\n%+v", i, a, b)
		}
	}
	if !reflect.DeepEqual(p.Vocab.Pieces(), q.Vocab.Pieces()) {
		t.Fatal("vocabulary differs after reload")
	}
}

func TestCheckpointUntrainedRoundTrip(t *testing.T) {
	p, path := savedCheckpoint(t)
	q, err := New(testCorpus(t), tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Load(path); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p.Vocab.Pieces(), q.Vocab.Pieces()) {
		t.Fatal("vocabulary differs after reload")
	}
	a, b := p.Model.Params(), q.Model.Params()
	for i := range a {
		if !reflect.DeepEqual(a[i].Data, b[i].Data) {
			t.Fatalf("parameter %d differs after reload", i)
		}
	}
}

func TestCheckpointTruncated(t *testing.T) {
	_, path := savedCheckpoint(t)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{ckptHeaderLen / 2, ckptHeaderLen + 5, len(raw) - 10} {
		if err := os.WriteFile(path, raw[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		p, _ := New(testCorpus(t), tinyConfig())
		if err := p.Load(path); !errors.Is(err, ErrCheckpointCorrupt) {
			t.Errorf("truncated to %d bytes: err = %v, want ErrCheckpointCorrupt", n, err)
		}
	}
}

func TestCheckpointFlippedByte(t *testing.T) {
	_, path := savedCheckpoint(t)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[ckptHeaderLen+len(raw[ckptHeaderLen:])/2] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	p, _ := New(testCorpus(t), tinyConfig())
	err = p.Load(path)
	if !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("err = %v, want ErrCheckpointCorrupt", err)
	}
	if p.Model != nil || p.Vocab != nil {
		t.Fatal("failed Load mutated the pipeline")
	}
}

func TestCheckpointBadMagicAndVersion(t *testing.T) {
	_, path := savedCheckpoint(t)
	p, _ := New(testCorpus(t), tinyConfig())

	junk := filepath.Join(t.TempDir(), "junk.vega")
	if err := os.WriteFile(junk, []byte("definitely not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := p.Load(junk); !errors.Is(err, ErrCheckpointFormat) {
		t.Errorf("junk file: err = %v, want ErrCheckpointFormat", err)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[11] = 99 // future format version
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := p.Load(path); !errors.Is(err, ErrCheckpointVersion) {
		t.Errorf("future version: err = %v, want ErrCheckpointVersion", err)
	}
}

func TestCheckpointWrongArch(t *testing.T) {
	_, path := savedCheckpoint(t)
	ck, err := readCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, arch := range []string{"gru", "nope"} {
		tampered := *ck
		tampered.Arch = arch
		tpath := filepath.Join(t.TempDir(), "arch.vega")
		if err := writeCheckpointFile(tpath, &tampered, nil); err != nil {
			t.Fatal(err)
		}
		p, _ := New(testCorpus(t), tinyConfig())
		if err := p.Load(tpath); !errors.Is(err, ErrCheckpointArch) {
			t.Errorf("arch %q: err = %v, want ErrCheckpointArch", arch, err)
		}
	}
}

func TestCheckpointFaultInjectedBitFlip(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()
	p, err := New(testCorpus(t), tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	initModel(t, p)
	path := filepath.Join(t.TempDir(), "ckpt.vega")
	faultinject.Arm(faultinject.CheckpointCorrupt, path)
	if err := p.Save(path); err != nil {
		t.Fatal(err)
	}
	if faultinject.Fired(faultinject.CheckpointCorrupt) != 1 {
		t.Fatal("corruption fault did not fire")
	}
	q, _ := New(testCorpus(t), tinyConfig())
	if err := q.Load(path); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("err = %v, want ErrCheckpointCorrupt", err)
	}
}

func TestSaveIsAtomic(t *testing.T) {
	// A failed save (unwritable temp dir) must leave the previous
	// checkpoint readable, and no temp litter behind on success.
	p, path := savedCheckpoint(t)
	dir := filepath.Dir(path)
	if err := p.Save(path); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("temp litter in checkpoint dir: %v", entries)
	}
	q, _ := New(testCorpus(t), tinyConfig())
	if err := q.Load(path); err != nil {
		t.Fatal(err)
	}
}

func TestLoadErrors(t *testing.T) {
	p, err := New(testCorpus(t), tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Load("/no/such/file"); err == nil {
		t.Error("expected error for missing checkpoint")
	}
	if err := p.Save(filepath.Join(t.TempDir(), "x.gob")); err == nil {
		t.Error("expected error saving an untrained pipeline")
	}
}
