package core

import (
	"strings"

	"vega/internal/confidence"
	"vega/internal/cpp"
	"vega/internal/feature"
	"vega/internal/generate"
	"vega/internal/model"
)

// repairBeamWidth is the minimum beam width used when mining repair
// candidates: even a greedy pipeline widens the search once a statement
// has been refuted by a counterexample — the whole point of the repair
// round is to look past the model's first choice.
const repairBeamWidth = 4

// repairDecoder adapts the pipeline's Stage 3 decoder to the repair
// engine's constrained re-decoding interface. Candidates come from four
// deterministic sources, in preference order:
//
//  1. the row template instantiated with the generation target's own
//     mined placeholder values (the value grid counterexamples prune —
//     the model's top choice was refuted, so its competitors get their
//     turn in similarity-rank order);
//  2. beam-search alternatives for the row, re-decoded through the same
//     statement reconstruction as generation (the surviving beams the
//     engine re-ranks by verification outcome);
//  3. the training targets' own statements for the row, in fleet order
//     (the template's PerTarget variants — ground-truth shapes the model
//     may have mis-scored);
//  4. when the row may legitimately be absent, the explicit drop.
//
// Texts in banned (refuted by earlier rounds) are pruned. Candidate
// scores are lifted to the confidence threshold so an adopted candidate
// renders; only fully verified functions ever keep these lifted scores —
// failed repairs revert to the original statements.
type repairDecoder struct {
	p      *Pipeline
	target string
}

func (d repairDecoder) Candidates(fnName string, row int, banned []string, forcePresent bool) []generate.Statement {
	g := d.p.GroupByName(fnName)
	if g == nil || row < 0 || row >= len(g.FT.Rows) {
		return nil
	}
	tv := d.p.Extractor.TargetValues(g.TF, d.target)
	skip := make(map[string]bool, len(banned))
	for _, b := range banned {
		skip[b] = true
	}
	// A candidate that still carries a raw placeholder name (the model
	// under-produced and the SV slot went unfilled) can never parse —
	// score-lifting it would only waste a verification.
	varNames := map[string]bool{}
	for _, el := range g.FT.Rows[row].Pattern {
		if el.Var {
			varNames[el.Text] = true
		}
	}
	unresolved := func(text string) bool {
		if len(varNames) == 0 {
			return false
		}
		toks, err := cpp.Lex(text)
		if err != nil {
			return true
		}
		for _, tok := range cpp.TokenTexts(toks) {
			if varNames[tok] {
				return true
			}
		}
		return false
	}
	var out []generate.Statement
	seenAbsent := false
	add := func(st generate.Statement) {
		if st.Absent {
			if forcePresent || seenAbsent {
				return
			}
			seenAbsent = true
			out = append(out, st)
			return
		}
		if st.Text == "" || skip[st.Text] || unresolved(st.Text) {
			return
		}
		skip[st.Text] = true
		if !confidence.Likely(st.Score) {
			// A refutation-driven substitution must survive the
			// confidence filter to take effect; verification, not the
			// score, now decides whether it stays.
			st.Score = confidence.Threshold
		}
		out = append(out, st)
	}

	for _, st := range d.templateCandidates(g, row, tv) {
		add(st)
	}
	if bs, ok := d.p.Model.(beamSearcher); ok {
		width := d.p.Cfg.BeamWidth
		if width < repairBeamWidth {
			width = repairBeamWidth
		}
		in := d.p.rowInputTokens(g, row, tv, d.target)
		inIDs := append([]int{model.CLS}, d.p.Vocab.Encode(in)...)
		for _, beam := range bs.BeamGenerate(inIDs, d.p.Cfg.MaxOutPieces, width) {
			add(d.p.decodeStatement(g, row, tv, beam.IDs))
		}
	}
	for _, tgt := range g.Targets {
		toks, ok := g.FT.Rows[row].PerTarget[tgt]
		if !ok {
			continue
		}
		add(generate.Statement{
			Row:     row,
			Text:    joinTokens(toks),
			Score:   confidence.Threshold,
			Formula: d.p.rowFormulaScore(g, row, tv, true),
		})
	}
	add(generate.Statement{Row: row, Absent: true,
		Formula: d.p.rowFormulaScore(g, row, tv, false)})
	return out
}

// Caps on the template-instantiation grid: values per placeholder and
// instantiations per row. The engine's own MaxCandidates caps the final
// pool, so these only bound the enumeration work.
const (
	repairMaxVarValues = 4
	repairMaxCombos    = 12
)

// templateCandidates instantiates the row's pattern with the generation
// target's own mined placeholder values — the same candidate lists the
// encoder shows the model, enumerated directly so verification (not the
// model's refuted ranking) picks among them. Rows with a placeholder that
// mined no candidates produce nothing: an unresolved SV name cannot parse.
func (d repairDecoder) templateCandidates(g *Group, row int, tv *feature.TargetFeatures) []generate.Statement {
	ids := g.FT.Rows[row].VarIDs()
	formula := d.p.rowFormulaScore(g, row, tv, true)
	vals := make([][]string, len(ids))
	for i, id := range ids {
		cands, _ := d.p.varCandidates(g, row, id, tv, d.target)
		if len(cands) == 0 {
			return nil
		}
		if len(cands) > repairMaxVarValues {
			cands = cands[:repairMaxVarValues]
		}
		vals[i] = cands
	}
	render := func(pick []int) string {
		var toks []string
		vi := 0
		for _, el := range g.FT.Rows[row].Pattern {
			if !el.Var {
				toks = append(toks, el.Text)
				continue
			}
			toks = append(toks, strings.Fields(vals[vi][pick[vi]])...)
			vi++
		}
		return joinTokens(toks)
	}
	var out []generate.Statement
	pick := make([]int, len(ids))
	for len(out) < repairMaxCombos {
		out = append(out, generate.Statement{
			Row: row, Text: render(pick), Score: confidence.Threshold, Formula: formula,
		})
		// Odometer over the value grid, last placeholder fastest, so the
		// similarity-ranked top values pair up first.
		i := len(pick) - 1
		for ; i >= 0; i-- {
			pick[i]++
			if pick[i] < len(vals[i]) {
				break
			}
			pick[i] = 0
		}
		if i < 0 {
			break
		}
	}
	return out
}
