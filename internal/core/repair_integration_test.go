package core

import (
	"fmt"
	"strings"
	"testing"

	"vega/internal/generate"
)

// verifyFingerprint extends backendFingerprint with the verification
// outcome: repair must be just as deterministic as decoding.
func verifyFingerprint(b *generate.Backend) string {
	var sb strings.Builder
	sb.WriteString(backendFingerprint(b))
	for _, f := range b.Functions {
		if f.Verify == nil {
			fmt.Fprintf(&sb, "%s|unset\n", f.Name)
			continue
		}
		fmt.Fprintf(&sb, "%s|%s|%d|%v|%q\n", f.Name, f.Verify.Status,
			f.Verify.Rounds, f.Verify.RepairedRows, f.Verify.Counterexample)
	}
	return sb.String()
}

// TestGenerateVerifyStatuses checks the opt-in contract: with Verify on,
// every non-failed function carries a verification status and the backend
// counters add up; with Verify off, no function is touched.
func TestGenerateVerifyStatuses(t *testing.T) {
	if testing.Short() {
		t.Skip("full-backend generation test")
	}
	p := faultPipeline(t)
	p.Cfg.Verify = true
	b := p.GenerateBackend("RISCV")

	var passed, repaired, failed, noOracle int
	for _, f := range b.Functions {
		if f.Failed() {
			continue
		}
		if f.Verify == nil {
			t.Fatalf("%s: no verification with Cfg.Verify on", f.Name)
		}
		switch f.Verify.Status {
		case generate.VerifyPassed:
			passed++
		case generate.VerifyRepaired:
			repaired++
			if len(f.Verify.RepairedRows) == 0 || f.Verify.Rounds < 1 {
				t.Errorf("%s: repaired without rows/rounds: %+v", f.Name, f.Verify)
			}
		case generate.VerifyFailed:
			failed++
			if f.Verify.Counterexample == "" {
				t.Errorf("%s: failed verification without counterexample", f.Name)
			}
		case generate.VerifyNoOracle:
			noOracle++
		default:
			t.Errorf("%s: unexpected status %v", f.Name, f.Verify.Status)
		}
	}
	if passed+repaired+failed == 0 {
		t.Error("no function was verified against the RISCV oracle")
	}
	if b.Verified != passed+repaired || b.Repaired != repaired || b.RepairFailed != failed {
		t.Errorf("counters verified=%d repaired=%d failed=%d, want %d/%d/%d",
			b.Verified, b.Repaired, b.RepairFailed, passed+repaired, repaired, failed)
	}

	// Verify off: zero residue.
	p.Cfg.Verify = false
	plain := p.GenerateBackend("RISCV")
	for _, f := range plain.Functions {
		if f.Verify != nil {
			t.Fatalf("%s: verification set without Verify", f.Name)
		}
	}
	if plain.Verified != 0 || plain.Repaired != 0 || plain.RepairFailed != 0 {
		t.Errorf("plain backend carries repair counters: %+v", plain)
	}
}

// TestVerifyWorkerCountInvariant: the verified (and possibly repaired)
// backend must stay byte-identical for any worker count — repair runs
// per-function with a per-call ban list and a fresh eval universe, so
// worker scheduling cannot leak into outcomes.
func TestVerifyWorkerCountInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("full-backend generation test")
	}
	p := faultPipeline(t)
	p.Cfg.Verify = true

	p.Cfg.Workers = 1
	one := p.GenerateBackend("RISCV")
	p.Cfg.Workers = 8
	many := p.GenerateBackend("RISCV")

	if a, b := verifyFingerprint(one), verifyFingerprint(many); a != b {
		t.Error("verified backend differs between Workers=1 and Workers=8")
	}
}

// TestVerifyOffMatchesBaseline: running with Verify off must produce the
// exact backend the pre-repair pipeline produced — the zero-overhead-off
// guarantee is also a zero-interference guarantee.
func TestVerifyOffMatchesBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("full-backend generation test")
	}
	p := faultPipeline(t)
	base := backendFingerprint(p.GenerateBackend("RISCV"))

	p.Cfg.Verify = true
	_ = p.GenerateBackend("RISCV") // a verified run in between must not leak state

	p.Cfg.Verify = false
	again := backendFingerprint(p.GenerateBackend("RISCV"))
	if base != again {
		t.Error("baseline backend changed after a verified run")
	}
}

// TestSkipRepairVerifiesWithoutRounds: the degrade rung keeps statuses
// flowing but never burns a repair round, and never improves a function.
func TestSkipRepairVerifiesWithoutRounds(t *testing.T) {
	if testing.Short() {
		t.Skip("full-backend generation test")
	}
	p := faultPipeline(t)
	b := p.GenerateBackendOptions(t.Context(), "RISCV",
		GenOptions{Verify: true, SkipRepair: true})
	for _, f := range b.Functions {
		if f.Failed() || f.Verify == nil {
			continue
		}
		if f.Verify.Status == generate.VerifyRepaired || f.Verify.Rounds != 0 {
			t.Errorf("%s: repair ran under SkipRepair: %+v", f.Name, f.Verify)
		}
	}
	if b.Repaired != 0 {
		t.Errorf("Repaired = %d under SkipRepair, want 0", b.Repaired)
	}
}

// TestRepairRecoversFunctions is the tentpole's acceptance check at unit
// scale: on the deterministic untrained pipeline, counterexample-guided
// repair must recover at least one function plain generation got wrong,
// and must never lose one (verified pass@1 >= plain pass@1 by revert).
func TestRepairRecoversFunctions(t *testing.T) {
	if testing.Short() {
		t.Skip("full-backend generation test")
	}
	p := faultPipeline(t)
	p.Cfg.Verify = true
	b := p.GenerateBackend("RISCV")
	if b.Repaired < 1 {
		t.Errorf("Repaired = %d, want >= 1 recovered function", b.Repaired)
	}
	if b.Verified < b.Repaired {
		t.Errorf("Verified %d < Repaired %d", b.Verified, b.Repaired)
	}
}
