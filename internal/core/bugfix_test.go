package core

import (
	"errors"
	"reflect"
	"testing"

	"vega/internal/corpus"
	"vega/internal/model"
	"vega/internal/obs"
)

// subCorpus clones the shared corpus down to the first n non-eval
// backends, sharing the rendered source tree — the same trick
// AdoptBackend uses — so split behaviour on small fleets is testable
// without re-rendering LLVM.
func subCorpus(t *testing.T, n int) *corpus.Corpus {
	t.Helper()
	full := testCorpus(t)
	sub := &corpus.Corpus{Tree: full.Tree, Backends: map[string]*corpus.Backend{}}
	for _, ts := range full.Targets {
		if ts.Eval {
			continue
		}
		if len(sub.Targets) == n {
			break
		}
		sub.Targets = append(sub.Targets, ts)
		sub.Backends[ts.Name] = full.Backends[ts.Name]
	}
	if len(sub.Targets) != n {
		t.Fatalf("corpus has only %d training backends, need %d", len(sub.Targets), n)
	}
	return sub
}

// The backend-based split used to compute its cut with no floor:
// TrainFraction 0.1 on a small fleet truncated to cut 0 (nothing
// trains) and 1.0 gave cut == len (nothing verifies) — both produced a
// pipeline that failed much later, deep in Stage 2. Now every fleet of
// ≥ 2 splits with both sides populated, and a one-backend fleet is a
// typed error at New.
func TestBackendSplitDegenerateFleets(t *testing.T) {
	cfg := tinyConfig()
	cfg.SplitByBackend = true
	if _, err := New(subCorpus(t, 1), cfg); !errors.Is(err, ErrDegenerateSplit) {
		t.Errorf("fleet of 1: err = %v, want ErrDegenerateSplit", err)
	}

	for n := 2; n <= 4; n++ {
		for _, frac := range []float64{0.1, 0.75, 1.0} {
			cfg := tinyConfig()
			cfg.SplitByBackend = true
			cfg.TrainFraction = frac
			p, err := New(subCorpus(t, n), cfg)
			if err != nil {
				t.Errorf("fleet %d, fraction %.2f: %v", n, frac, err)
				continue
			}
			if len(p.TrainFns) == 0 || len(p.VerifyFns) == 0 {
				t.Errorf("fleet %d, fraction %.2f: %d train / %d verify functions",
					n, frac, len(p.TrainFns), len(p.VerifyFns))
			}
		}
	}
}

// VerifyCap 0 used to be rewritten to 400 inside TrainContext, making
// "verify on the whole 25% split" inexpressible. It now follows the
// MaxSamples convention: 0 or negative bounds nothing, and the applied
// cap is visible on the verify.cap_applied gauge.
func TestVerifyCapConvention(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	base := tinyConfig()
	base.Train.Epochs = 1
	base.MaxSamples = 12
	base.MaxOutPieces = 4 // keeps the uncapped exact-match pass cheap

	// The uncapped verify count, computed without training: if it does
	// not exceed the old hardwired 400 the regression would be invisible.
	ref, err := New(testCorpus(t), base)
	if err != nil {
		t.Fatal(err)
	}
	ref.Vocab = model.BuildVocabExtra(ref.trainingSequences(), 2, ref.forceCharNames(), markerTokens)
	uncapped := len(ref.dedupAndCap(ref.samplesForSplit(ref.VerifyFns), 0, base.Seed+2))
	if uncapped <= 400 {
		t.Fatalf("test premise broken: uncapped verify split has %d samples, need > 400", uncapped)
	}

	for _, tc := range []struct {
		name  string
		cap   int
		want  int
		gauge float64
	}{
		{"zero is unlimited", 0, uncapped, 0},
		{"negative is unlimited", -3, uncapped, 0},
		{"explicit cap holds", 10, 10, 10},
	} {
		t.Run(tc.name, func(t *testing.T) {
			mem := &obs.MemSink{}
			cfg := base
			cfg.VerifyCap = tc.cap
			cfg.Obs = obs.New(mem)
			p, err := New(testCorpus(t), cfg)
			if err != nil {
				t.Fatal(err)
			}
			res, err := p.Train()
			if err != nil {
				t.Fatal(err)
			}
			if res.VerifySamples != tc.want {
				t.Errorf("VerifyCap %d: verified %d samples, want %d",
					tc.cap, res.VerifySamples, tc.want)
			}
			cfg.Obs.Flush()
			if g, ok := mem.Metric("verify.cap_applied"); !ok || g.Value != tc.gauge {
				t.Errorf("verify.cap_applied = %v (found=%v), want %v", g.Value, ok, tc.gauge)
			}
		})
	}
}

// stubBeamModel is a Seq2Seq whose beam search returns whatever the test
// plants — the real transformer's BeamGenerate structurally always
// returns at least one beam, so the empty-beam degradation is only
// reachable through the beamSearcher seam.
type stubBeamModel struct {
	beams  []model.Beam
	greedy []int
}

func (s *stubBeamModel) Params() []*model.Tensor { return nil }
func (s *stubBeamModel) Loss(tp *model.Tape, input, output []int) *model.Tensor {
	return nil
}
func (s *stubBeamModel) Generate(input []int, maxLen int) []int { return s.greedy }
func (s *stubBeamModel) BeamGenerate(input []int, maxLen, width int) []model.Beam {
	return s.beams
}

// An empty beam result used to fall through to Generate with no trace —
// indistinguishable from a deliberate greedy run. It now routes through
// the same BeamFallback/log-once path as the wrong-architecture
// downgrade and counts on gen.beam_empty.
func TestDecodeEmptyBeamFallsBackToGreedy(t *testing.T) {
	mem := &obs.MemSink{}
	cfg := tinyConfig()
	cfg.BeamWidth = 4
	cfg.Obs = obs.New(mem)
	p, err := New(testCorpus(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.Model = &stubBeamModel{greedy: []int{41, 7}}

	got := p.decode([]int{model.CLS}, false)
	if !reflect.DeepEqual(got, []int{41, 7}) {
		t.Errorf("decode = %v, want the greedy result [41 7]", got)
	}
	if !p.BeamFallback {
		t.Error("BeamFallback not set after an empty beam search")
	}
	cfg.Obs.Flush()
	if m, _ := mem.Metric("gen.beam_empty"); m.Value != 1 {
		t.Errorf("gen.beam_empty = %v, want 1", m.Value)
	}
	if m, _ := mem.Metric("gen.beam_fallbacks"); m.Value != 0 {
		t.Errorf("gen.beam_fallbacks = %v, want 0 (arch path must not fire)", m.Value)
	}
}

// A populated beam result is still used as-is: no fallback, no counter.
func TestDecodeBeamUsedWhenPresent(t *testing.T) {
	mem := &obs.MemSink{}
	cfg := tinyConfig()
	cfg.BeamWidth = 4
	cfg.Obs = obs.New(mem)
	p, err := New(testCorpus(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.Model = &stubBeamModel{beams: []model.Beam{{IDs: []int{9, 9}}}, greedy: []int{1}}

	if got := p.decode([]int{model.CLS}, false); !reflect.DeepEqual(got, []int{9, 9}) {
		t.Errorf("decode = %v, want the top beam [9 9]", got)
	}
	if p.BeamFallback {
		t.Error("BeamFallback set despite a non-empty beam result")
	}
	cfg.Obs.Flush()
	if m, _ := mem.Metric("gen.beam_empty"); m.Value != 0 {
		t.Errorf("gen.beam_empty = %v, want 0", m.Value)
	}
}

// The pre-training curriculum cap used to truncate silently. The drop
// is now counted on pretrain.samples_dropped (and logged once).
func TestPretrainCapNotSilent(t *testing.T) {
	mem := &obs.MemSink{}
	cfg := tinyConfig()
	cfg.Obs = obs.New(mem)
	p, err := New(testCorpus(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.Vocab = model.BuildVocabExtra(p.trainingSequences(), 2, p.forceCharNames(), markerTokens)

	pre := p.pretrainSamples()
	if len(pre) != pretrainCap {
		t.Fatalf("pretrain samples = %d, want the cap %d (full corpus must overflow it)",
			len(pre), pretrainCap)
	}
	cfg.Obs.Flush()
	m, ok := mem.Metric("pretrain.samples_dropped")
	if !ok || m.Value <= 0 {
		t.Fatalf("pretrain.samples_dropped = %v (found=%v), want > 0", m.Value, ok)
	}
	dropped := m.Value

	// A second build drops the same count again; the counter accumulates.
	p.pretrainSamples()
	cfg.Obs.Flush()
	if m, _ := mem.Metric("pretrain.samples_dropped"); m.Value != 2*dropped {
		t.Errorf("counter after second build = %v, want %v", m.Value, 2*dropped)
	}
}

// The acceptance bar for the observability layer: one tiny end-to-end
// run (all three stages, pre-training on) must emit at least 20
// distinct metric and span names into the sink.
func TestObservabilityCoverage(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	mem := &obs.MemSink{}
	cfg := tinyConfig()
	cfg.Train.Epochs = 1
	cfg.MaxSamples = 12
	cfg.MaxOutPieces = 4
	cfg.VerifyCap = 10
	cfg.Pretrain = true
	cfg.PretrainEpochs = 1
	cfg.Obs = obs.New(mem)
	p, err := New(subCorpus(t, 4), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Train(); err != nil {
		t.Fatal(err)
	}
	p.GenerateBackend("RISCV")
	cfg.Obs.Flush()

	names := map[string]bool{}
	for _, m := range mem.Metrics() {
		names["metric:"+m.Name] = true
	}
	for _, s := range mem.Spans() {
		names["span:"+s.Name] = true
	}
	if len(names) < 20 {
		t.Errorf("only %d distinct metric/span names emitted: %v", len(names), names)
	}
}
