package core

import (
	"strings"
	"testing"

	"vega/internal/corpus"
	"vega/internal/model"
)

var sharedCorpus *corpus.Corpus

func testCorpus(t *testing.T) *corpus.Corpus {
	t.Helper()
	if sharedCorpus == nil {
		c, err := corpus.Build()
		if err != nil {
			t.Fatal(err)
		}
		sharedCorpus = c
	}
	return sharedCorpus
}

func tinyConfig() Config {
	cfg := DefaultConfig()
	cfg.MaxSamples = 300
	cfg.Pretrain = false
	cfg.Train.Epochs = 2
	cfg.Model.Dim = 32
	cfg.Model.EncLayers = 1
	cfg.Model.DecLayers = 1
	cfg.Model.MaxSeq = 128
	cfg.MaxOutPieces = 24
	return cfg
}

func TestPipelineStageOne(t *testing.T) {
	p, err := New(testCorpus(t), tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Groups) < 40 {
		t.Fatalf("groups = %d", len(p.Groups))
	}
	st := p.Stats()
	if st.TrainFunctions == 0 || st.VerifyFunctions == 0 {
		t.Fatalf("split empty: %+v", st)
	}
	ratio := float64(st.TrainFunctions) / float64(st.TrainFunctions+st.VerifyFunctions)
	if ratio < 0.70 || ratio > 0.85 {
		t.Errorf("split ratio %.2f, want ~0.75", ratio)
	}
	if st.Properties < 15 {
		t.Errorf("properties = %d", st.Properties)
	}
	g := p.GroupByName("getRelocType")
	if g == nil || g.FT.Module != "EMI" {
		t.Fatalf("getRelocType group: %+v", g)
	}
	if len(g.Targets) != len(p.TrainingTargetNames()) {
		t.Errorf("getRelocType targets = %d", len(g.Targets))
	}
}

func TestSplitDeterminism(t *testing.T) {
	a, err := New(testCorpus(t), tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(testCorpus(t), tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.TrainFns) != len(b.TrainFns) {
		t.Fatal("split sizes differ")
	}
	for k := range a.TrainFns {
		if !b.TrainFns[k] {
			t.Fatalf("split differs at %s", k)
		}
	}
}

func TestBackendSplitAblation(t *testing.T) {
	cfg := tinyConfig()
	cfg.SplitByBackend = true
	p, err := New(testCorpus(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Every function of a backend lands on the same side.
	sides := map[string]string{}
	for k := range p.TrainFns {
		tgt := k[strings.Index(k, "/")+1:]
		if s, ok := sides[tgt]; ok && s != "train" {
			t.Fatalf("%s split across sides", tgt)
		}
		sides[tgt] = "train"
	}
	for k := range p.VerifyFns {
		tgt := k[strings.Index(k, "/")+1:]
		if s, ok := sides[tgt]; ok && s != "verify" {
			t.Fatalf("%s split across sides", tgt)
		}
		sides[tgt] = "verify"
	}
}

func TestRowInputShape(t *testing.T) {
	p, err := New(testCorpus(t), tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	g := p.GroupByName("getRelocType")
	tv := g.TF.Targets[g.Targets[0]]
	for ri := range g.FT.Rows {
		toks := p.rowInputTokens(g, ri, tv, g.Targets[0])
		if len(toks) < 4 {
			t.Fatalf("row %d: input too short: %v", ri, toks)
		}
		if toks[0] != "getRelocType" || toks[1] != markRow {
			t.Fatalf("row %d: bad prefix: %v", ri, toks[:3])
		}
		var seps int
		for _, tk := range toks {
			if tk == markSep {
				seps++
			}
		}
		if seps < 1 {
			t.Fatalf("row %d: no separator", ri)
		}
	}
}

func TestSampleRoundTrip(t *testing.T) {
	cfg := tinyConfig()
	p, err := New(testCorpus(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.Vocab = model.BuildVocabExtra(p.trainingSequences(), 2, p.forceCharNames(), markerTokens)
	g := p.GroupByName("getRelocType")
	tgt := g.Targets[0]
	tv := g.TF.Targets[tgt]
	for ri := range g.FT.Rows {
		if !g.FT.Rows[ri].HasTarget(tgt) {
			continue
		}
		s := p.buildSample(g, ri, tgt, tv)
		// Feeding the oracle output through decodeStatement must
		// reproduce the target's own statement text.
		st := p.decodeStatement(g, ri, tv, s.sample.Output)
		if st.Absent {
			t.Fatalf("row %d: oracle output decodes as absent", ri)
		}
		want := joinTokens(g.FT.Rows[ri].PerTarget[tgt])
		if st.Text != want {
			t.Errorf("row %d: decode %q, want %q", ri, st.Text, want)
		}
	}
}

func TestSampleRoundTripAllGroups(t *testing.T) {
	cfg := tinyConfig()
	p, err := New(testCorpus(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.Vocab = model.BuildVocabExtra(p.trainingSequences(), 2, p.forceCharNames(), markerTokens)
	mismatches := 0
	total := 0
	for _, g := range p.Groups {
		for _, tgt := range g.Targets {
			tv := g.TF.Targets[tgt]
			for ri := range g.FT.Rows {
				if !g.FT.Rows[ri].HasTarget(tgt) {
					continue
				}
				total++
				s := p.buildSample(g, ri, tgt, tv)
				st := p.decodeStatement(g, ri, tv, s.sample.Output)
				want := joinTokens(g.FT.Rows[ri].PerTarget[tgt])
				if st.Text != want {
					mismatches++
					if mismatches <= 3 {
						t.Logf("%s/%s row %d: %q vs %q", g.Func.Name, tgt, ri, st.Text, want)
					}
				}
			}
		}
	}
	// The oracle reconstruction ceiling bounds achievable accuracy; it
	// must be essentially lossless.
	if float64(mismatches) > 0.01*float64(total) {
		t.Errorf("oracle reconstruction loses %d/%d statements", mismatches, total)
	}
}

func TestDedupAndCap(t *testing.T) {
	p, err := New(testCorpus(t), tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	p.Vocab = model.BuildVocabExtra(p.trainingSequences(), 2, p.forceCharNames(), markerTokens)
	all := p.samplesForSplit(p.TrainFns)
	capped := p.dedupAndCap(all, 100, 1)
	if len(capped) != 100 {
		t.Errorf("cap = %d", len(capped))
	}
	uncapped := p.dedupAndCap(all, 0, 1)
	if len(uncapped) >= len(all) {
		t.Errorf("dedup removed nothing: %d of %d", len(uncapped), len(all))
	}
}

func TestTrainTinyAndGenerate(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	cfg := tinyConfig()
	p, err := New(testCorpus(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Train()
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples == 0 || res.VocabSize == 0 {
		t.Fatalf("train result: %+v", res)
	}
	if len(res.EpochLosses) == 0 || res.EpochLosses[len(res.EpochLosses)-1] >= res.EpochLosses[0] {
		t.Errorf("loss not falling: %v", res.EpochLosses)
	}
	gb := p.GenerateBackend("RISCV")
	if len(gb.Functions) != len(p.Groups) {
		t.Errorf("generated %d functions, want %d", len(gb.Functions), len(p.Groups))
	}
	var modules int
	for _, sec := range gb.Seconds {
		if sec >= 0 {
			modules++
		}
	}
	if modules != 7 {
		t.Errorf("timed modules = %d", modules)
	}
}

func TestArchSelection(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	for _, arch := range []string{"transformer", "gru", "bert"} {
		cfg := tinyConfig()
		cfg.Arch = arch
		cfg.Train.Epochs = 1
		cfg.MaxSamples = 12
		p, err := New(testCorpus(t), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Train(); err != nil {
			t.Errorf("arch %s: %v", arch, err)
		}
	}
	cfg := tinyConfig()
	cfg.Arch = "nope"
	p, _ := New(testCorpus(t), cfg)
	if _, err := p.Train(); err == nil {
		t.Error("unknown arch must error")
	}
}
