package core

import (
	"context"
	"errors"
	"testing"

	"vega/internal/faultinject"
	"vega/internal/model"
)

// faultPipeline builds a pipeline with an untrained model — enough for
// Stage 3 to run end to end without a training pass.
func faultPipeline(t *testing.T) *Pipeline {
	t.Helper()
	p, err := New(testCorpus(t), tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	initModel(t, p)
	return p
}

func TestGeneratePanicIsolatedToOneFunction(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()
	p := faultPipeline(t)
	faultinject.Arm(faultinject.GeneratePanic, "getRelocType")
	b := p.GenerateBackend("RISCV")
	if len(b.Functions) != len(p.Groups) {
		t.Fatalf("backend incomplete: %d functions, want %d", len(b.Functions), len(p.Groups))
	}
	if b.Recovered != 1 {
		t.Fatalf("Recovered = %d, want 1", b.Recovered)
	}
	if b.Partial {
		t.Error("a recovered panic must not mark the backend partial")
	}
	fn := b.Function("getRelocType")
	if fn == nil || !fn.Failed() {
		t.Fatalf("crashed function not flagged: %+v", fn)
	}
	if fn.Confidence() != 0 || fn.Generated() {
		t.Errorf("crashed function must score confidence 0: conf=%v generated=%v",
			fn.Confidence(), fn.Generated())
	}
	// Every other function generated normally.
	for _, f := range b.Functions {
		if f.Name != "getRelocType" && f.Failed() {
			t.Errorf("unexpected failure in %s: %s", f.Name, f.Err)
		}
	}
}

func TestGenerateCancelContext(t *testing.T) {
	p := faultPipeline(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	b := p.GenerateBackendContext(ctx, "RISCV")
	if !b.Partial {
		t.Fatal("canceled generation not marked partial")
	}
	if len(b.Functions) != 0 {
		t.Errorf("dead context still generated %d functions", len(b.Functions))
	}
}

func TestGenerateCancelMidModuleFault(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()
	p := faultPipeline(t)
	// Abort when generation reaches the EMI module: everything from the
	// earlier modules must be salvaged.
	faultinject.Arm(faultinject.GenerateCancel, "EMI")
	b := p.GenerateBackend("RISCV")
	if !b.Partial {
		t.Fatal("mid-module cancel not marked partial")
	}
	if len(b.Functions) == 0 {
		t.Fatal("nothing salvaged from the modules before the cancel")
	}
	for _, f := range b.Functions {
		if f.Module == "EMI" || f.Module == "ASS" || f.Module == "DIS" {
			t.Errorf("function %s from module %s generated after the cancel point", f.Name, f.Module)
		}
	}
}

func TestTrainContextCancelReturnsPartialResult(t *testing.T) {
	cfg := tinyConfig()
	cfg.Train.Epochs = 10
	cfg.MaxSamples = 40
	p, err := New(testCorpus(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	p.Cfg.Train.Verbose = func(epoch int, loss float64) {
		if epoch == 0 {
			cancel()
		}
	}
	res, err := p.TrainContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil || !res.Canceled {
		t.Fatalf("partial result missing or unflagged: %+v", res)
	}
	if len(res.EpochLosses) != 1 {
		t.Errorf("partial result kept %d epoch losses, want 1", len(res.EpochLosses))
	}
}

func TestTrainRecoversFromInjectedNaNEpoch(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()
	cfg := tinyConfig()
	cfg.Train.Epochs = 3
	cfg.MaxSamples = 120
	cfg.VerifyCap = 10
	p, err := New(testCorpus(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Arm(faultinject.TrainNaN, "1")
	res, err := p.Train()
	if err != nil {
		t.Fatalf("training did not recover from the NaN epoch: %v", err)
	}
	if res.RetriedEpochs < 1 {
		t.Fatalf("RetriedEpochs = %d, want >= 1", res.RetriedEpochs)
	}
	if len(res.EpochLosses) != 3 {
		t.Fatalf("epochs completed = %d, want 3", len(res.EpochLosses))
	}
	if last, first := res.EpochLosses[2], res.EpochLosses[0]; last >= first {
		t.Errorf("loss did not converge across recovery: %v", res.EpochLosses)
	}
}

func TestBeamFallbackRecordedOnce(t *testing.T) {
	p := faultPipeline(t)
	cfg := p.Cfg.Model
	cfg.Vocab = p.Vocab.Size()
	p.Model = model.NewGRUSeq2Seq(cfg)
	p.Cfg.Arch = "gru"
	p.Cfg.BeamWidth = 3
	g := p.GroupByName("getRelocType")
	p.GenerateFunction(g, "RISCV")
	if !p.BeamFallback {
		t.Fatal("greedy downgrade not recorded")
	}

	// The transformer path must not set the flag.
	q := faultPipeline(t)
	q.Cfg.BeamWidth = 2
	q.GenerateFunction(q.GroupByName("getRelocType"), "RISCV")
	if q.BeamFallback {
		t.Error("transformer beam search wrongly flagged as fallback")
	}
}
