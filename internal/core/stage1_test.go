package core

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vega/internal/corpus"
	"vega/internal/feature"
	"vega/internal/obs"
	"vega/internal/template"
)

// stage1Fingerprint serializes everything Stage 1 produces — templates,
// features, targets, and the train/verify split — as JSON. encoding/json
// sorts map keys, so equal state always yields equal bytes; any
// divergence between two pipelines shows up as a byte difference.
func stage1Fingerprint(t *testing.T, p *Pipeline) string {
	t.Helper()
	type groupView struct {
		Name    string
		Module  string
		Targets []string
		FT      *template.FunctionTemplate
		TF      *feature.TemplateFeatures
	}
	view := struct {
		Groups    []groupView
		TrainFns  map[string]bool
		VerifyFns map[string]bool
	}{TrainFns: p.TrainFns, VerifyFns: p.VerifyFns}
	for _, g := range p.Groups {
		view.Groups = append(view.Groups, groupView{
			Name: g.Func.Name, Module: string(g.Func.Module),
			Targets: g.Targets, FT: g.FT, TF: g.TF,
		})
	}
	raw, err := json.Marshal(view)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// TestStage1WorkersDeterminism is the parallel-templatization contract:
// the serialized Stage 1 state is byte-identical for any worker count.
// Run under -race this also exercises the worker pool for data races.
func TestStage1WorkersDeterminism(t *testing.T) {
	c := testCorpus(t)
	var want string
	for _, workers := range []int{1, 3, 8} {
		cfg := tinyConfig()
		cfg.Stage1Workers = workers
		p, err := New(c, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := stage1Fingerprint(t, p)
		if want == "" {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("workers=%d: Stage 1 state differs from workers=1", workers)
		}
	}
}

// counterValue flushes o and reads a counter from the mem sink (0 when
// the counter never fired).
func counterValue(o *obs.Obs, mem *obs.MemSink, name string) float64 {
	o.Flush()
	m, ok := mem.Metric(name)
	if !ok {
		return 0
	}
	return m.Value
}

// TestStage1CacheRoundTrip drives the per-group content-addressed cache
// through miss → populate → hit and requires the cached pipeline to be
// byte-identical to the rebuilt one. Every group gets its own entry plus
// one fleet manifest.
func TestStage1CacheRoundTrip(t *testing.T) {
	c := testCorpus(t)
	dir := t.TempDir()

	baseline, err := New(c, tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	want := stage1Fingerprint(t, baseline)
	n := float64(len(baseline.Groups))

	mem := &obs.MemSink{}
	o := obs.New(mem)
	cfg := tinyConfig()
	cfg.Stage1Cache = dir
	cfg.Obs = o
	cold, err := New(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := counterValue(o, mem, "stage1.cache_miss"); got != n {
		t.Fatalf("cold run: cache_miss = %v, want %v (one per group)", got, n)
	}
	if got := counterValue(o, mem, "stage1.cache_hit"); got != 0 {
		t.Fatalf("cold run: cache_hit = %v, want 0", got)
	}
	if got := counterValue(o, mem, "stage1.group_builds"); got != n {
		t.Fatalf("cold run: group_builds = %v, want %v", got, n)
	}
	if got := stage1Fingerprint(t, cold); got != want {
		t.Fatal("cold (cache-miss) pipeline differs from uncached build")
	}
	groups, _ := filepath.Glob(filepath.Join(dir, "*.s1g"))
	if len(groups) != len(baseline.Groups) {
		t.Fatalf("group entries = %d, want %d", len(groups), len(baseline.Groups))
	}
	manifests, _ := filepath.Glob(filepath.Join(dir, "*.s1m"))
	if len(manifests) != 1 {
		t.Fatalf("manifests = %v, want exactly one", manifests)
	}

	mem2 := &obs.MemSink{}
	o2 := obs.New(mem2)
	cfg.Obs = o2
	warm, err := New(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := counterValue(o2, mem2, "stage1.cache_hit"); got != n {
		t.Fatalf("warm run: cache_hit = %v, want %v", got, n)
	}
	if got := counterValue(o2, mem2, "stage1.cache_miss"); got != 0 {
		t.Fatalf("warm run: cache_miss = %v, want 0", got)
	}
	if got := stage1Fingerprint(t, warm); got != want {
		t.Fatal("warm (cache-hit) pipeline differs from uncached build")
	}
	// The hit path must still produce a fully wired pipeline.
	if g := warm.GroupByName("getRelocType"); g == nil || g.TF.FT != g.FT {
		t.Fatal("cache hit left GroupByName index or TF.FT link broken")
	}
}

// TestStage1CacheCorruptRebuild flips a payload byte in one group entry
// and requires the next build to detect the corruption, rebuild exactly
// that group (every other group still hits), and overwrite the entry.
func TestStage1CacheCorruptRebuild(t *testing.T) {
	c := testCorpus(t)
	dir := t.TempDir()

	cfg := tinyConfig()
	cfg.Stage1Cache = dir
	first, err := New(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := stage1Fingerprint(t, first)
	n := float64(len(first.Groups))

	entries, _ := filepath.Glob(filepath.Join(dir, "*.s1g"))
	if len(entries) != len(first.Groups) {
		t.Fatalf("cache entries = %d, want %d", len(entries), len(first.Groups))
	}
	raw, err := os.ReadFile(entries[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x20 // flip a bit deep in the gob payload
	if err := os.WriteFile(entries[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}

	mem := &obs.MemSink{}
	o := obs.New(mem)
	cfg.Obs = o
	rebuilt, err := New(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := counterValue(o, mem, "stage1.cache_corrupt"); got != 1 {
		t.Fatalf("cache_corrupt = %v, want 1", got)
	}
	if got := counterValue(o, mem, "stage1.cache_hit"); got != n-1 {
		t.Fatalf("cache_hit = %v, want %v (all but the corrupt group)", got, n-1)
	}
	if got := counterValue(o, mem, "stage1.group_builds"); got != 1 {
		t.Fatalf("group_builds = %v, want 1 (only the corrupt group)", got)
	}
	// The corruption counter is also keyed by group for triage.
	o.Flush()
	perGroup := 0
	for _, m := range mem.Metrics() {
		if strings.HasPrefix(m.Name, "stage1.cache_corrupt.") && m.Value > 0 {
			perGroup++
		}
	}
	if perGroup != 1 {
		t.Fatalf("per-group corrupt counters = %d, want 1", perGroup)
	}
	if got := stage1Fingerprint(t, rebuilt); got != want {
		t.Fatal("rebuild after corruption differs from original state")
	}

	// The rebuild overwrote the corrupt entry: the next run hits clean.
	mem2 := &obs.MemSink{}
	o2 := obs.New(mem2)
	cfg.Obs = o2
	healed, err := New(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := counterValue(o2, mem2, "stage1.cache_hit"); got != n {
		t.Fatalf("after heal: cache_hit = %v, want %v", got, n)
	}
	if got := stage1Fingerprint(t, healed); got != want {
		t.Fatal("healed cache entry decodes to different state")
	}
}

// overrideProvider wraps the shared test corpus with one edited
// implementation: ARM's getStackAlignment regenerated from a spec whose
// StackAlign changed, exactly one group's content.
func overrideProvider(t *testing.T, c *corpus.Corpus, align int) corpus.Provider {
	t.Helper()
	fn, ok := corpus.FuncByName("getStackAlignment")
	if !ok {
		t.Fatal("no getStackAlignment interface function")
	}
	spec := corpus.FindTarget("ARM")
	if spec == nil {
		t.Fatal("no ARM target")
	}
	edited := *spec
	edited.StackAlign = align
	return &corpus.Override{Provider: c, FuncName: fn.Name, Target: "ARM", Source: fn.Gen(&edited)}
}

// TestStage1IncrementalInvalidation is the tentpole contract: after a
// warm build, editing one target's implementation of one function misses
// exactly that group — every other group hits — and the incremental
// result is byte-identical to a cold build of the same edited corpus,
// for every worker count.
func TestStage1IncrementalInvalidation(t *testing.T) {
	c := testCorpus(t)
	edited := overrideProvider(t, c, 64)

	// Cold truth for the edited corpus, no cache involved.
	coldEdited, err := NewFromProvider(edited, tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	want := stage1Fingerprint(t, coldEdited)

	for _, workers := range []int{1, 3, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			dir := t.TempDir()
			cfg := tinyConfig()
			cfg.Stage1Cache = dir
			cfg.Stage1Workers = workers

			warm, err := NewFromProvider(c, cfg)
			if err != nil {
				t.Fatal(err)
			}
			n := float64(len(warm.Groups))

			mem := &obs.MemSink{}
			o := obs.New(mem)
			cfg.Obs = o
			incr, err := NewFromProvider(edited, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got := counterValue(o, mem, "stage1.cache_miss"); got != 1 {
				t.Fatalf("cache_miss = %v, want exactly 1 (the edited group)", got)
			}
			if got := counterValue(o, mem, "stage1.cache_hit"); got != n-1 {
				t.Fatalf("cache_hit = %v, want %v", got, n-1)
			}
			if got := counterValue(o, mem, "stage1.group_builds"); got != 1 {
				t.Fatalf("group_builds = %v, want 1", got)
			}
			if got := stage1Fingerprint(t, incr); got != want {
				t.Fatal("incremental rebuild differs from cold build of the edited corpus")
			}
			// The edited group really changed content, not just identity.
			if g := incr.GroupByName("getStackAlignment"); g == nil {
				t.Fatal("edited group missing")
			}
			if stage1Fingerprint(t, warm) == want {
				t.Fatal("override was a no-op: edited fingerprint equals unedited")
			}
		})
	}
}

// TestStreamingProviderEquivalence pins the Provider abstraction: a
// pipeline built from the streaming provider (groups rendered on demand,
// nothing resident) is byte-identical to one built from the resident
// corpus.
func TestStreamingProviderEquivalence(t *testing.T) {
	resident, err := New(testCorpus(t), tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := NewFromProvider(corpus.NewStream(corpus.Targets()), tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if stage1Fingerprint(t, streamed) != stage1Fingerprint(t, resident) {
		t.Fatal("streaming provider's Stage 1 state differs from resident corpus")
	}
	if streamed.Corpus != nil {
		t.Fatal("streaming pipeline should have no resident corpus")
	}
	if _, err := streamed.ReferenceBackend("ARM"); err != nil {
		t.Fatalf("streaming ReferenceBackend: %v", err)
	}
	if streamed.FindTarget("RISCV") == nil {
		t.Fatal("streaming FindTarget lost the eval targets")
	}
}
