package core

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"vega/internal/feature"
	"vega/internal/obs"
	"vega/internal/template"
)

// stage1Fingerprint serializes everything Stage 1 produces — templates,
// features, targets, and the train/verify split — as JSON. encoding/json
// sorts map keys, so equal state always yields equal bytes; any
// divergence between two pipelines shows up as a byte difference.
func stage1Fingerprint(t *testing.T, p *Pipeline) string {
	t.Helper()
	type groupView struct {
		Name    string
		Module  string
		Targets []string
		FT      *template.FunctionTemplate
		TF      *feature.TemplateFeatures
	}
	view := struct {
		Groups    []groupView
		TrainFns  map[string]bool
		VerifyFns map[string]bool
	}{TrainFns: p.TrainFns, VerifyFns: p.VerifyFns}
	for _, g := range p.Groups {
		view.Groups = append(view.Groups, groupView{
			Name: g.Func.Name, Module: string(g.Func.Module),
			Targets: g.Targets, FT: g.FT, TF: g.TF,
		})
	}
	raw, err := json.Marshal(view)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// TestStage1WorkersDeterminism is the parallel-templatization contract:
// the serialized Stage 1 state is byte-identical for any worker count.
// Run under -race this also exercises the worker pool for data races.
func TestStage1WorkersDeterminism(t *testing.T) {
	c := testCorpus(t)
	var want string
	for _, workers := range []int{1, 3, 8} {
		cfg := tinyConfig()
		cfg.Stage1Workers = workers
		p, err := New(c, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := stage1Fingerprint(t, p)
		if want == "" {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("workers=%d: Stage 1 state differs from workers=1", workers)
		}
	}
}

// counterValue flushes o and reads a counter from the mem sink (0 when
// the counter never fired).
func counterValue(o *obs.Obs, mem *obs.MemSink, name string) float64 {
	o.Flush()
	m, ok := mem.Metric(name)
	if !ok {
		return 0
	}
	return m.Value
}

// TestStage1CacheRoundTrip drives the content-addressed cache through
// miss → populate → hit and requires the cached pipeline to be
// byte-identical to the rebuilt one.
func TestStage1CacheRoundTrip(t *testing.T) {
	c := testCorpus(t)
	dir := t.TempDir()

	baseline, err := New(c, tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	want := stage1Fingerprint(t, baseline)

	mem := &obs.MemSink{}
	o := obs.New(mem)
	cfg := tinyConfig()
	cfg.Stage1Cache = dir
	cfg.Obs = o
	cold, err := New(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := counterValue(o, mem, "stage1.cache_miss"); got != 1 {
		t.Fatalf("cold run: cache_miss = %v, want 1", got)
	}
	if got := counterValue(o, mem, "stage1.cache_hit"); got != 0 {
		t.Fatalf("cold run: cache_hit = %v, want 0", got)
	}
	if got := stage1Fingerprint(t, cold); got != want {
		t.Fatal("cold (cache-miss) pipeline differs from uncached build")
	}
	entries, err := filepath.Glob(filepath.Join(dir, "*.s1"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("cache entries = %v (err %v), want exactly one", entries, err)
	}

	mem2 := &obs.MemSink{}
	o2 := obs.New(mem2)
	cfg.Obs = o2
	warm, err := New(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := counterValue(o2, mem2, "stage1.cache_hit"); got != 1 {
		t.Fatalf("warm run: cache_hit = %v, want 1", got)
	}
	if got := counterValue(o2, mem2, "stage1.cache_miss"); got != 0 {
		t.Fatalf("warm run: cache_miss = %v, want 0", got)
	}
	if got := stage1Fingerprint(t, warm); got != want {
		t.Fatal("warm (cache-hit) pipeline differs from uncached build")
	}
	// The hit path must still produce a fully wired pipeline.
	if g := warm.GroupByName("getRelocType"); g == nil || g.TF.FT != g.FT {
		t.Fatal("cache hit left GroupByName index or TF.FT link broken")
	}
}

// TestStage1CacheCorruptRebuild flips a payload byte in the only cache
// entry and requires the next build to detect the corruption, rebuild
// from scratch, and overwrite the entry with a good one.
func TestStage1CacheCorruptRebuild(t *testing.T) {
	c := testCorpus(t)
	dir := t.TempDir()

	cfg := tinyConfig()
	cfg.Stage1Cache = dir
	first, err := New(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := stage1Fingerprint(t, first)

	entries, _ := filepath.Glob(filepath.Join(dir, "*.s1"))
	if len(entries) != 1 {
		t.Fatalf("cache entries = %v, want one", entries)
	}
	raw, err := os.ReadFile(entries[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x20 // flip a bit deep in the gob payload
	if err := os.WriteFile(entries[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}

	mem := &obs.MemSink{}
	o := obs.New(mem)
	cfg.Obs = o
	rebuilt, err := New(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := counterValue(o, mem, "stage1.cache_corrupt"); got != 1 {
		t.Fatalf("cache_corrupt = %v, want 1", got)
	}
	if got := counterValue(o, mem, "stage1.cache_hit"); got != 0 {
		t.Fatalf("cache_hit = %v, want 0 after corruption", got)
	}
	if got := stage1Fingerprint(t, rebuilt); got != want {
		t.Fatal("rebuild after corruption differs from original state")
	}

	// The rebuild overwrote the corrupt entry: the next run hits clean.
	mem2 := &obs.MemSink{}
	o2 := obs.New(mem2)
	cfg.Obs = o2
	healed, err := New(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := counterValue(o2, mem2, "stage1.cache_hit"); got != 1 {
		t.Fatalf("after heal: cache_hit = %v, want 1", got)
	}
	if got := stage1Fingerprint(t, healed); got != want {
		t.Fatal("healed cache entry decodes to different state")
	}
}
