// Package core orchestrates the VEGA pipeline end to end:
//
//	Pre-processing      — build/accept a backend corpus, group functions
//	Stage 1             — templatize each function group and mine features
//	Stage 2             — encode feature vectors and fine-tune CodeBE
//	Stage 3             — generate a complete backend for a new target
//
// It is the public entry point used by the examples, the CLIs and the
// benchmark harness.
package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"vega/internal/corpus"
	"vega/internal/feature"
	"vega/internal/model"
	"vega/internal/obs"
	"vega/internal/s1cache"
	"vega/internal/template"
)

// ErrDegenerateSplit marks a train/verification split that leaves one
// side empty — Stage 2 would train on zero samples or verify on none.
// The backend-based split (§4.2 ablation) can hit this with small
// fleets or extreme TrainFraction values; the per-group split cannot.
var ErrDegenerateSplit = errors.New("core: degenerate train/verify split")

// Config sizes the pipeline. Defaults are tuned for a single-core run of
// the full benchmark harness; the paper-scale equivalents are recorded in
// EXPERIMENTS.md.
type Config struct {
	// Seed drives every random choice (splits, training, shuffles).
	Seed int64
	// TrainFraction is the share of each function group that goes to the
	// training set (the paper's 75%).
	TrainFraction float64
	// MaxSamples caps the deduplicated fine-tuning set (0 = unlimited).
	MaxSamples int
	// CandidateWindow is the number of mined candidate values shown per
	// placeholder property.
	CandidateWindow int
	// MaxCandProps caps how many linked properties contribute candidates
	// per placeholder.
	MaxCandProps int
	// Model sizes CodeBE; Vocab is filled in by Train.
	Model model.Config
	// Train tunes fine-tuning.
	Train model.TrainOptions
	// Pretrain enables the denoising pre-training pass that stands in for
	// UniXcoder's pre-training.
	Pretrain       bool
	PretrainEpochs int
	// SplitByBackend switches the §4.2 ablation: allocate whole backends
	// (not per-group functions) to the training set.
	SplitByBackend bool
	// Arch selects the model architecture: "transformer" (CodeBE),
	// "gru", or "bert" for the ablation baselines.
	Arch string
	// MaxOutPieces caps decoded statement length.
	MaxOutPieces int
	// VerifyCap bounds the verification exact-match sample count, in
	// the MaxSamples convention: 0 (or negative) bounds nothing.
	// DefaultConfig applies the usual 400.
	VerifyCap int
	// BeamWidth > 1 enables beam-search decoding at generation time
	// (transformer only); 0/1 is greedy.
	BeamWidth int
	// Quantize routes Stage 3 decoding through the int8 quantized weight
	// view (transformer only; training always runs float32). Rows whose
	// quantized decode is ambiguous re-decode in float32, so generated
	// backends match the full-precision output. Per-request GenOptions.
	// Quantize ORs with this.
	Quantize bool
	// BeamEscalate makes beam decoding greedy-first: each row decodes
	// greedily, and only rows whose leading confidence falls below
	// confidence.Threshold re-decode with the full beam. No effect unless
	// BeamWidth > 1. Per-request GenOptions.BeamEscalate ORs with this.
	BeamEscalate bool
	// Verify turns on the verify-and-repair loop: every generated
	// function is executed against the held-out ground truth through the
	// eval harness, and diverging functions get counterexample-guided
	// repair rounds (internal/repair). Off by default — and strictly
	// zero-cost when off: no oracle or engine is even constructed.
	Verify bool
	// RepairRounds bounds the CEGAR repair rounds per diverging function
	// when Verify is on (0 = the repair.DefaultRounds of 3).
	RepairRounds int
	// Workers bounds the generation worker pool: how many interface
	// functions Stage 3 decodes concurrently (model weights are read-only
	// after training). 0 or negative means runtime.NumCPU(). Output is
	// deterministic and identical for any worker count.
	Workers int
	// KernelWorkers bounds how many goroutines a single large matmul may
	// fan out to inside internal/tensor (training's minibatch kernels and
	// any other shape above the parallel-dispatch gate). 0 keeps the
	// kernel default of GOMAXPROCS. Results are bit-identical for any
	// value; the knob only trades latency for CPU.
	KernelWorkers int
	// Stage1Workers bounds the templatization worker pool: how many
	// function groups Stage 1 templatizes and feature-mines concurrently
	// in New. 0 or negative means runtime.NumCPU(). Results are merged
	// back in corpus.AllFuncs() order, so output is byte-identical for
	// any worker count — the same determinism contract as Workers and
	// KernelWorkers.
	Stage1Workers int
	// Stage1Cache names a directory for the content-addressed Stage 1
	// artifact cache (internal/s1cache). Empty disables caching. On a
	// hit, New restores templates and features from disk and skips
	// templatization entirely; corrupt entries are detected, rebuilt,
	// and overwritten.
	Stage1Cache string
	// Obs receives spans and metrics from every stage. nil (the
	// default) disables observability entirely: instruments degrade to
	// nil no-ops with no allocation or lock contention on any hot path.
	Obs *obs.Obs
}

// DefaultConfig returns single-core-friendly settings.
func DefaultConfig() Config {
	return Config{
		Seed:            1,
		TrainFraction:   0.75,
		MaxSamples:      2600,
		CandidateWindow: 3,
		MaxCandProps:    2,
		Model: model.Config{
			Dim: 48, Heads: 4, EncLayers: 2, DecLayers: 2,
			FFMult: 2, MaxSeq: 160, Seed: 1,
		},
		Train: model.TrainOptions{
			Epochs: 12, Batch: 16, LR: 3e-3, Seed: 1, MinLoss: 0.015,
			Workers: 1, LRDecay: 0.15,
		},
		Pretrain:       true,
		PretrainEpochs: 2,
		Arch:           "transformer",
		MaxOutPieces:   48,
		VerifyCap:      400,
	}
}

// Group is one function group with its template and features.
type Group struct {
	Func    corpus.InterfaceFunc
	FT      *template.FunctionTemplate
	TF      *feature.TemplateFeatures
	Targets []string // training targets implementing the function, in fleet order
}

// Pipeline holds every stage's state.
type Pipeline struct {
	Cfg Config
	// Provider streams the corpus: target specs, the source tree, and one
	// function group at a time. Always set by New/NewFromProvider.
	Provider corpus.Provider
	// Corpus is the resident corpus when the pipeline was built from one
	// (New); nil under a purely streaming provider.
	Corpus    *corpus.Corpus
	Extractor *feature.Extractor
	Groups    []*Group
	Vocab     *model.Vocab
	Model     model.Seq2Seq

	// byName indexes Groups by interface-function name; built once in
	// New so the per-function lookups of the eval and generation paths
	// stay O(1).
	byName map[string]*Group

	// TrainFns / VerifyFns are the (group, target) pairs of the 75/25
	// split, as "funcName/target" keys.
	TrainFns  map[string]bool
	VerifyFns map[string]bool

	// BeamFallback is set (and logged once via beamWarn) when BeamWidth
	// > 1 is configured but decoding downgraded to greedy anyway —
	// either the architecture cannot beam-search, or BeamGenerate
	// returned zero hypotheses.
	BeamFallback bool
	beamWarn     sync.Once

	// uncachedDecode routes Stage 3 decoding through the reference
	// (full-prefix, tape-recorded) decoder instead of the KV-cached one.
	// Test-only: the differential tests generate a backend both ways and
	// require the bytes to match.
	uncachedDecode bool

	// gm caches the Stage 3 instruments so the per-row decode path
	// never takes the registry lock; all fields are nil (inert) when
	// Cfg.Obs is nil.
	gm genMetrics

	// pretrainWarn gates the once-per-pipeline log when the pre-training
	// curriculum overflows pretrainCap.
	pretrainWarn sync.Once
}

// New builds the pipeline through Stage 1 (templates + features) over a
// resident corpus. It is NewFromProvider with the resident provider; the
// Corpus field is additionally set for callers that still reach into it.
func New(c *corpus.Corpus, cfg Config) (*Pipeline, error) {
	p, err := NewFromProvider(c, cfg)
	if err != nil {
		return nil, err
	}
	p.Corpus = c
	return p, nil
}

// NewFromProvider builds the pipeline through Stage 1 (templates +
// features) over any corpus provider — resident (*corpus.Corpus) or
// streaming (corpus.Stream). Templatization is sharded per function group
// over Cfg.Stage1Workers goroutines and merged back in corpus.AllFuncs()
// order, so the result is byte-identical for any worker count. When
// Cfg.Stage1Cache names a directory, each group is separately
// content-addressed (s1cache.GroupKey): a warm build hits every group, an
// edit to one target rebuilds only the groups that include it, and a
// corrupt entry rebuilds and overwrites only itself.
func NewFromProvider(pr corpus.Provider, cfg Config) (*Pipeline, error) {
	p := &Pipeline{
		Cfg:       cfg,
		Provider:  pr,
		Extractor: feature.NewExtractor(pr.SourceTree(), nil),
		TrainFns:  make(map[string]bool),
		VerifyFns: make(map[string]bool),
		gm:        newGenMetrics(cfg.Obs),
	}
	if c, ok := pr.(*corpus.Corpus); ok {
		p.Corpus = c
	}
	o := cfg.Obs

	span := o.StartSpan("stage1/templatize")
	if err := p.templatize(); err != nil {
		span.End()
		return nil, err
	}
	span.SetAttr(obs.Int("groups", len(p.Groups)))
	span.End()
	return p, p.finishStage1()
}

// stage1Cache bundles the per-group cache state computed once per build.
type stage1Cache struct {
	cache      *s1cache.Cache
	coreHash   string
	targetHash map[string]string
}

// openStage1Cache prepares per-group caching: the cache handle plus the
// core and per-target tree hashes every group key derives from.
func (p *Pipeline) openStage1Cache() *stage1Cache {
	if p.Cfg.Stage1Cache == "" {
		return nil
	}
	var names []string
	for t := range p.Provider.TargetSpecs() {
		names = append(names, t.Name)
	}
	sc := &stage1Cache{cache: &s1cache.Cache{Dir: p.Cfg.Stage1Cache}}
	sc.coreHash, sc.targetHash = s1cache.TreeHashes(p.Provider.SourceTree(), names)
	return sc
}

// templatize runs Stage 1 proper: every function group is streamed from
// the provider, templatized, and feature-mined, fanned out over a bounded
// worker pool. Jobs are indexed by corpus.AllFuncs() order and merged
// back by index, so the result is byte-identical for any worker count
// (the extractor and source-tree caches are mutex-safe and memoize pure
// functions, so scheduling order cannot leak into the output). With a
// cache directory configured, each group is looked up/stored under its
// own content key inside the pool, and a fleet manifest ties the build's
// entries together (superseded entries are garbage-collected).
func (p *Pipeline) templatize() error {
	o := p.Cfg.Obs
	sc := p.openStage1Cache()
	funcs := corpus.AllFuncs()

	workers := p.Cfg.Stage1Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(funcs) {
		workers = len(funcs)
	}
	groups := make([]*Group, len(funcs)) // nil where a function has no group
	keys := make([]string, len(funcs))
	errs := make([]error, len(funcs))
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				groups[i], keys[i], errs[i] = p.buildGroup(sc, funcs[i])
			}
		}()
	}
	for i := range funcs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs { // first error in group order, deterministically
		if err != nil {
			return err
		}
	}
	p.Groups = groups[:0:0]
	var manifest s1cache.Manifest
	for i, g := range groups {
		if g == nil {
			continue
		}
		p.Groups = append(p.Groups, g)
		manifest.Groups = append(manifest.Groups, s1cache.ManifestGroup{
			FuncName: funcs[i].Name, Key: keys[i],
		})
	}
	if sc != nil {
		var fnNames, tgtNames []string
		for _, g := range manifest.Groups {
			fnNames = append(fnNames, g.FuncName)
		}
		for t := range p.Provider.TargetSpecs() {
			tgtNames = append(tgtNames, t.Name)
		}
		if err := sc.cache.StoreManifest(s1cache.FleetKey(fnNames, tgtNames), &manifest); err != nil {
			// A read-only or full cache directory must not fail the
			// build; the next run simply misses again.
			o.Counter("stage1.cache_store_errors").Inc()
		}
	}
	return nil
}

// buildGroup produces one function group: cache lookup first (hit /
// corrupt-rebuild / miss, each counted), then templatize + feature-mine
// from the provider's group source, storing the fresh entry back. A
// function no training target implements yields (nil, "", nil). Safe to
// call from pool workers: obs instruments are atomic and the cache is
// keyed per group.
func (p *Pipeline) buildGroup(sc *stage1Cache, ifn corpus.InterfaceFunc) (*Group, string, error) {
	o := p.Cfg.Obs
	gs := p.Provider.GroupSource(ifn)
	if len(gs.Targets) == 0 {
		return nil, "", nil
	}
	key := ""
	if sc != nil {
		key = s1cache.GroupKey(ifn.Name, string(ifn.Module), gs.Targets, gs.Sources, sc.targetHash, sc.coreHash)
		e, err := sc.cache.LoadGroup(key)
		switch {
		case err == nil && e.FuncName == ifn.Name && len(e.Targets) == len(gs.Targets):
			o.Counter("stage1.cache_hit").Inc()
			return &Group{Func: ifn, FT: e.FT, TF: e.TF, Targets: e.Targets}, key, nil
		case err == nil || errors.Is(err, s1cache.ErrCorrupt):
			// A decodable-but-mismatched entry is a hash collision in
			// practice and treated exactly like damage: rebuild this one
			// group and overwrite it.
			o.Counter("stage1.cache_corrupt").Inc()
			o.Counter("stage1.cache_corrupt." + ifn.Name).Inc()
		default: // ErrMiss, or an unreadable cache degrading to a rebuild
			o.Counter("stage1.cache_miss").Inc()
		}
	}

	start := time.Now()
	nodes, err := gs.Impls()
	if err != nil {
		return nil, "", fmt.Errorf("core: templatize %s: %w", ifn.Name, err)
	}
	impls := make([]template.Impl, len(nodes))
	for i, fn := range nodes {
		impls[i] = template.NewImpl(gs.Targets[i], fn)
	}
	ft, err := template.Build(ifn.Name, impls)
	if err != nil {
		return nil, "", fmt.Errorf("core: templatize %s: %w", ifn.Name, err)
	}
	ft.Module = string(ifn.Module)
	tf := p.Extractor.Select(ft, gs.Targets)
	g := &Group{Func: ifn, FT: ft, TF: tf, Targets: gs.Targets}
	o.Counter("stage1.group_builds").Inc()
	o.Gauge("stage1.group_build_seconds." + ifn.Name).Set(time.Since(start).Seconds())

	if sc != nil {
		e := &s1cache.GroupEntry{FuncName: ifn.Name, Targets: g.Targets, FT: ft, TF: tf}
		if err := sc.cache.StoreGroup(key, e); err != nil {
			o.Counter("stage1.cache_store_errors").Inc()
		}
	}
	return g, key, nil
}

// finishStage1 runs the split, builds the name index, and records the
// Stage 1 gauges — shared by the cached and rebuilt paths.
func (p *Pipeline) finishStage1() error {
	o := p.Cfg.Obs
	splitSpan := o.StartSpan("stage1/split")
	err := p.split()
	splitSpan.End()
	if err != nil {
		return err
	}
	p.byName = make(map[string]*Group, len(p.Groups))
	for _, g := range p.Groups {
		p.byName[g.Func.Name] = g
	}
	o.Gauge("stage1.groups").Set(float64(len(p.Groups)))
	o.Gauge("split.train_functions").Set(float64(len(p.TrainFns)))
	o.Gauge("split.verify_functions").Set(float64(len(p.VerifyFns)))
	return nil
}

// split performs the 75/25 train/verification split, either per function
// group (the paper's scheme) or per backend (the §4.2 ablation). The
// backend path clamps the cut like the per-group path does — at least
// one backend trains, and at least one verifies when the fleet has two
// or more — and reports ErrDegenerateSplit when no clamp can save it
// (a one-backend fleet, or a fleet whose groups leave a side empty).
func (p *Pipeline) split() error {
	rng := newRNG(p.Cfg.Seed)
	if p.Cfg.SplitByBackend {
		var names []string
		for _, t := range corpus.TrainingSpecs(p.Provider) {
			names = append(names, t.Name)
		}
		if len(names) < 2 {
			return fmt.Errorf("%w: backend-based split needs ≥ 2 training backends, have %d",
				ErrDegenerateSplit, len(names))
		}
		shuffled := append([]string{}, names...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		cut := int(float64(len(shuffled)) * p.Cfg.TrainFraction)
		if cut < 1 {
			cut = 1
		}
		if cut > len(shuffled)-1 {
			cut = len(shuffled) - 1
		}
		trainSet := map[string]bool{}
		for _, n := range shuffled[:cut] {
			trainSet[n] = true
		}
		for _, g := range p.Groups {
			for _, tgt := range g.Targets {
				key := g.Func.Name + "/" + tgt
				if trainSet[tgt] {
					p.TrainFns[key] = true
				} else {
					p.VerifyFns[key] = true
				}
			}
		}
		if len(p.TrainFns) == 0 || len(p.VerifyFns) == 0 {
			return fmt.Errorf("%w: %d backend(s) split into %d train / %d verify functions",
				ErrDegenerateSplit, len(names), len(p.TrainFns), len(p.VerifyFns))
		}
		return nil
	}
	for _, g := range p.Groups {
		tgts := append([]string{}, g.Targets...)
		rng.Shuffle(len(tgts), func(i, j int) { tgts[i], tgts[j] = tgts[j], tgts[i] })
		cut := int(float64(len(tgts))*p.Cfg.TrainFraction + 0.999)
		if cut < 1 {
			cut = 1
		}
		for i, tgt := range tgts {
			key := g.Func.Name + "/" + tgt
			if i < cut {
				p.TrainFns[key] = true
			} else {
				p.VerifyFns[key] = true
			}
		}
	}
	return nil
}

// GroupByName returns the group for an interface function; O(1) via the
// index built in New.
func (p *Pipeline) GroupByName(name string) *Group {
	return p.byName[name]
}

// Stats summarizes the pipeline for logs and docs.
type Stats struct {
	Groups          int
	Templates       int
	TrainFunctions  int
	VerifyFunctions int
	TrainStatements int
	Properties      int
}

// Stats computes summary counts.
func (p *Pipeline) Stats() Stats {
	s := Stats{Groups: len(p.Groups), Templates: len(p.Groups)}
	s.TrainFunctions = len(p.TrainFns)
	s.VerifyFunctions = len(p.VerifyFns)
	props := map[string]bool{}
	for _, g := range p.Groups {
		for _, pr := range g.TF.Props {
			props[pr.Name] = true
		}
		for _, tgt := range g.Targets {
			if p.TrainFns[g.Func.Name+"/"+tgt] {
				for ri := range g.FT.Rows {
					if g.FT.Rows[ri].HasTarget(tgt) {
						s.TrainStatements++
					}
				}
			}
		}
	}
	s.Properties = len(props)
	return s
}

// TrainingTargetNames lists training targets in fleet order.
func (p *Pipeline) TrainingTargetNames() []string {
	var out []string
	for _, t := range corpus.TrainingSpecs(p.Provider) {
		out = append(out, t.Name)
	}
	return out
}

// TargetSpecs lists the provider's fleet in canonical order.
func (p *Pipeline) TargetSpecs() []*corpus.TargetSpec {
	return corpus.Specs(p.Provider)
}

// FindTarget returns the fleet's target spec with the given name, or nil.
// Unlike the package-level corpus.FindTarget it sees the pipeline's
// actual fleet — extended fleets and adopted targets included.
func (p *Pipeline) FindTarget(name string) *corpus.TargetSpec {
	return corpus.FindSpec(p.Provider, name)
}

// ReferenceBackend returns the parsed reference backend for one of the
// fleet's targets, materializing it on demand under a streaming provider.
func (p *Pipeline) ReferenceBackend(name string) (*corpus.Backend, error) {
	return p.Provider.ReferenceBackend(name)
}
