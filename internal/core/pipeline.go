// Package core orchestrates the VEGA pipeline end to end:
//
//	Pre-processing      — build/accept a backend corpus, group functions
//	Stage 1             — templatize each function group and mine features
//	Stage 2             — encode feature vectors and fine-tune CodeBE
//	Stage 3             — generate a complete backend for a new target
//
// It is the public entry point used by the examples, the CLIs and the
// benchmark harness.
package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"vega/internal/corpus"
	"vega/internal/feature"
	"vega/internal/model"
	"vega/internal/obs"
	"vega/internal/s1cache"
	"vega/internal/template"
)

// ErrDegenerateSplit marks a train/verification split that leaves one
// side empty — Stage 2 would train on zero samples or verify on none.
// The backend-based split (§4.2 ablation) can hit this with small
// fleets or extreme TrainFraction values; the per-group split cannot.
var ErrDegenerateSplit = errors.New("core: degenerate train/verify split")

// Config sizes the pipeline. Defaults are tuned for a single-core run of
// the full benchmark harness; the paper-scale equivalents are recorded in
// EXPERIMENTS.md.
type Config struct {
	// Seed drives every random choice (splits, training, shuffles).
	Seed int64
	// TrainFraction is the share of each function group that goes to the
	// training set (the paper's 75%).
	TrainFraction float64
	// MaxSamples caps the deduplicated fine-tuning set (0 = unlimited).
	MaxSamples int
	// CandidateWindow is the number of mined candidate values shown per
	// placeholder property.
	CandidateWindow int
	// MaxCandProps caps how many linked properties contribute candidates
	// per placeholder.
	MaxCandProps int
	// Model sizes CodeBE; Vocab is filled in by Train.
	Model model.Config
	// Train tunes fine-tuning.
	Train model.TrainOptions
	// Pretrain enables the denoising pre-training pass that stands in for
	// UniXcoder's pre-training.
	Pretrain       bool
	PretrainEpochs int
	// SplitByBackend switches the §4.2 ablation: allocate whole backends
	// (not per-group functions) to the training set.
	SplitByBackend bool
	// Arch selects the model architecture: "transformer" (CodeBE),
	// "gru", or "bert" for the ablation baselines.
	Arch string
	// MaxOutPieces caps decoded statement length.
	MaxOutPieces int
	// VerifyCap bounds the verification exact-match sample count, in
	// the MaxSamples convention: 0 (or negative) bounds nothing.
	// DefaultConfig applies the usual 400.
	VerifyCap int
	// BeamWidth > 1 enables beam-search decoding at generation time
	// (transformer only); 0/1 is greedy.
	BeamWidth int
	// Quantize routes Stage 3 decoding through the int8 quantized weight
	// view (transformer only; training always runs float32). Rows whose
	// quantized decode is ambiguous re-decode in float32, so generated
	// backends match the full-precision output. Per-request GenOptions.
	// Quantize ORs with this.
	Quantize bool
	// BeamEscalate makes beam decoding greedy-first: each row decodes
	// greedily, and only rows whose leading confidence falls below
	// confidence.Threshold re-decode with the full beam. No effect unless
	// BeamWidth > 1. Per-request GenOptions.BeamEscalate ORs with this.
	BeamEscalate bool
	// Verify turns on the verify-and-repair loop: every generated
	// function is executed against the held-out ground truth through the
	// eval harness, and diverging functions get counterexample-guided
	// repair rounds (internal/repair). Off by default — and strictly
	// zero-cost when off: no oracle or engine is even constructed.
	Verify bool
	// RepairRounds bounds the CEGAR repair rounds per diverging function
	// when Verify is on (0 = the repair.DefaultRounds of 3).
	RepairRounds int
	// Workers bounds the generation worker pool: how many interface
	// functions Stage 3 decodes concurrently (model weights are read-only
	// after training). 0 or negative means runtime.NumCPU(). Output is
	// deterministic and identical for any worker count.
	Workers int
	// KernelWorkers bounds how many goroutines a single large matmul may
	// fan out to inside internal/tensor (training's minibatch kernels and
	// any other shape above the parallel-dispatch gate). 0 keeps the
	// kernel default of GOMAXPROCS. Results are bit-identical for any
	// value; the knob only trades latency for CPU.
	KernelWorkers int
	// Stage1Workers bounds the templatization worker pool: how many
	// function groups Stage 1 templatizes and feature-mines concurrently
	// in New. 0 or negative means runtime.NumCPU(). Results are merged
	// back in corpus.AllFuncs() order, so output is byte-identical for
	// any worker count — the same determinism contract as Workers and
	// KernelWorkers.
	Stage1Workers int
	// Stage1Cache names a directory for the content-addressed Stage 1
	// artifact cache (internal/s1cache). Empty disables caching. On a
	// hit, New restores templates and features from disk and skips
	// templatization entirely; corrupt entries are detected, rebuilt,
	// and overwritten.
	Stage1Cache string
	// Obs receives spans and metrics from every stage. nil (the
	// default) disables observability entirely: instruments degrade to
	// nil no-ops with no allocation or lock contention on any hot path.
	Obs *obs.Obs
}

// DefaultConfig returns single-core-friendly settings.
func DefaultConfig() Config {
	return Config{
		Seed:            1,
		TrainFraction:   0.75,
		MaxSamples:      2600,
		CandidateWindow: 3,
		MaxCandProps:    2,
		Model: model.Config{
			Dim: 48, Heads: 4, EncLayers: 2, DecLayers: 2,
			FFMult: 2, MaxSeq: 160, Seed: 1,
		},
		Train: model.TrainOptions{
			Epochs: 12, Batch: 16, LR: 3e-3, Seed: 1, MinLoss: 0.015,
			Workers: 1, LRDecay: 0.15,
		},
		Pretrain:       true,
		PretrainEpochs: 2,
		Arch:           "transformer",
		MaxOutPieces:   48,
		VerifyCap:      400,
	}
}

// Group is one function group with its template and features.
type Group struct {
	Func    corpus.InterfaceFunc
	FT      *template.FunctionTemplate
	TF      *feature.TemplateFeatures
	Targets []string // training targets implementing the function, in fleet order
}

// Pipeline holds every stage's state.
type Pipeline struct {
	Cfg       Config
	Corpus    *corpus.Corpus
	Extractor *feature.Extractor
	Groups    []*Group
	Vocab     *model.Vocab
	Model     model.Seq2Seq

	// byName indexes Groups by interface-function name; built once in
	// New so the per-function lookups of the eval and generation paths
	// stay O(1).
	byName map[string]*Group

	// TrainFns / VerifyFns are the (group, target) pairs of the 75/25
	// split, as "funcName/target" keys.
	TrainFns  map[string]bool
	VerifyFns map[string]bool

	// BeamFallback is set (and logged once via beamWarn) when BeamWidth
	// > 1 is configured but decoding downgraded to greedy anyway —
	// either the architecture cannot beam-search, or BeamGenerate
	// returned zero hypotheses.
	BeamFallback bool
	beamWarn     sync.Once

	// uncachedDecode routes Stage 3 decoding through the reference
	// (full-prefix, tape-recorded) decoder instead of the KV-cached one.
	// Test-only: the differential tests generate a backend both ways and
	// require the bytes to match.
	uncachedDecode bool

	// gm caches the Stage 3 instruments so the per-row decode path
	// never takes the registry lock; all fields are nil (inert) when
	// Cfg.Obs is nil.
	gm genMetrics

	// pretrainWarn gates the once-per-pipeline log when the pre-training
	// curriculum overflows pretrainCap.
	pretrainWarn sync.Once
}

// New builds the pipeline through Stage 1 (templates + features) over the
// given corpus. Templatization fans out over Cfg.Stage1Workers goroutines
// and, when Cfg.Stage1Cache names a directory, is skipped entirely on a
// content-addressed cache hit; both paths produce byte-identical state.
func New(c *corpus.Corpus, cfg Config) (*Pipeline, error) {
	p := &Pipeline{
		Cfg:       cfg,
		Corpus:    c,
		Extractor: feature.NewExtractor(c.Tree, nil),
		TrainFns:  make(map[string]bool),
		VerifyFns: make(map[string]bool),
		gm:        newGenMetrics(cfg.Obs),
	}
	o := cfg.Obs

	var cache *s1cache.Cache
	var cacheKey string
	if cfg.Stage1Cache != "" {
		cache = &s1cache.Cache{Dir: cfg.Stage1Cache}
		cacheKey = s1cache.Key(c, s1cache.KeyConfig{
			Seed:           cfg.Seed,
			TrainFraction:  cfg.TrainFraction,
			SplitByBackend: cfg.SplitByBackend,
		})
		if ok, err := p.loadCachedStage1(cache, cacheKey); err != nil {
			return nil, err
		} else if ok {
			o.Counter("stage1.cache_hit").Inc()
			return p, p.finishStage1()
		}
		o.Counter("stage1.cache_miss").Inc()
	}

	span := o.StartSpan("stage1/templatize")
	if err := p.templatize(); err != nil {
		span.End()
		return nil, err
	}
	span.SetAttr(obs.Int("groups", len(p.Groups)))
	span.End()

	if cache != nil {
		snap := &s1cache.Snapshot{Groups: make([]s1cache.Group, len(p.Groups))}
		for i, g := range p.Groups {
			snap.Groups[i] = s1cache.Group{
				FuncName: g.Func.Name, Targets: g.Targets, FT: g.FT, TF: g.TF,
			}
		}
		if err := cache.Store(cacheKey, snap); err != nil {
			// A read-only or full cache directory must not fail the
			// build; the next run simply misses again.
			o.Counter("stage1.cache_store_errors").Inc()
		}
	}
	return p, p.finishStage1()
}

// templatize runs Stage 1 proper: every function group is templatized
// and feature-mined, fanned out over a bounded worker pool. Groups are
// assembled serially in corpus.AllFuncs() order first and merged back by
// index, so the result is byte-identical for any worker count (the
// extractor and source-tree caches are mutex-safe and memoize pure
// functions, so scheduling order cannot leak into the output).
func (p *Pipeline) templatize() error {
	training := p.Corpus.TrainingBackends()
	type work struct {
		ifn     corpus.InterfaceFunc
		impls   []template.Impl
		targets []string
	}
	var jobs []work
	for _, ifn := range corpus.AllFuncs() {
		group := corpus.FunctionGroup(training, ifn.Name)
		if len(group) == 0 {
			continue
		}
		var impls []template.Impl
		var targets []string
		for _, b := range training { // fleet order keeps determinism
			fn, ok := group[b.Target.Name]
			if !ok {
				continue
			}
			impls = append(impls, template.NewImpl(b.Target.Name, fn))
			targets = append(targets, b.Target.Name)
		}
		jobs = append(jobs, work{ifn: ifn, impls: impls, targets: targets})
	}

	workers := p.Cfg.Stage1Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	groups := make([]*Group, len(jobs))
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				j := jobs[i]
				ft, err := template.Build(j.ifn.Name, j.impls)
				if err != nil {
					errs[i] = fmt.Errorf("core: templatize %s: %w", j.ifn.Name, err)
					continue
				}
				ft.Module = string(j.ifn.Module)
				tf := p.Extractor.Select(ft, j.targets)
				groups[i] = &Group{Func: j.ifn, FT: ft, TF: tf, Targets: j.targets}
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs { // first error in group order, deterministically
		if err != nil {
			return err
		}
	}
	p.Groups = groups
	return nil
}

// finishStage1 runs the split, builds the name index, and records the
// Stage 1 gauges — shared by the cached and rebuilt paths.
func (p *Pipeline) finishStage1() error {
	o := p.Cfg.Obs
	splitSpan := o.StartSpan("stage1/split")
	err := p.split()
	splitSpan.End()
	if err != nil {
		return err
	}
	p.byName = make(map[string]*Group, len(p.Groups))
	for _, g := range p.Groups {
		p.byName[g.Func.Name] = g
	}
	o.Gauge("stage1.groups").Set(float64(len(p.Groups)))
	o.Gauge("split.train_functions").Set(float64(len(p.TrainFns)))
	o.Gauge("split.verify_functions").Set(float64(len(p.VerifyFns)))
	return nil
}

// loadCachedStage1 tries to restore Stage 1 state from the cache. ok
// reports a usable hit; a miss or a detected-corrupt entry returns ok
// false (the caller rebuilds and overwrites). Only non-cache I/O errors
// are returned.
func (p *Pipeline) loadCachedStage1(cache *s1cache.Cache, key string) (ok bool, err error) {
	span := p.Cfg.Obs.StartSpan("stage1/load_cached", obs.String("key", key[:12]))
	defer span.End()
	snap, err := cache.Load(key)
	if errors.Is(err, s1cache.ErrMiss) {
		return false, nil
	}
	if errors.Is(err, s1cache.ErrCorrupt) {
		p.Cfg.Obs.Counter("stage1.cache_corrupt").Inc()
		return false, nil
	}
	if err != nil {
		return false, nil // unreadable cache degrades to a rebuild
	}
	groups := make([]*Group, len(snap.Groups))
	for i, cg := range snap.Groups {
		ifn, found := corpus.FuncByName(cg.FuncName)
		if !found {
			// The cached function set no longer matches the build —
			// treat as corrupt and rebuild.
			p.Cfg.Obs.Counter("stage1.cache_corrupt").Inc()
			return false, nil
		}
		groups[i] = &Group{Func: ifn, FT: cg.FT, TF: cg.TF, Targets: cg.Targets}
	}
	p.Groups = groups
	return true, nil
}

// split performs the 75/25 train/verification split, either per function
// group (the paper's scheme) or per backend (the §4.2 ablation). The
// backend path clamps the cut like the per-group path does — at least
// one backend trains, and at least one verifies when the fleet has two
// or more — and reports ErrDegenerateSplit when no clamp can save it
// (a one-backend fleet, or a fleet whose groups leave a side empty).
func (p *Pipeline) split() error {
	rng := newRNG(p.Cfg.Seed)
	if p.Cfg.SplitByBackend {
		var names []string
		for _, b := range p.Corpus.TrainingBackends() {
			names = append(names, b.Target.Name)
		}
		if len(names) < 2 {
			return fmt.Errorf("%w: backend-based split needs ≥ 2 training backends, have %d",
				ErrDegenerateSplit, len(names))
		}
		shuffled := append([]string{}, names...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		cut := int(float64(len(shuffled)) * p.Cfg.TrainFraction)
		if cut < 1 {
			cut = 1
		}
		if cut > len(shuffled)-1 {
			cut = len(shuffled) - 1
		}
		trainSet := map[string]bool{}
		for _, n := range shuffled[:cut] {
			trainSet[n] = true
		}
		for _, g := range p.Groups {
			for _, tgt := range g.Targets {
				key := g.Func.Name + "/" + tgt
				if trainSet[tgt] {
					p.TrainFns[key] = true
				} else {
					p.VerifyFns[key] = true
				}
			}
		}
		if len(p.TrainFns) == 0 || len(p.VerifyFns) == 0 {
			return fmt.Errorf("%w: %d backend(s) split into %d train / %d verify functions",
				ErrDegenerateSplit, len(names), len(p.TrainFns), len(p.VerifyFns))
		}
		return nil
	}
	for _, g := range p.Groups {
		tgts := append([]string{}, g.Targets...)
		rng.Shuffle(len(tgts), func(i, j int) { tgts[i], tgts[j] = tgts[j], tgts[i] })
		cut := int(float64(len(tgts))*p.Cfg.TrainFraction + 0.999)
		if cut < 1 {
			cut = 1
		}
		for i, tgt := range tgts {
			key := g.Func.Name + "/" + tgt
			if i < cut {
				p.TrainFns[key] = true
			} else {
				p.VerifyFns[key] = true
			}
		}
	}
	return nil
}

// GroupByName returns the group for an interface function; O(1) via the
// index built in New.
func (p *Pipeline) GroupByName(name string) *Group {
	return p.byName[name]
}

// Stats summarizes the pipeline for logs and docs.
type Stats struct {
	Groups          int
	Templates       int
	TrainFunctions  int
	VerifyFunctions int
	TrainStatements int
	Properties      int
}

// Stats computes summary counts.
func (p *Pipeline) Stats() Stats {
	s := Stats{Groups: len(p.Groups), Templates: len(p.Groups)}
	s.TrainFunctions = len(p.TrainFns)
	s.VerifyFunctions = len(p.VerifyFns)
	props := map[string]bool{}
	for _, g := range p.Groups {
		for _, pr := range g.TF.Props {
			props[pr.Name] = true
		}
		for _, tgt := range g.Targets {
			if p.TrainFns[g.Func.Name+"/"+tgt] {
				for ri := range g.FT.Rows {
					if g.FT.Rows[ri].HasTarget(tgt) {
						s.TrainStatements++
					}
				}
			}
		}
	}
	s.Properties = len(props)
	return s
}

// TrainingTargetNames lists training backends in fleet order.
func (p *Pipeline) TrainingTargetNames() []string {
	var out []string
	for _, b := range p.Corpus.TrainingBackends() {
		out = append(out, b.Target.Name)
	}
	return out
}
