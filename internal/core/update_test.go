package core

import (
	"testing"

	"vega/internal/cpp"
	"vega/internal/generate"
)

func TestCorrectKeepsAccurateGenerated(t *testing.T) {
	c := testCorpus(t)
	ref := c.Backends["RISCV"]
	gen := &generate.Backend{Target: "RISCV"}
	// One "generated" function, textually identical to the reference.
	var sts []generate.Statement
	for i, s := range cpp.SplitFunction(ref.Funcs["getStackAlignment"]) {
		sts = append(sts, generate.Statement{Row: i, Text: s.Text, Score: 1})
	}
	gen.Functions = append(gen.Functions, &generate.Function{
		Name: "getStackAlignment", Module: "REG", Target: "RISCV", Statements: sts,
	})
	cb := Correct(gen, ref, map[string]bool{"getStackAlignment": true})
	if len(cb.Funcs) != len(ref.Funcs) {
		t.Fatalf("corrected backend has %d functions, reference %d", len(cb.Funcs), len(ref.Funcs))
	}
	// The inaccurate map gate: mark it inaccurate and the reference wins.
	cb2 := Correct(gen, ref, map[string]bool{})
	if cb2.Funcs["getStackAlignment"] != ref.Funcs["getStackAlignment"] {
		t.Error("inaccurate generated function must be replaced by the reference")
	}
}

func TestAdoptBackendGrowsTrainingFleet(t *testing.T) {
	c := testCorpus(t)
	base, err := New(c, tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	cb := &CorrectedBackend{Target: "RISCV", Funcs: c.Backends["RISCV"].Funcs}
	adopted, err := AdoptBackend(c, cb, tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(adopted.TrainingTargetNames()), len(base.TrainingTargetNames())+1; got != want {
		t.Fatalf("training fleet = %d, want %d", got, want)
	}
	// RISCV's implementations now participate in the function groups.
	g := adopted.GroupByName("getRelocType")
	var found bool
	for _, tgt := range g.Targets {
		if tgt == "RISCV" {
			found = true
		}
	}
	if !found {
		t.Error("adopted target missing from function groups")
	}
	// The original corpus must be untouched.
	var evalStill bool
	for _, tb := range c.EvalBackends() {
		if tb.Target.Name == "RISCV" {
			evalStill = true
		}
	}
	if !evalStill {
		t.Error("AdoptBackend mutated the source corpus")
	}
}

func TestAdoptBackendUnknownTarget(t *testing.T) {
	c := testCorpus(t)
	if _, err := AdoptBackend(c, &CorrectedBackend{Target: "Z80"}, tinyConfig()); err == nil {
		t.Error("expected error for unknown target")
	}
}
