package core

import (
	"encoding/gob"
	"fmt"
	"os"

	"vega/internal/model"
)

// checkpoint is the serialized form of a trained pipeline: the vocabulary
// and model weights. Stage-1 state (templates, features, splits) is
// deterministic from the corpus and the seed, so it is rebuilt on load.
type checkpoint struct {
	Arch      string
	ModelCfg  model.Config
	Pieces    []string
	ForceChar []string
	Params    [][]float32
}

// Save writes the trained model and vocabulary to path.
func (p *Pipeline) Save(path string) error {
	if p.Model == nil || p.Vocab == nil {
		return fmt.Errorf("core: nothing trained to save")
	}
	cfg := p.Cfg.Model
	cfg.Vocab = p.Vocab.Size()
	ck := checkpoint{
		Arch:      p.Cfg.Arch,
		ModelCfg:  cfg,
		Pieces:    p.Vocab.Pieces(),
		ForceChar: p.Vocab.ForceCharList(),
	}
	for _, t := range p.Model.Params() {
		ck.Params = append(ck.Params, append([]float32{}, t.Data...))
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("core: save: %w", err)
	}
	defer f.Close()
	if err := gob.NewEncoder(f).Encode(&ck); err != nil {
		return fmt.Errorf("core: save: %w", err)
	}
	return nil
}

// Load restores a trained model and vocabulary saved with Save. The
// pipeline must have been built over the same corpus with the same seed.
func (p *Pipeline) Load(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("core: load: %w", err)
	}
	defer f.Close()
	var ck checkpoint
	if err := gob.NewDecoder(f).Decode(&ck); err != nil {
		return fmt.Errorf("core: load: %w", err)
	}
	p.Vocab = model.VocabFromPieces(ck.Pieces, ck.ForceChar)
	if p.Vocab.Size() != ck.ModelCfg.Vocab {
		return fmt.Errorf("core: load: vocab size %d != config %d", p.Vocab.Size(), ck.ModelCfg.Vocab)
	}
	switch ck.Arch {
	case "", "transformer":
		p.Model = model.NewTransformer(ck.ModelCfg)
	case "gru":
		p.Model = model.NewGRUSeq2Seq(ck.ModelCfg)
	case "bert":
		p.Model = model.NewBERTStyle(ck.ModelCfg, p.Cfg.MaxOutPieces)
	default:
		return fmt.Errorf("core: load: unknown architecture %q", ck.Arch)
	}
	p.Cfg.Arch = ck.Arch
	p.Cfg.Model = ck.ModelCfg
	params := p.Model.Params()
	if len(params) != len(ck.Params) {
		return fmt.Errorf("core: load: parameter count %d != %d", len(ck.Params), len(params))
	}
	for i, t := range params {
		if len(t.Data) != len(ck.Params[i]) {
			return fmt.Errorf("core: load: parameter %d size mismatch", i)
		}
		copy(t.Data, ck.Params[i])
	}
	return nil
}
