package core

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"vega/internal/faultinject"
	"vega/internal/model"
	"vega/internal/obs"
)

// Checkpoint files are self-verifying: a fixed header carries a magic
// string, a format version, the payload length, and a SHA-256 digest of
// the gob payload, so a truncated or bit-flipped file fails Load with a
// typed error instead of a garbled gob decode. Writes are atomic (temp
// file in the destination directory, fsync, rename), so a crash mid-save
// never clobbers the previous checkpoint.
var (
	// ErrCheckpointFormat marks a file that is not a vega checkpoint.
	ErrCheckpointFormat = errors.New("core: not a vega checkpoint")
	// ErrCheckpointVersion marks an unsupported format version.
	ErrCheckpointVersion = errors.New("core: unsupported checkpoint version")
	// ErrCheckpointCorrupt marks truncation or checksum mismatch.
	ErrCheckpointCorrupt = errors.New("core: checkpoint corrupt")
	// ErrCheckpointArch marks a checkpoint whose architecture or
	// parameter shapes do not fit the pipeline loading it.
	ErrCheckpointArch = errors.New("core: checkpoint architecture mismatch")
)

var ckptMagic = [8]byte{'V', 'E', 'G', 'A', 'C', 'K', 'P', 'T'}

const ckptVersion = 1

// ckptHeaderLen is magic(8) + version(4) + payload length(8) + sha256(32).
const ckptHeaderLen = 8 + 4 + 8 + sha256.Size

// checkpoint is the serialized form of a trained pipeline: the vocabulary
// and model weights. Stage-1 state (templates, features, splits) is
// deterministic from the corpus and the seed, so it is rebuilt on load.
type checkpoint struct {
	Arch      string
	ModelCfg  model.Config
	Pieces    []string
	ForceChar []string
	Params    [][]float32
}

// Save writes the trained model and vocabulary to path.
func (p *Pipeline) Save(path string) error {
	span := p.Cfg.Obs.StartSpan("checkpoint/save", obs.String("path", path))
	defer span.End()
	if p.Model == nil || p.Vocab == nil {
		return fmt.Errorf("core: nothing trained to save")
	}
	cfg := p.Cfg.Model
	cfg.Vocab = p.Vocab.Size()
	ck := checkpoint{
		Arch:      p.Cfg.Arch,
		ModelCfg:  cfg,
		Pieces:    p.Vocab.Pieces(),
		ForceChar: p.Vocab.ForceCharList(),
	}
	for _, t := range p.Model.Params() {
		ck.Params = append(ck.Params, append([]float32{}, t.Data...))
	}
	return writeCheckpointFile(path, &ck, p.Cfg.Obs)
}

// writeCheckpointFile encodes ck and writes it atomically: the bytes land
// in a temp file in the destination directory, are fsynced, and only then
// renamed over path, so a crash mid-write leaves any previous checkpoint
// intact.
func writeCheckpointFile(path string, ck *checkpoint, o *obs.Obs) error {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(ck); err != nil {
		return fmt.Errorf("core: save: %w", err)
	}
	sum := sha256.Sum256(payload.Bytes())
	buf := make([]byte, 0, ckptHeaderLen+payload.Len())
	buf = append(buf, ckptMagic[:]...)
	buf = binary.BigEndian.AppendUint32(buf, ckptVersion)
	buf = binary.BigEndian.AppendUint64(buf, uint64(payload.Len()))
	buf = append(buf, sum[:]...)
	buf = append(buf, payload.Bytes()...)

	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("core: save: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return fmt.Errorf("core: save: %w", err)
	}
	fsyncStart := time.Now()
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("core: save: %w", err)
	}
	o.Histogram("ckpt.fsync_seconds").Observe(time.Since(fsyncStart).Seconds())
	o.Counter("ckpt.bytes_written").Add(float64(len(buf)))
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("core: save: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("core: save: %w", err)
	}
	if faultinject.Should(faultinject.CheckpointCorrupt, path) {
		if err := flipCheckpointByte(path); err != nil {
			return fmt.Errorf("core: faultinject: %w", err)
		}
	}
	return nil
}

// flipCheckpointByte flips one bit of the first payload byte in place —
// the CheckpointCorrupt fault used to prove Load's checksum detection.
func flipCheckpointByte(path string) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], ckptHeaderLen); err != nil {
		return err
	}
	b[0] ^= 0x01
	_, err = f.WriteAt(b[:], ckptHeaderLen)
	return err
}

// readCheckpointFile reads and verifies a checkpoint written by
// writeCheckpointFile, returning typed errors on malformed input.
func readCheckpointFile(path string) (*checkpoint, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("core: load: %w", err)
	}
	if len(raw) < ckptHeaderLen {
		if len(raw) < len(ckptMagic) || !bytes.Equal(raw[:len(ckptMagic)], ckptMagic[:]) {
			return nil, fmt.Errorf("%w: %s", ErrCheckpointFormat, path)
		}
		return nil, fmt.Errorf("%w: %s: truncated header", ErrCheckpointCorrupt, path)
	}
	if !bytes.Equal(raw[:len(ckptMagic)], ckptMagic[:]) {
		return nil, fmt.Errorf("%w: %s", ErrCheckpointFormat, path)
	}
	version := binary.BigEndian.Uint32(raw[8:12])
	if version != ckptVersion {
		return nil, fmt.Errorf("%w: %s: version %d", ErrCheckpointVersion, path, version)
	}
	plen := binary.BigEndian.Uint64(raw[12:20])
	payload := raw[ckptHeaderLen:]
	if uint64(len(payload)) != plen {
		return nil, fmt.Errorf("%w: %s: payload %d bytes, header says %d",
			ErrCheckpointCorrupt, path, len(payload), plen)
	}
	var want [sha256.Size]byte
	copy(want[:], raw[20:ckptHeaderLen])
	if sha256.Sum256(payload) != want {
		return nil, fmt.Errorf("%w: %s: checksum mismatch", ErrCheckpointCorrupt, path)
	}
	var ck checkpoint
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&ck); err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrCheckpointCorrupt, path, err)
	}
	return &ck, nil
}

// Load restores a trained model and vocabulary saved with Save. The
// pipeline must have been built over the same corpus with the same seed.
func (p *Pipeline) Load(path string) error {
	span := p.Cfg.Obs.StartSpan("checkpoint/load", obs.String("path", path))
	defer span.End()
	ck, err := readCheckpointFile(path)
	if err != nil {
		return err
	}
	if o := p.Cfg.Obs; o != nil {
		if fi, statErr := os.Stat(path); statErr == nil {
			o.Counter("ckpt.bytes_read").Add(float64(fi.Size()))
		}
	}
	vocab := model.VocabFromPieces(ck.Pieces, ck.ForceChar)
	if vocab.Size() != ck.ModelCfg.Vocab {
		return fmt.Errorf("%w: vocab size %d != config %d",
			ErrCheckpointCorrupt, vocab.Size(), ck.ModelCfg.Vocab)
	}
	var m model.Seq2Seq
	switch ck.Arch {
	case "", "transformer":
		m = model.NewTransformer(ck.ModelCfg)
	case "gru":
		m = model.NewGRUSeq2Seq(ck.ModelCfg)
	case "bert":
		m = model.NewBERTStyle(ck.ModelCfg, p.Cfg.MaxOutPieces)
	default:
		return fmt.Errorf("%w: unknown architecture %q", ErrCheckpointArch, ck.Arch)
	}
	params := m.Params()
	if len(params) != len(ck.Params) {
		return fmt.Errorf("%w: parameter count %d != %d",
			ErrCheckpointArch, len(ck.Params), len(params))
	}
	for i, t := range params {
		if len(t.Data) != len(ck.Params[i]) {
			return fmt.Errorf("%w: parameter %d size mismatch", ErrCheckpointArch, i)
		}
		copy(t.Data, ck.Params[i])
	}
	// All checks passed: only now mutate the pipeline, so a failed Load
	// leaves any previously loaded model untouched.
	p.Vocab = vocab
	p.Model = m
	p.Cfg.Arch = ck.Arch
	p.Cfg.Model = ck.ModelCfg
	return nil
}
