// Package template implements VEGA's templatization stage: abstracting a
// function group — the target-specific implementations of one compiler
// interface function — into a single function template that blends common
// code with SV placeholders standing for target-specific values.
//
// Templates are built by progressive multi-way alignment: each
// implementation's statement sequence is aligned against the growing
// template with the GumTree/LCS machinery, matched statements are merged
// token-wise (tokens outside the longest common subsequence become
// placeholders), and unmatched statements extend the template as
// target-conditional rows.
package template

import (
	"fmt"
	"strings"
	"sync"

	"vega/internal/cpp"
	"vega/internal/gumtree"
)

// Impl is one target's implementation of an interface function, already
// pre-processed (inlined, normalized) and split into statements.
type Impl struct {
	Target string
	Stmts  []cpp.Statement
}

// NewImpl splits a parsed function into an Impl.
func NewImpl(target string, fn *cpp.Node) Impl {
	return Impl{Target: target, Stmts: cpp.SplitFunction(fn)}
}

// Elem is one element of a statement template's pattern: either a literal
// token of the common code or a placeholder for a target-specific value.
type Elem struct {
	Var  bool
	Text string // literal token text; for vars the display name "SV<id>"
	ID   int    // placeholder id, valid when Var
}

// Row is one statement template (the paper's T_k).
type Row struct {
	Pattern []Elem
	// PerTarget holds each target's raw token sequence for this row;
	// targets without the statement are absent.
	PerTarget map[string][]string
}

// HasTarget reports whether the target implements this statement.
func (r *Row) HasTarget(target string) bool {
	_, ok := r.PerTarget[target]
	return ok
}

// PatternTokens renders the pattern as a token list with SV names in
// placeholder positions.
func (r *Row) PatternTokens() []string {
	out := make([]string, len(r.Pattern))
	for i, e := range r.Pattern {
		out[i] = e.Text
	}
	return out
}

// VarIDs lists the placeholder ids of the row, in order.
func (r *Row) VarIDs() []int {
	var out []int
	for _, e := range r.Pattern {
		if e.Var {
			out = append(out, e.ID)
		}
	}
	return out
}

// literalTokens returns the literal tokens with their pattern positions.
func (r *Row) literalTokens() (toks []string, pos []int) {
	for i, e := range r.Pattern {
		if !e.Var {
			toks = append(toks, e.Text)
			pos = append(pos, i)
		}
	}
	return toks, pos
}

// FunctionTemplate is the abstraction of a whole function group
// (the paper's FT_M).
type FunctionTemplate struct {
	Name    string // interface function name, e.g. "getRelocType"
	Module  string // owning function module (SEL, REG, ... set by caller)
	Targets []string
	Rows    []Row
	NumVars int

	// vals memoizes Values results: the per-(row, target) LCS alignment
	// is deterministic once the template is built, and generation asks
	// for the same rows once per placeholder per pass. Guarded by valsMu;
	// unexported, so snapshot encoding ignores it.
	valsMu sync.Mutex
	vals   map[valsKey]valsEntry
}

type valsKey struct {
	row    int
	target string
}

type valsEntry struct {
	vals    map[int]string
	present bool
}

// Build constructs the function template for a group of implementations.
// At least one implementation is required.
func Build(name string, impls []Impl) (*FunctionTemplate, error) {
	if len(impls) == 0 {
		return nil, fmt.Errorf("template: empty function group %q", name)
	}
	ft := &FunctionTemplate{Name: name}
	first := impls[0]
	ft.Targets = append(ft.Targets, first.Target)
	// memo caches statement-pair similarities for the whole progressive
	// alignment; rowIDs tracks, per row, the interned ids of the distinct
	// token lists its PerTarget map holds, so merge's best-of-targets
	// loop never re-runs LCS on a token sequence it has already scored.
	memo := gumtree.NewSimCache()
	var rowIDs [][]int
	for _, st := range first.Stmts {
		toks := gumtree.StatementTokens(st)
		row := Row{PerTarget: map[string][]string{first.Target: toks}}
		for _, t := range toks {
			row.Pattern = append(row.Pattern, Elem{Text: t})
		}
		ft.Rows = append(ft.Rows, row)
		rowIDs = append(rowIDs, []int{memo.Intern(toks)})
	}
	for _, impl := range impls[1:] {
		rowIDs = ft.merge(impl, memo, rowIDs)
	}
	ft.renumber()
	return ft, nil
}

// merge aligns one more implementation into the template. rowIDs carries
// the interned token-list ids per row (parallel to ft.Rows); the updated
// slice for the merged row set is returned.
func (ft *FunctionTemplate) merge(impl Impl, memo *gumtree.SimCache, rowIDs [][]int) [][]int {
	implToks := make([][]string, len(impl.Stmts))
	implIDs := make([]int, len(impl.Stmts))
	for i, st := range impl.Stmts {
		implToks[i] = gumtree.StatementTokens(st)
		implIDs[i] = memo.Intern(implToks[i])
	}
	// Row-to-statement similarity: the best similarity against any target
	// already recorded for the row. This keeps alignment stable as the
	// template accumulates placeholder-heavy rows. Scoring the distinct
	// interned lists (max is order- and multiplicity-independent) is
	// bit-identical to scoring every PerTarget entry.
	sim := func(i, j int) float64 {
		best := 0.0
		for _, id := range rowIDs[i] {
			if s := memo.Sim(id, implIDs[j]); s > best {
				best = s
			}
		}
		return best
	}
	pairs := gumtree.AlignFunc(len(ft.Rows), len(impl.Stmts), sim, 0.4)

	var rows []Row
	var newIDs [][]int
	for _, p := range pairs {
		switch {
		case p.A >= 0 && p.B >= 0:
			row := ft.Rows[p.A]
			ft.mergeRow(&row, impl.Target, implToks[p.B])
			rows = append(rows, row)
			newIDs = append(newIDs, appendIDUnique(rowIDs[p.A], implIDs[p.B]))
		case p.A >= 0:
			rows = append(rows, ft.Rows[p.A])
			newIDs = append(newIDs, rowIDs[p.A])
		default:
			row := Row{PerTarget: map[string][]string{impl.Target: implToks[p.B]}}
			for _, t := range implToks[p.B] {
				row.Pattern = append(row.Pattern, Elem{Text: t})
			}
			rows = append(rows, row)
			newIDs = append(newIDs, []int{implIDs[p.B]})
		}
	}
	ft.Rows = rows
	ft.Targets = append(ft.Targets, impl.Target)
	return newIDs
}

// appendIDUnique adds id to ids unless already present, copying so rows
// never share a backing array.
func appendIDUnique(ids []int, id int) []int {
	for _, v := range ids {
		if v == id {
			return ids
		}
	}
	out := make([]int, 0, len(ids)+1)
	out = append(out, ids...)
	return append(out, id)
}

// mergeRow refines a row's pattern against a new target's tokens: literal
// tokens outside the LCS are demoted to placeholders, and extra target
// tokens force a placeholder in their segment.
func (ft *FunctionTemplate) mergeRow(row *Row, target string, toks []string) {
	lits, litPos := row.literalTokens()
	lcs := gumtree.TokenLCS(lits, toks)

	matchedLit := make(map[int]bool, len(lcs)) // pattern positions kept
	type anchor struct{ pat, tok int }
	anchors := make([]anchor, 0, len(lcs)+2)
	anchors = append(anchors, anchor{pat: -1, tok: -1})
	for _, pr := range lcs {
		matchedLit[litPos[pr.A]] = true
		anchors = append(anchors, anchor{pat: litPos[pr.A], tok: pr.B})
	}
	anchors = append(anchors, anchor{pat: len(row.Pattern), tok: len(toks)})

	var pattern []Elem
	for k := 0; k+1 < len(anchors); k++ {
		lo, hi := anchors[k], anchors[k+1]
		// Segment of pattern elements strictly between the anchors.
		segHasContent := hi.tok-lo.tok > 1 // target tokens inside segment
		var segVarID = -1
		litDemoted := false
		for i := lo.pat + 1; i < hi.pat; i++ {
			e := row.Pattern[i]
			if e.Var && segVarID == -1 {
				segVarID = e.ID
			}
			if !e.Var {
				litDemoted = true
			}
		}
		if lo.pat+1 < hi.pat || segHasContent {
			// Segment needs a placeholder if it had vars, demoted
			// literals, or extra target tokens.
			if segVarID == -1 && (litDemoted || segHasContent) {
				segVarID = ft.NumVars
				ft.NumVars++
			}
			if segVarID != -1 {
				pattern = append(pattern, Elem{Var: true, ID: segVarID})
			}
		}
		if hi.pat >= 0 && hi.pat < len(row.Pattern) {
			pattern = append(pattern, row.Pattern[hi.pat])
		}
	}
	row.Pattern = pattern
	// Copy-on-write: rows are shared by value during rebuilds.
	pt := make(map[string][]string, len(row.PerTarget)+1)
	for k, v := range row.PerTarget {
		pt[k] = v
	}
	pt[target] = toks
	row.PerTarget = pt
}

// renumber assigns sequential placeholder ids (SV1, SV2, ...) across the
// template, in row order, and refreshes display names.
func (ft *FunctionTemplate) renumber() {
	next := 1
	seen := map[int]int{}
	for ri := range ft.Rows {
		for ei := range ft.Rows[ri].Pattern {
			e := &ft.Rows[ri].Pattern[ei]
			if !e.Var {
				continue
			}
			id, ok := seen[e.ID]
			if !ok {
				id = next
				seen[e.ID] = id
				next++
			}
			e.ID = id
			e.Text = fmt.Sprintf("SV%d", id)
		}
	}
	ft.NumVars = next - 1
}

// Values extracts a target's placeholder values for one row: a map from
// placeholder id to the target's token span (space-joined when longer than
// one token). present is false when the target lacks the statement. The
// returned map is memoized and shared — treat it as read-only.
func (ft *FunctionTemplate) Values(rowIdx int, target string) (vals map[int]string, present bool) {
	key := valsKey{row: rowIdx, target: target}
	ft.valsMu.Lock()
	if e, ok := ft.vals[key]; ok {
		ft.valsMu.Unlock()
		return e.vals, e.present
	}
	ft.valsMu.Unlock()
	vals, present = ft.valuesUncached(rowIdx, target)
	ft.valsMu.Lock()
	if ft.vals == nil {
		ft.vals = make(map[valsKey]valsEntry)
	}
	ft.vals[key] = valsEntry{vals: vals, present: present}
	ft.valsMu.Unlock()
	return vals, present
}

func (ft *FunctionTemplate) valuesUncached(rowIdx int, target string) (vals map[int]string, present bool) {
	row := &ft.Rows[rowIdx]
	toks, ok := row.PerTarget[target]
	if !ok {
		return nil, false
	}
	vals = make(map[int]string)
	lits, litPos := row.literalTokens()
	lcs := gumtree.TokenLCS(lits, toks)

	type anchor struct{ pat, tok int }
	anchors := make([]anchor, 0, len(lcs)+2)
	anchors = append(anchors, anchor{pat: -1, tok: -1})
	for _, pr := range lcs {
		anchors = append(anchors, anchor{pat: litPos[pr.A], tok: pr.B})
	}
	anchors = append(anchors, anchor{pat: len(row.Pattern), tok: len(toks)})

	for k := 0; k+1 < len(anchors); k++ {
		lo, hi := anchors[k], anchors[k+1]
		var varIDs []int
		for i := lo.pat + 1; i < hi.pat; i++ {
			if row.Pattern[i].Var {
				varIDs = append(varIDs, row.Pattern[i].ID)
			}
		}
		if len(varIDs) == 0 {
			continue
		}
		span := toks[lo.tok+1 : hi.tok]
		// Distribute tokens across the segment's placeholders: one each to
		// all but the last, remainder to the last.
		for vi, id := range varIDs {
			switch {
			case vi < len(varIDs)-1 && vi < len(span):
				vals[id] = span[vi]
			case vi == len(varIDs)-1 && vi <= len(span):
				vals[id] = strings.Join(span[vi:], " ")
			default:
				vals[id] = ""
			}
		}
	}
	// Placeholders from other rows are simply absent from the map.
	return vals, true
}

// Render instantiates the template for concrete placeholder values,
// producing statement lines. Rows whose include predicate returns false
// are skipped; missing values render the SV name (callers usually filter
// those out first).
func (ft *FunctionTemplate) Render(include func(row int) bool, value func(row, id int) (string, bool)) []string {
	var out []string
	for ri, row := range ft.Rows {
		if include != nil && !include(ri) {
			continue
		}
		var toks []string
		for _, e := range row.Pattern {
			if !e.Var {
				toks = append(toks, e.Text)
				continue
			}
			if value != nil {
				if v, ok := value(ri, e.ID); ok {
					if v != "" {
						toks = append(toks, strings.Fields(v)...)
					}
					continue
				}
			}
			toks = append(toks, e.Text)
		}
		out = append(out, JoinTokens(toks))
	}
	return out
}

// StatementText renders one target's statement for a row, or "" when the
// target lacks it.
func (ft *FunctionTemplate) StatementText(rowIdx int, target string) string {
	toks, ok := ft.Rows[rowIdx].PerTarget[target]
	if !ok {
		return ""
	}
	return JoinTokens(toks)
}

// CommonTokenCount returns |T_k^com| for a row: the number of literal
// (common-code) tokens.
func (ft *FunctionTemplate) CommonTokenCount(rowIdx int) int {
	n := 0
	for _, e := range ft.Rows[rowIdx].Pattern {
		if !e.Var {
			n++
		}
	}
	return n
}

// JoinTokens glues a token sequence back into compact C++-ish text.
func JoinTokens(toks []string) string {
	var b strings.Builder
	for i, t := range toks {
		if i > 0 && needSpace(toks[i-1], t) {
			b.WriteString(" ")
		}
		b.WriteString(t)
	}
	return b.String()
}

func needSpace(prev, cur string) bool {
	if prev == "" || cur == "" {
		return false
	}
	switch cur {
	case ";", ",", ")", "]", "::", ".", "->", "++", "--", ":":
		return false
	case "(", "[":
		// Call/index parens attach to the preceding name or closing
		// bracket; control-flow keywords keep their space.
		if prev == ")" || prev == "]" {
			return true && !identLike(prev)
		}
		if identLike(prev) && !controlKeyword(prev) {
			return false
		}
	}
	switch prev {
	case "(", "[", "::", ".", "->", "!", "~":
		return false
	}
	return true
}

func identLike(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return len(s) > 0
}

func controlKeyword(s string) bool {
	switch s {
	case "if", "while", "switch", "for", "return", "case", "else", "do", "sizeof":
		return true
	}
	return false
}
