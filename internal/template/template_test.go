package template

import (
	"strings"
	"testing"

	"vega/internal/cpp"
)

const armSrc = `unsigned ARMELFObjectWriter::getRelocType(unsigned Kind, bool IsPCRel) {
  unsigned K = Fixup.getTargetKind();
  MCSymbolRefExpr::VariantKind Modifier = Target.getAccessVariant();
  if (IsPCRel) {
    switch (K) {
    case ARM::fixup_arm_movt_hi16:
      return ELF::R_ARM_MOVT_PREL;
    default:
      return ELF::R_ARM_NONE;
    }
  }
  return ELF::R_ARM_ABS32;
}`

const mipsSrc = `unsigned MipsELFObjectWriter::getRelocType(unsigned Kind, bool IsPCRel) {
  unsigned K = Fixup.getTargetKind();
  if (IsPCRel) {
    switch (K) {
    case Mips::fixup_MIPS_HI16:
      return ELF::R_MIPS_HI16;
    default:
      return ELF::R_MIPS_NONE;
    }
  }
  return ELF::R_MIPS_32;
}`

func implOf(t *testing.T, target, src string) Impl {
	t.Helper()
	fn, err := cpp.ParseFunction(src)
	if err != nil {
		t.Fatal(err)
	}
	return NewImpl(target, fn)
}

func buildReloc(t *testing.T) *FunctionTemplate {
	t.Helper()
	ft, err := Build("getRelocType", []Impl{
		implOf(t, "ARM", armSrc),
		implOf(t, "MIPS", mipsSrc),
	})
	if err != nil {
		t.Fatal(err)
	}
	return ft
}

func TestBuildTemplateRowCount(t *testing.T) {
	ft := buildReloc(t)
	// ARM has one extra statement (the VariantKind decl); the template must
	// carry the union.
	armLen := len(implOf(t, "ARM", armSrc).Stmts)
	if len(ft.Rows) != armLen {
		t.Errorf("rows = %d, want %d", len(ft.Rows), armLen)
	}
}

func TestTemplateOccurrences(t *testing.T) {
	ft := buildReloc(t)
	var variantRow = -1
	for i := range ft.Rows {
		if strings.Contains(JoinTokens(ft.Rows[i].PatternTokens()), "VariantKind") {
			variantRow = i
		}
	}
	if variantRow == -1 {
		t.Fatal("VariantKind row missing from template")
	}
	if !ft.Rows[variantRow].HasTarget("ARM") {
		t.Error("ARM should have the VariantKind statement")
	}
	if ft.Rows[variantRow].HasTarget("MIPS") {
		t.Error("MIPS should lack the VariantKind statement")
	}
}

func TestTemplatePlaceholders(t *testing.T) {
	ft := buildReloc(t)
	if ft.NumVars == 0 {
		t.Fatal("no placeholders produced")
	}
	// The case-label row must contain placeholders for the namespace and
	// the fixup kind.
	var caseRow = -1
	for i, row := range ft.Rows {
		toks := row.PatternTokens()
		if len(toks) > 0 && toks[0] == "case" {
			caseRow = i
		}
	}
	if caseRow == -1 {
		t.Fatal("case row missing")
	}
	ids := ft.Rows[caseRow].VarIDs()
	if len(ids) < 1 {
		t.Fatalf("case row has no placeholders: %v", ft.Rows[caseRow].PatternTokens())
	}
	vals, ok := ft.Values(caseRow, "ARM")
	if !ok {
		t.Fatal("ARM missing case row values")
	}
	joined := strings.Join(valsOf(vals, ids), " ")
	if !strings.Contains(joined, "fixup_arm_movt_hi16") || !strings.Contains(joined, "ARM") {
		t.Errorf("ARM case values = %v", vals)
	}
	mvals, ok := ft.Values(caseRow, "MIPS")
	if !ok {
		t.Fatal("MIPS missing case row values")
	}
	mjoined := strings.Join(valsOf(mvals, ids), " ")
	if !strings.Contains(mjoined, "fixup_MIPS_HI16") || !strings.Contains(mjoined, "Mips") {
		t.Errorf("MIPS case values = %v", mvals)
	}
}

func valsOf(vals map[int]string, ids []int) []string {
	out := make([]string, 0, len(ids))
	for _, id := range ids {
		out = append(out, vals[id])
	}
	return out
}

func TestTemplateCommonRowsHaveNoVars(t *testing.T) {
	ft := buildReloc(t)
	for i, row := range ft.Rows {
		text := JoinTokens(row.PatternTokens())
		if strings.HasPrefix(text, "unsigned K =") || strings.HasPrefix(text, "if (IsPCRel)") || strings.HasPrefix(text, "switch") {
			if len(row.VarIDs()) != 0 {
				t.Errorf("row %d %q should be pure common code, has vars %v", i, text, row.VarIDs())
			}
		}
	}
}

func TestTemplateFunctionHead(t *testing.T) {
	ft := buildReloc(t)
	head := ft.Rows[0]
	text := JoinTokens(head.PatternTokens())
	if !strings.Contains(text, "getRelocType") {
		t.Errorf("head lost the interface name: %q", text)
	}
	if len(head.VarIDs()) == 0 {
		t.Errorf("head should contain a placeholder for the class name: %q", text)
	}
	vals, _ := ft.Values(0, "ARM")
	found := false
	for _, v := range vals {
		if v == "ARMELFObjectWriter" {
			found = true
		}
	}
	if !found {
		t.Errorf("head values for ARM = %v, want class name", vals)
	}
}

func TestValuesMissingTarget(t *testing.T) {
	ft := buildReloc(t)
	for i := range ft.Rows {
		if !ft.Rows[i].HasTarget("MIPS") {
			if _, ok := ft.Values(i, "MIPS"); ok {
				t.Errorf("row %d: Values for absent target should report !ok", i)
			}
			return
		}
	}
	t.Fatal("no MIPS-absent row found")
}

func TestRenderWithValues(t *testing.T) {
	ft := buildReloc(t)
	lines := ft.Render(
		func(row int) bool { return ft.Rows[row].HasTarget("ARM") },
		func(row, id int) (string, bool) {
			vals, ok := ft.Values(row, "ARM")
			if !ok {
				return "", false
			}
			v, ok := vals[id]
			return v, ok
		})
	joined := strings.Join(lines, "\n")
	if !strings.Contains(joined, "case ARM::fixup_arm_movt_hi16:") {
		t.Errorf("render lost ARM case label:\n%s", joined)
	}
	if !strings.Contains(joined, "return ELF::R_ARM_MOVT_PREL;") {
		t.Errorf("render lost ARM return:\n%s", joined)
	}
	// Rendered statements must reparse as a function.
	if _, err := cpp.ParseFunction(joined); err != nil {
		t.Errorf("rendered ARM function does not reparse: %v\n%s", err, joined)
	}
}

func TestRenderMatchesOriginalStatements(t *testing.T) {
	ft := buildReloc(t)
	impl := implOf(t, "MIPS", mipsSrc)
	var mine []string
	for i := range ft.Rows {
		if s := ft.StatementText(i, "MIPS"); s != "" {
			mine = append(mine, s)
		}
	}
	var orig []string
	for _, st := range impl.Stmts {
		toks, _ := cpp.Lex(st.Text)
		orig = append(orig, JoinTokens(cpp.TokenTexts(toks)))
	}
	if len(mine) != len(orig) {
		t.Fatalf("statement counts differ: %d vs %d", len(mine), len(orig))
	}
	for i := range mine {
		if mine[i] != orig[i] {
			t.Errorf("statement %d: %q vs %q", i, mine[i], orig[i])
		}
	}
}

func TestBuildSingleImpl(t *testing.T) {
	ft, err := Build("getRelocType", []Impl{implOf(t, "ARM", armSrc)})
	if err != nil {
		t.Fatal(err)
	}
	if ft.NumVars != 0 {
		t.Errorf("single-impl template should have no placeholders, got %d", ft.NumVars)
	}
	if len(ft.Rows) != len(implOf(t, "ARM", armSrc).Stmts) {
		t.Errorf("rows = %d", len(ft.Rows))
	}
}

func TestBuildEmptyGroup(t *testing.T) {
	if _, err := Build("x", nil); err == nil {
		t.Error("expected error for empty group")
	}
}

func TestThreeWayMerge(t *testing.T) {
	third := `unsigned RISCVELFObjectWriter::getRelocType(unsigned Kind, bool IsPCRel) {
  unsigned K = Fixup.getTargetKind();
  if (IsPCRel) {
    switch (K) {
    case RISCV::fixup_riscv_pcrel_hi20:
      return ELF::R_RISCV_PCREL_HI20;
    default:
      return ELF::R_RISCV_NONE;
    }
  }
  return ELF::R_RISCV_32;
}`
	ft, err := Build("getRelocType", []Impl{
		implOf(t, "ARM", armSrc),
		implOf(t, "MIPS", mipsSrc),
		implOf(t, "RISCV", third),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ft.Targets) != 3 {
		t.Errorf("targets = %v", ft.Targets)
	}
	// Each target's values must round-trip its own case label.
	for i, row := range ft.Rows {
		toks := row.PatternTokens()
		if len(toks) > 0 && toks[0] == "case" {
			for tgt, want := range map[string]string{
				"ARM": "fixup_arm_movt_hi16", "MIPS": "fixup_MIPS_HI16", "RISCV": "fixup_riscv_pcrel_hi20",
			} {
				vals, ok := ft.Values(i, tgt)
				if !ok {
					t.Fatalf("%s missing case row", tgt)
				}
				var hit bool
				for _, v := range vals {
					if strings.Contains(v, want) {
						hit = true
					}
				}
				if !hit {
					t.Errorf("%s case values %v missing %q", tgt, vals, want)
				}
			}
		}
	}
}

func TestJoinTokens(t *testing.T) {
	cases := map[string]string{
		"unsigned Kind = Fixup.getTargetKind();": "unsigned Kind = Fixup.getTargetKind();",
		"if (IsPCRel) {":                         "if (IsPCRel) {",
		"case ARM::fixup_arm_movt_hi16:":         "case ARM::fixup_arm_movt_hi16:",
		"return ELF::R_ARM_ABS32;":               "return ELF::R_ARM_ABS32;",
		"OS << Value;":                           "OS << Value;",
	}
	for src, want := range cases {
		toks, err := cpp.Lex(src)
		if err != nil {
			t.Fatal(err)
		}
		if got := JoinTokens(cpp.TokenTexts(toks)); got != want {
			t.Errorf("JoinTokens(%q) = %q", src, got)
		}
	}
}
