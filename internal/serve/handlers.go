package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"time"

	"vega/internal/core"
	"vega/internal/corpus"
	"vega/internal/faultinject"
	"vega/internal/generate"
	"vega/internal/obs"
)

// GenerateRequest is the POST /v1/generate body. Scope narrows from whole
// backend (neither Module nor Function set) to one module to one
// function; the narrower the request, the cheaper it is to admit.
type GenerateRequest struct {
	// Target names the target whose .td description files (rendered into
	// the service's source tree) generation reads.
	Target string `json:"target"`
	// Module restricts generation to one module (SEL, REG, OPT, SCH,
	// EMI, ASS, DIS). Optional.
	Module string `json:"module,omitempty"`
	// Function restricts generation to one interface function. Optional.
	Function string `json:"function,omitempty"`
	// MaxFunctions caps how many functions are generated (0 =
	// unlimited); the response is marked truncated when the cap cuts the
	// list. The degrade ladder may lower this further under pressure.
	MaxFunctions int `json:"max_functions,omitempty"`
	// DeadlineMS overrides the server's default per-request deadline,
	// clamped to the configured maximum.
	DeadlineMS int `json:"deadline_ms,omitempty"`
	// Verify turns on the verify-and-repair loop for this request: each
	// generated function is executed against the reference backend and
	// repaired from counterexamples on divergence. The response carries a
	// per-function verification status and repair-round count. Under
	// pressure >= the policy's SkipRepairAt, repair rounds are skipped
	// (verification still runs) and the degradation is marked.
	Verify bool `json:"verify,omitempty"`
	// Quantize opts this request into the int8 quantized decode path
	// (identical output — ambiguous rows re-decode float32 — at lower
	// latency). The degrade ladder may force it under pressure.
	Quantize bool `json:"quantize,omitempty"`
	// BeamEscalate asks for greedy-first decoding on beam-configured
	// snapshots: rows re-decode with the full beam only when their leading
	// confidence falls below the accuracy threshold.
	BeamEscalate bool `json:"beam_escalate,omitempty"`
}

// StatementJSON is one generated statement with its confidence scores.
type StatementJSON struct {
	Row     int     `json:"row"`
	Text    string  `json:"text"`
	Absent  bool    `json:"absent,omitempty"`
	Score   float64 `json:"score"`
	Formula float64 `json:"formula"`
}

// FunctionJSON is one generated function with per-statement confidences.
type FunctionJSON struct {
	Name       string          `json:"name"`
	Module     string          `json:"module"`
	Confidence float64         `json:"confidence"`
	Failed     bool            `json:"failed,omitempty"`
	Error      string          `json:"error,omitempty"`
	Statements []StatementJSON `json:"statements"`
	// Verify is the verification status when the request asked for it:
	// "passed", "repaired", "failed", "no-oracle" (absent otherwise).
	Verify string `json:"verify,omitempty"`
	// RepairRounds counts CEGAR rounds run for this function.
	RepairRounds int `json:"repair_rounds,omitempty"`
	// Counterexample carries the minimal diverging input/outcome witness
	// for functions that verification could not repair.
	Counterexample string `json:"counterexample,omitempty"`
}

// GenerateResponse is the POST /v1/generate 200 body. Degraded is set
// whenever the response is anything less than full fidelity — a degrade
// rung fired, the task list was truncated, a function was salvaged from a
// panic, or the request-level panic boundary triggered — with the
// machine-readable reasons alongside.
type GenerateResponse struct {
	Target         string             `json:"target"`
	Snapshot       string             `json:"snapshot"`
	Degraded       bool               `json:"degraded"`
	DegradeReasons []string           `json:"degrade_reasons,omitempty"`
	Partial        bool               `json:"partial,omitempty"`
	Truncated      bool               `json:"truncated,omitempty"`
	Recovered      int                `json:"recovered,omitempty"`
	Verified       int                `json:"verified,omitempty"`
	Repaired       int                `json:"repaired,omitempty"`
	RepairFailed   int                `json:"repair_failed,omitempty"`
	Functions      []FunctionJSON     `json:"functions"`
	Seconds        map[string]float64 `json:"seconds,omitempty"`
}

// errorJSON is every non-200 body.
type errorJSON struct {
	Error      string `json:"error"`
	RetryAfter int    `json:"retry_after_s,omitempty"`
	Partial    int    `json:"partial_functions,omitempty"`
}

// writeJSON writes a JSON response body. Encode errors (a client hanging
// up mid-body, a value that cannot marshal) used to be silently dropped,
// leaving truncated responses invisible; they now count in
// serve.encode_errors and log once per server.
func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.m.encodeErrors.Inc()
		s.encodeWarn.Do(func() {
			log.Printf("serve: response encode failed (truncated body): %v (counted in serve.encode_errors)", err)
		})
	}
}

// writeError writes a non-200 body. Every 429 carries a Retry-After
// header of at least one second — even at cold start, before any job has
// seeded the scheduler's duration EWMA — so shed clients always get a
// concrete backoff.
func (s *Server) writeError(w http.ResponseWriter, code int, msg string, retryAfter int) {
	if code == http.StatusTooManyRequests && retryAfter < 1 {
		retryAfter = 1
	}
	if retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
	}
	s.writeJSON(w, code, errorJSON{Error: msg, RetryAfter: retryAfter})
}

// genResult is the state the admitted job writes and the handler reads
// strictly after the done-channel close (or not at all on a deadline).
type genResult struct {
	backend  *generate.Backend
	snapshot string
	panicked bool
	panicMsg string
}

func (s *Server) handleGenerate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, "POST only", 0)
		return
	}
	if s.draining.Load() {
		s.writeError(w, http.StatusServiceUnavailable, "server draining", 0)
		return
	}
	s.m.requests.Inc()
	start := time.Now()

	var req GenerateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad request body: "+err.Error(), 0)
		return
	}
	// Validate against the snapshot's actual fleet (which may be the
	// extended one), not the package-level standard target list.
	if s.holder.Current().Pipeline.FindTarget(req.Target) == nil {
		s.writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown target %q", req.Target), 0)
		return
	}
	opt := core.GenOptions{MaxFunctions: req.MaxFunctions, Verify: req.Verify,
		Quantize: req.Quantize, BeamEscalate: req.BeamEscalate}
	if req.Module != "" {
		if !moduleListed(moduleNames(), req.Module) {
			s.writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown module %q", req.Module), 0)
			return
		}
		opt.Modules = []string{req.Module}
	}
	if req.Function != "" {
		if s.holder.Current().Pipeline.GroupByName(req.Function) == nil {
			s.writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown function %q", req.Function), 0)
			return
		}
		opt.Functions = []string{req.Function}
	}

	// Deadline: request override clamped to the configured max, default
	// otherwise. The context reaches GenerateBackendOptions, so a
	// mid-generation expiry salvages finished functions and returns.
	deadline := s.cfg.DefaultDeadline
	if req.DeadlineMS > 0 {
		deadline = time.Duration(req.DeadlineMS) * time.Millisecond
	}
	if deadline > s.cfg.MaxDeadline {
		deadline = s.cfg.MaxDeadline
	}
	ctx, cancel := context.WithTimeout(r.Context(), deadline)
	defer cancel()
	ctx, span := obs.Start(obs.With(ctx, s.cfg.Obs), "serve/generate",
		obs.String("target", req.Target))
	defer span.End()

	// Admission. The fault point forces the shed path so 429 handling is
	// testable without actually filling the queue.
	if faultinject.Should(faultinject.ServeAdmitReject, req.Target) {
		s.writeError(w, http.StatusTooManyRequests, "admission rejected (faultinject)", s.sched.RetryAfter())
		return
	}

	// Degrade ladder, applied at admission pressure.
	pressure := s.sched.Pressure()
	beamWidth := s.holder.Current().Pipeline.Cfg.BeamWidth
	opt, reasons, truncReason := s.cfg.Policy.Apply(opt, beamWidth, pressure)

	res := &genResult{}
	ran, err := s.sched.Do(ctx, func(jctx context.Context) {
		// Request-level panic boundary: anything that escapes the
		// per-function isolation inside GenerateBackendOptions (or the
		// armed serve-handler-panic fault) becomes a degraded 200, never
		// a 500 — the handler stays on the {200, 429, 504} contract.
		defer func() {
			if rec := recover(); rec != nil {
				res.panicked = true
				res.panicMsg = fmt.Sprint(rec)
				s.m.handlerPanics.Inc()
			}
		}()
		if faultinject.Should(faultinject.ServeHandlerPanic, req.Target) {
			panic("faultinject serve-handler-panic for " + req.Target)
		}
		snap, release := s.holder.Acquire()
		defer release()
		res.snapshot = snap.ID
		res.backend = snap.Pipeline.GenerateBackendOptions(jctx, req.Target, opt)
	})

	switch {
	case errors.Is(err, ErrQueueFull):
		s.writeError(w, http.StatusTooManyRequests, "queue full", s.sched.RetryAfter())
		return
	case errors.Is(err, ErrStopped):
		s.writeError(w, http.StatusServiceUnavailable, "server draining", 0)
		return
	case err != nil:
		// Deadline or client cancellation won the wait; the job either
		// never ran or is finishing detached — res must not be read.
		s.m.deadlineHits.Inc()
		s.writeError(w, http.StatusGatewayTimeout, "deadline exceeded", 0)
		return
	}
	_ = ran

	if res.panicked {
		resp := &GenerateResponse{
			Target:         req.Target,
			Snapshot:       res.snapshot,
			Degraded:       true,
			DegradeReasons: append(reasons, "handler panic recovered: "+res.panicMsg),
			Functions:      []FunctionJSON{},
		}
		s.finishGenerate(w, resp, start)
		return
	}
	if ctx.Err() != nil {
		// The job completed its salvage (Partial backend) but the
		// request's deadline has passed: the contract says 504.
		s.m.deadlineHits.Inc()
		n := 0
		if res.backend != nil {
			n = len(res.backend.Functions)
		}
		s.writeJSON(w, http.StatusGatewayTimeout, errorJSON{Error: "deadline exceeded", Partial: n})
		return
	}

	resp := backendResponse(req.Target, res.backend, res.snapshot, reasons, truncReason)
	s.finishGenerate(w, resp, start)
}

// finishGenerate stamps headers/metrics shared by every 200 path.
func (s *Server) finishGenerate(w http.ResponseWriter, resp *GenerateResponse, start time.Time) {
	if resp.Degraded {
		s.m.degraded.Inc()
		w.Header().Set("X-Vega-Degraded", "true")
	}
	s.m.requestSeconds.Observe(time.Since(start).Seconds())
	s.writeJSON(w, http.StatusOK, resp)
}

// backendResponse converts a generated backend into the wire form.
// truncReason is the degrade ladder's MaxFunctions rationale; it joins
// the degrade reasons only when the cap actually bound (b.Truncated) —
// lowering a cap a scoped request never reached degrades nothing.
func backendResponse(target string, b *generate.Backend, snapID string, reasons []string, truncReason string) *GenerateResponse {
	resp := &GenerateResponse{
		Target:         target,
		Snapshot:       snapID,
		DegradeReasons: reasons,
		Functions:      []FunctionJSON{},
	}
	if b == nil {
		resp.Degraded = true
		resp.DegradeReasons = append(resp.DegradeReasons, "no backend produced")
		return resp
	}
	resp.Partial = b.Partial
	resp.Truncated = b.Truncated
	resp.Recovered = b.Recovered
	resp.Verified = b.Verified
	resp.Repaired = b.Repaired
	resp.RepairFailed = b.RepairFailed
	resp.Seconds = b.Seconds
	for _, f := range b.Functions {
		fj := FunctionJSON{
			Name:       f.Name,
			Module:     f.Module,
			Confidence: f.Confidence(),
			Failed:     f.Failed(),
			Error:      f.Err,
			Statements: make([]StatementJSON, 0, len(f.Statements)),
		}
		if f.Verify != nil {
			fj.Verify = f.Verify.Status.String()
			fj.RepairRounds = f.Verify.Rounds
			fj.Counterexample = f.Verify.Counterexample
		}
		for _, st := range f.Statements {
			fj.Statements = append(fj.Statements, StatementJSON{
				Row: st.Row, Text: st.Text, Absent: st.Absent,
				Score: st.Score, Formula: st.Formula,
			})
		}
		resp.Functions = append(resp.Functions, fj)
	}
	if b.Truncated {
		if truncReason != "" {
			resp.DegradeReasons = append(resp.DegradeReasons, truncReason)
		}
		resp.DegradeReasons = append(resp.DegradeReasons, "function list truncated by maxFunctions")
	}
	if b.Recovered > 0 {
		resp.DegradeReasons = append(resp.DegradeReasons,
			fmt.Sprintf("%d function(s) recovered from panics at confidence 0", b.Recovered))
	}
	resp.Degraded = len(resp.DegradeReasons) > 0
	return resp
}

// ReloadRequest is the POST /admin/reload body.
type ReloadRequest struct {
	// Checkpoint is the path of the checkpoint to load into the
	// candidate snapshot.
	Checkpoint string `json:"checkpoint"`
}

// ReloadResponse reports the cutover.
type ReloadResponse struct {
	Swapped  bool   `json:"swapped"`
	Snapshot string `json:"snapshot,omitempty"`
	Previous string `json:"previous,omitempty"`
	Drained  bool   `json:"drained"`
	Error    string `json:"error,omitempty"`
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, "POST only", 0)
		return
	}
	if s.cfg.Loader == nil {
		s.writeError(w, http.StatusNotImplemented, "no snapshot loader configured", 0)
		return
	}
	var req ReloadRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad request body: "+err.Error(), 0)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.ReloadTimeout)
	defer cancel()
	ctx, span := obs.Start(obs.With(ctx, s.cfg.Obs), "serve/reload",
		obs.String("checkpoint", req.Checkpoint))
	defer span.End()

	fail := func(err error) {
		s.m.swapFailures.Inc()
		s.writeJSON(w, http.StatusServiceUnavailable, ReloadResponse{
			Swapped: false,
			Error:   err.Error(),
		})
	}

	if faultinject.Should(faultinject.ServeSwapFail, req.Checkpoint) {
		fail(errors.New("faultinject serve-swap-fail: candidate rejected, old snapshot retained"))
		return
	}
	p, err := s.cfg.Loader(ctx, req.Checkpoint)
	if err != nil {
		fail(fmt.Errorf("load candidate: %w", err))
		return
	}
	cand := NewSnapshot(s.holder.NextID("reload"), req.Checkpoint, p)
	old, drained, err := s.swapIn(ctx, cand)
	if err != nil {
		s.writeJSON(w, http.StatusServiceUnavailable, ReloadResponse{Swapped: false, Error: err.Error()})
		return
	}
	s.writeJSON(w, http.StatusOK, ReloadResponse{
		Swapped:  true,
		Snapshot: cand.ID,
		Previous: old.ID,
		Drained:  drained,
	})
}

// healthzJSON is the GET /healthz body.
type healthzJSON struct {
	Status     string  `json:"status"`
	Snapshot   string  `json:"snapshot"`
	Source     string  `json:"source"`
	UptimeS    float64 `json:"uptime_s"`
	Pressure   float64 `json:"pressure"`
	RetryAfter int     `json:"retry_after_s"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	snap := s.holder.Current()
	body := healthzJSON{
		Status:     "ok",
		Snapshot:   snap.ID,
		Source:     snap.Source,
		UptimeS:    s.uptime().Seconds(),
		Pressure:   s.sched.Pressure(),
		RetryAfter: s.sched.RetryAfter(),
	}
	code := http.StatusOK
	if s.draining.Load() {
		body.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	s.writeJSON(w, code, body)
}

// targetsJSON is the GET /v1/targets body: the request vocabulary.
type targetsJSON struct {
	Targets   []targetJSON `json:"targets"`
	Modules   []string     `json:"modules"`
	Functions []string     `json:"functions"`
}

type targetJSON struct {
	Name string `json:"name"`
	Eval bool   `json:"eval"`
}

func (s *Server) handleTargets(w http.ResponseWriter, r *http.Request) {
	snap := s.holder.Current()
	out := targetsJSON{Modules: moduleNames()}
	for _, t := range snap.Pipeline.TargetSpecs() {
		out.Targets = append(out.Targets, targetJSON{Name: t.Name, Eval: t.Eval})
	}
	for _, g := range snap.Pipeline.Groups {
		out.Functions = append(out.Functions, g.Func.Name)
	}
	s.writeJSON(w, http.StatusOK, out)
}

// moduleNames lists the corpus modules as strings.
func moduleNames() []string {
	out := make([]string, len(corpus.Modules))
	for i, m := range corpus.Modules {
		out[i] = string(m)
	}
	return out
}

// moduleListed reports membership (the filter is never empty here).
func moduleListed(list []string, m string) bool {
	for _, x := range list {
		if x == m {
			return true
		}
	}
	return false
}
