package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"vega/internal/core"
	"vega/internal/obs"
)

// ---- satellite: cold-start Retry-After ------------------------------------

// A scheduler that has never completed a job must still hand shed clients
// a concrete backoff: RetryAfter is clamped to at least one second before
// the duration EWMA has any samples.
func TestSchedulerRetryAfterColdStart(t *testing.T) {
	s := NewScheduler(1, 1, nil)
	defer s.Stop()
	if got := s.RetryAfter(); got < 1 {
		t.Errorf("cold-start RetryAfter() = %d, want >= 1", got)
	}
}

// writeError must never emit a 429 without a Retry-After header, even if
// a caller passes zero (the belt to the scheduler clamp's suspenders).
func TestWriteErrorAlwaysSetsRetryAfterOn429(t *testing.T) {
	s := &Server{m: newServeMetrics(nil)}
	rec := httptest.NewRecorder()
	s.writeError(rec, http.StatusTooManyRequests, "queue full", 0)
	if got := rec.Header().Get("Retry-After"); got == "" {
		t.Fatal("429 response missing Retry-After header")
	}
	var ej errorJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &ej); err != nil || ej.RetryAfter < 1 {
		t.Errorf("429 body = %q (err %v), want retry_after_s >= 1", rec.Body.String(), err)
	}
	// Non-429s keep the caller's value (including none at all).
	rec = httptest.NewRecorder()
	s.writeError(rec, http.StatusServiceUnavailable, "draining", 0)
	if got := rec.Header().Get("Retry-After"); got != "" {
		t.Errorf("503 with retryAfter=0 got Retry-After %q, want none", got)
	}
}

// ---- satellite: encode errors are counted, not swallowed ------------------

func TestWriteJSONCountsEncodeErrors(t *testing.T) {
	o := obs.New(nil)
	s := &Server{m: newServeMetrics(o)}
	rec := httptest.NewRecorder()
	// A channel value cannot marshal; before this PR the error vanished.
	s.writeJSON(rec, http.StatusOK, map[string]any{"bad": make(chan int)})
	if got := s.m.encodeErrors.Value(); got != 1 {
		t.Errorf("serve.encode_errors = %v after failed encode, want 1", got)
	}
	// A healthy encode does not count.
	s.writeJSON(rec, http.StatusOK, map[string]int{"ok": 1})
	if got := s.m.encodeErrors.Value(); got != 1 {
		t.Errorf("serve.encode_errors = %v after clean encode, want still 1", got)
	}
}

// ---- degrade ladder: skip-repair rung -------------------------------------

func TestDegradeSkipRepairRung(t *testing.T) {
	d := DefaultDegradePolicy()

	// Below the rung: verify requests keep their repair rounds.
	opt, reasons, _ := d.Apply(core.GenOptions{Verify: true}, 1, 0.5)
	if opt.SkipRepair {
		t.Errorf("pressure 0.5 skipped repair: reasons=%v", reasons)
	}

	// At the rung: verification stays on, repair rounds are dropped, and
	// the degradation is visible in the reasons.
	opt, reasons, _ = d.Apply(core.GenOptions{Verify: true}, 1, 0.8)
	if !opt.SkipRepair || !opt.Verify {
		t.Errorf("pressure 0.8: opt=%+v, want Verify && SkipRepair", opt)
	}
	if !strings.Contains(strings.Join(reasons, " "), "repair rounds skipped") {
		t.Errorf("reasons = %v, want repair-skip reason", reasons)
	}

	// Non-verify requests have no repair to skip.
	opt, _, _ = d.Apply(core.GenOptions{}, 1, 0.9)
	if opt.SkipRepair {
		t.Error("non-verify request got SkipRepair")
	}
}

// ---- verify-enabled generation over HTTP ----------------------------------

func TestHandleGenerateVerify(t *testing.T) {
	if testing.Short() {
		t.Skip("generation test")
	}
	_, ts := testServer(t, nil)
	resp, body := postJSON(t, ts.URL+"/v1/generate",
		GenerateRequest{Target: "RISCV", Function: "getRelocType", Verify: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %s", resp.StatusCode, body)
	}
	var gr GenerateResponse
	if err := json.Unmarshal(body, &gr); err != nil {
		t.Fatal(err)
	}
	if len(gr.Functions) != 1 {
		t.Fatalf("functions = %d, want 1", len(gr.Functions))
	}
	f := gr.Functions[0]
	switch f.Verify {
	case "passed", "repaired", "failed", "no-oracle":
	default:
		t.Errorf("verify status = %q, want one of passed/repaired/failed/no-oracle", f.Verify)
	}
	if f.Verify == "failed" && f.Counterexample == "" {
		t.Error("failed verification without a counterexample")
	}
	if gr.Verified+gr.RepairFailed == 0 && f.Verify != "no-oracle" {
		t.Errorf("response counters all zero for verified function: %+v", gr)
	}

	// The same request without verify carries no verification fields.
	resp, body = postJSON(t, ts.URL+"/v1/generate",
		GenerateRequest{Target: "RISCV", Function: "getRelocType"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plain status %d, body %s", resp.StatusCode, body)
	}
	var plain GenerateResponse
	if err := json.Unmarshal(body, &plain); err != nil {
		t.Fatal(err)
	}
	if got := plain.Functions[0].Verify; got != "" {
		t.Errorf("plain request got verify status %q, want none", got)
	}
	if plain.Verified != 0 || plain.Repaired != 0 || plain.RepairFailed != 0 {
		t.Errorf("plain request got repair counters: %+v", plain)
	}
}
