package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vega/internal/core"
)

// TestConcurrentGenerateAcrossSwap is the serving-layer differential test
// (run under -race by `make serve-race`): many overlapping
// GenerateBackendContext-path calls share one snapshot while a swap
// retires it mid-flight. Every request must complete (zero dropped),
// every output must be byte-identical to a serial reference run, and the
// old snapshot must drain exactly when its last request releases.
//
// Snapshot b rebuilds the same seed, mirroring a reload of the same
// checkpoint, so the byte-identity contract spans the cutover. (Untrained
// weights cannot differentiate outputs here — decode falls back to the
// deterministic template/formula path — so pinning is asserted via
// snapshot IDs rather than bytes.)
func TestConcurrentGenerateAcrossSwap(t *testing.T) {
	if testing.Short() {
		t.Skip("generation test")
	}
	pA := testPipeline(t, 1)
	pB := freshPipeline(t, 1)

	ctx := context.Background()
	opt := core.GenOptions{Modules: []string{"EMI"}}
	ref := fingerprint(pA.GenerateBackendOptions(ctx, "RISCV", opt))
	if ref == "" {
		t.Fatal("serial reference run produced no output")
	}

	a := NewSnapshot("a", "test", pA)
	b := NewSnapshot("b", "test", pB)
	h := NewHolder(a)

	const n = 8
	var (
		acquired atomic.Int64
		ids      [n]string
		outs     [n]string
		wg       sync.WaitGroup
	)
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			snap, release := h.Acquire()
			defer release()
			acquired.Add(1)
			ids[i] = snap.ID
			outs[i] = fingerprint(snap.Pipeline.GenerateBackendOptions(ctx, "RISCV", opt))
		}(i)
	}
	close(start)

	// Swap once at least two requests hold the old snapshot, so the drain
	// genuinely waits on in-flight work.
	waitFor(t, func() bool { return acquired.Load() >= 2 })
	old, drained := h.Swap(b, 30*time.Second)
	if old != a {
		t.Fatalf("Swap retired %s, want a", old.ID)
	}
	wg.Wait()

	if !drained && !a.Drained() {
		t.Error("old snapshot never drained after all requests finished")
	}
	if h.Current() != b {
		t.Error("current snapshot is not b after swap")
	}
	for i := 0; i < n; i++ {
		if outs[i] == "" {
			t.Fatalf("request %d dropped (empty output)", i)
		}
		if ids[i] != "a" && ids[i] != "b" {
			t.Fatalf("request %d pinned unknown snapshot %q", i, ids[i])
		}
		if outs[i] != ref {
			t.Errorf("request %d (snapshot %s): output differs from the serial reference", i, ids[i])
		}
	}

	// A post-swap request must see the new snapshot and the same bytes.
	snap, release := h.Acquire()
	defer release()
	if snap != b {
		t.Fatalf("post-swap Acquire() = %s, want b", snap.ID)
	}
	if got := fingerprint(snap.Pipeline.GenerateBackendOptions(ctx, "RISCV", opt)); got != ref {
		t.Error("post-swap output differs from the serial reference")
	}
}
