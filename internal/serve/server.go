package serve

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"vega/internal/core"
	"vega/internal/obs"
)

// SnapshotLoader builds a candidate pipeline for a hot reload: a fresh
// Stage 1 build over the service's corpus plus the checkpoint's weights.
// It runs outside the request worker pool (reloads are admin traffic) and
// its result is health-checked before cutover.
type SnapshotLoader func(ctx context.Context, checkpoint string) (*core.Pipeline, error)

// Config sizes the service.
type Config struct {
	// Addr is the listen address for ListenAndServe (":8080").
	Addr string
	// Workers is the generation worker pool size (how many requests
	// decode concurrently); min 1.
	Workers int
	// QueueCap is the admission queue's hard cap; a request arriving with
	// QueueCap waiters is shed with 429. Min 1.
	QueueCap int
	// DefaultDeadline applies when a request names none; MaxDeadline
	// clamps what a request may ask for.
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration
	// DrainTimeout bounds how long a swap (and Shutdown) waits for
	// in-flight requests pinned to the old snapshot.
	DrainTimeout time.Duration
	// Policy is the degradation ladder; the zero value disables both
	// rungs (use DefaultDegradePolicy for the documented defaults).
	Policy DegradePolicy
	// HealthTarget is the target used for swap health-check smoke
	// generations (default "RISCV").
	HealthTarget string
	// Loader enables POST /admin/reload; nil returns 501 there.
	Loader SnapshotLoader
	// ReloadTimeout bounds one reload's pipeline build + health check
	// (default 5m).
	ReloadTimeout time.Duration
	// Obs receives serve spans and metrics; nil disables (inert no-ops).
	Obs *obs.Obs
}

func (c *Config) fillDefaults() {
	if c.Workers < 1 {
		c.Workers = 1
	}
	if c.QueueCap < 1 {
		c.QueueCap = 1
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = time.Minute
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 5 * time.Minute
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.HealthTarget == "" {
		c.HealthTarget = "RISCV"
	}
	if c.ReloadTimeout <= 0 {
		c.ReloadTimeout = 5 * time.Minute
	}
}

// serveMetrics caches the request-path instruments.
type serveMetrics struct {
	requests       *obs.Counter   // serve.requests: generate requests received
	deadlineHits   *obs.Counter   // serve.deadline_hits: requests answered 504
	degraded       *obs.Counter   // serve.degraded: 200s carrying a degradation marker
	handlerPanics  *obs.Counter   // serve.handler_panics: request-level panics recovered
	swaps          *obs.Counter   // serve.swaps: successful snapshot cutovers
	swapFailures   *obs.Counter   // serve.swap_failures: reloads rejected before cutover
	swapDrainMiss  *obs.Counter   // serve.swap_drain_timeouts: drains that outlived DrainTimeout
	encodeErrors   *obs.Counter   // serve.encode_errors: response bodies that failed to encode
	requestSeconds *obs.Histogram // serve.request_seconds: admission → response
}

func newServeMetrics(o *obs.Obs) serveMetrics {
	return serveMetrics{
		requests:       o.Counter("serve.requests"),
		deadlineHits:   o.Counter("serve.deadline_hits"),
		degraded:       o.Counter("serve.degraded"),
		handlerPanics:  o.Counter("serve.handler_panics"),
		swaps:          o.Counter("serve.swaps"),
		swapFailures:   o.Counter("serve.swap_failures"),
		swapDrainMiss:  o.Counter("serve.swap_drain_timeouts"),
		encodeErrors:   o.Counter("serve.encode_errors"),
		requestSeconds: o.Histogram("serve.request_seconds"),
	}
}

// Server is the backend-generation service: one snapshot holder, one
// scheduler, and the HTTP surface over them.
type Server struct {
	cfg       Config
	holder    *Holder
	sched     *Scheduler
	m         serveMetrics
	startedAt time.Time

	httpSrv    *http.Server
	draining   atomic.Bool
	encodeWarn sync.Once
}

// New wires a server around the initial snapshot. The snapshot is
// installed as-is (the caller health-checks boot snapshots; reloads are
// health-checked here).
func New(cfg Config, snap *Snapshot) *Server {
	cfg.fillDefaults()
	return &Server{
		cfg:       cfg,
		holder:    NewHolder(snap),
		sched:     NewScheduler(cfg.Workers, cfg.QueueCap, cfg.Obs),
		m:         newServeMetrics(cfg.Obs),
		startedAt: time.Now(),
	}
}

// Handler returns the service's HTTP surface — also what the in-process
// tests drive through net/http/httptest.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/generate", s.handleGenerate)
	mux.HandleFunc("/v1/targets", s.handleTargets)
	mux.HandleFunc("/admin/reload", s.handleReload)
	mux.HandleFunc("/healthz", s.handleHealthz)
	return mux
}

// ListenAndServe serves until Shutdown; it returns http.ErrServerClosed
// on a clean drain, like net/http.
func (s *Server) ListenAndServe() error {
	s.httpSrv = &http.Server{Addr: s.cfg.Addr, Handler: s.Handler()}
	return s.httpSrv.ListenAndServe()
}

// Shutdown is the SIGTERM path: stop accepting connections, drain
// in-flight HTTP handlers (bounded by ctx), drain the scheduler, and
// flush the metrics sink. The current snapshot stays valid throughout, so
// a caller can still checkpoint it after Shutdown returns.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	var err error
	if s.httpSrv != nil {
		err = s.httpSrv.Shutdown(ctx)
	}
	s.sched.Stop()
	s.cfg.Obs.Flush()
	return err
}

// Snapshot returns the currently published snapshot (for status and for
// checkpoint-on-exit).
func (s *Server) Snapshot() *Snapshot { return s.holder.Current() }

// Scheduler exposes the scheduler for tests and status reporting.
func (s *Server) Scheduler() *Scheduler { return s.sched }

// swapIn health-checks cand against the configured target and, on
// success, cuts over to it and drains the old snapshot. It is the shared
// core of /admin/reload, factored so tests can drive swaps without HTTP.
func (s *Server) swapIn(ctx context.Context, cand *Snapshot) (old *Snapshot, drained bool, err error) {
	if err := cand.HealthCheck(ctx, s.cfg.HealthTarget); err != nil {
		s.m.swapFailures.Inc()
		return nil, false, err
	}
	old, drained = s.holder.Swap(cand, s.cfg.DrainTimeout)
	s.m.swaps.Inc()
	if !drained {
		s.m.swapDrainMiss.Inc()
	}
	s.cfg.Obs.Gauge("serve.snapshot_loaded_unix").Set(float64(cand.LoadedAt.Unix()))
	return old, drained, nil
}

// uptime is factored for the healthz payload.
func (s *Server) uptime() time.Duration { return time.Since(s.startedAt) }

// String implements a terse operator description.
func (s *Server) String() string {
	return fmt.Sprintf("vega-serve{workers=%d queue=%d snapshot=%s}",
		s.cfg.Workers, s.cfg.QueueCap, s.holder.Current().ID)
}
