// Package serve turns the batch VEGA pipeline into a long-running
// backend-generation service: an immutable, hot-swappable Snapshot of
// weights + Stage 1 artifacts served through a bounded scheduler with
// admission control, per-request deadlines, and graceful degradation.
//
// The robustness contract, end to end:
//
//   - Every generate request terminates in exactly one of
//     200 / 200-degraded / 429 / 504 — never a 500, never a hang past
//     its deadline (enforced by the soak test).
//   - A snapshot swap never disturbs an in-flight request: requests pin
//     the snapshot they started on (refcount), the new snapshot is
//     health-checked before cutover, and the old one drains afterwards.
//   - Load beyond the admission queue's hard cap is shed immediately
//     with 429 + Retry-After instead of queuing unboundedly.
package serve

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"vega/internal/core"
	"vega/internal/model"
)

// Snapshot is one immutable serving unit: a fully built pipeline (Stage 1
// templates/features plus trained or loaded weights) and its identity.
// Requests pin the snapshot they were admitted under for their whole
// lifetime, so a concurrent swap can never pull state out from under a
// running generation.
type Snapshot struct {
	// ID identifies the snapshot in responses, logs, and metrics
	// ("boot-1", "reload-2", ...).
	ID string
	// Source records where the weights came from (checkpoint path or
	// "startup-train").
	Source string
	// LoadedAt is when the snapshot was installed or created.
	LoadedAt time.Time
	// Pipeline is the read-only pipeline; safe for concurrent
	// GenerateBackendOptions calls.
	Pipeline *core.Pipeline

	// refs counts the install reference (1) plus one per in-flight
	// request. It drops to 0 only after the snapshot is retired AND every
	// pinned request finished; drained closes at that moment.
	refs    atomic.Int64
	drained chan struct{}
}

// NewSnapshot wraps a pipeline as an installable snapshot.
func NewSnapshot(id, source string, p *core.Pipeline) *Snapshot {
	s := &Snapshot{
		ID:       id,
		Source:   source,
		LoadedAt: time.Now(),
		Pipeline: p,
		drained:  make(chan struct{}),
	}
	s.refs.Store(1) // the holder's install reference
	return s
}

// acquire takes a request reference; it fails only when the snapshot is
// already retired and fully drained (refs hit 0), which means a newer
// snapshot is installed and the caller must re-read the holder.
func (s *Snapshot) acquire() bool {
	for {
		n := s.refs.Load()
		if n <= 0 {
			return false
		}
		if s.refs.CompareAndSwap(n, n+1) {
			return true
		}
	}
}

// release drops one reference; the last drop closes drained.
func (s *Snapshot) release() {
	if s.refs.Add(-1) == 0 {
		close(s.drained)
	}
}

// Drained reports (without blocking) whether the snapshot is retired and
// no request still pins it.
func (s *Snapshot) Drained() bool {
	select {
	case <-s.drained:
		return true
	default:
		return false
	}
}

// HealthCheck validates the snapshot before it may serve: the pipeline
// must carry a model and vocabulary, the model must pass the decode smoke
// test (model.CheckDecode), and a one-function scoped generation must
// complete without tripping the panic boundary. It is the gate a hot
// reload runs before cutover, so a corrupt-but-parseable checkpoint is
// rejected while the old snapshot keeps serving.
func (s *Snapshot) HealthCheck(ctx context.Context, target string) error {
	p := s.Pipeline
	if p == nil || p.Model == nil || p.Vocab == nil {
		return fmt.Errorf("serve: snapshot %s: no trained model", s.ID)
	}
	if err := model.CheckDecode(p.Model, p.Vocab.Size(), p.Cfg.MaxOutPieces); err != nil {
		return fmt.Errorf("serve: snapshot %s: %w", s.ID, err)
	}
	if len(p.Groups) == 0 {
		return fmt.Errorf("serve: snapshot %s: no Stage 1 groups", s.ID)
	}
	smoke := p.Groups[0].Func.Name
	b := p.GenerateBackendOptions(ctx, target, core.GenOptions{
		Functions: []string{smoke}, MaxFunctions: 1, Greedy: true,
	})
	if ctx.Err() != nil {
		return fmt.Errorf("serve: snapshot %s: health check canceled: %w", s.ID, ctx.Err())
	}
	if len(b.Functions) != 1 {
		return fmt.Errorf("serve: snapshot %s: smoke generation produced %d functions, want 1",
			s.ID, len(b.Functions))
	}
	if fn := b.Functions[0]; fn.Failed() {
		return fmt.Errorf("serve: snapshot %s: smoke generation of %s failed: %s", s.ID, smoke, fn.Err)
	}
	return nil
}

// Holder publishes the current snapshot through an atomic pointer and
// coordinates swaps. Reads (Acquire) are lock-free; swaps serialize among
// themselves only.
type Holder struct {
	cur    atomic.Pointer[Snapshot]
	swapMu sync.Mutex
	seq    atomic.Int64
}

// NewHolder installs the initial snapshot.
func NewHolder(s *Snapshot) *Holder {
	h := &Holder{}
	h.cur.Store(s)
	return h
}

// Current returns the published snapshot without pinning it — for status
// endpoints only; request paths must use Acquire.
func (h *Holder) Current() *Snapshot { return h.cur.Load() }

// NextID mints a monotonically increasing snapshot ID with the given
// prefix ("reload-3").
func (h *Holder) NextID(prefix string) string {
	return fmt.Sprintf("%s-%d", prefix, h.seq.Add(1))
}

// Acquire pins the current snapshot for one request and returns it with
// its release function. The retry loop covers the benign race where a
// swap retires the snapshot between the pointer load and the refcount
// increment: the new snapshot is installed before the old one is
// released, so the loop always terminates.
func (h *Holder) Acquire() (*Snapshot, func()) {
	for {
		s := h.cur.Load()
		if s.acquire() {
			return s, func() { s.release() }
		}
	}
}

// Swap installs next and retires the previous snapshot, then waits up to
// drainTimeout for in-flight requests pinned to the old snapshot to
// finish (they keep running against the old weights — the swap never
// cancels or fails them). It reports the retired snapshot and whether the
// drain completed within the timeout; a drain still in progress is
// harmless — stragglers finish on the old snapshot and release it.
func (h *Holder) Swap(next *Snapshot, drainTimeout time.Duration) (old *Snapshot, drained bool) {
	h.swapMu.Lock()
	old = h.cur.Load()
	h.cur.Store(next)
	old.release() // drop the install reference; in-flight refs remain
	h.swapMu.Unlock()

	if drainTimeout <= 0 {
		return old, old.Drained()
	}
	select {
	case <-old.drained:
		return old, true
	case <-time.After(drainTimeout):
		return old, false
	}
}
