package serve

import (
	"context"
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"vega/internal/obs"
)

// Scheduler errors, mapped to HTTP statuses by the handlers.
var (
	// ErrQueueFull is returned when the admission queue is at its hard
	// cap; the caller sheds the request with 429 + Retry-After.
	ErrQueueFull = errors.New("serve: admission queue full")
	// ErrStopped is returned after Stop; the caller sheds with 503.
	ErrStopped = errors.New("serve: scheduler stopped")
)

// job is one admitted unit of work waiting for a worker.
type job struct {
	ctx      context.Context
	fn       func(context.Context)
	enqueued time.Time
	done     chan struct{}
	ran      bool // written by the worker before close(done)
}

// schedMetrics caches the scheduler's instruments (nil and inert without
// an observer, like every obs consumer in the pipeline).
type schedMetrics struct {
	admitted      *obs.Counter   // serve.admitted: requests accepted into the queue
	rejected      *obs.Counter   // serve.rejected: requests shed at admission (queue full)
	deadlineDrops *obs.Counter   // serve.deadline_drops: admitted jobs whose deadline expired while queued
	queueDepth    *obs.Gauge     // serve.queue_depth: waiting + running
	inflight      *obs.Gauge     // serve.inflight: running
	queueWait     *obs.Histogram // serve.queue_wait_seconds: admission → worker pickup
	jobSeconds    *obs.Histogram // serve.job_seconds: worker execution time
}

func newSchedMetrics(o *obs.Obs) schedMetrics {
	return schedMetrics{
		admitted:      o.Counter("serve.admitted"),
		rejected:      o.Counter("serve.rejected"),
		deadlineDrops: o.Counter("serve.deadline_drops"),
		queueDepth:    o.Gauge("serve.queue_depth"),
		inflight:      o.Gauge("serve.inflight"),
		queueWait:     o.Histogram("serve.queue_wait_seconds"),
		jobSeconds:    o.Histogram("serve.job_seconds"),
	}
}

// Scheduler is the bounded admission queue plus fixed worker pool every
// generate request flows through. Admission is non-blocking: when the
// queue is at its hard cap the request is rejected immediately
// (ErrQueueFull) rather than queued unboundedly — the service degrades to
// fast 429s under overload instead of collapsing into timeout soup.
type Scheduler struct {
	queue    chan *job
	workers  int
	queueCap int

	mu      sync.RWMutex // guards stopped vs. queue close
	stopped bool
	wg      sync.WaitGroup

	waiting  atomic.Int64
	inflight atomic.Int64

	// avgJobBits holds a float64 EWMA of job durations (seconds) for the
	// Retry-After estimate; updated by workers, read at rejection time.
	avgJobBits atomic.Uint64
	// lastDoneNS is the UnixNano stamp of the most recent job completion.
	// RetryAfter decays the EWMA by the time elapsed since it: an average
	// learned from heavy jobs an idle period ago must not keep shedding
	// clients with stale multi-second backoffs.
	lastDoneNS atomic.Int64

	m schedMetrics
}

// NewScheduler starts workers goroutines over a queue of capacity
// queueCap (minimums of 1 apply to both).
func NewScheduler(workers, queueCap int, o *obs.Obs) *Scheduler {
	if workers < 1 {
		workers = 1
	}
	if queueCap < 1 {
		queueCap = 1
	}
	s := &Scheduler{
		queue:    make(chan *job, queueCap),
		workers:  workers,
		queueCap: queueCap,
		m:        newSchedMetrics(o),
	}
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

func (s *Scheduler) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.waiting.Add(-1)
		s.m.queueWait.Observe(time.Since(j.enqueued).Seconds())
		if j.ctx.Err() != nil {
			// The deadline expired while the job sat in the queue: skip
			// the work entirely, the handler already answered 504.
			s.m.deadlineDrops.Inc()
			s.updateDepth()
			close(j.done)
			continue
		}
		s.inflight.Add(1)
		s.updateDepth()
		start := time.Now()
		j.fn(j.ctx)
		sec := time.Since(start).Seconds()
		s.inflight.Add(-1)
		s.updateDepth()
		s.m.jobSeconds.Observe(sec)
		s.recordJobSeconds(sec)
		j.ran = true
		close(j.done)
	}
}

func (s *Scheduler) updateDepth() {
	s.m.queueDepth.Set(float64(s.waiting.Load() + s.inflight.Load()))
	s.m.inflight.Set(float64(s.inflight.Load()))
}

// recordJobSeconds folds one job duration into the EWMA (α = 0.2) used by
// RetryAfter. A CAS loop keeps it lock-free against concurrent workers.
func (s *Scheduler) recordJobSeconds(sec float64) {
	for {
		oldBits := s.avgJobBits.Load()
		oldAvg := math.Float64frombits(oldBits)
		newAvg := sec
		if oldAvg > 0 {
			newAvg = 0.8*oldAvg + 0.2*sec
		}
		if s.avgJobBits.CompareAndSwap(oldBits, math.Float64bits(newAvg)) {
			s.lastDoneNS.Store(time.Now().UnixNano())
			return
		}
	}
}

// retryDecayHalfLife halves the EWMA's weight in the Retry-After estimate
// for every 30 idle seconds since the last completion, so a burst of
// heavy jobs stops inflating backoffs within a few minutes of quiet.
const retryDecayHalfLife = 30 * time.Second

// Pressure reports the load fraction the degrade ladder keys off:
// (waiting + running) / (queue capacity + workers), clamped to [0, 1].
func (s *Scheduler) Pressure() float64 {
	p := float64(s.waiting.Load()+s.inflight.Load()) / float64(s.queueCap+s.workers)
	return math.Min(math.Max(p, 0), 1)
}

// RetryAfter estimates, in whole seconds (>= 1), how long a shed client
// should wait before retrying: the current backlog divided across the
// worker pool at the observed average job duration. An empty backlog
// answers the 1 s floor outright — with nothing queued and nothing
// running, the historical average is irrelevant — and a non-empty one
// decays the average by the idle time since the last completion, so an
// EWMA learned from heavy jobs long ago cannot pin clients to stale
// multi-second backoffs.
func (s *Scheduler) RetryAfter() int {
	backlog := float64(s.waiting.Load() + s.inflight.Load())
	if backlog == 0 {
		return 1
	}
	avg := math.Float64frombits(s.avgJobBits.Load())
	if avg <= 0 {
		return 1
	}
	if last := s.lastDoneNS.Load(); last > 0 {
		idle := time.Since(time.Unix(0, last))
		if idle > 0 {
			avg *= math.Pow(0.5, idle.Seconds()/retryDecayHalfLife.Seconds())
		}
	}
	sec := int(math.Ceil((backlog + 1) * avg / float64(s.workers)))
	if sec < 1 {
		return 1
	}
	return sec
}

// Do admits fn and blocks until it finishes or ctx is done. It returns:
//
//   - ran=true, err=nil — fn ran to completion; its results are safe to
//     read (the done channel close orders the worker's writes).
//   - ErrQueueFull / ErrStopped — fn was never admitted.
//   - ctx.Err() — the deadline/cancellation won the wait. fn either never
//     runs (workers skip dead jobs) or is still running detached; the
//     caller must NOT touch fn's result state in that case.
func (s *Scheduler) Do(ctx context.Context, fn func(context.Context)) (ran bool, err error) {
	j := &job{ctx: ctx, fn: fn, enqueued: time.Now(), done: make(chan struct{})}

	s.mu.RLock()
	if s.stopped {
		s.mu.RUnlock()
		return false, ErrStopped
	}
	select {
	case s.queue <- j:
		s.waiting.Add(1)
		s.mu.RUnlock()
		s.m.admitted.Inc()
		s.updateDepth()
	default:
		s.mu.RUnlock()
		s.m.rejected.Inc()
		return false, ErrQueueFull
	}

	select {
	case <-j.done:
		return j.ran, nil
	case <-ctx.Done():
		return false, ctx.Err()
	}
}

// Stop closes admission and waits for queued and running jobs to finish —
// the graceful-shutdown drain. Safe to call more than once.
func (s *Scheduler) Stop() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.stopped = true
	close(s.queue)
	s.mu.Unlock()
	s.wg.Wait()
}
